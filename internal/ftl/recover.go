package ftl

import (
	"fmt"

	"repro/internal/nand"
)

// Disposition classifies a programmed flash page during mount-time
// recovery.
type Disposition uint8

const (
	// DispLive: the page holds the current version of its logical page.
	DispLive Disposition = iota + 1
	// DispRetained: the page holds a stale version that must stay pinned
	// (RSSD's conservative retention survives reboots).
	DispRetained
	// DispDiscard: the page is stale and reclaimable (already offloaded,
	// or an uncommitted post-crash tail the owner rolls back).
	DispDiscard
)

// Recover adopts an existing NAND device image after a power cycle. It
// scans every block's OOB area and asks classify to judge each programmed
// page; from the verdicts it rebuilds the mapping, reverse mapping, pin
// set, and block accounting. Partially programmed blocks are sealed
// (treated as full) rather than re-opened, the standard firmware practice
// that avoids writing after an uncertain last page.
//
// classify must return DispLive for exactly one page per logical page; the
// function returns an error if two pages claim the same LPN.
func Recover(cfg Config, dev *nand.Device, retainer Retainer, classify func(ppn uint64, oob nand.OOB) Disposition) (*FTL, error) {
	f := Attach(cfg, dev, retainer)
	g := f.geo
	// Attach assumed a blank device; rebuild the free list and block
	// states from what is actually on flash.
	f.freeList = f.freeList[:0]
	for b := 0; b < g.TotalBlocks(); b++ {
		block := uint64(b)
		prog := dev.Programmed(block)
		switch {
		case dev.Bad(block):
			f.blocks[b] = blockInfo{state: blockFull} // retired
		case prog == 0:
			f.blocks[b] = blockInfo{state: blockFree}
			f.freeList = append(f.freeList, block)
		default:
			bi := blockInfo{state: blockFull}
			for i := 0; i < prog; i++ {
				ppn := g.PPN(block, i)
				oob, ok := dev.ReadOOB(ppn)
				if !ok {
					return nil, fmt.Errorf("ftl: recover: block %d page %d counted programmed but unreadable", block, i)
				}
				switch classify(ppn, oob) {
				case DispLive:
					if oob.LPN >= f.logicalPages {
						return nil, fmt.Errorf("ftl: recover: live ppn %d claims out-of-range lpn %d", ppn, oob.LPN)
					}
					if f.l2p.get(oob.LPN) != NoPPN {
						return nil, fmt.Errorf("ftl: recover: lpn %d claimed live by ppn %d and %d", oob.LPN, f.l2p.get(oob.LPN), ppn)
					}
					f.l2p.set(oob.LPN, ppn)
					f.rmap[ppn] = oob.LPN
					bi.valid++
				case DispRetained:
					f.rmap[ppn] = oob.LPN
					f.pinned[ppn] = true
					bi.pinned++
				default: // DispDiscard: stale, reclaimable
					f.rmap[ppn] = oob.LPN
				}
			}
			f.blocks[b] = bi
		}
	}
	return f, nil
}
