package ftl

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/nand"
	"repro/internal/simclock"
)

// This file implements the FTL half of the batched datapath: grouped
// write/read/trim entry points over the sharded L2P table and the NAND
// per-channel batch scheduler, plus the host-facing SubmitBatch that makes
// a bare FTL a batch.Device (the batched LocalSSD baseline).
//
// Batched writes keep two invariants the per-op path gets for free:
//
//   1. NAND pages within a block are programmed in allocation order. A
//      batch therefore programs every allocated run before allocating past
//      it into the next block.
//   2. Garbage collection never observes allocated-but-unprogrammed pages
//      (it would misread them as reclaimable and erase them). Pending
//      programs are flushed to the device before any allocation that could
//      trigger GC.
//
// Mapping updates (invalidate old version, flip l2p) happen strictly in
// submission order, so two writes to the same LPN in one batch behave
// exactly like two sequential per-op writes.

// BatchWrite is one page write within a WriteBatch.
type BatchWrite struct {
	LPN  uint64
	Data []byte
	Seq  uint64 // operation-log sequence stamped into the page OOB
}

// BatchTrim is one trim within a TrimBatch.
type BatchTrim struct {
	LPN uint64
	Seq uint64 // operation-log sequence of the trim entry
}

// StaleSeqObserver is an optional Retainer extension for the batched
// datapath. Per-op callers stage the invalidating operation's log sequence
// in the retainer before each FTL call; inside a batch the FTL performs
// many invalidations per call, so it announces each operation's sequence
// (and completion time) immediately before that operation's OnStale /
// invalidation runs. Retainers that record which operation made a page
// stale (RSSD does, for forensics) implement this; others ignore it.
type StaleSeqObserver interface {
	OnStaleContext(seq uint64, at simclock.Time)
}

// WriteBatch writes a group of pages as one submission. All writes are
// issued at time at (queued behind each other only by chip occupancy, so
// writes landing on different chips overlap); mapping updates follow
// submission order. It returns per-op completion times aligned with ops
// and the completion time of the whole batch.
//
// The batch is validated up front: an out-of-range LPN or short payload
// fails the whole call before any page is written. A device-level failure
// (ErrNoSpace) aborts at the failing op; earlier ops remain applied, like
// a partially consumed submission queue.
func (f *FTL) WriteBatch(ops []BatchWrite, at simclock.Time) ([]simclock.Time, simclock.Time, error) {
	times := make([]simclock.Time, len(ops))
	for i := range ops {
		if ops[i].LPN >= f.logicalPages {
			return times, at, ErrOutOfRange
		}
		if len(ops[i].Data) != f.geo.PageSize {
			return times, at, ErrBadPageSize
		}
	}
	done := at
	issue := at
	var pending []nand.PageProgram
	var pendingIdx []int

	sso, _ := f.ret.(StaleSeqObserver)
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		ts, _, err := f.dev.ProgramBatch(pending, issue)
		if err != nil {
			return fmt.Errorf("ftl: batch program: %w", err)
		}
		for j, idx := range pendingIdx {
			op := &ops[idx]
			ppn := pending[j].PPN
			if sso != nil {
				sso.OnStaleContext(op.Seq, ts[j])
			}
			if old := f.l2p.get(op.LPN); old != NoPPN {
				f.invalidate(op.LPN, old, CauseOverwrite, ts[j])
			}
			f.l2p.set(op.LPN, ppn)
			f.rmap[ppn] = op.LPN
			f.blocks[f.geo.BlockOf(ppn)].valid++
			times[idx] = ts[j]
			f.stats.HostWrites++
			f.stats.HostWriteLatency += ts[j].Sub(at)
			if ts[j] > done {
				done = ts[j]
			}
		}
		pending, pendingIdx = pending[:0], pendingIdx[:0]
		return nil
	}

	for i := 0; i < len(ops); {
		// Invariant 2: opening a block may garbage-collect, and GC must
		// never see our allocated-but-unprogrammed pages. The GC trigger
		// is the free-list low watermark, so flush exactly when the next
		// allocation both opens a block and could fire it.
		if f.needsNewBlock(StreamHost) && len(f.freeList) <= f.cfg.GCLowWater {
			if err := flush(); err != nil {
				return times, done, err
			}
		}
		first, n, t, err := f.allocRun(StreamHost, len(ops)-i, issue)
		if err != nil {
			// Program what was already allocated (invariant 1), then
			// report the failure.
			if ferr := flush(); ferr != nil {
				return times, done, ferr
			}
			return times, done, err
		}
		issue = t
		for j := 0; j < n; j++ {
			op := &ops[i+j]
			pending = append(pending, nand.PageProgram{
				PPN:  first + uint64(j),
				Data: op.Data,
				OOB:  nand.OOB{LPN: op.LPN, Seq: op.Seq},
			})
			pendingIdx = append(pendingIdx, i+j)
		}
		i += n
	}
	if err := flush(); err != nil {
		return times, done, err
	}
	return times, done, nil
}

// ReadBatch reads a group of logical pages as one submission; unmapped
// pages read as zeroes. All reads are issued at time at and scheduled
// across chips by the NAND batch scheduler. Results align with lpns.
func (f *FTL) ReadBatch(lpns []uint64, at simclock.Time) ([][]byte, []simclock.Time, simclock.Time, error) {
	out := make([][]byte, len(lpns))
	times := make([]simclock.Time, len(lpns))
	for _, lpn := range lpns {
		if lpn >= f.logicalPages {
			return out, times, at, ErrOutOfRange
		}
	}
	f.stats.HostReads += uint64(len(lpns))
	if ro, ok := f.ret.(ReadObserver); ok {
		for _, lpn := range lpns {
			ro.OnHostRead(lpn, at)
		}
	}
	var devPPNs []uint64
	var devIdx []int
	for i, lpn := range lpns {
		ppn := f.l2p.get(lpn)
		if ppn == NoPPN {
			out[i] = make([]byte, f.geo.PageSize)
			times[i] = at
			continue
		}
		devPPNs = append(devPPNs, ppn)
		devIdx = append(devIdx, i)
	}
	data, _, ts, done, err := f.dev.ReadBatch(devPPNs, at)
	if err != nil {
		return out, times, at, fmt.Errorf("ftl: batch read: %w", err)
	}
	for j, idx := range devIdx {
		out[idx] = data[j]
		times[idx] = ts[j]
		f.stats.HostReadLatency += ts[j].Sub(at)
	}
	return out, times, done, nil
}

// TrimBatch invalidates a group of logical pages as one submission.
// Already-unmapped pages are no-ops, like per-op Trim. Eager trim erases
// (when configured) run suspend-capable in the background (see
// nand.Device.Erase), so they do not advance the returned completion
// times; their latency surfaces through the erased block's readyAt if it
// is reprogrammed before the erase finishes.
func (f *FTL) TrimBatch(ops []BatchTrim, at simclock.Time) ([]simclock.Time, simclock.Time, error) {
	times := make([]simclock.Time, len(ops))
	for i := range ops {
		if ops[i].LPN >= f.logicalPages {
			return times, at, ErrOutOfRange
		}
	}
	sso, _ := f.ret.(StaleSeqObserver)
	cur := at
	for i := range ops {
		op := &ops[i]
		f.stats.Trims++
		ppn := f.l2p.get(op.LPN)
		if ppn == NoPPN {
			times[i] = cur
			continue
		}
		f.l2p.set(op.LPN, NoPPN)
		if sso != nil {
			sso.OnStaleContext(op.Seq, cur)
		}
		f.invalidate(op.LPN, ppn, CauseTrim, cur)
		if f.cfg.EagerTrimErase {
			b := f.geo.BlockOf(ppn)
			bi := &f.blocks[b]
			if bi.state == blockFull && bi.valid == 0 && bi.pinned == 0 {
				var err error
				cur, err = f.eraseBlock(b, cur)
				if err != nil {
					return times, cur, err
				}
			}
		}
		times[i] = cur
	}
	return times, cur, nil
}

// SubmitBatch makes a bare FTL a batch.Device: the batched LocalSSD
// baseline every batched RSSD measurement is compared against. Ops are
// grouped into runs of the same kind (state changes stay in submission
// order across runs); per-op validation failures land in the matching
// result, device-level failures abort the batch.
func (f *FTL) SubmitBatch(ops []batch.Op, at simclock.Time) ([]batch.Result, simclock.Time, error) {
	res := make([]batch.Result, len(ops))
	done := at
	err := batch.ForEachRun(ops, func(start, end int, kind batch.Kind) error {
		run, runRes := ops[start:end], res[start:end]
		switch kind {
		case batch.OpWrite:
			return f.submitWrites(run, runRes, at, &done)
		case batch.OpRead:
			return f.submitReads(run, runRes, at, &done)
		case batch.OpTrim:
			return f.submitTrims(run, runRes, at, &done)
		default:
			for i := range runRes {
				runRes[i] = batch.Result{Done: at, Err: fmt.Errorf("ftl: unknown batch op kind %d", kind)}
			}
			return nil
		}
	})
	if err != nil {
		return res, done, err
	}
	return res, done, nil
}

// submitWrites validates and applies one write run of a SubmitBatch.
func (f *FTL) submitWrites(run []batch.Op, res []batch.Result, at simclock.Time, done *simclock.Time) error {
	var valid []BatchWrite
	var validIdx []int
	for i := range run {
		switch {
		case run[i].LPN >= f.logicalPages:
			res[i] = batch.Result{Done: at, Err: ErrOutOfRange}
		case len(run[i].Data) != f.geo.PageSize:
			res[i] = batch.Result{Done: at, Err: ErrBadPageSize}
		default:
			valid = append(valid, BatchWrite{LPN: run[i].LPN, Data: run[i].Data})
			validIdx = append(validIdx, i)
		}
	}
	ts, d, err := f.WriteBatch(valid, at)
	if err != nil {
		return err
	}
	for j, idx := range validIdx {
		res[idx] = batch.Result{Done: ts[j]}
	}
	if d > *done {
		*done = d
	}
	return nil
}

// submitReads validates and applies one read run of a SubmitBatch.
func (f *FTL) submitReads(run []batch.Op, res []batch.Result, at simclock.Time, done *simclock.Time) error {
	var lpns []uint64
	var validIdx []int
	for i := range run {
		if run[i].LPN >= f.logicalPages {
			res[i] = batch.Result{Done: at, Err: ErrOutOfRange}
			continue
		}
		lpns = append(lpns, run[i].LPN)
		validIdx = append(validIdx, i)
	}
	data, ts, d, err := f.ReadBatch(lpns, at)
	if err != nil {
		return err
	}
	for j, idx := range validIdx {
		res[idx] = batch.Result{Data: data[j], Done: ts[j]}
	}
	if d > *done {
		*done = d
	}
	return nil
}

// submitTrims validates and applies one trim run of a SubmitBatch.
func (f *FTL) submitTrims(run []batch.Op, res []batch.Result, at simclock.Time, done *simclock.Time) error {
	var trims []BatchTrim
	var validIdx []int
	for i := range run {
		if run[i].LPN >= f.logicalPages {
			res[i] = batch.Result{Done: at, Err: ErrOutOfRange}
			continue
		}
		trims = append(trims, BatchTrim{LPN: run[i].LPN})
		validIdx = append(validIdx, i)
	}
	ts, d, err := f.TrimBatch(trims, at)
	if err != nil {
		return err
	}
	for j, idx := range validIdx {
		res[idx] = batch.Result{Done: ts[j]}
	}
	if d > *done {
		*done = d
	}
	return nil
}
