package ftl

import (
	"fmt"

	"repro/internal/nand"
	"repro/internal/simclock"
)

// maybeGC runs garbage collection if the free-block pool has drained to the
// low watermark. It returns the (possibly advanced) simulated time.
func (f *FTL) maybeGC(at simclock.Time) (simclock.Time, error) {
	if f.inGC || len(f.freeList) > f.cfg.GCLowWater {
		return at, nil
	}
	f.inGC = true
	defer func() { f.inGC = false }()

	pressured := false
	for len(f.freeList) < f.cfg.GCHighWater {
		victim, ok := f.pickVictim()
		if !ok {
			// Everything reclaimable is pinned. Ask the retainer to
			// shed pins (RSSD offloads; baselines drop oldest), then
			// retry once.
			if f.ret != nil && !pressured {
				need := (f.cfg.GCHighWater - len(f.freeList)) * f.geo.PagesPerBlock
				f.ret.Pressure(need, at)
				pressured = true
				continue
			}
			if len(f.freeList) > 0 {
				return at, nil // partially recovered; let the write go on
			}
			return at, ErrNoSpace
		}
		pressured = false
		var err error
		at, err = f.collect(victim, at)
		if err != nil {
			return at, err
		}
	}
	return f.wearLevelOnce(at)
}

// wearLevelOnce performs static wear leveling: when the erase-count spread
// reaches the configured threshold, the coldest full block is recycled so
// blocks holding cold data rejoin circulation. At most one block is moved
// per GC episode, bounding the added write amplification.
func (f *FTL) wearLevelOnce(at simclock.Time) (simclock.Time, error) {
	if f.cfg.WearLevelThreshold < 0 || len(f.freeList) == 0 {
		return at, nil
	}
	min, max, _ := f.dev.WearSummary()
	if max-min < f.cfg.WearLevelThreshold {
		return at, nil
	}
	best, bestWear := -1, max+1
	for b := range f.blocks {
		if f.blocks[b].state != blockFull {
			continue
		}
		if w := f.dev.EraseCount(uint64(b)); w < bestWear {
			best, bestWear = b, w
		}
	}
	if best < 0 || bestWear > min+f.cfg.WearLevelThreshold/2 {
		return at, nil
	}
	return f.collect(uint64(best), at)
}

// reclaimable returns how many pages erasing the block would free.
func (f *FTL) reclaimable(b uint64) int {
	bi := &f.blocks[b]
	return f.geo.PagesPerBlock - bi.valid - bi.pinned
}

// pickVictim chooses a full block to collect according to the configured
// policy. It returns false if no full block would free any space.
func (f *FTL) pickVictim() (uint64, bool) {
	bestBlock := uint64(0)
	found := false
	var bestScore float64
	for b := range f.blocks {
		bi := &f.blocks[b]
		if bi.state != blockFull {
			continue
		}
		rec := f.reclaimable(uint64(b))
		if rec <= 0 {
			continue
		}
		var score float64
		switch f.cfg.Policy {
		case CostBenefitGC:
			// Classic cost-benefit: benefit = free space * age,
			// cost = 2 * (pages to migrate). Older, emptier blocks win.
			live := bi.valid + bi.pinned
			age := float64(f.allocSeq - bi.allocSeq + 1)
			score = float64(rec) * age / float64(2*live+1)
		default: // GreedyGC
			score = float64(rec)
		}
		if !found || score > bestScore {
			bestBlock, bestScore, found = uint64(b), score, true
		}
	}
	return bestBlock, found
}

// collect migrates the victim's live and pinned pages, then erases it.
// Migrations run batched: one grouped read of every page to move (serial
// on the victim's chip), then one grouped program through the per-channel
// scheduler — relocation targets live on other chips' active blocks, so
// the programs overlap across chips instead of serializing behind each
// other the way per-page migration does. Blocks with nothing to move (the
// common case under greedy GC) pay only the erase.
func (f *FTL) collect(victim uint64, at simclock.Time) (simclock.Time, error) {
	f.stats.GCRuns++
	base := victim * uint64(f.geo.PagesPerBlock)
	type migration struct {
		oldPPN uint64
		lpn    uint64
		pinned bool
	}
	var migs []migration
	for i := 0; i < f.geo.PagesPerBlock; i++ {
		ppn := base + uint64(i)
		lpn := f.rmap[ppn]
		switch {
		case lpn != NoLPN && f.l2p.get(lpn) == ppn:
			migs = append(migs, migration{oldPPN: ppn, lpn: lpn})
		case f.pinned[ppn]:
			migs = append(migs, migration{oldPPN: ppn, lpn: lpn, pinned: true})
		}
	}
	if len(migs) > 0 {
		ppns := make([]uint64, len(migs))
		for i := range migs {
			ppns[i] = migs[i].oldPPN
		}
		data, oobs, _, readDone, err := f.dev.ReadBatch(ppns, at)
		if err != nil {
			return at, fmt.Errorf("ftl: gc read block %d: %w", victim, err)
		}
		// Allocate targets (straight from the free pool: GC must not
		// recurse), then program them as one batch once every source page
		// is in the controller's buffers.
		progs := make([]nand.PageProgram, len(migs))
		for i := range migs {
			stream := StreamGC
			if migs[i].pinned {
				stream = StreamLog
			}
			newPPN, _, err := f.allocPageNoGC(stream)
			if err != nil {
				return readDone, err
			}
			progs[i] = nand.PageProgram{PPN: newPPN, Data: data[i], OOB: oobs[i]}
		}
		ts, progDone, err := f.dev.ProgramBatch(progs, readDone)
		if err != nil {
			return readDone, fmt.Errorf("ftl: gc program block %d: %w", victim, err)
		}
		for i := range migs {
			m, newPPN := &migs[i], progs[i].PPN
			if m.pinned {
				f.pinned[m.oldPPN] = false
				f.blocks[f.geo.BlockOf(m.oldPPN)].pinned--
				f.pinned[newPPN] = true
				f.blocks[f.geo.BlockOf(newPPN)].pinned++
				f.rmap[newPPN] = m.lpn
				f.rmap[m.oldPPN] = NoLPN
				f.stats.PinMigrates++
				if f.ret != nil {
					f.ret.OnMigrate(m.lpn, m.oldPPN, newPPN, ts[i])
				}
			} else {
				f.blocks[f.geo.BlockOf(m.oldPPN)].valid--
				f.blocks[f.geo.BlockOf(newPPN)].valid++
				f.l2p.set(m.lpn, newPPN)
				f.rmap[newPPN] = m.lpn
				f.rmap[m.oldPPN] = NoLPN
				f.stats.GCMigrates++
			}
		}
		at = progDone
	}
	return f.eraseBlock(victim, at)
}

// allocPageNoGC allocates a page for GC-internal writes. It must not
// recurse into maybeGC; it draws straight from the free pool.
func (f *FTL) allocPageNoGC(stream Stream) (uint64, simclock.Time, error) {
	if !f.activeSet[stream] || f.nextPage[stream] >= f.geo.PagesPerBlock {
		if f.activeSet[stream] {
			f.blocks[f.active[stream]].state = blockFull
			f.activeSet[stream] = false
		}
		blk, err := f.takeFreeBlock()
		if err != nil {
			return 0, 0, err
		}
		f.active[stream] = blk
		f.activeSet[stream] = true
		f.nextPage[stream] = 0
		f.allocSeq++
		f.blocks[blk].state = blockActive
		f.blocks[blk].allocSeq = f.allocSeq
	}
	ppn := f.geo.PPN(f.active[stream], f.nextPage[stream])
	f.nextPage[stream]++
	return ppn, 0, nil
}

// eraseBlock physically erases a block, reporting destroyed stale pages to
// the retainer, and returns it to the free pool. Bad blocks (endurance
// exceeded) are retired silently, shrinking the pool — that is the
// device-lifetime effect the paper's wear experiments measure.
func (f *FTL) eraseBlock(b uint64, at simclock.Time) (simclock.Time, error) {
	base := b * uint64(f.geo.PagesPerBlock)
	if f.ret != nil {
		for i := 0; i < f.geo.PagesPerBlock; i++ {
			ppn := base + uint64(i)
			if lpn := f.rmap[ppn]; lpn != NoLPN && f.l2p.get(lpn) != ppn && !f.pinned[ppn] {
				f.stats.StaleErased++
				f.ret.OnErased(lpn, ppn, at)
			}
		}
	} else {
		for i := 0; i < f.geo.PagesPerBlock; i++ {
			ppn := base + uint64(i)
			if lpn := f.rmap[ppn]; lpn != NoLPN && f.l2p.get(lpn) != ppn {
				f.stats.StaleErased++
			}
		}
	}
	for i := 0; i < f.geo.PagesPerBlock; i++ {
		f.rmap[base+uint64(i)] = NoLPN
	}
	// The erase itself is suspend-capable background work (see
	// nand.Device.Erase): it does not advance the datapath clock. Its
	// latency surfaces only through the block's readyAt when a program
	// lands on the freshly erased block before the erase finished.
	_, err := f.dev.Erase(b, at)
	if err == nil {
		f.stats.Erases++
		if f.dev.Bad(b) {
			// The erase that hit the endurance limit succeeded, but the
			// block is now bad: retire it instead of recycling it.
			f.blocks[b] = blockInfo{state: blockFull}
			return at, nil
		}
		f.blocks[b] = blockInfo{state: blockFree}
		f.freeList = append(f.freeList, b)
		return at, nil
	}
	if err == nand.ErrBadBlock || f.dev.Bad(b) {
		// Retire the block: it simply never rejoins the free list.
		f.blocks[b] = blockInfo{state: blockFull}
		return at, nil
	}
	return at, fmt.Errorf("ftl: erase block %d: %w", b, err)
}
