package ftl

// l2pShardBits selects the number of shards in the logical-to-physical
// mapping table: a power of two so the shard of an LPN is a mask away.
const l2pShardBits = 4

// l2pShards is the shard count (16).
const l2pShards = 1 << l2pShardBits

// l2pTable is the logical-to-physical mapping, split into power-of-two
// shards keyed by the low bits of the LPN. The shards exist for the
// architecture, not for today's speed: their boundaries are where future
// work hangs per-shard locks for a concurrent multi-queue datapath
// (today the FTL is still single-threaded firmware, so shards need no
// locks and a flat slice would be marginally more cache-friendly — the
// accepted cost of the seam).
//
// An LPN maps to shard lpn % l2pShards at index lpn / l2pShards, so
// sequential host I/O — the common batch shape — spreads one batch evenly
// across all shards, which is exactly the access pattern that keeps
// per-shard locks uncontended once they exist.
type l2pTable struct {
	shards [l2pShards][]uint64
	n      uint64 // logical pages
}

// newL2P builds a table for n logical pages with every entry NoPPN.
func newL2P(n uint64) *l2pTable {
	t := &l2pTable{n: n}
	per := n / l2pShards
	rem := n % l2pShards
	for s := uint64(0); s < l2pShards; s++ {
		size := per
		if s < rem {
			size++
		}
		shard := make([]uint64, size)
		for i := range shard {
			shard[i] = NoPPN
		}
		t.shards[s] = shard
	}
	return t
}

// get returns the mapping for lpn. The caller guarantees lpn < n.
func (t *l2pTable) get(lpn uint64) uint64 {
	return t.shards[lpn&(l2pShards-1)][lpn>>l2pShardBits]
}

// set updates the mapping for lpn. The caller guarantees lpn < n.
func (t *l2pTable) set(lpn, ppn uint64) {
	t.shards[lpn&(l2pShards-1)][lpn>>l2pShardBits] = ppn
}

// snapshot returns the table as a flat LPN-indexed slice, the format
// checkpoints ship and recovery consumes.
func (t *l2pTable) snapshot() []uint64 {
	out := make([]uint64, t.n)
	for lpn := uint64(0); lpn < t.n; lpn++ {
		out[lpn] = t.get(lpn)
	}
	return out
}
