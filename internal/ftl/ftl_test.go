package ftl

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/nand"
	"repro/internal/simclock"
)

// smallConfig returns a tiny FTL: 16 blocks of 4 pages, 25% OP.
func smallConfig() Config {
	return Config{
		NAND: nand.Config{
			Geometry: nand.Geometry{
				Channels: 2, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
				BlocksPerPlane: 8, PagesPerBlock: 4, PageSize: 512,
			},
			Timing: nand.DefaultTiming(),
		},
		OverProvision: 0.25,
		GCLowWater:    2,
		GCHighWater:   3,
	}
}

func fill(b byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = b
	}
	return p
}

// recordingRetainer pins according to pinAll and records every event.
type recordingRetainer struct {
	pinAll    bool
	f         *FTL
	stale     []string
	erased    []string
	migrated  []string
	pressure  int
	pins      map[uint64]uint64 // ppn -> lpn
	dropOnPressure bool
	keepLPN   map[uint64]bool // pins for these LPNs survive pressure drops
}

func newRecordingRetainer(pinAll bool) *recordingRetainer {
	return &recordingRetainer{pinAll: pinAll, pins: map[uint64]uint64{}}
}

func (r *recordingRetainer) OnStale(lpn, ppn uint64, cause StaleCause, at simclock.Time) bool {
	r.stale = append(r.stale, fmt.Sprintf("%d@%d:%s", lpn, ppn, cause))
	if r.pinAll {
		r.pins[ppn] = lpn
		return true
	}
	return false
}

func (r *recordingRetainer) OnMigrate(lpn, oldPPN, newPPN uint64, at simclock.Time) {
	r.migrated = append(r.migrated, fmt.Sprintf("%d:%d->%d", lpn, oldPPN, newPPN))
	delete(r.pins, oldPPN)
	r.pins[newPPN] = lpn
}

func (r *recordingRetainer) OnErased(lpn, ppn uint64, at simclock.Time) {
	r.erased = append(r.erased, fmt.Sprintf("%d@%d", lpn, ppn))
}

func (r *recordingRetainer) Pressure(need int, at simclock.Time) {
	r.pressure++
	if r.dropOnPressure {
		for ppn, lpn := range r.pins {
			if r.keepLPN[lpn] {
				continue
			}
			if err := r.f.Release(ppn); err == nil {
				delete(r.pins, ppn)
			}
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := New(smallConfig(), nil)
	want := fill(0x5A, 512)
	if _, err := f.Write(3, want, 0); err != nil {
		t.Fatal(err)
	}
	got, _, err := f.Read(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip mismatch")
	}
}

func TestReadUnmappedReturnsZeroes(t *testing.T) {
	f := New(smallConfig(), nil)
	got, _, err := f.Read(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 512)) {
		t.Fatal("unmapped read not zeroed")
	}
}

func TestWriteValidation(t *testing.T) {
	f := New(smallConfig(), nil)
	if _, err := f.Write(f.LogicalPages(), fill(0, 512), 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range write err = %v", err)
	}
	if _, err := f.Write(0, fill(0, 100), 0); !errors.Is(err, ErrBadPageSize) {
		t.Fatalf("bad-size write err = %v", err)
	}
	if _, _, err := f.Read(f.LogicalPages(), 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range read err = %v", err)
	}
	if _, err := f.Trim(f.LogicalPages(), 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range trim err = %v", err)
	}
}

func TestOverwriteReturnsNewData(t *testing.T) {
	f := New(smallConfig(), nil)
	f.Write(0, fill(1, 512), 0)
	f.Write(0, fill(2, 512), 0)
	got, _, _ := f.Read(0, 0)
	if got[0] != 2 {
		t.Fatalf("read %d after overwrite, want 2", got[0])
	}
}

func TestTrimUnmaps(t *testing.T) {
	f := New(smallConfig(), nil)
	f.Write(0, fill(7, 512), 0)
	if _, err := f.Trim(0, 0); err != nil {
		t.Fatal(err)
	}
	got, _, err := f.Read(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 512)) {
		t.Fatal("trimmed page did not read as zeroes")
	}
	if f.Lookup(0) != NoPPN {
		t.Fatal("trimmed lpn still mapped")
	}
	if f.Stats().Trims != 1 {
		t.Fatal("trim not counted")
	}
}

func TestTrimOfUnmappedIsNoop(t *testing.T) {
	f := New(smallConfig(), nil)
	if _, err := f.Trim(5, 0); err != nil {
		t.Fatal(err)
	}
}

// TestGCPreservesLiveData overwrites a small working set many times so GC
// must run repeatedly, and verifies every logical page still reads back its
// latest value.
func TestGCPreservesLiveData(t *testing.T) {
	f := New(smallConfig(), nil)
	n := f.LogicalPages()
	latest := make(map[uint64]byte)
	at := simclock.Time(0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		lpn := uint64(rng.Intn(int(n)))
		b := byte(i)
		var err error
		at, err = f.Write(lpn, fill(b, 512), at)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		latest[lpn] = b
	}
	if f.Stats().GCRuns == 0 {
		t.Fatal("test did not exercise GC")
	}
	for lpn, want := range latest {
		got, _, err := f.Read(lpn, at)
		if err != nil {
			t.Fatalf("read lpn %d: %v", lpn, err)
		}
		if got[0] != want {
			t.Fatalf("lpn %d = %d, want %d", lpn, got[0], want)
		}
	}
}

func TestWAFAboveOneUnderGC(t *testing.T) {
	f := New(smallConfig(), nil)
	at := simclock.Time(0)
	for i := 0; i < 400; i++ {
		at, _ = f.Write(uint64(i)%f.LogicalPages(), fill(byte(i), 512), at)
	}
	waf := f.WAF()
	if waf < 1.0 {
		t.Fatalf("WAF = %v, must be >= 1", waf)
	}
}

func TestRetainerSeesOverwriteAndTrim(t *testing.T) {
	r := newRecordingRetainer(false)
	f := New(smallConfig(), r)
	r.f = f
	f.Write(1, fill(1, 512), 0)
	f.Write(1, fill(2, 512), 0)
	f.Trim(1, 0)
	if len(r.stale) != 2 {
		t.Fatalf("stale events = %v", r.stale)
	}
	if r.stale[0] != "1@0:overwrite" {
		t.Fatalf("first stale = %q", r.stale[0])
	}
	if r.stale[1][len(r.stale[1])-4:] != "trim" {
		t.Fatalf("second stale = %q", r.stale[1])
	}
}

// TestPinnedPagesSurviveGC pins every stale page and verifies its contents
// survive GC via migration, readable at the migrated location.
func TestPinnedPagesSurviveGC(t *testing.T) {
	r := newRecordingRetainer(true)
	cfg := smallConfig()
	cfg.OverProvision = 0.5 // plenty of OP so pins alone don't exhaust space
	f := New(cfg, r)
	r.f = f
	r.dropOnPressure = true
	r.keepLPN = map[uint64]bool{0: true}

	at := simclock.Time(0)
	// First version of page 0 — will become stale and pinned.
	original := fill(0xEE, 512)
	at, _ = f.Write(0, original, at)
	at, _ = f.Write(0, fill(0x11, 512), at)

	// Churn other pages to force GC several times.
	for i := 0; i < 300; i++ {
		var err error
		at, err = f.Write(uint64(1+i%6), fill(byte(i), 512), at)
		if err != nil {
			t.Fatalf("churn write %d: %v", i, err)
		}
	}
	if f.Stats().GCRuns == 0 {
		t.Fatal("GC never ran")
	}
	// Find the pin for lpn 0 and read its (possibly migrated) location.
	var found bool
	for ppn, lpn := range r.pins {
		if lpn != 0 {
			continue
		}
		data, oob, _, err := f.ReadPhysical(ppn, at)
		if err != nil {
			t.Fatalf("read pinned ppn %d: %v", ppn, err)
		}
		if !bytes.Equal(data, original) {
			t.Fatal("pinned page content corrupted by GC")
		}
		if oob.LPN != 0 {
			t.Fatalf("pinned page OOB.LPN = %d, want 0", oob.LPN)
		}
		found = true
	}
	if !found {
		t.Fatal("pin for lpn 0 lost")
	}
}

func TestReleaseUnpins(t *testing.T) {
	r := newRecordingRetainer(true)
	f := New(smallConfig(), r)
	r.f = f
	f.Write(0, fill(1, 512), 0)
	f.Write(0, fill(2, 512), 0)
	if f.PinnedPages() != 1 {
		t.Fatalf("pinned = %d, want 1", f.PinnedPages())
	}
	var ppn uint64
	for p := range r.pins {
		ppn = p
	}
	if err := f.Release(ppn); err != nil {
		t.Fatal(err)
	}
	if f.PinnedPages() != 0 {
		t.Fatal("release did not unpin")
	}
	if err := f.Release(ppn); !errors.Is(err, ErrNotPinned) {
		t.Fatalf("double release err = %v", err)
	}
}

// TestPressureCalledWhenPinsExhaustSpace pins everything with a retainer
// that refuses to release; writes must eventually fail with ErrNoSpace
// after Pressure was called.
func TestPressureCalledWhenPinsExhaustSpace(t *testing.T) {
	r := newRecordingRetainer(true) // never releases
	f := New(smallConfig(), r)
	r.f = f
	at := simclock.Time(0)
	var lastErr error
	for i := 0; i < 200; i++ {
		_, err := f.Write(uint64(i)%f.LogicalPages(), fill(byte(i), 512), at)
		if err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, ErrNoSpace) {
		t.Fatalf("expected ErrNoSpace, got %v", lastErr)
	}
	if r.pressure == 0 {
		t.Fatal("Pressure was never called")
	}
}

// TestPressureReleaseRecovers: a retainer that drops pins under pressure
// keeps the device writable forever (the LocalSSD retention model).
func TestPressureReleaseRecovers(t *testing.T) {
	r := newRecordingRetainer(true)
	r.dropOnPressure = true
	f := New(smallConfig(), r)
	r.f = f
	at := simclock.Time(0)
	for i := 0; i < 500; i++ {
		var err error
		at, err = f.Write(uint64(i)%f.LogicalPages(), fill(byte(i), 512), at)
		if err != nil {
			t.Fatalf("write %d failed despite pressure releases: %v", i, err)
		}
	}
	if r.pressure == 0 {
		t.Fatal("expected pressure events")
	}
}

func TestOnErasedReportsDestroyedStaleData(t *testing.T) {
	r := newRecordingRetainer(false) // never pins: stale data is destroyed
	f := New(smallConfig(), r)
	r.f = f
	at := simclock.Time(0)
	for i := 0; i < 300; i++ {
		at, _ = f.Write(uint64(i)%4, fill(byte(i), 512), at)
	}
	if len(r.erased) == 0 {
		t.Fatal("no OnErased events despite churn")
	}
	if f.Stats().StaleErased == 0 {
		t.Fatal("StaleErased not counted")
	}
}

func TestEagerTrimErase(t *testing.T) {
	cfg := smallConfig()
	cfg.EagerTrimErase = true
	f := New(cfg, nil)
	at := simclock.Time(0)
	// Fill exactly one block (4 pages) with distinct LPNs, then trim them.
	for i := uint64(0); i < 4; i++ {
		at, _ = f.Write(i, fill(byte(i), 512), at)
	}
	erasesBefore := f.Device().Stats().Erases
	// Fill a second block so the first becomes Full.
	for i := uint64(4); i < 8; i++ {
		at, _ = f.Write(i, fill(byte(i), 512), at)
	}
	for i := uint64(0); i < 4; i++ {
		at, _ = f.Trim(i, at)
	}
	if got := f.Device().Stats().Erases; got != erasesBefore+1 {
		t.Fatalf("eager trim erases = %d, want %d", got, erasesBefore+1)
	}
}

func TestWearLevelingPrefersColdBlocks(t *testing.T) {
	f := New(smallConfig(), nil)
	at := simclock.Time(0)
	for i := 0; i < 2000; i++ {
		var err error
		at, err = f.Write(uint64(i)%f.LogicalPages(), fill(byte(i), 512), at)
		if err != nil {
			t.Fatal(err)
		}
	}
	min, max, _ := f.Device().WearSummary()
	if max-min > 12 {
		t.Fatalf("wear spread too large: min=%d max=%d", min, max)
	}
}

func TestCostBenefitPolicyAlsoPreservesData(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = CostBenefitGC
	f := New(cfg, nil)
	at := simclock.Time(0)
	latest := map[uint64]byte{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		lpn := uint64(rng.Intn(int(f.LogicalPages())))
		var err error
		at, err = f.Write(lpn, fill(byte(i), 512), at)
		if err != nil {
			t.Fatal(err)
		}
		latest[lpn] = byte(i)
	}
	for lpn, want := range latest {
		got, _, _ := f.Read(lpn, at)
		if got[0] != want {
			t.Fatalf("lpn %d = %d, want %d", lpn, got[0], want)
		}
	}
}

func TestWriteWithSeqStampsOOB(t *testing.T) {
	f := New(smallConfig(), nil)
	f.WriteWithSeq(2, fill(9, 512), 77, 0)
	ppn := f.Lookup(2)
	_, oob, _, err := f.ReadPhysical(ppn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if oob.Seq != 77 || oob.LPN != 2 {
		t.Fatalf("OOB = %+v", oob)
	}
}

func TestLatencyAccumulates(t *testing.T) {
	f := New(smallConfig(), nil)
	at := simclock.Time(0)
	at, _ = f.Write(0, fill(1, 512), at)
	f.Read(0, at)
	s := f.Stats()
	if s.HostWriteLatency <= 0 || s.HostReadLatency <= 0 {
		t.Fatalf("latency accumulators empty: %+v", s)
	}
}

func TestFreePagesDecreasesWithWrites(t *testing.T) {
	f := New(smallConfig(), nil)
	before := f.FreePages()
	f.Write(0, fill(1, 512), 0)
	if got := f.FreePages(); got != before-1 {
		t.Fatalf("FreePages %d -> %d, want %d", before, got, before-1)
	}
}

// Property: after any sequence of writes over a small LPN space, every LPN
// reads back the last value written to it (GC, wear leveling, and stream
// switching must never corrupt the mapping).
func TestMappingConsistencyProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		ftl := New(smallConfig(), nil)
		at := simclock.Time(0)
		latest := map[uint64]byte{}
		for i, op := range ops {
			lpn := uint64(op) % ftl.LogicalPages()
			b := byte(i + 1)
			var err error
			at, err = ftl.Write(lpn, fill(b, 512), at)
			if err != nil {
				return false
			}
			latest[lpn] = b
		}
		for lpn, want := range latest {
			got, _, err := ftl.Read(lpn, at)
			if err != nil || got[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved writes and trims keep the invariant "trimmed pages
// read zero, written pages read latest".
func TestTrimWriteInterleavingProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		ftl := New(smallConfig(), nil)
		at := simclock.Time(0)
		latest := map[uint64]byte{} // absent = expect zeroes
		for i, op := range ops {
			lpn := uint64(op>>1) % ftl.LogicalPages()
			if op&1 == 0 {
				b := byte(i + 1)
				var err error
				at, err = ftl.Write(lpn, fill(b, 512), at)
				if err != nil {
					return false
				}
				latest[lpn] = b
			} else {
				var err error
				at, err = ftl.Trim(lpn, at)
				if err != nil {
					return false
				}
				delete(latest, lpn)
			}
		}
		for lpn := uint64(0); lpn < ftl.LogicalPages(); lpn++ {
			got, _, err := ftl.Read(lpn, at)
			if err != nil {
				return false
			}
			want, ok := latest[lpn]
			if ok && got[0] != want {
				return false
			}
			if !ok && got[0] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: pinned page count in block accounting always matches the
// retainer's own pin set, across GC migrations.
func TestPinAccountingProperty(t *testing.T) {
	r := newRecordingRetainer(true)
	r.dropOnPressure = true
	cfg := smallConfig()
	cfg.OverProvision = 0.5
	f := New(cfg, r)
	r.f = f
	at := simclock.Time(0)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		lpn := uint64(rng.Intn(int(f.LogicalPages())))
		var err error
		at, err = f.Write(lpn, fill(byte(i), 512), at)
		if err != nil {
			t.Fatal(err)
		}
		if f.PinnedPages() != len(r.pins) {
			t.Fatalf("step %d: ftl pinned %d != retainer pins %d", i, f.PinnedPages(), len(r.pins))
		}
	}
}
