// Package ftl implements a page-mapping flash translation layer over the
// simulated NAND array: logical-to-physical mapping, multi-stream block
// allocation, greedy and cost-benefit garbage collection, wear-aware block
// selection, trim, and write-amplification accounting.
//
// Unmodified, this package is the paper's "LocalSSD" baseline: stale data
// survives only until garbage collection reclaims it. The RSSD design
// (internal/core) and the FlashGuard/TimeSSD-like baselines
// (internal/baseline) plug into the same FTL through the Retainer
// interface, which observes every page invalidation and can pin stale
// pages so GC must preserve them. This mirrors how the paper implements
// RSSD: as a modification of the flash management firmware, not a layer
// above the block interface.
package ftl

import (
	"errors"
	"fmt"

	"repro/internal/bufpool"
	"repro/internal/nand"
	"repro/internal/simclock"
)

// Stream identifies which write front a page allocation belongs to.
// Separating host, GC, and log writes into different active blocks reduces
// mixing of hot and cold data, and gives RSSD a dedicated append point for
// remapped/retained pages.
type Stream int

const (
	StreamHost Stream = iota // host-issued writes
	StreamGC                 // GC migrations of valid data
	StreamLog                // RSSD: retained-page relocations and log pages
	numStreams
)

// StaleCause says why a physical page became stale.
type StaleCause uint8

const (
	CauseOverwrite StaleCause = iota + 1 // host overwrote the logical page
	CauseTrim                            // host trimmed the logical page
)

func (c StaleCause) String() string {
	switch c {
	case CauseOverwrite:
		return "overwrite"
	case CauseTrim:
		return "trim"
	default:
		return fmt.Sprintf("StaleCause(%d)", uint8(c))
	}
}

// Retainer observes invalidations and controls retention of stale pages.
// RSSD's hardware-assisted logging is a Retainer that pins everything and
// releases pins once the data is safely offloaded; the baselines implement
// weaker policies. All methods are called with the FTL's internal lock
// held; implementations must not call back into the FTL except through
// the explicitly reentrant-safe methods (Release, ReadPhysical) after the
// callback returns. The Pressure callback is the exception: it is invoked
// with the lock held but may call Release.
type Retainer interface {
	// OnStale is invoked when ppn (holding lpn's previous contents)
	// becomes stale. Returning true pins the page: GC will migrate it
	// instead of erasing it, until Release(ppn) is called.
	OnStale(lpn, ppn uint64, cause StaleCause, at simclock.Time) bool

	// OnMigrate is invoked when GC relocates a pinned page. The pin
	// transfers from oldPPN to newPPN automatically; the retainer only
	// needs to update its own index.
	OnMigrate(lpn, oldPPN, newPPN uint64, at simclock.Time)

	// OnErased is invoked when a stale, unpinned page is physically
	// destroyed by a block erase. Baselines use it to measure how long
	// stale data actually survived.
	OnErased(lpn, ppn uint64, at simclock.Time)

	// Pressure is invoked when GC cannot find any reclaimable space
	// because pinned pages occupy it. The retainer must release pins
	// (after offloading, for RSSD; by dropping oldest data, for the
	// local baselines) or the triggering write fails with ErrNoSpace.
	Pressure(needPages int, at simclock.Time)
}

// ReadObserver is an optional extension of Retainer: implementations also
// see host reads. FlashGuard-class baselines need this, since their
// retention policy keys on read-then-overwrite patterns.
type ReadObserver interface {
	OnHostRead(lpn uint64, at simclock.Time)
}

// Sentinel mapping values.
const (
	// NoPPN marks a logical page with no physical mapping (never written
	// or trimmed). Reads of such pages return zeroes, as SSDs do.
	NoPPN = ^uint64(0)
	// NoLPN marks a physical page not owned by any logical page (log
	// stream pages and unwritten pages).
	NoLPN = ^uint64(0)
)

// GCPolicy selects the victim-block scoring function.
type GCPolicy int

const (
	// GreedyGC picks the block with the most reclaimable pages.
	GreedyGC GCPolicy = iota
	// CostBenefitGC weighs reclaimable space against migration cost and
	// block age (the classic cost-benefit cleaner).
	CostBenefitGC
)

// Config configures the FTL.
type Config struct {
	NAND nand.Config
	// OverProvision is the fraction of raw capacity hidden from the
	// host; it is the headroom GC and retention live in. Default 0.07
	// plus whatever RetentionReserve asks for.
	OverProvision float64
	// GCLowWater triggers garbage collection when the free-block count
	// drops to it; GCHighWater is where collection stops.
	GCLowWater  int
	GCHighWater int
	Policy      GCPolicy
	// EagerTrimErase erases a block as soon as trim leaves it with no
	// valid or pinned pages, modeling drives that honour trim
	// aggressively. The paper's trimming attack exploits exactly this
	// fast physical destruction on conventional SSDs.
	EagerTrimErase bool
	// WearLevelThreshold bounds the allowed erase-count spread. When the
	// spread reaches it, GC recycles the coldest full block (static wear
	// leveling). Zero selects the default (8); negative disables.
	WearLevelThreshold int
}

// DefaultConfig returns an FTL configuration over the default NAND device:
// 7% over-provisioning and watermark GC.
func DefaultConfig() Config {
	return Config{
		NAND:          nand.DefaultConfig(),
		OverProvision: 0.07,
		GCLowWater:    2,
		GCHighWater:   4,
		Policy:        GreedyGC,
	}
}

// Errors returned by the FTL.
var (
	ErrNoSpace     = errors.New("ftl: no reclaimable space (device full)")
	ErrOutOfRange  = errors.New("ftl: logical page out of range")
	ErrBadPageSize = errors.New("ftl: payload must be exactly one page")
	ErrNotPinned   = errors.New("ftl: page is not pinned")
)

type blockInfo struct {
	valid    int // live mapped pages
	pinned   int // stale pages pinned by the retainer
	seq      uint64
	allocSeq uint64 // when the block last became active (for cost-benefit age)
	state    blockStateKind
}

type blockStateKind uint8

const (
	blockFree blockStateKind = iota
	blockActive
	blockFull
)

// Stats aggregates FTL-level counters. NAND-level counters (total
// programs, erases) live in nand.Stats; together they yield write
// amplification and lifetime estimates.
type Stats struct {
	HostWrites  uint64 // host pages written
	HostReads   uint64
	Trims       uint64
	GCRuns      uint64
	GCMigrates  uint64 // valid-page migrations
	PinMigrates uint64 // pinned (retained) page migrations
	Erases      uint64
	StaleErased uint64 // stale pages physically destroyed
	// Latency accumulators in simulated ns, for the <1% overhead claim.
	HostWriteLatency simclock.Duration
	HostReadLatency  simclock.Duration
}

// FTL is a page-mapping flash translation layer. Not safe for concurrent
// use: the simulation driver issues operations from one goroutine, like
// the single firmware event loop on the device.
type FTL struct {
	cfg  Config
	geo  nand.Geometry
	dev  *nand.Device
	ret  Retainer // may be nil (plain LocalSSD)

	l2p    *l2pTable // logical page -> PPN or NoPPN, sharded by LPN
	rmap   []uint64  // PPN -> logical page or NoLPN
	pinned []bool    // PPN -> pinned by retainer

	blocks    []blockInfo
	freeList  []uint64
	active    [numStreams]uint64 // active block per stream
	activeSet [numStreams]bool
	nextPage  [numStreams]int
	allocSeq  uint64

	logicalPages uint64
	stats        Stats
	zeroPage     []byte
	inGC         bool
}

// New builds an FTL (and its NAND device) from cfg. retainer may be nil.
func New(cfg Config, retainer Retainer) *FTL {
	dev := nand.New(cfg.NAND)
	return Attach(cfg, dev, retainer)
}

// Attach builds an FTL over an existing device. Recovery tests use this to
// re-adopt a device image after a simulated power cycle.
func Attach(cfg Config, dev *nand.Device, retainer Retainer) *FTL {
	g := cfg.NAND.Geometry
	if cfg.OverProvision <= 0 {
		cfg.OverProvision = 0.07
	}
	if cfg.GCLowWater <= 0 {
		cfg.GCLowWater = 2
	}
	if cfg.GCHighWater <= cfg.GCLowWater {
		cfg.GCHighWater = cfg.GCLowWater + 2
	}
	if cfg.WearLevelThreshold == 0 {
		cfg.WearLevelThreshold = 8
	}
	logicalBlocks := int(float64(g.TotalBlocks()) * (1 - cfg.OverProvision))
	if logicalBlocks < 1 {
		logicalBlocks = 1
	}
	f := &FTL{
		cfg:          cfg,
		geo:          g,
		dev:          dev,
		ret:          retainer,
		l2p:          newL2P(uint64(logicalBlocks) * uint64(g.PagesPerBlock)),
		rmap:         make([]uint64, g.TotalPages()),
		pinned:       make([]bool, g.TotalPages()),
		blocks:       make([]blockInfo, g.TotalBlocks()),
		logicalPages: uint64(logicalBlocks) * uint64(g.PagesPerBlock),
		zeroPage:     make([]byte, g.PageSize),
	}
	for i := range f.rmap {
		f.rmap[i] = NoLPN
	}
	f.freeList = make([]uint64, 0, g.TotalBlocks())
	for b := 0; b < g.TotalBlocks(); b++ {
		f.freeList = append(f.freeList, uint64(b))
	}
	return f
}

// Geometry returns the underlying NAND geometry.
func (f *FTL) Geometry() nand.Geometry { return f.geo }

// Device returns the underlying NAND device (read-only use expected).
func (f *FTL) Device() *nand.Device { return f.dev }

// LogicalPages returns the number of logical pages exposed to the host.
func (f *FTL) LogicalPages() uint64 { return f.logicalPages }

// PageSize returns the page size in bytes.
func (f *FTL) PageSize() int { return f.geo.PageSize }

// Stats returns a snapshot of FTL counters.
func (f *FTL) Stats() Stats { return f.stats }

// WAF returns the write-amplification factor observed so far:
// total NAND programs divided by host page writes.
func (f *FTL) WAF() float64 {
	if f.stats.HostWrites == 0 {
		return 0
	}
	return float64(f.dev.Stats().Programs) / float64(f.stats.HostWrites)
}

// FreePages returns the number of immediately programmable pages
// (free blocks plus the tails of active blocks). The GC attack drives this
// toward zero.
func (f *FTL) FreePages() int {
	n := len(f.freeList) * f.geo.PagesPerBlock
	for s := Stream(0); s < numStreams; s++ {
		if f.activeSet[s] {
			n += f.geo.PagesPerBlock - f.nextPage[s]
		}
	}
	return n
}

// PinnedPages returns how many physical pages are currently pinned.
func (f *FTL) PinnedPages() int {
	n := 0
	for _, b := range f.blocks {
		n += b.pinned
	}
	return n
}

// MappedPages returns how many logical pages currently map to flash.
func (f *FTL) MappedPages() int {
	n := 0
	for _, b := range f.blocks {
		n += b.valid
	}
	return n
}

// Lookup returns the current physical page of lpn, or NoPPN.
func (f *FTL) Lookup(lpn uint64) uint64 {
	if lpn >= f.logicalPages {
		return NoPPN
	}
	return f.l2p.get(lpn)
}

// LookupBatch resolves a group of LPNs against the sharded mapping table
// in one call. Out-of-range LPNs resolve to NoPPN, like Lookup.
func (f *FTL) LookupBatch(lpns []uint64) []uint64 {
	out := make([]uint64, len(lpns))
	for i, lpn := range lpns {
		if lpn >= f.logicalPages {
			out[i] = NoPPN
		} else {
			out[i] = f.l2p.get(lpn)
		}
	}
	return out
}

// SnapshotL2P returns a copy of the logical-to-physical table. RSSD ships
// these snapshots as checkpoints so recovery can bound log replay.
func (f *FTL) SnapshotL2P() []uint64 {
	return f.l2p.snapshot()
}

// RetentionBudgetPages returns the number of physical pages beyond the
// logical capacity — the space stale data can occupy locally before
// something must give (offload for RSSD, destruction for baselines).
func (f *FTL) RetentionBudgetPages() int {
	return f.geo.TotalPages() - int(f.logicalPages)
}

// Write stores one page of data at logical page lpn, invalidating any
// previous version (which the retainer may pin). It returns the simulated
// completion time.
func (f *FTL) Write(lpn uint64, data []byte, at simclock.Time) (simclock.Time, error) {
	if lpn >= f.logicalPages {
		return at, ErrOutOfRange
	}
	if len(data) != f.geo.PageSize {
		return at, ErrBadPageSize
	}
	done, err := f.writeMapped(lpn, data, StreamHost, nand.OOB{LPN: lpn}, at)
	if err != nil {
		return done, err
	}
	f.stats.HostWrites++
	f.stats.HostWriteLatency += done.Sub(at)
	return done, nil
}

// WriteWithSeq is Write with an operation-log sequence number stamped into
// the page's OOB area; RSSD uses it so retained flash pages can be tied to
// log entries during post-attack forensics.
func (f *FTL) WriteWithSeq(lpn uint64, data []byte, seq uint64, at simclock.Time) (simclock.Time, error) {
	if lpn >= f.logicalPages {
		return at, ErrOutOfRange
	}
	if len(data) != f.geo.PageSize {
		return at, ErrBadPageSize
	}
	done, err := f.writeMapped(lpn, data, StreamHost, nand.OOB{LPN: lpn, Seq: seq}, at)
	if err != nil {
		return done, err
	}
	f.stats.HostWrites++
	f.stats.HostWriteLatency += done.Sub(at)
	return done, nil
}

// writeMapped allocates a page on stream, programs it, and flips the
// mapping for lpn, invalidating the old version.
func (f *FTL) writeMapped(lpn uint64, data []byte, stream Stream, oob nand.OOB, at simclock.Time) (simclock.Time, error) {
	ppn, at2, err := f.allocPage(stream, at)
	if err != nil {
		return at, err
	}
	done, err := f.dev.Program(ppn, data, oob, at2)
	if err != nil {
		return at, fmt.Errorf("ftl: program ppn %d: %w", ppn, err)
	}
	if old := f.l2p.get(lpn); old != NoPPN {
		f.invalidate(lpn, old, CauseOverwrite, done)
	}
	f.l2p.set(lpn, ppn)
	f.rmap[ppn] = lpn
	f.blocks[f.geo.BlockOf(ppn)].valid++
	return done, nil
}

// Read returns the current contents of lpn. Unmapped or trimmed pages read
// as zeroes, as on a real SSD.
func (f *FTL) Read(lpn uint64, at simclock.Time) ([]byte, simclock.Time, error) {
	if lpn >= f.logicalPages {
		return nil, at, ErrOutOfRange
	}
	f.stats.HostReads++
	if ro, ok := f.ret.(ReadObserver); ok {
		ro.OnHostRead(lpn, at)
	}
	ppn := f.l2p.get(lpn)
	if ppn == NoPPN {
		buf := make([]byte, f.geo.PageSize)
		return buf, at, nil
	}
	data, _, done, err := f.dev.Read(ppn, at)
	if err != nil {
		return nil, at, fmt.Errorf("ftl: read lpn %d (ppn %d): %w", lpn, ppn, err)
	}
	f.stats.HostReadLatency += done.Sub(at)
	return data, done, nil
}

// Trim invalidates lpn without writing new data. On a conventional SSD the
// stale page is then destroyed at the drive's convenience — immediately,
// when EagerTrimErase is set. A Retainer may pin it instead; that is the
// heart of RSSD's enhanced trim.
func (f *FTL) Trim(lpn uint64, at simclock.Time) (simclock.Time, error) {
	if lpn >= f.logicalPages {
		return at, ErrOutOfRange
	}
	f.stats.Trims++
	ppn := f.l2p.get(lpn)
	if ppn == NoPPN {
		return at, nil
	}
	f.l2p.set(lpn, NoPPN)
	f.invalidate(lpn, ppn, CauseTrim, at)
	if f.cfg.EagerTrimErase {
		b := f.geo.BlockOf(ppn)
		bi := &f.blocks[b]
		if bi.state == blockFull && bi.valid == 0 && bi.pinned == 0 {
			return f.eraseBlock(b, at)
		}
	}
	return at, nil
}

// invalidate marks ppn stale and offers it to the retainer.
func (f *FTL) invalidate(lpn, ppn uint64, cause StaleCause, at simclock.Time) {
	b := f.geo.BlockOf(ppn)
	f.blocks[b].valid--
	// rmap keeps pointing at the old LPN: pinned pages need it for
	// migration and forensics; for unpinned pages it is cleaned at erase.
	if f.ret != nil && f.ret.OnStale(lpn, ppn, cause, at) {
		f.pinned[ppn] = true
		f.blocks[b].pinned++
	}
}

// Release unpins a physical page, making it reclaimable by GC. RSSD calls
// this once the page's contents are durably offloaded; local baselines
// call it when their retention policy expires the page.
func (f *FTL) Release(ppn uint64) error {
	if ppn >= uint64(len(f.pinned)) || !f.pinned[ppn] {
		return ErrNotPinned
	}
	f.pinned[ppn] = false
	f.blocks[f.geo.BlockOf(ppn)].pinned--
	return nil
}

// ReadPhysical reads a physical page directly (pinned retained data or any
// programmed page). RSSD's offload path and the recovery engine use it.
func (f *FTL) ReadPhysical(ppn uint64, at simclock.Time) ([]byte, nand.OOB, simclock.Time, error) {
	return f.dev.Read(ppn, at)
}

// ReadPhysicalBackground reads a physical page on the NAND background
// lane: the hardware-isolated offload engine's reads, which yield the chip
// to host traffic (see nand.Device.ReadBackground). The returned data is a
// pooled buffer the caller must Release once its bytes are captured — the
// zero-copy read-lane contract that keeps background reads allocation-free.
func (f *FTL) ReadPhysicalBackground(ppn uint64, at simclock.Time) (*bufpool.Buf, nand.OOB, simclock.Time, error) {
	return f.dev.ReadBackground(ppn, at)
}

// allocPage returns the next free page on the stream's active block,
// opening a new block (and running GC) as needed.
func (f *FTL) allocPage(stream Stream, at simclock.Time) (uint64, simclock.Time, error) {
	ppn, _, at, err := f.allocRun(stream, 1, at)
	return ppn, at, err
}

// needsNewBlock reports whether the next allocation on stream has to open
// a fresh block (and may therefore trigger garbage collection).
func (f *FTL) needsNewBlock(stream Stream) bool {
	return !f.activeSet[stream] || f.nextPage[stream] >= f.geo.PagesPerBlock
}

// allocRun reserves up to max consecutive pages on the stream's active
// block, opening a new block (and running GC) only when the active block
// is exhausted. It returns the first reserved PPN and the run length
// (>= 1 on success); the run never spans blocks, so callers that want more
// pages simply call again. Reserved pages MUST be programmed before the
// stream's next block is opened — batch writers program each run before
// allocating past it, keeping the NAND sequential-program invariant.
func (f *FTL) allocRun(stream Stream, max int, at simclock.Time) (uint64, int, simclock.Time, error) {
	if f.needsNewBlock(stream) {
		if f.activeSet[stream] {
			// Retire the filled block.
			f.blocks[f.active[stream]].state = blockFull
			f.activeSet[stream] = false
		}
		var err error
		at, err = f.maybeGC(at)
		if err != nil {
			return 0, 0, at, err
		}
		blk, err := f.takeFreeBlock()
		if err != nil {
			return 0, 0, at, err
		}
		f.active[stream] = blk
		f.activeSet[stream] = true
		f.nextPage[stream] = 0
		f.allocSeq++
		f.blocks[blk].state = blockActive
		f.blocks[blk].allocSeq = f.allocSeq
	}
	n := f.geo.PagesPerBlock - f.nextPage[stream]
	if n > max {
		n = max
	}
	ppn := f.geo.PPN(f.active[stream], f.nextPage[stream])
	f.nextPage[stream] += n
	return ppn, n, at, nil
}

// takeFreeBlock removes and returns the coldest (least-worn) free block,
// implementing static wear leveling at allocation time.
func (f *FTL) takeFreeBlock() (uint64, error) {
	if len(f.freeList) == 0 {
		return 0, ErrNoSpace
	}
	best, bestWear := 0, int(^uint(0)>>1)
	for i, b := range f.freeList {
		if w := f.dev.EraseCount(b); w < bestWear {
			best, bestWear = i, w
		}
	}
	blk := f.freeList[best]
	f.freeList[best] = f.freeList[len(f.freeList)-1]
	f.freeList = f.freeList[:len(f.freeList)-1]
	return blk, nil
}
