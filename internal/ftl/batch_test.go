package ftl

import (
	"bytes"
	"testing"

	"repro/internal/batch"
	"repro/internal/nand"
	"repro/internal/simclock"
)

// batchTestConfig: 4 chips, 32 blocks x 8 pages x 512B, enough OP that GC
// has headroom but small enough that large batches cross block and GC
// boundaries.
func batchTestConfig() Config {
	return Config{
		NAND: nand.Config{
			Geometry: nand.Geometry{
				Channels: 2, ChipsPerChannel: 2, DiesPerChip: 1, PlanesPerDie: 1,
				BlocksPerPlane: 8, PagesPerBlock: 8, PageSize: 512,
			},
			Timing: nand.DefaultTiming(),
		},
		OverProvision: 0.25,
		GCLowWater:    2,
		GCHighWater:   4,
	}
}

func pageOf(b byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = b
	}
	return p
}

// TestWriteBatchMatchesPerOpState drives the same writes per-op and as one
// batch and verifies the logical state (mappings and contents) agrees.
func TestWriteBatchMatchesPerOpState(t *testing.T) {
	perOp := New(batchTestConfig(), nil)
	batched := New(batchTestConfig(), nil)

	n := int(perOp.LogicalPages()) / 2
	var ops []BatchWrite
	at := simclock.Time(0)
	for i := 0; i < n; i++ {
		data := pageOf(byte(i), 512)
		var err error
		at, err = perOp.Write(uint64(i), data, at)
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, BatchWrite{LPN: uint64(i), Data: data})
	}
	if _, _, err := batched.WriteBatch(ops, 0); err != nil {
		t.Fatal(err)
	}
	if got, want := batched.Stats().HostWrites, perOp.Stats().HostWrites; got != want {
		t.Fatalf("HostWrites = %d, want %d", got, want)
	}
	for i := 0; i < n; i++ {
		pd, _, err := perOp.Read(uint64(i), at)
		if err != nil {
			t.Fatal(err)
		}
		bd, _, _, err := batched.ReadBatch([]uint64{uint64(i)}, at)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pd, bd[0]) {
			t.Fatalf("lpn %d: batched content diverges", i)
		}
	}
}

// TestWriteBatchDuplicateLPNKeepsSubmissionOrder verifies that two writes
// to the same LPN in one batch behave like two sequential writes: the
// later payload wins.
func TestWriteBatchDuplicateLPNKeepsSubmissionOrder(t *testing.T) {
	f := New(batchTestConfig(), nil)
	ops := []BatchWrite{
		{LPN: 3, Data: pageOf(0xAA, 512)},
		{LPN: 3, Data: pageOf(0xBB, 512)},
	}
	if _, _, err := f.WriteBatch(ops, 0); err != nil {
		t.Fatal(err)
	}
	data, _, err := f.Read(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 0xBB {
		t.Fatalf("content = %#x, want later write (0xBB)", data[0])
	}
}

// TestWriteBatchSurvivesGC writes several device capacities in large
// batches, forcing garbage collection to run mid-batch, and verifies no
// live page is lost — the flush-before-GC invariant of the batched
// datapath.
func TestWriteBatchSurvivesGC(t *testing.T) {
	f := New(batchTestConfig(), nil)
	n := f.LogicalPages()
	round := 0
	for pass := 0; pass < 4; pass++ {
		var ops []BatchWrite
		for lpn := uint64(0); lpn < n; lpn++ {
			ops = append(ops, BatchWrite{LPN: lpn, Data: pageOf(byte(round + int(lpn)), 512)})
		}
		if _, _, err := f.WriteBatch(ops, 0); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		round++
	}
	if f.Stats().GCRuns == 0 {
		t.Fatal("test did not exercise GC")
	}
	data, _, _, err := f.ReadBatch(seqLPNs(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	for lpn := uint64(0); lpn < n; lpn++ {
		want := byte(round - 1 + int(lpn))
		if data[lpn][0] != want {
			t.Fatalf("lpn %d: content %#x, want %#x after GC", lpn, data[lpn][0], want)
		}
	}
}

func seqLPNs(n uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i)
	}
	return out
}

// TestReadBatchUnmappedReadsZeroes mirrors per-op semantics for unmapped
// and trimmed pages.
func TestReadBatchUnmappedReadsZeroes(t *testing.T) {
	f := New(batchTestConfig(), nil)
	if _, _, err := f.WriteBatch([]BatchWrite{{LPN: 1, Data: pageOf(0x11, 512)}}, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.TrimBatch([]BatchTrim{{LPN: 1}}, 0); err != nil {
		t.Fatal(err)
	}
	data, _, _, err := f.ReadBatch([]uint64{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range data {
		if !bytes.Equal(d, make([]byte, 512)) {
			t.Fatalf("page %d: expected zeroes", i)
		}
	}
}

// TestSubmitBatchMixedKindsSeesPriorWrites checks cross-run ordering: a
// read later in the batch observes a write earlier in the batch.
func TestSubmitBatchMixedKindsSeesPriorWrites(t *testing.T) {
	f := New(batchTestConfig(), nil)
	ops := []batch.Op{
		{Kind: batch.OpWrite, LPN: 7, Data: pageOf(0x42, 512)},
		{Kind: batch.OpRead, LPN: 7},
		{Kind: batch.OpTrim, LPN: 7},
		{Kind: batch.OpRead, LPN: 7},
	}
	res, _, err := f.SubmitBatch(ops, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res[1].Data[0] != 0x42 {
		t.Fatalf("read after write saw %#x", res[1].Data[0])
	}
	if res[3].Data[0] != 0 {
		t.Fatal("read after trim saw stale data")
	}
}

// TestSubmitBatchPerOpValidation: invalid ops fail individually without
// failing the batch.
func TestSubmitBatchPerOpValidation(t *testing.T) {
	f := New(batchTestConfig(), nil)
	ops := []batch.Op{
		{Kind: batch.OpWrite, LPN: 0, Data: pageOf(1, 512)},
		{Kind: batch.OpWrite, LPN: f.LogicalPages(), Data: pageOf(2, 512)}, // out of range
		{Kind: batch.OpWrite, LPN: 1, Data: pageOf(3, 100)},               // short payload
		{Kind: batch.OpWrite, LPN: 2, Data: pageOf(4, 512)},
	}
	res, _, err := f.SubmitBatch(ops, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[3].Err != nil {
		t.Fatalf("valid ops failed: %v / %v", res[0].Err, res[3].Err)
	}
	if res[1].Err != ErrOutOfRange {
		t.Fatalf("res[1].Err = %v, want ErrOutOfRange", res[1].Err)
	}
	if res[2].Err != ErrBadPageSize {
		t.Fatalf("res[2].Err = %v, want ErrBadPageSize", res[2].Err)
	}
	if f.Lookup(0) == NoPPN || f.Lookup(2) == NoPPN {
		t.Fatal("valid writes were not applied")
	}
}

// TestLookupBatchAgreesWithLookup cross-checks the sharded table's batch
// resolution against single lookups, including out-of-range LPNs.
func TestLookupBatchAgreesWithLookup(t *testing.T) {
	f := New(batchTestConfig(), nil)
	var ops []BatchWrite
	for lpn := uint64(0); lpn < 20; lpn += 2 {
		ops = append(ops, BatchWrite{LPN: lpn, Data: pageOf(byte(lpn), 512)})
	}
	if _, _, err := f.WriteBatch(ops, 0); err != nil {
		t.Fatal(err)
	}
	lpns := []uint64{0, 1, 2, 17, 18, f.LogicalPages() + 5}
	got := f.LookupBatch(lpns)
	for i, lpn := range lpns {
		if want := f.Lookup(lpn); got[i] != want {
			t.Fatalf("LookupBatch[%d] (lpn %d) = %d, want %d", i, lpn, got[i], want)
		}
	}
}
