package nand

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/simclock"
)

func testConfig() Config {
	return Config{
		Geometry: Geometry{
			Channels: 2, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
			BlocksPerPlane: 8, PagesPerBlock: 4, PageSize: 512,
		},
		Timing:         DefaultTiming(),
		EnduranceLimit: 3,
	}
}

func page(b byte, size int) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestGeometryValidate(t *testing.T) {
	if err := DefaultGeometry().Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	bad := DefaultGeometry()
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero channels accepted")
	}
	bad = DefaultGeometry()
	bad.PageSize = 1000
	if err := bad.Validate(); err == nil {
		t.Fatal("non-512-multiple page size accepted")
	}
}

func TestGeometryArithmetic(t *testing.T) {
	g := testConfig().Geometry
	if got := g.TotalBlocks(); got != 16 {
		t.Fatalf("TotalBlocks = %d, want 16", got)
	}
	if got := g.TotalPages(); got != 64 {
		t.Fatalf("TotalPages = %d, want 64", got)
	}
	if got := g.CapacityBytes(); got != 64*512 {
		t.Fatalf("CapacityBytes = %d", got)
	}
	ppn := g.PPN(3, 2)
	if g.BlockOf(ppn) != 3 || g.PageIndexOf(ppn) != 2 {
		t.Fatalf("PPN round trip broken: ppn=%d block=%d page=%d", ppn, g.BlockOf(ppn), g.PageIndexOf(ppn))
	}
}

func TestGeometryPPNRoundTripProperty(t *testing.T) {
	g := DefaultGeometry()
	f := func(blk uint32, pg uint8) bool {
		block := uint64(blk) % uint64(g.TotalBlocks())
		pageIdx := int(pg) % g.PagesPerBlock
		ppn := g.PPN(block, pageIdx)
		return g.BlockOf(ppn) == block && g.PageIndexOf(ppn) == pageIdx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	d := New(testConfig())
	data := page(0xAB, 512)
	oob := OOB{LPN: 42, Seq: 7, Kind: 1}
	if _, err := d.Program(0, data, oob, 0); err != nil {
		t.Fatal(err)
	}
	got, gotOOB, _, err := d.Read(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read data mismatch")
	}
	if gotOOB != oob {
		t.Fatalf("OOB = %+v, want %+v", gotOOB, oob)
	}
}

func TestReadReturnsCopy(t *testing.T) {
	d := New(testConfig())
	if _, err := d.Program(0, page(1, 512), OOB{}, 0); err != nil {
		t.Fatal(err)
	}
	got, _, _, _ := d.Read(0, 0)
	got[0] = 99
	again, _, _, _ := d.Read(0, 0)
	if again[0] != 1 {
		t.Fatal("Read exposed internal buffer")
	}
}

func TestProgramRejectsInPlaceUpdate(t *testing.T) {
	d := New(testConfig())
	if _, err := d.Program(0, page(1, 512), OOB{}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Program(0, page(2, 512), OOB{}, 0); !errors.Is(err, ErrNotErased) {
		t.Fatalf("in-place program err = %v, want ErrNotErased", err)
	}
}

func TestProgramRejectsNonSequential(t *testing.T) {
	d := New(testConfig())
	if _, err := d.Program(2, page(1, 512), OOB{}, 0); !errors.Is(err, ErrNonSequential) {
		t.Fatalf("out-of-order program err = %v, want ErrNonSequential", err)
	}
	// Sequential within the block succeeds.
	for i := uint64(0); i < 4; i++ {
		if _, err := d.Program(i, page(byte(i), 512), OOB{}, 0); err != nil {
			t.Fatalf("sequential program page %d: %v", i, err)
		}
	}
}

func TestProgramRejectsWrongSize(t *testing.T) {
	d := New(testConfig())
	if _, err := d.Program(0, page(1, 100), OOB{}, 0); !errors.Is(err, ErrPageSize) {
		t.Fatalf("err = %v, want ErrPageSize", err)
	}
}

func TestReadUnwritten(t *testing.T) {
	d := New(testConfig())
	if _, _, _, err := d.Read(0, 0); !errors.Is(err, ErrUnwritten) {
		t.Fatalf("err = %v, want ErrUnwritten", err)
	}
}

func TestOutOfRange(t *testing.T) {
	d := New(testConfig())
	if _, _, _, err := d.Read(1 << 40, 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read err = %v", err)
	}
	if _, err := d.Program(1<<40, page(0, 512), OOB{}, 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("program err = %v", err)
	}
	if _, err := d.Erase(1<<40, 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("erase err = %v", err)
	}
}

func TestEraseResetsBlock(t *testing.T) {
	d := New(testConfig())
	for i := uint64(0); i < 4; i++ {
		if _, err := d.Program(i, page(byte(i), 512), OOB{LPN: i}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Erase(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := d.Read(0, 0); !errors.Is(err, ErrUnwritten) {
		t.Fatal("page still readable after erase")
	}
	// Block is programmable again from page 0.
	if _, err := d.Program(0, page(9, 512), OOB{}, 0); err != nil {
		t.Fatalf("program after erase: %v", err)
	}
	if d.EraseCount(0) != 1 {
		t.Fatalf("erase count = %d, want 1", d.EraseCount(0))
	}
}

func TestEnduranceLimit(t *testing.T) {
	d := New(testConfig()) // limit 3
	for i := 0; i < 3; i++ {
		if _, err := d.Erase(0, 0); err != nil {
			t.Fatalf("erase %d: %v", i, err)
		}
	}
	if !d.Bad(0) {
		t.Fatal("block not marked bad at endurance limit")
	}
	if _, err := d.Erase(0, 0); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("erase of bad block err = %v", err)
	}
	if _, err := d.Program(0, page(0, 512), OOB{}, 0); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("program of bad block err = %v", err)
	}
}

func TestChipSerialization(t *testing.T) {
	cfg := testConfig()
	d := New(cfg)
	// Blocks 0 and 2 are on chip 0 (striped over 2 chips); block 1 on chip 1.
	done0, err := d.Program(cfg.Geometry.PPN(0, 0), page(0, 512), OOB{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same chip: serializes after done0.
	done2, err := d.Program(cfg.Geometry.PPN(2, 0), page(0, 512), OOB{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !done2.After(done0) {
		t.Fatalf("same-chip ops did not serialize: %v then %v", done0, done2)
	}
	// Different chip: overlaps, completes at the bare program latency.
	done1, err := d.Program(cfg.Geometry.PPN(1, 0), page(0, 512), OOB{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := simclock.Time(0).Add(cfg.Timing.ProgramLatency + cfg.Timing.Transfer)
	if done1 != want {
		t.Fatalf("different-chip op done at %v, want %v", done1, want)
	}
}

func TestLatencyAccounting(t *testing.T) {
	cfg := testConfig()
	d := New(cfg)
	at := simclock.Time(1000)
	done, err := d.Program(0, page(0, 512), OOB{}, at)
	if err != nil {
		t.Fatal(err)
	}
	want := at.Add(cfg.Timing.ProgramLatency + cfg.Timing.Transfer)
	if done != want {
		t.Fatalf("program done at %v, want %v", done, want)
	}
}

func TestStats(t *testing.T) {
	d := New(testConfig())
	d.Program(0, page(0, 512), OOB{}, 0)
	d.Read(0, 0)
	d.Read(0, 0)
	d.Erase(0, 0)
	s := d.Stats()
	if s.Programs != 1 || s.Reads != 2 || s.Erases != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBitErrorInjection(t *testing.T) {
	cfg := testConfig()
	cfg.BitErrorProb = 1.0 // every read corrupts
	d := New(cfg)
	orig := page(0x00, 512)
	d.Program(0, orig, OOB{}, 0)
	got, _, _, err := d.Read(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("expected exactly one corrupted byte, got %d", diff)
	}
	if d.Stats().BitErrors != 1 {
		t.Fatalf("BitErrors = %d", d.Stats().BitErrors)
	}
}

func TestWearSummary(t *testing.T) {
	d := New(Config{Geometry: testConfig().Geometry, Timing: DefaultTiming()})
	d.Erase(0, 0)
	d.Erase(0, 0)
	d.Erase(1, 0)
	min, max, mean := d.WearSummary()
	if min != 0 || max != 2 {
		t.Fatalf("min=%d max=%d", min, max)
	}
	wantMean := 3.0 / 16.0
	if mean != wantMean {
		t.Fatalf("mean = %v, want %v", mean, wantMean)
	}
}

// Property: program-then-read round-trips arbitrary page contents.
func TestRoundTripProperty(t *testing.T) {
	cfg := testConfig()
	f := func(seed []byte) bool {
		d := New(cfg)
		data := make([]byte, 512)
		copy(data, seed)
		if _, err := d.Program(0, data, OOB{}, 0); err != nil {
			return false
		}
		got, _, _, err := d.Read(0, 0)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: erase count only ever increases, and Programmed resets to 0.
func TestEraseMonotonicProperty(t *testing.T) {
	d := New(Config{Geometry: testConfig().Geometry, Timing: DefaultTiming()})
	prev := 0
	for i := 0; i < 10; i++ {
		d.Program(0, page(1, 512), OOB{}, 0)
		if _, err := d.Erase(0, 0); err != nil {
			t.Fatal(err)
		}
		if c := d.EraseCount(0); c <= prev {
			t.Fatalf("erase count not monotonic: %d after %d", c, prev)
		} else {
			prev = c
		}
		if d.Programmed(0) != 0 {
			t.Fatal("Programmed not reset by erase")
		}
	}
}
