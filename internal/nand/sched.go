package nand

import "repro/internal/simclock"

// This file implements the per-channel batch scheduler: grouped page
// programs and reads that are interleaved across chips by next-free
// timestamp instead of being serialized in arrival order.
//
// The per-op entry points (Read, Program) model a firmware loop that waits
// for each flash operation to finish before issuing the next, so two
// operations on different chips never overlap even though the hardware
// could run them concurrently. The batch entry points model what the real
// controller does with a full submission queue: every chip with pending
// work is kept busy, and the scheduler always advances the chip that
// becomes free earliest. Operations targeting the same chip still
// serialize (and, within a block, still program in page order); operations
// on different chips overlap in simulated time.

// PageProgram describes one page program in a ProgramBatch.
type PageProgram struct {
	PPN  uint64
	Data []byte
	OOB  OOB
}

// chipQueue indexes a batch's operations for one chip, in submission order.
type chipQueue struct {
	chip int
	ops  []int // indexes into the batch
	next int   // next unissued op
}

// schedule runs a batch through the per-chip scheduler. ops[i] is issued by
// calling issue(i, start) where start is when the chip picks the operation
// up; issue returns the completion time (which the scheduler records as the
// chip's next-free time) or an error, which aborts the batch. chipOf maps a
// batch index to its chip. Per-op completion times are written into times.
func (d *Device) schedule(n int, chipOf func(int) int, times []simclock.Time,
	issue func(op int, start simclock.Time) (simclock.Time, error)) error {
	// Group the batch by chip, preserving submission order within a chip —
	// NAND requires in-order programming within a block, and same-chip
	// operations serialize anyway.
	byChip := map[int]*chipQueue{}
	var queues []*chipQueue
	for i := 0; i < n; i++ {
		c := chipOf(i)
		q := byChip[c]
		if q == nil {
			q = &chipQueue{chip: c}
			byChip[c] = q
			queues = append(queues, q)
		}
		q.ops = append(q.ops, i)
	}
	// Interleave: always advance the chip that frees up earliest (ties go
	// to the lower chip index, keeping the schedule deterministic).
	for {
		var pick *chipQueue
		var pickFree simclock.Time
		for _, q := range queues {
			if q.next >= len(q.ops) {
				continue
			}
			free := d.chipBusy[q.chip]
			if pick == nil || free < pickFree || (free == pickFree && q.chip < pick.chip) {
				pick, pickFree = q, free
			}
		}
		if pick == nil {
			return nil
		}
		op := pick.ops[pick.next]
		pick.next++
		done, err := issue(op, pickFree)
		if err != nil {
			return err
		}
		times[op] = done
	}
}

// ProgramBatch programs a group of pages as one submission. Each program
// starts no earlier than at and no earlier than its chip's next-free time;
// chips proceed independently, so programs on different chips overlap. It
// returns per-operation completion times (aligned with ops) and the batch
// completion time (the latest of them, or at for an empty batch).
//
// An error aborts the batch at the failing operation: earlier operations
// remain programmed, and their entries in the returned times are valid.
func (d *Device) ProgramBatch(ops []PageProgram, at simclock.Time) ([]simclock.Time, simclock.Time, error) {
	times := make([]simclock.Time, len(ops))
	if len(ops) == 0 {
		return times, at, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	err := d.schedule(len(ops), func(i int) int {
		return d.geo.ChipOfBlock(d.geo.BlockOf(ops[i].PPN))
	}, times, func(i int, start simclock.Time) (simclock.Time, error) {
		op := ops[i]
		return d.programLocked(op.PPN, op.Data, op.OOB, simclock.Max(at, start))
	})
	done := at
	for _, t := range times {
		if t > done {
			done = t
		}
	}
	return times, done, err
}

// ReadBatch reads a group of pages as one submission, with the same
// scheduling and error semantics as ProgramBatch. It returns the page
// contents and OOB areas aligned with ppns.
func (d *Device) ReadBatch(ppns []uint64, at simclock.Time) ([][]byte, []OOB, []simclock.Time, simclock.Time, error) {
	data := make([][]byte, len(ppns))
	oobs := make([]OOB, len(ppns))
	times := make([]simclock.Time, len(ppns))
	if len(ppns) == 0 {
		return data, oobs, times, at, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// Out-of-range PPNs would panic inside chipOf; reject them up front.
	for _, ppn := range ppns {
		if ppn >= uint64(len(d.pages)) {
			return data, oobs, times, at, ErrOutOfRange
		}
	}
	err := d.schedule(len(ppns), func(i int) int {
		return d.geo.ChipOfBlock(d.geo.BlockOf(ppns[i]))
	}, times, func(i int, start simclock.Time) (simclock.Time, error) {
		pg, oob, done, err := d.readLocked(ppns[i], simclock.Max(at, start))
		if err != nil {
			return at, err
		}
		data[i], oobs[i] = pg, oob
		return done, nil
	})
	done := at
	for _, t := range times {
		if t > done {
			done = t
		}
	}
	return data, oobs, times, done, err
}
