// Package nand simulates raw NAND flash: the geometry, timing, wear, and
// programming constraints of the flash array on a Cosmos+ OpenSSD-class
// board (the hardware the RSSD paper prototypes on).
//
// The simulator enforces the three physical rules every FTL is built
// around:
//
//  1. Pages must be erased before they are programmed (no in-place update).
//  2. Pages within a block must be programmed in order.
//  3. Erasure happens at block granularity and wears the block out; a block
//     past its endurance limit goes bad.
//
// All operations account simulated time against per-chip next-free
// timestamps, so channel/chip parallelism behaves the way it does in the
// real device: two operations on different chips overlap, two on the same
// chip serialize.
package nand

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/simclock"
)

// Geometry describes the physical layout of the flash array.
type Geometry struct {
	Channels        int // independent buses to the controller
	ChipsPerChannel int // flash packages per channel
	DiesPerChip     int
	PlanesPerDie    int
	BlocksPerPlane  int
	PagesPerBlock   int
	PageSize        int // bytes of user data per page (OOB is modeled separately)
}

// DefaultGeometry mirrors a small Cosmos+ OpenSSD configuration scaled down
// so that unit tests and benchmarks run quickly while preserving the
// channel/chip parallelism that matters for latency behaviour.
func DefaultGeometry() Geometry {
	return Geometry{
		Channels:        4,
		ChipsPerChannel: 2,
		DiesPerChip:     1,
		PlanesPerDie:    1,
		BlocksPerPlane:  64,
		PagesPerBlock:   64,
		PageSize:        4096,
	}
}

// Validate reports whether every field is positive.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0, g.ChipsPerChannel <= 0, g.DiesPerChip <= 0,
		g.PlanesPerDie <= 0, g.BlocksPerPlane <= 0, g.PagesPerBlock <= 0:
		return fmt.Errorf("nand: non-positive geometry field: %+v", g)
	case g.PageSize <= 0 || g.PageSize%512 != 0:
		return fmt.Errorf("nand: page size %d must be a positive multiple of 512", g.PageSize)
	}
	return nil
}

// Chips returns the total number of independently busy flash chips.
func (g Geometry) Chips() int { return g.Channels * g.ChipsPerChannel }

// BlocksPerChip returns the number of blocks on one chip.
func (g Geometry) BlocksPerChip() int {
	return g.DiesPerChip * g.PlanesPerDie * g.BlocksPerPlane
}

// TotalBlocks returns the number of erase blocks in the array.
func (g Geometry) TotalBlocks() int { return g.Chips() * g.BlocksPerChip() }

// TotalPages returns the number of programmable pages in the array.
func (g Geometry) TotalPages() int { return g.TotalBlocks() * g.PagesPerBlock }

// CapacityBytes returns the raw capacity of the array.
func (g Geometry) CapacityBytes() int64 {
	return int64(g.TotalPages()) * int64(g.PageSize)
}

// BlockOf returns the block containing physical page ppn.
func (g Geometry) BlockOf(ppn uint64) uint64 { return ppn / uint64(g.PagesPerBlock) }

// PageIndexOf returns the in-block page index of ppn.
func (g Geometry) PageIndexOf(ppn uint64) int { return int(ppn % uint64(g.PagesPerBlock)) }

// ChipOfBlock returns the chip a block lives on. Blocks are striped so that
// consecutive block numbers land on consecutive chips, which gives
// sequential allocation natural channel parallelism.
func (g Geometry) ChipOfBlock(block uint64) int { return int(block % uint64(g.Chips())) }

// PPN composes a physical page number from a block and in-block index.
func (g Geometry) PPN(block uint64, page int) uint64 {
	return block*uint64(g.PagesPerBlock) + uint64(page)
}

// Timing holds the latency model. Defaults approximate mid-range MLC NAND,
// the class of flash on the Cosmos+ board.
type Timing struct {
	ReadLatency  simclock.Duration // cell read to register
	ProgramLatency simclock.Duration
	EraseLatency simclock.Duration
	Transfer     simclock.Duration // register <-> controller DMA per page
}

// DefaultTiming returns the latency model used throughout the evaluation.
func DefaultTiming() Timing {
	return Timing{
		ReadLatency:    50 * simclock.Microsecond,
		ProgramLatency: 500 * simclock.Microsecond,
		EraseLatency:   3 * simclock.Millisecond,
		Transfer:       25 * simclock.Microsecond,
	}
}

// Config configures a simulated device.
type Config struct {
	Geometry Geometry
	Timing   Timing
	// EnduranceLimit is the number of program/erase cycles a block
	// tolerates before it goes bad. Zero means unlimited (useful in
	// long-horizon tests that are not about wear).
	EnduranceLimit int
	// BitErrorProb is the probability that a read returns data with a
	// single flipped bit, used by fault-injection tests. Zero disables.
	BitErrorProb float64
	// Seed drives the deterministic error-injection stream.
	Seed int64
}

// DefaultConfig returns a config with DefaultGeometry and DefaultTiming and
// a 3000-cycle endurance limit (typical MLC).
func DefaultConfig() Config {
	return Config{Geometry: DefaultGeometry(), Timing: DefaultTiming(), EnduranceLimit: 3000}
}

// OOB is the out-of-band (spare-area) metadata stored with each page. The
// FTL uses it to rebuild reverse mappings; RSSD additionally stamps the
// operation-log sequence number so retained pages can be tied to log
// entries during forensics.
type OOB struct {
	LPN  uint64 // logical page the data belonged to when written
	Seq  uint64 // operation-log sequence number of the write
	Kind uint8  // page kind tag, interpreted by the owner (host/GC/log)
}

// Errors returned by device operations.
var (
	ErrOutOfRange    = errors.New("nand: address out of range")
	ErrNotErased     = errors.New("nand: program to non-erased page")
	ErrNonSequential = errors.New("nand: non-sequential program within block")
	ErrUnwritten     = errors.New("nand: read of unwritten page")
	ErrBadBlock      = errors.New("nand: block is bad (endurance exceeded)")
	ErrPageSize      = errors.New("nand: payload size does not match page size")
)

type blockState struct {
	eraseCount int
	programmed int // pages programmed so far; next program must target this index
	bad        bool
	// readyAt is when the block's last erase completes. Erases run
	// suspend-capable (see Erase): other traffic on the chip proceeds,
	// but programs to this block must wait for readyAt.
	readyAt simclock.Time
}

// Stats counts raw flash operations; the FTL derives write amplification
// and lifetime estimates from these.
type Stats struct {
	Reads    uint64
	Programs uint64
	Erases   uint64
	BitErrors uint64
}

// Device is a simulated NAND flash array. It is safe for concurrent use.
type Device struct {
	geo    Geometry
	timing Timing
	cfg    Config

	mu       sync.Mutex
	pages    []*bufpool.Buf // nil = erased/unwritten; pooled page copies
	held     int64          // programmed pages currently holding a pooled buffer
	oobs     []OOB
	blocks   []blockState
	chipBusy []simclock.Time // host/GC datapath next-free per chip
	bgBusy   []simclock.Time // background (offload engine) next-free per chip
	stats    Stats
	rng      *rand.Rand
}

// New builds a device from cfg. It panics if the geometry is invalid, since
// that is a programming error in the simulation setup, not a runtime
// condition.
func New(cfg Config) *Device {
	if err := cfg.Geometry.Validate(); err != nil {
		panic(err)
	}
	g := cfg.Geometry
	return &Device{
		geo:      g,
		timing:   cfg.Timing,
		cfg:      cfg,
		pages:    make([]*bufpool.Buf, g.TotalPages()),
		oobs:     make([]OOB, g.TotalPages()),
		blocks:   make([]blockState, g.TotalBlocks()),
		chipBusy: make([]simclock.Time, g.Chips()),
		bgBusy:   make([]simclock.Time, g.Chips()),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geo }

// Stats returns a snapshot of the raw operation counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// occupy serializes an operation on the chip owning block: the operation
// starts when both the issuer (at) and the chip are free, and the chip is
// busy until start+dur. It returns the completion time.
func (d *Device) occupy(block uint64, at simclock.Time, dur simclock.Duration) simclock.Time {
	chip := d.geo.ChipOfBlock(block)
	start := simclock.Max(at, d.chipBusy[chip])
	done := start.Add(dur)
	d.chipBusy[chip] = done
	return done
}

// occupyBG serializes a background-lane operation: it starts only once the
// chip is free of host work and of earlier background work, and it never
// pushes the host lane's next-free time — modeling read-suspend, where a
// host command preempts a background read and the engine resumes in the
// next idle gap.
func (d *Device) occupyBG(block uint64, at simclock.Time, dur simclock.Duration) simclock.Time {
	chip := d.geo.ChipOfBlock(block)
	start := simclock.Max(at, simclock.Max(d.chipBusy[chip], d.bgBusy[chip]))
	done := start.Add(dur)
	d.bgBusy[chip] = done
	return done
}

// ReadBackground is Read on the background lane: the dedicated offload
// engine's page reads. The engine has strictly lower priority than the
// host datapath — its reads queue behind host operations and behind each
// other, but never delay subsequent host operations on the chip.
//
// The returned data is a pooled copy: the caller owns it until it calls
// data.Release(), after which the bytes may be reused by any pool consumer.
// This is the zero-copy read lane's contract — the offload engine releases
// each page once its bytes are sealed into a segment blob, so steady-state
// background reads allocate nothing.
func (d *Device) ReadBackground(ppn uint64, at simclock.Time) (data *bufpool.Buf, oob OOB, done simclock.Time, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	src, oob, done, err := d.readOn(ppn, at, d.occupyBG)
	if err != nil {
		return nil, oob, done, err
	}
	data = bufpool.Get(len(src))
	data.B = append(data.B, src...)
	d.maybeFlip(data.B)
	return data, oob, done, nil
}

// Read returns a copy of the page's data and OOB. The returned completion
// time reflects chip contention.
func (d *Device) Read(ppn uint64, at simclock.Time) (data []byte, oob OOB, done simclock.Time, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.readLocked(ppn, at)
}

// readLocked is Read with d.mu held.
func (d *Device) readLocked(ppn uint64, at simclock.Time) (data []byte, oob OOB, done simclock.Time, err error) {
	src, oob, done, err := d.readOn(ppn, at, d.occupy)
	if err != nil {
		return nil, oob, done, err
	}
	data = make([]byte, len(src))
	copy(data, src)
	d.maybeFlip(data)
	return data, oob, done, nil
}

// readOn performs a page read, charging chip time through the given lane
// (occupy for the host datapath, occupyBG for the offload engine). The
// returned slice aliases the stored page; callers copy it out before
// releasing d.mu.
func (d *Device) readOn(ppn uint64, at simclock.Time, lane func(uint64, simclock.Time, simclock.Duration) simclock.Time) (src []byte, oob OOB, done simclock.Time, err error) {
	if ppn >= uint64(len(d.pages)) {
		return nil, OOB{}, at, ErrOutOfRange
	}
	pg := d.pages[ppn]
	if pg == nil {
		return nil, OOB{}, at, ErrUnwritten
	}
	d.stats.Reads++
	done = lane(d.geo.BlockOf(ppn), at, d.timing.ReadLatency+d.timing.Transfer)
	return pg.B, d.oobs[ppn], done, nil
}

// maybeFlip injects a single-bit read error into data per the configured
// probability (fault-injection tests). Called with d.mu held so the rng
// stream stays deterministic.
func (d *Device) maybeFlip(data []byte) {
	if d.cfg.BitErrorProb > 0 && d.rng.Float64() < d.cfg.BitErrorProb {
		bit := d.rng.Intn(len(data) * 8)
		data[bit/8] ^= 1 << (bit % 8)
		d.stats.BitErrors++
	}
}

// Program writes data and OOB to an erased page. Pages within a block must
// be programmed sequentially, mirroring real NAND constraints.
func (d *Device) Program(ppn uint64, data []byte, oob OOB, at simclock.Time) (done simclock.Time, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.programLocked(ppn, data, oob, at)
}

// programLocked is Program with d.mu held.
func (d *Device) programLocked(ppn uint64, data []byte, oob OOB, at simclock.Time) (done simclock.Time, err error) {
	if ppn >= uint64(len(d.pages)) {
		return at, ErrOutOfRange
	}
	if len(data) != d.geo.PageSize {
		return at, ErrPageSize
	}
	block := d.geo.BlockOf(ppn)
	bs := &d.blocks[block]
	if bs.bad {
		return at, ErrBadBlock
	}
	if d.pages[ppn] != nil {
		return at, ErrNotErased
	}
	if idx := d.geo.PageIndexOf(ppn); idx != bs.programmed {
		return at, fmt.Errorf("%w: block %d page %d, expected page %d",
			ErrNonSequential, block, idx, bs.programmed)
	}
	// The stored copy is a pooled buffer: Erase releases it, so steady-state
	// program/erase churn recycles page memory instead of allocating it.
	buf := bufpool.Get(len(data))
	buf.B = append(buf.B, data...)
	d.pages[ppn] = buf
	d.held++
	d.oobs[ppn] = oob
	bs.programmed++
	d.stats.Programs++
	// A program cannot start until the block's erase has fully completed.
	return d.occupy(block, simclock.Max(at, bs.readyAt), d.timing.ProgramLatency+d.timing.Transfer), nil
}

// Erase wipes a block, incrementing its wear counter. Once the endurance
// limit is exceeded the block is marked bad and further programs fail.
//
// Erases are suspend-capable, as on modern NAND: host reads and programs
// to other blocks on the chip preempt an in-flight erase, so the erase
// occupies the chip's background lane instead of stalling the datapath
// for its full multi-millisecond latency. The erased block itself stays
// unavailable for programming until the erase completes (readyAt).
func (d *Device) Erase(block uint64, at simclock.Time) (done simclock.Time, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if block >= uint64(len(d.blocks)) {
		return at, ErrOutOfRange
	}
	bs := &d.blocks[block]
	if bs.bad {
		return at, ErrBadBlock
	}
	base := block * uint64(d.geo.PagesPerBlock)
	for i := 0; i < d.geo.PagesPerBlock; i++ {
		// Every read hands out a copy, so no borrowed view can outlive the
		// page; releasing the storage back to the pool here is what makes
		// the program path allocation-free in steady state.
		if d.pages[base+uint64(i)] != nil {
			d.pages[base+uint64(i)].Release()
			d.pages[base+uint64(i)] = nil
			d.held--
		}
		d.oobs[base+uint64(i)] = OOB{}
	}
	bs.programmed = 0
	bs.eraseCount++
	d.stats.Erases++
	if d.cfg.EnduranceLimit > 0 && bs.eraseCount >= d.cfg.EnduranceLimit {
		bs.bad = true
	}
	done = d.occupyBG(block, at, d.timing.EraseLatency)
	bs.readyAt = done
	return done, nil
}

// ReadOOB returns a page's out-of-band metadata without transferring the
// data, reporting ok=false for erased pages. Mount-time recovery scans use
// it; like real OOB scans it does not occupy the data path, so no
// simulated time is charged.
func (d *Device) ReadOOB(ppn uint64) (OOB, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if ppn >= uint64(len(d.pages)) || d.pages[ppn] == nil {
		return OOB{}, false
	}
	return d.oobs[ppn], true
}

// HeldPageBufs returns how many pooled page buffers the array currently
// holds for programmed flash content. Leak checks against the bufpool
// outstanding-buffer gauge subtract this residency: live flash data is
// supposed to hold its buffers, and only growth beyond it is a leak.
func (d *Device) HeldPageBufs() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.held
}

// EraseCount returns a block's wear counter.
func (d *Device) EraseCount(block uint64) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if block >= uint64(len(d.blocks)) {
		return 0
	}
	return d.blocks[block].eraseCount
}

// Bad reports whether a block has exceeded its endurance limit.
func (d *Device) Bad(block uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return block < uint64(len(d.blocks)) && d.blocks[block].bad
}

// WearSummary returns the min, max and mean erase counts across all
// non-bad blocks; wear-leveling tests and the lifetime experiment use it.
func (d *Device) WearSummary() (min, max int, mean float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.blocks) == 0 {
		return 0, 0, 0
	}
	min = int(^uint(0) >> 1)
	var sum, n int
	for i := range d.blocks {
		b := &d.blocks[i]
		if b.bad {
			continue
		}
		if b.eraseCount < min {
			min = b.eraseCount
		}
		if b.eraseCount > max {
			max = b.eraseCount
		}
		sum += b.eraseCount
		n++
	}
	if n == 0 {
		return 0, max, 0
	}
	return min, max, float64(sum) / float64(n)
}

// Programmed returns how many pages of the block have been programmed; the
// FTL uses it when adopting a device image (e.g. after simulated power
// cycle in recovery tests).
func (d *Device) Programmed(block uint64) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if block >= uint64(len(d.blocks)) {
		return 0
	}
	return d.blocks[block].programmed
}
