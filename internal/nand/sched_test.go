package nand

import (
	"testing"

	"repro/internal/simclock"
)

func schedConfig() Config {
	return Config{
		Geometry: Geometry{
			Channels: 4, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
			BlocksPerPlane: 4, PagesPerBlock: 4, PageSize: 512,
		},
		Timing: DefaultTiming(),
	}
}

func schedPage(b byte) []byte {
	p := make([]byte, 512)
	for i := range p {
		p[i] = b
	}
	return p
}

// TestProgramBatchOverlapsAcrossChips programs one page on each of four
// chips as a batch: the batch must finish in one program latency, not
// four, because the chips proceed independently.
func TestProgramBatchOverlapsAcrossChips(t *testing.T) {
	d := New(schedConfig())
	g := d.Geometry()
	perOp := d.timing.ProgramLatency + d.timing.Transfer
	var ops []PageProgram
	for chip := 0; chip < g.Chips(); chip++ {
		// Block numbers are striped across chips: block i lives on chip i.
		ops = append(ops, PageProgram{PPN: g.PPN(uint64(chip), 0), Data: schedPage(byte(chip))})
	}
	times, done, err := d.ProgramBatch(ops, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done != simclock.Time(perOp) {
		t.Fatalf("batch across %d chips took %v, want one program latency %v", g.Chips(), simclock.Duration(done), perOp)
	}
	for i, ts := range times {
		if ts != simclock.Time(perOp) {
			t.Fatalf("op %d done at %v, want %v", i, ts, simclock.Time(perOp))
		}
	}
}

// TestProgramBatchSerializesWithinChip programs two pages of one block:
// they must serialize on the chip and program in page order.
func TestProgramBatchSerializesWithinChip(t *testing.T) {
	d := New(schedConfig())
	g := d.Geometry()
	perOp := simclock.Duration(d.timing.ProgramLatency + d.timing.Transfer)
	ops := []PageProgram{
		{PPN: g.PPN(0, 0), Data: schedPage(1)},
		{PPN: g.PPN(0, 1), Data: schedPage(2)},
	}
	times, done, err := d.ProgramBatch(ops, 0)
	if err != nil {
		t.Fatal(err)
	}
	if times[1] != times[0].Add(perOp) || done != times[1] {
		t.Fatalf("same-chip ops did not serialize: %v then %v", times[0], times[1])
	}
}

// TestReadBatchInterleavesByNextFree seeds different queue depths on two
// chips and checks the scheduler issues on the chip that frees earliest.
func TestReadBatchInterleavesByNextFree(t *testing.T) {
	d := New(schedConfig())
	g := d.Geometry()
	// Two pages on chip 0, one page on chip 1.
	progs := []PageProgram{
		{PPN: g.PPN(0, 0), Data: schedPage(1)},
		{PPN: g.PPN(0, 1), Data: schedPage(2)},
		{PPN: g.PPN(1, 0), Data: schedPage(3)},
	}
	if _, _, err := d.ProgramBatch(progs, 0); err != nil {
		t.Fatal(err)
	}
	// Reading all three at once: chip-0 reads serialize, chip-1 read rides
	// in parallel, so the batch takes two read slots, not three.
	readOp := simclock.Duration(d.timing.ReadLatency + d.timing.Transfer)
	base := simclock.Time(0).Add(simclock.Duration(d.timing.ProgramLatency+d.timing.Transfer) * 2)
	_, _, times, done, err := d.ReadBatch([]uint64{g.PPN(0, 0), g.PPN(0, 1), g.PPN(1, 0)}, base)
	if err != nil {
		t.Fatal(err)
	}
	if want := base.Add(2 * readOp); done != want {
		t.Fatalf("batch done %v, want %v (2 read slots)", done, want)
	}
	if times[2] >= times[1] {
		t.Fatal("chip-1 read should complete before chip-0's second read")
	}
}

// TestBackgroundReadDoesNotDelayHost checks the offload engine's lane:
// a background read occupies only the background lane, so a host read
// issued at the same instant is unaffected; a second background read
// queues behind the first.
func TestBackgroundReadDoesNotDelayHost(t *testing.T) {
	d := New(schedConfig())
	g := d.Geometry()
	if _, err := d.Program(g.PPN(0, 0), schedPage(1), OOB{}, 0); err != nil {
		t.Fatal(err)
	}
	start := simclock.Time(simclock.Second)
	readOp := simclock.Duration(d.timing.ReadLatency + d.timing.Transfer)
	bgData, _, bgDone, err := d.ReadBackground(g.PPN(0, 0), start)
	if err != nil {
		t.Fatal(err)
	}
	if string(bgData.B) != string(schedPage(1)) {
		t.Fatal("background read returned wrong data")
	}
	bgData.Release()
	if bgDone != start.Add(readOp) {
		t.Fatalf("bg read done %v, want %v", bgDone, start.Add(readOp))
	}
	_, _, hostDone, err := d.Read(g.PPN(0, 0), start)
	if err != nil {
		t.Fatal(err)
	}
	if hostDone != start.Add(readOp) {
		t.Fatalf("host read delayed by background read: done %v, want %v", hostDone, start.Add(readOp))
	}
	bg2Data, _, bg2, err := d.ReadBackground(g.PPN(0, 0), start)
	if err != nil {
		t.Fatal(err)
	}
	bg2Data.Release()
	// The second background read queues behind the first AND behind the
	// host lane (host traffic has priority).
	if bg2 <= bgDone {
		t.Fatalf("second bg read did not queue: %v after first %v", bg2, bgDone)
	}
}

// TestEraseSuspend checks the suspend model: an in-flight erase delays
// neither reads nor programs to other blocks on the chip, but a program
// to the freshly erased block waits for the erase to complete.
func TestEraseSuspend(t *testing.T) {
	d := New(schedConfig())
	g := d.Geometry()
	// Block 0 and block 4 share chip 0 (4 chips, striped).
	if _, err := d.Program(g.PPN(0, 0), schedPage(1), OOB{}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Program(g.PPN(4, 0), schedPage(2), OOB{}, 0); err != nil {
		t.Fatal(err)
	}
	base := simclock.Time(simclock.Second)
	eraseDone, err := d.Erase(0, base)
	if err != nil {
		t.Fatal(err)
	}
	if eraseDone != base.Add(d.timing.EraseLatency) {
		t.Fatalf("erase done %v, want %v", eraseDone, base.Add(d.timing.EraseLatency))
	}
	// Read of the *other* block on the same chip: not delayed.
	readOp := simclock.Duration(d.timing.ReadLatency + d.timing.Transfer)
	_, _, readDone, err := d.Read(g.PPN(4, 0), base)
	if err != nil {
		t.Fatal(err)
	}
	if readDone != base.Add(readOp) {
		t.Fatalf("read behind suspended erase: done %v, want %v", readDone, base.Add(readOp))
	}
	// Program to the erased block: must wait for the erase to finish.
	progDone, err := d.Program(g.PPN(0, 0), schedPage(3), OOB{}, base)
	if err != nil {
		t.Fatal(err)
	}
	if progDone.Before(eraseDone) {
		t.Fatalf("program to erasing block completed at %v, before erase done %v", progDone, eraseDone)
	}
}
