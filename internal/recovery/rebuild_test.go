package recovery

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/ftl"
	"repro/internal/nand"
	"repro/internal/simclock"
)

// TestImageBeforeMatchesShadow drives random writes/trims, snapshots a
// shadow model at a chosen sequence, keeps churning, then checks
// ImageBefore reproduces the shadow exactly — from live, locally retained,
// and remote versions combined.
func TestImageBeforeMatchesShadow(t *testing.T) {
	r := newRig(t)
	rng := rand.New(rand.NewSource(11))
	at := simclock.Time(0)
	const lpns = 24
	shadow := map[uint64][]byte{}
	fill := func(b byte) []byte {
		p := make([]byte, 512)
		for i := range p {
			p[i] = b
		}
		return p
	}
	step := func(i int) {
		lpn := uint64(rng.Intn(lpns))
		if rng.Intn(10) == 0 {
			var err error
			at, err = r.dev.Trim(lpn, at)
			if err != nil {
				t.Fatal(err)
			}
			delete(shadow, lpn)
			return
		}
		b := byte(rng.Intn(256))
		var err error
		at, err = r.dev.Write(lpn, fill(b), at)
		if err != nil {
			t.Fatal(err)
		}
		shadow[lpn] = fill(b)
	}
	for i := 0; i < 300; i++ {
		step(i)
	}
	cut := r.dev.Log().NextSeq()
	want := map[uint64][]byte{}
	for k, v := range shadow {
		want[k] = v
	}
	// Keep churning so the pre-cut state must come from history.
	for i := 0; i < 300; i++ {
		step(i)
	}

	img, err := r.dev.ImageBefore(cut, at)
	if err != nil {
		t.Fatal(err)
	}
	for lpn := uint64(0); lpn < lpns; lpn++ {
		exp, ok := want[lpn]
		got := img[lpn]
		if !ok {
			if got != nil && !bytes.Equal(got, make([]byte, 512)) {
				t.Fatalf("lpn %d: expected zeroes, got data", lpn)
			}
			continue
		}
		if got == nil || !bytes.Equal(got, exp) {
			t.Fatalf("lpn %d: image mismatch", lpn)
		}
	}
}

// TestRebuildToFreshDevice performs the disaster-recovery path: after an
// attack, rebuild the pre-attack image onto a brand-new drive and verify
// it matches the original filesystem contents.
func TestRebuildToFreshDevice(t *testing.T) {
	r := newRig(t)
	rng := rand.New(rand.NewSource(12))
	attack.Seed(r.fs, rng, 15, 3)
	snap := snapshotFiles(t, r.fs)
	extents := map[string][]uint64{}
	for name := range snap {
		pages, _ := r.fs.Extents(name)
		extents[name] = pages
	}
	cut := r.dev.Log().NextSeq()
	if _, err := (&attack.GCAttack{Key: [32]byte{8}, Rounds: 1}).Run(r.fs, rng); err != nil {
		t.Fatal(err)
	}

	// A fresh replacement drive.
	fresh := ftl.New(ftl.Config{
		NAND: nand.Config{
			Geometry: nand.Geometry{
				Channels: 2, ChipsPerChannel: 2, DiesPerChip: 1, PlanesPerDie: 1,
				BlocksPerPlane: 64, PagesPerBlock: 8, PageSize: 512,
			},
			Timing: nand.DefaultTiming(),
		},
		OverProvision: 0.2,
	}, nil)

	eng := NewEngine(r.dev, r.client, Options{})
	at, rep, err := eng.RebuildTo(fresh, cut, r.fs.Clock().Now())
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesWritten == 0 {
		t.Fatal("rebuild wrote nothing")
	}
	ps := 512
	for name, want := range snap {
		for i, lpn := range extents[name] {
			got, _, err := fresh.Read(lpn, at)
			if err != nil {
				t.Fatalf("fresh read lpn %d: %v", lpn, err)
			}
			expect := make([]byte, ps)
			if off := i * ps; off < len(want) {
				copy(expect, want[off:])
			}
			if !bytes.Equal(got, expect) {
				t.Fatalf("%s page %d wrong on rebuilt device", name, i)
			}
		}
	}
}

// TestOffloadFailureDoesNotFailHostIO: killing the remote session must not
// fail writes; retention accumulates and the error is surfaced out of band.
func TestOffloadFailureDoesNotFailHostIO(t *testing.T) {
	r := newRig(t)
	at := simclock.Time(0)
	page := make([]byte, 512)
	// Sever the NVMe-oE session.
	r.client.Close()
	for i := 0; i < 800; i++ {
		var err error
		at, err = r.dev.Write(uint64(i)%8, page, at)
		if err != nil {
			t.Fatalf("write %d failed after remote loss: %v", i, err)
		}
	}
	if r.dev.Stats().OffloadErrors == 0 {
		t.Fatal("offload errors not counted")
	}
	if r.dev.LastOffloadError() == nil {
		t.Fatal("last offload error not surfaced")
	}
}
