package recovery

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/entropy"
	"repro/internal/forensic"
	"repro/internal/ftl"
	"repro/internal/host"
	"repro/internal/nand"
	"repro/internal/remote"
	"repro/internal/simclock"
)

var psk = []byte("recovery-test-psk-0123456789abcd")

type rig struct {
	fs     *host.FlatFS
	dev    *core.RSSD
	store  *remote.Store
	client *remote.Client
}

func newRig(t *testing.T) *rig {
	t.Helper()
	store := remote.NewStore(remote.NewMemStore())
	srv := remote.NewServer(store, psk)
	client, err := remote.Loopback(srv, psk, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	cfg := core.DefaultConfig()
	cfg.FTL = ftl.Config{
		NAND: nand.Config{
			Geometry: nand.Geometry{
				Channels: 2, ChipsPerChannel: 2, DiesPerChip: 1, PlanesPerDie: 1,
				BlocksPerPlane: 64, PagesPerBlock: 8, PageSize: 512,
			},
			Timing: nand.DefaultTiming(),
		},
		OverProvision: 0.2,
	}
	cfg.CheckpointEvery = 256
	dev := core.New(cfg, client)
	return &rig{fs: host.NewFlatFS(dev, simclock.NewClock()), dev: dev, store: store, client: client}
}

// snapshotFiles reads every current file (a pre-attack content snapshot).
func snapshotFiles(t *testing.T, fs *host.FlatFS) map[string][]byte {
	t.Helper()
	snap := map[string][]byte{}
	for _, name := range fs.List() {
		data, err := fs.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		snap[name] = data
	}
	return snap
}

// analyzeAndRestore runs forensics then recovery, returning the report.
func analyzeAndRestore(t *testing.T, r *rig, verify bool) Report {
	t.Helper()
	a := forensic.NewAnalyzer(r.dev, r.client)
	ev, err := a.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	win, err := a.AttackWindow(ev, r.dev.Log().NextSeq())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(r.dev, r.client, Options{Verify: verify})
	_, rep, err := eng.RestoreWindow(win, r.fs.Clock().Now())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRecoveryAfterEncryptor(t *testing.T) {
	r := newRig(t)
	rng := rand.New(rand.NewSource(1))
	attack.Seed(r.fs, rng, 20, 3)
	attack.RunBenign(r.fs, rng, 80, simclock.Minute)
	snap := snapshotFiles(t, r.fs)
	if _, err := (&attack.Encryptor{Key: [32]byte{1}}).Run(r.fs, rng); err != nil {
		t.Fatal(err)
	}
	rep := analyzeAndRestore(t, r, true)
	if !rep.Complete() {
		t.Fatalf("recovery incomplete: %+v", rep)
	}
	if rep.PagesVerified == 0 {
		t.Fatal("nothing was verified")
	}
	for name, want := range snap {
		got, err := r.fs.ReadFile(name)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s not restored to pre-attack content", name)
		}
	}
}

func TestRecoveryAfterGCAttack(t *testing.T) {
	r := newRig(t)
	rng := rand.New(rand.NewSource(2))
	attack.Seed(r.fs, rng, 15, 3)
	snap := snapshotFiles(t, r.fs)
	if _, err := (&attack.GCAttack{Key: [32]byte{2}, Rounds: 2}).Run(r.fs, rng); err != nil {
		t.Fatal(err)
	}
	// The flood forced garbage collection; on RSSD nothing was lost.
	if r.dev.Stats().DroppedPages != 0 {
		t.Fatalf("RSSD dropped %d pages under GC attack", r.dev.Stats().DroppedPages)
	}
	analyzeAndRestore(t, r, false)
	for name, want := range snap {
		got, err := r.fs.ReadFile(name)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s not restored after GC attack", name)
		}
	}
}

func TestRecoveryAfterTrimmingAttack(t *testing.T) {
	r := newRig(t)
	rng := rand.New(rand.NewSource(3))
	attack.Seed(r.fs, rng, 10, 3)
	snap := snapshotFiles(t, r.fs)
	// Capture the physical layout before the attack deletes the files.
	extents := map[string][]uint64{}
	for name := range snap {
		pages, err := r.fs.Extents(name)
		if err != nil {
			t.Fatal(err)
		}
		extents[name] = pages
	}
	if _, err := (&attack.TrimmingAttack{Key: [32]byte{3}}).Run(r.fs, rng); err != nil {
		t.Fatal(err)
	}
	rep := analyzeAndRestore(t, r, true)
	if rep.VerifyFailures != 0 {
		t.Fatalf("verify failures: %+v", rep)
	}
	// The trimmed pages hold their original plaintext again (block-level
	// restore; re-attaching filesystem names is the filesystem's job).
	ps := r.dev.PageSize()
	for name, want := range snap {
		for i, lpn := range extents[name] {
			got, _, err := r.dev.Read(lpn, r.fs.Clock().Now())
			if err != nil {
				t.Fatalf("read lpn %d: %v", lpn, err)
			}
			expect := make([]byte, ps)
			if off := i * ps; off < len(want) {
				copy(expect, want[off:])
			}
			if !bytes.Equal(got, expect) {
				t.Fatalf("%s page %d not restored", name, i)
			}
		}
	}
}

func TestRecoveryAfterTimingAttack(t *testing.T) {
	r := newRig(t)
	rng := rand.New(rand.NewSource(4))
	attack.Seed(r.fs, rng, 15, 3)
	snap := snapshotFiles(t, r.fs)
	atk := &attack.TimingAttack{
		Key: [32]byte{4}, FilesPerBurst: 2,
		BurstInterval: 12 * simclock.Hour, CoverOpsPerOp: 3,
	}
	if _, err := atk.Run(r.fs, rng); err != nil {
		t.Fatal(err)
	}
	rep := analyzeAndRestore(t, r, false)
	if rep.PagesRestored == 0 {
		t.Fatalf("nothing restored: %+v", rep)
	}
	// Seeded victim files roll back to their pre-window content.
	for name, want := range snap {
		got, err := r.fs.ReadFile(name)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if entropy.IsHigh(entropy.Shannon(got)) {
			t.Fatalf("%s still ciphertext after recovery", name)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s differs from pre-attack snapshot", name)
		}
	}
}

func TestRecoveryZeroesNeverWrittenVictims(t *testing.T) {
	r := newRig(t)
	at := simclock.Time(0)
	// Attacker writes ciphertext straight to a fresh page.
	junk := make([]byte, 512)
	rand.New(rand.NewSource(5)).Read(junk)
	at, _ = r.dev.Write(40, junk, at)
	win := forensic.Window{StartSeq: 0, EndSeq: 1, Victims: []uint64{40}}
	eng := NewEngine(r.dev, r.client, Options{})
	_, rep, err := eng.RestoreWindow(win, at)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesZeroed != 1 || rep.PagesRestored != 0 {
		t.Fatalf("report = %+v", rep)
	}
	data, _, _ := r.dev.Read(40, at)
	if !bytes.Equal(data, make([]byte, 512)) {
		t.Fatal("victim not zeroed")
	}
}

func TestRecoveryIsLoggedAsRecovery(t *testing.T) {
	r := newRig(t)
	rng := rand.New(rand.NewSource(6))
	attack.Seed(r.fs, rng, 5, 2)
	(&attack.Encryptor{Key: [32]byte{1}}).Run(r.fs, rng)
	analyzeAndRestore(t, r, false)
	a := forensic.NewAnalyzer(r.dev, r.client)
	ev, err := a.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	var recoveries int
	for _, e := range ev.Entries {
		if e.Kind.String() == "recovery" {
			recoveries++
		}
	}
	if recoveries == 0 {
		t.Fatal("recovery actions not in evidence chain")
	}
}

func TestReportCompleteSemantics(t *testing.T) {
	r := Report{VictimPages: 3, PagesRestored: 2, PagesZeroed: 1}
	if !r.Complete() {
		t.Fatal("should be complete")
	}
	r.VerifyFailures = 1
	if r.Complete() {
		t.Fatal("verify failure should mean incomplete")
	}
	r = Report{VictimPages: 3, PagesRestored: 2}
	if r.Complete() {
		t.Fatal("missing page should mean incomplete")
	}
}
