// Package recovery restores the pre-attack state of victim pages from
// RSSD's retained versions — local pins and remote segments — with
// cryptographic verification against the operation log.
//
// Given a forensic attack window, the engine rolls every victim page back
// to the newest version written before the window started. Because RSSD
// retains all stale data (zero data loss), this restore is complete: the
// paper's Table 1 "Recoverable" entry for RSSD versus the partial or
// absent recovery of prior systems.
package recovery

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/forensic"
	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
)

// Options tunes a recovery run.
type Options struct {
	// Verify checks each restored page's content hash against the log
	// entry that originally wrote it.
	Verify bool
}

// Report summarizes a recovery run.
type Report struct {
	VictimPages    int
	PagesRestored  int // rolled back to a retained version
	PagesZeroed    int // pre-attack state was unwritten/trimmed
	PagesVerified  int
	VerifyFailures int
	BytesRestored  int
	SimTime        simclock.Duration // simulated device time consumed
	WallTime       time.Duration     // host compute time
}

func (r Report) String() string {
	return fmt.Sprintf("recovery: %d victims -> %d restored, %d zeroed, %d verified (%d failures), %d bytes, sim %v, wall %v",
		r.VictimPages, r.PagesRestored, r.PagesZeroed, r.PagesVerified, r.VerifyFailures,
		r.BytesRestored, r.SimTime, r.WallTime)
}

// Complete reports whether every victim page was restored (or correctly
// zeroed) with no verification failures.
func (r Report) Complete() bool {
	return r.PagesRestored+r.PagesZeroed == r.VictimPages && r.VerifyFailures == 0
}

// Engine performs point-in-time restoration on an RSSD device.
type Engine struct {
	dev    *core.RSSD
	client *remote.Client // for verification lookups; may be nil
	opts   Options
}

// NewEngine returns a recovery engine. client may be nil, in which case
// verification can only use the local log.
func NewEngine(dev *core.RSSD, client *remote.Client, opts Options) *Engine {
	return &Engine{dev: dev, client: client, opts: opts}
}

// RestoreWindow rolls every victim page in the window back to its state
// just before the attack began, returning the simulated completion time
// and a report.
func (e *Engine) RestoreWindow(win forensic.Window, at simclock.Time) (simclock.Time, Report, error) {
	wallStart := time.Now()
	simStart := at
	rep := Report{VictimPages: len(win.Victims)}
	for _, lpn := range win.Victims {
		data, writeSeq, ok, err := e.dev.VersionBefore(lpn, win.StartSeq, at)
		if err != nil {
			return at, rep, fmt.Errorf("recovery: version of lpn %d: %w", lpn, err)
		}
		if !ok {
			// Page did not exist before the attack: restore to unmapped.
			at, err = e.dev.RestoreTrim(lpn, at)
			if err != nil {
				return at, rep, fmt.Errorf("recovery: zero lpn %d: %w", lpn, err)
			}
			rep.PagesZeroed++
			continue
		}
		if e.opts.Verify && writeSeq != core.NoSeq {
			match, err := e.verify(lpn, writeSeq, data)
			if err != nil {
				return at, rep, err
			}
			if match {
				rep.PagesVerified++
			} else {
				rep.VerifyFailures++
				continue // refuse to restore unverifiable content
			}
		}
		at, err = e.dev.RestoreWrite(lpn, data, at)
		if err != nil {
			return at, rep, fmt.Errorf("recovery: restore lpn %d: %w", lpn, err)
		}
		rep.PagesRestored++
		rep.BytesRestored += len(data)
	}
	rep.SimTime = at.Sub(simStart)
	rep.WallTime = time.Since(wallStart)
	return at, rep, nil
}

// RestoreImage rolls the whole device back to its state just before log
// sequence `before`, in place, through the core's resumable streamed
// restorer: remote history arrives in codec-framed chunks over a
// dedicated recovery session, pages apply incrementally, and a mid-stream
// disconnect resumes from the cursor. This is the rollback path fleet
// power-cycle recovery drives — same restorer, same chunk stream, same
// link model as any other restore.
func (e *Engine) RestoreImage(before uint64, opts core.RestoreOptions, at simclock.Time) (simclock.Time, core.RestoreReport, error) {
	return e.dev.RestoreImage(before, opts, at)
}

// RebuildReport summarizes a full-device rebuild.
type RebuildReport struct {
	PagesWritten int
	PagesZero    int
	SimTime      simclock.Duration
	WallTime     time.Duration
}

func (r RebuildReport) String() string {
	return fmt.Sprintf("rebuild: %d pages written, %d zero, sim %v, wall %v",
		r.PagesWritten, r.PagesZero, r.SimTime, r.WallTime)
}

// Target is the destination of a device rebuild — any writable block
// device (a fresh replacement drive).
type Target interface {
	Write(lpn uint64, data []byte, at simclock.Time) (simclock.Time, error)
	PageSize() int
	LogicalPages() uint64
}

// RebuildTo reconstructs the source device's full logical image as of log
// sequence `before` and writes it onto a fresh target device. This is the
// disaster-recovery path: the victim machine is considered lost, and the
// retained history (local + remote) rebuilds a clean drive.
func (e *Engine) RebuildTo(target Target, before uint64, at simclock.Time) (simclock.Time, RebuildReport, error) {
	wallStart := time.Now()
	simStart := at
	rep := RebuildReport{}
	img, err := e.dev.ImageBefore(before, at)
	if err != nil {
		return at, rep, fmt.Errorf("recovery: image: %w", err)
	}
	n := uint64(len(img))
	if t := target.LogicalPages(); t < n {
		n = t
	}
	for lpn := uint64(0); lpn < n; lpn++ {
		if img[lpn] == nil {
			rep.PagesZero++
			continue // fresh device already reads zeroes
		}
		at, err = target.Write(lpn, img[lpn], at)
		if err != nil {
			return at, rep, fmt.Errorf("recovery: rebuild lpn %d: %w", lpn, err)
		}
		rep.PagesWritten++
	}
	rep.SimTime = at.Sub(simStart)
	rep.WallTime = time.Since(wallStart)
	return at, rep, nil
}

// verify compares data against the DataHash recorded by the log entry that
// wrote this version, consulting the local log first and the remote store
// for pruned entries.
func (e *Engine) verify(lpn, writeSeq uint64, data []byte) (bool, error) {
	var entry *oplog.Entry
	if writeSeq >= e.dev.Log().BaseSeq() {
		if got := e.dev.Log().Entries(writeSeq, writeSeq+1); len(got) == 1 {
			entry = &got[0]
		}
	} else if e.client != nil {
		got, err := e.client.FetchEntries(writeSeq, writeSeq+1)
		if err != nil {
			return false, fmt.Errorf("recovery: fetch entry %d: %w", writeSeq, err)
		}
		if len(got) == 1 {
			entry = &got[0]
		}
	}
	if entry == nil {
		// Entry unavailable (no remote, pruned log): accept unverified.
		return true, nil
	}
	if entry.LPN != lpn {
		return false, nil
	}
	return entry.DataHash == oplog.HashData(data), nil
}
