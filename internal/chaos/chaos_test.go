package chaos

import (
	"errors"
	"net"
	"testing"

	"repro/internal/ftl"
	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
)

// drawTrace replays a fixed opportunity sequence (dials across devices,
// first-touch tier ops) against one injector and records every decision
// the schedule made. Two injectors with the same seed must produce
// identical traces whatever else happened between draws — that is the
// replayability contract every soak failure message leans on.
func drawTrace(inj *Injector) []bool {
	var trace []bool
	for dev := uint64(1); dev <= 8; dev++ {
		for n := 0; n < 40; n++ {
			a, b := net.Pipe()
			wrapped := inj.WrapConn(dev, a)
			_, cut := wrapped.(*remote.ChokeConn)
			mut := false
			if ch, ok := wrapped.(*remote.ChokeConn); ok {
				_, mut = ch.Conn.(*mutConn)
			} else {
				_, mut = wrapped.(*mutConn)
			}
			trace = append(trace, cut, mut)
			a.Close()
			b.Close()
		}
	}
	ms := remote.NewMemStore()
	fs := inj.WrapStore(ms)
	for i := 0; i < 100; i++ {
		key := keyFor(uint64(i%8), uint64(i))
		trace = append(trace, fs.Put(key, []byte("x")) != nil)
		_, err := fs.Get(key)
		trace = append(trace, err != nil)
	}
	for w := uint64(0); w < 60; w++ {
		srv, kill := inj.DrawKill(w, 4)
		trace = append(trace, kill, kill && srv >= 2)
	}
	return trace
}

func keyFor(dev, seq uint64) string {
	return "dev/" + string(rune('0'+dev)) + "/seg/" + string(rune('a'+seq%26)) + string(rune('a'+seq/26))
}

func midRates() Rates {
	return Rates{ConnCut: 0.3, WireMutate: 0.2, TierErr: 0.25, TierSlow: 0.25}
}

func TestScheduleDeterminism(t *testing.T) {
	sched := Schedule{Seed: 42, Rates: midRates(), MTBF: 3}
	t1 := drawTrace(NewInjector(sched))
	t2 := drawTrace(NewInjector(sched))
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	fired := 0
	for _, v := range t1 {
		if v {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("schedule drew no faults at these rates; determinism test is vacuous")
	}

	t3 := drawTrace(NewInjector(Schedule{Seed: 43, Rates: midRates(), MTBF: 3}))
	same := true
	for i := range t1 {
		if t1[i] != t3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestLedgerHealAccounting(t *testing.T) {
	inj := NewInjector(Schedule{Seed: 7, Rates: Rates{ConnCut: 1}})

	// Arm a conn fault at sim time 1ms, heal it at 5ms: heal latency is
	// the 4ms of workload time the device spent getting healthy again.
	inj.Observe(1, simclock.Time(simclock.Millisecond), true)
	a, b := net.Pipe()
	inj.WrapConn(1, a)
	a.Close()
	b.Close()
	if p := inj.Pending(); p != 1 {
		t.Fatalf("pending = %d after arming, want 1", p)
	}
	inj.Observe(1, simclock.Time(5*simclock.Millisecond), true)

	// A second fault never observed healthy wedges at Finish.
	a2, b2 := net.Pipe()
	inj.WrapConn(1, a2)
	a2.Close()
	b2.Close()

	// Kills ledger: crash at 10ms, revive at 16ms.
	inj.KillStarted(2, simclock.Time(10*simclock.Millisecond))
	inj.KillHealed(2, simclock.Time(16*simclock.Millisecond))

	inj.Finish()
	led := inj.Ledger()
	conn := led[ClassConn]
	if conn.Injected != 2 || conn.Healed != 1 || conn.Wedged != 1 {
		t.Fatalf("conn ledger = %+v, want 2 injected / 1 healed / 1 wedged", conn)
	}
	if conn.HealP50Ms != 4 {
		t.Fatalf("conn heal p50 = %v ms, want 4", conn.HealP50Ms)
	}
	kill := led[ClassKill]
	if kill.Injected != 1 || kill.Healed != 1 || kill.Wedged != 0 || kill.HealP99Ms != 6 {
		t.Fatalf("kill ledger = %+v, want 1/1/0 with 6ms heal", kill)
	}
	if inj.TotalInjected() != 3 || inj.ActiveClasses() != 2 {
		t.Fatalf("totals = %d injected / %d classes, want 3 / 2", inj.TotalInjected(), inj.ActiveClasses())
	}
}

func TestFaultStoreTransientErrors(t *testing.T) {
	inj := NewInjector(Schedule{Seed: 9, Rates: Rates{TierErr: 1}})
	fs := inj.WrapStore(remote.NewMemStore())

	key := "dev/7/seg/00000000000000000001"
	if err := fs.Put(key, []byte("blob")); !errors.Is(err, ErrInjected) {
		t.Fatalf("first put err = %v, want injected fault", err)
	}
	if err := fs.Put(key, []byte("blob")); err != nil {
		t.Fatalf("retried put failed: %v", err)
	}
	if _, err := fs.Get(key); !errors.Is(err, ErrInjected) {
		t.Fatal("first get of a segment key did not fault")
	}
	if b, err := fs.Get(key); err != nil || string(b) != "blob" {
		t.Fatalf("retried get = %q, %v", b, err)
	}
	// Checkpoint keys are never Get-faulted: they feed restore streams.
	if err := fs.Put("dev/7/cp/1", []byte("cp")); !errors.Is(err, ErrInjected) {
		t.Fatal("checkpoint put should still draw put faults")
	}
	if err := fs.Put("dev/7/cp/1", []byte("cp")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Get("dev/7/cp/1"); err != nil {
		t.Fatalf("checkpoint get must never fault: %v", err)
	}

	// Both pending tier faults heal on the device's next healthy
	// observation; nothing wedges.
	inj.Observe(7, simclock.Time(simclock.Second), true)
	inj.Finish()
	tier := inj.Ledger()[ClassTier]
	if tier.Injected != 3 || tier.Healed != 3 || tier.Wedged != 0 {
		t.Fatalf("tier ledger = %+v, want 3 injected / 3 healed / 0 wedged", tier)
	}
}

func TestFaultStoreServiceTimeSpike(t *testing.T) {
	inj := NewInjector(Schedule{Seed: 11, Rates: Rates{TierSlow: 1}, TierSpike: 5 * simclock.Millisecond})
	fs := inj.WrapStore(remote.NewMemStore())
	if err := fs.Put("dev/1/seg/00000000000000000000", []byte("x")); err != nil {
		t.Fatalf("slow put must succeed: %v", err)
	}
	if d := fs.PutServiceTime(1); d != 5*simclock.Millisecond {
		t.Fatalf("service time = %v, want the injected 5ms spike", d)
	}
	if d := fs.PutServiceTime(1); d != 0 {
		t.Fatalf("spike did not drain: second service time = %v", d)
	}
	tier := inj.Ledger()[ClassTier]
	if tier.Injected != 1 || tier.Healed != 1 || tier.HealP99Ms != 5 {
		t.Fatalf("tier ledger = %+v, want an immediately-healed 5ms spike", tier)
	}
}

func TestMutConnFlipsOneCiphertextBit(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := &mutConn{Conn: a, skip: 1, bit: 0xdecafbad}

	read := func(n int) []byte {
		buf := make([]byte, n)
		done := make(chan []byte)
		go func() {
			got := 0
			for got < n {
				m, err := b.Read(buf[got:])
				if err != nil {
					t.Error(err)
					break
				}
				got += m
			}
			done <- buf
		}()
		return <-done
	}

	hamming := func(x, y []byte) int {
		d := 0
		for i := range x {
			v := x[i] ^ y[i]
			for v != 0 {
				d++
				v &= v - 1
			}
		}
		return d
	}

	hdr := make([]byte, 20) // header-sized writes pass untouched
	go c.Write(hdr)
	if d := hamming(hdr, read(len(hdr))); d != 0 {
		t.Fatalf("header write mutated (%d bits)", d)
	}
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i)
	}
	go c.Write(payload) // skip=1: first ciphertext-sized write passes
	if d := hamming(payload, read(len(payload))); d != 0 {
		t.Fatalf("skipped write mutated (%d bits)", d)
	}
	go c.Write(payload) // the strike
	if d := hamming(payload, read(len(payload))); d != 1 {
		t.Fatalf("strike flipped %d bits, want exactly 1", d)
	}
	go c.Write(payload) // done: everything after passes
	if d := hamming(payload, read(len(payload))); d != 0 {
		t.Fatalf("post-strike write mutated (%d bits)", d)
	}
}

func TestInvariantsChainAndDurability(t *testing.T) {
	st := remote.NewStore(remote.NewMemStore())
	l := oplog.New()
	var es []oplog.Entry
	for i := 0; i < 16; i++ {
		es = append(es, l.Append(oplog.KindWrite, simclock.Time(i), uint64(i), ftl.NoPPN, uint64(i+1), 3.0, [oplog.HashSize]byte{}))
	}
	seg := &oplog.Segment{DeviceID: 4, FirstSeq: 0, LastSeq: l.NextSeq(), Entries: es}
	if err := st.AppendSegment(seg); err != nil {
		t.Fatal(err)
	}

	iv := &Invariants{}
	if !iv.Chain(st, 4) {
		_, v := iv.Snapshot()
		t.Fatalf("intact chain failed: %v", v)
	}
	if !iv.Durability(st, 4, 16) {
		t.Fatal("durability failed with head == acked")
	}
	if iv.Durability(st, 4, 17) {
		t.Fatal("durability passed with acked past head")
	}
	checks, violations := iv.Snapshot()
	if checks != 4 || len(violations) != 1 {
		t.Fatalf("snapshot = %d checks, %d violations; want 4 and 1", checks, len(violations))
	}
}
