package chaos

import (
	"net"

	"repro/internal/remote"
)

// WrapConn is the remote.ClusterConfig.WrapConn hook: every session the
// soak's devices (and their mid-run restores) dial passes through here,
// and a drawn fraction come back doomed. Two dooms exist:
//
//   - ClassConn: the conn gets a read budget (remote.ChokeConn), after
//     which reads fail — the session dies mid-push or mid-restore and
//     the device must redial, resync via Head, and resume;
//   - ClassWire: exactly one outbound ciphertext write gets a bit
//     flipped in flight. The server's frame MAC rejects it and tears the
//     session down from the far end — the device sees the same death as
//     a cut link, through a different failure surface.
//
// Both are drawn per (device, dial ordinal), so a redial after a fault
// is a fresh draw: fault storms cluster exactly as the seed dictates and
// nowhere else.
func (inj *Injector) WrapConn(dev uint64, nc net.Conn) net.Conn {
	s := inj.Sched
	inj.mu.Lock()
	n := inj.dials[dev]
	inj.dials[dev] = n + 1
	cut := s.hit(s.Rates.ConnCut, ClassConn, dev, n)
	mut := s.hit(s.Rates.WireMutate, ClassWire, dev, n)
	if cut {
		inj.armLocked(ClassConn, dev)
	}
	if mut {
		inj.armLocked(ClassWire, dev)
	}
	inj.mu.Unlock()
	if mut {
		nc = &mutConn{
			Conn: nc,
			skip: s.pick(6, ClassWire, dev, n^0x5717),
			bit:  s.hash(ClassWire, dev, n^0xb17),
		}
	}
	if cut {
		// At least 4 read calls lets the handshake finish: the cut lands
		// mid-session, not at connect.
		nc = remote.NewChokeConn(nc, 4+s.pick(28, ClassConn, dev, n^0xc07))
	}
	return nc
}

// mutConn flips one drawn bit in one outbound ciphertext write. Only
// writes longer than a MAC tag (32 bytes) are candidates: the secure
// frame layer writes header (fixed size), ciphertext, and tag as
// separate Writes, and mutating the header's length field could desync
// the stream into a read deadlock instead of a clean MAC rejection.
// Mutating ciphertext always produces an authentication failure — the
// exact "corrupted frame on the wire" case the ingest hardening handles.
type mutConn struct {
	net.Conn
	skip int    // candidate writes to pass through before striking
	bit  uint64 // draw source for the flipped position
	done bool
}

func (c *mutConn) Write(p []byte) (int, error) {
	if c.done || len(p) <= 32 {
		return c.Conn.Write(p)
	}
	if c.skip > 0 {
		c.skip--
		return c.Conn.Write(p)
	}
	c.done = true
	mutant := append([]byte(nil), p...)
	pos := int(c.bit % uint64(len(mutant)))
	mutant[pos] ^= 1 << uint(mix(c.bit)%8)
	n, err := c.Conn.Write(mutant)
	if n > len(p) {
		n = len(p)
	}
	return n, err
}
