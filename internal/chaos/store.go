package chaos

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/remote"
	"repro/internal/simclock"
)

// ErrInjected marks every error the injector fabricates, so callers and
// tests can tell a scheduled fault from a genuine backend failure.
var ErrInjected = errors.New("chaos: injected fault")

// FaultStore wraps the ObjectStore backend beneath a remote.Store with
// seed-scheduled tier faults:
//
//   - the first Put of a key may fail transiently (ClassTier). Ingest
//     rejects the segment before touching its chain index, the device's
//     offload engine requeues, and the retried Put (same key, now past
//     its first touch) succeeds — healed when the device next observes
//     healthy;
//   - the first Get of a segment key may fail transiently (ClassTier).
//     The soak's retention tick is the Get path; it retries and heals;
//   - the first Put of a key may instead draw a service-time spike,
//     surfaced through the ServiceTimeModeler seam so the stall prices
//     into the device's offload ack latency like a real slow tier.
//
// Faults are first-touch-per-key so a retry of the faulted op always
// lands: the injector tests recovery, it does not create permanently
// unreachable state.
type FaultStore struct {
	inner remote.ObjectStore
	inj   *Injector
}

// WrapStore interposes the injector between a remote.Store and its
// backend tier.
func (inj *Injector) WrapStore(inner remote.ObjectStore) *FaultStore {
	return &FaultStore{inner: inner, inj: inj}
}

// keyDevice parses the device ID out of the store's blob-key convention
// ("dev/<id>/seg/<seq>", "dev/<id>/cp/<seq>").
func keyDevice(key string) (uint64, bool) {
	rest, ok := strings.CutPrefix(key, "dev/")
	if !ok {
		return 0, false
	}
	i := strings.IndexByte(rest, '/')
	if i < 0 {
		return 0, false
	}
	dev, err := strconv.ParseUint(rest[:i], 10, 64)
	return dev, err == nil
}

// tierPut draws the first-touch Put fault for key. Caller is about to
// issue the real Put if nil is returned.
func (inj *Injector) tierPut(key string) error {
	s := inj.Sched
	kh := fnv64(key)
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if _, seen := inj.putSeen[key]; seen {
		return nil
	}
	inj.putSeen[key] = struct{}{}
	if s.hit(s.Rates.TierErr, ClassTier, kh, 0) {
		if dev, ok := keyDevice(key); ok {
			inj.armLocked(ClassTier, dev)
		} else {
			// No device to observe healing through; count the round trip
			// the caller's immediate retry makes as the heal.
			inj.counts[ClassTier].Injected++
			inj.counts[ClassTier].Healed++
			inj.heal[ClassTier] = append(inj.heal[ClassTier], 0)
		}
		return fmt.Errorf("%w: tier put %s", ErrInjected, key)
	}
	if s.hit(s.Rates.TierSlow, ClassTier, kh, 2) {
		// A slow tier heals by definition when the op completes: the
		// injected latency IS the heal latency, and the spike queues for
		// the ServiceTimeModeler seam so the ack path actually pays it.
		spike := s.spike()
		inj.counts[ClassTier].Injected++
		inj.counts[ClassTier].Healed++
		inj.heal[ClassTier] = append(inj.heal[ClassTier], spike)
		inj.spikes = append(inj.spikes, spike)
	}
	return nil
}

// tierGet draws the first-touch Get fault for key. Only segment blobs
// are candidates: they are the keys with a retrying reader (the
// retention tick); checkpoint fetches feed restore sessions that must
// not be failed from below mid-stream.
func (inj *Injector) tierGet(key string) error {
	s := inj.Sched
	if !strings.Contains(key, "/seg/") {
		return nil
	}
	kh := fnv64(key)
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if _, seen := inj.getSeen[key]; seen {
		return nil
	}
	inj.getSeen[key] = struct{}{}
	if !s.hit(s.Rates.TierErr, ClassTier, kh, 1) {
		return nil
	}
	if dev, ok := keyDevice(key); ok {
		inj.armLocked(ClassTier, dev)
	} else {
		inj.counts[ClassTier].Injected++
		inj.counts[ClassTier].Healed++
		inj.heal[ClassTier] = append(inj.heal[ClassTier], 0)
	}
	return fmt.Errorf("%w: tier get %s", ErrInjected, key)
}

// takeSpike drains one queued service-time spike, if any.
func (inj *Injector) takeSpike() simclock.Duration {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if len(inj.spikes) == 0 {
		return 0
	}
	s := inj.spikes[0]
	inj.spikes = inj.spikes[1:]
	return s
}

// Put implements remote.ObjectStore.
func (f *FaultStore) Put(key string, data []byte) error {
	if err := f.inj.tierPut(key); err != nil {
		return err
	}
	return f.inner.Put(key, data)
}

// Get implements remote.ObjectStore.
func (f *FaultStore) Get(key string) ([]byte, error) {
	if err := f.inj.tierGet(key); err != nil {
		return nil, err
	}
	return f.inner.Get(key)
}

// List implements remote.ObjectStore (passthrough).
func (f *FaultStore) List(prefix string) ([]string, error) { return f.inner.List(prefix) }

// Delete implements remote.ObjectStore (passthrough).
func (f *FaultStore) Delete(key string) error { return f.inner.Delete(key) }

// PutServiceTime implements remote.ServiceTimeModeler: the inner tier's
// modeled latency (if any) plus any queued injected spike — so a
// TierSlow draw shows up in the device's offload ack time exactly like a
// genuinely slow backend.
func (f *FaultStore) PutServiceTime(n int) simclock.Duration {
	var base simclock.Duration
	if m, ok := f.inner.(remote.ServiceTimeModeler); ok {
		base = m.PutServiceTime(n)
	}
	return base + f.inj.takeSpike()
}
