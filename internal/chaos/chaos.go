// Package chaos is the deterministic fault injector the soak experiment
// drives the whole stack through. It wraps the seams the system already
// exposes — the device dial path (core.Config.Dial via
// remote.ClusterConfig.WrapConn), the object-store backend behind
// remote.Store, and the cluster's Kill/Revive control plane — and draws
// every fault from a seeded schedule, so any soak failure reproduces
// exactly by re-running with the printed seed.
//
// Determinism is the design constraint everything else bends around:
// there is no shared rand.Rand whose consumption order goroutines could
// perturb. Each draw is a pure hash of (seed, fault class, coordinates) —
// the coordinates being stable identities like (device, dial ordinal) or
// (blob key, op) — so the same seed yields the same fault at the same
// point in the workload regardless of scheduling.
//
// The injector keeps a per-class ledger: faults armed (injected), faults
// the system healed (the device observed healthy again, in simulated
// time, so heal latency spans the real redial/backoff/requeue path), and
// faults still pending when the run ends (wedged — the soak's hard zero
// gate). Heal latency percentiles per class are the headline robustness
// number.
package chaos

import (
	"sort"
	"sync"

	"repro/internal/simclock"
)

// Class partitions injected faults by the seam they enter through.
type Class int

const (
	// ClassConn is a dialed-session fault: the conn dies after a drawn
	// read budget, mid-push or mid-restore.
	ClassConn Class = iota
	// ClassWire is a wire mutation: one outbound frame bit-flipped in
	// flight, which the server's MAC rejects, killing the session from
	// the far end.
	ClassWire
	// ClassTier is a backend-tier fault: a transiently erroring or slow
	// object-store Put/Get under the remote store.
	ClassTier
	// ClassKill is a whole-server crash, drawn per soak wave and healed
	// by the control loop's Revive.
	ClassKill
	NumClasses
)

// String names the class for ledgers and failure messages.
func (c Class) String() string {
	switch c {
	case ClassConn:
		return "conn"
	case ClassWire:
		return "wire"
	case ClassTier:
		return "tier"
	case ClassKill:
		return "kill"
	}
	return "unknown"
}

// Rates are per-opportunity fault probabilities. An "opportunity" is the
// natural unit of each seam: a dial for conn/wire faults, the first
// touch of an object-store key for tier faults.
type Rates struct {
	ConnCut    float64 // P(a dialed session gets a read-budget cut)
	WireMutate float64 // P(a dialed session gets one mutated outbound frame)
	TierErr    float64 // P(the first Put/Get of a key fails transiently)
	TierSlow   float64 // P(the first Put of a key draws a service-time spike)
}

// Schedule is a complete, replayable fault plan: everything the injector
// does is a pure function of this value and the workload's stable
// coordinates.
type Schedule struct {
	Seed  int64
	Rates Rates
	// MTBF is the mean number of soak waves between injected server
	// kills (the kill process is drawn per wave); <= 0 disables kills.
	MTBF int
	// TierSpike is the Put service-time penalty a TierSlow draw injects;
	// zero takes 2ms.
	TierSpike simclock.Duration
}

func (s Schedule) spike() simclock.Duration {
	if s.TierSpike <= 0 {
		return 2 * simclock.Millisecond
	}
	return s.TierSpike
}

// mix is the splitmix64 finalizer: a cheap, well-distributed 64-bit hash
// step. Good enough to decorrelate draw coordinates; not cryptographic,
// which a fault schedule does not need.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (s Schedule) hash(c Class, a, b uint64) uint64 {
	h := mix(uint64(s.Seed))
	h = mix(h ^ (uint64(c) + 1))
	h = mix(h ^ a)
	h = mix(h ^ b)
	return h
}

// hit draws a Bernoulli(p) outcome keyed on (seed, class, a, b).
func (s Schedule) hit(p float64, c Class, a, b uint64) bool {
	return p > 0 && float64(s.hash(c, a, b)>>11)/(1<<53) < p
}

// pick draws a deterministic integer in [0, n) keyed on (seed, class, a, b).
func (s Schedule) pick(n int, c Class, a, b uint64) int {
	if n <= 1 {
		return 0
	}
	return int(s.hash(c, a, b) % uint64(n))
}

// fnv64 hashes a blob key into draw coordinates (FNV-1a).
func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// Counts is one class's slice of the fault ledger.
type Counts struct {
	Injected int // faults armed
	Healed   int // faults the system recovered from
	Wedged   int // faults still pending when the run finished
}

// ClassLedger is the rendered ledger row for one fault class.
type ClassLedger struct {
	Class     string  `json:"class"`
	Injected  int     `json:"injected"`
	Healed    int     `json:"healed"`
	Wedged    int     `json:"wedged"`
	HealP50Ms float64 `json:"heal_p50_ms"`
	HealP99Ms float64 `json:"heal_p99_ms"`
	HealMaxMs float64 `json:"heal_max_ms"`
}

// pendingFault is an armed fault awaiting a healthy observation of its
// device. at is the device's sim time when the fault was armed (its last
// record boundary), so heal latency is measured in workload time.
type pendingFault struct {
	class Class
	at    simclock.Time
}

// Injector draws faults from a Schedule and keeps the ledger. All methods
// are safe for concurrent use; determinism holds because no draw depends
// on mutable shared state, only on stable workload coordinates.
type Injector struct {
	Sched Schedule

	mu      sync.Mutex
	lastAt  map[uint64]simclock.Time // device -> sim time of last Observe
	dials   map[uint64]uint64        // device -> dial ordinal
	putSeen map[string]struct{}      // keys whose first Put already drew
	getSeen map[string]struct{}      // keys whose first Get already drew
	pending map[uint64][]pendingFault
	kills   map[int]simclock.Time // killed server -> crash time
	counts  [NumClasses]Counts
	heal    [NumClasses][]simclock.Duration
	spikes  []simclock.Duration // tier-slow FIFO surfaced via PutServiceTime
}

// NewInjector returns an injector drawing from sched.
func NewInjector(sched Schedule) *Injector {
	return &Injector{
		Sched:   sched,
		lastAt:  map[uint64]simclock.Time{},
		dials:   map[uint64]uint64{},
		putSeen: map[string]struct{}{},
		getSeen: map[string]struct{}{},
		pending: map[uint64][]pendingFault{},
		kills:   map[int]simclock.Time{},
	}
}

// armLocked records an injected fault against dev, stamped with the
// device's last observed sim time (the record boundary the fault landed
// in). Caller holds inj.mu.
func (inj *Injector) armLocked(c Class, dev uint64) {
	inj.counts[c].Injected++
	inj.pending[dev] = append(inj.pending[dev], pendingFault{class: c, at: inj.lastAt[dev]})
}

// Observe stamps one device's health at a workload boundary, in device
// sim time. The soak calls it after every record batch with
// healthy = (the device's offload pipeline reports no pending error).
// A healthy observation heals every fault pending on the device; the
// heal latency is the sim-time span from arming to this observation —
// i.e. it includes the real redial backoff, requeue, and re-ack path the
// fault forced the device through.
func (inj *Injector) Observe(dev uint64, at simclock.Time, healthy bool) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.lastAt[dev] = at
	if !healthy {
		return
	}
	for _, f := range inj.pending[dev] {
		inj.counts[f.class].Healed++
		d := simclock.Duration(at - f.at)
		if d < 0 {
			d = 0
		}
		inj.heal[f.class] = append(inj.heal[f.class], d)
	}
	delete(inj.pending, dev)
}

// Pending reports how many faults are still awaiting a healthy
// observation — what Finish would declare wedged right now.
func (inj *Injector) Pending() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	n := len(inj.kills)
	for _, fs := range inj.pending {
		n += len(fs)
	}
	return n
}

// DrawKill reports whether the schedule crashes a server in the given
// wave, and which one. Pure in (seed, wave, servers).
func (inj *Injector) DrawKill(wave uint64, servers int) (int, bool) {
	s := inj.Sched
	if s.MTBF <= 0 || servers <= 0 {
		return 0, false
	}
	if s.pick(s.MTBF, ClassKill, wave, 0) != 0 {
		return 0, false
	}
	return s.pick(servers, ClassKill, wave, 1), true
}

// KillStarted records an injected server crash at sim time at.
func (inj *Injector) KillStarted(srv int, at simclock.Time) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.counts[ClassKill].Injected++
	inj.kills[srv] = at
}

// KillHealed records the server's revive; heal latency is crash-to-revive
// in sim time.
func (inj *Injector) KillHealed(srv int, at simclock.Time) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	t0, ok := inj.kills[srv]
	if !ok {
		return
	}
	delete(inj.kills, srv)
	inj.counts[ClassKill].Healed++
	d := simclock.Duration(at - t0)
	if d < 0 {
		d = 0
	}
	inj.heal[ClassKill] = append(inj.heal[ClassKill], d)
}

// Finish closes the ledger: every fault still pending a healthy
// observation, and every server still down, is wedged. Call it after the
// final drain/quiesce — a fault that survives the drain really is stuck.
func (inj *Injector) Finish() {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, fs := range inj.pending {
		for _, f := range fs {
			inj.counts[f.class].Wedged++
		}
	}
	inj.pending = map[uint64][]pendingFault{}
	for range inj.kills {
		inj.counts[ClassKill].Wedged++
	}
	inj.kills = map[int]simclock.Time{}
}

// Ledger renders the per-class fault ledger with heal-latency
// percentiles in simulated milliseconds.
func (inj *Injector) Ledger() [NumClasses]ClassLedger {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var out [NumClasses]ClassLedger
	for c := Class(0); c < NumClasses; c++ {
		ds := append([]simclock.Duration(nil), inj.heal[c]...)
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		out[c] = ClassLedger{
			Class:     c.String(),
			Injected:  inj.counts[c].Injected,
			Healed:    inj.counts[c].Healed,
			Wedged:    inj.counts[c].Wedged,
			HealP50Ms: pctMs(ds, 0.50),
			HealP99Ms: pctMs(ds, 0.99),
			HealMaxMs: pctMs(ds, 1.00),
		}
	}
	return out
}

// TotalInjected sums injected faults across classes.
func (inj *Injector) TotalInjected() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	n := 0
	for c := Class(0); c < NumClasses; c++ {
		n += inj.counts[c].Injected
	}
	return n
}

// ActiveClasses counts fault classes that injected at least once — the
// soak's breadth gate (>= 3 classes must actually fire).
func (inj *Injector) ActiveClasses() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	n := 0
	for c := Class(0); c < NumClasses; c++ {
		if inj.counts[c].Injected > 0 {
			n++
		}
	}
	return n
}

func pctMs(sorted []simclock.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(simclock.Millisecond)
}
