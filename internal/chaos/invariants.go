package chaos

import (
	"fmt"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/netsim"
	"repro/internal/oplog"
	"repro/internal/remote"
)

// Invariants is the continuous checker the soak runs DURING fault
// injection, not just at the end: every wave boundary (and every kill)
// re-proves the properties the system claims to keep under fire. A
// violation is recorded, not fatal — the soak finishes the horizon and
// reports every broken invariant with the reproducing seed.
type Invariants struct {
	mu         sync.Mutex
	checks     int
	violations []string
}

// report counts one check and records a violation when ok is false.
func (iv *Invariants) report(ok bool, format string, args ...any) bool {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	iv.checks++
	if !ok {
		iv.violations = append(iv.violations, fmt.Sprintf(format, args...))
	}
	return ok
}

// Snapshot returns the running totals: checks performed and the
// violations found so far.
func (iv *Invariants) Snapshot() (checks int, violations []string) {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	return iv.checks, append([]string(nil), iv.violations...)
}

// Chain proves hash-chain contiguity for one device: the store holds
// every entry in [0, head) and the chain verifies from genesis. This is
// the evidence-chain property every injected fault must not dent — a
// single lost or reordered entry breaks the recompute here.
func (iv *Invariants) Chain(st *remote.Store, dev uint64) bool {
	head := st.Head(dev)
	es := st.Entries(dev, 0, head.NextSeq)
	if !iv.report(uint64(len(es)) == head.NextSeq,
		"device %d: chain gap: store holds %d entries for head %d", dev, len(es), head.NextSeq) {
		return false
	}
	err := oplog.VerifyChain(es, [oplog.HashSize]byte{})
	return iv.report(err == nil, "device %d: chain verify: %v", dev, err)
}

// Durability proves no acked entry was lost: everything the device's
// offload engine has seen acknowledged (ackedUpTo) must be at or below
// the store's head. Checked after every injected kill — the window where
// a buggy failover would drop acked-but-unindexed state.
func (iv *Invariants) Durability(st *remote.Store, dev, ackedUpTo uint64) bool {
	head := st.Head(dev)
	return iv.report(head.NextSeq >= ackedUpTo,
		"device %d: lost acked entries: store head %d < device acked %d", dev, head.NextSeq, ackedUpTo)
}

// DedupBalance proves the refcount ledger balances: the page versions
// indexed across all devices equal the references the chunk store
// counts. Retention drops remove versions and refs together, so the
// balance must hold through every tick and fault.
func (iv *Invariants) DedupBalance(st *remote.Store, devs []uint64) bool {
	var versions int64
	for _, d := range devs {
		versions += int64(st.DeviceStats(d).Versions)
	}
	ds := st.Dedup()
	return iv.report(versions == ds.TotalRefs,
		"dedup ledger unbalanced: %d page versions indexed vs %d chunk refs", versions, ds.TotalRefs)
}

// Pool proves the bufpool outstanding-buffer gauge returned to its
// baseline — every Get across the fault storm found its Release.
func (iv *Invariants) Pool(base bufpool.Gauge) bool {
	err := bufpool.CheckBalanced(base)
	return iv.report(err == nil, "%v", err)
}

// PoolSteady is Pool for systems with accounted long-lived holders: the
// gauge may move exactly as much as the declared residency delta (pooled
// buffers NAND arrays hold for programmed flash content, which
// legitimately grows with writes and shrinks with erases). Any drift
// beyond residency is a transient-path leak.
func (iv *Invariants) PoolSteady(base bufpool.Gauge, residency int64) bool {
	drift := bufpool.Outstanding().Sub(base).Total() - residency
	return iv.report(drift == 0,
		"bufpool: outstanding-buffer gauge off baseline by %+d beyond the %+d NAND residency delta",
		drift, residency)
}

// Conservation proves a NIC's QoS ledger never clocked above line rate:
// injected faults may starve and stall flows, but they can never mint
// bandwidth.
func (iv *Invariants) Conservation(name string, nic *netsim.Arbiter) bool {
	bytes, _, mbps := nic.Conservation()
	if bytes == 0 {
		return true
	}
	return iv.report(mbps <= nic.LineMBps()*1.01,
		"%s: conservation violated: %.1f MBps aggregate over a %.1f MBps line", name, mbps, nic.LineMBps())
}

// Floors proves the QoS floor guarantee held under contention: any class
// that was ever throttled still saw its worst-case allocation at or
// above its guaranteed floor.
func (iv *Invariants) Floors(name string, nic *netsim.Arbiter) bool {
	ok := true
	fl := nic.Floors()
	for c, st := range nic.Stats() {
		if st.Throttled == 0 || st.MinAllocMBps <= 0 {
			continue
		}
		floor := fl[c] * nic.LineMBps()
		ok = iv.report(st.MinAllocMBps >= floor*0.99,
			"%s: class %s starved under fault load: min alloc %.2f MBps < floor %.2f MBps",
			name, st.Class, st.MinAllocMBps, floor) && ok
	}
	return ok
}
