// Package attack implements executable models of encryption ransomware,
// including the paper's three "Ransomware 2.0" attacks that defeat
// conventional SSD-level protections:
//
//   - GC attack: after encrypting, flood the device's free capacity so
//     garbage collection is forced to erase whatever stale data a
//     retention scheme was holding.
//   - Timing attack: encrypt at a trickle, interleaved with benign-looking
//     traffic, to stay under rate/pattern detectors and outlast any
//     bounded retention window.
//   - Trimming attack: write the ciphertext to a new file and trim the
//     plaintext's pages, physically destroying the originals on drives
//     that honour trim.
//
// The models operate through the same host filesystem a real sample
// would, so every defense sees genuine I/O patterns rather than synthetic
// markers. The substitution for the paper's VirusTotal samples is
// documented in DESIGN.md: what matters to a storage-level defense is the
// I/O behaviour, which these models reproduce exactly.
package attack

import (
	"crypto/aes"
	"crypto/cipher"
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/host"
	"repro/internal/simclock"
)

// Report summarizes what an attack did, for the experiment harness.
type Report struct {
	Name           string
	FilesAttacked  int
	BytesEncrypted int
	TrimsIssued    int
	FloodWrites    int
	Start, End     simclock.Time
}

func (r Report) String() string {
	return fmt.Sprintf("%s: %d files, %d bytes encrypted, %d trims, %d flood writes, %v..%v",
		r.Name, r.FilesAttacked, r.BytesEncrypted, r.TrimsIssued, r.FloodWrites, r.Start, r.End)
}

// Attack is a runnable ransomware model.
type Attack interface {
	Name() string
	Run(fs *host.FlatFS, rng *rand.Rand) (Report, error)
}

// encrypt returns the AES-256-CTR encryption of data under key — real
// ciphertext, so entropy-based detection faces exactly what it would in
// the wild.
func encrypt(key [32]byte, nonce uint64, data []byte) []byte {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		panic(err) // fixed-size key; cannot fail
	}
	iv := make([]byte, aes.BlockSize)
	for i := 0; i < 8; i++ {
		iv[i] = byte(nonce >> (8 * i))
	}
	out := make([]byte, len(data))
	cipher.NewCTR(block, iv).XORKeyStream(out, data)
	return out
}

// victims lists the files an attack will target: everything except its own
// droppings (ransom notes, .locked copies).
func victims(fs *host.FlatFS) []string {
	var out []string
	for _, name := range fs.List() {
		if strings.HasSuffix(name, ".locked") || strings.HasPrefix(name, "RANSOM") || strings.HasPrefix(name, "flood-") {
			continue
		}
		out = append(out, name)
	}
	return out
}

// Encryptor is classic encryption ransomware: read each file, overwrite it
// in place with ciphertext, drop a ransom note. This is the behaviour
// FlashGuard-class defenses were designed for.
type Encryptor struct {
	Key [32]byte
	// MaxFiles bounds how many files are encrypted (0 = all).
	MaxFiles int
}

// Name implements Attack.
func (e *Encryptor) Name() string { return "encryptor" }

// Run implements Attack.
func (e *Encryptor) Run(fs *host.FlatFS, rng *rand.Rand) (Report, error) {
	rep := Report{Name: e.Name(), Start: fs.Clock().Now()}
	for i, name := range victims(fs) {
		if e.MaxFiles > 0 && i >= e.MaxFiles {
			break
		}
		data, err := fs.ReadFile(name)
		if err != nil {
			return rep, err
		}
		if err := fs.Overwrite(name, encrypt(e.Key, uint64(i), data)); err != nil {
			return rep, err
		}
		rep.FilesAttacked++
		rep.BytesEncrypted += len(data)
	}
	_ = fs.Create("RANSOM_NOTE.txt", []byte("Your files are encrypted. Pay 1 BTC to restore them."))
	rep.End = fs.Clock().Now()
	return rep, nil
}

// GCAttack encrypts like Encryptor, then floods the device with junk to
// force garbage collection cycles that erase retained stale data on
// conventional retention schemes. Rounds controls how many times the
// logical free space is overwritten.
type GCAttack struct {
	Key    [32]byte
	Rounds int
}

// Name implements Attack.
func (g *GCAttack) Name() string { return "gc-attack" }

// Run implements Attack.
func (g *GCAttack) Run(fs *host.FlatFS, rng *rand.Rand) (Report, error) {
	enc := &Encryptor{Key: g.Key}
	rep, err := enc.Run(fs, rng)
	if err != nil {
		return rep, err
	}
	rep.Name = g.Name()
	rounds := g.Rounds
	if rounds <= 0 {
		rounds = 3
	}
	ps := fs.Device().PageSize()
	junk := make([]byte, ps)
	for round := 0; round < rounds; round++ {
		// Fill all remaining free space with incompressible junk, then
		// delete it and refill — every round forces GC over the whole
		// over-provisioned area.
		var made []string
		for i := 0; ; i++ {
			rng.Read(junk)
			name := fmt.Sprintf("flood-%d-%d", round, i)
			if err := fs.Create(name, junk); err != nil {
				break // device/filesystem full: exactly the goal
			}
			made = append(made, name)
			rep.FloodWrites++
		}
		for _, name := range made {
			if err := fs.Delete(name, false); err != nil {
				return rep, err
			}
		}
	}
	rep.End = fs.Clock().Now()
	return rep, nil
}

// TimingAttack encrypts a few files per burst, sleeping simulated time
// between bursts and wrapping each burst in benign-looking reads and
// low-entropy writes. Total attack duration can span simulated weeks,
// defeating bounded retention windows and rate-based detectors.
type TimingAttack struct {
	Key            [32]byte
	FilesPerBurst  int
	BurstInterval  simclock.Duration // simulated time between bursts
	CoverOpsPerOp  int               // benign ops interleaved per malicious op
}

// Name implements Attack.
func (t *TimingAttack) Name() string { return "timing-attack" }

// Run implements Attack.
func (t *TimingAttack) Run(fs *host.FlatFS, rng *rand.Rand) (Report, error) {
	rep := Report{Name: t.Name(), Start: fs.Clock().Now()}
	perBurst := t.FilesPerBurst
	if perBurst <= 0 {
		perBurst = 2
	}
	interval := t.BurstInterval
	if interval <= 0 {
		interval = 6 * simclock.Hour
	}
	cover := NewCoverTraffic(0.2)
	targets := victims(fs)
	for i := 0; i < len(targets); i += perBurst {
		end := i + perBurst
		if end > len(targets) {
			end = len(targets)
		}
		for j := i; j < end; j++ {
			for c := 0; c < t.CoverOpsPerOp; c++ {
				if err := cover.Step(fs, rng); err != nil {
					return rep, err
				}
			}
			data, err := fs.ReadFile(targets[j])
			if errors.Is(err, host.ErrNotFound) {
				continue // the cover traffic deleted this target meanwhile
			}
			if err != nil {
				return rep, err
			}
			if err := fs.Overwrite(targets[j], encrypt(t.Key, uint64(j), data)); err != nil {
				return rep, err
			}
			rep.FilesAttacked++
			rep.BytesEncrypted += len(data)
		}
		fs.Clock().Advance(interval) // lie low
	}
	_ = fs.Create("RANSOM_NOTE.txt", []byte("Slow and steady. Pay up."))
	rep.End = fs.Clock().Now()
	return rep, nil
}

// TrimmingAttack writes each victim's ciphertext to a new file, then
// deletes the original with trim so the plaintext pages are physically
// erased on conventional SSDs. No overwrite ever happens, which blinds
// overwrite-retention defenses entirely.
type TrimmingAttack struct {
	Key [32]byte
}

// Name implements Attack.
func (a *TrimmingAttack) Name() string { return "trimming-attack" }

// Run implements Attack.
func (a *TrimmingAttack) Run(fs *host.FlatFS, rng *rand.Rand) (Report, error) {
	rep := Report{Name: a.Name(), Start: fs.Clock().Now()}
	for i, name := range victims(fs) {
		data, err := fs.ReadFile(name)
		if err != nil {
			return rep, err
		}
		if err := fs.Create(name+".locked", encrypt(a.Key, uint64(i), data)); err != nil {
			return rep, err
		}
		pages, err := fs.Extents(name)
		if err != nil {
			return rep, err
		}
		if err := fs.Delete(name, true); err != nil {
			return rep, err
		}
		rep.TrimsIssued += len(pages)
		rep.FilesAttacked++
		rep.BytesEncrypted += len(data)
	}
	_ = fs.Create("RANSOM_NOTE.txt", []byte("Originals are gone. Pay for the key."))
	rep.End = fs.Clock().Now()
	return rep, nil
}
