package attack

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/entropy"
)

func TestWiperZeroesFiles(t *testing.T) {
	fs, _ := newFS()
	snap := seedCorpus(t, fs, 8)
	rep, err := (&Wiper{}).Run(fs, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesAttacked != 8 {
		t.Fatalf("attacked %d", rep.FilesAttacked)
	}
	for name, orig := range snap {
		got, err := fs.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(got, orig) {
			t.Fatalf("%s survived the wiper", name)
		}
		if !bytes.Equal(got, make([]byte, len(got))) {
			t.Fatalf("%s not zeroed", name)
		}
		// The wiper's signature: destruction with LOW entropy.
		if entropy.IsHigh(entropy.Shannon(got)) {
			t.Fatal("wiper output is high entropy?")
		}
	}
}

func TestPartialEncryptorTouchesOnlyFirstPage(t *testing.T) {
	fs, _ := newFS()
	snap := seedCorpus(t, fs, 8)
	rep, err := (&PartialEncryptor{Key: [32]byte{7}}).Run(fs, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesAttacked != 8 {
		t.Fatalf("attacked %d", rep.FilesAttacked)
	}
	ps := fs.Device().PageSize()
	for name, orig := range snap {
		got, _ := fs.ReadFile(name)
		head := len(orig)
		if head > ps {
			head = ps
		}
		if bytes.Equal(got[:head], orig[:head]) {
			t.Fatalf("%s first page not encrypted", name)
		}
		if len(orig) > ps && !bytes.Equal(got[ps:], orig[ps:]) {
			t.Fatalf("%s tail was modified", name)
		}
	}
	// Bytes encrypted is bounded by one page per file.
	if rep.BytesEncrypted > 8*ps {
		t.Fatalf("bytes encrypted = %d", rep.BytesEncrypted)
	}
}
