package attack

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/entropy"
	"repro/internal/ftl"
	"repro/internal/host"
	"repro/internal/nand"
	"repro/internal/simclock"
)

func newFS() (*host.FlatFS, *ftl.FTL) {
	cfg := ftl.Config{
		NAND: nand.Config{
			Geometry: nand.Geometry{
				Channels: 2, ChipsPerChannel: 2, DiesPerChip: 1, PlanesPerDie: 1,
				BlocksPerPlane: 32, PagesPerBlock: 8, PageSize: 512,
			},
			Timing: nand.DefaultTiming(),
		},
		OverProvision: 0.2,
	}
	f := ftl.New(cfg, nil)
	return host.NewFlatFS(f, simclock.NewClock()), f
}

func seedCorpus(t *testing.T, fs *host.FlatFS, n int) map[string][]byte {
	t.Helper()
	_, snap, err := Seed(fs, rand.New(rand.NewSource(1)), n, 4)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestUserContentEntropyRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	low := userContent(rng, 4096, 0.0)
	if e := entropy.Shannon(low); e > 5 {
		t.Fatalf("text content entropy = %v", e)
	}
	high := userContent(rng, 4096, 1.0)
	if e := entropy.Shannon(high); e < 7.5 {
		t.Fatalf("random content entropy = %v", e)
	}
}

func TestEncryptorEncryptsEverything(t *testing.T) {
	fs, _ := newFS()
	snap := seedCorpus(t, fs, 10)
	enc := &Encryptor{Key: [32]byte{1}}
	rep, err := enc.Run(fs, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesAttacked != 10 {
		t.Fatalf("attacked %d files", rep.FilesAttacked)
	}
	for name, orig := range snap {
		got, err := fs.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(got, orig) {
			t.Fatalf("%s not encrypted", name)
		}
		if e := entropy.Shannon(got); e < 7.0 {
			t.Fatalf("%s ciphertext entropy = %v", name, e)
		}
	}
	if _, err := fs.ReadFile("RANSOM_NOTE.txt"); err != nil {
		t.Fatal("no ransom note dropped")
	}
}

func TestEncryptorMaxFiles(t *testing.T) {
	fs, _ := newFS()
	seedCorpus(t, fs, 10)
	enc := &Encryptor{Key: [32]byte{1}, MaxFiles: 3}
	rep, err := enc.Run(fs, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesAttacked != 3 {
		t.Fatalf("attacked %d, want 3", rep.FilesAttacked)
	}
}

func TestEncryptionIsInvertible(t *testing.T) {
	key := [32]byte{9, 9, 9}
	plain := []byte("the original user data that must be restorable")
	ct := encrypt(key, 7, plain)
	if bytes.Equal(ct, plain) {
		t.Fatal("no-op encryption")
	}
	if got := encrypt(key, 7, ct); !bytes.Equal(got, plain) {
		t.Fatal("CTR round trip failed")
	}
}

func TestGCAttackForcesGC(t *testing.T) {
	fs, f := newFS()
	seedCorpus(t, fs, 8)
	gcBefore := f.Stats().GCRuns
	atk := &GCAttack{Key: [32]byte{2}, Rounds: 2}
	rep, err := atk.Run(fs, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FloodWrites == 0 {
		t.Fatal("no flood writes")
	}
	if f.Stats().GCRuns == gcBefore {
		t.Fatal("GC attack did not force garbage collection")
	}
	// Old stale versions have been destroyed on this unprotected device.
	if f.Stats().StaleErased == 0 {
		t.Fatal("GC attack erased no stale data on LocalSSD")
	}
}

func TestTimingAttackSpansSimulatedTime(t *testing.T) {
	fs, _ := newFS()
	snap := seedCorpus(t, fs, 12)
	atk := &TimingAttack{
		Key: [32]byte{3}, FilesPerBurst: 2,
		BurstInterval: 12 * simclock.Hour, CoverOpsPerOp: 2,
	}
	rep, err := atk.Run(fs, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesAttacked != len(snap) {
		t.Fatalf("attacked %d/%d", rep.FilesAttacked, len(snap))
	}
	if span := rep.End.Sub(rep.Start); span < 2*simclock.Day {
		t.Fatalf("attack span = %v, want multi-day", span)
	}
	for name, orig := range snap {
		got, _ := fs.ReadFile(name)
		if bytes.Equal(got, orig) {
			t.Fatalf("%s survived timing attack", name)
		}
	}
}

func TestTrimmingAttackTrimsOriginals(t *testing.T) {
	fs, f := newFS()
	snap := seedCorpus(t, fs, 6)
	atk := &TrimmingAttack{Key: [32]byte{4}}
	rep, err := atk.Run(fs, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrimsIssued == 0 {
		t.Fatal("no trims issued")
	}
	if f.Stats().Trims == 0 {
		t.Fatal("device saw no trims")
	}
	for name := range snap {
		if _, err := fs.ReadFile(name); err == nil {
			t.Fatalf("original %s still present", name)
		}
		locked, err := fs.ReadFile(name + ".locked")
		if err != nil {
			t.Fatalf("no ciphertext for %s: %v", name, err)
		}
		if e := entropy.Shannon(locked); e < 7.0 {
			t.Fatalf("ciphertext entropy = %v", e)
		}
	}
}

func TestVictimsExcludesAttackArtifacts(t *testing.T) {
	fs, _ := newFS()
	seedCorpus(t, fs, 3)
	fs.Create("RANSOM_NOTE.txt", []byte("x"))
	fs.Create("a.locked", []byte("x"))
	fs.Create("flood-0-0", []byte("x"))
	vs := victims(fs)
	if len(vs) != 3 {
		t.Fatalf("victims = %v", vs)
	}
	for _, v := range vs {
		if !strings.HasPrefix(v, "user/") {
			t.Fatalf("unexpected victim %s", v)
		}
	}
}

func TestCoverTrafficKeepsFSConsistent(t *testing.T) {
	fs, _ := newFS()
	seedCorpus(t, fs, 5)
	if err := RunBenign(fs, rand.New(rand.NewSource(6)), 200, simclock.Minute); err != nil {
		t.Fatal(err)
	}
	// All remaining files must be readable.
	for _, name := range fs.List() {
		if _, err := fs.ReadFile(name); err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
	}
}

func TestCoverTrafficIsLowEntropy(t *testing.T) {
	fs, _ := newFS()
	seedCorpus(t, fs, 5)
	if err := RunBenign(fs, rand.New(rand.NewSource(7)), 100, 0); err != nil {
		t.Fatal(err)
	}
	var hi, total int
	for _, name := range fs.List() {
		data, _ := fs.ReadFile(name)
		if len(data) == 0 {
			continue
		}
		total++
		if entropy.IsHigh(entropy.Shannon(data)) {
			hi++
		}
	}
	if total == 0 {
		t.Fatal("no files")
	}
	if float64(hi)/float64(total) > 0.2 {
		t.Fatalf("benign corpus is %d/%d high-entropy", hi, total)
	}
}

func TestAttackDeterminism(t *testing.T) {
	run := func() Report {
		fs, _ := newFS()
		Seed(fs, rand.New(rand.NewSource(1)), 8, 4)
		atk := &GCAttack{Key: [32]byte{2}, Rounds: 1}
		rep, err := atk.Run(fs, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.FilesAttacked != b.FilesAttacked || a.FloodWrites != b.FloodWrites || a.BytesEncrypted != b.BytesEncrypted {
		t.Fatalf("non-deterministic attack: %+v vs %+v", a, b)
	}
}
