package attack

import (
	"math/rand"

	"repro/internal/host"
)

// Wiper models destructive "ransomware" that never intends to restore:
// it overwrites victim files with zeroes. Its writes are LOW entropy,
// which blinds purely entropy-based detectors — the reason the detection
// ensemble includes a zero-wipe signal. (NotPetya-class malware behaved
// this way in practice.)
type Wiper struct{}

// Name implements Attack.
func (w *Wiper) Name() string { return "wiper" }

// Run implements Attack.
func (w *Wiper) Run(fs *host.FlatFS, rng *rand.Rand) (Report, error) {
	rep := Report{Name: w.Name(), Start: fs.Clock().Now()}
	for _, name := range victims(fs) {
		data, err := fs.ReadFile(name)
		if err != nil {
			return rep, err
		}
		if err := fs.Overwrite(name, make([]byte, len(data))); err != nil {
			return rep, err
		}
		rep.FilesAttacked++
		rep.BytesEncrypted += len(data)
	}
	_ = fs.Create("RANSOM_NOTE.txt", []byte("Your files are gone. There was never a key."))
	rep.End = fs.Clock().Now()
	return rep, nil
}

// PartialEncryptor encrypts only the first page of each file — the
// "fast encryption" mode modern ransomware families use to lock a whole
// corpus in seconds. Fewer pages are touched, so detectors relying on
// sheer volume see a much weaker signal.
type PartialEncryptor struct {
	Key [32]byte
}

// Name implements Attack.
func (p *PartialEncryptor) Name() string { return "partial-encryptor" }

// Run implements Attack.
func (p *PartialEncryptor) Run(fs *host.FlatFS, rng *rand.Rand) (Report, error) {
	rep := Report{Name: p.Name(), Start: fs.Clock().Now()}
	ps := fs.Device().PageSize()
	for i, name := range victims(fs) {
		data, err := fs.ReadFile(name)
		if err != nil {
			return rep, err
		}
		head := len(data)
		if head > ps {
			head = ps
		}
		mutated := append([]byte(nil), data...)
		copy(mutated, encrypt(p.Key, uint64(i), data[:head]))
		if err := fs.Overwrite(name, mutated); err != nil {
			return rep, err
		}
		rep.FilesAttacked++
		rep.BytesEncrypted += head
	}
	_ = fs.Create("RANSOM_NOTE.txt", []byte("Headers encrypted. Fast and fatal."))
	rep.End = fs.Clock().Now()
	return rep, nil
}
