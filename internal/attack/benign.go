package attack

import (
	"fmt"
	"math/rand"

	"repro/internal/host"
	"repro/internal/simclock"
)

// userContent synthesizes file contents with a controlled fraction of
// random bytes. highFrac=0 yields repetitive, text-like data (entropy
// around 3 bits/byte); highFrac=1 yields ciphertext-like data. Typical
// user corpora in the paper's traces sit in between.
func userContent(rng *rand.Rand, size int, highFrac float64) []byte {
	const phrase = "quarterly report figures attached; please review and sign. "
	out := make([]byte, size)
	cut := int(float64(size) * highFrac)
	rng.Read(out[:cut])
	for i := cut; i < size; i++ {
		out[i] = phrase[(i-cut)%len(phrase)]
	}
	return out
}

// Seed populates the filesystem with a user corpus: nFiles files of
// pageSize..maxPages pages with mostly-compressible contents. It returns
// the created names and a content snapshot for later damage assessment.
func Seed(fs *host.FlatFS, rng *rand.Rand, nFiles, maxPages int) (names []string, snapshot map[string][]byte, err error) {
	snapshot = map[string][]byte{}
	ps := fs.Device().PageSize()
	if maxPages < 1 {
		maxPages = 1
	}
	for i := 0; i < nFiles; i++ {
		name := fmt.Sprintf("user/doc-%03d.dat", i)
		size := (1 + rng.Intn(maxPages)) * ps
		data := userContent(rng, size, 0.1)
		if err := fs.Create(name, data); err != nil {
			return names, snapshot, err
		}
		names = append(names, name)
		snapshot[name] = data
	}
	return names, snapshot, nil
}

// CoverTraffic generates benign background I/O: reads, document edits
// (low-entropy overwrites), occasional creates and deletes. The timing
// attack hides behind it; the false-positive experiments measure against
// it.
type CoverTraffic struct {
	// EditFraction is the probability a step writes (vs. reads).
	EditFraction float64
	counter      int
}

// NewCoverTraffic returns a generator that writes with probability edit.
func NewCoverTraffic(edit float64) *CoverTraffic {
	return &CoverTraffic{EditFraction: edit}
}

// Step performs one benign operation against the filesystem.
func (c *CoverTraffic) Step(fs *host.FlatFS, rng *rand.Rand) error {
	names := fs.List()
	if len(names) == 0 || rng.Float64() >= c.EditFraction {
		if len(names) == 0 {
			return nil
		}
		_, err := fs.ReadFile(names[rng.Intn(len(names))])
		return err
	}
	c.counter++
	switch rng.Intn(10) {
	case 0: // create a new small document
		name := fmt.Sprintf("user/new-%06d.dat", c.counter)
		data := userContent(rng, fs.Device().PageSize(), 0.05)
		if err := fs.Create(name, data); err != nil {
			return nil // full disk is fine for cover traffic
		}
		return nil
	case 1: // delete something the user owns
		for _, n := range names {
			if len(n) > 9 && n[:9] == "user/new-" {
				return fs.Delete(n, rng.Intn(2) == 0)
			}
		}
		return nil
	default: // edit: low-entropy in-place update
		name := names[rng.Intn(len(names))]
		data, err := fs.ReadFile(name)
		if err != nil || len(data) == 0 {
			return err
		}
		edited := userContent(rng, len(data), 0.08)
		return fs.Overwrite(name, edited)
	}
}

// RunBenign performs n cover-traffic steps separated by think time.
func RunBenign(fs *host.FlatFS, rng *rand.Rand, n int, think simclock.Duration) error {
	c := NewCoverTraffic(0.3)
	for i := 0; i < n; i++ {
		if err := c.Step(fs, rng); err != nil {
			return err
		}
		fs.Clock().Advance(think)
	}
	return nil
}
