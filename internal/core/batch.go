package core

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/entropy"
	"repro/internal/ftl"
	"repro/internal/oplog"
	"repro/internal/simclock"
)

// This file implements the RSSD half of the batched datapath. SubmitBatch
// is the firmware taking a whole submission window at once: operations are
// grouped into same-kind runs, each run's log entries are sealed under one
// lock acquisition (oplog.AppendBatch), grouped FTL operations spread the
// run across NAND channels, and the background duties — the retention
// watermark check, the offload drain, the periodic checkpoint — run once
// per batch instead of once per op. The per-op Write/Read/Trim methods in
// rssd.go are thin wrappers over one-element batches.

// Op is one operation in a submission batch (alias of the stack-wide wire
// type; see internal/batch).
type Op = batch.Op

// Result is the completion of one Op.
type Result = batch.Result

// Batched operation kinds.
const (
	OpWrite = batch.OpWrite
	OpRead  = batch.OpRead
	OpTrim  = batch.OpTrim
)

// OnStaleContext implements ftl.StaleSeqObserver: inside a grouped FTL
// operation, it is called just before each op's invalidation so the
// retention entries created by OnStale carry that op's log sequence.
func (r *RSSD) OnStaleContext(seq uint64, at simclock.Time) {
	r.curStaleSeq, r.curStaleAt = seq, at
}

// SubmitBatch executes a submission batch. Operations are applied in
// submission order with respect to state; the device overlaps them across
// NAND channels where the hardware allows. Per-op validation failures are
// reported in the matching Result; a device-level failure (out of space,
// I/O error) aborts the batch with an error, leaving earlier operations
// applied. The retention/offload check and checkpoint accounting run once
// for the whole batch.
func (r *RSSD) SubmitBatch(ops []Op, at simclock.Time) ([]Result, simclock.Time, error) {
	res := make([]Result, len(ops))
	done := at
	mutations := 0
	err := batch.ForEachRun(ops, func(start, end int, kind batch.Kind) error {
		run, runRes := ops[start:end], res[start:end]
		switch kind {
		case OpWrite:
			return r.submitWrites(run, runRes, at, &done, &mutations)
		case OpRead:
			return r.submitReads(run, runRes, at, &done)
		case OpTrim:
			return r.submitTrims(run, runRes, at, &done, &mutations)
		default:
			for i := range runRes {
				runRes[i] = Result{Done: at, Err: fmt.Errorf("core: unknown batch op kind %d", kind)}
			}
			return nil
		}
	})
	if err != nil {
		return res, done, err
	}
	if mutations > 0 {
		var err error
		if done, err = r.afterOps(mutations, done); err != nil {
			return res, done, err
		}
	}
	return res, done, nil
}

// submitWrites applies one write run. The run is split into sub-batches at
// duplicate-LPN boundaries: within a sub-batch every LPN is distinct, so
// the OldPPN recorded in each log entry (looked up before the grouped FTL
// write) is exactly what a per-op sequence would have recorded.
func (r *RSSD) submitWrites(run []Op, res []Result, at simclock.Time, done *simclock.Time, mutations *int) error {
	pageSize := r.f.PageSize()
	logical := r.f.LogicalPages()

	var sub []int
	seen := make(map[uint64]struct{}, len(run))
	flush := func() error {
		if len(sub) == 0 {
			return nil
		}
		lpns := make([]uint64, len(sub))
		for k, i := range sub {
			lpns[k] = run[i].LPN
		}
		oldPPNs := r.f.LookupBatch(lpns)
		recs := make([]oplog.Rec, len(sub))
		for k, i := range sub {
			op := &run[i]
			recs[k] = oplog.Rec{
				Kind: oplog.KindWrite, At: at, LPN: op.LPN,
				OldPPN: oldPPNs[k], NewPPN: ftl.NoPPN,
				Entropy:  float32(entropy.Sampled(op.Data, 512)),
				DataHash: oplog.HashData(op.Data),
			}
		}
		entries := r.log.AppendBatch(recs)
		writes := make([]ftl.BatchWrite, len(sub))
		for k, i := range sub {
			writes[k] = ftl.BatchWrite{LPN: run[i].LPN, Data: run[i].Data, Seq: entries[k].Seq}
		}
		ts, _, err := r.f.WriteBatch(writes, at)
		if err != nil {
			return err
		}
		for k, i := range sub {
			r.lpnWriteSeq[run[i].LPN] = entries[k].Seq
			r.stats.HostWrites++
			res[i] = Result{Done: ts[k]}
			if ts[k] > *done {
				*done = ts[k]
			}
		}
		*mutations += len(sub)
		sub = sub[:0]
		clear(seen)
		return nil
	}

	for i := range run {
		op := &run[i]
		switch {
		case len(op.Data) != pageSize:
			res[i] = Result{Done: at, Err: ftl.ErrBadPageSize}
			continue
		case op.LPN >= logical:
			res[i] = Result{Done: at, Err: ftl.ErrOutOfRange}
			continue
		}
		if _, dup := seen[op.LPN]; dup {
			if err := flush(); err != nil {
				return err
			}
		}
		seen[op.LPN] = struct{}{}
		sub = append(sub, i)
	}
	return flush()
}

// submitReads applies one read run: a grouped FTL read plus one batched
// append of the sampled read-log entries.
func (r *RSSD) submitReads(run []Op, res []Result, at simclock.Time, done *simclock.Time) error {
	logical := r.f.LogicalPages()
	var lpns []uint64
	var idx []int
	for i := range run {
		if run[i].LPN >= logical {
			res[i] = Result{Done: at, Err: ftl.ErrOutOfRange}
			continue
		}
		lpns = append(lpns, run[i].LPN)
		idx = append(idx, i)
	}
	data, ts, _, err := r.f.ReadBatch(lpns, at)
	if err != nil {
		return err
	}
	var recs []oplog.Rec
	for k, i := range idx {
		res[i] = Result{Data: data[k], Done: ts[k]}
		if ts[k] > *done {
			*done = ts[k]
		}
		r.stats.HostReads++
		if n := r.cfg.ReadLogSampling; n > 0 {
			r.readCounter++
			if r.readCounter%uint64(n) == 0 {
				recs = append(recs, oplog.Rec{
					Kind: oplog.KindRead, At: at, LPN: lpns[k],
					OldPPN: r.f.Lookup(lpns[k]), NewPPN: ftl.NoPPN,
				})
			}
		}
	}
	r.log.AppendBatch(recs)
	return nil
}

// submitTrims applies one trim run, split at duplicate-LPN boundaries like
// writes so each log entry's OldPPN is exact.
func (r *RSSD) submitTrims(run []Op, res []Result, at simclock.Time, done *simclock.Time, mutations *int) error {
	logical := r.f.LogicalPages()

	var sub []int
	seen := make(map[uint64]struct{}, len(run))
	flush := func() error {
		if len(sub) == 0 {
			return nil
		}
		lpns := make([]uint64, len(sub))
		for k, i := range sub {
			lpns[k] = run[i].LPN
		}
		oldPPNs := r.f.LookupBatch(lpns)
		recs := make([]oplog.Rec, len(sub))
		for k, i := range sub {
			recs[k] = oplog.Rec{
				Kind: oplog.KindTrim, At: at, LPN: run[i].LPN,
				OldPPN: oldPPNs[k], NewPPN: ftl.NoPPN,
			}
		}
		entries := r.log.AppendBatch(recs)
		trims := make([]ftl.BatchTrim, len(sub))
		for k, i := range sub {
			trims[k] = ftl.BatchTrim{LPN: run[i].LPN, Seq: entries[k].Seq}
		}
		ts, _, err := r.f.TrimBatch(trims, at)
		if err != nil {
			return err
		}
		for k, i := range sub {
			if oldPPNs[k] != ftl.NoPPN {
				r.lpnWriteSeq[run[i].LPN] = NoSeq
			}
			r.stats.HostTrims++
			res[i] = Result{Done: ts[k]}
			if ts[k] > *done {
				*done = ts[k]
			}
		}
		*mutations += len(sub)
		sub = sub[:0]
		clear(seen)
		return nil
	}

	for i := range run {
		if run[i].LPN >= logical {
			res[i] = Result{Done: at, Err: ftl.ErrOutOfRange}
			continue
		}
		if _, dup := seen[run[i].LPN]; dup {
			if err := flush(); err != nil {
				return err
			}
		}
		seen[run[i].LPN] = struct{}{}
		sub = append(sub, i)
	}
	return flush()
}
