package core

import (
	"bytes"
	"testing"

	"repro/internal/ftl"
	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
)

// TestSubmitBatchMatchesPerOpSequence drives the same operation sequence
// per-op on one device and as a single submission batch on another, and
// verifies state, stats, and log chains agree.
func TestSubmitBatchMatchesPerOpSequence(t *testing.T) {
	perOp := newEnv(t, testConfig())
	batched := newEnv(t, testConfig())

	ops := []Op{
		{Kind: OpWrite, LPN: 0, Data: fill(0xA0, 512)},
		{Kind: OpWrite, LPN: 1, Data: fill(0xA1, 512)},
		{Kind: OpWrite, LPN: 2, Data: fill(0xA2, 512)},
		{Kind: OpRead, LPN: 0},
		{Kind: OpRead, LPN: 1},
		{Kind: OpTrim, LPN: 2},
		{Kind: OpWrite, LPN: 0, Data: fill(0xB0, 512)},
	}
	at := simclock.Time(0)
	for _, op := range ops {
		var err error
		switch op.Kind {
		case OpWrite:
			at, err = perOp.r.Write(op.LPN, op.Data, at)
		case OpRead:
			_, at, err = perOp.r.Read(op.LPN, at)
		case OpTrim:
			at, err = perOp.r.Trim(op.LPN, at)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	res, _, err := batched.r.SubmitBatch(ops, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i].Err != nil {
			t.Fatalf("op %d: %v", i, res[i].Err)
		}
	}

	ps, bs := perOp.r.Stats(), batched.r.Stats()
	if ps.HostWrites != bs.HostWrites || ps.HostReads != bs.HostReads || ps.HostTrims != bs.HostTrims {
		t.Fatalf("stats diverge: per-op %+v vs batched %+v", ps, bs)
	}
	if ps.RetainedNow != bs.RetainedNow {
		t.Fatalf("retention diverges: %d vs %d pinned versions", ps.RetainedNow, bs.RetainedNow)
	}
	if perOp.r.Log().NextSeq() != batched.r.Log().NextSeq() {
		t.Fatalf("log lengths diverge: %d vs %d", perOp.r.Log().NextSeq(), batched.r.Log().NextSeq())
	}
	if err := oplog.VerifyChain(batched.r.Log().All(), [oplog.HashSize]byte{}); err != nil {
		t.Fatalf("batched log chain broken: %v", err)
	}
	// Entry streams must match in kind/LPN order (hashes differ only via
	// timestamps).
	pe, be := perOp.r.Log().All(), batched.r.Log().All()
	for i := range pe {
		if pe[i].Kind != be[i].Kind || pe[i].LPN != be[i].LPN || pe[i].OldPPN != be[i].OldPPN {
			t.Fatalf("entry %d diverges: per-op %+v vs batched %+v", i, pe[i], be[i])
		}
	}
	for lpn := uint64(0); lpn < 3; lpn++ {
		pd, _, err := perOp.r.Read(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		bd, _, err := batched.r.Read(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pd, bd) {
			t.Fatalf("lpn %d: contents diverge", lpn)
		}
	}
}

// TestSubmitBatchDuplicateLPNAttribution writes the same LPN twice in one
// batch and checks the forensic attribution is exact: the second entry's
// OldPPN points at the first write's page, and the retained version
// carries the correct write/stale sequence pair.
func TestSubmitBatchDuplicateLPNAttribution(t *testing.T) {
	e := newEnv(t, testConfig())
	res, _, err := e.r.SubmitBatch([]Op{
		{Kind: OpWrite, LPN: 5, Data: fill(0x01, 512)},
		{Kind: OpWrite, LPN: 5, Data: fill(0x02, 512)},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i].Err != nil {
			t.Fatalf("op %d: %v", i, res[i].Err)
		}
	}
	entries := e.r.Log().All()
	if len(entries) != 2 {
		t.Fatalf("log has %d entries, want 2", len(entries))
	}
	first, second := entries[0], entries[1]
	if first.OldPPN != ftl.NoPPN {
		t.Fatalf("first write OldPPN = %d, want none", first.OldPPN)
	}
	if second.OldPPN == ftl.NoPPN {
		t.Fatal("second write did not record the first write's page")
	}
	vs := e.r.RetainedVersions(5)
	if len(vs) != 1 {
		t.Fatalf("retained versions = %d, want 1", len(vs))
	}
	if vs[0].WriteSeq != first.Seq || vs[0].StaleSeq != second.Seq {
		t.Fatalf("retained version seq pair = (%d,%d), want (%d,%d)",
			vs[0].WriteSeq, vs[0].StaleSeq, first.Seq, second.Seq)
	}
}

// TestSubmitBatchReadSampling: the read log sampling counter advances per
// read inside a batch exactly as it does per-op.
func TestSubmitBatchReadSampling(t *testing.T) {
	cfg := testConfig()
	cfg.ReadLogSampling = 3
	e := newEnv(t, cfg)
	if _, _, err := e.r.SubmitBatch([]Op{{Kind: OpWrite, LPN: 0, Data: fill(1, 512)}}, 0); err != nil {
		t.Fatal(err)
	}
	reads := make([]Op, 9)
	for i := range reads {
		reads[i] = Op{Kind: OpRead, LPN: 0}
	}
	before := e.r.Log().NextSeq()
	if _, _, err := e.r.SubmitBatch(reads, 0); err != nil {
		t.Fatal(err)
	}
	logged := 0
	for _, en := range e.r.Log().All() {
		if en.Seq >= before && en.Kind == oplog.KindRead {
			logged++
		}
	}
	if logged != 3 {
		t.Fatalf("sampled %d read entries for 9 reads at 1:3, want 3", logged)
	}
}

// TestFailedOffloadLeavesRetainedPagesIntact is the zero-data-loss
// invariant under offload failure: when the remote connection is broken,
// background offload errors are surfaced through Stats() and nothing is
// released or dropped; once a healthy remote is attached, the backlog
// drains completely.
func TestFailedOffloadLeavesRetainedPagesIntact(t *testing.T) {
	cfg := testConfig()
	cfg.DropWhenOffline = false // never destroy data, even under pressure
	store := remote.NewStore(remote.NewMemStore())
	srv := remote.NewServer(store, testPSK)
	client, err := remote.Loopback(srv, testPSK, cfg.DeviceID)
	if err != nil {
		t.Fatal(err)
	}
	client.Close() // attached but broken: every push fails
	r := New(cfg, client)

	// 4 live pages overwritten 3x -> 12 retained, over the high water
	// (0.7 * 16-page budget), so offload keeps being attempted and failing.
	at := simclock.Time(0)
	for round := 0; round < 4; round++ {
		for lpn := uint64(0); lpn < 4; lpn++ {
			if at, err = r.Write(lpn, fill(byte(round), 512), at); err != nil {
				t.Fatalf("host write failed on offload error: %v", err)
			}
		}
	}
	// Settle the asynchronous pipeline so every staged segment has either
	// acked or failed-and-requeued before the invariant is checked.
	at = r.DrainOffload(at)
	st := r.Stats()
	if st.OffloadErrors == 0 {
		t.Fatal("no offload errors recorded despite broken remote")
	}
	if st.LastOffloadError == "" {
		t.Fatal("LastOffloadError not surfaced through Stats()")
	}
	if st.RetainedNow != 12 {
		t.Fatalf("retained = %d, want all 12 stale versions", st.RetainedNow)
	}
	if st.ReleasedPins != 0 || st.DroppedPages != 0 || st.OffloadPages != 0 {
		t.Fatalf("data released without durable ack: %+v", st)
	}
	if got := r.FTL().PinnedPages(); got != 12 {
		t.Fatalf("pinned pages = %d, want 12", got)
	}

	// Recovery: a healthy remote drains the whole backlog, nothing lost.
	good, err := remote.Loopback(srv, testPSK, cfg.DeviceID)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	r.AttachRemote(good)
	if _, err := r.OffloadNow(at); err != nil {
		t.Fatal(err)
	}
	st = r.Stats()
	if st.RetainedNow != 0 || st.OffloadPages != 12 {
		t.Fatalf("backlog did not drain after recovery: %+v", st)
	}
	if st.LastOffloadError != "" {
		t.Fatalf("stale error still surfaced after successful offload: %q", st.LastOffloadError)
	}
	if st.DroppedPages != 0 {
		t.Fatal("data dropped during recovery")
	}
}
