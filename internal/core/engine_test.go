package core

import (
	"testing"

	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
)

// churn drives rounds of overwrites across lpns so stale versions pile up
// past the offload watermark, returning the final host completion time.
func churn(t *testing.T, r *RSSD, lpns, rounds int, at simclock.Time) simclock.Time {
	t.Helper()
	for round := 0; round < rounds; round++ {
		ops := make([]Op, lpns)
		for i := range ops {
			ops[i] = Op{Kind: OpWrite, LPN: uint64(i), Data: fill(byte(round+1), 512)}
		}
		res, done, err := r.SubmitBatch(ops, at)
		if err != nil {
			t.Fatal(err)
		}
		for i := range res {
			if res[i].Err != nil {
				t.Fatalf("round %d op %d: %v", round, i, res[i].Err)
			}
		}
		at = done
	}
	return at
}

// TestAsyncOffloadOverlapsHostTime runs the same churn on an asynchronous
// device and a SyncOffload baseline: both must ship segments, but only the
// baseline charges seal + transfer time to host completions. The async
// device must also account the transfer honestly in OffloadLatency
// instead of charging zero anywhere.
func TestAsyncOffloadOverlapsHostTime(t *testing.T) {
	async := newEnv(t, testConfig())
	syncCfg := testConfig()
	syncCfg.SyncOffload = true
	syncDev := newEnv(t, syncCfg)

	asyncDone := churn(t, async.r, 6, 4, 0)
	syncDone := churn(t, syncDev.r, 6, 4, 0)

	asyncDone = async.r.DrainOffload(asyncDone)
	defer async.r.Close()

	as, ss := async.r.Stats(), syncDev.r.Stats()
	if as.OffloadSegments == 0 || ss.OffloadSegments == 0 {
		t.Fatalf("no offload happened: async %d, sync %d segments", as.OffloadSegments, ss.OffloadSegments)
	}
	if as.OffloadLatency == 0 {
		t.Fatal("async engine charged zero simulated time for offload (transfer unaccounted)")
	}
	if as.OffloadAckTime == 0 {
		t.Fatal("no ack latency recorded")
	}
	// The host-visible completion of the churn must be earlier on the
	// async device: its transfers overlapped host I/O.
	hostAsync := churnHostTime(t, testConfig())
	if hostAsync >= syncDone {
		t.Fatalf("async host completion %v not earlier than sync baseline %v", hostAsync, syncDone)
	}
	_ = asyncDone
}

// churnHostTime reruns the churn on a fresh async device and returns the
// host completion time alone (no drain barrier): what the host observed.
func churnHostTime(t *testing.T, cfg Config) simclock.Time {
	t.Helper()
	e := newEnv(t, cfg)
	done := churn(t, e.r, 6, 4, 0)
	e.r.Close()
	return done
}

// TestStaleOffloadErrorClearedAfterRetrySuccess is the regression test for
// the sticky LastOffloadError: failures during an outage must surface, and
// the first successful background offload after recovery must clear them —
// host tooling polling Stats() must not see a resolved failure forever.
func TestStaleOffloadErrorClearedAfterRetrySuccess(t *testing.T) {
	cfg := testConfig()
	cfg.DropWhenOffline = false
	store := remote.NewStore(remote.NewMemStore())
	srv := remote.NewServer(store, testPSK)
	broken, err := remote.Loopback(srv, testPSK, cfg.DeviceID)
	if err != nil {
		t.Fatal(err)
	}
	broken.Close() // attached but dead: every push fails
	r := New(cfg, broken)
	defer r.Close()

	at := churn(t, r, 4, 3, 0) // 8 stale versions... keep under watermark
	at = churn(t, r, 4, 1, at) // cross it: staging starts and fails
	at = r.DrainOffload(at)
	st := r.Stats()
	if st.OffloadErrors == 0 || st.LastOffloadError == "" {
		t.Fatalf("outage not surfaced: %+v", st)
	}
	if st.OffloadRetries == 0 {
		t.Fatal("failed segments were not requeued for retry")
	}
	if st.OffloadPages != 0 || st.DroppedPages != 0 {
		t.Fatalf("data moved or dropped without a durable ack: %+v", st)
	}

	// Recovery: a healthy session; the next background watermark check
	// retries the requeued backlog and the success clears the error.
	good, err := remote.Loopback(srv, testPSK, cfg.DeviceID)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	r.AttachRemote(good)
	at = churn(t, r, 4, 1, at)
	at = r.DrainOffload(at)
	st = r.Stats()
	if st.OffloadSegments == 0 {
		t.Fatal("background retry did not ship the backlog")
	}
	if st.LastOffloadError != "" {
		t.Fatalf("stale error still surfaced after successful retry: %q", st.LastOffloadError)
	}
	_ = at
}

// TestOffloadBackpressureStallsHost: with a staging queue of one, draining
// to the low watermark stages more segments than the queue holds, so the
// host must stall for acks — and those stalls are recorded.
func TestOffloadBackpressureStallsHost(t *testing.T) {
	cfg := testConfig()
	cfg.OffloadQueueDepth = 1
	cfg.SegmentMaxPages = 2
	e := newEnv(t, cfg)
	defer e.r.Close()

	at := churn(t, e.r, 6, 3, 0)
	at = e.r.DrainOffload(at)
	st := e.r.Stats()
	if st.OffloadSegments < 2 {
		t.Fatalf("expected a multi-segment drain, got %d", st.OffloadSegments)
	}
	if st.OffloadStalls == 0 || st.OffloadStallTime == 0 {
		t.Fatalf("queue-full backpressure did not stall the host: %+v", st)
	}
	if st.OffloadQueuePeak < 1 {
		t.Fatalf("queue peak not tracked: %+v", st)
	}
}

// TestOffloadNowSettlesPipeline: OffloadNow must drain staged segments,
// retained pages, and the log tail, leaving the device fully remote.
func TestOffloadNowSettlesPipeline(t *testing.T) {
	e := newEnv(t, testConfig())
	defer e.r.Close()
	at := churn(t, e.r, 6, 4, 0)
	at, err := e.r.OffloadNow(at)
	if err != nil {
		t.Fatal(err)
	}
	st := e.r.Stats()
	if st.RetainedNow != 0 || st.OffloadInFlight != 0 {
		t.Fatalf("pipeline not settled: %+v", st)
	}
	if e.r.OffloadedUpTo() != e.r.Log().NextSeq() {
		t.Fatalf("log tail not offloaded: upTo %d, next %d", e.r.OffloadedUpTo(), e.r.Log().NextSeq())
	}
	if got := e.store.Head(e.r.DeviceID()).NextSeq; got != e.r.Log().NextSeq() {
		t.Fatalf("remote head %d, want %d", got, e.r.Log().NextSeq())
	}
	_ = at
}

// TestRejectedEntriesNotPrunedByPagesOnlyAck pins down a frontier hazard:
// when the server rejects the entry-bearing segment of a staged run (the
// session survives — e.g. its chain diverged), a pages-only segment staged
// behind it is still accepted, because the server only chain-checks
// segments that carry entries. That ack must not advance the durable
// frontier over the rejected entries: they are not remote, so pruning
// them locally would destroy the only copy of the evidence chain.
func TestRejectedEntriesNotPrunedByPagesOnlyAck(t *testing.T) {
	cfg := testConfig()
	cfg.DropWhenOffline = false
	cfg.SegmentMaxPages = 4 // force multi-segment staging runs
	store := remote.NewStore(remote.NewMemStore())
	srv := remote.NewServer(store, testPSK)
	client, err := remote.Loopback(srv, testPSK, cfg.DeviceID)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Poison the device's remote chain: the server is already at seq 3 for
	// this device, so every entry-bearing segment the device ships (which
	// starts at 0) is rejected while the session stays up.
	if err := store.AppendSegment(conflictSegment(cfg.DeviceID, 3)); err != nil {
		t.Fatal(err)
	}
	r := New(cfg, client)
	defer r.Close()

	at := churn(t, r, 4, 4, 0)
	at = r.DrainOffload(at)
	st := r.Stats()
	if st.OffloadErrors == 0 {
		t.Fatal("conflicting chain did not surface as offload errors")
	}
	if got := r.OffloadedUpTo(); got != 0 {
		t.Fatalf("durable frontier advanced to %d over rejected entries", got)
	}
	if st.LastOffloadError == "" {
		t.Fatal("failure epoch cleared by a pages-only ack")
	}
	// The rejected entries must still be local: nothing was pruned.
	if entries := r.Log().Entries(0, 1); len(entries) != 1 {
		t.Fatal("log entries pruned without a durable remote copy")
	}
	_ = at
}

// conflictSegment builds a minimal foreign segment putting a device's
// remote chain at the given next sequence.
func conflictSegment(deviceID, upTo uint64) *oplog.Segment {
	l := oplog.New()
	seg := &oplog.Segment{DeviceID: deviceID, FirstSeq: 0, LastSeq: upTo}
	for i := uint64(0); i < upTo; i++ {
		e := l.Append(oplog.KindWrite, 0, i, 0, 0, 0, oplog.HashData([]byte("x")))
		seg.Entries = append(seg.Entries, e)
	}
	return seg
}
