package core

import (
	"bytes"
	"testing"

	"repro/internal/bufpool"
	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
)

// TestEncodeWorkersMatchInline runs the same churn through the worker
// pipeline and the inline-encode baseline: both must land the identical
// evidence chain at the server — the worker pool moves the compression off
// the firmware goroutine, it must never change what ships.
func TestEncodeWorkersMatchInline(t *testing.T) {
	workerCfg := testConfig()
	workerCfg.EncodeWorkers = 3
	inlineCfg := testConfig()
	inlineCfg.EncodeWorkers = -1

	workers := newEnv(t, workerCfg)
	inline := newEnv(t, inlineCfg)
	wDone := churn(t, workers.r, 6, 4, 0)
	iDone := churn(t, inline.r, 6, 4, 0)
	if _, err := workers.r.OffloadNow(wDone); err != nil {
		t.Fatal(err)
	}
	if _, err := inline.r.OffloadNow(iDone); err != nil {
		t.Fatal(err)
	}
	workers.r.Close()
	inline.r.Close()

	wh, ih := workers.store.Head(1), inline.store.Head(1)
	if wh.NextSeq == 0 || wh.NextSeq != ih.NextSeq {
		t.Fatalf("chain lengths diverge: workers %+v, inline %+v", wh, ih)
	}
	ws, is := workers.store.DeviceStats(1), inline.store.DeviceStats(1)
	if ws.Versions != is.Versions || ws.Entries != is.Entries {
		t.Fatalf("stores diverge: workers %+v, inline %+v", ws, is)
	}
	// The logged operations must be identical op for op. Timestamps (and
	// therefore chain hashes) legitimately differ — the inline baseline
	// charges the encode to the host path, shifting the clock — but the
	// evidence content cannot depend on where compression ran.
	we := workers.store.Entries(1, 0, wh.NextSeq)
	ie := inline.store.Entries(1, 0, ih.NextSeq)
	for i := range we {
		if we[i].Seq != ie[i].Seq || we[i].Kind != ie[i].Kind ||
			we[i].LPN != ie[i].LPN || we[i].DataHash != ie[i].DataHash {
			t.Fatalf("entry %d diverges: workers %+v, inline %+v", i, we[i], ie[i])
		}
	}
}

// TestEncodeStageAccounted: the simulated-time model must charge the
// encode stage (EncodeTime) and observe its occupancy (EncodeQueuePeak),
// and in worker mode the host must not pay the encode while the sync
// baseline must.
func TestEncodeStageAccounted(t *testing.T) {
	e := newEnv(t, testConfig())
	done := churn(t, e.r, 6, 4, 0)
	e.r.DrainOffload(done)
	defer e.r.Close()
	st := e.r.Stats()
	if st.OffloadSegments == 0 {
		t.Fatal("no segments shipped")
	}
	if st.EncodeTime == 0 {
		t.Fatal("encode stage charged zero simulated time")
	}
	if st.EncodeQueuePeak == 0 {
		t.Fatal("encode stage occupancy never observed")
	}
	if st.OffloadAckTime < st.EncodeTime {
		// Every segment's ack waits out its own encode, so the cumulative
		// ack span dominates the cumulative encode span.
		t.Fatalf("ack time %v < encode time %v: encode not in the ack path", st.OffloadAckTime, st.EncodeTime)
	}
}

// TestTierServiceTimeInAck: a device offloading to an s3sim-backed server
// must see the tier's modeled Put latency inside its ack times — the
// device-side ack path reflects the backend, not just the wire.
func TestTierServiceTimeInAck(t *testing.T) {
	s3 := remote.NewS3Sim(remote.DefaultS3Config())
	store := remote.NewStore(s3)
	srv := remote.NewServer(store, testPSK)
	client, err := remote.Loopback(srv, testPSK, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	r := New(testConfig(), client)
	done := churn(t, r, 6, 4, 0)
	done = r.DrainOffload(done)
	defer r.Close()

	st := r.Stats()
	if st.OffloadSegments == 0 {
		t.Fatal("no segments shipped")
	}
	if st.OffloadTierTime == 0 {
		t.Fatal("s3sim-backed offload recorded zero tier service time")
	}
	// The tier's 18ms first-byte floor dwarfs the µs-scale link model; the
	// mean ack must be at least the per-segment tier floor.
	meanAck := st.OffloadAckTime / simclock.Duration(st.OffloadSegments)
	if meanAck < 18*simclock.Millisecond {
		t.Fatalf("mean ack %v does not reflect the tier's 18ms Put floor", meanAck)
	}

	// A mem-backed device acks with zero tier time, and must stay faster.
	local := newEnv(t, testConfig())
	ldone := churn(t, local.r, 6, 4, 0)
	local.r.DrainOffload(ldone)
	defer local.r.Close()
	ls := local.r.Stats()
	if ls.OffloadTierTime != 0 {
		t.Fatalf("mem tier reported service time %v", ls.OffloadTierTime)
	}
	if lm := ls.OffloadAckTime / simclock.Duration(ls.OffloadSegments); lm >= meanAck {
		t.Fatalf("local mean ack %v not below cloud mean ack %v", lm, meanAck)
	}
}

// TestEncodeStagedSteadyStateAllocs is the engine half of the
// zero-allocation contract: encoding a sealed segment — marshal, codec
// frame, page-buffer release — allocates nothing once the pools are warm.
func TestEncodeStagedSteadyStateAllocs(t *testing.T) {
	if bufpool.RaceEnabled {
		t.Skip("race instrumentation allocates; alloc assertions run in the non-race job")
	}
	data := bytes.Repeat([]byte("retained page payload "), 100)
	const nPages = 4
	seg := &oplog.Segment{DeviceID: 1, FirstSeq: 0, LastSeq: 0,
		Pages: make([]oplog.PageRecord, nPages)}
	st := &stagedSegment{seg: seg}
	var bufs [nPages]*bufpool.Buf
	// reseal refills the staged segment the way buildSegment does — pooled
	// page buffers, fresh views — without allocating anything itself.
	reseal := func() {
		st.pageBufs = bufs[:0]
		for p := 0; p < nPages; p++ {
			pb := bufpool.Get(len(data))
			pb.B = append(pb.B, data...)
			st.pageBufs = append(st.pageBufs, pb)
			seg.Pages[p] = oplog.PageRecord{
				LPN: uint64(p), Hash: oplog.HashData(pb.B), Data: pb.B,
			}
		}
		st.logical = seg.MarshaledSize()
	}
	// Warm the pools once.
	reseal()
	encodeStaged(st)
	st.blobBuf.Release()

	if n := testing.AllocsPerRun(20, func() {
		reseal()
		encodeStaged(st)
		if st.wire == 0 || st.blob == nil {
			t.Fatal("encode produced no blob")
		}
		st.blobBuf.Release()
	}); n != 0 {
		t.Errorf("encode worker loop: %v allocs/op, want 0", n)
	}
}
