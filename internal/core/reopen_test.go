package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
)

// reopenEnv builds an env, runs mixed traffic, and returns the shadow of
// live state plus a version-history oracle.
type versionOracle struct {
	// per lpn: ordered (seq, value) of writes; trims recorded as value 0
	// with trim flag
	writes map[uint64][]struct {
		seq  uint64
		val  byte
		trim bool
	}
	live map[uint64]byte // current expected content (absent = zeroes)
}

func driveTraffic(t *testing.T, e *env, ops int, seed int64) (*versionOracle, simclock.Time) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	o := &versionOracle{
		writes: map[uint64][]struct {
			seq  uint64
			val  byte
			trim bool
		}{},
		live: map[uint64]byte{},
	}
	at := simclock.Time(0)
	const lpns = 10
	for i := 0; i < ops; i++ {
		lpn := uint64(rng.Intn(lpns))
		seq := e.r.Log().NextSeq()
		if rng.Intn(8) == 0 {
			var err error
			at, err = e.r.Trim(lpn, at)
			if err != nil {
				t.Fatal(err)
			}
			o.writes[lpn] = append(o.writes[lpn], struct {
				seq  uint64
				val  byte
				trim bool
			}{seq, 0, true})
			delete(o.live, lpn)
			continue
		}
		b := byte(rng.Intn(255) + 1)
		var err error
		at, err = e.r.Write(lpn, fill(b, 512), at)
		if err != nil {
			t.Fatal(err)
		}
		o.writes[lpn] = append(o.writes[lpn], struct {
			seq  uint64
			val  byte
			trim bool
		}{seq, b, false})
		o.live[lpn] = b
		at = at.Add(simclock.Millisecond)
	}
	return o, at
}

// reopenedDevice simulates a clean shutdown + power cycle: drain, drop the
// in-RAM RSSD, and Reopen over the same NAND array with a fresh session.
func reopenedDevice(t *testing.T, e *env, at simclock.Time) *RSSD {
	t.Helper()
	if _, err := e.r.OffloadNow(at); err != nil {
		t.Fatal(err)
	}
	dev := e.r.FTL().Device()
	srv := remote.NewServer(e.store, testPSK)
	client2, err := remote.Loopback(srv, testPSK, e.r.cfg.DeviceID)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client2.Close() })
	r2, err := Reopen(e.r.cfg, dev, client2)
	if err != nil {
		t.Fatal(err)
	}
	return r2
}

func TestReopenRestoresLiveState(t *testing.T) {
	e := newEnv(t, testConfig())
	oracle, at := driveTraffic(t, e, 200, 1)
	r2 := reopenedDevice(t, e, at)

	for lpn := uint64(0); lpn < 10; lpn++ {
		data, _, err := r2.Read(lpn, at)
		if err != nil {
			t.Fatalf("read lpn %d: %v", lpn, err)
		}
		want, ok := oracle.live[lpn]
		if !ok {
			if !bytes.Equal(data, make([]byte, 512)) {
				t.Fatalf("lpn %d: expected zeroes after reopen", lpn)
			}
			continue
		}
		if data[0] != want {
			t.Fatalf("lpn %d = %d, want %d after reopen", lpn, data[0], want)
		}
	}
}

func TestReopenPreservesVersionHistory(t *testing.T) {
	e := newEnv(t, testConfig())
	oracle, at := driveTraffic(t, e, 200, 2)
	r2 := reopenedDevice(t, e, at)

	// Every historical version is still reachable post-reboot.
	for lpn, vs := range oracle.writes {
		for _, v := range vs {
			if v.trim {
				continue
			}
			data, ok, err := r2.ReadVersionBefore(lpn, v.seq+1, at)
			if err != nil {
				t.Fatalf("version (%d, %d): %v", lpn, v.seq, err)
			}
			if !ok || data[0] != v.val {
				t.Fatalf("version (%d, %d) = %v/%v, want %d", lpn, v.seq, data[0], ok, v.val)
			}
		}
	}
}

func TestReopenContinuesChain(t *testing.T) {
	e := newEnv(t, testConfig())
	_, at := driveTraffic(t, e, 100, 3)
	r2 := reopenedDevice(t, e, at)

	resumeSeq := r2.Log().NextSeq()
	if resumeSeq != r2.OffloadedUpTo() {
		t.Fatalf("resume seq %d != offloaded %d", resumeSeq, r2.OffloadedUpTo())
	}
	// New activity offloads onto the old chain without rejection.
	for i := 0; i < 60; i++ {
		var err error
		at, err = r2.Write(uint64(i%5), fill(byte(i), 512), at)
		if err != nil {
			t.Fatalf("post-reopen write %d: %v", i, err)
		}
	}
	if _, err := r2.OffloadNow(at); err != nil {
		t.Fatalf("post-reopen offload: %v", err)
	}
	// The remote chain is continuous across the reboot.
	h := e.store.Head(1)
	entries := e.store.Entries(1, 0, h.NextSeq)
	if err := oplog.VerifyChain(entries, [32]byte{}); err != nil {
		t.Fatalf("chain broken across reboot: %v", err)
	}
	if h.NextSeq <= resumeSeq {
		t.Fatal("no post-reboot entries reached the remote")
	}
}

func TestReopenRollsBackUncommittedTail(t *testing.T) {
	e := newEnv(t, testConfig())
	at := simclock.Time(0)
	at, _ = e.r.Write(0, fill(0xAA, 512), at)
	if _, err := e.r.OffloadNow(at); err != nil {
		t.Fatal(err)
	}
	// Crash WITHOUT offloading this write: its log entry dies in RAM.
	at, _ = e.r.Write(0, fill(0xBB, 512), at)
	dev := e.r.FTL().Device()
	srv := remote.NewServer(e.store, testPSK)
	client2, err := remote.Loopback(srv, testPSK, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	r2, err := Reopen(e.r.cfg, dev, client2)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := r2.Read(0, at)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 0xAA {
		t.Fatalf("post-crash content = %#x, want rollback to 0xAA", data[0])
	}
}

func TestReopenRequiresRemote(t *testing.T) {
	e := newEnv(t, testConfig())
	if _, err := Reopen(e.r.cfg, e.r.FTL().Device(), nil); err != ErrNoRemote {
		t.Fatalf("err = %v", err)
	}
}
