package core

import (
	"fmt"

	"repro/internal/ftl"
	"repro/internal/oplog"
	"repro/internal/simclock"
)

// VersionInfo describes one retained version of a logical page, wherever
// it currently lives.
type VersionInfo struct {
	LPN      uint64
	WriteSeq uint64
	StaleSeq uint64 // NoSeq for the live version
	Cause    ftl.StaleCause
	Local    bool // true: still pinned on local flash
}

// RetainedVersions lists the locally retained versions of lpn in writeSeq
// order (oldest first). Remote versions are not included; query the remote
// store for those.
func (r *RSSD) RetainedVersions(lpn uint64) []VersionInfo {
	var out []VersionInfo
	for _, re := range r.retByLPN[lpn] {
		if re.released {
			continue
		}
		out = append(out, VersionInfo{
			LPN: re.lpn, WriteSeq: re.writeSeq, StaleSeq: re.staleSeq,
			Cause: re.cause, Local: true,
		})
	}
	return out
}

// WriteSeqOf returns the log sequence of the live version of lpn, or NoSeq
// if the page is unmapped.
func (r *RSSD) WriteSeqOf(lpn uint64) uint64 {
	if lpn >= uint64(len(r.lpnWriteSeq)) {
		return NoSeq
	}
	return r.lpnWriteSeq[lpn]
}

// ReadVersionBefore returns the contents lpn held just before log sequence
// `before`. See VersionBefore for the full contract.
func (r *RSSD) ReadVersionBefore(lpn, before uint64, at simclock.Time) ([]byte, bool, error) {
	data, _, ok, err := r.VersionBefore(lpn, before, at)
	return data, ok, err
}

// VersionBefore returns the contents lpn held just before log sequence
// `before`: the newest version written with seq < before that was still
// live at that point. It consults, in order of preference, the live
// mapping, locally retained pins, and the remote store. A page that was
// trimmed before `before` (and not rewritten) reads as zeroes, matching
// what the host would have observed.
//
// writeSeq is the log sequence of the write that produced the returned
// data, or NoSeq when the result is the zero page (never written, or a
// trim gap); recovery uses it to verify restored content against the
// log's recorded hash.
func (r *RSSD) VersionBefore(lpn, before uint64, at simclock.Time) (data []byte, writeSeq uint64, ok bool, err error) {
	if lpn >= r.f.LogicalPages() {
		return nil, NoSeq, false, ftl.ErrOutOfRange
	}
	type candidate struct {
		writeSeq uint64
		staleSeq uint64 // NoSeq if live
		cause    ftl.StaleCause
		ppn      uint64 // local location; NoPPN -> fetch remote
		remote   *oplog.PageRecord
	}
	var best *candidate

	// Live version.
	if ws := r.lpnWriteSeq[lpn]; ws != NoSeq && ws < before {
		best = &candidate{writeSeq: ws, staleSeq: NoSeq, ppn: r.f.Lookup(lpn)}
	}
	// Locally retained versions (sorted by writeSeq).
	vs := r.retByLPN[lpn]
	for i := len(vs) - 1; i >= 0; i-- {
		re := vs[i]
		if re.released || re.writeSeq == NoSeq || re.writeSeq >= before {
			continue
		}
		if best == nil || re.writeSeq > best.writeSeq {
			best = &candidate{writeSeq: re.writeSeq, staleSeq: re.staleSeq, cause: re.cause, ppn: re.ppn}
		}
		break // list is sorted; the first qualifying from the end is the newest
	}
	// Remote versions.
	if r.client != nil {
		rec, ok, err := r.client.FetchVersion(lpn, before)
		if err != nil {
			return nil, NoSeq, false, fmt.Errorf("core: fetch version lpn %d: %w", lpn, err)
		}
		if ok && (best == nil || rec.WriteSeq > best.writeSeq) {
			recCopy := rec
			best = &candidate{
				writeSeq: rec.WriteSeq, staleSeq: rec.StaleSeq,
				cause: ftl.StaleCause(rec.Cause), remote: &recCopy,
			}
		}
	}
	if best == nil {
		// Never written before `before`: logical zeroes.
		return make([]byte, r.f.PageSize()), NoSeq, false, nil
	}
	// If the best version was already stale at `before`, the only way no
	// newer version qualifies is a trim gap: the page read as zeroes at
	// that point. (An overwrite-staled best implies a newer version
	// exists and would have been chosen; if it was dropped in offline
	// mode, returning the older data is the best surviving restore.)
	if best.staleSeq != NoSeq && best.staleSeq < before && best.cause == ftl.CauseTrim {
		return make([]byte, r.f.PageSize()), NoSeq, true, nil
	}
	if best.remote != nil {
		return append([]byte(nil), best.remote.Data...), best.writeSeq, true, nil
	}
	data, _, _, err = r.f.ReadPhysical(best.ppn, at)
	if err != nil {
		return nil, NoSeq, false, fmt.Errorf("core: read version ppn %d: %w", best.ppn, err)
	}
	return data, best.writeSeq, true, nil
}

// ImageBefore reconstructs the full logical image as it stood just before
// log sequence `before`. The result has one entry per logical page: nil
// means the page read as zeroes at that point (never written, or inside a
// trim gap). Remote versions are fetched in one bulk query rather than
// per page, so rebuilding a whole device costs one round trip plus local
// reads — this is the disaster-recovery path ("rebuild onto a fresh
// device"), as opposed to RestoreWindow's targeted rollback.
func (r *RSSD) ImageBefore(before uint64, at simclock.Time) ([][]byte, error) {
	n := r.f.LogicalPages()
	type cand struct {
		writeSeq uint64
		staleSeq uint64
		cause    ftl.StaleCause
		ppn      uint64
		rec      *oplog.PageRecord
	}
	best := make([]*cand, n)
	// Live versions.
	for lpn := uint64(0); lpn < n; lpn++ {
		if ws := r.lpnWriteSeq[lpn]; ws != NoSeq && ws < before {
			best[lpn] = &cand{writeSeq: ws, staleSeq: NoSeq, ppn: r.f.Lookup(lpn)}
		}
	}
	// Locally retained versions.
	for lpn, vs := range r.retByLPN {
		for i := len(vs) - 1; i >= 0; i-- {
			re := vs[i]
			if re.released || re.writeSeq == NoSeq || re.writeSeq >= before {
				continue
			}
			if b := best[lpn]; b == nil || re.writeSeq > b.writeSeq {
				best[lpn] = &cand{writeSeq: re.writeSeq, staleSeq: re.staleSeq, cause: re.cause, ppn: re.ppn}
			}
			break
		}
	}
	// Remote versions, fetched in bulk.
	if r.client != nil {
		recs, err := r.client.FetchImage(before)
		if err != nil {
			return nil, fmt.Errorf("core: fetch image: %w", err)
		}
		for i := range recs {
			rec := recs[i]
			if rec.LPN >= n {
				continue
			}
			if b := best[rec.LPN]; b == nil || rec.WriteSeq > b.writeSeq {
				best[rec.LPN] = &cand{
					writeSeq: rec.WriteSeq, staleSeq: rec.StaleSeq,
					cause: ftl.StaleCause(rec.Cause), rec: &recs[i],
				}
			}
		}
	}
	img := make([][]byte, n)
	for lpn := uint64(0); lpn < n; lpn++ {
		b := best[lpn]
		if b == nil {
			continue // never written: zeroes
		}
		if b.staleSeq != NoSeq && b.staleSeq < before && b.cause == ftl.CauseTrim {
			continue // trim gap: zeroes
		}
		if b.rec != nil {
			img[lpn] = append([]byte(nil), b.rec.Data...)
			continue
		}
		data, _, _, err := r.f.ReadPhysical(b.ppn, at)
		if err != nil {
			return nil, fmt.Errorf("core: image read lpn %d (ppn %d): %w", lpn, b.ppn, err)
		}
		img[lpn] = data
	}
	return img, nil
}

// RestoreWrite rewrites lpn with recovered data, logging the operation as
// a recovery action so the evidence chain distinguishes restoration from
// host activity.
func (r *RSSD) RestoreWrite(lpn uint64, data []byte, at simclock.Time) (simclock.Time, error) {
	if len(data) != r.f.PageSize() {
		return at, ftl.ErrBadPageSize
	}
	if lpn >= r.f.LogicalPages() {
		return at, ftl.ErrOutOfRange
	}
	oldPPN := r.f.Lookup(lpn)
	e := r.log.Append(oplog.KindRecovery, at, lpn, oldPPN, ftl.NoPPN, 0, oplog.HashData(data))
	r.curStaleSeq, r.curStaleAt = e.Seq, at
	done, err := r.f.WriteWithSeq(lpn, data, e.Seq, at)
	if err != nil {
		return done, err
	}
	r.lpnWriteSeq[lpn] = e.Seq
	return r.afterOp(done)
}

// RestoreTrim restores a page to the unmapped (zero) state, logging it as
// a recovery action. Used when the pre-attack state of a page was "never
// written" or "trimmed by the legitimate owner".
func (r *RSSD) RestoreTrim(lpn uint64, at simclock.Time) (simclock.Time, error) {
	if lpn >= r.f.LogicalPages() {
		return at, ftl.ErrOutOfRange
	}
	oldPPN := r.f.Lookup(lpn)
	e := r.log.Append(oplog.KindRecoveryTrim, at, lpn, oldPPN, ftl.NoPPN, 0, [oplog.HashSize]byte{})
	r.curStaleSeq, r.curStaleAt = e.Seq, at
	done, err := r.f.Trim(lpn, at)
	if err != nil {
		return done, err
	}
	r.lpnWriteSeq[lpn] = NoSeq
	return r.afterOp(done)
}
