package core

import (
	"fmt"

	"repro/internal/nvmeoe"
	"repro/internal/oplog"
	"repro/internal/simclock"
)

// maxEntriesPerSegment bounds the log entries shipped in one segment so a
// single frame stays well under the transport limit.
const maxEntriesPerSegment = 4096

// maybeOffload drains retained pages to the remote server when they exceed
// the high watermark of the local retention budget. The drain is modeled as
// background work: its flash reads ride the NAND background lane (the
// dedicated offload engine reads in host idle gaps, yielding the chip to
// host traffic the way read-suspend does), and the network transfer rides
// the dedicated NVMe-oE engine off the host path.
func (r *RSSD) maybeOffload(at simclock.Time) (simclock.Time, error) {
	budget := r.retentionBudget()
	high := int(r.cfg.OffloadHighWater * float64(budget))
	if len(r.retained) <= high {
		return at, nil
	}
	low := int(r.cfg.OffloadLowWater * float64(budget))
	if r.client == nil {
		if r.cfg.DropWhenOffline {
			r.dropTo(low)
			return at, nil
		}
		return at, nil // keep accumulating; Pressure will fail eventually
	}
	if _, err := r.offloadTo(low, at); err != nil {
		// A failed offload must not fail host I/O: nothing was released
		// (zero data loss holds), retention just keeps accumulating and
		// the next operation retries. Only Pressure escalates further.
		r.stats.OffloadErrors++
		r.lastOffloadErr = err
	}
	return at, nil
}

// LastOffloadError returns the most recent background offload failure, or
// nil. Host tooling polls it the way it would poll a SMART error log.
func (r *RSSD) LastOffloadError() error { return r.lastOffloadErr }

// OffloadNow synchronously drains every retained page and all pending log
// entries to the remote server. Administrators run this before planned
// disconnects; tests use it to establish "everything is remote".
func (r *RSSD) OffloadNow(at simclock.Time) (simclock.Time, error) {
	if r.client == nil {
		return at, ErrNoRemote
	}
	n, err := r.offloadTo(0, at)
	if err != nil {
		return at, err
	}
	_ = n
	// Ship any remaining log entries even when no pages are left.
	for r.offloadedUpTo < r.log.NextSeq() {
		if err := r.shipSegment(nil, at); err != nil {
			return at, err
		}
	}
	return at, nil
}

// offloadTo ships segments until at most target retained pages remain
// locally. It returns the number of pages shipped.
func (r *RSSD) offloadTo(target int, at simclock.Time) (int, error) {
	if r.client == nil {
		return 0, ErrNoRemote
	}
	shipped := 0
	for len(r.retained) > target {
		batch := r.popRetained(r.cfg.SegmentMaxPages, len(r.retained)-target)
		if len(batch) == 0 {
			break
		}
		if err := r.shipSegment(batch, at); err != nil {
			// The batch was not acked: re-pin nothing (we only release
			// after ack), but put the entries back at the queue head so
			// a retry ships the same data.
			r.requeue(batch)
			return shipped, err
		}
		shipped += len(batch)
	}
	r.lastOffloadErr = nil
	return shipped, nil
}

// popRetained removes up to min(max, want) oldest live retained entries
// from the offload queue without releasing their pins yet.
func (r *RSSD) popRetained(max, want int) []*retEntry {
	if want < max {
		max = want
	}
	var out []*retEntry
	for r.retHead < len(r.retQueue) && len(out) < max {
		re := r.retQueue[r.retHead]
		r.retHead++
		if re.released {
			continue
		}
		out = append(out, re)
	}
	// Compact the consumed prefix occasionally to bound memory.
	if r.retHead > 4096 && r.retHead*2 > len(r.retQueue) {
		r.retQueue = append([]*retEntry(nil), r.retQueue[r.retHead:]...)
		r.retHead = 0
	}
	return out
}

// requeue puts a failed batch back at the head of the offload queue.
func (r *RSSD) requeue(batch []*retEntry) {
	if len(batch) == 0 {
		return
	}
	newQueue := make([]*retEntry, 0, len(batch)+len(r.retQueue)-r.retHead)
	newQueue = append(newQueue, batch...)
	newQueue = append(newQueue, r.retQueue[r.retHead:]...)
	r.retQueue = newQueue
	r.retHead = 0
}

// shipSegment builds and pushes one segment carrying the given retained
// pages (may be nil) plus the next run of log entries, then — only after
// the durability ack — releases the local pins. This "ack before release"
// ordering is the zero-data-loss invariant.
func (r *RSSD) shipSegment(batch []*retEntry, at simclock.Time) error {
	to := r.log.NextSeq()
	if to > r.offloadedUpTo+maxEntriesPerSegment {
		to = r.offloadedUpTo + maxEntriesPerSegment
	}
	entries := r.log.Entries(r.offloadedUpTo, to)
	seg := &oplog.Segment{
		DeviceID: r.cfg.DeviceID,
		FirstSeq: r.offloadedUpTo,
		LastSeq:  to,
	}
	seg.Entries = entries
	if len(entries) > 0 {
		seg.FirstTime = entries[0].At
		seg.LastTime = entries[len(entries)-1].At
	}
	start := at
	for _, re := range batch {
		// Background lane: the offload engine's flash reads fill host idle
		// gaps (read-suspend priority) rather than delaying host I/O.
		data, _, done, err := r.f.ReadPhysicalBackground(re.ppn, at)
		if err != nil {
			return fmt.Errorf("core: read retained ppn %d: %w", re.ppn, err)
		}
		r.stats.OffloadLatency += done.Sub(start)
		seg.Pages = append(seg.Pages, oplog.PageRecord{
			LPN:      re.lpn,
			WriteSeq: re.writeSeq,
			StaleSeq: re.staleSeq,
			Cause:    uint8(re.cause),
			Hash:     oplog.HashData(data),
			Data:     data,
		})
	}
	if err := r.client.PushSegment(seg); err != nil {
		return err
	}
	// Durable: release local pins and forget the versions locally.
	for _, re := range batch {
		if err := r.f.Release(re.ppn); err == nil {
			r.stats.ReleasedPins++
		}
		re.released = true
		delete(r.retained, re.ppn)
		r.removeFromLPNIndex(re)
		r.stats.OffloadPages++
		r.stats.OffloadBytes += uint64(r.f.PageSize())
	}
	r.stats.OffloadSegments++
	r.stats.OffloadEntries += uint64(len(entries))
	r.offloadedUpTo = to
	r.log.Prune(r.offloadedUpTo)
	return nil
}

// dropTo destroys the oldest retained versions without offload. Only the
// offline degradation path uses it; each drop is recorded because it is
// exactly the data-loss event RSSD exists to prevent.
func (r *RSSD) dropTo(target int) {
	for len(r.retained) > target {
		re := r.popOldest()
		if re == nil {
			return
		}
		if err := r.f.Release(re.ppn); err == nil {
			r.stats.ReleasedPins++
		}
		re.released = true
		delete(r.retained, re.ppn)
		r.removeFromLPNIndex(re)
		r.stats.DroppedPages++
	}
}

// popOldest pops the oldest live retained entry, or nil.
func (r *RSSD) popOldest() *retEntry {
	for r.retHead < len(r.retQueue) {
		re := r.retQueue[r.retHead]
		r.retHead++
		if !re.released {
			return re
		}
	}
	return nil
}

// removeFromLPNIndex unlinks a released entry from the per-LPN index.
func (r *RSSD) removeFromLPNIndex(re *retEntry) {
	vs := r.retByLPN[re.lpn]
	for i := range vs {
		if vs[i] == re {
			r.retByLPN[re.lpn] = append(vs[:i], vs[i+1:]...)
			break
		}
	}
	if len(r.retByLPN[re.lpn]) == 0 {
		delete(r.retByLPN, re.lpn)
	}
}

// CheckpointNow ships a mapping snapshot to the remote server and logs it.
// Recovery uses the newest checkpoint before the attack point to bound how
// much log it must replay.
func (r *RSSD) CheckpointNow(at simclock.Time) (simclock.Time, error) {
	if r.client == nil {
		return at, nil // checkpoints are only meaningful with a remote
	}
	snapshot := r.f.SnapshotL2P()
	cp := nvmeoe.Checkpoint{L2P: snapshot}
	e := r.log.Append(oplog.KindCheckpoint, at, 0, 0, 0, 0, oplog.HashData(cp.Marshal()))
	cp.Seq = e.Seq
	if err := r.client.PushCheckpoint(&cp); err != nil {
		return at, fmt.Errorf("core: checkpoint: %w", err)
	}
	r.stats.Checkpoints++
	return at, nil
}

// OffloadedUpTo reports the log sequence below which everything is durably
// remote.
func (r *RSSD) OffloadedUpTo() uint64 { return r.offloadedUpTo }
