package core

import (
	"fmt"

	"repro/internal/nvmeoe"
	"repro/internal/oplog"
	"repro/internal/simclock"
)

// maxEntriesPerSegment bounds the log entries shipped in one segment so a
// single frame stays well under the transport limit.
const maxEntriesPerSegment = 4096

// maybeOffload runs the offload stage of the background duty cycle. In the
// default asynchronous mode it harvests due acks, then — when locally
// retained pages exceed the high watermark of the retention budget —
// stages sealed segments into the engine's bounded queue until the
// unstaged backlog drops to the low watermark; the network transfer
// proceeds off the host path. In SyncOffload mode (the baseline the fleet
// experiment compares against) the drain is inline and its full simulated
// cost — flash reads plus transfer — is charged to the returned host time.
func (r *RSSD) maybeOffload(at simclock.Time) (simclock.Time, error) {
	if !r.cfg.SyncOffload {
		r.pollOffload(at)
	}
	r.maybeRedial(at)
	budget := r.retentionBudget()
	high := int(r.cfg.OffloadHighWater * float64(budget))
	if r.unstagedRetained() <= high {
		return at, nil
	}
	low := int(r.cfg.OffloadLowWater * float64(budget))
	if r.client == nil {
		if r.cfg.DropWhenOffline {
			r.dropTo(low)
		}
		return at, nil // else keep accumulating; Pressure will fail eventually
	}
	if r.cfg.SyncOffload {
		done, err := r.offloadToSync(low, at)
		if err != nil {
			// A failed offload must not fail host I/O: nothing was released
			// (zero data loss holds), retention just keeps accumulating and
			// the next operation retries. Only Pressure escalates further.
			r.stats.OffloadErrors++
			r.lastOffloadErr = err
		}
		return done, nil
	}
	return r.stageTo(low, at), nil
}

// unstagedRetained counts retained pages not yet travelling through the
// offload pipeline — the quantity the watermarks govern.
func (r *RSSD) unstagedRetained() int {
	n := len(r.retained)
	if r.engine != nil {
		n -= r.engine.pagesInFlight
	}
	return n
}

// stageTo stages segments until at most target unstaged retained pages
// remain. During a failure epoch staging pauses: the pipeline must drain
// and requeue before a retry ships the same entries again.
func (r *RSSD) stageTo(target int, at simclock.Time) simclock.Time {
	for {
		if e := r.engine; e != nil && e.failing {
			return at
		}
		n := r.unstagedRetained() - target
		if n <= 0 {
			return at
		}
		batch := r.popRetained(r.cfg.SegmentMaxPages, n)
		if len(batch) == 0 {
			return at
		}
		var err error
		if at, err = r.stage(batch, at); err != nil {
			r.stats.OffloadErrors++
			r.lastOffloadErr = err
			return at
		}
	}
}

// LastOffloadError returns the most recent background offload failure, or
// nil once a subsequent offload succeeds. Host tooling polls it the way it
// would poll a SMART error log.
func (r *RSSD) LastOffloadError() error { return r.lastOffloadErr }

// OffloadNow synchronously drains every retained page and all pending log
// entries to the remote server, settling the asynchronous pipeline on the
// way. Administrators run this before planned disconnects; tests use it to
// establish "everything is remote".
func (r *RSSD) OffloadNow(at simclock.Time) (simclock.Time, error) {
	if r.client == nil {
		return at, ErrNoRemote
	}
	r.maybeRedial(at)
	if r.cfg.SyncOffload {
		done, err := r.offloadToSync(0, at)
		if err != nil {
			return done, err
		}
		at = done
		for r.stagedUpTo < r.log.NextSeq() {
			if at, err = r.shipSync(nil, at); err != nil {
				return at, err
			}
		}
		return at, nil
	}
	redialWaits := 0
	for {
		beforeRetained, beforeSeq, beforeRedials := len(r.retained), r.offloadedUpTo, r.stats.Redials
		at = r.drainOffload(at)
		r.maybeRedial(at)
		at = r.stageTo(0, at)
		for r.engineIdleHealthy() && r.stagedUpTo < r.log.NextSeq() {
			var err error
			if at, err = r.stage(nil, at); err != nil {
				r.stats.OffloadErrors++
				r.lastOffloadErr = err
				break
			}
		}
		at = r.drainOffload(at)
		// A failure harvested by this drain may have scheduled a redial or
		// head reconcile; running it here lets the progress check see the
		// reconciled frontier instead of aborting on a stale one.
		r.maybeRedial(at)
		if len(r.retained) == 0 && r.offloadedUpTo == r.log.NextSeq() {
			return at, nil
		}
		if len(r.retained) == beforeRetained && r.offloadedUpTo == beforeSeq &&
			r.stats.Redials == beforeRedials {
			// No progress. If the session is dead and the next redial is
			// merely scheduled in the future, an administrator-driven drain
			// should wait out the backoff in simulated time rather than
			// fail: this is the dial-factory path a server failover rides —
			// the device sits out the outage, redials, and resumes on
			// whatever server the factory now names. Bounded so a fleet
			// with no live server still surfaces an error.
			if r.sessionDead && r.cfg.Dial != nil && r.nextRedialAt > at && redialWaits < maxRedialWaits {
				redialWaits++
				r.stats.RedialWaitTime += r.nextRedialAt.Sub(at)
				at = r.nextRedialAt
				continue
			}
			// A full stage+drain round made no progress (a successful
			// redial counts as progress — the next round ships on the new
			// session): surface the error instead of spinning. A dead
			// session that exhausted its wait budget gets the typed
			// ErrRedialExhausted so callers can tell "gave up" from a
			// transient failure that healed slowly.
			if r.sessionDead && r.cfg.Dial != nil && redialWaits >= maxRedialWaits {
				r.stats.RedialExhausted++
				if r.lastOffloadErr != nil {
					return at, fmt.Errorf("%w after %d waits: %v", ErrRedialExhausted, redialWaits, r.lastOffloadErr)
				}
				return at, fmt.Errorf("%w after %d waits", ErrRedialExhausted, redialWaits)
			}
			if r.lastOffloadErr != nil {
				return at, r.lastOffloadErr
			}
			return at, fmt.Errorf("core: offload stalled with %d pages retained", len(r.retained))
		}
		redialWaits = 0
	}
}

// maxRedialWaits bounds how many scheduled-backoff waits one OffloadNow
// call will sit out before surfacing the dial error: at the capped
// backoff this is plenty to ride through a failover, while a cluster with
// no live servers still fails in bounded simulated time.
const maxRedialWaits = 16

// engineIdleHealthy reports whether entry-only staging may proceed (no
// failure epoch pending a pipeline reset).
func (r *RSSD) engineIdleHealthy() bool {
	return r.engine == nil || !r.engine.failing
}

// offloadToSync ships segments inline until at most target retained pages
// remain, charging the full simulated cost to the returned time. This is
// the synchronous baseline and the Pressure escalation path.
func (r *RSSD) offloadToSync(target int, at simclock.Time) (simclock.Time, error) {
	if r.client == nil {
		return at, ErrNoRemote
	}
	for len(r.retained) > target {
		batch := r.popRetained(r.cfg.SegmentMaxPages, len(r.retained)-target)
		if len(batch) == 0 {
			break
		}
		var err error
		if at, err = r.shipSync(batch, at); err != nil {
			return at, err
		}
	}
	return at, nil
}

// shipSync builds and pushes one segment inline, waiting for the
// durability ack before releasing pins (zero-data-loss ordering) and
// charging seal plus encode plus transfer time — and the storage tier's
// modeled Put service time reported in the ack — to the returned host
// time. This is the measured baseline: everything the asynchronous
// pipeline overlaps rides the host path here.
func (r *RSSD) shipSync(batch []*retEntry, at simclock.Time) (simclock.Time, error) {
	st, err := r.buildSegment(batch, at)
	if err != nil {
		r.requeue(batch)
		r.stagedUpTo = r.offloadedUpTo
		return at, fmt.Errorf("core: seal segment: %w", err)
	}
	// The encode cannot start before the background page reads complete
	// (sealedAt) nor before the firmware goroutine is free (at) — the
	// same formula the asynchronous engine's codec lanes use.
	dur := r.encodeDur(st.logical)
	r.stats.EncodeTime += dur
	encodeStaged(st)
	encDone := simclock.Max(st.sealedAt, at).Add(dur)
	svc, err := r.client.PushSegmentBlobTimed(st.blob, st.seg.LastSeq)
	st.blobBuf.Release()
	st.blobBuf, st.blob = nil, nil
	if err != nil {
		// The batch was not acked: re-pin nothing (we only release after
		// ack), but put the entries back at the queue head so a retry
		// ships the same data. A transport-level failure additionally
		// marks the session dead for the redial path.
		r.requeue(batch)
		r.stagedUpTo = r.offloadedUpTo
		r.noteRemoteErr(err)
		return at, err
	}
	st.svc = svc
	st.ackAt = encDone.Add(r.xferTime(st.wire)).Add(svc)
	r.releaseSegment(st)
	return st.ackAt, nil
}

// dropTo destroys the oldest retained versions without offload. Only the
// offline degradation path uses it; each drop is recorded because it is
// exactly the data-loss event RSSD exists to prevent.
func (r *RSSD) dropTo(target int) {
	for len(r.retained) > target {
		re := r.popOldest()
		if re == nil {
			return
		}
		if err := r.f.Release(re.ppn); err == nil {
			r.stats.ReleasedPins++
		}
		re.released = true
		delete(r.retained, re.ppn)
		r.removeFromLPNIndex(re)
		r.stats.DroppedPages++
	}
}

// popRetained removes up to min(max, want) oldest live retained entries
// from the offload queue without releasing their pins yet.
func (r *RSSD) popRetained(max, want int) []*retEntry {
	if want < max {
		max = want
	}
	var out []*retEntry
	for r.retHead < len(r.retQueue) && len(out) < max {
		re := r.retQueue[r.retHead]
		r.retHead++
		if re.released {
			continue
		}
		out = append(out, re)
	}
	// Compact the consumed prefix occasionally to bound memory.
	if r.retHead > 4096 && r.retHead*2 > len(r.retQueue) {
		r.retQueue = append([]*retEntry(nil), r.retQueue[r.retHead:]...)
		r.retHead = 0
	}
	return out
}

// requeue puts a failed batch back at the head of the offload queue.
func (r *RSSD) requeue(batch []*retEntry) {
	if len(batch) == 0 {
		return
	}
	newQueue := make([]*retEntry, 0, len(batch)+len(r.retQueue)-r.retHead)
	newQueue = append(newQueue, batch...)
	newQueue = append(newQueue, r.retQueue[r.retHead:]...)
	r.retQueue = newQueue
	r.retHead = 0
}

// popOldest pops the oldest live retained entry, or nil.
func (r *RSSD) popOldest() *retEntry {
	for r.retHead < len(r.retQueue) {
		re := r.retQueue[r.retHead]
		r.retHead++
		if !re.released {
			return re
		}
	}
	return nil
}

// removeFromLPNIndex unlinks a released entry from the per-LPN index.
func (r *RSSD) removeFromLPNIndex(re *retEntry) {
	vs := r.retByLPN[re.lpn]
	for i := range vs {
		if vs[i] == re {
			r.retByLPN[re.lpn] = append(vs[:i], vs[i+1:]...)
			break
		}
	}
	if len(r.retByLPN[re.lpn]) == 0 {
		delete(r.retByLPN, re.lpn)
	}
}

// CheckpointNow ships a mapping snapshot to the remote server and logs it.
// Recovery uses the newest checkpoint before the attack point to bound how
// much log it must replay.
func (r *RSSD) CheckpointNow(at simclock.Time) (simclock.Time, error) {
	if r.client == nil {
		return at, nil // checkpoints are only meaningful with a remote
	}
	snapshot := r.f.SnapshotL2P()
	cp := nvmeoe.Checkpoint{L2P: snapshot}
	e := r.log.Append(oplog.KindCheckpoint, at, 0, 0, 0, 0, oplog.HashData(cp.Marshal()))
	cp.Seq = e.Seq
	if err := r.client.PushCheckpoint(&cp); err != nil {
		return at, fmt.Errorf("core: checkpoint: %w", err)
	}
	r.stats.Checkpoints++
	return at, nil
}

// OffloadedUpTo reports the log sequence below which everything is durably
// remote.
func (r *RSSD) OffloadedUpTo() uint64 { return r.offloadedUpTo }
