package core

import (
	"testing"
)

// TestOffloadWireBytesCompressed: segments built from compressible host
// data must cross the link smaller than their logical size, the device and
// the remote store must agree on both sides of the ratio, and the sync
// baseline must account the same way.
func TestOffloadWireBytesCompressed(t *testing.T) {
	for _, mode := range []struct {
		name string
		sync bool
	}{{"async", false}, {"sync", true}} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := testConfig()
			cfg.SyncOffload = mode.sync
			e := newEnv(t, cfg)
			defer e.r.Close()

			// fill() pages are a single repeated byte: deflate crushes them.
			at := churn(t, e.r, 6, 6, 0)
			at = e.r.DrainOffload(at)
			if _, err := e.r.OffloadNow(at); err != nil {
				t.Fatal(err)
			}

			st := e.r.Stats()
			if st.OffloadSegments == 0 {
				t.Fatal("no segments shipped")
			}
			if st.OffloadBytesWire == 0 || st.OffloadBytesLogical == 0 {
				t.Fatalf("wire accounting missing: %+v", st)
			}
			if st.OffloadBytesWire >= st.OffloadBytesLogical {
				t.Fatalf("wire %d >= logical %d: compression not applied on the offload path",
					st.OffloadBytesWire, st.OffloadBytesLogical)
			}
			ds := e.store.DeviceStats(e.r.DeviceID())
			if uint64(ds.BytesStored) != st.OffloadBytesWire {
				t.Fatalf("store holds %d bytes, device shipped %d wire bytes", ds.BytesStored, st.OffloadBytesWire)
			}
			if uint64(ds.BytesLogical) != st.OffloadBytesLogical {
				t.Fatalf("store logical %d, device logical %d", ds.BytesLogical, st.OffloadBytesLogical)
			}
		})
	}
}
