package core

import (
	"bytes"
	"net"
	"testing"

	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
)

// TestRestoreImageResumesMidStream power-cycles a device after an attack,
// then restores it through a recovery session that dies mid-stream: the
// restorer must redial, resume from its cursor (the server sees a resumed
// stream, not a second full one), and still produce a page-identical
// pre-attack image.
func TestRestoreImageResumesMidStream(t *testing.T) {
	e := newEnv(t, testConfig())
	oracle, at := driveTraffic(t, e, 150, 9)
	cut := e.r.Log().NextSeq()

	// Post-cut damage standing in for the attack: every page the oracle
	// knows gets scrambled, a couple get trimmed away.
	for lpn := uint64(0); lpn < 10; lpn++ {
		var err error
		if lpn%4 == 3 {
			at, err = e.r.Trim(lpn, at)
		} else {
			at, err = e.r.Write(lpn, fill(0xEE, 512), at)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.r.OffloadNow(at); err != nil {
		t.Fatal(err)
	}

	// Power cycle.
	nandDev := e.r.FTL().Device()
	srv := remote.NewServer(e.store, testPSK)
	clean := func() (*remote.Client, error) { return remote.Loopback(srv, testPSK, 1) }
	client2, err := clean()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client2.Close() })
	r2, err := Reopen(e.r.cfg, nandDev, client2)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()

	// Restore over a recovery session whose first incarnation dies after
	// two chunks: handshake (2 reads) + 2 chunk frames (3 reads each).
	dials := 0
	dial := func() (*remote.Client, error) {
		dials++
		if dials == 1 {
			dc, sc := net.Pipe()
			go srv.HandleConn(sc)
			// Handshake (2 reads) + two 3-read chunk frames, then drop.
			return remote.Dial(remote.NewChokeConn(dc, 8), testPSK, 1)
		}
		return clean()
	}
	at, rep, err := r2.RestoreImage(cut, RestoreOptions{
		Dial:        dial,
		ChunkPages:  2,
		BackoffBase: simclock.Millisecond,
	}, at)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumes == 0 {
		t.Fatal("stream was not interrupted: the test vehicle lost its teeth")
	}
	if rs := srv.RecoveryStats(1); rs.Resumes == 0 || rs.Streams < 2 {
		t.Fatalf("server saw no resumed stream (restarted instead?): %+v", rs)
	}
	if rep.RTO <= 0 || rep.Chunks == 0 || rep.BytesWire == 0 {
		t.Fatalf("implausible restore report: %+v", rep)
	}
	if rep.BytesWire >= rep.BytesLogical {
		t.Fatalf("restore wire not compressed: %+v", rep)
	}
	if st := r2.Stats(); st.RestoreBytesWire != rep.BytesWire || st.RestoreBytesLogical != rep.BytesLogical {
		t.Fatalf("device restore counters diverge from report: %+v vs %+v", st, rep)
	}

	// Page-identical to the pre-damage oracle.
	for lpn := uint64(0); lpn < 10; lpn++ {
		data, _, err := r2.Read(lpn, at)
		if err != nil {
			t.Fatalf("read lpn %d: %v", lpn, err)
		}
		want, ok := oracle.live[lpn]
		if !ok {
			if !bytes.Equal(data, make([]byte, 512)) {
				t.Fatalf("lpn %d: want zeroes, got %#x", lpn, data[0])
			}
			continue
		}
		if data[0] != want {
			t.Fatalf("lpn %d = %#x, want %#x", lpn, data[0], want)
		}
	}

	// The restore is evidence-chain honest: recovery entries offload onto
	// the same chain without a break.
	if _, err := r2.OffloadNow(at); err != nil {
		t.Fatal(err)
	}
	h := e.store.Head(1)
	if err := oplog.VerifyChain(e.store.Entries(1, 0, h.NextSeq), [32]byte{}); err != nil {
		t.Fatalf("chain broken after restore: %v", err)
	}
}

// TestRestoreImageRequiresDial: the restorer owns its sessions; without a
// factory it refuses rather than silently degrading to the offload client.
func TestRestoreImageRequiresDial(t *testing.T) {
	e := newEnv(t, testConfig())
	if _, _, err := e.r.RestoreImage(1, RestoreOptions{}, 0); err != ErrNoDial {
		t.Fatalf("err = %v, want ErrNoDial", err)
	}
}
