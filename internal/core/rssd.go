// Package core implements RSSD, the ransomware-aware SSD of the paper: an
// FTL extended with hardware-assisted logging, conservative retention of
// all stale data, an enhanced trim that retains trimmed data, and a
// hardware-isolated offload path that ships retained pages and the
// operation log to remote storage in time order.
//
// The design invariant is zero data loss: a stale page's local copy is
// only released for garbage collection after the remote server has
// acknowledged durable receipt of its contents. Under that invariant the
// three Ransomware 2.0 attacks are neutralized:
//
//   - GC attack: flooding the device forces GC, but GC can only reclaim
//     space by migrating pins or after offload has drained them — the old
//     versions survive remotely, so forcing GC destroys nothing.
//   - Timing attack: retention is no longer bounded by local capacity, so
//     encrypting slowly does not outlast the retention window; and the
//     remote detection pipeline sees entropy-stamped logs regardless of
//     pacing.
//   - Trimming attack: trim is remapped, not destructive — the trimmed
//     data is retained and offloaded like any overwrite.
package core

import (
	"errors"

	"repro/internal/batch"
	"repro/internal/ftl"
	"repro/internal/netsim"
	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
)

// Config configures an RSSD instance.
type Config struct {
	FTL      ftl.Config
	DeviceID uint64

	// OffloadHighWater and OffloadLowWater are fractions of the retention
	// budget (the over-provisioned page pool). When locally retained
	// pages exceed High, the offload engine drains them to Low.
	OffloadHighWater float64
	OffloadLowWater  float64
	// SegmentMaxPages bounds retained pages per offload segment.
	SegmentMaxPages int
	// CheckpointEvery ships a mapping snapshot after that many host ops
	// (0 disables periodic checkpoints; one is still written on demand).
	CheckpointEvery uint64
	// ReadLogSampling logs every Nth host read (1 = all, 0 = none).
	// Read entries feed the read-then-overwrite ransomware detector.
	ReadLogSampling int
	// DisableEnhancedTrim reverts to destructive trim semantics
	// (ablation: this is what makes the trimming attack succeed).
	DisableEnhancedTrim bool
	// DropWhenOffline controls behaviour when no remote client is
	// attached and retention pressure builds: true drops the oldest
	// retained pages (LocalSSD-like degradation), false fails writes.
	DropWhenOffline bool
	// OffloadQueueDepth bounds the asynchronous engine's staging queue
	// (sealed segments awaiting transfer). When the queue is full the
	// host stalls until the oldest segment resolves — the backpressure
	// point of the pipeline. Default 8.
	OffloadQueueDepth int
	// SyncOffload reverts to inline synchronous offload: segments are
	// shipped on the host path with seal + transfer time charged to host
	// I/O. It is the baseline the fleet experiment compares the
	// asynchronous engine against.
	SyncOffload bool
	// OffloadLinkRTT and OffloadLinkMBps model the NVMe-oE link the
	// offload engine owns: one segment transfer costs
	// RTT + bytes/bandwidth of simulated time, serialized on the link.
	// Defaults: 30µs, 1200 MB/s. Ignored when NIC is set.
	OffloadLinkRTT  simclock.Duration
	OffloadLinkMBps float64
	// NIC, when set, is the shared server-NIC QoS arbiter this device's
	// offload traffic is charged to (as one ClassOffload flow): transfers
	// contend with fleet restore streams and lifecycle transfers under
	// the arbiter's strict-priority + guaranteed-floor policy. nil keeps
	// the legacy private link built from OffloadLinkRTT/MBps — a
	// single-flow arbiter, so timing is bit-identical to the historical
	// dedicated-link model.
	NIC *netsim.Arbiter
	// EncodeWorkers sizes the codec worker pool that compresses sealed
	// segments off the firmware goroutine: seal hands raw segments to the
	// workers, and the transfer goroutine ships encoded blobs in seal
	// order. 0 selects the default (2). A negative value selects inline
	// encoding at seal time on the firmware goroutine — the pre-pipeline
	// baseline the datapath experiment measures the workers against.
	EncodeWorkers int
	// EncodeMBps models one codec worker's DEFLATE throughput in the
	// simulated-time model (real encoding runs as fast as the CPU allows;
	// this is what the honest accounting charges). Default 400 MB/s,
	// BestSpeed-class.
	EncodeMBps float64
	// Dial, when set, lets the device re-establish remote sessions itself:
	// the offload engine redials a dead session with exponential backoff
	// and resumes from the server's FetchHead, and the restorer uses it to
	// resume interrupted image streams. Without it, a dead session fails
	// segments until a caller attaches a new client by hand — the
	// pre-redial behaviour.
	Dial DialFunc
	// RedialBackoff and RedialBackoffMax bound the redial schedule: the
	// first attempt fires at the next background poll after the session
	// dies, then retries back off exponentially from RedialBackoff up to
	// RedialBackoffMax of simulated time. Defaults: 1ms, 32ms.
	RedialBackoff    simclock.Duration
	RedialBackoffMax simclock.Duration
	// RecoveryChunkPages bounds retained pages per streamed restore chunk
	// (0 lets the server pick).
	RecoveryChunkPages int
}

// DefaultConfig returns the configuration used across the evaluation.
func DefaultConfig() Config {
	return Config{
		FTL:               ftl.DefaultConfig(),
		DeviceID:          1,
		OffloadHighWater:  0.70,
		OffloadLowWater:   0.40,
		SegmentMaxPages:   128,
		CheckpointEvery:   4096,
		ReadLogSampling:   1,
		DropWhenOffline:   true,
		OffloadQueueDepth: 8,
		OffloadLinkRTT:    30 * simclock.Microsecond,
		OffloadLinkMBps:   1200,
	}
}

// Stats aggregates RSSD-level counters on top of the FTL's.
type Stats struct {
	HostWrites      uint64
	HostReads       uint64
	HostTrims       uint64
	RetainedNow     int
	OffloadSegments uint64
	OffloadPages    uint64
	OffloadBytes    uint64 // uncompressed page bytes shipped
	OffloadEntries  uint64
	// OffloadBytesWire is what actually crossed the NVMe-oE link: codec-
	// framed (compressed) segment blobs. OffloadBytesLogical is the same
	// segments' uncompressed marshal size; wire < logical is the
	// compression the retention budget and link model are sized with.
	OffloadBytesWire    uint64
	OffloadBytesLogical uint64
	ReleasedPins        uint64
	DroppedPages        uint64 // retained pages destroyed without offload (offline mode only)
	Checkpoints         uint64
	PressureEvents      uint64
	OffloadErrors       uint64 // background offload failures (retried)
	// OffloadLatency is the total simulated time the offload engine spent
	// moving data — background-lane flash reads plus link transfers. In
	// the asynchronous mode none of it is charged to host I/O; in
	// SyncOffload mode the same quantity rides the host path.
	OffloadLatency simclock.Duration
	// OffloadAckTime is the cumulative seal-to-ack span over acked
	// segments; OffloadAckTime / OffloadSegments is the mean ack latency.
	// It includes the encode stage, the link transfer, and the storage
	// tier's modeled Put service time reported back in each segment ack —
	// device-side ack latency reflects the backend, not just the wire.
	OffloadAckTime simclock.Duration
	// OffloadTierTime is the share of OffloadAckTime spent in the storage
	// tier's modeled Put service (zero on free local tiers).
	OffloadTierTime simclock.Duration
	// EncodeTime is the total simulated time the codec lanes spent
	// compressing sealed segments. With encode workers it overlaps host
	// I/O and the link; in the inline/sync baselines it rides the host
	// path. EncodeQueuePeak is the deepest the encode stage ever got —
	// segments still on a simulated codec lane when a new seal arrived.
	EncodeTime      simclock.Duration
	EncodeQueuePeak int
	// OffloadStalls / OffloadStallTime count host stalls from staging-
	// queue backpressure (the queue was full, the host waited for an ack).
	OffloadStalls    uint64
	OffloadStallTime simclock.Duration
	// OffloadQueuePeak is the deepest the staging pipeline ever got.
	OffloadQueuePeak int
	// OffloadInFlight is the current number of staged, unacked pages.
	OffloadInFlight int
	// OffloadRetries counts failed segment batches requeued for retry.
	OffloadRetries uint64
	// Redials counts sessions the engine re-established itself from the
	// configured dial factory; RedialAttempts additionally counts the
	// attempts that failed and backed off.
	Redials        uint64
	RedialAttempts uint64
	// RedialExhausted counts OffloadNow calls that gave up after
	// maxRedialWaits backoff waits with the session still dead (the typed
	// ErrRedialExhausted return) — distinct from slow-but-successful heals,
	// which only accumulate RedialWaitTime.
	RedialExhausted uint64
	// ResumeGap accumulates log entries found durable at the server
	// (FetchHead) on redial whose acks died with the old session — work
	// the reconcile step did NOT re-ship. A mid-batch disconnect between
	// send and ack shows up here instead of as duplicate chain entries.
	ResumeGap uint64
	// RedialWaitTime is simulated time OffloadNow spent waiting out the
	// redial backoff for a dead session — the device-observed outage cost
	// of a server failover, as opposed to RedialAttempts which only counts
	// the dials themselves.
	RedialWaitTime simclock.Duration
	// RestoreBytesWire / RestoreBytesLogical mirror the offload-side wire
	// and logical counters for recovery traffic: image streams and range
	// fetches ride the same segment codec as offload, and wire < logical
	// is the compression the restore path now gets end to end.
	RestoreBytesWire    uint64
	RestoreBytesLogical uint64
	// RestorePagesLiteral / RestorePagesDelta split streamed restore pages
	// by wire form: literals carried their full payload, delta pages
	// arrived as a 32-byte hash reference resolved from the device-side
	// cache (each unique page content crosses the wire once per restore).
	// DedupHitRate is derived: delta / (delta + literal); zero until a
	// dedup restore runs.
	RestorePagesLiteral uint64
	RestorePagesDelta   uint64
	DedupHitRate        float64
	// LastOffloadError is the most recent background offload/checkpoint
	// failure ("" when the last attempt succeeded) — the SMART-log style
	// surfacing of errors that never reach host I/O.
	LastOffloadError string
}

// retEntry tracks one locally retained stale page version.
type retEntry struct {
	ppn      uint64
	lpn      uint64
	writeSeq uint64 // log seq of the write that created this version
	staleSeq uint64 // log seq of the op that invalidated it
	cause    ftl.StaleCause
	at       simclock.Time
	released bool
}

// RSSD is the ransomware-aware SSD. Like the FTL it wraps, it is driven
// from a single simulation goroutine (the firmware event loop).
type RSSD struct {
	cfg Config
	f   *ftl.FTL
	log *oplog.Log

	client *remote.Client // nil = no remote attached

	retained map[uint64]*retEntry   // by current PPN
	retByLPN map[uint64][]*retEntry // writeSeq-ordered per LPN
	retQueue []*retEntry            // stale-time order (offload FIFO)
	retHead  int                    // queue head index (popped prefix)

	lpnWriteSeq []uint64 // seq of the latest write per LPN (NoSeq if none)

	curStaleSeq    uint64 // seq to attribute OnStale events to
	curStaleAt     simclock.Time
	offloadedUpTo  uint64 // log entries below this are durably remote (acked)
	stagedUpTo     uint64 // log entries below this are sealed into segments
	opsSinceCP     uint64
	readCounter    uint64
	lastOffloadErr error

	// Redial state: a transport-level failure marks the session dead; the
	// background duty cycle then re-establishes it from cfg.Dial on an
	// exponential simulated-time backoff (see maybeRedial). A server-side
	// chain rejection instead schedules a FetchHead reconcile over the
	// healthy session.
	sessionDead   bool
	needReconcile bool
	redialBackoff simclock.Duration
	nextRedialAt  simclock.Time

	engine *offloadEngine // asynchronous offload pipeline (lazy; nil in sync mode)
	// nicFlow is this device's offload-class flow on the NIC arbiter
	// (cfg.NIC, or a lazily built private one). It spans engine restarts —
	// the device's NVMe-oE session on the server NIC — and closes with the
	// device.
	nicFlow *netsim.Flow

	stats Stats
}

// NoSeq marks an LPN that has never been written.
const NoSeq = ^uint64(0)

// Errors returned by RSSD operations.
var (
	ErrNoRemote = errors.New("core: no remote client attached")
	// ErrRedialExhausted reports that OffloadNow waited out maxRedialWaits
	// scheduled redial backoffs with the session still dead — the dial
	// factory never produced a live server. Callers distinguish this
	// ("gave up") from a transient push failure ("healed slowly") with
	// errors.Is; Stats.RedialExhausted counts occurrences.
	ErrRedialExhausted = errors.New("core: offload redial budget exhausted with session dead")
)

// normalize fills the Config defaults shared by New and Reopen.
func (cfg Config) normalize() Config {
	if cfg.OffloadHighWater <= 0 {
		cfg.OffloadHighWater = 0.70
	}
	if cfg.OffloadLowWater <= 0 || cfg.OffloadLowWater >= cfg.OffloadHighWater {
		cfg.OffloadLowWater = cfg.OffloadHighWater / 2
	}
	if cfg.SegmentMaxPages <= 0 {
		cfg.SegmentMaxPages = 128
	}
	if cfg.OffloadQueueDepth <= 0 {
		cfg.OffloadQueueDepth = 8
	}
	if cfg.EncodeWorkers == 0 {
		cfg.EncodeWorkers = 2
	}
	if cfg.EncodeMBps <= 0 {
		cfg.EncodeMBps = 400
	}
	if cfg.RedialBackoff <= 0 {
		cfg.RedialBackoff = simclock.Millisecond
	}
	if cfg.RedialBackoffMax <= 0 {
		cfg.RedialBackoffMax = 32 * simclock.Millisecond
	}
	if cfg.RedialBackoffMax < cfg.RedialBackoff {
		cfg.RedialBackoffMax = cfg.RedialBackoff
	}
	return cfg
}

// New builds an RSSD over a fresh NAND device. client may be nil (offline
// retention mode); attach one later with AttachRemote.
func New(cfg Config, client *remote.Client) *RSSD {
	cfg = cfg.normalize()
	r := &RSSD{
		cfg:      cfg,
		log:      oplog.New(),
		client:   client,
		retained: map[uint64]*retEntry{},
		retByLPN: map[uint64][]*retEntry{},
	}
	r.f = ftl.New(cfg.FTL, r)
	r.lpnWriteSeq = make([]uint64, r.f.LogicalPages())
	for i := range r.lpnWriteSeq {
		r.lpnWriteSeq[i] = NoSeq
	}
	return r
}

// AttachRemote connects the offload engine to a remote server session,
// retiring any engine bound to the previous session first (outstanding
// completions are settled so no pin is orphaned). A hand-attached session
// also resets the redial machinery: the caller vouches for this one.
func (r *RSSD) AttachRemote(client *remote.Client) {
	r.stopEngine()
	r.client = client
	r.sessionDead = false
	r.needReconcile = false
	r.redialBackoff = 0
	r.nextRedialAt = 0
}

// FTL exposes the underlying translation layer (read-mostly: stats,
// geometry, capacity).
func (r *RSSD) FTL() *ftl.FTL { return r.f }

// Log exposes the operation log (forensics reads it).
func (r *RSSD) Log() *oplog.Log { return r.log }

// DeviceID returns the device's enrollment identity.
func (r *RSSD) DeviceID() uint64 { return r.cfg.DeviceID }

// Stats returns a snapshot of RSSD counters.
func (r *RSSD) Stats() Stats {
	s := r.stats
	s.RetainedNow = len(r.retained)
	if r.engine != nil {
		s.OffloadInFlight = r.engine.pagesInFlight
	}
	if r.lastOffloadErr != nil {
		s.LastOffloadError = r.lastOffloadErr.Error()
	}
	if total := s.RestorePagesDelta + s.RestorePagesLiteral; total > 0 {
		s.DedupHitRate = float64(s.RestorePagesDelta) / float64(total)
	}
	return s
}

// PageSize returns the page size in bytes.
func (r *RSSD) PageSize() int { return r.f.PageSize() }

// LogicalPages returns the host-visible capacity in pages.
func (r *RSSD) LogicalPages() uint64 { return r.f.LogicalPages() }

// retentionBudget returns the local page budget for retained data.
func (r *RSSD) retentionBudget() int { return r.f.RetentionBudgetPages() }

// Write stores one page and logs the operation. The old version, if any,
// is retained. It is a thin wrapper over a one-element submission batch;
// bulk callers should use SubmitBatch directly.
func (r *RSSD) Write(lpn uint64, data []byte, at simclock.Time) (simclock.Time, error) {
	res, done, err := batch.SubmitOne(r, Op{Kind: OpWrite, LPN: lpn, Data: data}, at)
	if err != nil {
		return done, err
	}
	if res.Err != nil {
		return res.Done, res.Err
	}
	return done, nil
}

// Read returns the current contents of lpn, logging a sampled read entry.
// It is a thin wrapper over a one-element submission batch.
func (r *RSSD) Read(lpn uint64, at simclock.Time) ([]byte, simclock.Time, error) {
	res, done, err := batch.SubmitOne(r, Op{Kind: OpRead, LPN: lpn}, at)
	if err != nil {
		return nil, done, err
	}
	if res.Err != nil {
		return nil, res.Done, res.Err
	}
	return res.Data, done, nil
}

// Trim invalidates lpn. With enhanced trim (the default) the stale data is
// retained exactly like an overwritten version; the logical page reads as
// zeroes afterwards. The paper describes this as remapping the trimmed
// address to fresh pages — retaining the old pages and serving zeroes is
// the same observable behaviour without burning erased pages. It is a thin
// wrapper over a one-element submission batch.
func (r *RSSD) Trim(lpn uint64, at simclock.Time) (simclock.Time, error) {
	res, done, err := batch.SubmitOne(r, Op{Kind: OpTrim, LPN: lpn}, at)
	if err != nil {
		return done, err
	}
	if res.Err != nil {
		return res.Done, res.Err
	}
	return done, nil
}

// afterOp runs the background duties a firmware event loop interleaves
// with host I/O: watermark-driven offload and periodic checkpoints.
func (r *RSSD) afterOp(at simclock.Time) (simclock.Time, error) {
	return r.afterOps(1, at)
}

// afterOps is afterOp amortized over a submission batch of n mutating
// operations: one offload watermark check per batch, with checkpoint
// accounting advanced by the batch size. A batch larger than
// CheckpointEvery triggers a single checkpoint where per-op submission
// would have triggered several — acceptable, since checkpoints only bound
// recovery's log replay.
func (r *RSSD) afterOps(n int, at simclock.Time) (simclock.Time, error) {
	var err error
	at, err = r.maybeOffload(at)
	if err != nil {
		return at, err
	}
	if r.cfg.CheckpointEvery > 0 {
		r.opsSinceCP += uint64(n)
		if r.opsSinceCP >= r.cfg.CheckpointEvery {
			r.opsSinceCP = 0
			if at, err = r.CheckpointNow(at); err != nil {
				// Like offload, checkpointing is background work: its
				// failure is surfaced out of band, never to host I/O.
				r.stats.OffloadErrors++
				r.noteRemoteErr(err)
			}
		}
	}
	return at, nil
}

// --- ftl.Retainer implementation -----------------------------------------

// OnStale pins every stale page: conservative retention.
func (r *RSSD) OnStale(lpn, ppn uint64, cause ftl.StaleCause, at simclock.Time) bool {
	if cause == ftl.CauseTrim && r.cfg.DisableEnhancedTrim {
		return false // ablation: native destructive trim
	}
	re := &retEntry{
		ppn:      ppn,
		lpn:      lpn,
		writeSeq: r.lpnWriteSeq[lpn],
		staleSeq: r.curStaleSeq,
		cause:    cause,
		at:       at,
	}
	r.retained[ppn] = re
	r.retByLPN[lpn] = append(r.retByLPN[lpn], re)
	r.retQueue = append(r.retQueue, re)
	return true
}

// OnMigrate follows GC relocations of retained pages.
func (r *RSSD) OnMigrate(lpn, oldPPN, newPPN uint64, at simclock.Time) {
	re, ok := r.retained[oldPPN]
	if !ok {
		return
	}
	delete(r.retained, oldPPN)
	re.ppn = newPPN
	r.retained[newPPN] = re
}

// OnErased observes physical destruction of unpinned stale pages. Under
// RSSD those pages were either already offloaded (released) or dropped
// under offline pressure, so nothing remains to track.
func (r *RSSD) OnErased(lpn, ppn uint64, at simclock.Time) {}

// Pressure is the FTL telling us pins are blocking reclamation. Offload
// (or, offline, drop) until the requested pages are free. This is the one
// place the asynchronous engine goes synchronous: the FTL needs pins
// actually released before GC can make progress, so the pipeline is
// staged full and drained inline (the stall is recorded, not charged —
// Pressure has no completion time to report).
func (r *RSSD) Pressure(needPages int, at simclock.Time) {
	r.stats.PressureEvents++
	target := len(r.retained) - needPages
	if target < 0 {
		target = 0
	}
	if r.client != nil {
		r.maybeRedial(at)
		if r.cfg.SyncOffload {
			if _, err := r.offloadToSync(target, at); err == nil {
				return
			}
			r.stats.OffloadErrors++
		} else {
			r.pollOffload(at)
			// Two rounds: if a failure epoch is pending, the first round's
			// drain requeues the failed batches and clears the epoch, and
			// the second actually retries the offload — pages are only
			// dropped after a real attempt failed, matching the old inline
			// path. stage() itself charges queue-full stalls, so only the
			// drain span is added here.
			for attempt := 0; attempt < 2; attempt++ {
				staged := r.stageTo(target, at)
				end := r.drainOffload(staged)
				if end > staged {
					r.stats.OffloadStallTime += end.Sub(staged)
				}
				at = end
				if len(r.retained) <= target {
					return
				}
				r.maybeRedial(at)
			}
		}
	}
	if r.cfg.DropWhenOffline {
		r.dropTo(target)
	}
}
