package core

// This file is the recovery subsystem: everything that reconstructs device
// state from the retained history — local pins, the operation log, and the
// remote store — lives here.
//
//   - Reopen adopts an existing flash array after a power cycle, splicing
//     the post-reboot log onto the remote chain head.
//   - VersionBefore / ImageBefore answer point-in-time queries across the
//     live mapping, local pins, and the remote store; the remote part of
//     an image rides the chunked FetchImageStream, not the monolithic
//     FetchImage (which survives only as a compatibility shim).
//   - RestoreWrite / RestoreTrim are the logged primitives that roll a
//     page back, stamping the evidence chain with recovery entries.
//   - RestoreImage is the resumable restorer: it streams the image in
//     LPN-ordered codec-framed chunks over its own recovery session,
//     applies pages incrementally as chunks arrive, survives mid-stream
//     disconnects by redialing and resuming from its cursor, charges
//     transfer time to a shared-bandwidth recovery link model, and
//     reports a per-device RTO. Fleet power-cycle recovery and the
//     rollback paths in internal/recovery both drive it.

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ftl"
	"repro/internal/nand"
	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
)

// DialFunc produces a fresh authenticated session to the remote server.
// The offload engine uses it to redial after a session death; the
// restorer uses it to open (and resume) recovery sessions.
type DialFunc func() (*remote.Client, error)

// ErrNoDial reports a resumable restore attempted without a dial factory.
var ErrNoDial = errors.New("core: restore needs a dial factory (RestoreOptions.Dial or Config.Dial)")

// --- Power-cycle adoption -------------------------------------------------

// Reopen adopts an existing device image after a power cycle: it scans the
// flash OOB area, replays the remotely stored operation log to
// reconstruct the exact logical mapping (including trims, which OOB alone
// cannot express), re-pins every committed stale version so conservative
// retention survives the reboot, and resumes the hash chain at the remote
// head so post-reboot segments splice on without a break.
//
// Durability model: state covered by offloaded log entries is recovered
// exactly. Flash pages whose OOB sequence is beyond the remote head belong
// to operations whose log entries died in device RAM; Reopen rolls them
// back (discards them), the same way a journaled filesystem drops an
// uncommitted tail. A clean shutdown (OffloadNow before power-off) makes
// the rollback window empty. The hardware RSSD persists its log pages to
// flash and would recover that tail too; modeling the rollback keeps the
// chain semantics honest without simulating log-page writes.
func Reopen(cfg Config, dev *nand.Device, client *remote.Client) (*RSSD, error) {
	if client == nil {
		return nil, ErrNoRemote
	}
	head, err := client.Head()
	if err != nil {
		return nil, fmt.Errorf("core: reopen: fetch head: %w", err)
	}
	// Replay the committed operation history.
	type op struct {
		seq  uint64
		kind oplog.Kind
	}
	hist := map[uint64][]op{}
	liveSeq := map[uint64]uint64{}
	trimmed := map[uint64]bool{}
	const batch = 4096
	for from := uint64(0); from < head.NextSeq; from += batch {
		to := from + batch
		if to > head.NextSeq {
			to = head.NextSeq
		}
		entries, err := client.FetchEntries(from, to)
		if err != nil {
			return nil, fmt.Errorf("core: reopen: fetch entries [%d,%d): %w", from, to, err)
		}
		for _, e := range entries {
			switch e.Kind {
			case oplog.KindWrite, oplog.KindRecovery:
				liveSeq[e.LPN] = e.Seq
				trimmed[e.LPN] = false
				hist[e.LPN] = append(hist[e.LPN], op{e.Seq, e.Kind})
			case oplog.KindTrim, oplog.KindRecoveryTrim:
				trimmed[e.LPN] = true
				hist[e.LPN] = append(hist[e.LPN], op{e.Seq, e.Kind})
			}
		}
	}

	// Build the device shell (the FTL wires itself to it via Retainer).
	cfg = cfg.normalize()
	r := &RSSD{
		cfg:           cfg,
		log:           oplog.ResumeFrom(head.NextSeq, head.Hash),
		client:        client,
		retained:      map[uint64]*retEntry{},
		retByLPN:      map[uint64][]*retEntry{},
		offloadedUpTo: head.NextSeq,
		stagedUpTo:    head.NextSeq,
	}

	// Classify every programmed page from its OOB stamp + the replayed
	// history, remembering retained pages for index reconstruction.
	type scanned struct {
		ppn uint64
		oob nand.OOB
	}
	var kept []scanned
	classify := func(ppn uint64, oob nand.OOB) ftl.Disposition {
		if oob.Seq >= head.NextSeq {
			return ftl.DispDiscard // uncommitted tail: rolled back
		}
		if ls, ok := liveSeq[oob.LPN]; ok && !trimmed[oob.LPN] && oob.Seq == ls {
			return ftl.DispLive
		}
		kept = append(kept, scanned{ppn, oob})
		return ftl.DispRetained
	}
	f, err := ftl.Recover(cfg.FTL, dev, r, classify)
	if err != nil {
		return nil, fmt.Errorf("core: reopen: %w", err)
	}
	r.f = f

	// Live write sequences.
	r.lpnWriteSeq = make([]uint64, f.LogicalPages())
	for i := range r.lpnWriteSeq {
		r.lpnWriteSeq[i] = NoSeq
	}
	for lpn, ls := range liveSeq {
		if !trimmed[lpn] && lpn < uint64(len(r.lpnWriteSeq)) {
			r.lpnWriteSeq[lpn] = ls
		}
	}

	// Rebuild the retention index. Each kept page's staleSeq and cause
	// come from the first mapping-changing operation after its write.
	for _, s := range kept {
		re := &retEntry{
			ppn:      s.ppn,
			lpn:      s.oob.LPN,
			writeSeq: s.oob.Seq,
			staleSeq: s.oob.Seq + 1,
			cause:    ftl.CauseOverwrite,
		}
		ops := hist[s.oob.LPN]
		i := sort.Search(len(ops), func(i int) bool { return ops[i].seq > s.oob.Seq })
		if i < len(ops) {
			re.staleSeq = ops[i].seq
			if ops[i].kind == oplog.KindTrim || ops[i].kind == oplog.KindRecoveryTrim {
				re.cause = ftl.CauseTrim
			}
		}
		r.retained[s.ppn] = re
		r.retByLPN[s.oob.LPN] = append(r.retByLPN[s.oob.LPN], re)
		r.retQueue = append(r.retQueue, re)
	}
	for _, vs := range r.retByLPN {
		sort.Slice(vs, func(i, j int) bool { return vs[i].writeSeq < vs[j].writeSeq })
	}
	sort.Slice(r.retQueue, func(i, j int) bool { return r.retQueue[i].staleSeq < r.retQueue[j].staleSeq })
	return r, nil
}

// --- Point-in-time queries ------------------------------------------------

// VersionInfo describes one retained version of a logical page, wherever
// it currently lives.
type VersionInfo struct {
	LPN      uint64
	WriteSeq uint64
	StaleSeq uint64 // NoSeq for the live version
	Cause    ftl.StaleCause
	Local    bool // true: still pinned on local flash
}

// RetainedVersions lists the locally retained versions of lpn in writeSeq
// order (oldest first). Remote versions are not included; query the remote
// store for those.
func (r *RSSD) RetainedVersions(lpn uint64) []VersionInfo {
	var out []VersionInfo
	for _, re := range r.retByLPN[lpn] {
		if re.released {
			continue
		}
		out = append(out, VersionInfo{
			LPN: re.lpn, WriteSeq: re.writeSeq, StaleSeq: re.staleSeq,
			Cause: re.cause, Local: true,
		})
	}
	return out
}

// WriteSeqOf returns the log sequence of the live version of lpn, or NoSeq
// if the page is unmapped.
func (r *RSSD) WriteSeqOf(lpn uint64) uint64 {
	if lpn >= uint64(len(r.lpnWriteSeq)) {
		return NoSeq
	}
	return r.lpnWriteSeq[lpn]
}

// candidate is one version of a page competing to be "the newest before a
// sequence": the live mapping, a local pin, or a remote record.
type candidate struct {
	writeSeq uint64
	staleSeq uint64 // NoSeq if live
	cause    ftl.StaleCause
	live     bool
	ppn      uint64 // local location when rec is nil
	rec      *oplog.PageRecord
}

// localBest returns the newest local version of lpn written strictly
// before the given sequence: the live mapping if it qualifies, else the
// newest qualifying pin. nil when no local version qualifies.
func (r *RSSD) localBest(lpn, before uint64) *candidate {
	var best *candidate
	if ws := r.lpnWriteSeq[lpn]; ws != NoSeq && ws < before {
		best = &candidate{writeSeq: ws, staleSeq: NoSeq, live: true, ppn: r.f.Lookup(lpn)}
	}
	vs := r.retByLPN[lpn]
	for i := len(vs) - 1; i >= 0; i-- {
		re := vs[i]
		if re.released || re.writeSeq == NoSeq || re.writeSeq >= before {
			continue
		}
		if best == nil || re.writeSeq > best.writeSeq {
			best = &candidate{writeSeq: re.writeSeq, staleSeq: re.staleSeq, cause: re.cause, ppn: re.ppn}
		}
		break // list is sorted; the first qualifying from the end is the newest
	}
	return best
}

// merge folds a remote record into the best-so-far candidate.
func merge(best *candidate, rec *oplog.PageRecord) *candidate {
	if rec == nil || (best != nil && rec.WriteSeq <= best.writeSeq) {
		return best
	}
	return &candidate{
		writeSeq: rec.WriteSeq, staleSeq: rec.StaleSeq,
		cause: ftl.StaleCause(rec.Cause), rec: rec,
	}
}

// trimGap reports whether the winning candidate means the page read as
// zeroes at the cut: it was already trimmed-stale before it. (An
// overwrite-staled best implies a newer version exists and would have
// been chosen; if it was dropped in offline mode, the older data is the
// best surviving restore.)
func trimGap(best *candidate, before uint64) bool {
	return best.staleSeq != NoSeq && best.staleSeq < before && best.cause == ftl.CauseTrim
}

// ReadVersionBefore returns the contents lpn held just before log sequence
// `before`. See VersionBefore for the full contract.
func (r *RSSD) ReadVersionBefore(lpn, before uint64, at simclock.Time) ([]byte, bool, error) {
	data, _, ok, err := r.VersionBefore(lpn, before, at)
	return data, ok, err
}

// VersionBefore returns the contents lpn held just before log sequence
// `before`: the newest version written with seq < before that was still
// live at that point. It consults, in order of preference, the live
// mapping, locally retained pins, and the remote store. A page that was
// trimmed before `before` (and not rewritten) reads as zeroes, matching
// what the host would have observed.
//
// writeSeq is the log sequence of the write that produced the returned
// data, or NoSeq when the result is the zero page (never written, or a
// trim gap); recovery uses it to verify restored content against the
// log's recorded hash.
func (r *RSSD) VersionBefore(lpn, before uint64, at simclock.Time) (data []byte, writeSeq uint64, ok bool, err error) {
	if lpn >= r.f.LogicalPages() {
		return nil, NoSeq, false, ftl.ErrOutOfRange
	}
	best := r.localBest(lpn, before)
	if r.client != nil {
		rec, ok, err := r.client.FetchVersion(lpn, before)
		if err != nil {
			return nil, NoSeq, false, fmt.Errorf("core: fetch version lpn %d: %w", lpn, err)
		}
		if ok {
			best = merge(best, &rec)
		}
	}
	if best == nil {
		// Never written before `before`: logical zeroes.
		return make([]byte, r.f.PageSize()), NoSeq, false, nil
	}
	if trimGap(best, before) {
		return make([]byte, r.f.PageSize()), NoSeq, true, nil
	}
	if best.rec != nil {
		return append([]byte(nil), best.rec.Data...), best.writeSeq, true, nil
	}
	data, _, _, err = r.f.ReadPhysical(best.ppn, at)
	if err != nil {
		return nil, NoSeq, false, fmt.Errorf("core: read version ppn %d: %w", best.ppn, err)
	}
	return data, best.writeSeq, true, nil
}

// ImageBefore reconstructs the full logical image as it stood just before
// log sequence `before`. The result has one entry per logical page: nil
// means the page read as zeroes at that point (never written, or inside a
// trim gap). Remote versions arrive through the chunked image stream —
// codec-framed on the wire like every other fetch — so rebuilding a whole
// device costs a stream of right-sized chunks rather than one monolithic
// reply. This is the disaster-recovery query ("rebuild onto a fresh
// device"); RestoreImage is the in-place rollback built on the same
// stream.
func (r *RSSD) ImageBefore(before uint64, at simclock.Time) ([][]byte, error) {
	n := r.f.LogicalPages()
	best := make([]*candidate, n)
	for lpn := uint64(0); lpn < n; lpn++ {
		best[lpn] = r.localBest(lpn, before)
	}
	if r.client != nil {
		_, err := r.client.FetchImageStream(0, before, r.cfg.RecoveryChunkPages,
			func(pages []oplog.PageRecord, wire, logical int) error {
				r.stats.RestoreBytesWire += uint64(wire)
				r.stats.RestoreBytesLogical += uint64(logical)
				for i := range pages {
					if lpn := pages[i].LPN; lpn < n {
						best[lpn] = merge(best[lpn], &pages[i])
					}
				}
				return nil
			})
		if err != nil {
			return nil, fmt.Errorf("core: fetch image: %w", err)
		}
	}
	img := make([][]byte, n)
	for lpn := uint64(0); lpn < n; lpn++ {
		b := best[lpn]
		if b == nil || trimGap(b, before) {
			continue // zeroes
		}
		if b.rec != nil {
			img[lpn] = append([]byte(nil), b.rec.Data...)
			continue
		}
		data, _, _, err := r.f.ReadPhysical(b.ppn, at)
		if err != nil {
			return nil, fmt.Errorf("core: image read lpn %d (ppn %d): %w", lpn, b.ppn, err)
		}
		img[lpn] = data
	}
	return img, nil
}

// --- Logged restore primitives --------------------------------------------

// RestoreWrite rewrites lpn with recovered data, logging the operation as
// a recovery action so the evidence chain distinguishes restoration from
// host activity.
func (r *RSSD) RestoreWrite(lpn uint64, data []byte, at simclock.Time) (simclock.Time, error) {
	if len(data) != r.f.PageSize() {
		return at, ftl.ErrBadPageSize
	}
	if lpn >= r.f.LogicalPages() {
		return at, ftl.ErrOutOfRange
	}
	oldPPN := r.f.Lookup(lpn)
	e := r.log.Append(oplog.KindRecovery, at, lpn, oldPPN, ftl.NoPPN, 0, oplog.HashData(data))
	r.curStaleSeq, r.curStaleAt = e.Seq, at
	done, err := r.f.WriteWithSeq(lpn, data, e.Seq, at)
	if err != nil {
		return done, err
	}
	r.lpnWriteSeq[lpn] = e.Seq
	return r.afterOp(done)
}

// RestoreTrim restores a page to the unmapped (zero) state, logging it as
// a recovery action. Used when the pre-attack state of a page was "never
// written" or "trimmed by the legitimate owner".
func (r *RSSD) RestoreTrim(lpn uint64, at simclock.Time) (simclock.Time, error) {
	if lpn >= r.f.LogicalPages() {
		return at, ftl.ErrOutOfRange
	}
	oldPPN := r.f.Lookup(lpn)
	e := r.log.Append(oplog.KindRecoveryTrim, at, lpn, oldPPN, ftl.NoPPN, 0, [oplog.HashSize]byte{})
	r.curStaleSeq, r.curStaleAt = e.Seq, at
	done, err := r.f.Trim(lpn, at)
	if err != nil {
		return done, err
	}
	r.lpnWriteSeq[lpn] = NoSeq
	return r.afterOp(done)
}

// --- The resumable restorer -----------------------------------------------

// RestoreOptions tunes a resumable image restore.
type RestoreOptions struct {
	// Dial opens recovery sessions; nil falls back to Config.Dial. The
	// restorer owns its sessions: restore streams never interleave with
	// the offload engine's pushes, so restore-churn offload proceeds while
	// the image is still streaming in.
	Dial DialFunc
	// Link is the shared-bandwidth recovery link model; chunk transfer
	// time is charged through it. nil prices transfers at zero.
	Link *remote.RecoveryLink
	// ChunkPages bounds pages per streamed chunk (0: server default).
	ChunkPages int
	// BackoffBase / BackoffMax bound the resume backoff after a mid-stream
	// disconnect (defaults: the config's redial backoff knobs).
	BackoffBase simclock.Duration
	BackoffMax  simclock.Duration
	// MaxResumes bounds how many stream interruptions the restorer rides
	// out before giving up (default 8).
	MaxResumes int
	// Dedup requests hash-reference chunks: each unique page content
	// crosses the wire once per restore as a verified literal; repeats
	// arrive as 32-byte references resolved from a device-side cache that
	// survives resumes.
	Dedup bool
	// Delta requests a checkpoint-anchored delta: the restorer anchors on
	// the newest checkpoint at or before the cut and the server streams
	// only LPNs touched since — everything else is reconstructed from the
	// device's own surviving state, exactly as the local-only fallback
	// already does for LPNs without remote history.
	Delta bool
}

// RestoreReport summarizes one resumable restore.
type RestoreReport struct {
	PagesRestored int // rolled back by a logged recovery write
	PagesZeroed   int // rolled back to unmapped (trim gap / never written)
	PagesKept     int // live state already matched the target
	Chunks        int
	Resumes       int // mid-stream disconnects survived
	BytesWire     uint64
	BytesLogical  uint64
	// PagesLiteral / PagesRef split streamed pages by wire form: full
	// payloads vs hash references resolved from the dedup cache. Anchor
	// is the checkpoint sequence a delta restore diffed against (0: full
	// image).
	PagesLiteral int
	PagesRef     int
	Anchor       uint64
	RTO          simclock.Duration // simulated start-to-done restore span
}

func (rep RestoreReport) String() string {
	return fmt.Sprintf("restore: %d rolled back, %d zeroed, %d kept in %d chunks (%d resumes), %d wire / %d logical bytes, %d literal + %d ref pages (anchor %d), RTO %v",
		rep.PagesRestored, rep.PagesZeroed, rep.PagesKept, rep.Chunks, rep.Resumes,
		rep.BytesWire, rep.BytesLogical, rep.PagesLiteral, rep.PagesRef, rep.Anchor, rep.RTO)
}

// restoreApplyError marks a device-side failure inside the stream callback
// so the resume loop can tell it from a transport failure: redialing does
// not fix a flash write error.
type restoreApplyError struct{ err error }

func (e *restoreApplyError) Error() string { return e.err.Error() }
func (e *restoreApplyError) Unwrap() error { return e.err }

// RestoreImage rolls the whole device back to its state just before log
// sequence `before`, in place. Remote history streams in LPN-ordered
// codec-framed chunks over a dedicated recovery session and pages are
// applied incrementally as each chunk lands — there is never a
// whole-image buffer, and a restore interrupted at chunk k resumes at its
// cursor instead of restarting. Every applied page is a logged recovery
// action, so rollback remains evidence-chain honest, and pages whose live
// content already matches the target are left untouched (a clean page
// costs no flash write). Reopen + RestoreImage is the fleet power-cycle
// recovery path; the forensic rollback in internal/recovery reuses the
// same restorer.
func (r *RSSD) RestoreImage(before uint64, opts RestoreOptions, at simclock.Time) (simclock.Time, RestoreReport, error) {
	var rep RestoreReport
	dial := opts.Dial
	if dial == nil {
		dial = r.cfg.Dial
	}
	if dial == nil {
		return at, rep, ErrNoDial
	}
	if opts.MaxResumes <= 0 {
		opts.MaxResumes = 8
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = r.cfg.RedialBackoff
	}
	if opts.BackoffMax < opts.BackoffBase {
		opts.BackoffMax = r.cfg.RedialBackoffMax
	}
	if opts.BackoffMax < opts.BackoffBase {
		opts.BackoffMax = opts.BackoffBase
	}
	if opts.Link != nil {
		release := opts.Link.Open()
		defer release()
	}

	start := at
	n := r.f.LogicalPages()
	cursor := uint64(0) // next LPN not yet rolled back

	// The resolve cache outlives resumes: literals cached before a cut
	// stay resolvable after it (a fresh stream session re-literals what it
	// references anyway, so the cache only dedups copies).
	var cache *remote.ResolveCache
	if opts.Dedup {
		cache = remote.NewResolveCache()
	}
	anchor := uint64(0)
	anchorKnown := !opts.Delta

	applyChunk := func(pages []oplog.PageRecord, cs remote.ChunkStats) error {
		if opts.Link != nil {
			at = at.Add(opts.Link.ChunkTimeAt(cs.WireBytes, at))
		}
		rep.Chunks++
		rep.BytesWire += uint64(cs.WireBytes)
		rep.BytesLogical += uint64(cs.LogicalBytes)
		rep.PagesLiteral += cs.Literals
		rep.PagesRef += cs.Refs
		r.stats.RestoreBytesWire += uint64(cs.WireBytes)
		r.stats.RestoreBytesLogical += uint64(cs.LogicalBytes)
		r.stats.RestorePagesLiteral += uint64(cs.Literals)
		r.stats.RestorePagesDelta += uint64(cs.Refs)
		for i := range pages {
			rec := &pages[i]
			if rec.LPN < cursor || rec.LPN >= n {
				continue
			}
			// LPNs between the cursor and this record have no remote
			// version: roll them back from local state alone.
			var err error
			if at, err = r.restoreSpan(cursor, rec.LPN, before, at, &rep); err != nil {
				return &restoreApplyError{err}
			}
			if at, err = r.restoreLPN(rec.LPN, before, rec, at, &rep); err != nil {
				return &restoreApplyError{err}
			}
			cursor = rec.LPN + 1
		}
		return nil
	}

	client, err := dial()
	backoff := opts.BackoffBase
	for attempts := 0; ; {
		if err == nil && !anchorKnown {
			// Resolve the delta anchor once: the newest verified
			// checkpoint at or before the cut. No checkpoint means no
			// anchor — the stream degrades to the full image. A failed
			// lookup is a transport error and retries like a failed dial.
			cp, ok, cperr := client.FetchCheckpoint(before)
			if cperr != nil {
				err = cperr
				client.Close()
			} else {
				if ok {
					anchor = cp.Seq
					rep.Anchor = anchor
				}
				anchorKnown = true
			}
		}
		if err == nil {
			if opts.Dedup || anchor > 0 {
				_, err = client.FetchImageDelta(cursor, before, anchor, opts.ChunkPages, cache, applyChunk)
			} else {
				_, err = client.FetchImageStream(cursor, before, opts.ChunkPages,
					func(pages []oplog.PageRecord, wire, logical int) error {
						return applyChunk(pages, remote.ChunkStats{
							WireBytes: wire, LogicalBytes: logical, Literals: len(pages),
						})
					})
			}
			if err == nil {
				client.Close()
				break
			}
			client.Close()
			var apply *restoreApplyError
			if errors.As(err, &apply) {
				return at, rep, fmt.Errorf("core: restore: %w", apply.err)
			}
			// A stream was interrupted mid-flight: that, and only that,
			// is a resume — the next stream picks up at the cursor, it
			// does not start over. A failed dial retries below without
			// claiming a resume (no stream ever opened).
			rep.Resumes++
		}
		attempts++
		if attempts > opts.MaxResumes {
			return at, rep, fmt.Errorf("core: restore: gave up after %d attempts: %w", opts.MaxResumes, err)
		}
		at = at.Add(backoff)
		if backoff *= 2; backoff > opts.BackoffMax {
			backoff = opts.BackoffMax
		}
		client, err = dial()
	}
	// The stream covered every LPN with remote history; finish the tail
	// from local state.
	var serr error
	if at, serr = r.restoreSpan(cursor, n, before, at, &rep); serr != nil {
		return at, rep, fmt.Errorf("core: restore: %w", serr)
	}
	rep.RTO = at.Sub(start)
	return at, rep, nil
}

// restoreSpan rolls back every LPN in [from, to) using local candidates
// only (the stream had no remote version for them).
func (r *RSSD) restoreSpan(from, to, before uint64, at simclock.Time, rep *RestoreReport) (simclock.Time, error) {
	for lpn := from; lpn < to; lpn++ {
		var err error
		if at, err = r.restoreLPN(lpn, before, nil, at, rep); err != nil {
			return at, err
		}
	}
	return at, nil
}

// restoreLPN rolls one page back to its newest version before the cut,
// considering the live mapping, local pins, and the streamed remote
// record (nil when the remote has none for this LPN).
func (r *RSSD) restoreLPN(lpn, before uint64, rec *oplog.PageRecord, at simclock.Time, rep *RestoreReport) (simclock.Time, error) {
	best := merge(r.localBest(lpn, before), rec)
	if best == nil || trimGap(best, before) {
		// Target state is zeroes: trim only if the page currently maps.
		if r.lpnWriteSeq[lpn] == NoSeq {
			rep.PagesKept++
			return at, nil
		}
		at, err := r.RestoreTrim(lpn, at)
		if err != nil {
			return at, fmt.Errorf("zero lpn %d: %w", lpn, err)
		}
		rep.PagesZeroed++
		return at, nil
	}
	if best.live {
		// The live version is already the newest-before-cut: no churn.
		rep.PagesKept++
		return at, nil
	}
	var data []byte
	if best.rec != nil {
		data = append([]byte(nil), best.rec.Data...)
	} else {
		var err error
		if data, _, _, err = r.f.ReadPhysical(best.ppn, at); err != nil {
			return at, fmt.Errorf("read pin for lpn %d (ppn %d): %w", lpn, best.ppn, err)
		}
	}
	at, err := r.RestoreWrite(lpn, data, at)
	if err != nil {
		return at, fmt.Errorf("restore lpn %d: %w", lpn, err)
	}
	rep.PagesRestored++
	return at, nil
}
