package core

import (
	"errors"

	"repro/internal/bufpool"
	"repro/internal/netsim"
	"repro/internal/nvmeoe"
	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
)

// This file implements the asynchronous offload engine: the pipeline
// between the retention watermark check and the NVMe-oE transport. The
// host path *seals* segments (reads their pages on the NAND background
// lane) and stages them into a bounded queue; a pool of codec workers
// compresses the sealed segments off the firmware goroutine; a dedicated
// transfer goroutine ships the encoded blobs to the remote server in seal
// order. Pins are released only when the durability ack is harvested back
// on the firmware goroutine — the zero-data-loss invariant is unchanged,
// and neither the compression nor the transfer time sits on the host path.
//
// Concurrency model: all FTL/RSSD state is still owned by the single
// firmware goroutine. A codec worker touches only its staged segment
// (already sealed: pages read into pooled buffers, entries copied); the
// transfer goroutine touches only encoded segments (in seal order, waiting
// out each segment's encode) and the NVMe-oE client. Results come back
// over a channel and are applied by the firmware goroutine at poll points
// (afterOps, Pressure, DrainOffload).
//
// Allocation model: the hot path rents everything from internal/bufpool.
// Page reads land in pooled buffers released once the codec worker has
// captured their bytes; the marshal buffer is released as soon as the blob
// is framed; the blob buffer is released after the transfer. In steady
// state a segment's trip through seal→encode→ship allocates only its
// constant-size bookkeeping (the stagedSegment and its done channel).
//
// Simulated-time model: sealing fixes each segment's encode-stage schedule
// deterministically — EncodeWorkers simulated codec lanes, each encoding
// at EncodeMBps, earliest-free lane first — and the transfer goroutine
// fixes the ack instant from the link model (serialized transfers on one
// simulated link: start = max(encode done, link free), ack = start + RTT +
// bytes/BW + the storage tier's modeled Put service time, which the server
// reports in the ack). The firmware goroutine applies a completion only
// once simulated time reaches that instant; when a completion's ack time
// is not yet computable it blocks on the results channel only if the
// segment's deterministic ack floor (encode done + RTT) has been reached —
// so behaviour is deterministic in simulated time regardless of goroutine
// scheduling, and encode and transfer overlap host I/O instead of adding
// to it.

// stagedSegment is one sealed segment travelling through the pipeline.
type stagedSegment struct {
	seg      *oplog.Segment
	blob     []byte         // codec-framed wire encoding (what actually ships)
	blobBuf  *bufpool.Buf   // pooled backing of blob; released after transfer
	pageBufs []*bufpool.Buf // pooled page data; released once encoded
	batch    []*retEntry    // retained pages carried by seg (pins still held)
	toSeq    uint64         // log entries below this are covered by seg
	sealedAt simclock.Time  // flash background reads complete
	// encDoneAt is when the simulated codec lane finishes this segment;
	// ackFloor = encDoneAt + RTT is the earliest its ack could possibly
	// arrive. Both are fixed at staging time on the firmware goroutine, so
	// "could this ack be due?" is answerable without racing the pipeline.
	encDoneAt simclock.Time
	ackFloor  simclock.Time
	ackAt     simclock.Time     // simulated durability-ack arrival (link + tier model)
	wire      int               // compressed wire bytes: what the link model charges
	logical   int               // uncompressed marshal size
	svc       simclock.Duration // storage tier's modeled Put service time (from the ack)
	err       error             // set by the transfer goroutine
	encoded   chan struct{}     // closed by the codec worker; nil when encoded inline
}

// offloadEngine owns the staging queue, the codec worker pool, and the
// transfer goroutine.
type offloadEngine struct {
	depth   int                 // staging-queue bound (backpressure point)
	workers int                 // codec workers (0 = inline encode at seal)
	encodeq chan *stagedSegment // sealed, awaiting compression
	xferq   chan *stagedSegment // seal-order lane the transfer goroutine ships
	results chan *stagedSegment // transfer resolved, FIFO with xferq
	ready   *stagedSegment      // harvested result whose ack instant lies ahead

	inFlight      []*stagedSegment // firmware-side FIFO mirror of the pipeline
	pagesInFlight int
	encFree       []simclock.Time // simulated next-free time per codec lane
	// failure epoch: once one segment fails, everything behind it in the
	// pipeline fails too (the chain has a gap at the server). Failed
	// batches are collected in stage order and requeued together when the
	// pipeline drains, then staging resumes from the acked sequence.
	failing       bool
	failedBatches [][]*retEntry
}

// newOffloadEngine starts the codec workers and the transfer goroutine for
// one client session. Transfers are priced by the device's offload-class
// flow on the NIC arbiter — a shared server NIC when cfg.NIC is set, a
// private single-flow arbiter otherwise.
func newOffloadEngine(client *remote.Client, depth, workers int, flow *netsim.Flow) *offloadEngine {
	if depth <= 0 {
		depth = 8
	}
	e := &offloadEngine{
		depth:   depth,
		workers: workers,
		xferq:   make(chan *stagedSegment, depth+2),
		// results is sized so the transfer goroutine never blocks sending:
		// at most depth segments queue plus one in its hands.
		results: make(chan *stagedSegment, depth+2),
	}
	if workers > 0 {
		e.encodeq = make(chan *stagedSegment, depth+2)
		e.encFree = make([]simclock.Time, workers)
		for i := 0; i < workers; i++ {
			go func() {
				for st := range e.encodeq {
					encodeStaged(st)
					close(st.encoded)
				}
			}()
		}
	}
	go func() {
		var linkFree simclock.Time
		for st := range e.xferq {
			if st.encoded != nil {
				<-st.encoded // codec worker done; blob and wire size final
			}
			start := simclock.Max(st.encDoneAt, linkFree)
			st.svc, st.err = client.PushSegmentBlobTimed(st.blob, st.seg.LastSeq)
			linkFree = flow.Grant(st.wire, start)
			st.ackAt = linkFree.Add(st.svc)
			// The wire bytes have left the device; the pooled blob goes back.
			st.blobBuf.Release()
			st.blobBuf, st.blob = nil, nil
			e.results <- st
		}
	}()
	return e
}

// harvest takes the oldest resolved completion, blocking until the real
// pipeline produces it. The ready slot holds a completion harvested early
// whose ack instant had not been reached yet.
func (e *offloadEngine) harvest() *stagedSegment {
	if st := e.ready; st != nil {
		e.ready = nil
		return st
	}
	return <-e.results
}

// encodeStaged compresses one sealed segment through pooled buffers: the
// marshal lands in a rented buffer sized exactly by MarshaledSize, the
// codec frame in a rented buffer sized by BlobOverhead + marshal, and the
// page buffers are released the moment their bytes are captured. This is
// the encode hot loop the datapath benchmark tracks: steady-state it
// allocates nothing.
func encodeStaged(st *stagedSegment) {
	m := bufpool.Get(st.logical)
	raw := st.seg.AppendMarshal(m.B)
	bb := bufpool.Get(nvmeoe.BlobOverhead + len(raw))
	st.blob = nvmeoe.AppendSegmentBlob(bb.B, raw)
	st.blobBuf = bb
	st.wire = len(st.blob)
	m.B = raw
	m.Release()
	// The blob owns the bytes now; drop the page views before releasing
	// their pooled backing so nothing dangles into reused memory.
	for i := range st.seg.Pages {
		st.seg.Pages[i].Data = nil
	}
	for _, pb := range st.pageBufs {
		pb.Release()
	}
	st.pageBufs = nil
}

// linkRTT and linkMBps resolve the configured link model with its defaults.
func (r *RSSD) linkRTT() simclock.Duration {
	if r.cfg.OffloadLinkRTT > 0 {
		return r.cfg.OffloadLinkRTT
	}
	return 30 * simclock.Microsecond
}

func (r *RSSD) linkMBps() float64 {
	if r.cfg.OffloadLinkMBps > 0 {
		return r.cfg.OffloadLinkMBps
	}
	return 1200
}

// offloadFlow lazily opens this device's offload-class flow on the NIC
// arbiter. With cfg.NIC set the flow contends on the shared server NIC
// under the QoS policy; nil builds a private single-flow arbiter from the
// legacy OffloadLinkRTT/MBps model, which prices transfers bit-identically
// to the old dedicated link (sole flow, full line). The flow spans engine
// restarts and closes with the device.
func (r *RSSD) offloadFlow() *netsim.Flow {
	if r.nicFlow == nil {
		nic := r.cfg.NIC
		if nic == nil {
			nic = netsim.New(netsim.Config{MBps: r.linkMBps(), RTT: r.linkRTT()})
		}
		r.nicFlow = nic.Open(netsim.ClassOffload, 1)
	}
	return r.nicFlow
}

// nicRTT is the round trip of the NIC the offload flow actually rides —
// the ack-floor lower bound must come from the same arbiter that prices
// the grants.
func (r *RSSD) nicRTT() simclock.Duration {
	if r.cfg.NIC != nil {
		return r.cfg.NIC.RTT()
	}
	return r.linkRTT()
}

// xferTime models one segment's NVMe-oE transfer on the offload link
// (the synchronous baseline path; the async engine prices transfers on
// its timed flow instead).
func (r *RSSD) xferTime(bytes int) simclock.Duration {
	return r.offloadFlow().GrantDur(bytes)
}

// encodeDur models compressing n marshal bytes on one codec lane.
func (r *RSSD) encodeDur(n int) simclock.Duration {
	return simclock.Duration(float64(n) / (r.cfg.EncodeMBps * 1e6) * float64(simclock.Second))
}

// ensureEngine lazily starts the engine for the attached client.
func (r *RSSD) ensureEngine() *offloadEngine {
	if r.engine == nil {
		workers := r.cfg.EncodeWorkers
		if workers < 0 {
			workers = 0 // inline encode at seal (the measured baseline)
		}
		r.engine = newOffloadEngine(r.client, r.cfg.OffloadQueueDepth, workers,
			r.offloadFlow())
	}
	return r.engine
}

// stopEngine drains and dismantles the engine (client swap or Close).
// Outstanding completions are applied unconditionally so no pin is
// orphaned; simulated time is not advanced (admin path).
func (r *RSSD) stopEngine() {
	e := r.engine
	if e == nil {
		return
	}
	for len(e.inFlight) > 0 {
		r.applyResult(e.harvest())
	}
	if e.encodeq != nil {
		close(e.encodeq)
	}
	close(e.xferq)
	r.engine = nil
}

// Close releases the engine's worker goroutines and the device's NIC
// flow. The device remains usable (offload falls back to lazy engine
// start on the next watermark crossing); call it when retiring a device
// instance.
func (r *RSSD) Close() {
	r.stopEngine()
	if r.nicFlow != nil {
		r.nicFlow.Close()
		r.nicFlow = nil
	}
}

// buildSegment seals one segment: the next run of unstaged log entries
// plus the given retained pages, read on the NAND background lane into
// pooled buffers the pipeline releases once their bytes are encoded. It
// advances stagedUpTo and fixes the segment's logical (marshal) size so
// the encode stage can be scheduled before the real encode runs. On error
// the caller must requeue batch.
func (r *RSSD) buildSegment(batch []*retEntry, at simclock.Time) (*stagedSegment, error) {
	to := r.log.NextSeq()
	if to > r.stagedUpTo+maxEntriesPerSegment {
		to = r.stagedUpTo + maxEntriesPerSegment
	}
	entries := r.log.Entries(r.stagedUpTo, to)
	seg := &oplog.Segment{
		DeviceID: r.cfg.DeviceID,
		FirstSeq: r.stagedUpTo,
		LastSeq:  to,
		Entries:  entries,
	}
	if len(entries) > 0 {
		seg.FirstTime = entries[0].At
		seg.LastTime = entries[len(entries)-1].At
	}
	st := &stagedSegment{seg: seg, batch: batch, toSeq: to, sealedAt: at}
	for _, re := range batch {
		// Background lane: the offload engine's flash reads fill host idle
		// gaps (read-suspend priority) rather than delaying host I/O. The
		// returned page is a pooled buffer this segment now owns.
		data, _, done, err := r.f.ReadPhysicalBackground(re.ppn, at)
		if err != nil {
			for _, pb := range st.pageBufs {
				pb.Release()
			}
			return nil, err
		}
		st.pageBufs = append(st.pageBufs, data)
		r.stats.OffloadLatency += done.Sub(at)
		if done > st.sealedAt {
			st.sealedAt = done
		}
		seg.Pages = append(seg.Pages, oplog.PageRecord{
			LPN:      re.lpn,
			WriteSeq: re.writeSeq,
			StaleSeq: re.staleSeq,
			Cause:    uint8(re.cause),
			Hash:     oplog.HashData(data.B),
			Data:     data.B,
		})
	}
	st.logical = seg.MarshaledSize()
	r.stagedUpTo = to
	return st, nil
}

// stage seals batch into a segment, schedules its encode on the simulated
// codec lanes, and hands it to the worker pool and the transfer lane.
// When the staging queue is full the host stalls: completions are
// harvested (blocking) until a slot frees, and the stall is charged to the
// returned host time. The batch must already be popped from the retention
// queue; on build failure it is requeued.
func (r *RSSD) stage(batch []*retEntry, at simclock.Time) (simclock.Time, error) {
	e := r.ensureEngine()
	st, err := r.buildSegment(batch, at)
	if err != nil {
		r.requeue(batch)
		return at, err
	}
	dur := r.encodeDur(st.logical)
	r.stats.EncodeTime += dur
	if e.workers > 0 {
		// Earliest-free simulated codec lane; the real workers race ahead
		// or lag behind, but the schedule is fixed here, deterministically.
		lane := 0
		for i := 1; i < len(e.encFree); i++ {
			if e.encFree[i] < e.encFree[lane] {
				lane = i
			}
		}
		start := simclock.Max(st.sealedAt, e.encFree[lane])
		st.encDoneAt = start.Add(dur)
		e.encFree[lane] = st.encDoneAt
		st.encoded = make(chan struct{})
	} else {
		// Inline baseline: the firmware goroutine compresses at seal time,
		// so the host path pays the encode before it can continue.
		encodeStaged(st)
		st.encDoneAt = simclock.Max(st.sealedAt, at).Add(dur)
		at = at.Add(dur)
	}
	st.ackFloor = st.encDoneAt.Add(r.nicRTT())
	// Backpressure: the bound is the firmware-side in-flight count, not
	// the channel's instantaneous occupancy, so stalls depend only on
	// simulated time, never on goroutine scheduling.
	for len(e.inFlight) >= e.depth {
		res := e.harvest()
		if res.ackAt > at {
			r.stats.OffloadStalls++
			r.stats.OffloadStallTime += res.ackAt.Sub(at)
			at = res.ackAt
		}
		r.applyResult(res)
	}
	if e.workers > 0 {
		e.encodeq <- st // never blocks: queue is sized past the depth bound
	}
	e.xferq <- st // never blocks: queue holds at most depth-1 entries here
	e.inFlight = append(e.inFlight, st)
	e.pagesInFlight += len(st.batch)
	if n := len(e.inFlight); n > r.stats.OffloadQueuePeak {
		r.stats.OffloadQueuePeak = n
	}
	// Encode-stage occupancy: segments still on a simulated codec lane
	// when this one was sealed. Peak > 1 is the overlap the worker pool
	// buys; a persistently full encode stage means EncodeWorkers (or
	// EncodeMBps) is the pipeline's bottleneck.
	encQ := 0
	for _, s := range e.inFlight {
		if s.encDoneAt > st.sealedAt {
			encQ++
		}
	}
	if encQ > r.stats.EncodeQueuePeak {
		r.stats.EncodeQueuePeak = encQ
	}
	return at, nil
}

// pollOffload applies, in pipeline order, every completion whose simulated
// ack instant has been reached. The deterministic ack floor (encode done +
// RTT, fixed at staging) gates the blocking read: the firmware goroutine
// only waits on the results channel when the head segment's ack could
// actually be due, which keeps the simulation deterministic while the real
// encode and transfer run concurrently.
func (r *RSSD) pollOffload(at simclock.Time) {
	e := r.engine
	if e == nil {
		return
	}
	for len(e.inFlight) > 0 && e.inFlight[0].ackFloor <= at {
		if e.ready == nil {
			e.ready = <-e.results
		}
		if e.ready.ackAt > at {
			return // harvested early; applies at a later poll
		}
		r.applyResult(e.ready)
		e.ready = nil
	}
}

// drainOffload blocks until the pipeline is empty, applying every
// completion and advancing host time to the final ack.
func (r *RSSD) drainOffload(at simclock.Time) simclock.Time {
	e := r.engine
	if e == nil {
		return at
	}
	for len(e.inFlight) > 0 {
		res := e.harvest()
		at = simclock.Max(at, res.ackAt)
		r.applyResult(res)
	}
	return at
}

// DrainOffload synchronously settles the offload pipeline: every staged
// segment is acked or failed-and-requeued before it returns, and a dead
// session gets its scheduled redial attempt. Host tooling calls it before
// reading Stats() for a consistent view; tests use it as a barrier.
func (r *RSSD) DrainOffload(at simclock.Time) simclock.Time {
	at = r.drainOffload(at)
	r.maybeRedial(at)
	return at
}

// applyResult consumes the oldest in-flight completion on the firmware
// goroutine: success releases the pins and advances the durable frontier,
// failure opens (or extends) the failure epoch.
func (r *RSSD) applyResult(st *stagedSegment) {
	e := r.engine
	e.inFlight = e.inFlight[1:]
	e.pagesInFlight -= len(st.batch)
	if st.err != nil {
		r.stats.OffloadErrors++
		r.noteRemoteErr(st.err)
		e.failing = true
		if len(st.batch) > 0 {
			e.failedBatches = append(e.failedBatches, st.batch)
		}
	} else {
		r.releaseSegment(st)
	}
	if e.failing && len(e.inFlight) == 0 {
		// Pipeline drained with failures: put every failed batch back at
		// the queue head in stale-time order and rewind staging to the
		// durable frontier so the retry ships the same entries.
		for i := len(e.failedBatches) - 1; i >= 0; i-- {
			r.requeue(e.failedBatches[i])
			r.stats.OffloadRetries++
		}
		e.failedBatches = nil
		e.failing = false
		r.stagedUpTo = r.offloadedUpTo
	}
}

// releaseSegment applies one durably-acked segment: local pins are
// released (the ack-before-release ordering is the zero-data-loss
// invariant), the log is pruned, and the transfer span is attributed to
// the background engine rather than host I/O.
func (r *RSSD) releaseSegment(st *stagedSegment) {
	for _, re := range st.batch {
		if err := r.f.Release(re.ppn); err == nil {
			r.stats.ReleasedPins++
		}
		re.released = true
		delete(r.retained, re.ppn)
		r.removeFromLPNIndex(re)
		r.stats.OffloadPages++
		r.stats.OffloadBytes += uint64(r.f.PageSize())
	}
	r.stats.OffloadSegments++
	r.stats.OffloadEntries += uint64(len(st.seg.Entries))
	r.stats.OffloadBytesWire += uint64(st.wire)
	r.stats.OffloadBytesLogical += uint64(st.logical)
	ackSpan := st.ackAt.Sub(st.sealedAt)
	r.stats.OffloadLatency += ackSpan
	r.stats.OffloadAckTime += ackSpan
	r.stats.OffloadTierTime += st.svc
	// The durable frontier advances only over entries this segment itself
	// carried. A pages-only segment acked behind a rejected entry-bearing
	// one (the server skips the chain check when Entries is empty) must
	// not claim the failed segment's entries as durable — they are neither
	// remote nor, after a prune, local.
	if n := len(st.seg.Entries); n > 0 {
		if upTo := st.seg.Entries[n-1].Seq + 1; upTo > r.offloadedUpTo {
			r.offloadedUpTo = upTo
			r.log.Prune(r.offloadedUpTo)
		}
	}
	// A durable ack means the path is healthy again: clear the SMART-style
	// sticky error so polling tooling sees the recovery — unless a failure
	// epoch is still draining, in which case the error stands until the
	// requeued entries actually land.
	if r.engine == nil || !r.engine.failing {
		r.lastOffloadErr = nil
	}
}

// noteRemoteErr records a background remote failure and classifies it: a
// transport-level failure (anything but a server-reported RemoteError)
// means the session itself is dead and the redial path may take over. A
// server rejection travels over a healthy session — redialing it would
// just replay the rejection — but it can mean the device's view of the
// chain head is stale (a prior segment landed durably while its ack died
// with an earlier session), so it schedules a head reconcile instead.
func (r *RSSD) noteRemoteErr(err error) {
	r.lastOffloadErr = err
	var re *remote.RemoteError
	if errors.As(err, &re) {
		r.needReconcile = true
	} else {
		r.sessionDead = true
	}
}

// adoptHead reconciles the durable frontier with the server's chain head.
// Entries below the head are durably remote even if their acks were never
// harvested; adopting them (counted in Stats.ResumeGap) instead of
// re-shipping them is what keeps a send-without-ack disconnect from
// wedging on duplicate-chain rejections. Pins whose pages rode the lost
// acks stay requeued and re-ship as page-bearing segments past the head —
// nothing is lost, nothing is double-extended.
//
// Adoption is verified, never blind: the server's chain hash at its head
// must equal OUR entry's hash at that sequence. A head the device never
// wrote, or one whose hash diverges, means the remote chain is foreign or
// poisoned — adopting it would prune the only copy of the local evidence
// chain, so the frontier stands and the divergence stays surfaced through
// LastOffloadError.
func (r *RSSD) adoptHead(head nvmeoe.Head) {
	r.needReconcile = false
	if head.NextSeq > r.offloadedUpTo {
		if head.NextSeq > r.log.NextSeq() {
			return // server holds entries this device never wrote
		}
		if es := r.log.Entries(head.NextSeq-1, head.NextSeq); len(es) != 1 || es[0].Hash != head.Hash {
			return // chain divergence: do not destroy local evidence
		}
		r.stats.ResumeGap += head.NextSeq - r.offloadedUpTo
		r.offloadedUpTo = head.NextSeq
		r.log.Prune(head.NextSeq)
	}
	r.stagedUpTo = r.offloadedUpTo
}

// maybeRedial re-establishes a dead session from the configured dial
// factory. Attempts back off exponentially in simulated time (base
// RedialBackoff, capped at RedialBackoffMax). On success the durable
// frontier is reconciled against the server's FetchHead before staging
// resumes: entries the server stored durably but whose acks died with the
// old session are counted into Stats.ResumeGap and NOT re-shipped — the
// server would reject a duplicate chain extension — while everything past
// the head (including requeued page pins) re-ships normally. The sticky
// LastOffloadError intentionally survives the redial itself; only the
// first post-redial durable ack clears it.
func (r *RSSD) maybeRedial(at simclock.Time) {
	if e := r.engine; e != nil && len(e.inFlight) > 0 {
		return // let the failure epoch drain and requeue first
	}
	if !r.sessionDead {
		// The session is healthy; a scheduled reconcile (chain rejection)
		// refreshes the frontier over it.
		if r.needReconcile && r.client != nil {
			head, err := r.client.Head()
			if err != nil {
				r.noteRemoteErr(err)
				return
			}
			r.adoptHead(head)
		}
		return
	}
	if r.cfg.Dial == nil {
		return
	}
	if at < r.nextRedialAt {
		return
	}
	r.stats.RedialAttempts++
	client, err := r.cfg.Dial()
	var head nvmeoe.Head
	if err == nil {
		if head, err = client.Head(); err != nil {
			client.Close()
		}
	}
	if err != nil {
		r.lastOffloadErr = err
		if r.redialBackoff == 0 {
			r.redialBackoff = r.cfg.RedialBackoff
		} else {
			r.redialBackoff *= 2
			if r.redialBackoff > r.cfg.RedialBackoffMax {
				r.redialBackoff = r.cfg.RedialBackoffMax
			}
		}
		r.nextRedialAt = at.Add(r.redialBackoff)
		return
	}
	r.stopEngine()
	if r.client != nil {
		r.client.Close() // unblock any server goroutine wedged on the dead pipe
	}
	r.client = client
	r.adoptHead(head)
	r.sessionDead = false
	r.redialBackoff = 0
	r.nextRedialAt = 0
	r.stats.Redials++
}
