package core

import (
	"errors"

	"repro/internal/nvmeoe"
	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
)

// This file implements the asynchronous offload engine: the pipeline stage
// between the retention watermark check and the NVMe-oE transport. The
// host path *stages* sealed segments into a bounded queue and returns; a
// dedicated transfer goroutine ships them to the remote server. Pins are
// released only when the durability ack is harvested back on the firmware
// goroutine — the zero-data-loss invariant is unchanged, the transfer time
// just no longer sits on the host path.
//
// Concurrency model: all FTL/RSSD state is still owned by the single
// firmware goroutine. The transfer goroutine touches only the staged
// segment (already sealed: pages read, entries copied) and the NVMe-oE
// client. Results come back over a channel and are applied by the firmware
// goroutine at poll points (afterOps, Pressure, DrainOffload).
//
// Simulated-time model: each staged segment's ack instant is fixed at
// staging time from the link model (serialized transfers on one simulated
// link: start = max(sealed, link free), ack = start + RTT + bytes/BW).
// The firmware goroutine applies a completion only once simulated time
// reaches that instant, blocking on the channel if the real transfer is
// still in flight — so behaviour is deterministic in simulated time
// regardless of goroutine scheduling, and the transfer overlaps host I/O
// instead of adding to it.

// stagedSegment is one sealed segment travelling through the pipeline.
type stagedSegment struct {
	seg      *oplog.Segment
	blob     []byte        // codec-framed wire encoding (what actually ships)
	batch    []*retEntry   // retained pages carried by seg (pins still held)
	toSeq    uint64        // log entries below this are covered by seg
	sealedAt simclock.Time // flash background reads complete
	ackAt    simclock.Time // simulated durability-ack arrival (link model)
	wire     int           // compressed wire bytes: what the link model charges
	logical  int           // uncompressed marshal size
	err      error         // set by the transfer goroutine
}

// offloadEngine owns the staging queue and the transfer goroutine.
type offloadEngine struct {
	depth         int                 // staging-queue bound (backpressure point)
	pending       chan *stagedSegment // staged, awaiting transfer
	results       chan *stagedSegment // transfer resolved, FIFO with pending
	inFlight      []*stagedSegment    // firmware-side FIFO mirror of the pipeline
	pagesInFlight int
	linkFreeAt    simclock.Time
	// failure epoch: once one segment fails, everything behind it in the
	// pipeline fails too (the chain has a gap at the server). Failed
	// batches are collected in stage order and requeued together when the
	// pipeline drains, then staging resumes from the acked sequence.
	failing       bool
	failedBatches [][]*retEntry
}

// newOffloadEngine starts the transfer goroutine for one client session.
func newOffloadEngine(client *remote.Client, depth int) *offloadEngine {
	if depth <= 0 {
		depth = 8
	}
	e := &offloadEngine{
		depth:   depth,
		pending: make(chan *stagedSegment, depth),
		// results is sized so the transfer goroutine never blocks sending:
		// at most depth segments queue plus one in its hands.
		results: make(chan *stagedSegment, depth+2),
	}
	go func() {
		for st := range e.pending {
			st.err = client.PushSegmentBlob(st.blob, st.seg.LastSeq)
			e.results <- st
		}
	}()
	return e
}

// ensureEngine lazily starts the engine for the attached client.
func (r *RSSD) ensureEngine() *offloadEngine {
	if r.engine == nil {
		r.engine = newOffloadEngine(r.client, r.cfg.OffloadQueueDepth)
	}
	return r.engine
}

// stopEngine drains and dismantles the engine (client swap or Close).
// Outstanding completions are applied unconditionally so no pin is
// orphaned; simulated time is not advanced (admin path).
func (r *RSSD) stopEngine() {
	e := r.engine
	if e == nil {
		return
	}
	for len(e.inFlight) > 0 {
		r.applyResult(<-e.results)
	}
	close(e.pending)
	r.engine = nil
}

// Close releases the engine's transfer goroutine. The device remains
// usable (offload falls back to lazy engine start on the next watermark
// crossing); call it when retiring a device instance.
func (r *RSSD) Close() { r.stopEngine() }

// xferTime models one segment's NVMe-oE transfer on the offload link.
func (r *RSSD) xferTime(bytes int) simclock.Duration {
	bw := r.cfg.OffloadLinkMBps
	if bw <= 0 {
		bw = 1200
	}
	rtt := r.cfg.OffloadLinkRTT
	if rtt <= 0 {
		rtt = 30 * simclock.Microsecond
	}
	return rtt + simclock.Duration(float64(bytes)/(bw*1e6)*float64(simclock.Second))
}

// buildSegment seals one segment: the next run of unstaged log entries
// plus the given retained pages, read on the NAND background lane. It
// advances stagedUpTo. On error the caller must requeue batch.
func (r *RSSD) buildSegment(batch []*retEntry, at simclock.Time) (*stagedSegment, error) {
	to := r.log.NextSeq()
	if to > r.stagedUpTo+maxEntriesPerSegment {
		to = r.stagedUpTo + maxEntriesPerSegment
	}
	entries := r.log.Entries(r.stagedUpTo, to)
	seg := &oplog.Segment{
		DeviceID: r.cfg.DeviceID,
		FirstSeq: r.stagedUpTo,
		LastSeq:  to,
		Entries:  entries,
	}
	if len(entries) > 0 {
		seg.FirstTime = entries[0].At
		seg.LastTime = entries[len(entries)-1].At
	}
	st := &stagedSegment{seg: seg, batch: batch, toSeq: to, sealedAt: at}
	for _, re := range batch {
		// Background lane: the offload engine's flash reads fill host idle
		// gaps (read-suspend priority) rather than delaying host I/O.
		data, _, done, err := r.f.ReadPhysicalBackground(re.ppn, at)
		if err != nil {
			return nil, err
		}
		r.stats.OffloadLatency += done.Sub(at)
		if done > st.sealedAt {
			st.sealedAt = done
		}
		seg.Pages = append(seg.Pages, oplog.PageRecord{
			LPN:      re.lpn,
			WriteSeq: re.writeSeq,
			StaleSeq: re.staleSeq,
			Cause:    uint8(re.cause),
			Hash:     oplog.HashData(data),
			Data:     data,
		})
	}
	// Seal = encode: the codec frame built here is the exact byte string
	// the transfer goroutine ships and the server persists, so the link
	// model charges compressed (actual wire) bytes, not the logical size.
	raw := seg.Marshal()
	st.blob = nvmeoe.EncodeSegmentBlob(raw)
	st.logical = len(raw)
	st.wire = len(st.blob)
	r.stagedUpTo = to
	return st, nil
}

// stage seals batch into a segment and hands it to the transfer goroutine.
// When the staging queue is full the host stalls: completions are
// harvested (blocking) until a slot frees, and the stall is charged to the
// returned host time. The batch must already be popped from the retention
// queue; on build failure it is requeued.
func (r *RSSD) stage(batch []*retEntry, at simclock.Time) (simclock.Time, error) {
	e := r.ensureEngine()
	st, err := r.buildSegment(batch, at)
	if err != nil {
		r.requeue(batch)
		return at, err
	}
	start := simclock.Max(st.sealedAt, e.linkFreeAt)
	st.ackAt = start.Add(r.xferTime(st.wire))
	e.linkFreeAt = st.ackAt
	// Backpressure: the bound is the firmware-side in-flight count, not
	// the channel's instantaneous occupancy, so stalls depend only on
	// simulated time, never on goroutine scheduling.
	for len(e.inFlight) >= e.depth {
		res := <-e.results
		if res.ackAt > at {
			r.stats.OffloadStalls++
			r.stats.OffloadStallTime += res.ackAt.Sub(at)
			at = res.ackAt
		}
		r.applyResult(res)
	}
	e.pending <- st // never blocks: queue holds at most depth-1 entries here
	e.inFlight = append(e.inFlight, st)
	e.pagesInFlight += len(st.batch)
	if n := len(e.inFlight); n > r.stats.OffloadQueuePeak {
		r.stats.OffloadQueuePeak = n
	}
	return at, nil
}

// pollOffload applies, in pipeline order, every completion whose simulated
// ack instant has been reached. It blocks on the results channel when the
// real transfer lags the simulated clock, which keeps the simulation
// deterministic.
func (r *RSSD) pollOffload(at simclock.Time) {
	e := r.engine
	if e == nil {
		return
	}
	for len(e.inFlight) > 0 && e.inFlight[0].ackAt <= at {
		r.applyResult(<-e.results)
	}
}

// drainOffload blocks until the pipeline is empty, applying every
// completion and advancing host time to the final ack.
func (r *RSSD) drainOffload(at simclock.Time) simclock.Time {
	e := r.engine
	if e == nil {
		return at
	}
	for len(e.inFlight) > 0 {
		res := <-e.results
		at = simclock.Max(at, res.ackAt)
		r.applyResult(res)
	}
	return at
}

// DrainOffload synchronously settles the offload pipeline: every staged
// segment is acked or failed-and-requeued before it returns, and a dead
// session gets its scheduled redial attempt. Host tooling calls it before
// reading Stats() for a consistent view; tests use it as a barrier.
func (r *RSSD) DrainOffload(at simclock.Time) simclock.Time {
	at = r.drainOffload(at)
	r.maybeRedial(at)
	return at
}

// applyResult consumes the oldest in-flight completion on the firmware
// goroutine: success releases the pins and advances the durable frontier,
// failure opens (or extends) the failure epoch.
func (r *RSSD) applyResult(st *stagedSegment) {
	e := r.engine
	e.inFlight = e.inFlight[1:]
	e.pagesInFlight -= len(st.batch)
	if st.err != nil {
		r.stats.OffloadErrors++
		r.noteRemoteErr(st.err)
		e.failing = true
		if len(st.batch) > 0 {
			e.failedBatches = append(e.failedBatches, st.batch)
		}
	} else {
		r.releaseSegment(st)
	}
	if e.failing && len(e.inFlight) == 0 {
		// Pipeline drained with failures: put every failed batch back at
		// the queue head in stale-time order and rewind staging to the
		// durable frontier so the retry ships the same entries.
		for i := len(e.failedBatches) - 1; i >= 0; i-- {
			r.requeue(e.failedBatches[i])
			r.stats.OffloadRetries++
		}
		e.failedBatches = nil
		e.failing = false
		r.stagedUpTo = r.offloadedUpTo
	}
}

// releaseSegment applies one durably-acked segment: local pins are
// released (the ack-before-release ordering is the zero-data-loss
// invariant), the log is pruned, and the transfer span is attributed to
// the background engine rather than host I/O.
func (r *RSSD) releaseSegment(st *stagedSegment) {
	for _, re := range st.batch {
		if err := r.f.Release(re.ppn); err == nil {
			r.stats.ReleasedPins++
		}
		re.released = true
		delete(r.retained, re.ppn)
		r.removeFromLPNIndex(re)
		r.stats.OffloadPages++
		r.stats.OffloadBytes += uint64(r.f.PageSize())
	}
	r.stats.OffloadSegments++
	r.stats.OffloadEntries += uint64(len(st.seg.Entries))
	r.stats.OffloadBytesWire += uint64(st.wire)
	r.stats.OffloadBytesLogical += uint64(st.logical)
	ackSpan := st.ackAt.Sub(st.sealedAt)
	r.stats.OffloadLatency += ackSpan
	r.stats.OffloadAckTime += ackSpan
	// The durable frontier advances only over entries this segment itself
	// carried. A pages-only segment acked behind a rejected entry-bearing
	// one (the server skips the chain check when Entries is empty) must
	// not claim the failed segment's entries as durable — they are neither
	// remote nor, after a prune, local.
	if n := len(st.seg.Entries); n > 0 {
		if upTo := st.seg.Entries[n-1].Seq + 1; upTo > r.offloadedUpTo {
			r.offloadedUpTo = upTo
			r.log.Prune(r.offloadedUpTo)
		}
	}
	// A durable ack means the path is healthy again: clear the SMART-style
	// sticky error so polling tooling sees the recovery — unless a failure
	// epoch is still draining, in which case the error stands until the
	// requeued entries actually land.
	if r.engine == nil || !r.engine.failing {
		r.lastOffloadErr = nil
	}
}

// noteRemoteErr records a background remote failure and classifies it: a
// transport-level failure (anything but a server-reported RemoteError)
// means the session itself is dead and the redial path may take over. A
// server rejection travels over a healthy session — redialing it would
// just replay the rejection — but it can mean the device's view of the
// chain head is stale (a prior segment landed durably while its ack died
// with an earlier session), so it schedules a head reconcile instead.
func (r *RSSD) noteRemoteErr(err error) {
	r.lastOffloadErr = err
	var re *remote.RemoteError
	if errors.As(err, &re) {
		r.needReconcile = true
	} else {
		r.sessionDead = true
	}
}

// adoptHead reconciles the durable frontier with the server's chain head.
// Entries below the head are durably remote even if their acks were never
// harvested; adopting them (counted in Stats.ResumeGap) instead of
// re-shipping them is what keeps a send-without-ack disconnect from
// wedging on duplicate-chain rejections. Pins whose pages rode the lost
// acks stay requeued and re-ship as page-bearing segments past the head —
// nothing is lost, nothing is double-extended.
//
// Adoption is verified, never blind: the server's chain hash at its head
// must equal OUR entry's hash at that sequence. A head the device never
// wrote, or one whose hash diverges, means the remote chain is foreign or
// poisoned — adopting it would prune the only copy of the local evidence
// chain, so the frontier stands and the divergence stays surfaced through
// LastOffloadError.
func (r *RSSD) adoptHead(head nvmeoe.Head) {
	r.needReconcile = false
	if head.NextSeq > r.offloadedUpTo {
		if head.NextSeq > r.log.NextSeq() {
			return // server holds entries this device never wrote
		}
		if es := r.log.Entries(head.NextSeq-1, head.NextSeq); len(es) != 1 || es[0].Hash != head.Hash {
			return // chain divergence: do not destroy local evidence
		}
		r.stats.ResumeGap += head.NextSeq - r.offloadedUpTo
		r.offloadedUpTo = head.NextSeq
		r.log.Prune(head.NextSeq)
	}
	r.stagedUpTo = r.offloadedUpTo
}

// maybeRedial re-establishes a dead session from the configured dial
// factory. Attempts back off exponentially in simulated time (base
// RedialBackoff, capped at RedialBackoffMax). On success the durable
// frontier is reconciled against the server's FetchHead before staging
// resumes: entries the server stored durably but whose acks died with the
// old session are counted into Stats.ResumeGap and NOT re-shipped — the
// server would reject a duplicate chain extension — while everything past
// the head (including requeued page pins) re-ships normally. The sticky
// LastOffloadError intentionally survives the redial itself; only the
// first post-redial durable ack clears it.
func (r *RSSD) maybeRedial(at simclock.Time) {
	if e := r.engine; e != nil && len(e.inFlight) > 0 {
		return // let the failure epoch drain and requeue first
	}
	if !r.sessionDead {
		// The session is healthy; a scheduled reconcile (chain rejection)
		// refreshes the frontier over it.
		if r.needReconcile && r.client != nil {
			head, err := r.client.Head()
			if err != nil {
				r.noteRemoteErr(err)
				return
			}
			r.adoptHead(head)
		}
		return
	}
	if r.cfg.Dial == nil {
		return
	}
	if at < r.nextRedialAt {
		return
	}
	r.stats.RedialAttempts++
	client, err := r.cfg.Dial()
	var head nvmeoe.Head
	if err == nil {
		if head, err = client.Head(); err != nil {
			client.Close()
		}
	}
	if err != nil {
		r.lastOffloadErr = err
		if r.redialBackoff == 0 {
			r.redialBackoff = r.cfg.RedialBackoff
		} else {
			r.redialBackoff *= 2
			if r.redialBackoff > r.cfg.RedialBackoffMax {
				r.redialBackoff = r.cfg.RedialBackoffMax
			}
		}
		r.nextRedialAt = at.Add(r.redialBackoff)
		return
	}
	r.stopEngine()
	if r.client != nil {
		r.client.Close() // unblock any server goroutine wedged on the dead pipe
	}
	r.client = client
	r.adoptHead(head)
	r.sessionDead = false
	r.redialBackoff = 0
	r.nextRedialAt = 0
	r.stats.Redials++
}
