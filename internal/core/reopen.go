package core

import (
	"fmt"
	"sort"

	"repro/internal/ftl"
	"repro/internal/nand"
	"repro/internal/oplog"
	"repro/internal/remote"
)

// Reopen adopts an existing device image after a power cycle: it scans the
// flash OOB area, replays the remotely stored operation log to
// reconstruct the exact logical mapping (including trims, which OOB alone
// cannot express), re-pins every committed stale version so conservative
// retention survives the reboot, and resumes the hash chain at the remote
// head so post-reboot segments splice on without a break.
//
// Durability model: state covered by offloaded log entries is recovered
// exactly. Flash pages whose OOB sequence is beyond the remote head belong
// to operations whose log entries died in device RAM; Reopen rolls them
// back (discards them), the same way a journaled filesystem drops an
// uncommitted tail. A clean shutdown (OffloadNow before power-off) makes
// the rollback window empty. The hardware RSSD persists its log pages to
// flash and would recover that tail too; modeling the rollback keeps the
// chain semantics honest without simulating log-page writes.
func Reopen(cfg Config, dev *nand.Device, client *remote.Client) (*RSSD, error) {
	if client == nil {
		return nil, ErrNoRemote
	}
	head, err := client.Head()
	if err != nil {
		return nil, fmt.Errorf("core: reopen: fetch head: %w", err)
	}
	// Replay the committed operation history.
	type op struct {
		seq  uint64
		kind oplog.Kind
	}
	hist := map[uint64][]op{}
	liveSeq := map[uint64]uint64{}
	trimmed := map[uint64]bool{}
	const batch = 4096
	for from := uint64(0); from < head.NextSeq; from += batch {
		to := from + batch
		if to > head.NextSeq {
			to = head.NextSeq
		}
		entries, err := client.FetchEntries(from, to)
		if err != nil {
			return nil, fmt.Errorf("core: reopen: fetch entries [%d,%d): %w", from, to, err)
		}
		for _, e := range entries {
			switch e.Kind {
			case oplog.KindWrite, oplog.KindRecovery:
				liveSeq[e.LPN] = e.Seq
				trimmed[e.LPN] = false
				hist[e.LPN] = append(hist[e.LPN], op{e.Seq, e.Kind})
			case oplog.KindTrim, oplog.KindRecoveryTrim:
				trimmed[e.LPN] = true
				hist[e.LPN] = append(hist[e.LPN], op{e.Seq, e.Kind})
			}
		}
	}

	// Build the device shell (the FTL wires itself to it via Retainer).
	if cfg.OffloadHighWater <= 0 {
		cfg.OffloadHighWater = 0.70
	}
	if cfg.OffloadLowWater <= 0 || cfg.OffloadLowWater >= cfg.OffloadHighWater {
		cfg.OffloadLowWater = cfg.OffloadHighWater / 2
	}
	if cfg.SegmentMaxPages <= 0 {
		cfg.SegmentMaxPages = 128
	}
	if cfg.OffloadQueueDepth <= 0 {
		cfg.OffloadQueueDepth = 8
	}
	r := &RSSD{
		cfg:           cfg,
		log:           oplog.ResumeFrom(head.NextSeq, head.Hash),
		client:        client,
		retained:      map[uint64]*retEntry{},
		retByLPN:      map[uint64][]*retEntry{},
		offloadedUpTo: head.NextSeq,
		stagedUpTo:    head.NextSeq,
	}

	// Classify every programmed page from its OOB stamp + the replayed
	// history, remembering retained pages for index reconstruction.
	type scanned struct {
		ppn uint64
		oob nand.OOB
	}
	var kept []scanned
	classify := func(ppn uint64, oob nand.OOB) ftl.Disposition {
		if oob.Seq >= head.NextSeq {
			return ftl.DispDiscard // uncommitted tail: rolled back
		}
		if ls, ok := liveSeq[oob.LPN]; ok && !trimmed[oob.LPN] && oob.Seq == ls {
			return ftl.DispLive
		}
		kept = append(kept, scanned{ppn, oob})
		return ftl.DispRetained
	}
	f, err := ftl.Recover(cfg.FTL, dev, r, classify)
	if err != nil {
		return nil, fmt.Errorf("core: reopen: %w", err)
	}
	r.f = f

	// Live write sequences.
	r.lpnWriteSeq = make([]uint64, f.LogicalPages())
	for i := range r.lpnWriteSeq {
		r.lpnWriteSeq[i] = NoSeq
	}
	for lpn, ls := range liveSeq {
		if !trimmed[lpn] && lpn < uint64(len(r.lpnWriteSeq)) {
			r.lpnWriteSeq[lpn] = ls
		}
	}

	// Rebuild the retention index. Each kept page's staleSeq and cause
	// come from the first mapping-changing operation after its write.
	for _, s := range kept {
		re := &retEntry{
			ppn:      s.ppn,
			lpn:      s.oob.LPN,
			writeSeq: s.oob.Seq,
			staleSeq: s.oob.Seq + 1,
			cause:    ftl.CauseOverwrite,
		}
		ops := hist[s.oob.LPN]
		i := sort.Search(len(ops), func(i int) bool { return ops[i].seq > s.oob.Seq })
		if i < len(ops) {
			re.staleSeq = ops[i].seq
			if ops[i].kind == oplog.KindTrim || ops[i].kind == oplog.KindRecoveryTrim {
				re.cause = ftl.CauseTrim
			}
		}
		r.retained[s.ppn] = re
		r.retByLPN[s.oob.LPN] = append(r.retByLPN[s.oob.LPN], re)
		r.retQueue = append(r.retQueue, re)
	}
	for _, vs := range r.retByLPN {
		sort.Slice(vs, func(i, j int) bool { return vs[i].writeSeq < vs[j].writeSeq })
	}
	sort.Slice(r.retQueue, func(i, j int) bool { return r.retQueue[i].staleSeq < r.retQueue[j].staleSeq })
	return r, nil
}
