package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/ftl"
	"repro/internal/nand"
	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
)

var testPSK = []byte("rssd-core-test-psk-0123456789abc")

// smallFTLConfig: 16 blocks x 4 pages x 512B, 25% OP -> 48 logical pages,
// 16-page retention budget.
func smallFTLConfig() ftl.Config {
	return ftl.Config{
		NAND: nand.Config{
			Geometry: nand.Geometry{
				Channels: 2, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
				BlocksPerPlane: 8, PagesPerBlock: 4, PageSize: 512,
			},
			Timing: nand.DefaultTiming(),
		},
		OverProvision: 0.25,
		GCLowWater:    2,
		GCHighWater:   3,
	}
}

func testConfig() Config {
	return Config{
		FTL:              smallFTLConfig(),
		DeviceID:         1,
		OffloadHighWater: 0.70,
		OffloadLowWater:  0.40,
		SegmentMaxPages:  8,
		CheckpointEvery:  0,
		ReadLogSampling:  1,
		DropWhenOffline:  true,
	}
}

// env bundles an RSSD wired to an in-process remote server.
type env struct {
	r     *RSSD
	store *remote.Store
}

func newEnv(t *testing.T, cfg Config) *env {
	t.Helper()
	store := remote.NewStore(remote.NewMemStore())
	srv := remote.NewServer(store, testPSK)
	client, err := remote.Loopback(srv, testPSK, cfg.DeviceID)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return &env{r: New(cfg, client), store: store}
}

func fill(b byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestWriteReadTrimRoundTrip(t *testing.T) {
	e := newEnv(t, testConfig())
	at := simclock.Time(0)
	at, err := e.r.Write(3, fill(7, 512), at)
	if err != nil {
		t.Fatal(err)
	}
	data, at, err := e.r.Read(3, at)
	if err != nil || data[0] != 7 {
		t.Fatalf("read = %v, %v", data[0], err)
	}
	if _, err := e.r.Trim(3, at); err != nil {
		t.Fatal(err)
	}
	data, _, err = e.r.Read(3, at)
	if err != nil || !bytes.Equal(data, make([]byte, 512)) {
		t.Fatal("trimmed page not zeroed")
	}
}

func TestInputValidation(t *testing.T) {
	e := newEnv(t, testConfig())
	if _, err := e.r.Write(1<<40, fill(0, 512), 0); !errors.Is(err, ftl.ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
	if _, err := e.r.Write(0, fill(0, 5), 0); !errors.Is(err, ftl.ErrBadPageSize) {
		t.Fatalf("err = %v", err)
	}
	if _, err := e.r.Trim(1<<40, 0); !errors.Is(err, ftl.ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := e.r.ReadVersionBefore(1<<40, 1, 0); !errors.Is(err, ftl.ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
}

func TestEveryOperationIsLogged(t *testing.T) {
	e := newEnv(t, testConfig())
	at := simclock.Time(0)
	at, _ = e.r.Write(0, fill(1, 512), at)
	at, _ = e.r.Write(0, fill(2, 512), at)
	_, at, _ = e.r.Read(0, at)
	e.r.Trim(0, at)
	entries := e.r.Log().All()
	kinds := []oplog.Kind{}
	for _, en := range entries {
		kinds = append(kinds, en.Kind)
	}
	want := []oplog.Kind{oplog.KindWrite, oplog.KindWrite, oplog.KindRead, oplog.KindTrim}
	if len(kinds) != len(want) {
		t.Fatalf("logged %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("entry %d kind = %v, want %v", i, kinds[i], want[i])
		}
	}
	if err := oplog.VerifyChain(entries, [32]byte{}); err != nil {
		t.Fatal(err)
	}
	// The second write's entry records the overwrite linkage.
	if entries[1].OldPPN == ftl.NoPPN {
		t.Fatal("overwrite entry lost old PPN")
	}
}

func TestOverwriteRetainsOldVersion(t *testing.T) {
	e := newEnv(t, testConfig())
	at := simclock.Time(0)
	at, _ = e.r.Write(5, fill(0xAA, 512), at)
	at, _ = e.r.Write(5, fill(0xBB, 512), at)
	vs := e.r.RetainedVersions(5)
	if len(vs) != 1 {
		t.Fatalf("retained versions = %d, want 1", len(vs))
	}
	if vs[0].WriteSeq != 0 || vs[0].Cause != ftl.CauseOverwrite {
		t.Fatalf("version = %+v", vs[0])
	}
	// The old content is readable as the pre-overwrite version.
	data, ok, err := e.r.ReadVersionBefore(5, 1, at)
	if err != nil || !ok || data[0] != 0xAA {
		t.Fatalf("version before overwrite: %v %v %v", data[0], ok, err)
	}
}

func TestEnhancedTrimRetainsData(t *testing.T) {
	e := newEnv(t, testConfig())
	at := simclock.Time(0)
	at, _ = e.r.Write(2, fill(0xCC, 512), at)
	at, _ = e.r.Trim(2, at)
	vs := e.r.RetainedVersions(2)
	if len(vs) != 1 || vs[0].Cause != ftl.CauseTrim {
		t.Fatalf("trimmed version = %+v", vs)
	}
	// Pre-trim content is recoverable.
	data, ok, err := e.r.ReadVersionBefore(2, 1, at)
	if err != nil || !ok || data[0] != 0xCC {
		t.Fatalf("pre-trim version: %v %v %v", data, ok, err)
	}
	// Post-trim state reads as zeroes.
	data, ok, err = e.r.ReadVersionBefore(2, 2, at)
	if err != nil || !ok || data[0] != 0 {
		t.Fatalf("post-trim version: %v %v %v", data, ok, err)
	}
}

func TestDisabledEnhancedTrimDoesNotRetain(t *testing.T) {
	cfg := testConfig()
	cfg.DisableEnhancedTrim = true
	e := newEnv(t, cfg)
	at := simclock.Time(0)
	at, _ = e.r.Write(2, fill(0xCC, 512), at)
	e.r.Trim(2, at)
	if vs := e.r.RetainedVersions(2); len(vs) != 0 {
		t.Fatalf("ablated trim retained %d versions", len(vs))
	}
}

func TestWatermarkOffload(t *testing.T) {
	e := newEnv(t, testConfig()) // budget 16, high water 11
	at := simclock.Time(0)
	// 14 overwrites of the same page -> 14 stale versions > high water.
	at, _ = e.r.Write(0, fill(0, 512), at)
	for i := 1; i <= 14; i++ {
		var err error
		at, err = e.r.Write(0, fill(byte(i), 512), at)
		if err != nil {
			t.Fatal(err)
		}
	}
	st := e.r.Stats()
	if st.OffloadSegments == 0 {
		t.Fatal("watermark offload never fired")
	}
	budget := e.r.retentionBudget()
	if st.RetainedNow > int(0.7*float64(budget)) {
		t.Fatalf("retained %d still above high water", st.RetainedNow)
	}
	// Remote now holds the old versions, chain-verified at ingest.
	rs := e.store.DeviceStats(1)
	if rs.Versions == 0 || rs.Entries == 0 {
		t.Fatalf("remote stats = %+v", rs)
	}
}

func TestOffloadNowDrainsEverything(t *testing.T) {
	e := newEnv(t, testConfig())
	at := simclock.Time(0)
	for i := 0; i < 10; i++ {
		at, _ = e.r.Write(uint64(i%3), fill(byte(i), 512), at)
	}
	if _, err := e.r.OffloadNow(at); err != nil {
		t.Fatal(err)
	}
	if got := e.r.Stats().RetainedNow; got != 0 {
		t.Fatalf("retained after drain = %d", got)
	}
	if e.r.OffloadedUpTo() != e.r.Log().NextSeq() {
		t.Fatalf("offloadedUpTo %d != nextSeq %d", e.r.OffloadedUpTo(), e.r.Log().NextSeq())
	}
	// Local log was pruned; remote holds the full prefix.
	if e.r.Log().BaseSeq() != e.r.OffloadedUpTo() {
		t.Fatal("local log not pruned after offload")
	}
	h := e.store.Head(1)
	if h.NextSeq != e.r.OffloadedUpTo() {
		t.Fatalf("remote head %d, want %d", h.NextSeq, e.r.OffloadedUpTo())
	}
}

func TestOffloadNowWithoutRemote(t *testing.T) {
	r := New(testConfig(), nil)
	if _, err := r.OffloadNow(0); !errors.Is(err, ErrNoRemote) {
		t.Fatalf("err = %v", err)
	}
}

// TestZeroDataLossUnderChurn is the core guarantee: after heavy churn that
// forces GC and offload, EVERY historical version of every page is still
// reconstructable from live + local retained + remote.
func TestZeroDataLossUnderChurn(t *testing.T) {
	e := newEnv(t, testConfig())
	at := simclock.Time(0)
	rng := rand.New(rand.NewSource(42))
	type version struct {
		seq  uint64
		data byte
	}
	history := map[uint64][]version{}
	const lpns = 6
	for i := 0; i < 300; i++ {
		lpn := uint64(rng.Intn(lpns))
		b := byte(rng.Intn(256))
		seq := e.r.Log().NextSeq()
		var err error
		at, err = e.r.Write(lpn, fill(b, 512), at)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		history[lpn] = append(history[lpn], version{seq, b})
		at = at.Add(simclock.Millisecond)
	}
	if e.r.Stats().DroppedPages != 0 {
		t.Fatalf("dropped %d pages despite remote", e.r.Stats().DroppedPages)
	}
	// Spot-check ~200 random (lpn, before) points across history.
	for i := 0; i < 200; i++ {
		lpn := uint64(rng.Intn(lpns))
		vs := history[lpn]
		if len(vs) == 0 {
			continue
		}
		pick := rng.Intn(len(vs))
		before := vs[pick].seq + 1 // just after that write
		data, ok, err := e.r.ReadVersionBefore(lpn, before, at)
		if err != nil {
			t.Fatalf("ReadVersionBefore(%d, %d): %v", lpn, before, err)
		}
		if !ok || data[0] != vs[pick].data {
			t.Fatalf("version (%d,%d) = %v,%v want %d", lpn, before, data[0], ok, vs[pick].data)
		}
	}
}

func TestOfflineModeDropsUnderPressure(t *testing.T) {
	r := New(testConfig(), nil) // no remote
	at := simclock.Time(0)
	for i := 0; i < 100; i++ {
		var err error
		at, err = r.Write(uint64(i%4), fill(byte(i), 512), at)
		if err != nil {
			t.Fatalf("offline write %d: %v", i, err)
		}
	}
	if r.Stats().DroppedPages == 0 {
		t.Fatal("offline churn should have dropped retained pages")
	}
}

func TestOfflineStrictModeFailsInsteadOfDropping(t *testing.T) {
	cfg := testConfig()
	cfg.DropWhenOffline = false
	r := New(cfg, nil)
	at := simclock.Time(0)
	var sawNoSpace bool
	for i := 0; i < 200; i++ {
		var err error
		at, err = r.Write(uint64(i%4), fill(byte(i), 512), at)
		if errors.Is(err, ftl.ErrNoSpace) {
			sawNoSpace = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawNoSpace {
		t.Fatal("strict offline mode never returned ErrNoSpace")
	}
	if r.Stats().DroppedPages != 0 {
		t.Fatal("strict mode dropped pages")
	}
}

// TestGCAttackResistance floods the device far beyond its capacity — the
// GC attack — and verifies (a) the device keeps serving writes, and (b) a
// pre-attack victim version remains recoverable.
func TestGCAttackResistance(t *testing.T) {
	e := newEnv(t, testConfig())
	at := simclock.Time(0)
	victim := fill(0x56, 512)
	at, _ = e.r.Write(7, victim, at)
	victimSeq := e.r.Log().NextSeq() // version 0 of lpn 7 is seq 0; next op is seq 1
	// Attack: encrypt the victim, then flood every logical page repeatedly.
	at, _ = e.r.Write(7, fill(0xEE, 512), at)
	n := e.r.LogicalPages()
	for round := 0; round < 8; round++ {
		for lpn := uint64(0); lpn < n; lpn++ {
			var err error
			at, err = e.r.Write(lpn, fill(byte(round), 512), at)
			if err != nil {
				t.Fatalf("flood write: %v", err)
			}
		}
	}
	data, ok, err := e.r.ReadVersionBefore(7, victimSeq, at)
	if err != nil || !ok || !bytes.Equal(data, victim) {
		t.Fatalf("victim data lost to GC attack: ok=%v err=%v", ok, err)
	}
}

func TestCheckpoints(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointEvery = 10
	e := newEnv(t, cfg)
	at := simclock.Time(0)
	for i := 0; i < 25; i++ {
		at, _ = e.r.Write(uint64(i%4), fill(byte(i), 512), at)
	}
	if got := e.r.Stats().Checkpoints; got < 2 {
		t.Fatalf("checkpoints = %d, want >= 2", got)
	}
	cp, ok := e.store.Checkpoint(1, 1<<62)
	if !ok {
		t.Fatal("no checkpoint stored remotely")
	}
	if len(cp.L2P) != int(e.r.LogicalPages()) {
		t.Fatalf("checkpoint table size = %d", len(cp.L2P))
	}
}

func TestRestoreWriteLogsRecovery(t *testing.T) {
	e := newEnv(t, testConfig())
	at := simclock.Time(0)
	at, _ = e.r.Write(0, fill(1, 512), at)
	at, _ = e.r.RestoreWrite(0, fill(2, 512), at)
	entries := e.r.Log().All()
	last := entries[len(entries)-1]
	if last.Kind != oplog.KindRecovery {
		t.Fatalf("last entry kind = %v", last.Kind)
	}
	data, _, _ := e.r.Read(0, at)
	if data[0] != 2 {
		t.Fatal("restore write not visible")
	}
}

func TestRestoreTrim(t *testing.T) {
	e := newEnv(t, testConfig())
	at := simclock.Time(0)
	at, _ = e.r.Write(0, fill(1, 512), at)
	at, _ = e.r.RestoreTrim(0, at)
	data, _, _ := e.r.Read(0, at)
	if data[0] != 0 {
		t.Fatal("restore trim not visible")
	}
	if e.r.WriteSeqOf(0) != NoSeq {
		t.Fatal("writeSeq not cleared")
	}
}

func TestReadVersionNeverWritten(t *testing.T) {
	e := newEnv(t, testConfig())
	data, ok, err := e.r.ReadVersionBefore(9, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("unwritten page reported a version")
	}
	if !bytes.Equal(data, make([]byte, 512)) {
		t.Fatal("unwritten page version not zeroes")
	}
}

func TestTrimThenRewriteVersioning(t *testing.T) {
	e := newEnv(t, testConfig())
	at := simclock.Time(0)
	at, _ = e.r.Write(1, fill(0x11, 512), at) // seq 0
	at, _ = e.r.Trim(1, at)                   // seq 1
	at, _ = e.r.Write(1, fill(0x22, 512), at) // seq 2
	cases := []struct {
		before uint64
		want   byte
	}{
		{1, 0x11}, // after first write
		{2, 0x00}, // after trim: zeroes
		{3, 0x22}, // after rewrite
	}
	for _, c := range cases {
		data, _, err := e.r.ReadVersionBefore(1, c.before, at)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != c.want {
			t.Fatalf("version before %d = %#x, want %#x", c.before, data[0], c.want)
		}
	}
}

func TestVersionsSurviveOffload(t *testing.T) {
	e := newEnv(t, testConfig())
	at := simclock.Time(0)
	at, _ = e.r.Write(3, fill(0x77, 512), at) // seq 0
	at, _ = e.r.Write(3, fill(0x88, 512), at) // seq 1
	if _, err := e.r.OffloadNow(at); err != nil {
		t.Fatal(err)
	}
	if len(e.r.RetainedVersions(3)) != 0 {
		t.Fatal("local pins remain after drain")
	}
	data, ok, err := e.r.ReadVersionBefore(3, 1, at)
	if err != nil || !ok || data[0] != 0x77 {
		t.Fatalf("offloaded version: %v %v %v", data, ok, err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	e := newEnv(t, testConfig())
	at := simclock.Time(0)
	at, _ = e.r.Write(0, fill(1, 512), at)
	e.r.Read(0, at)
	e.r.Trim(0, at)
	s := e.r.Stats()
	if s.HostWrites != 1 || s.HostReads != 1 || s.HostTrims != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestReadLogSamplingDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.ReadLogSampling = 0
	e := newEnv(t, cfg)
	at := simclock.Time(0)
	at, _ = e.r.Write(0, fill(1, 512), at)
	e.r.Read(0, at)
	for _, en := range e.r.Log().All() {
		if en.Kind == oplog.KindRead {
			t.Fatal("read logged despite sampling 0")
		}
	}
}

func TestWriteEntriesCarryEntropy(t *testing.T) {
	e := newEnv(t, testConfig())
	at := simclock.Time(0)
	random := make([]byte, 512)
	rand.New(rand.NewSource(7)).Read(random)
	at, _ = e.r.Write(0, fill(0, 512), at)
	e.r.Write(1, random, at)
	entries := e.r.Log().All()
	if entries[0].Entropy > 0.1 {
		t.Fatalf("zero page entropy = %v", entries[0].Entropy)
	}
	if entries[1].Entropy < 7.0 {
		t.Fatalf("random page entropy = %v", entries[1].Entropy)
	}
}
