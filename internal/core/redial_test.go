package core

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/nvmeoe"
	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
)

var errLinkDropped = errors.New("flaky: link dropped")

// flakyConn lets exactly one MsgSegment frame through and then drops the
// link: the server receives and durably stores the segment, but the ack
// never reaches the device — the mid-batch disconnect window between send
// and ack. The frame header is plaintext (magic, version, type), which is
// what the trigger sniffs.
type flakyConn struct {
	net.Conn
	mu        sync.Mutex
	remaining int // writes left to flush the armed frame; -1 = not armed
	dead      bool
}

func newFlakyConn(nc net.Conn) *flakyConn { return &flakyConn{Conn: nc, remaining: -1} }

func (c *flakyConn) Write(p []byte) (int, error) {
	const frameMagic = 0x4E4F4553 // "NOES", see nvmeoe frame header
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0, errLinkDropped
	}
	arm := false
	if c.remaining < 0 {
		if len(p) == 20 && binary.LittleEndian.Uint32(p) == frameMagic && p[5] == byte(nvmeoe.MsgSegment) {
			c.remaining = 2 // ciphertext + MAC still to flush
		}
	} else if c.remaining--; c.remaining == 0 {
		arm = true // this write completes the segment frame
	}
	c.mu.Unlock()
	n, err := c.Conn.Write(p)
	if arm {
		c.mu.Lock()
		c.dead = true
		c.mu.Unlock()
	}
	return n, err
}

func (c *flakyConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead {
		return 0, errLinkDropped
	}
	return c.Conn.Read(p)
}

// TestMidBatchAckLossResumesWithoutDataLoss is the regression test for the
// send-without-ack window: the session dies after the server durably
// stores a segment but before the device harvests the ack. The durable
// frontier must NOT advance on the unharvested ack, and after the engine
// redials, the FetchHead reconcile must adopt the server's head (counting
// it as ResumeGap, not re-shipping a duplicate chain extension) so the
// run ends with zero data loss.
func TestMidBatchAckLossResumesWithoutDataLoss(t *testing.T) {
	cfg := testConfig()
	cfg.DropWhenOffline = false
	store := remote.NewStore(remote.NewMemStore())
	srv := remote.NewServer(store, testPSK)
	// The dial gate holds the redial off until the test has asserted the
	// pre-reconcile frontier (a successful redial legitimately adopts the
	// server head, which is exactly what we want to observe separately).
	var gateOpen bool
	cfg.Dial = func() (*remote.Client, error) {
		if !gateOpen {
			return nil, errors.New("gated")
		}
		return remote.Loopback(srv, testPSK, cfg.DeviceID)
	}

	dc, sc := net.Pipe()
	go srv.HandleConn(sc)
	client, err := remote.Dial(newFlakyConn(dc), testPSK, cfg.DeviceID)
	if err != nil {
		t.Fatal(err)
	}
	r := New(cfg, client)
	defer r.Close()

	// Cross the watermark: one segment ships, the server stores it, the
	// ack dies on the wire.
	at := churn(t, r, 4, 4, 0)
	at = r.DrainOffload(at)
	st := r.Stats()
	if st.OffloadErrors == 0 || st.LastOffloadError == "" {
		t.Fatalf("ack loss not surfaced: %+v", st)
	}
	if got := r.OffloadedUpTo(); got != 0 {
		t.Fatalf("durable frontier advanced to %d on an unharvested ack", got)
	}
	// The device saw the drop the instant its read failed; the server
	// session goroutine may still be persisting the segment. Wait for the
	// ingest to land before reconciling against it.
	deadline := time.Now().Add(5 * time.Second)
	for store.Head(cfg.DeviceID).NextSeq == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	serverHead := store.Head(cfg.DeviceID).NextSeq
	if serverHead == 0 {
		t.Fatal("test vehicle broken: the segment never reached the server")
	}
	if entries := r.Log().Entries(0, 1); len(entries) != 1 {
		t.Fatal("entries pruned before the ack was harvested")
	}

	// More traffic: the background duty cycle redials, reconciles against
	// FetchHead, and re-ships the requeued pins on the new session.
	gateOpen = true
	at = churn(t, r, 4, 1, at.Add(100*simclock.Millisecond)) // past any gate backoff
	at, err = r.OffloadNow(at)
	if err != nil {
		t.Fatal(err)
	}
	st = r.Stats()
	if st.Redials != 1 {
		t.Fatalf("redials = %d, want 1", st.Redials)
	}
	if st.ResumeGap != serverHead {
		t.Fatalf("resume gap = %d, want the %d durable-but-unacked entries", st.ResumeGap, serverHead)
	}
	if st.DroppedPages != 0 {
		t.Fatalf("data dropped across the disconnect: %+v", st)
	}
	if st.LastOffloadError != "" {
		t.Fatalf("sticky error survived the post-redial ack: %q", st.LastOffloadError)
	}

	// Zero data loss: the remote chain covers the full local history,
	// verifies end to end, and every round's content is still reachable.
	h := store.Head(cfg.DeviceID)
	if h.NextSeq != r.Log().NextSeq() {
		t.Fatalf("remote head %d, local log %d", h.NextSeq, r.Log().NextSeq())
	}
	if err := oplog.VerifyChain(store.Entries(cfg.DeviceID, 0, h.NextSeq), [32]byte{}); err != nil {
		t.Fatalf("chain broken across the disconnect: %v", err)
	}
	// Round k wrote LPNs 0..3 at seqs 4k..4k+3: fills 1..4 from the first
	// churn, then 1 again from the post-disconnect round.
	for round, want := range []byte{1, 2, 3, 4, 1} {
		seq := uint64(4*round) + 1
		data, ok, err := r.ReadVersionBefore(0, seq, at)
		if err != nil || !ok || data[0] != want {
			t.Fatalf("round %d version lost: %v ok=%v got=%d want=%d", round, err, ok, data[0], want)
		}
	}
}

// TestRedialBackoffExponential drives the redial schedule on the simulated
// clock: attempts must back off exponentially from RedialBackoff, cap at
// RedialBackoffMax, resume from FetchHead on success, and leave the sticky
// LastOffloadError in place until the first post-redial ack clears it.
func TestRedialBackoffExponential(t *testing.T) {
	cfg := testConfig()
	cfg.DropWhenOffline = false
	cfg.RedialBackoff = simclock.Millisecond
	cfg.RedialBackoffMax = 4 * simclock.Millisecond
	store := remote.NewStore(remote.NewMemStore())
	srv := remote.NewServer(store, testPSK)
	dials, failUntil := 0, 4
	cfg.Dial = func() (*remote.Client, error) {
		dials++
		if dials <= failUntil {
			return nil, errors.New("server unreachable")
		}
		return remote.Loopback(srv, testPSK, cfg.DeviceID)
	}

	broken, err := remote.Loopback(srv, testPSK, cfg.DeviceID)
	if err != nil {
		t.Fatal(err)
	}
	broken.Close() // attached but dead: every push fails
	r := New(cfg, broken)
	defer r.Close()

	// Cross the watermark so staging fails and the session is marked dead.
	at := churn(t, r, 4, 4, 0)
	at = r.DrainOffload(at) // applies the failure, then attempts dial #1
	if dials != 1 {
		t.Fatalf("dials after first poll = %d, want 1", dials)
	}
	if r.Stats().LastOffloadError == "" {
		t.Fatal("outage not surfaced")
	}
	t0 := at
	// The schedule after attempt k fails: next attempt at t0 + sum of
	// backoffs 1,2,4,4(cap) ms. Polls strictly before each boundary must
	// not dial.
	steps := []struct {
		at    simclock.Duration
		dials int
	}{
		{simclock.Millisecond - 1, 1}, // before t0+1ms: no attempt
		{simclock.Millisecond, 2},     // attempt #2; next backoff 2ms
		{3*simclock.Millisecond - 1, 2},
		{3 * simclock.Millisecond, 3}, // attempt #3; next backoff 4ms
		{7*simclock.Millisecond - 1, 3},
		{7 * simclock.Millisecond, 4}, // attempt #4; backoff capped at 4ms
		{11*simclock.Millisecond - 1, 4},
		{11 * simclock.Millisecond, 5}, // attempt #5 succeeds
	}
	for i, s := range steps {
		r.DrainOffload(t0.Add(s.at))
		if dials != s.dials {
			t.Fatalf("step %d (t0+%v): dials = %d, want %d", i, s.at, dials, s.dials)
		}
	}
	st := r.Stats()
	if st.RedialAttempts != 5 || st.Redials != 1 {
		t.Fatalf("attempts/redials = %d/%d, want 5/1", st.RedialAttempts, st.Redials)
	}
	// The session is back, resumed from the (empty) server head, but the
	// sticky error stands until a durable ack proves the path healthy.
	if st.ResumeGap != 0 {
		t.Fatalf("resume gap = %d on an empty server", st.ResumeGap)
	}
	if st.LastOffloadError == "" {
		t.Fatal("sticky error cleared by the redial itself, not by an ack")
	}

	at = t0.Add(12 * simclock.Millisecond)
	at, err = r.OffloadNow(at)
	if err != nil {
		t.Fatal(err)
	}
	st = r.Stats()
	if st.LastOffloadError != "" {
		t.Fatalf("sticky error survived the first post-redial ack: %q", st.LastOffloadError)
	}
	if st.OffloadSegments == 0 {
		t.Fatal("backlog did not ship after redial")
	}
	if head := store.Head(cfg.DeviceID).NextSeq; head != r.Log().NextSeq() {
		t.Fatalf("remote head %d, local log %d", head, r.Log().NextSeq())
	}
	_ = at
}

// TestRedialWithoutDialFactory: with no Dial configured the old contract
// holds — the session stays dead until a caller attaches a new client.
func TestRedialWithoutDialFactory(t *testing.T) {
	cfg := testConfig()
	cfg.DropWhenOffline = false
	store := remote.NewStore(remote.NewMemStore())
	srv := remote.NewServer(store, testPSK)
	broken, err := remote.Loopback(srv, testPSK, cfg.DeviceID)
	if err != nil {
		t.Fatal(err)
	}
	broken.Close()
	r := New(cfg, broken)
	defer r.Close()
	at := churn(t, r, 4, 4, 0)
	at = r.DrainOffload(at)
	if st := r.Stats(); st.RedialAttempts != 0 || st.LastOffloadError == "" {
		t.Fatalf("unexpected redial behaviour without a factory: %+v", st)
	}
	good, err := remote.Loopback(srv, testPSK, cfg.DeviceID)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	r.AttachRemote(good)
	if _, err := r.OffloadNow(at); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.LastOffloadError != "" {
		t.Fatalf("manual attach did not recover: %q", st.LastOffloadError)
	}
}

// TestOffloadNowWaitsOutRedialBackoff: an administrator-driven drain that
// hits a dead session with the next redial merely scheduled must wait out
// the backoff in simulated time (Stats().RedialWaitTime) and finish on
// the new session — the path a fleet server failover rides — while a
// permanently unreachable server still surfaces an error in bounded
// simulated time.
func TestOffloadNowWaitsOutRedialBackoff(t *testing.T) {
	cfg := testConfig()
	cfg.DropWhenOffline = false
	cfg.RedialBackoff = simclock.Millisecond
	cfg.RedialBackoffMax = 4 * simclock.Millisecond
	store := remote.NewStore(remote.NewMemStore())
	srv := remote.NewServer(store, testPSK)
	dials, failUntil := 0, 3
	cfg.Dial = func() (*remote.Client, error) {
		dials++
		if dials <= failUntil {
			return nil, errors.New("server rebooting")
		}
		return remote.Loopback(srv, testPSK, cfg.DeviceID)
	}

	broken, err := remote.Loopback(srv, testPSK, cfg.DeviceID)
	if err != nil {
		t.Fatal(err)
	}
	broken.Close()
	r := New(cfg, broken)
	defer r.Close()

	at := churn(t, r, 4, 4, 0)
	done, err := r.OffloadNow(at)
	if err != nil {
		t.Fatalf("OffloadNow failed instead of waiting out the backoff: %v", err)
	}
	st := r.Stats()
	if st.Redials != 1 || st.RedialAttempts != uint64(failUntil)+1 {
		t.Fatalf("redials/attempts = %d/%d, want 1/%d", st.Redials, st.RedialAttempts, failUntil+1)
	}
	if st.RedialWaitTime <= 0 {
		t.Fatal("no simulated backoff wait was accounted")
	}
	if waited := done.Sub(at); waited < st.RedialWaitTime {
		t.Fatalf("returned clock advanced %v, less than the %v waited", waited, st.RedialWaitTime)
	}
	if head := store.Head(cfg.DeviceID).NextSeq; head != r.Log().NextSeq() {
		t.Fatalf("remote head %d, local log %d after the waited drain", head, r.Log().NextSeq())
	}
	if st.DroppedPages != 0 {
		t.Fatalf("data dropped across the outage: %+v", st)
	}

	// A cluster with no live server must not wait forever: the drain
	// fails after a bounded number of waited backoffs.
	cfg2 := testConfig()
	cfg2.DropWhenOffline = false
	cfg2.RedialBackoff = simclock.Millisecond
	cfg2.RedialBackoffMax = 4 * simclock.Millisecond
	cfg2.Dial = func() (*remote.Client, error) {
		return nil, errors.New("no live server")
	}
	broken2, err := remote.Loopback(srv, testPSK, cfg2.DeviceID)
	if err != nil {
		t.Fatal(err)
	}
	broken2.Close()
	r2 := New(cfg2, broken2)
	defer r2.Close()
	at2 := churn(t, r2, 4, 4, 0)
	if _, err := r2.OffloadNow(at2); err == nil {
		t.Fatal("OffloadNow succeeded against a permanently dead cluster")
	}
	if w := r2.Stats().RedialWaitTime; w > simclock.Duration(maxRedialWaits)*cfg2.RedialBackoffMax {
		t.Fatalf("waited %v, beyond the bounded schedule", w)
	}
}
