package remote

import (
	"fmt"
	"testing"

	"repro/internal/oplog"
	"repro/internal/simclock"
)

// buildPageSegments builds n chain-valid segments whose k pages each land
// on distinct LPNs (unlike buildSegments' 8-LPN wrap), so image streams
// cover a wide LPN range.
func buildPageSegments(deviceID uint64, n, k int) []*oplog.Segment {
	l := oplog.New()
	var segs []*oplog.Segment
	for s := 0; s < n; s++ {
		seg := &oplog.Segment{DeviceID: deviceID, FirstSeq: l.NextSeq()}
		for i := 0; i < k; i++ {
			lpn := uint64(s*k + i)
			data := []byte(fmt.Sprintf("page-%d", lpn))
			e := l.Append(oplog.KindWrite, simclock.Time(s*k+i), lpn, 0, lpn, 1, oplog.HashData(data))
			seg.Entries = append(seg.Entries, e)
			seg.Pages = append(seg.Pages, oplog.PageRecord{
				LPN: lpn, WriteSeq: e.Seq, StaleSeq: e.Seq + 1,
				Hash: oplog.HashData(data), Data: data,
			})
		}
		seg.LastSeq = l.NextSeq()
		segs = append(segs, seg)
	}
	return segs
}

// TestImageRangeChunks walks the store's image in chunks and checks the
// walk reassembles exactly the monolithic image, in LPN order.
func TestImageRangeChunks(t *testing.T) {
	st := NewStore(NewMemStore())
	for _, seg := range buildPageSegments(1, 4, 10) {
		if err := st.AppendSegment(seg); err != nil {
			t.Fatal(err)
		}
	}
	want := st.Image(1, 100)
	var got []oplog.PageRecord
	from := uint64(0)
	for {
		pages, next, more := st.ImageRange(1, from, ^uint64(0), 100, 7, nil)
		got = append(got, pages...)
		if !more || len(pages) == 0 {
			break
		}
		from = next
	}
	if len(got) != len(want) {
		t.Fatalf("chunked walk returned %d pages, monolith %d", len(got), len(want))
	}
	for i := range got {
		if got[i].LPN != want[i].LPN || got[i].WriteSeq != want[i].WriteSeq {
			t.Fatalf("page %d: chunked %+v, monolith %+v", i, got[i], want[i])
		}
	}
	// A bounded range returns only its half-open LPN window.
	pages, _, _ := st.ImageRange(1, 5, 9, 100, 100, nil)
	if len(pages) != 4 || pages[0].LPN != 5 || pages[3].LPN != 8 {
		t.Fatalf("bounded range = %d pages starting %d", len(pages), pages[0].LPN)
	}
}

// TestFetchImageStreamEndToEnd drives the chunked image stream over a real
// session and checks chunk ordering, the trailer, resume-from-LPN, and the
// server's restore ledger.
func TestFetchImageStreamEndToEnd(t *testing.T) {
	st := NewStore(NewMemStore())
	srv := NewServer(st, psk)
	for _, seg := range buildPageSegments(5, 4, 10) {
		if err := st.AppendSegment(seg); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := Loopback(srv, psk, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var streamed []oplog.PageRecord
	var chunks int
	end, err := cl.FetchImageStream(0, 100, 8, func(pages []oplog.PageRecord, wire, logical int) error {
		if wire <= 0 || logical <= 0 || wire > logical+64 {
			return fmt.Errorf("implausible chunk sizes wire=%d logical=%d", wire, logical)
		}
		chunks++
		streamed = append(streamed, pages...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if end.Pages != 40 || end.Chunks != uint64(chunks) || chunks != 5 {
		t.Fatalf("stream end = %+v over %d chunks", end, chunks)
	}
	for i := 1; i < len(streamed); i++ {
		if streamed[i].LPN <= streamed[i-1].LPN {
			t.Fatalf("stream not LPN-ordered at %d", i)
		}
	}
	if end.NextLPN != streamed[len(streamed)-1].LPN+1 {
		t.Fatalf("NextLPN = %d, want %d", end.NextLPN, streamed[len(streamed)-1].LPN+1)
	}

	// Resume: a stream opened at LPN 25 serves only the tail.
	end2, err := cl.FetchImageStream(25, 100, 8, func(pages []oplog.PageRecord, wire, logical int) error {
		for _, p := range pages {
			if p.LPN < 25 {
				return fmt.Errorf("resumed stream re-served lpn %d", p.LPN)
			}
		}
		return nil
	})
	if err != nil || end2.Pages != 15 {
		t.Fatalf("resumed stream = %+v, %v", end2, err)
	}

	rs := srv.RecoveryStats(5)
	if rs.Streams != 2 || rs.Resumes != 1 || rs.Pages != 55 {
		t.Fatalf("recovery stats = %+v", rs)
	}
	if rs.BytesWire == 0 || rs.BytesWire >= rs.BytesLogical {
		t.Fatalf("restore wire not compressed: %+v", rs)
	}

	// The session is still usable for ordinary requests after streaming.
	if h, err := cl.Head(); err != nil || h.NextSeq != 40 {
		t.Fatalf("post-stream head = %+v, %v", h, err)
	}
}

// TestFetchRange retrieves a targeted LPN window and the ledger counts it.
func TestFetchRange(t *testing.T) {
	st := NewStore(NewMemStore())
	srv := NewServer(st, psk)
	for _, seg := range buildPageSegments(3, 2, 10) {
		if err := st.AppendSegment(seg); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := Loopback(srv, psk, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	pages, err := cl.FetchRange(4, 12, 100)
	if err != nil || len(pages) != 8 || pages[0].LPN != 4 {
		t.Fatalf("FetchRange = %d pages, %v", len(pages), err)
	}
	if rs := srv.RecoveryStats(3); rs.RangeFetches != 1 || rs.Pages != 8 {
		t.Fatalf("recovery stats = %+v", rs)
	}
}

// TestRecoveryLinkFairShare: with k sessions open, a chunk costs k times
// its solo transfer time plus RTT — the NIC is split fairly.
func TestRecoveryLinkFairShare(t *testing.T) {
	l := NewRecoveryLink(simclock.Microsecond, 1000) // 1 GB/s, 1µs RTT
	const bytes = 1e6                                // 1 MB: 1ms solo
	rel1 := l.Open()
	solo := l.ChunkTime(bytes)
	if want := simclock.Microsecond + simclock.Millisecond; solo != want {
		t.Fatalf("solo chunk = %v, want %v", solo, want)
	}
	rel2 := l.Open()
	rel3 := l.Open()
	if got := l.ChunkTime(bytes); got != simclock.Microsecond+3*simclock.Millisecond {
		t.Fatalf("3-way chunk = %v", got)
	}
	rel2()
	rel2() // release is idempotent
	rel3()
	if got := l.ChunkTime(bytes); got != solo {
		t.Fatalf("share not returned after release: %v", got)
	}
	rel1()
	if l.Active() != 0 || l.PeakSessions() != 3 {
		t.Fatalf("active=%d peak=%d", l.Active(), l.PeakSessions())
	}
	// An unconfigured link still prices transfers (defaults), and the
	// zero value must behave exactly like NewRecoveryLink(0, 0) — the
	// contract the arbiter delegation shim must not drift from.
	var def RecoveryLink
	if def.ChunkTime(1<<20) <= 0 {
		t.Fatal("default link priced a chunk at zero")
	}
	ctor := NewRecoveryLink(0, 0)
	if got, want := def.ChunkTime(1<<20), ctor.ChunkTime(1<<20); got != want {
		t.Fatalf("zero-value ChunkTime %v != NewRecoveryLink(0,0) %v", got, want)
	}
	rel := def.Open()
	relC := ctor.Open()
	if got, want := def.ChunkTime(1<<20), ctor.ChunkTime(1<<20); got != want {
		t.Fatalf("zero-value open-session ChunkTime %v != constructor's %v", got, want)
	}
	rel()
	relC()
	if def.Active() != ctor.Active() || def.PeakSessions() != ctor.PeakSessions() {
		t.Fatalf("zero-value session ledger (%d/%d) != constructor's (%d/%d)",
			def.Active(), def.PeakSessions(), ctor.Active(), ctor.PeakSessions())
	}
	// The defaults are the arbiter defaults: one constant set, not two.
	if def.Arbiter().LineMBps() != DefaultRecoveryMBps || def.Arbiter().RTT() != DefaultRecoveryRTT {
		t.Fatal("zero-value link did not resolve the documented defaults")
	}
}
