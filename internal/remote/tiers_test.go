package remote

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/nvmeoe"
	"repro/internal/oplog"
	"repro/internal/simclock"
)

// strongS3 returns an S3 model with strongly-consistent LIST so the
// generic CRUD contract applies unchanged.
func strongS3() *S3Sim {
	cfg := DefaultS3Config()
	cfg.ListLagOps = 0
	return NewS3Sim(cfg)
}

func TestS3SimCRUD(t *testing.T) {
	testObjectStore(t, strongS3())
}

func TestBackendRegistry(t *testing.T) {
	for _, name := range []string{"mem", "dir", "s3sim"} {
		os, err := OpenBackend(name, BackendOptions{Dir: t.TempDir()})
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		if err := os.Put("k", []byte("v")); err != nil {
			t.Fatalf("%s put: %v", name, err)
		}
		got, err := os.Get("k")
		if err != nil || !bytes.Equal(got, []byte("v")) {
			t.Fatalf("%s get = %q, %v", name, got, err)
		}
	}
	if _, err := OpenBackend("dir", BackendOptions{}); err == nil {
		t.Fatal("dir backend without a root directory accepted")
	}
	if _, err := OpenBackend("gopher-cloud", BackendOptions{}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// Regression: DirStore must map every flavour of missing path to
// ErrNotFound exactly as MemStore does — including a key whose path
// crosses an existing regular file (ENOTDIR, not ErrNotExist, from the
// OS) — and Delete of any missing key must be idempotent.
func TestDirStoreNotFoundConsistency(t *testing.T) {
	ds, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("dev/1", []byte("blob")); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Get("dev/1/seg/000"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get across file = %v, want ErrNotFound", err)
	}
	if _, err := ds.Get("dev/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}
	if err := ds.Delete("dev/1/seg/000"); err != nil {
		t.Fatalf("Delete across file = %v, want nil", err)
	}
	if err := ds.Delete("dev/missing"); err != nil {
		t.Fatalf("Delete missing = %v, want nil", err)
	}
}

func TestS3SimMultipart(t *testing.T) {
	cfg := DefaultS3Config()
	cfg.PartSize = 1024
	cfg.PartLanes = 2
	cfg.ListLagOps = 0
	s := NewS3Sim(cfg)

	small := make([]byte, 512)
	if err := s.Put("small", small); err != nil {
		t.Fatal(err)
	}
	st := s.TierStats()
	if st.MultipartUploads != 0 || st.Parts != 0 {
		t.Fatalf("small put went multipart: %+v", st)
	}
	wantUSD := cfg.PutUSD
	wantLat := cfg.FirstByte + simclock.Duration(float64(len(small))/(cfg.MBps*1e6)*float64(simclock.Second))
	if math.Abs(st.RequestUSD-wantUSD) > 1e-12 || st.PutLatency != wantLat {
		t.Fatalf("small put cost/latency = %v/%v, want %v/%v", st.RequestUSD, st.PutLatency, wantUSD, wantLat)
	}

	big := make([]byte, 4*1024+512) // 5 parts at 1 KiB
	if err := s.Put("big", big); err != nil {
		t.Fatal(err)
	}
	st = s.TierStats()
	if st.MultipartUploads != 1 || st.Parts != 5 {
		t.Fatalf("multipart = %d uploads / %d parts, want 1/5", st.MultipartUploads, st.Parts)
	}
	// 5 parts + initiate + complete, and 3 lane-rounds of first-byte.
	wantUSD += float64(5+2) * cfg.PutUSD
	wantLat += cfg.FirstByte*simclock.Duration(2+3) + simclock.Duration(float64(len(big))/(cfg.MBps*1e6)*float64(simclock.Second))
	if math.Abs(st.RequestUSD-wantUSD) > 1e-12 || st.PutLatency != wantLat {
		t.Fatalf("multipart cost/latency = %v/%v, want %v/%v", st.RequestUSD, st.PutLatency, wantUSD, wantLat)
	}
	if got, err := s.Get("big"); err != nil || !bytes.Equal(got, big) {
		t.Fatalf("multipart readback: %v", err)
	}
	if st.BytesStored != int64(len(small)+len(big)) || s.Size() != st.BytesStored {
		t.Fatalf("stored bytes = %d", st.BytesStored)
	}
	if usd := s.MonthlyStorageUSD(); usd <= 0 {
		t.Fatalf("monthly storage cost = %v, want > 0", usd)
	}
}

func TestS3SimEventualList(t *testing.T) {
	cfg := DefaultS3Config()
	cfg.ListLagOps = 2
	s := NewS3Sim(cfg)

	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	// Read-after-write holds even while LIST lags.
	if _, err := s.Get("a"); err != nil {
		t.Fatalf("fresh key unreadable: %v", err)
	}
	if keys, _ := s.List(""); len(keys) != 0 {
		t.Fatalf("fresh key already listed: %v", keys)
	}
	if n := s.PendingListKeys(); n != 1 {
		t.Fatalf("pending = %d, want 1", n)
	}
	// Two more mutating ops age "a" into visibility; "b" and "c" still lag.
	s.Put("b", []byte("2"))
	s.Put("c", []byte("3"))
	keys, _ := s.List("")
	if len(keys) != 1 || keys[0] != "a" {
		t.Fatalf("aged listing = %v, want [a]", keys)
	}
	s.Settle()
	if keys, _ := s.List(""); len(keys) != 3 {
		t.Fatalf("settled listing = %v, want 3 keys", keys)
	}
	if n := s.PendingListKeys(); n != 0 {
		t.Fatalf("pending after settle = %d", n)
	}
	// Overwriting an already-listed key must not un-list it: the lag
	// window only governs keys LIST has never shown.
	if err := s.Put("a", []byte("1v2")); err != nil {
		t.Fatal(err)
	}
	if keys, _ := s.List(""); len(keys) != 3 {
		t.Fatalf("overwrite un-listed a visible key: %v", keys)
	}
}

// TestReloadMixedBlobs rebuilds a store whose object store holds a mix of
// legacy bare-marshal segment blobs (pre-codec sessions) and codec-framed
// compressed ones: the chain must verify end to end across the format
// boundary.
func TestReloadMixedBlobs(t *testing.T) {
	segs := buildSegments(1, 4, 10)
	blobs := NewMemStore()
	var wantLogical, wantStored int64
	for i, seg := range segs {
		key := fmt.Sprintf("dev/1/seg/%020d", seg.FirstSeq)
		raw := seg.Marshal()
		if i%2 == 0 {
			// Legacy blob: stored exactly as marshaled.
			blobs.Put(key, raw)
			wantLogical += int64(len(raw))
			wantStored += int64(len(raw))
		} else {
			blob := nvmeoe.EncodeSegmentBlob(raw)
			blobs.Put(key, blob)
			wantLogical += int64(len(raw))
			wantStored += int64(len(blob))
		}
	}
	st := NewStore(blobs)
	if err := st.Reload(); err != nil {
		t.Fatal(err)
	}
	if got := st.Head(1).NextSeq; got != 40 {
		t.Fatalf("head = %d, want 40", got)
	}
	ds := st.DeviceStats(1)
	if ds.Segments != 4 || ds.BytesLogical != wantLogical || ds.BytesStored != wantStored {
		t.Fatalf("stats = %+v, want logical %d stored %d", ds, wantLogical, wantStored)
	}
	// Both formats fetch and inflate transparently.
	for i := range segs {
		got, err := st.FetchSegment(1, i)
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if !bytes.Equal(got.Marshal(), segs[i].Marshal()) {
			t.Fatalf("fetch %d: segment mismatch", i)
		}
	}
	if _, err := st.FetchSegment(1, len(segs)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("fetch past end = %v", err)
	}
	if _, err := st.FetchSegment(9, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("fetch unknown device = %v", err)
	}
}

// TestAppendCompressesAtRest: segments ingested through the normal path
// land codec-framed, smaller than their logical size.
func TestAppendCompressesAtRest(t *testing.T) {
	segs := buildSegments(1, 2, 10)
	for i := range segs {
		for j := range segs[i].Pages {
			// Compressible page bodies (the builder's short strings stay
			// under the deflate floor).
			data := bytes.Repeat([]byte("ransom"), 512)
			segs[i].Pages[j].Data = data
			segs[i].Pages[j].Hash = oplog.HashData(data)
		}
	}
	blobs := NewMemStore()
	st := NewStore(blobs)
	for _, seg := range segs {
		if err := st.AppendSegment(seg); err != nil {
			t.Fatal(err)
		}
	}
	ds := st.DeviceStats(1)
	if ds.BytesStored >= ds.BytesLogical {
		t.Fatalf("stored %d >= logical %d: wire compression missing", ds.BytesStored, ds.BytesLogical)
	}
	keys, _ := blobs.List("dev/1/seg/")
	for _, k := range keys {
		b, _ := blobs.Get(k)
		if !nvmeoe.IsSegmentBlob(b) {
			t.Fatalf("%s stored without codec frame", k)
		}
	}
}

// TestReloadSettledOnS3Sim: on an eventually-consistent tier a plain
// Reload sees a stale listing and rebuilds short of the chain head;
// ReloadSettled waits out the window and recovers everything.
func TestReloadSettledOnS3Sim(t *testing.T) {
	cfg := DefaultS3Config()
	cfg.ListLagOps = 3
	s3 := NewS3Sim(cfg)
	st := NewStore(s3)
	segs := buildSegments(1, 4, 10)
	for _, seg := range segs {
		if err := st.AppendSegment(seg); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Reload(); err != nil {
		t.Fatalf("stale reload: %v", err)
	}
	if got := st.Head(1).NextSeq; got >= 40 {
		t.Fatalf("stale listing rebuilt full head %d; consistency lag not modeled", got)
	}
	if err := st.ReloadSettled(); err != nil {
		t.Fatal(err)
	}
	if got := st.Head(1).NextSeq; got != 40 {
		t.Fatalf("settled head = %d, want 40", got)
	}
}

func TestTierProfilesAndPutServiceTime(t *testing.T) {
	memP, s3P := Profile("mem"), Profile("s3sim")
	if s3P.OffloadQueueDepth <= memP.OffloadQueueDepth {
		t.Fatalf("cloud tier queue %d not deeper than local %d", s3P.OffloadQueueDepth, memP.OffloadQueueDepth)
	}
	if s3P.OffloadHighWater >= memP.OffloadHighWater {
		t.Fatalf("cloud tier high water %v not earlier than local %v", s3P.OffloadHighWater, memP.OffloadHighWater)
	}
	if p := Profile("no-such-tier"); p.OffloadQueueDepth <= 0 {
		t.Fatalf("unknown tier got empty profile %+v", p)
	}

	s3 := NewS3Sim(DefaultS3Config())
	small := s3.PutServiceTime(1 << 10)
	if small < DefaultS3Config().FirstByte {
		t.Fatalf("small put service %v below first-byte floor", small)
	}
	big := s3.PutServiceTime(64 << 20) // multipart territory
	if big <= small {
		t.Fatalf("multipart put %v not above small put %v", big, small)
	}
	// Store surfaces the model; free tiers report zero.
	if d := NewStore(s3).PutServiceTime(1 << 10); d != small {
		t.Fatalf("store-surfaced service time %v != tier's %v", d, small)
	}
	if d := NewStore(NewMemStore()).PutServiceTime(1 << 10); d != 0 {
		t.Fatalf("mem tier service time = %v, want 0", d)
	}
}
