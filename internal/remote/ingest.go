package remote

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/bufpool"
	"repro/internal/nvmeoe"
	"repro/internal/oplog"
)

// The server-side ingest lane: the mirror image of the device's encode
// lane. Connection goroutines take codec blobs off the wire and hand them
// to a pooled decode-worker lane; workers inflate into pooled buffers,
// verify, append to the store (which runs the streaming detection
// subscribers), and write the durability ack. Jobs are sharded to workers
// by device ID, so one device's segments decode on one worker in arrival
// order — chain verification and Subscribe hooks see exactly the order the
// wire carried — while different devices decode in parallel.

// ServerConfig tunes the ingest path. Set it before the server accepts its
// first connection; the lane is sized lazily when the first session needs
// it.
type ServerConfig struct {
	// DecodeWorkers sizes the decode lane shared by every session:
	// 0 uses GOMAXPROCS, a negative value disables the lane and decodes
	// inline on each connection goroutine (the pre-lane baseline the
	// ingest experiment compares against).
	DecodeWorkers int
	// DecodeQueueDepth is each worker's job-queue capacity (default 1024).
	// A full queue backpressures the connection goroutine — and, through
	// the transport, the device. Pipelining clients must keep their
	// in-flight window well below this depth, or a synchronous in-memory
	// transport (net.Pipe) can deadlock: the client blocked writing while
	// the worker is blocked writing an ack the client is not reading.
	DecodeQueueDepth int
}

// IngestStats ledgers the server-side ingest path for one device, the
// ingest mirror of RecoveryStats. Wall-clock durations, not simulated
// time: server-side decode and detection are real compute.
type IngestStats struct {
	// Segments and Errors count accepted and rejected segment pushes.
	Segments uint64
	Errors   uint64
	// BytesWire is codec-framed bytes as received; BytesLogical their
	// decoded size. The ratio is the ingest-side decompression expansion.
	BytesWire    uint64
	BytesLogical uint64
	// DecodeTime is wall time the lane spent inflating and unmarshaling
	// this device's segments.
	DecodeTime time.Duration
	// DetectTime is wall time spent in store subscribers (the streaming
	// detection pipeline) for this device, read from the store's ledger.
	DetectTime time.Duration
	// DecodeQueuePeak is the deepest decode backlog (segments enqueued but
	// not yet fully ingested) any session of this device reached.
	DecodeQueuePeak int
}

type ingestLedger struct {
	mu sync.Mutex
	st IngestStats
}

// IngestStats returns the ingest-side ledger for one device.
func (s *Server) IngestStats(deviceID uint64) IngestStats {
	s.mu.Lock()
	l := s.ingest[deviceID]
	s.mu.Unlock()
	var st IngestStats
	if l != nil {
		l.mu.Lock()
		st = l.st
		l.mu.Unlock()
	}
	if s.Store != nil {
		st.DetectTime = s.Store.SubscriberTime(deviceID)
	}
	return st
}

// IngestTotals sums the per-device ingest ledgers into one server-wide
// view — the per-server row of the fleet scaling curve. DetectTime is
// omitted (the store's subscriber ledger is per device across the whole
// cluster, and a failed-over device would be double-counted); read it per
// device via IngestStats instead.
func (s *Server) IngestTotals() IngestStats {
	s.mu.Lock()
	ledgers := make([]*ingestLedger, 0, len(s.ingest))
	for _, l := range s.ingest {
		ledgers = append(ledgers, l)
	}
	s.mu.Unlock()
	var tot IngestStats
	for _, l := range ledgers {
		l.mu.Lock()
		st := l.st
		l.mu.Unlock()
		tot.Segments += st.Segments
		tot.Errors += st.Errors
		tot.BytesWire += st.BytesWire
		tot.BytesLogical += st.BytesLogical
		tot.DecodeTime += st.DecodeTime
		if st.DecodeQueuePeak > tot.DecodeQueuePeak {
			tot.DecodeQueuePeak = st.DecodeQueuePeak
		}
	}
	return tot
}

// ledger returns (creating on first contact) the device's ingest ledger.
func (s *Server) ledger(deviceID uint64) *ingestLedger {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ingest == nil {
		s.ingest = map[uint64]*ingestLedger{}
	}
	l := s.ingest[deviceID]
	if l == nil {
		l = &ingestLedger{}
		s.ingest[deviceID] = l
	}
	return l
}

// decodeJob is one wire blob awaiting decode. body is freshly owned: the
// frame layer returns a private buffer per ReadMsg, so handing it to a
// worker is safe.
type decodeJob struct {
	sess *session
	body []byte
}

// decodeLane is the pooled decode-worker pool. Its lifetime follows the
// sessions that use it: the first authenticated session spins the workers
// up, the last one out closes the queues and the workers drain and exit —
// an idle server keeps no lane goroutines.
type decodeLane struct {
	queues []chan decodeJob
	refs   int // active sessions, guarded by Server.mu
}

// acquireLane returns the running lane (starting it if needed) and takes a
// session reference, or nil when the config says decode inline.
func (s *Server) acquireLane() *decodeLane {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Config.DecodeWorkers < 0 {
		return nil
	}
	if s.lane == nil {
		workers := s.Config.DecodeWorkers
		if workers == 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		depth := s.Config.DecodeQueueDepth
		if depth <= 0 {
			depth = 1024
		}
		l := &decodeLane{queues: make([]chan decodeJob, workers)}
		for i := range l.queues {
			l.queues[i] = make(chan decodeJob, depth)
			go laneWorker(l.queues[i])
		}
		s.lane = l
	}
	s.lane.refs++
	return s.lane
}

// releaseLane drops a session reference; the last release closes the
// queues (queued jobs still drain) and forgets the lane.
func (s *Server) releaseLane(l *decodeLane) {
	if l == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	l.refs--
	if l.refs == 0 && s.lane == l {
		for _, q := range l.queues {
			close(q)
		}
		s.lane = nil
	}
}

// enqueue hands a segment body to the device's worker. Sharding by device
// ID keeps one device's jobs on one queue — per-device FIFO — while the
// fleet spreads across workers.
func (l *decodeLane) enqueue(ss *session, body []byte) {
	l.queues[int(ss.deviceID%uint64(len(l.queues)))] <- decodeJob{sess: ss, body: body}
}

func laneWorker(q chan decodeJob) {
	for job := range q {
		job.sess.ingestSegment(job.body)
		job.sess.done()
	}
}

// session is one authenticated device connection's server-side state.
type session struct {
	srv      *Server
	nc       net.Conn
	conn     *nvmeoe.Conn
	deviceID uint64
	lane     *decodeLane // nil: decode inline on the connection goroutine
	led      *ingestLedger

	// The nvmeoe.Conn is not safe for concurrent writers; lane workers
	// write acks while the connection goroutine writes fetch replies, so
	// every server-side write goes through writeMu. (The idle barrier
	// below already keeps those phases apart; the mutex makes the safety
	// local instead of global.)
	writeMu sync.Mutex

	pendMu  sync.Mutex
	pending int // segments enqueued to the lane, not yet fully ingested
	idle    sync.Cond
}

func newSession(s *Server, nc net.Conn, conn *nvmeoe.Conn, deviceID uint64) *session {
	ss := &session{srv: s, nc: nc, conn: conn, deviceID: deviceID, led: s.ledger(deviceID)}
	ss.idle.L = &ss.pendMu
	return ss
}

func (ss *session) writeMsg(t nvmeoe.MsgType, payload []byte) error {
	ss.writeMu.Lock()
	defer ss.writeMu.Unlock()
	return ss.conn.WriteMsg(t, payload)
}

func (ss *session) sendErr(code uint32, err error) error {
	return ss.writeMsg(nvmeoe.MsgError, (&nvmeoe.ErrorMsg{Code: code, Text: err.Error()}).Marshal())
}

// begin registers one in-flight decode job, returning the backlog depth
// for the queue-peak ledger.
func (ss *session) begin() int {
	ss.pendMu.Lock()
	ss.pending++
	p := ss.pending
	ss.pendMu.Unlock()
	ss.srv.noteQueue(1)
	return p
}

func (ss *session) done() {
	ss.srv.noteQueue(-1)
	ss.pendMu.Lock()
	ss.pending--
	if ss.pending == 0 {
		ss.idle.Broadcast()
	}
	ss.pendMu.Unlock()
}

// waitIdle blocks until every lane job of this session has completed. The
// connection goroutine calls it before any non-segment dispatch, so a
// checkpoint, fetch, or head read ordered after a burst of segments on the
// wire still observes their effects — the lane reorders nothing a client
// can see — and again at session teardown so in-flight acks flush.
func (ss *session) waitIdle() {
	ss.pendMu.Lock()
	for ss.pending > 0 {
		ss.idle.Wait()
	}
	ss.pendMu.Unlock()
}

// decodeBlob is the lane's codec step: inflate (or copy) the wire blob
// into a pooled buffer sized by the blob's logical-size header. This is
// the step the alloc-regression test pins at 0 allocs/op — the ingest
// mirror of the device lane's encodeStaged.
func decodeBlob(buf *bufpool.Buf, body []byte) ([]byte, error) {
	return nvmeoe.AppendDecodeSegmentBlob(buf.B[:0], body)
}

// ingestSegment is the whole per-segment ingest: pooled decode, verify,
// append (running detection subscribers), ack. It runs on a lane worker,
// or on the connection goroutine when the lane is disabled.
func (ss *session) ingestSegment(body []byte) {
	queued := 0
	if ss.lane != nil {
		ss.pendMu.Lock()
		queued = ss.pending
		ss.pendMu.Unlock()
	}
	start := time.Now()
	buf := bufpool.Get(nvmeoe.SegmentBlobLogicalSize(body))
	raw, err := decodeBlob(buf, body)
	var seg *oplog.Segment
	logical := 0
	if err == nil {
		logical = len(raw)
		seg, err = oplog.UnmarshalSegment(raw)
	}
	buf.Release() // UnmarshalSegment copies page data; the buffer is done
	decodeDur := time.Since(start)
	if err == nil && seg.DeviceID != ss.deviceID {
		err = fmt.Errorf("segment for device %d on session of device %d", seg.DeviceID, ss.deviceID)
	}
	if err == nil {
		// Persist the wire bytes as received: compressed on the wire is
		// compressed at rest, and the server never re-compresses.
		err = ss.srv.Store.AppendSegmentBlob(seg, body)
	}

	ss.led.mu.Lock()
	ss.led.st.DecodeTime += decodeDur
	if queued > ss.led.st.DecodeQueuePeak {
		ss.led.st.DecodeQueuePeak = queued
	}
	if err != nil {
		ss.led.st.Errors++
	} else {
		ss.led.st.Segments++
		ss.led.st.BytesWire += uint64(len(body))
		ss.led.st.BytesLogical += uint64(logical)
	}
	ss.led.mu.Unlock()
	if err == nil {
		ss.srv.winSegments.Add(1)
		ss.srv.winBytes.Add(uint64(len(body)))
	}

	if err != nil {
		// Match the inline path's contract: report and keep the session;
		// the device's chain state is unchanged, so it can resync. Only a
		// broken transport kills the connection.
		if ss.sendErr(CodeBadData, err) != nil {
			ss.nc.Close()
		}
		return
	}
	// The ack carries the tier's modeled service time for this blob, so
	// the device's ack-latency model reflects the backend (s3sim's Put
	// latency), not just the NVMe-oE wire.
	ack := nvmeoe.Ack{UpTo: seg.LastSeq, SvcNs: uint64(ss.srv.Store.PutServiceTime(len(body)))}
	if ss.writeMsg(nvmeoe.MsgSegmentAck, ack.Marshal()) != nil {
		ss.nc.Close() // kick the reader loop; the device will reconnect
	}
}

// PushSegmentBlobs ships blobs in order over the session, keeping up to
// window segments in flight before draining acks — the pipelined push that
// keeps a server's decode lane fed, where PushSegmentBlob's one-at-a-time
// round trip would idle it. lastSeqs[i] is blobs[i]'s LastSeq; acks return
// in order. The first server-reported error aborts the push. window must
// stay well below the server's DecodeQueueDepth (see there).
func (c *Client) PushSegmentBlobs(blobs [][]byte, lastSeqs []uint64, window int) error {
	if len(blobs) != len(lastSeqs) {
		return fmt.Errorf("remote: %d blobs with %d seqs", len(blobs), len(lastSeqs))
	}
	if window < 1 {
		window = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	next, acked := 0, 0
	for acked < len(blobs) {
		for next < len(blobs) && next-acked < window {
			if err := c.conn.WriteMsg(nvmeoe.MsgSegment, blobs[next]); err != nil {
				return err
			}
			next++
		}
		typ, body, err := c.conn.ReadMsg()
		if err != nil {
			return err
		}
		switch typ {
		case nvmeoe.MsgSegmentAck:
			ack, err := nvmeoe.UnmarshalAck(body)
			if err != nil {
				return err
			}
			if ack.UpTo != lastSeqs[acked] {
				return fmt.Errorf("remote: ack up to %d, want %d", ack.UpTo, lastSeqs[acked])
			}
			acked++
		case nvmeoe.MsgError:
			em, err := nvmeoe.UnmarshalErrorMsg(body)
			if err != nil {
				return err
			}
			return &RemoteError{Code: em.Code, Text: em.Text}
		default:
			return fmt.Errorf("remote: unexpected message %v during pipelined push", typ)
		}
	}
	return nil
}
