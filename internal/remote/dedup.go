package remote

import (
	"fmt"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/oplog"
)

// chunkIndex is the fleet-wide content-addressed page store: one physical
// copy per distinct page content, shared across every device and segment
// the store holds. Pages are keyed by their seal-time SHA-256
// (oplog.PageRecord.Hash), which Segment.VerifyPages has already checked
// against the payload before anything reaches the index — so interning by
// hash cannot be poisoned by a device lying about its content. The index
// is sharded by the hash's first byte; shard locks are leaves in the lock
// order (device shard lock -> chunk shard lock) and are never held across
// calls out of this file.
type chunkIndex struct {
	shards [chunkShards]chunkShard
}

const chunkShards = 64

type chunkShard struct {
	mu sync.Mutex
	m  map[[oplog.HashSize]byte]*chunkEntry
}

type chunkEntry struct {
	data []byte
	refs int64
}

func newChunkIndex() *chunkIndex {
	ci := &chunkIndex{}
	for i := range ci.shards {
		ci.shards[i].m = make(map[[oplog.HashSize]byte]*chunkEntry)
	}
	return ci
}

func (ci *chunkIndex) shard(h [oplog.HashSize]byte) *chunkShard {
	return &ci.shards[h[0]&(chunkShards-1)]
}

// intern records one reference to content hash h. On first sight data
// becomes the canonical physical copy (the index takes ownership of the
// slice); on a hit the existing copy is returned and data is dropped.
// The second return reports a dedup hit.
func (ci *chunkIndex) intern(h [oplog.HashSize]byte, data []byte) ([]byte, bool) {
	sh := ci.shard(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.m[h]; ok {
		e.refs++
		return e.data, true
	}
	sh.m[h] = &chunkEntry{data: data, refs: 1}
	return data, false
}

// release drops one reference to h; the canonical copy is forgotten when
// the last reference goes. Releasing an unknown hash is a refcount bug and
// reports false.
func (ci *chunkIndex) release(h [oplog.HashSize]byte) bool {
	sh := ci.shard(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.m[h]
	if !ok {
		return false
	}
	e.refs--
	if e.refs <= 0 {
		delete(sh.m, h)
	}
	return true
}

// lookup returns the canonical copy for h if the index holds it.
func (ci *chunkIndex) lookup(h [oplog.HashSize]byte) ([]byte, bool) {
	sh := ci.shard(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.m[h]
	if !ok {
		return nil, false
	}
	return e.data, true
}

func (ci *chunkIndex) stats() DedupStats {
	var d DedupStats
	for i := range ci.shards {
		sh := &ci.shards[i]
		sh.mu.Lock()
		d.UniquePages += len(sh.m)
		for _, e := range sh.m {
			d.UniqueBytes += int64(len(e.data))
			d.TotalRefs += e.refs
			d.LogicalBytes += e.refs * int64(len(e.data))
		}
		sh.mu.Unlock()
	}
	return d
}

// DedupStats describes the content-addressed index: how many distinct page
// contents it holds versus how many logical page versions reference them.
type DedupStats struct {
	UniquePages  int   // distinct page contents stored
	UniqueBytes  int64 // physical bytes held
	TotalRefs    int64 // logical page versions referencing them
	LogicalBytes int64 // bytes the store would hold without dedup
}

// HitRate is the fraction of logical page versions served by an
// already-stored physical copy.
func (d DedupStats) HitRate() float64 {
	if d.TotalRefs == 0 {
		return 0
	}
	return 1 - float64(d.UniquePages)/float64(d.TotalRefs)
}

// ResolveCache is the device-side half of the dedup restore protocol: it
// remembers every literal page the restore stream has delivered, keyed by
// content hash, so hash-reference pages resolve locally instead of
// refetching. Literals are verified against their claimed hash before
// entering the cache — a corrupt or malicious server cannot poison a
// resolution. The cache lives for one restore (surviving resumes, so
// pages literal-ed before a cut resolve references after it) and is not
// concurrency-safe: one restorer owns it.
type ResolveCache struct {
	m     map[[oplog.HashSize]byte][]byte
	bytes int64
}

// NewResolveCache returns an empty cache.
func NewResolveCache() *ResolveCache {
	return &ResolveCache{m: make(map[[oplog.HashSize]byte][]byte)}
}

// Add verifies data against h, stores a private copy, and returns the
// canonical cached slice. A hash mismatch is a data-integrity error.
func (c *ResolveCache) Add(h [oplog.HashSize]byte, data []byte) ([]byte, error) {
	if cached, ok := c.m[h]; ok {
		return cached, nil
	}
	hasher := bufpool.GetHasher()
	sum := hasher.Sum256(data)
	hasher.Release()
	if sum != h {
		return nil, fmt.Errorf("remote: restore literal fails content hash (%d bytes)", len(data))
	}
	cp := append([]byte(nil), data...)
	c.m[h] = cp
	c.bytes += int64(len(cp))
	return cp, nil
}

// Lookup resolves a hash reference.
func (c *ResolveCache) Lookup(h [oplog.HashSize]byte) ([]byte, bool) {
	data, ok := c.m[h]
	return data, ok
}

// Pages reports distinct cached contents; Bytes their physical footprint.
func (c *ResolveCache) Pages() int  { return len(c.m) }
func (c *ResolveCache) Bytes() int64 { return c.bytes }
