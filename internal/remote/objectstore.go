// Package remote implements the cloud/storage-server side of RSSD: a
// durable, indexed store for offloaded operation-log segments and retained
// pages, served to devices over the hardware-isolated NVMe-oE transport.
//
// The paper backs this role with Amazon S3 and local storage servers; the
// ObjectStore interface plays the S3 part (with in-memory and on-disk
// implementations), while Store adds the per-device indexes — log chain
// continuity, per-LPN version history, checkpoints — that recovery and
// post-attack analysis query. Because segments arrive in time order and
// are chain-verified at ingest, the remote copy is exactly the trusted
// evidence chain the paper describes: a host-compromised machine cannot
// retroactively alter what the server has accepted.
package remote

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
)

// ObjectStore is the blob-storage abstraction segments are persisted to.
// Implementations must be safe for concurrent use.
type ObjectStore interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, error)
	List(prefix string) ([]string, error)
	Delete(key string) error
}

// ErrNotFound is returned when a key or requested record does not exist.
var ErrNotFound = errors.New("remote: not found")

// MemStore is an in-memory ObjectStore, the default substrate for tests
// and benchmarks.
type MemStore struct {
	mu   sync.RWMutex
	data map[string][]byte
}

// NewMemStore returns an empty in-memory object store.
func NewMemStore() *MemStore { return &MemStore{data: map[string][]byte{}} }

// Put stores a copy of data under key.
func (m *MemStore) Put(key string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data[key] = append([]byte(nil), data...)
	return nil
}

// Get returns a copy of the blob at key.
func (m *MemStore) Get(key string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.data[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return append([]byte(nil), d...), nil
}

// List returns all keys with the given prefix, sorted.
func (m *MemStore) List(prefix string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var keys []string
	for k := range m.data {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete removes key; deleting a missing key is not an error.
func (m *MemStore) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.data, key)
	return nil
}

// Size returns the total stored bytes; capacity accounting in the
// retention experiments uses it.
func (m *MemStore) Size() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var n int64
	for _, d := range m.data {
		n += int64(len(d))
	}
	return n
}

// DirStore is a filesystem-backed ObjectStore: each key is a file under
// the root directory. Keys may contain '/' which map to subdirectories.
type DirStore struct {
	root string
}

// NewDirStore returns a DirStore rooted at dir, creating it if needed.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{root: dir}, nil
}

func (d *DirStore) path(key string) string {
	return filepath.Join(d.root, filepath.FromSlash(key))
}

// isNotExist reports whether err means "no blob at this key". Plain
// os.ErrNotExist misses one case MemStore has no analogue for: a key whose
// path crosses an existing regular file (Get("a/b") after Put("a")) fails
// with ENOTDIR, which is still just "not found" at the blob layer.
func isNotExist(err error) bool {
	return errors.Is(err, os.ErrNotExist) || errors.Is(err, syscall.ENOTDIR)
}

// Put writes the blob to disk, creating parent directories as needed.
func (d *DirStore) Put(key string, data []byte) error {
	p := d.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, p)
}

// Get reads the blob from disk. Any flavour of missing-path failure maps
// to ErrNotFound, matching MemStore exactly.
func (d *DirStore) Get(key string) ([]byte, error) {
	b, err := os.ReadFile(d.path(key))
	if isNotExist(err) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return b, err
}

// List walks the tree and returns keys under prefix, sorted.
func (d *DirStore) List(prefix string) ([]string, error) {
	var keys []string
	err := filepath.Walk(d.root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || strings.HasSuffix(path, ".tmp") {
			return err
		}
		rel, err := filepath.Rel(d.root, path)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	sort.Strings(keys)
	return keys, err
}

// Delete removes the blob file; deleting a missing key (including one
// whose path crosses a file) is idempotent, as on MemStore.
func (d *DirStore) Delete(key string) error {
	err := os.Remove(d.path(key))
	if isNotExist(err) {
		return nil
	}
	return err
}
