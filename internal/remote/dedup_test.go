package remote

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/oplog"
	"repro/internal/simclock"
)

// dedupContent is the shared content pool for dedup tests: poolN distinct
// page payloads, assigned to LPNs round-robin so every content appears
// many times per device and on every device.
func dedupContent(poolN int) [][]byte {
	pool := make([][]byte, poolN)
	for i := range pool {
		pool[i] = bytes.Repeat([]byte(fmt.Sprintf("content-%02d|", i)), 24)
	}
	return pool
}

// buildDedupSegments builds n chain-valid segments of k pages each on
// distinct LPNs whose payloads cycle through the shared pool.
func buildDedupSegments(deviceID uint64, n, k int, pool [][]byte) []*oplog.Segment {
	l := oplog.New()
	var segs []*oplog.Segment
	for s := 0; s < n; s++ {
		seg := &oplog.Segment{DeviceID: deviceID, FirstSeq: l.NextSeq()}
		for i := 0; i < k; i++ {
			lpn := uint64(s*k + i)
			data := pool[int(lpn)%len(pool)]
			e := l.Append(oplog.KindWrite, simclock.Time(s*k+i), lpn, 0, lpn, 1, oplog.HashData(data))
			seg.Entries = append(seg.Entries, e)
			seg.Pages = append(seg.Pages, oplog.PageRecord{
				LPN: lpn, WriteSeq: e.Seq, StaleSeq: e.Seq + 1,
				Hash: oplog.HashData(data), Data: data,
			})
		}
		seg.LastSeq = l.NextSeq()
		segs = append(segs, seg)
	}
	return segs
}

// TestMixedLegacyDedupRestore checks that one store serves the identical
// image through all three wire forms — the legacy full-page chunk stream,
// the hash-reference stream, and a mixed restore that starts legacy and
// resumes deduped — and that the dedup form actually moves fewer bytes.
func TestMixedLegacyDedupRestore(t *testing.T) {
	st := NewStore(NewMemStore())
	srv := NewServer(st, psk)
	pool := dedupContent(8)
	for _, seg := range buildDedupSegments(7, 5, 8, pool) { // 40 pages, 8 unique
		if err := st.AppendSegment(seg); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := Loopback(srv, psk, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	collect := func(dedup bool, from uint64) (pages []oplog.PageRecord, wire, refs int) {
		var cache *ResolveCache
		if dedup {
			cache = NewResolveCache()
		}
		_, err := cl.FetchImageDelta(from, 100, 0, 8, cache, func(ps []oplog.PageRecord, cs ChunkStats) error {
			for _, p := range ps {
				p.Data = append([]byte(nil), p.Data...)
				pages = append(pages, p)
			}
			wire += cs.WireBytes
			refs += cs.Refs
			return nil
		})
		if err != nil {
			t.Fatalf("stream (dedup=%v from=%d): %v", dedup, from, err)
		}
		return pages, wire, refs
	}

	legacy, legacyWire, legacyRefs := collect(false, 0)
	deduped, dedupWire, dedupRefs := collect(true, 0)
	if legacyRefs != 0 {
		t.Fatalf("legacy stream carried %d hash refs", legacyRefs)
	}
	if dedupRefs == 0 {
		t.Fatal("dedup stream resolved no hash refs over a duplicated image")
	}
	if len(legacy) != 40 || len(deduped) != len(legacy) {
		t.Fatalf("page counts: legacy %d, dedup %d", len(legacy), len(deduped))
	}
	for i := range legacy {
		l, d := legacy[i], deduped[i]
		if l.LPN != d.LPN || l.WriteSeq != d.WriteSeq || !bytes.Equal(l.Data, d.Data) {
			t.Fatalf("page %d differs across wire forms: legacy %+v, dedup %+v", i, l, d)
		}
		if want := pool[int(l.LPN)%len(pool)]; !bytes.Equal(l.Data, want) {
			t.Fatalf("lpn %d content wrong", l.LPN)
		}
	}
	if dedupWire >= legacyWire {
		t.Fatalf("dedup wire %d not smaller than legacy %d", dedupWire, legacyWire)
	}

	// A mixed restore: first half over the legacy path, resume at the
	// cursor over hash-ref frames. The splice must be seamless — the
	// resumed session re-literals anything it references, so a cache that
	// saw none of the first half still resolves everything.
	var mixed []oplog.PageRecord
	head, _, _ := collect(false, 0)
	for _, p := range head[:20] {
		mixed = append(mixed, p)
	}
	tail, _, tailRefs := collect(true, mixed[len(mixed)-1].LPN+1)
	mixed = append(mixed, tail...)
	if tailRefs == 0 {
		t.Fatal("resumed dedup stream resolved no refs")
	}
	if len(mixed) != len(legacy) {
		t.Fatalf("mixed restore covered %d pages, want %d", len(mixed), len(legacy))
	}
	for i := range mixed {
		if mixed[i].LPN != legacy[i].LPN || !bytes.Equal(mixed[i].Data, legacy[i].Data) {
			t.Fatalf("mixed restore page %d differs from legacy", i)
		}
	}
}

// TestDedupRefcountConcurrent hammers the chunk index from three sides at
// once — per-device offload ingest, restore reads, and segment expiry
// (DropSegmentPages) — across devices sharing one content pool, then
// checks the refcount ledger balances exactly and no surviving version
// lost its payload. Runs under -race in CI.
func TestDedupRefcountConcurrent(t *testing.T) {
	const (
		devices = 4
		segs    = 6 // odd-indexed segments are dropped as they age
		pages   = 8
		poolN   = 16
	)
	st := NewStore(NewMemStore())
	pool := dedupContent(poolN)

	var done atomic.Bool
	var writers, readers sync.WaitGroup
	errCh := make(chan error, 2*devices)
	for dev := 1; dev <= devices; dev++ {
		writers.Add(1)
		// Writer: append this device's chain in order, expiring each odd
		// segment once its successor lands (and the last one at the end).
		go func(dev uint64) {
			defer writers.Done()
			for i, seg := range buildDedupSegments(dev, segs, pages, pool) {
				if err := st.AppendSegment(seg); err != nil {
					errCh <- fmt.Errorf("device %d append %d: %w", dev, i, err)
					return
				}
				if i%2 == 0 && i > 0 {
					if err := st.DropSegmentPages(dev, i-1); err != nil {
						errCh <- fmt.Errorf("device %d drop %d: %w", dev, i-1, err)
						return
					}
				}
			}
			if err := st.DropSegmentPages(dev, segs-1); err != nil {
				errCh <- fmt.Errorf("device %d drop %d: %w", dev, segs-1, err)
			}
		}(uint64(dev))
		readers.Add(1)
		// Reader: restore-style chunked image walks while ingest and
		// expiry churn; every page served must carry its true content.
		go func(dev uint64) {
			defer readers.Done()
			for !done.Load() {
				from := uint64(0)
				for {
					ps, next, more := st.ImageRange(dev, from, ^uint64(0), 1<<40, 8, nil)
					for _, p := range ps {
						if want := pool[int(p.LPN)%poolN]; !bytes.Equal(p.Data, want) {
							errCh <- fmt.Errorf("device %d lpn %d served wrong or freed content", dev, p.LPN)
							return
						}
					}
					if !more || len(ps) == 0 {
						break
					}
					from = next
				}
			}
		}(uint64(dev))
	}
	writers.Wait()
	done.Store(true)
	readers.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Ledger balance: even segments survive on every device, odd ones are
	// dropped. Every surviving version holds exactly one chunk reference.
	surviving := 0
	wantContents := map[int]bool{}
	for dev := 1; dev <= devices; dev++ {
		for s := 0; s < segs; s += 2 {
			for i := 0; i < pages; i++ {
				surviving++
				wantContents[(s*pages+i)%poolN] = true
			}
		}
	}
	ds := st.Dedup()
	if ds.TotalRefs != int64(surviving) {
		t.Fatalf("chunk refs = %d, want %d surviving versions", ds.TotalRefs, surviving)
	}
	if ds.UniquePages != len(wantContents) {
		t.Fatalf("unique chunks = %d, want %d distinct contents", ds.UniquePages, len(wantContents))
	}
	// Every surviving version still reads back its true bytes; every
	// dropped version is gone.
	for dev := 1; dev <= devices; dev++ {
		for s := 0; s < segs; s++ {
			for i := 0; i < pages; i++ {
				lpn := uint64(s*pages + i)
				rec, ok := st.Version(uint64(dev), lpn, 1<<40)
				if s%2 == 1 {
					if ok {
						t.Fatalf("device %d lpn %d survived its segment drop", dev, lpn)
					}
					continue
				}
				if !ok || !bytes.Equal(rec.Data, pool[int(lpn)%poolN]) {
					t.Fatalf("device %d lpn %d lost its payload after expiry churn", dev, lpn)
				}
			}
		}
	}
}
