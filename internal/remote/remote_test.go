package remote

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/nvmeoe"
	"repro/internal/oplog"
	"repro/internal/simclock"
)

var psk = []byte("test-psk-for-remote-store-32-byt")

func TestMemStoreCRUD(t *testing.T) {
	testObjectStore(t, NewMemStore())
}

func TestDirStoreCRUD(t *testing.T) {
	ds, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testObjectStore(t, ds)
}

func testObjectStore(t *testing.T, os ObjectStore) {
	t.Helper()
	if err := os.Put("dev/1/seg/a", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := os.Put("dev/1/seg/b", []byte("beta")); err != nil {
		t.Fatal(err)
	}
	if err := os.Put("dev/2/seg/a", []byte("gamma")); err != nil {
		t.Fatal(err)
	}
	got, err := os.Get("dev/1/seg/a")
	if err != nil || !bytes.Equal(got, []byte("alpha")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := os.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key err = %v", err)
	}
	keys, err := os.List("dev/1/")
	if err != nil || len(keys) != 2 || keys[0] != "dev/1/seg/a" {
		t.Fatalf("List = %v, %v", keys, err)
	}
	if err := os.Delete("dev/1/seg/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Get("dev/1/seg/a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key still readable")
	}
	if err := os.Delete("never-existed"); err != nil {
		t.Fatalf("deleting missing key: %v", err)
	}
	// Overwrite.
	os.Put("dev/2/seg/a", []byte("gamma2"))
	got, _ = os.Get("dev/2/seg/a")
	if !bytes.Equal(got, []byte("gamma2")) {
		t.Fatal("overwrite failed")
	}
}

// buildSegments creates n chained segments of k write entries each, with a
// retained page per entry.
func buildSegments(deviceID uint64, n, k int) []*oplog.Segment {
	l := oplog.New()
	var segs []*oplog.Segment
	for s := 0; s < n; s++ {
		seg := &oplog.Segment{DeviceID: deviceID, FirstSeq: l.NextSeq()}
		for i := 0; i < k; i++ {
			data := []byte(fmt.Sprintf("v%d", l.NextSeq()))
			lpn := uint64(s*k+i) % 8
			e := l.Append(oplog.KindWrite, simclock.Time(s*k+i), lpn, 0, uint64(s*k+i), 1, oplog.HashData(data))
			seg.Entries = append(seg.Entries, e)
			seg.Pages = append(seg.Pages, oplog.PageRecord{
				LPN: lpn, WriteSeq: e.Seq, StaleSeq: e.Seq + 8,
				Hash: oplog.HashData(data), Data: data,
			})
		}
		seg.LastSeq = l.NextSeq()
		segs = append(segs, seg)
	}
	return segs
}

func TestAppendSegmentAndQuery(t *testing.T) {
	st := NewStore(NewMemStore())
	for _, seg := range buildSegments(1, 3, 10) {
		if err := st.AppendSegment(seg); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(st.Entries(1, 0, 100)); got != 30 {
		t.Fatalf("entries = %d, want 30", got)
	}
	if got := len(st.Entries(1, 5, 8)); got != 3 {
		t.Fatalf("range entries = %d, want 3", got)
	}
	// Versions: LPN 2 was written at seqs 2, 10, 18, 26.
	rec, ok := st.Version(1, 2, 11)
	if !ok || rec.WriteSeq != 10 {
		t.Fatalf("Version(2, before 11) = %+v, %v", rec, ok)
	}
	rec, ok = st.Version(1, 2, 3)
	if !ok || rec.WriteSeq != 2 {
		t.Fatalf("Version(2, before 3) = %+v, %v", rec, ok)
	}
	if _, ok := st.Version(1, 2, 2); ok {
		t.Fatal("version before first write should not exist")
	}
	if _, ok := st.Version(1, 999, 100); ok {
		t.Fatal("unknown lpn returned a version")
	}
	img := st.Image(1, 12)
	if len(img) != 8 {
		t.Fatalf("image size = %d, want 8", len(img))
	}
	h := st.Head(1)
	if h.NextSeq != 30 {
		t.Fatalf("head seq = %d", h.NextSeq)
	}
	stats := st.DeviceStats(1)
	if stats.Segments != 3 || stats.Entries != 30 || stats.Versions != 30 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestAppendSegmentRejectsGap(t *testing.T) {
	st := NewStore(NewMemStore())
	segs := buildSegments(1, 3, 5)
	if err := st.AppendSegment(segs[0]); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendSegment(segs[2]); err == nil {
		t.Fatal("segment with sequence gap accepted")
	}
}

func TestAppendSegmentRejectsTamperedChain(t *testing.T) {
	st := NewStore(NewMemStore())
	segs := buildSegments(1, 2, 5)
	st.AppendSegment(segs[0])
	segs[1].Entries[2].LPN = 9999 // tamper, breaking the hash
	if err := st.AppendSegment(segs[1]); err == nil {
		t.Fatal("tampered segment accepted")
	}
}

func TestAppendSegmentRejectsCorruptPages(t *testing.T) {
	st := NewStore(NewMemStore())
	segs := buildSegments(1, 1, 5)
	segs[0].Pages[0].Data = []byte("not-what-was-hashed")
	if err := st.AppendSegment(segs[0]); err == nil {
		t.Fatal("corrupt page data accepted")
	}
}

func TestOnSegmentHook(t *testing.T) {
	st := NewStore(NewMemStore())
	var calls int
	st.OnSegment = func(dev uint64, seg *oplog.Segment) {
		calls++
		if dev != 1 {
			t.Errorf("hook device = %d", dev)
		}
	}
	for _, seg := range buildSegments(1, 2, 3) {
		st.AppendSegment(seg)
	}
	if calls != 2 {
		t.Fatalf("hook calls = %d", calls)
	}
}

func TestCheckpoints(t *testing.T) {
	st := NewStore(NewMemStore())
	st.AppendCheckpoint(1, nvmeoe.Checkpoint{Seq: 10, L2P: []uint64{1, 2}})
	st.AppendCheckpoint(1, nvmeoe.Checkpoint{Seq: 20, L2P: []uint64{3, 4}})
	cp, ok := st.Checkpoint(1, 15)
	if !ok || cp.Seq != 10 {
		t.Fatalf("Checkpoint(15) = %+v, %v", cp, ok)
	}
	cp, ok = st.Checkpoint(1, 20)
	if !ok || cp.Seq != 20 {
		t.Fatalf("Checkpoint(20) = %+v, %v", cp, ok)
	}
	if _, ok := st.Checkpoint(1, 5); ok {
		t.Fatal("checkpoint before first accepted")
	}
}

func TestReloadRebuildsIndexes(t *testing.T) {
	blobs := NewMemStore()
	st := NewStore(blobs)
	for _, seg := range buildSegments(7, 3, 10) {
		if err := st.AppendSegment(seg); err != nil {
			t.Fatal(err)
		}
	}
	st.AppendCheckpoint(7, nvmeoe.Checkpoint{Seq: 5, L2P: []uint64{9}})

	st2 := NewStore(blobs)
	if err := st2.Reload(); err != nil {
		t.Fatal(err)
	}
	if got, want := st2.Head(7), st.Head(7); got != want {
		t.Fatalf("reloaded head %+v != %+v", got, want)
	}
	if got := len(st2.Entries(7, 0, 1000)); got != 30 {
		t.Fatalf("reloaded entries = %d", got)
	}
	cp, ok := st2.Checkpoint(7, 100)
	if !ok || cp.Seq != 5 {
		t.Fatalf("reloaded checkpoint = %+v %v", cp, ok)
	}
	rec, ok := st2.Version(7, 3, 100)
	if !ok || rec.LPN != 3 {
		t.Fatalf("reloaded version = %+v %v", rec, ok)
	}
}

func TestReloadDetectsTamperedBlob(t *testing.T) {
	blobs := NewMemStore()
	st := NewStore(blobs)
	for _, seg := range buildSegments(7, 2, 5) {
		st.AppendSegment(seg)
	}
	keys, _ := blobs.List("dev/")
	blob, _ := blobs.Get(keys[0])
	blob[len(blob)-1] ^= 0xFF
	blobs.Put(keys[0], blob)
	if err := NewStore(blobs).Reload(); err == nil {
		t.Fatal("tampered blob store reloaded cleanly")
	}
}

func TestClientServerEndToEnd(t *testing.T) {
	st := NewStore(NewMemStore())
	srv := NewServer(st, psk)
	cl, err := Loopback(srv, psk, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for _, seg := range buildSegments(5, 3, 10) {
		if err := cl.PushSegment(seg); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.PushCheckpoint(&nvmeoe.Checkpoint{Seq: 12, L2P: []uint64{7, 8, 9}}); err != nil {
		t.Fatal(err)
	}

	entries, err := cl.FetchEntries(5, 15)
	if err != nil || len(entries) != 10 || entries[0].Seq != 5 {
		t.Fatalf("FetchEntries = %d entries, %v", len(entries), err)
	}
	rec, ok, err := cl.FetchVersion(2, 11)
	if err != nil || !ok || rec.WriteSeq != 10 {
		t.Fatalf("FetchVersion = %+v %v %v", rec, ok, err)
	}
	_, ok, err = cl.FetchVersion(2, 1)
	if err != nil || ok {
		t.Fatalf("FetchVersion before first write: ok=%v err=%v", ok, err)
	}
	img, err := cl.FetchImage(30)
	if err != nil || len(img) != 8 {
		t.Fatalf("FetchImage = %d, %v", len(img), err)
	}
	cp, ok, err := cl.FetchCheckpoint(100)
	if err != nil || !ok || cp.Seq != 12 {
		t.Fatalf("FetchCheckpoint = %+v %v %v", cp, ok, err)
	}
	_, ok, err = cl.FetchCheckpoint(3)
	if err != nil || ok {
		t.Fatalf("FetchCheckpoint(3): ok=%v err=%v", ok, err)
	}
	h, err := cl.Head()
	if err != nil || h.NextSeq != 30 {
		t.Fatalf("Head = %+v %v", h, err)
	}
}

func TestServerRejectsCrossDeviceSegment(t *testing.T) {
	st := NewStore(NewMemStore())
	srv := NewServer(st, psk)
	cl, err := Loopback(srv, psk, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	seg := buildSegments(6, 1, 3)[0] // device 6 segment on device 5 session
	err = cl.PushSegment(seg)
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeBadData {
		t.Fatalf("cross-device push err = %v", err)
	}
}

func TestServerRejectsChainViolationFromClient(t *testing.T) {
	st := NewStore(NewMemStore())
	srv := NewServer(st, psk)
	cl, err := Loopback(srv, psk, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	segs := buildSegments(5, 3, 4)
	if err := cl.PushSegment(segs[0]); err != nil {
		t.Fatal(err)
	}
	var re *RemoteError
	if err := cl.PushSegment(segs[2]); !errors.As(err, &re) {
		t.Fatalf("gap push err = %v", err)
	}
}

// TestMultiDeviceIsolation: one server serves a fleet; each device's
// chain, versions, and checkpoints are independent.
func TestMultiDeviceIsolation(t *testing.T) {
	st := NewStore(NewMemStore())
	perDevice := map[uint64][]byte{
		11: []byte("psk-for-device-11-0123456789abcd"),
		22: []byte("psk-for-device-22-0123456789abcd"),
		33: []byte("psk-for-device-33-0123456789abcd"),
	}
	srv := &Server{
		Store: st,
		LookupPSK: func(id uint64) ([]byte, bool) {
			k, ok := perDevice[id]
			return k, ok
		},
	}
	clients := map[uint64]*Client{}
	for id := range perDevice {
		cl, err := Loopback(srv, perDevice[id], id)
		if err != nil {
			t.Fatalf("device %d: %v", id, err)
		}
		defer cl.Close()
		clients[id] = cl
	}
	// Interleave pushes from all three devices.
	segs := map[uint64][]*oplog.Segment{}
	for id := range clients {
		segs[id] = buildSegments(id, 3, 4)
	}
	for i := 0; i < 3; i++ {
		for id, cl := range clients {
			if err := cl.PushSegment(segs[id][i]); err != nil {
				t.Fatalf("device %d segment %d: %v", id, i, err)
			}
		}
	}
	for id, cl := range clients {
		h, err := cl.Head()
		if err != nil || h.NextSeq != 12 {
			t.Fatalf("device %d head = %+v, %v", id, h, err)
		}
		entries, err := cl.FetchEntries(0, 100)
		if err != nil || len(entries) != 12 {
			t.Fatalf("device %d entries = %d, %v", id, len(entries), err)
		}
		if err := oplog.VerifyChain(entries, [32]byte{}); err != nil {
			t.Fatalf("device %d chain: %v", id, err)
		}
		_ = id
	}
	// A device with the wrong PSK for its claimed identity is rejected.
	if _, err := Loopback(srv, perDevice[11], 22); err == nil {
		t.Fatal("device 22 authenticated with device 11's key")
	}
}

// Property: Version always returns the newest record strictly before the
// query point, for arbitrary interleavings of writes to a few LPNs.
func TestVersionQueryProperty(t *testing.T) {
	f := func(writes []uint8, queryLPN uint8, before uint16) bool {
		if len(writes) == 0 {
			return true
		}
		st := NewStore(NewMemStore())
		l := oplog.New()
		seg := &oplog.Segment{DeviceID: 1}
		type w struct{ lpn, seq uint64 }
		var history []w
		for _, b := range writes {
			lpn := uint64(b % 4)
			data := []byte{b}
			e := l.Append(oplog.KindWrite, 0, lpn, 0, 0, 0, oplog.HashData(data))
			seg.Entries = append(seg.Entries, e)
			seg.Pages = append(seg.Pages, oplog.PageRecord{
				LPN: lpn, WriteSeq: e.Seq, StaleSeq: e.Seq + 1,
				Hash: oplog.HashData(data), Data: data,
			})
			history = append(history, w{lpn, e.Seq})
		}
		seg.LastSeq = l.NextSeq()
		if err := st.AppendSegment(seg); err != nil {
			return false
		}
		lpn := uint64(queryLPN % 4)
		bef := uint64(before) % (uint64(len(writes)) + 2)
		var want *w
		for i := range history {
			if history[i].lpn == lpn && history[i].seq < bef {
				want = &history[i]
			}
		}
		rec, ok := st.Version(1, lpn, bef)
		if want == nil {
			return !ok
		}
		return ok && rec.WriteSeq == want.seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentMultiDeviceIngest drives a fleet of clients over net.Pipe
// sessions into one server at once — the sharded-ingest contract. Each
// device's chain must stay contiguous and isolated from its neighbours, a
// streaming subscriber must see every device's segments in ingest order,
// and (under -race) the whole path must be data-race free.
func TestConcurrentMultiDeviceIngest(t *testing.T) {
	const devices = 6
	const segsPerDevice = 12

	st := NewStore(NewMemStore())
	srv := NewServer(st, psk)

	// Streaming subscriber: record, per device, the first sequence of each
	// delivered segment so ordering can be checked afterwards.
	var subMu sync.Mutex
	delivered := map[uint64][]uint64{}
	st.Subscribe(func(deviceID uint64, seg *oplog.Segment) {
		subMu.Lock()
		delivered[deviceID] = append(delivered[deviceID], seg.FirstSeq)
		subMu.Unlock()
	})

	errc := make(chan error, devices)
	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		deviceID := uint64(100 + d)
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Loopback(srv, psk, deviceID)
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			for _, seg := range buildSegments(deviceID, segsPerDevice, 8) {
				if err := cl.PushSegment(seg); err != nil {
					errc <- fmt.Errorf("device %d: %w", deviceID, err)
					return
				}
			}
			if err := cl.PushCheckpoint(&nvmeoe.Checkpoint{Seq: 3, L2P: []uint64{deviceID}}); err != nil {
				errc <- fmt.Errorf("device %d checkpoint: %w", deviceID, err)
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	want := uint64(segsPerDevice * 8)
	for d := 0; d < devices; d++ {
		deviceID := uint64(100 + d)
		// Chain continuity: the head advanced over every entry.
		if h := st.Head(deviceID); h.NextSeq != want {
			t.Fatalf("device %d head %d, want %d", deviceID, h.NextSeq, want)
		}
		// Cross-device isolation: exactly this device's segments, entries,
		// version records, and checkpoint landed in its shard — a leak from
		// a concurrent neighbour would inflate these.
		ds := st.DeviceStats(deviceID)
		if ds.Segments != segsPerDevice || ds.Entries != int(want) ||
			ds.Versions != int(want) || ds.Checkpoints != 1 {
			t.Fatalf("device %d stats %+v", deviceID, ds)
		}
		// A full-chain verification from the genesis hash must hold.
		if err := oplog.VerifyChain(st.Entries(deviceID, 0, want), [oplog.HashSize]byte{}); err != nil {
			t.Fatalf("device %d chain: %v", deviceID, err)
		}
		// Streaming order: subscriber saw segments in ingest order.
		subMu.Lock()
		seqs := delivered[deviceID]
		subMu.Unlock()
		if len(seqs) != segsPerDevice {
			t.Fatalf("device %d: subscriber saw %d segments, want %d", deviceID, len(seqs), segsPerDevice)
		}
		for i := 1; i < len(seqs); i++ {
			if seqs[i] <= seqs[i-1] {
				t.Fatalf("device %d: out-of-order delivery %v", deviceID, seqs)
			}
		}
	}
	if got := srv.SessionsTotal(); got != devices {
		t.Fatalf("sessions total %d, want %d", got, devices)
	}
}
