package remote

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/nvmeoe"
	"repro/internal/oplog"
)

// The corrupted-frame contract of server ingest: a truncated or bit-flipped
// segment blob arriving on an authenticated session must be rejected with a
// MsgError that KEEPS the session (the device's chain state is unchanged,
// so it resyncs from its last ack), never kill the connection, never wedge
// the decode lane, and never poison the store's chain. This is the PR 6
// mutation-corpus idiom pointed at the ingest path instead of the codec.
func TestIngestFrameMutationCorpus(t *testing.T) {
	st := NewStore(NewMemStore())
	srv := NewServer(st, psk)
	srv.Config.DecodeWorkers = 2 // exercise the lane, not the inline path
	cl, err := Loopback(srv, psk, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	defer srv.Close()

	segs := buildSegments(1, 4, 8)
	blobs := make([][]byte, len(segs))
	for i, seg := range segs {
		blobs[i] = nvmeoe.EncodeSegmentBlob(seg.Marshal())
	}
	good := blobs[0]

	// mutate pushes one corrupted variant and asserts the session survives
	// it. mustReject marks corpus entries no honest decode may accept.
	rejected, accepted := 0, 0
	mutate := func(mutant []byte, mustReject bool, what string) {
		t.Helper()
		err := cl.PushSegmentBlob(mutant, segs[0].LastSeq)
		if err == nil {
			if mustReject {
				t.Fatalf("%s: corrupted blob accepted", what)
			}
			accepted++
			return
		}
		var re *RemoteError
		if !errors.As(err, &re) {
			// Anything but a server-reported rejection means the transport
			// died — the wedge this test exists to prevent.
			t.Fatalf("%s: session died instead of error-keep-session: %v", what, err)
		}
		rejected++
	}

	// Every truncation of the blob must be rejected: the codec header
	// claims a logical size the remainder cannot deliver.
	for cut := 0; cut < len(good); cut++ {
		mutate(good[:cut], true, "truncation")
	}

	// Bit flips across the whole blob. A flip in the codec framing or the
	// compressed body must be rejected; a flip that survives every check
	// (none known, but the corpus does not assume) must at least leave the
	// session and the chain intact — asserted below either way.
	rng := rand.New(rand.NewSource(1))
	for pos := 0; pos < len(good); pos++ {
		mutant := append([]byte(nil), good...)
		mutant[pos] ^= 1 << uint(rng.Intn(8))
		mutate(mutant, false, "bit flip")
	}

	// A flipped header bit claiming a multi-GiB logical size must be
	// rejected up front — before it can size a giant decode buffer (the
	// old wedge: bufpool.Get of whatever the mutated header said).
	huge := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(huge[5:], 1<<31)
	mutate(huge, true, "oversize logical-size claim")

	// A blob for someone else's chain on this session is a forgery, not a
	// transport problem: rejected, session kept.
	other := nvmeoe.EncodeSegmentBlob(buildSegments(2, 1, 4)[0].Marshal())
	mutate(other, true, "cross-device blob")

	if rejected == 0 {
		t.Fatal("corpus rejected nothing; mutations did not reach the decode path")
	}
	t.Logf("corpus: %d rejected, %d accepted", rejected, accepted)

	// Resync exactly as a device would: ask the server where the chain
	// stands, then push everything after that point on the SAME session,
	// pipelined through the decode lane the corpus just hammered.
	h, err := cl.Head()
	if err != nil {
		t.Fatalf("head after corpus (session should be alive): %v", err)
	}
	var resync [][]byte
	var lastSeqs []uint64
	for i, seg := range segs {
		if seg.FirstSeq >= h.NextSeq {
			resync = append(resync, blobs[i])
			lastSeqs = append(lastSeqs, seg.LastSeq)
		}
	}
	if len(resync) == 0 {
		t.Fatalf("nothing to resync: head %d after corpus", h.NextSeq)
	}
	if err := cl.PushSegmentBlobs(resync, lastSeqs, 2); err != nil {
		t.Fatalf("resync push after corpus: %v", err)
	}

	// The chain the store holds must verify end to end — no half-applied
	// or poisoned segment slipped through.
	head := st.Head(1)
	if head.NextSeq != segs[len(segs)-1].LastSeq {
		t.Fatalf("head %d after resync, want %d", head.NextSeq, segs[len(segs)-1].LastSeq)
	}
	if err := oplog.VerifyChain(st.Entries(1, 0, head.NextSeq), [oplog.HashSize]byte{}); err != nil {
		t.Fatalf("chain verify after corpus: %v", err)
	}
	if errs := srv.IngestStats(1).Errors; errs != uint64(rejected) {
		t.Fatalf("ingest ledger counts %d errors, corpus drew %d rejections", errs, rejected)
	}
}
