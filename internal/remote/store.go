package remote

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bufpool"
	"repro/internal/nvmeoe"
	"repro/internal/oplog"
	"repro/internal/simclock"
)

// Store indexes offloaded segments per device. Segments must arrive in
// time order with an unbroken hash chain — the ingest check is what turns
// "a pile of blobs" into a trusted evidence chain.
//
// The indexes are sharded per device: the Store-level lock only guards
// the device directory (and the subscriber list), while each device's log,
// version, and checkpoint indexes sit behind that device's own lock.
// Ingest from N devices therefore proceeds concurrently — one slow or
// chatty device never serializes the fleet.
type Store struct {
	mu      sync.RWMutex
	blobs   ObjectStore
	devices map[uint64]*deviceLog
	// chunks is the fleet-wide content-addressed page index: every
	// ingested page version is interned by its verified content hash, so
	// one physical copy serves all devices and segments that wrote the
	// same bytes. Lock order: a device shard lock may be held when taking
	// a chunk shard lock, never the reverse.
	chunks *chunkIndex
	subs   []func(deviceID uint64, seg *oplog.Segment)
	// OnSegment, when set, is invoked after each accepted segment, like a
	// subscriber registered first. Prefer Subscribe, which supports
	// multiple consumers; the field remains for single-consumer wiring.
	//
	// Contract change with sharded ingest: the hook now runs with the
	// ingesting device's shard write-locked (that is what guarantees
	// per-device delivery order), so — exactly like a subscriber — it must
	// not call back into the Store for the same device.
	OnSegment func(deviceID uint64, seg *oplog.Segment)
}

type deviceLog struct {
	mu          sync.RWMutex
	entries     []oplog.Entry // contiguous from seq entriesBase
	entriesBase uint64
	nextSeq     uint64
	headHash    [oplog.HashSize]byte
	versions    map[uint64][]oplog.PageRecord // lpn -> records sorted by WriteSeq
	checkpoints []nvmeoe.Checkpoint           // sorted by Seq
	segKeys     []string
	pageBytes   int64
	// dedupHits counts ingested page versions whose content was already
	// in the chunk index — the store-side dedup ledger for this device.
	dedupHits int64
	// bytesLogical is what segments decode to (the uncompressed marshal);
	// bytesStored what the object store actually holds. Their ratio is the
	// wire/at-rest compression the retention budget is sized with.
	bytesLogical int64
	bytesStored  int64
	// subNanos is wall time spent in subscribers (streaming detection) for
	// this device's ingested segments — the server's IngestStats surfaces
	// it as DetectTime.
	subNanos int64
}

// NewStore returns a Store persisting blobs to the given object store.
func NewStore(blobs ObjectStore) *Store {
	return &Store{blobs: blobs, devices: map[uint64]*deviceLog{}, chunks: newChunkIndex()}
}

// Subscribe registers a segment-ingest hook; every accepted segment is
// delivered, per device in ingest order. The streaming detection pipeline
// (internal/detect) registers here, exactly as the paper runs detection on
// the remote server. Subscribers run on the ingesting session's goroutine
// with that device's shard locked, so they must not call back into the
// Store for the same device.
func (s *Store) Subscribe(fn func(deviceID uint64, seg *oplog.Segment)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs = append(s.subs, fn)
}

// dev returns the device's shard, creating it on first contact.
func (s *Store) dev(id uint64) *deviceLog {
	s.mu.RLock()
	d, ok := s.devices[id]
	s.mu.RUnlock()
	if ok {
		return d
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok = s.devices[id]; !ok {
		d = &deviceLog{versions: map[uint64][]oplog.PageRecord{}}
		s.devices[id] = d
	}
	return d
}

// lookup returns the device's shard without creating it.
func (s *Store) lookup(id uint64) (*deviceLog, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.devices[id]
	return d, ok
}

// Devices returns the IDs of every device with ingested state.
func (s *Store) Devices() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]uint64, 0, len(s.devices))
	for id := range s.devices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// AppendSegment verifies and ingests one offloaded segment, encoding it
// through the wire codec before persisting. Sessions that already hold the
// encoded wire form (Server) use AppendSegmentBlob to store those exact
// bytes instead of re-encoding.
func (s *Store) AppendSegment(seg *oplog.Segment) error {
	return s.AppendSegmentBlob(seg, nvmeoe.EncodeSegmentBlob(seg.Marshal()))
}

// AppendSegmentBlob verifies and ingests one offloaded segment: page
// hashes must match, and the entries must extend the device's chain
// exactly. blob is the codec-framed wire encoding of seg and is persisted
// verbatim — compressed on the wire is compressed at rest. Only the
// segment's own device shard is locked, so ingest from different devices
// runs concurrently.
func (s *Store) AppendSegmentBlob(seg *oplog.Segment, blob []byte) error {
	if err := seg.VerifyPages(); err != nil {
		return fmt.Errorf("remote: reject segment: %w", err)
	}
	d := s.dev(seg.DeviceID)
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(seg.Entries) > 0 {
		if seg.Entries[0].Seq != d.nextSeq {
			return fmt.Errorf("remote: segment starts at seq %d, chain is at %d", seg.Entries[0].Seq, d.nextSeq)
		}
		if err := oplog.VerifyChain(seg.Entries, d.headHash); err != nil {
			return fmt.Errorf("remote: reject segment: %w", err)
		}
	}
	key := fmt.Sprintf("dev/%d/seg/%020d", seg.DeviceID, d.nextSeq)
	if err := s.blobs.Put(key, blob); err != nil {
		return fmt.Errorf("remote: persist segment: %w", err)
	}
	if n := len(seg.Entries); n > 0 {
		d.entries = append(d.entries, seg.Entries...)
		d.nextSeq = seg.Entries[n-1].Seq + 1
		d.headHash = seg.Entries[n-1].Hash
	}
	for i := range seg.Pages {
		p := &seg.Pages[i]
		// Intern by the hash VerifyPages just checked: the version index
		// (and every subscriber) sees the canonical physical copy.
		data, hit := s.chunks.intern(p.Hash, p.Data)
		p.Data = data
		if hit {
			d.dedupHits++
		}
		d.versions[p.LPN] = insertVersion(d.versions[p.LPN], *p)
		d.pageBytes += int64(len(p.Data))
	}
	d.segKeys = append(d.segKeys, key)
	d.bytesLogical += int64(nvmeoe.SegmentBlobLogicalSize(blob))
	d.bytesStored += int64(len(blob))
	// Streaming consumers see segments per device in ingest order because
	// the shard lock is still held; other devices are unaffected.
	s.mu.RLock()
	subs := s.subs
	cb := s.OnSegment
	s.mu.RUnlock()
	if cb != nil || len(subs) > 0 {
		t0 := time.Now()
		if cb != nil {
			cb(seg.DeviceID, seg)
		}
		for _, fn := range subs {
			fn(seg.DeviceID, seg)
		}
		d.subNanos += time.Since(t0).Nanoseconds()
	}
	return nil
}

// SubscriberTime returns the wall time ingest has spent inside subscribers
// (the streaming detection pipeline) for one device.
func (s *Store) SubscriberTime(deviceID uint64) time.Duration {
	d, ok := s.lookup(deviceID)
	if !ok {
		return 0
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return time.Duration(d.subNanos)
}

// insertVersion keeps the per-LPN version list sorted by WriteSeq.
// Segments arrive in time order so appends are the common case.
func insertVersion(vs []oplog.PageRecord, p oplog.PageRecord) []oplog.PageRecord {
	if n := len(vs); n == 0 || vs[n-1].WriteSeq <= p.WriteSeq {
		return append(vs, p)
	}
	i := sort.Search(len(vs), func(i int) bool { return vs[i].WriteSeq > p.WriteSeq })
	vs = append(vs, oplog.PageRecord{})
	copy(vs[i+1:], vs[i:])
	vs[i] = p
	return vs
}

// AppendCheckpoint stores a mapping snapshot.
func (s *Store) AppendCheckpoint(deviceID uint64, cp nvmeoe.Checkpoint) error {
	key := fmt.Sprintf("dev/%d/cp/%020d", deviceID, cp.Seq)
	if err := s.blobs.Put(key, cp.Marshal()); err != nil {
		return fmt.Errorf("remote: persist checkpoint: %w", err)
	}
	d := s.dev(deviceID)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkpoints = append(d.checkpoints, cp)
	sort.Slice(d.checkpoints, func(i, j int) bool { return d.checkpoints[i].Seq < d.checkpoints[j].Seq })
	return nil
}

// Entries returns stored entries with from <= Seq < to.
func (s *Store) Entries(deviceID, from, to uint64) []oplog.Entry {
	d, ok := s.lookup(deviceID)
	if ok {
		d.mu.RLock()
		defer d.mu.RUnlock()
	}
	if !ok {
		return nil
	}
	if to > d.nextSeq {
		to = d.nextSeq
	}
	if from < d.entriesBase {
		from = d.entriesBase
	}
	if from >= to {
		return nil
	}
	out := make([]oplog.Entry, to-from)
	copy(out, d.entries[from-d.entriesBase:to-d.entriesBase])
	return out
}

// Version returns the newest retained version of lpn written strictly
// before sequence before.
func (s *Store) Version(deviceID, lpn, before uint64) (oplog.PageRecord, bool) {
	d, ok := s.lookup(deviceID)
	if ok {
		d.mu.RLock()
		defer d.mu.RUnlock()
	}
	if !ok {
		return oplog.PageRecord{}, false
	}
	vs := d.versions[lpn]
	i := sort.Search(len(vs), func(i int) bool { return vs[i].WriteSeq >= before })
	if i == 0 {
		return oplog.PageRecord{}, false
	}
	return vs[i-1], true
}

// Image returns, for every LPN with a retained version written before the
// given sequence, that newest version — a full point-in-time snapshot of
// the offloaded history.
func (s *Store) Image(deviceID, before uint64) []oplog.PageRecord {
	d, ok := s.lookup(deviceID)
	if ok {
		d.mu.RLock()
		defer d.mu.RUnlock()
	}
	if !ok {
		return nil
	}
	var out []oplog.PageRecord
	for _, vs := range d.versions {
		i := sort.Search(len(vs), func(i int) bool { return vs[i].WriteSeq >= before })
		if i > 0 {
			out = append(out, vs[i-1])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LPN < out[j].LPN })
	return out
}

// ImageRange returns the next chunk of a point-in-time image: for up to
// maxPages LPNs with fromLPN <= LPN < toLPN that have a retained version
// written before the given sequence, the newest such version, in LPN
// order. nextLPN is one past the last returned LPN and more reports
// whether further qualifying LPNs exist at or past it.
//
// The streamed restore path calls this once per chunk rather than
// snapshotting the whole image up front: versions that arrive while the
// restore is in flight (a recovering device's own restore-churn offloads)
// are visible to later chunks, so the stream never serves a view staler
// than the chain head it resumed from.
//
// only, when non-nil, restricts the image to that LPN set — the
// checkpoint-anchored delta path passes TouchedSince(anchor) so only
// diverged pages are served. nil means the full image.
func (s *Store) ImageRange(deviceID, fromLPN, toLPN, before uint64, maxPages int, only map[uint64]struct{}) (pages []oplog.PageRecord, nextLPN uint64, more bool) {
	d, ok := s.lookup(deviceID)
	if !ok {
		return nil, fromLPN, false
	}
	if maxPages <= 0 {
		maxPages = 1
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	// Bounded selection: keep the maxPages+1 smallest qualifying LPNs in
	// a max-heap (the +1 learns whether more remain), so one chunk costs
	// O(versions · log chunk) — never a sort of the whole remaining tail,
	// and never an allocation sized by a wire-supplied value.
	k := maxPages + 1
	lpns := make([]uint64, 0, min(k, 4096))
	for lpn, vs := range d.versions {
		if lpn < fromLPN || lpn >= toLPN {
			continue
		}
		if only != nil {
			if _, touched := only[lpn]; !touched {
				continue
			}
		}
		if i := sort.Search(len(vs), func(i int) bool { return vs[i].WriteSeq >= before }); i == 0 {
			continue
		}
		if len(lpns) < k {
			lpns = append(lpns, lpn)
			lpnHeapUp(lpns)
		} else if lpn < lpns[0] {
			lpns[0] = lpn
			lpnHeapDown(lpns)
		}
	}
	sort.Slice(lpns, func(i, j int) bool { return lpns[i] < lpns[j] })
	if len(lpns) > maxPages {
		lpns, more = lpns[:maxPages], true
	}
	for _, lpn := range lpns {
		vs := d.versions[lpn]
		i := sort.Search(len(vs), func(i int) bool { return vs[i].WriteSeq >= before })
		pages = append(pages, vs[i-1])
	}
	nextLPN = fromLPN
	if n := len(pages); n > 0 {
		nextLPN = pages[n-1].LPN + 1
	}
	return pages, nextLPN, more
}

// lpnHeapUp restores the max-heap property after appending to h.
func lpnHeapUp(h []uint64) {
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if h[p] >= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

// lpnHeapDown restores the max-heap property after replacing h[0].
func lpnHeapDown(h []uint64) {
	for i := 0; ; {
		big := i
		if l := 2*i + 1; l < len(h) && h[l] > h[big] {
			big = l
		}
		if r := 2*i + 2; r < len(h) && h[r] > h[big] {
			big = r
		}
		if big == i {
			break
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// Checkpoint returns the newest checkpoint with Seq <= before.
func (s *Store) Checkpoint(deviceID, before uint64) (nvmeoe.Checkpoint, bool) {
	d, ok := s.lookup(deviceID)
	if ok {
		d.mu.RLock()
		defer d.mu.RUnlock()
	}
	if !ok || len(d.checkpoints) == 0 {
		return nvmeoe.Checkpoint{}, false
	}
	i := sort.Search(len(d.checkpoints), func(i int) bool { return d.checkpoints[i].Seq > before })
	if i == 0 {
		return nvmeoe.Checkpoint{}, false
	}
	return d.checkpoints[i-1], true
}

// Head returns the device's chain state: next expected sequence and the
// hash of the last accepted entry.
func (s *Store) Head(deviceID uint64) nvmeoe.Head {
	d, ok := s.lookup(deviceID)
	if ok {
		d.mu.RLock()
		defer d.mu.RUnlock()
	}
	if !ok {
		return nvmeoe.Head{}
	}
	return nvmeoe.Head{NextSeq: d.nextSeq, Hash: d.headHash}
}

// Stats summarizes a device's remote footprint.
type Stats struct {
	Segments    int
	Entries     int
	Versions    int
	PageBytes   int64
	Checkpoints int
	// BytesLogical is the uncompressed size of the device's segments;
	// BytesStored what the storage tier actually holds for them. Stored <
	// logical is the wire/at-rest compression stretching the retention
	// budget.
	BytesLogical int64
	BytesStored  int64
	// PagesDeduped counts this device's ingested page versions whose
	// content the chunk index already held (from any device) — the
	// store-side dedup ledger.
	PagesDeduped int64
}

// DeviceStats returns the remote footprint of one device.
func (s *Store) DeviceStats(deviceID uint64) Stats {
	d, ok := s.lookup(deviceID)
	if ok {
		d.mu.RLock()
		defer d.mu.RUnlock()
	}
	if !ok {
		return Stats{}
	}
	nv := 0
	for _, vs := range d.versions {
		nv += len(vs)
	}
	return Stats{
		Segments:     len(d.segKeys),
		Entries:      len(d.entries),
		Versions:     nv,
		PageBytes:    d.pageBytes,
		Checkpoints:  len(d.checkpoints),
		BytesLogical: d.bytesLogical,
		BytesStored:  d.bytesStored,
		PagesDeduped: d.dedupHits,
	}
}

// Dedup returns the content-addressed index's fleet-wide ledger: distinct
// physical pages held versus logical page versions referencing them.
func (s *Store) Dedup() DedupStats {
	return s.chunks.stats()
}

// TouchedSince returns the set of LPNs with a state-changing log entry
// (write, trim, recovery write/trim) at or after sequence since — the
// diverged set a checkpoint-anchored delta restore must stream. Every LPN
// outside the set has had no state change since the anchor, so its live
// content at the cut equals its content at the anchor and the device
// reconstructs it locally. since == 0 (no anchor) returns nil: no filter,
// stream the full image.
func (s *Store) TouchedSince(deviceID, since uint64) map[uint64]struct{} {
	if since == 0 {
		return nil
	}
	d, ok := s.lookup(deviceID)
	if !ok {
		return map[uint64]struct{}{}
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	touched := map[uint64]struct{}{}
	if since < d.entriesBase {
		since = d.entriesBase
	}
	if since >= d.nextSeq {
		return touched
	}
	for _, e := range d.entries[since-d.entriesBase:] {
		switch e.Kind {
		case oplog.KindWrite, oplog.KindTrim, oplog.KindRecovery, oplog.KindRecoveryTrim:
			touched[e.LPN] = struct{}{}
		}
	}
	return touched
}

// DropSegmentPages removes the page payloads of the device's i-th stored
// segment from the version and chunk indexes — the retention-expiry
// primitive. The evidence chain (entries, blobs, checkpoints) is kept for
// forensics; only the retained page versions and their chunk references
// go. A chunk's physical copy is freed only when the last page version
// referencing it — from any device — is dropped. Each segment may be
// dropped at most once.
func (s *Store) DropSegmentPages(deviceID uint64, i int) error {
	seg, err := s.FetchSegment(deviceID, i)
	if err != nil {
		return err
	}
	d, ok := s.lookup(deviceID)
	if !ok {
		return fmt.Errorf("%w: device %d", ErrNotFound, deviceID)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, p := range seg.Pages {
		vs := d.versions[p.LPN]
		for j := range vs {
			if vs[j].WriteSeq != p.WriteSeq {
				continue
			}
			d.versions[p.LPN] = append(vs[:j], vs[j+1:]...)
			if len(d.versions[p.LPN]) == 0 {
				delete(d.versions, p.LPN)
			}
			d.pageBytes -= int64(len(p.Data))
			s.chunks.release(p.Hash)
			break
		}
	}
	return nil
}

// Blobs exposes the storage tier the Store persists to (tier selection,
// cost/latency ledgers, settling eventually-consistent listings).
func (s *Store) Blobs() ObjectStore { return s.blobs }

// TierStats returns the storage tier's cost/latency ledger when the
// backend keeps one (s3sim), or a zero ledger for free local tiers.
func (s *Store) TierStats() TierStats {
	if ts, ok := s.blobs.(TierStatter); ok {
		return ts.TierStats()
	}
	return TierStats{}
}

// PutServiceTime returns the tier's modeled service time for persisting an
// n-byte blob, or zero on tiers without a latency model. The server reads
// it per accepted segment and carries it in the durability ack.
func (s *Store) PutServiceTime(n int) simclock.Duration {
	if m, ok := s.blobs.(ServiceTimeModeler); ok {
		return m.PutServiceTime(n)
	}
	return 0
}

// FetchSegment retrieves and decodes the device's i-th stored segment,
// transparently inflating compressed blobs (legacy uncompressed blobs
// decode too). Forensic tooling re-reads the raw evidence chain this way.
func (s *Store) FetchSegment(deviceID uint64, i int) (*oplog.Segment, error) {
	d, ok := s.lookup(deviceID)
	if !ok {
		return nil, fmt.Errorf("%w: device %d", ErrNotFound, deviceID)
	}
	d.mu.RLock()
	if i < 0 || i >= len(d.segKeys) {
		d.mu.RUnlock()
		return nil, fmt.Errorf("%w: segment %d of device %d", ErrNotFound, i, deviceID)
	}
	key := d.segKeys[i]
	d.mu.RUnlock()
	blob, err := s.blobs.Get(key)
	if err != nil {
		return nil, err
	}
	// Decode into a pooled buffer sized by the blob's logical-size header:
	// the marshal is transient (UnmarshalSegment copies what it keeps), so
	// the cold path stops double-allocating it.
	buf := bufpool.Get(nvmeoe.SegmentBlobLogicalSize(blob))
	raw, err := nvmeoe.AppendDecodeSegmentBlob(buf.B, blob)
	if err != nil {
		buf.Release()
		return nil, fmt.Errorf("remote: fetch %s: %w", key, err)
	}
	seg, err := oplog.UnmarshalSegment(raw)
	buf.Release()
	if err != nil {
		return nil, fmt.Errorf("remote: fetch %s: %w", key, err)
	}
	return seg, nil
}

// Reload rebuilds the in-memory indexes from the object store. It verifies
// the full chain as it goes, so a tampered blob store is detected. This is
// the durability story: the index is a cache; the blobs are the truth.
//
// Reload is the restart-recovery path: it holds the directory lock for its
// whole duration, so sessions arriving mid-rebuild block at the shard
// lookup instead of ingesting into a directory about to be replaced.
// Callers must still quiesce in-flight requests first (Server.Close) —
// an append already past the lookup races the blob listing.
func (s *Store) Reload() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys, err := s.blobs.List("dev/")
	if err != nil {
		return err
	}
	// Rebuild into a fresh directory (and fresh chunk index) and swap
	// both in at the end, so a failed reload leaves the previous index
	// intact.
	devices := map[uint64]*deviceLog{}
	chunks := newChunkIndex()
	dev := func(id uint64) *deviceLog {
		d, ok := devices[id]
		if !ok {
			d = &deviceLog{versions: map[uint64][]oplog.PageRecord{}}
			devices[id] = d
		}
		return d
	}
	sort.Strings(keys) // seg keys are zero-padded by seq: lexical == numeric
	for _, key := range keys {
		var devID uint64
		var seq uint64
		if n, _ := fmt.Sscanf(key, "dev/%d/seg/%d", &devID, &seq); n == 2 {
			blob, err := s.blobs.Get(key)
			if err != nil {
				return err
			}
			// Blobs land in whatever frame the wire carried: codec-framed
			// (possibly compressed) since the compressed offload wire, bare
			// marshals before it. Decode handles both, through a pooled
			// buffer reused across the whole rebuild — the marshal is
			// transient (UnmarshalSegment copies what it keeps), so a
			// fleet-sized reload no longer allocates one per segment.
			buf := bufpool.Get(nvmeoe.SegmentBlobLogicalSize(blob))
			raw, err := nvmeoe.AppendDecodeSegmentBlob(buf.B, blob)
			if err != nil {
				buf.Release()
				return fmt.Errorf("remote: reload %s: %w", key, err)
			}
			logical := len(raw)
			seg, err := oplog.UnmarshalSegment(raw)
			buf.Release()
			if err != nil {
				return fmt.Errorf("remote: reload %s: %w", key, err)
			}
			if err := seg.VerifyPages(); err != nil {
				return fmt.Errorf("remote: reload %s: %w", key, err)
			}
			d := dev(seg.DeviceID)
			if len(seg.Entries) > 0 {
				if seg.Entries[0].Seq != d.nextSeq {
					return fmt.Errorf("remote: reload %s: chain gap at %d", key, d.nextSeq)
				}
				if err := oplog.VerifyChain(seg.Entries, d.headHash); err != nil {
					return fmt.Errorf("remote: reload %s: %w", key, err)
				}
				d.entries = append(d.entries, seg.Entries...)
				d.nextSeq = seg.Entries[len(seg.Entries)-1].Seq + 1
				d.headHash = seg.Entries[len(seg.Entries)-1].Hash
			}
			for i := range seg.Pages {
				p := &seg.Pages[i]
				data, hit := chunks.intern(p.Hash, p.Data)
				p.Data = data
				if hit {
					d.dedupHits++
				}
				d.versions[p.LPN] = insertVersion(d.versions[p.LPN], *p)
				d.pageBytes += int64(len(p.Data))
			}
			d.segKeys = append(d.segKeys, key)
			d.bytesLogical += int64(logical)
			d.bytesStored += int64(len(blob))
			continue
		}
		if n, _ := fmt.Sscanf(key, "dev/%d/cp/%d", &devID, &seq); n == 2 {
			blob, err := s.blobs.Get(key)
			if err != nil {
				return err
			}
			cp, err := nvmeoe.UnmarshalCheckpoint(blob)
			if err != nil {
				return fmt.Errorf("remote: reload %s: %w", key, err)
			}
			d := dev(devID)
			d.checkpoints = append(d.checkpoints, cp)
		}
	}
	for _, d := range devices {
		sort.Slice(d.checkpoints, func(i, j int) bool { return d.checkpoints[i].Seq < d.checkpoints[j].Seq })
	}
	s.devices = devices
	s.chunks = chunks
	return nil
}

// ReloadSettled is Reload for eventually-consistent storage tiers: it
// first settles the backend's listing (s3sim's LIST lags recent PUTs, so a
// plain Reload could silently rebuild short of the chain head) and then
// rebuilds. On strongly-consistent tiers it is exactly Reload.
func (s *Store) ReloadSettled() error {
	if st, ok := s.blobs.(Settler); ok {
		st.Settle()
	}
	return s.Reload()
}
