package remote

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/simclock"
)

// The storage-tier backend registry. The paper backs the remote evidence
// chain with both local storage servers and Amazon S3; here every tier is
// an ObjectStore behind a name, so the server, the experiments, and the
// CLI select one with a flag instead of hard-wiring a constructor.
//
//	mem    in-process map — the free, zero-latency tier tests use
//	dir    a local storage server's filesystem (BackendOptions.Dir)
//	s3sim  the modeled cloud tier: latency, request/storage cost,
//	       multipart uploads, eventually-consistent LIST
//
// Additional tiers register with RegisterBackend.

// BackendOptions parameterizes backend construction.
type BackendOptions struct {
	// Dir roots filesystem-backed tiers ("" means the backend picks or
	// fails, per its semantics).
	Dir string
	// S3 overrides the cloud model; the zero value means DefaultS3Config.
	S3 *S3Config
}

// BackendFactory builds one storage tier.
type BackendFactory func(opts BackendOptions) (ObjectStore, error)

var (
	backendMu sync.RWMutex
	backends  = map[string]BackendFactory{
		"mem": func(BackendOptions) (ObjectStore, error) { return NewMemStore(), nil },
		"dir": func(opts BackendOptions) (ObjectStore, error) {
			if opts.Dir == "" {
				return nil, fmt.Errorf("remote: dir backend needs a root directory")
			}
			return NewDirStore(opts.Dir)
		},
		"s3sim": func(opts BackendOptions) (ObjectStore, error) {
			cfg := DefaultS3Config()
			if opts.S3 != nil {
				cfg = *opts.S3
			}
			return NewS3Sim(cfg), nil
		},
	}
)

// RegisterBackend adds (or replaces) a named storage tier.
func RegisterBackend(name string, f BackendFactory) {
	backendMu.Lock()
	defer backendMu.Unlock()
	backends[name] = f
}

// OpenBackend builds the named storage tier.
func OpenBackend(name string, opts BackendOptions) (ObjectStore, error) {
	backendMu.RLock()
	f, ok := backends[name]
	backendMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("remote: unknown backend %q (have %v)", name, Backends())
	}
	return f(opts)
}

// Backends lists the registered tier names, sorted.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	names := make([]string, 0, len(backends))
	for n := range backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TierStatter is implemented by backends that keep a cost/latency ledger
// (s3sim); Store surfaces it so experiments can read the model without
// knowing the concrete tier.
type TierStatter interface {
	TierStats() TierStats
}

// ServiceTimeModeler is implemented by backends whose Put has a modeled
// service time (s3sim). The server reads it per segment and threads it
// into the durability ack, so the device's OffloadAckTime reflects the
// backend it is actually protected by. Free local tiers simply don't
// implement it and ack with zero service time.
type ServiceTimeModeler interface {
	PutServiceTime(n int) simclock.Duration
}

// BackendProfile carries a tier's offload tuning defaults: how deep the
// device should stage and where its retention watermarks should sit. A
// high-latency cloud tier wants a deeper staging queue (more acks in
// flight to hide the round trip) and an earlier high watermark (start
// draining sooner, since each drain takes longer to become durable) than a
// local storage server does.
type BackendProfile struct {
	OffloadQueueDepth int
	OffloadHighWater  float64
	OffloadLowWater   float64
}

// profiles maps registered tiers to their tuning; Profile falls back to
// the local-tier defaults for tiers registered without one.
var profiles = map[string]BackendProfile{
	"mem":   {OffloadQueueDepth: 8, OffloadHighWater: 0.50, OffloadLowWater: 0.25},
	"dir":   {OffloadQueueDepth: 8, OffloadHighWater: 0.50, OffloadLowWater: 0.25},
	"s3sim": {OffloadQueueDepth: 32, OffloadHighWater: 0.40, OffloadLowWater: 0.20},
}

// Profile returns the named tier's offload tuning defaults.
func Profile(name string) BackendProfile {
	backendMu.RLock()
	defer backendMu.RUnlock()
	if p, ok := profiles[name]; ok {
		return p
	}
	return BackendProfile{OffloadQueueDepth: 8, OffloadHighWater: 0.50, OffloadLowWater: 0.25}
}

// RegisterBackendProfile sets (or replaces) a tier's tuning defaults.
func RegisterBackendProfile(name string, p BackendProfile) {
	backendMu.Lock()
	defer backendMu.Unlock()
	profiles[name] = p
}

// Settler is implemented by eventually-consistent backends whose LIST view
// can be forced current (s3sim). ReloadSettled uses it.
type Settler interface {
	Settle()
}
