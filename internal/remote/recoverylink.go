package remote

import (
	"sync"

	"repro/internal/simclock"
)

// RecoveryLink models the storage server's NIC during fleet recovery.
// Steady-state offload is device-bound — each device owns its NVMe-oE
// link — but recovery inverts the direction: after a fleet-wide incident,
// N devices pull their images from ONE server concurrently, and the
// server's egress NIC is the bottleneck (Project Almanac's observation
// that restore traffic, not ingest, is the bandwidth cliff). The model is
// processor sharing with per-session fair share: a chunk transferred while
// k sessions are recovering sees BW/k of the NIC.
//
// Devices recovering concurrently register with Open and charge each
// chunk's simulated time through ChunkTime. The instantaneous session
// count prices the share, so a device that finishes early returns its
// share to the stragglers — exactly the fairness a per-connection TCP
// share would give.
type RecoveryLink struct {
	// RTT is the per-chunk request round trip; MBps the server NIC
	// bandwidth shared by every recovering session. Zero values take the
	// defaults below.
	RTT  simclock.Duration
	MBps float64

	mu     sync.Mutex
	active int
	peak   int
}

// Recovery link defaults: a server NIC a few times faster than one
// device's offload link (25 GbE-class against the 1200 MB/s device link),
// with a slightly longer round trip for the request/credit exchange.
const (
	DefaultRecoveryRTT  = 50 * simclock.Microsecond
	DefaultRecoveryMBps = 3000
)

// NewRecoveryLink returns a link model; rtt/mbps <= 0 take the defaults.
func NewRecoveryLink(rtt simclock.Duration, mbps float64) *RecoveryLink {
	return &RecoveryLink{RTT: rtt, MBps: mbps}
}

// Open registers one recovering session and returns its release. Sessions
// must bracket their whole restore so the fair share prices concurrency
// honestly.
func (l *RecoveryLink) Open() (release func()) {
	l.mu.Lock()
	l.active++
	if l.active > l.peak {
		l.peak = l.active
	}
	l.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			l.mu.Lock()
			l.active--
			l.mu.Unlock()
		})
	}
}

// ChunkTime prices one chunk transfer at the current fair share:
// RTT + bytes / (NIC bandwidth / active sessions).
func (l *RecoveryLink) ChunkTime(bytes int) simclock.Duration {
	rtt, mbps := l.RTT, l.MBps
	if rtt <= 0 {
		rtt = DefaultRecoveryRTT
	}
	if mbps <= 0 {
		mbps = DefaultRecoveryMBps
	}
	l.mu.Lock()
	share := l.active
	l.mu.Unlock()
	if share < 1 {
		share = 1
	}
	return rtt + simclock.Duration(float64(bytes)*float64(share)/(mbps*1e6)*float64(simclock.Second))
}

// Active returns the number of sessions currently recovering.
func (l *RecoveryLink) Active() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.active
}

// PeakSessions returns the most sessions ever recovering at once.
func (l *RecoveryLink) PeakSessions() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.peak
}
