package remote

import (
	"sync"

	"repro/internal/netsim"
	"repro/internal/simclock"
)

// RecoveryLink models the storage server's NIC during fleet recovery.
// Steady-state offload is device-bound — each device owns its NVMe-oE
// link — but recovery inverts the direction: after a fleet-wide incident,
// N devices pull their images from ONE server concurrently, and the
// server's egress NIC is the bottleneck (Project Almanac's observation
// that restore traffic, not ingest, is the bandwidth cliff). The model is
// processor sharing with per-session fair share: a chunk transferred while
// k sessions are recovering sees BW/k of the NIC.
//
// Devices recovering concurrently register with Open and charge each
// chunk's simulated time through ChunkTime. The instantaneous session
// count prices the share, so a device that finishes early returns its
// share to the stragglers — exactly the fairness a per-connection TCP
// share would give.
//
// Since the shared-NIC QoS arbiter (internal/netsim) took over link
// pricing, RecoveryLink is a thin shim over the restore class of an
// arbiter. A link built by NewRecoveryLink owns a private arbiter sized
// from its RTT/MBps fields, which reproduces the historical behavior
// bit-for-bit (restore is the only active class, so it always holds the
// full line and the fair share is the session count). A link built by
// NewRecoveryLinkOn instead charges restore traffic to a shared arbiter,
// where it contends with offload and lifecycle classes under the QoS
// policy.
//
// Zero value: a `var l RecoveryLink` behaves exactly like
// NewRecoveryLink(0, 0) — both leave RTT/MBps unset and lazily build a
// private arbiter from the defaults below on first use. The equivalence
// is asserted by TestRecoveryLinkFairShare so the delegation cannot
// drift.
type RecoveryLink struct {
	// RTT is the per-chunk request round trip; MBps the server NIC
	// bandwidth shared by every recovering session. Zero values take the
	// defaults below. Both are read when the private arbiter is first
	// built; they are ignored on a link attached to a shared arbiter.
	RTT  simclock.Duration
	MBps float64

	mu  sync.Mutex
	arb *netsim.Arbiter
}

// Recovery link defaults: a server NIC a few times faster than one
// device's offload link (25 GbE-class against the 1200 MB/s device link),
// with a slightly longer round trip for the request/credit exchange.
const (
	DefaultRecoveryRTT  = 50 * simclock.Microsecond
	DefaultRecoveryMBps = 3000
)

// NewRecoveryLink returns a link model over its own private arbiter;
// rtt/mbps <= 0 take the defaults.
func NewRecoveryLink(rtt simclock.Duration, mbps float64) *RecoveryLink {
	return &RecoveryLink{RTT: rtt, MBps: mbps}
}

// NewRecoveryLinkOn returns a link that charges restore traffic to the
// given shared arbiter — the QoS path, where restores contend with
// offload and lifecycle classes on one NIC.
func NewRecoveryLinkOn(arb *netsim.Arbiter) *RecoveryLink {
	return &RecoveryLink{arb: arb}
}

// Arbiter returns the NIC arbiter restore traffic is charged to, lazily
// building the private one from RTT/MBps when the link is not attached to
// a shared NIC.
func (l *RecoveryLink) Arbiter() *netsim.Arbiter {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.arb == nil {
		rtt, mbps := l.RTT, l.MBps
		if rtt <= 0 {
			rtt = DefaultRecoveryRTT
		}
		if mbps <= 0 {
			mbps = DefaultRecoveryMBps
		}
		l.arb = netsim.New(netsim.Config{RTT: rtt, MBps: mbps})
	}
	return l.arb
}

// Open registers one recovering session and returns its release. Sessions
// must bracket their whole restore so the fair share prices concurrency
// honestly. Release is idempotent.
func (l *RecoveryLink) Open() (release func()) {
	f := l.Arbiter().Open(netsim.ClassRestore, 1)
	return f.Close
}

// ChunkTime prices one chunk transfer at the current fair share of the
// restore class's NIC allocation: RTT + bytes / (allocation / sessions).
// On a private arbiter the allocation is the full line, reproducing the
// historical RTT + bytes / (BW / sessions).
func (l *RecoveryLink) ChunkTime(bytes int) simclock.Duration {
	return l.Arbiter().GrantClass(netsim.ClassRestore, bytes)
}

// ChunkTimeAt is ChunkTime anchored at the caller's simulated clock, so
// the grant contributes to the arbiter's conservation span. The restorer
// charges chunks through this.
func (l *RecoveryLink) ChunkTimeAt(bytes int, now simclock.Time) simclock.Duration {
	return l.Arbiter().GrantClassAt(netsim.ClassRestore, bytes, now)
}

// Active returns the number of sessions currently recovering.
func (l *RecoveryLink) Active() int {
	return l.Arbiter().ActiveFlows(netsim.ClassRestore)
}

// PeakSessions returns the most sessions ever recovering at once.
func (l *RecoveryLink) PeakSessions() int {
	return l.Arbiter().ClassStats(netsim.ClassRestore).QueuePeak
}
