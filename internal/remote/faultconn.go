package remote

import (
	"errors"
	"net"
	"sync"
)

// ErrLinkChoked is what a ChokeConn returns once its read budget is spent.
var ErrLinkChoked = errors.New("remote: fault-injected link drop")

// ChokeConn is a deterministic fault-injection vehicle: it lets Budget
// Read calls through and then drops the link. Under net.Pipe each frame
// write arrives as its own Read, so a budget of handshake reads plus
// three reads per frame cuts a session after a known number of frames —
// exactly mid-stream. The recovery experiment uses it to cut one
// device's restore session; resume/redial tests use it the same way.
type ChokeConn struct {
	net.Conn
	mu     sync.Mutex
	budget int
	dead   bool
}

// NewChokeConn wraps nc with a read budget.
func NewChokeConn(nc net.Conn, budget int) *ChokeConn {
	return &ChokeConn{Conn: nc, budget: budget}
}

func (c *ChokeConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.budget <= 0 {
		// A real dead link fails both directions. Closing the underlying
		// conn on first exhaustion makes the peer's pending writes error
		// instead of blocking forever — under synchronous net.Pipe, a
		// read-only failure would leave the far side wedged mid-write
		// (its ack) and this side wedged writing the next request.
		if !c.dead {
			c.dead = true
			c.Conn.Close()
		}
		c.mu.Unlock()
		return 0, ErrLinkChoked
	}
	c.budget--
	c.mu.Unlock()
	return c.Conn.Read(p)
}
