package remote

import (
	"fmt"
	"net"
	"sort"
	"sync"

	"repro/internal/netsim"
)

// The fleet control plane: a Cluster fronts N ingest servers over one
// shared durable Store. The consistent-hash ring (placement.go) maps each
// device to a server; Dial is the placement-aware factory devices plug
// into core.Config.Dial, so the existing redial/backoff/reconcile path is
// the failover path — when a server dies, Kill drains it, the ring drops
// its arcs, its devices re-place onto live peers, and each device's next
// redial lands on the new owner, where the FetchHead reconcile adopts
// whatever was durable but unacked. The store is shared exactly so that
// works: chain verification at the new server continues from the same
// per-device head the old server left behind.
//
// Rebalancing under skew rides the same machinery in miniature: when one
// server's decode-queue peak stays persistently above its peers,
// RebalanceTick cuts its ring weight, re-places the devices whose arcs
// moved, and closes their sessions so they redial to the new owners.

// ClusterConfig sizes a cluster. The zero value of every tuning field
// selects a sensible default.
type ClusterConfig struct {
	// Servers is the ingest-server count (minimum 1).
	Servers int
	// PSK enrolls every device (single-tenant, like NewServer).
	PSK []byte
	// Server is the per-server ingest config (decode lane sizing).
	Server ServerConfig
	// NIC sizes each server's egress-NIC QoS arbiter (one arbiter per
	// server — servers have independent NICs). The zero value selects the
	// netsim defaults (3000 MB/s line, 50µs RTT, standard floors).
	NIC netsim.Config
	// VirtualNodes per weight-100 server (0: DefaultVirtualNodes).
	VirtualNodes int
	// LoadFactor bounds per-server device count at LoadFactor×mean
	// (<=1: DefaultLoadFactor).
	LoadFactor float64

	// SkewFactor: a server is hot when its per-tick queue peak exceeds
	// SkewFactor× the median of its peers (0: 2.0).
	SkewFactor float64
	// SkewTicks: consecutive hot ticks before a weight cut (0: 2).
	SkewTicks int
	// SkewMinPeak: ignore peaks below this absolute depth (0: 8) so an
	// idle fleet never rebalances on noise.
	SkewMinPeak int
	// SkewMinBytes: RebalanceOnIngest ignores per-window ingest volumes
	// below this many wire bytes (0: 64 KiB) — the live-skew analogue of
	// SkewMinPeak.
	SkewMinBytes int
	// WeightStep: percent of weight removed per rebalance (0: 25).
	WeightStep int
	// MinWeight: weight floor a rebalance never cuts below (0: 25).
	MinWeight int

	// WrapConn, when set, wraps the device side of each dialed pipe —
	// the hook fault-injection tests use to choke a session mid-stream.
	WrapConn func(deviceID uint64, nc net.Conn) net.Conn
}

func (c *ClusterConfig) normalize() {
	if c.Servers < 1 {
		c.Servers = 1
	}
	if c.SkewFactor <= 0 {
		c.SkewFactor = 2.0
	}
	if c.SkewTicks <= 0 {
		c.SkewTicks = 2
	}
	if c.SkewMinPeak <= 0 {
		c.SkewMinPeak = 8
	}
	if c.SkewMinBytes <= 0 {
		c.SkewMinBytes = 64 << 10
	}
	if c.WeightStep <= 0 {
		c.WeightStep = 25
	}
	if c.MinWeight <= 0 {
		c.MinWeight = 25
	}
}

// ClusterStats ledgers control-plane events.
type ClusterStats struct {
	// Dials and DialsRefused count placement-aware dial attempts; refusals
	// happen in the window between a server's death and its eviction from
	// the ring (devices back off and redial).
	Dials        uint64
	DialsRefused uint64
	// Kills and DevicesFailedOver count injected/observed server deaths
	// and the devices they remapped; Revives counts dead servers brought
	// back into the ring.
	Kills             int
	Revives           int
	DevicesFailedOver int
	// Rebalances counts weight cuts; DevicesRebalanced the devices they
	// moved off hot servers.
	Rebalances        int
	DevicesRebalanced int
}

// ServerInfo is one server's control-plane row.
type ServerInfo struct {
	ID        int
	Alive     bool
	Weight    int
	Devices   int // devices currently placed here
	QueuePeak int // lifetime decode-backlog peak
	Sessions  uint64
	Ingest    IngestStats
}

type clusterNode struct {
	id       int
	srv      *Server
	alive    bool
	weight   int
	hotTicks int
}

// Cluster is the multi-server control plane. Safe for concurrent use.
type Cluster struct {
	cfg       ClusterConfig
	store     *Store
	ring      *Ring
	placement *Placement

	// OnMove, when set, is invoked once per device whose owner changed
	// (failover or rebalance), with the cluster lock held — so segment
	// routing via Owner cannot observe the new owner before the callback
	// completes. Used to hand per-device detection state between
	// per-server engines. Must not call back into the Cluster.
	OnMove func(deviceID uint64, from, to int)

	mu    sync.RWMutex
	nodes []*clusterNode
	stats ClusterStats
}

// NewCluster builds cfg.Servers ingest servers over the shared store.
func NewCluster(store *Store, cfg ClusterConfig) *Cluster {
	cfg.normalize()
	ring := NewRing(cfg.VirtualNodes)
	c := &Cluster{
		cfg:       cfg,
		store:     store,
		ring:      ring,
		placement: NewPlacement(ring, cfg.LoadFactor),
	}
	for i := 0; i < cfg.Servers; i++ {
		srv := NewServer(store, cfg.PSK)
		srv.Config = cfg.Server
		srv.NIC = netsim.New(cfg.NIC)
		c.nodes = append(c.nodes, &clusterNode{id: i, srv: srv, alive: true, weight: 100})
		ring.AddNode(i, 100)
	}
	return c
}

// Store returns the shared durable store.
func (c *Cluster) Store() *Store { return c.store }

// Server returns one server by ID (nil when out of range) — for tests and
// per-server reporting.
func (c *Cluster) Server(id int) *Server {
	if id < 0 || id >= len(c.nodes) {
		return nil
	}
	return c.nodes[id].srv
}

// Owner returns the server currently responsible for a device. Detection
// routing reads this per segment; the lock ordering with OnMove (see
// there) guarantees a mover's state lands at the new engine before any
// segment routes there.
func (c *Cluster) Owner(deviceID uint64) (int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.placement.Owner(deviceID)
}

// Stats returns a snapshot of the control-plane ledger.
func (c *Cluster) Stats() ClusterStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.stats
}

// Servers returns every server's control-plane row, dead ones included.
func (c *Cluster) Servers() []ServerInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	spread := c.placement.Spread()
	out := make([]ServerInfo, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, ServerInfo{
			ID:        n.id,
			Alive:     n.alive,
			Weight:    n.weight,
			Devices:   spread[n.id],
			QueuePeak: n.srv.QueuePeak(),
			Sessions:  n.srv.SessionsTotal(),
			Ingest:    n.srv.IngestTotals(),
		})
	}
	return out
}

// Spread returns the live device counts per server ID.
func (c *Cluster) Spread() map[int]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.placement.Spread()
}

// Dial is the placement-aware dial factory: it places (or re-places) the
// device on the ring, connects an in-process pipe to the owning server,
// and authenticates. Devices use it through core.Config.Dial, so a dead
// session — including one a Kill cut — heals through the ordinary
// redial/backoff path, landing on whatever server the ring now names.
func (c *Cluster) Dial(deviceID uint64) (*Client, error) {
	c.mu.Lock()
	node, ok := c.placement.Place(deviceID)
	var target *clusterNode
	if ok && node >= 0 && node < len(c.nodes) && c.nodes[node].alive {
		target = c.nodes[node]
		c.stats.Dials++
	} else {
		c.stats.DialsRefused++
	}
	c.mu.Unlock()
	if target == nil {
		return nil, fmt.Errorf("remote: no live server for device %d (placement updating)", deviceID)
	}
	dc, sc := net.Pipe()
	var devSide net.Conn = dc
	if c.cfg.WrapConn != nil {
		devSide = c.cfg.WrapConn(deviceID, dc)
	}
	go target.srv.HandleConn(sc)
	cl, err := Dial(devSide, c.cfg.PSK, deviceID)
	if err != nil {
		devSide.Close()
		return nil, err
	}
	return cl, nil
}

// DialFunc returns the closure form of Dial for one device — what gets
// assigned to core.Config.Dial.
func (c *Cluster) DialFunc(deviceID uint64) func() (*Client, error) {
	return func() (*Client, error) { return c.Dial(deviceID) }
}

// Kill fails one server: mark it dead (dials start refusing), drain it
// (Server.Close waits out the decode lane, so every in-flight segment is
// fully applied or never entered the store), drop its ring arcs, and
// re-place exactly its devices onto live peers. Their next redial routes
// to the new owner, whose FetchHead reconcile adopts anything durable but
// unacked — zero segments lost by construction. Returns the moves.
func (c *Cluster) Kill(id int) ([]Move, error) {
	c.mu.Lock()
	if id < 0 || id >= len(c.nodes) {
		c.mu.Unlock()
		return nil, fmt.Errorf("remote: no server %d", id)
	}
	node := c.nodes[id]
	if !node.alive {
		c.mu.Unlock()
		return nil, fmt.Errorf("remote: server %d already dead", id)
	}
	live := 0
	for _, n := range c.nodes {
		if n.alive {
			live++
		}
	}
	if live <= 1 {
		c.mu.Unlock()
		return nil, fmt.Errorf("remote: refusing to kill the last live server")
	}
	node.alive = false
	c.mu.Unlock()

	// Drain outside the lock: teardown routes in-flight segments through
	// detection, which reads Owner (and would deadlock on c.mu).
	node.srv.Close()

	c.mu.Lock()
	c.ring.RemoveNode(id)
	moves := c.placement.Evict(id)
	c.stats.Kills++
	c.stats.DevicesFailedOver += len(moves)
	if c.OnMove != nil {
		for _, m := range moves {
			c.OnMove(m.Device, m.From, m.To)
		}
	}
	c.mu.Unlock()

	// A dial that passed the liveness check just before the flip may have
	// landed a session after the first drain; cut stragglers too.
	node.srv.Close()
	return moves, nil
}

// Revive brings a killed server back: its ring arcs return at the weight
// it last held and dials may place devices on it again. Server.Close is a
// drain, not a shutdown latch, so the same Server object serves new
// sessions as soon as the ring names it. Devices currently placed
// elsewhere stay put (placement is sticky); load flows back through new
// placements and skew rebalancing.
func (c *Cluster) Revive(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.nodes) {
		return fmt.Errorf("remote: no server %d", id)
	}
	node := c.nodes[id]
	if node.alive {
		return fmt.Errorf("remote: server %d already alive", id)
	}
	node.alive = true
	node.hotTicks = 0
	// Discard load accumulated before death so the first post-revive skew
	// window reflects only fresh traffic.
	node.srv.TakeQueuePeak()
	node.srv.TakeIngestWindow()
	c.ring.AddNode(id, node.weight)
	c.stats.Revives++
	return nil
}

// skewSample is one live server's load signal for a rebalance pass.
type skewSample struct {
	node   *clusterNode
	signal int
}

// cutHottestLocked applies the shared skew policy to one set of samples: a
// server is hot when its signal is at least SkewFactor× the median of its
// peers (and above minSignal); after SkewTicks consecutive hot passes its
// ring weight takes one WeightStep cut and its moved devices re-place.
// Caller holds c.mu and must CloseDevice the returned moves outside the
// lock.
func (c *Cluster) cutHottestLocked(live []skewSample, minSignal int) (*clusterNode, []Move) {
	if len(live) < 2 {
		return nil, nil
	}
	var hot *clusterNode
	for i, s := range live {
		peers := make([]int, 0, len(live)-1)
		for j, p := range live {
			if j != i {
				peers = append(peers, p.signal)
			}
		}
		sort.Ints(peers)
		median := peers[len(peers)/2]
		if median < 1 {
			median = 1
		}
		if s.signal >= minSignal && float64(s.signal) >= c.cfg.SkewFactor*float64(median) {
			s.node.hotTicks++
			if hot == nil && s.node.hotTicks >= c.cfg.SkewTicks && s.node.weight > c.cfg.MinWeight {
				hot = s.node
			}
		} else {
			s.node.hotTicks = 0
		}
	}
	if hot == nil {
		return nil, nil
	}
	w := hot.weight * (100 - c.cfg.WeightStep) / 100
	if w < c.cfg.MinWeight {
		w = c.cfg.MinWeight
	}
	hot.weight = w
	hot.hotTicks = 0
	c.ring.SetWeight(hot.id, w)
	moves := c.placement.Rebalance(hot.id)
	c.stats.Rebalances++
	c.stats.DevicesRebalanced += len(moves)
	if c.OnMove != nil {
		for _, m := range moves {
			c.OnMove(m.Device, m.From, m.To)
		}
	}
	return hot, moves
}

// RebalanceTick samples each live server's decode-queue peak since the
// last tick and applies one weight cut when a server has been hot —
// peak above SkewFactor× the median of its peers — for SkewTicks
// consecutive ticks. Devices whose arcs the cut moved are re-placed and
// their sessions closed so they redial to the new owners. Returns the
// moves (nil on a quiet tick).
func (c *Cluster) RebalanceTick() []Move {
	c.mu.Lock()
	var live []skewSample
	for _, n := range c.nodes {
		if n.alive {
			live = append(live, skewSample{n, n.srv.TakeQueuePeak()})
		}
	}
	hot, moves := c.cutHottestLocked(live, c.cfg.SkewMinPeak)
	c.mu.Unlock()

	// Evict the moved devices' live sessions (outside the lock: the drain
	// routes their in-flight segments through Owner). They redial to the
	// new owners; the shared store keeps their chains seamless.
	for _, m := range moves {
		hot.srv.CloseDevice(m.Device)
	}
	return moves
}

// RebalanceOnIngest is RebalanceTick driven by the live ingest-skew window
// instead of decode-queue peaks: each live server's wire bytes accepted
// since the last call is the signal, so a server persistently receiving
// SkewFactor× its peers' traffic sheds weight even when its decode lane
// keeps up (queue peaks measure falling behind; this measures load as
// placed). The soak drives its rebalancing through this, sampling real
// observed traffic rather than a synthetic tick.
func (c *Cluster) RebalanceOnIngest() []Move {
	c.mu.Lock()
	var live []skewSample
	for _, n := range c.nodes {
		if n.alive {
			_, bytes := n.srv.TakeIngestWindow()
			sig := int(bytes)
			if sig < 0 {
				sig = 1<<63 - 1 // uint64 overflowed int: saturate, still "hot"
			}
			live = append(live, skewSample{n, sig})
		}
	}
	hot, moves := c.cutHottestLocked(live, c.cfg.SkewMinBytes)
	c.mu.Unlock()

	for _, m := range moves {
		hot.srv.CloseDevice(m.Device)
	}
	return moves
}

// Close drains every server.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		n.srv.Close()
	}
}
