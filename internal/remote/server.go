package remote

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/bufpool"
	"repro/internal/netsim"
	"repro/internal/nvmeoe"
	"repro/internal/oplog"
	"repro/internal/simclock"
)

// Error codes carried in MsgError payloads.
const (
	CodeNotFound = 404
	CodeBadData  = 400
	CodeInternal = 500
)

// Server accepts NVMe-oE sessions from devices and serves the Store. Every
// connection gets its own goroutine; segment pushes are handed to the
// shared decode lane (see ingest.go) so connection goroutines stay on the
// wire, and because the Store's indexes are sharded per device, sessions
// make progress independently — the server is the fan-in point of the
// fleet, not a serialization point.
type Server struct {
	Store *Store
	// LookupPSK maps an enrolled device ID to its pre-shared key.
	LookupPSK func(deviceID uint64) ([]byte, bool)
	// Config tunes the ingest path (decode lane sizing). Set it before the
	// first connection is served.
	Config ServerConfig
	// NIC is this server's egress-NIC QoS arbiter: the single shared link
	// that restore streams, device offload traffic, and lifecycle
	// transfers all contend on (internal/netsim). Set it before sessions
	// attach, or let NICArbiter build the default one lazily. Experiments
	// wire it into device configs (core.Config.NIC) and restore links
	// (NewRecoveryLinkOn) so every traffic class is priced on one line.
	NIC *netsim.Arbiter

	mu            sync.Mutex
	conns         map[net.Conn]uint64 // active session -> device ID
	closed        *sync.Cond          // broadcast when a session deregisters; lazily built under mu
	sessionsTotal uint64
	recStats      map[uint64]*RecoveryStats
	ingest        map[uint64]*ingestLedger
	lane          *decodeLane // running decode lane, nil when no session holds it

	// Server-wide decode backlog (jobs enqueued to the lane, not yet fully
	// ingested) and its peaks. queuePeak is the lifetime high-water mark;
	// windowPeak resets on TakeQueuePeak, which is what the cluster's
	// rebalancer samples per tick to spot a persistently hot server.
	queueDepth atomic.Int64
	queuePeak  atomic.Int64
	windowPeak atomic.Int64

	// Ingest-skew window: segments and wire bytes accepted since the last
	// TakeIngestWindow. Where the queue-peak window measures how far behind
	// a server's decode lane got, this measures how much load actually
	// landed — the live skew signal a soak-driven rebalancer compares
	// across servers (Cluster.RebalanceOnIngest).
	winSegments atomic.Uint64
	winBytes    atomic.Uint64
}

// RecoveryStats ledgers what the server served one device during restore:
// how many image streams it opened (and how many of those were resumes of
// an interrupted stream), and the chunk/page/byte volume that crossed the
// recovery path. Wire < logical is the codec compression; the restore wire
// traffic rides the same segment codec as offload.
type RecoveryStats struct {
	Streams      uint64
	Resumes      uint64 // streams opened mid-image (From > 0)
	RangeFetches uint64
	Chunks       uint64
	Pages        uint64
	BytesWire    uint64
	BytesLogical uint64
	// Dedup ledger. On hash-reference streams (FetchFlagDedup) every
	// served page is either a literal (first occurrence of its content
	// hash in the stream — full payload) or a reference (32-byte hash the
	// device resolves locally). BytesDedupSaved is the literal payload
	// volume references avoided; DeltaStreams counts streams served as
	// checkpoint-anchored deltas (Anchor > 0).
	PagesLiteral    uint64
	PagesRef        uint64
	BytesDedupSaved uint64
	DeltaStreams    uint64
}

// DefaultRecoveryChunkPages bounds pages per streamed restore chunk when
// the device does not ask for a specific chunking; MaxRecoveryChunkPages
// clamps what a device may ask for (a chunk must stay a right-sized
// frame, and the request field is wire data — never an allocation size).
const (
	DefaultRecoveryChunkPages = 128
	MaxRecoveryChunkPages     = 4096
)

// RecoveryStats returns the restore-side ledger for one device.
func (s *Server) RecoveryStats(deviceID uint64) RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rs := s.recStats[deviceID]; rs != nil {
		return *rs
	}
	return RecoveryStats{}
}

// addRecovery folds one request's restore traffic into the device ledger.
func (s *Server) addRecovery(deviceID uint64, d RecoveryStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recStats == nil {
		s.recStats = map[uint64]*RecoveryStats{}
	}
	rs := s.recStats[deviceID]
	if rs == nil {
		rs = &RecoveryStats{}
		s.recStats[deviceID] = rs
	}
	rs.Streams += d.Streams
	rs.Resumes += d.Resumes
	rs.RangeFetches += d.RangeFetches
	rs.Chunks += d.Chunks
	rs.Pages += d.Pages
	rs.BytesWire += d.BytesWire
	rs.BytesLogical += d.BytesLogical
	rs.PagesLiteral += d.PagesLiteral
	rs.PagesRef += d.PagesRef
	rs.BytesDedupSaved += d.BytesDedupSaved
	rs.DeltaStreams += d.DeltaStreams
}

// NICArbiter returns the server's egress-NIC arbiter, lazily building a
// default-configured one when none was assigned.
func (s *Server) NICArbiter() *netsim.Arbiter {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.NIC == nil {
		s.NIC = netsim.New(netsim.Config{})
	}
	return s.NIC
}

// NewServer returns a server over store that accepts any device presenting
// psk (single-tenant setup; use LookupPSK directly for fleets).
func NewServer(store *Store, psk []byte) *Server {
	return &Server{
		Store:     store,
		LookupPSK: func(uint64) ([]byte, bool) { return psk, true },
		conns:     map[net.Conn]uint64{},
	}
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		nc, err := l.Accept()
		if err != nil {
			return err
		}
		go s.HandleConn(nc)
	}
}

// ActiveSessions returns the number of authenticated device sessions.
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// SessionsTotal returns how many sessions ever authenticated.
func (s *Server) SessionsTotal() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessionsTotal
}

// Close terminates every active session and waits for their teardown to
// finish — including the decode-lane idle barrier each session runs on its
// way out — so when Close returns, every segment that was in flight is
// either fully applied (decoded, chain-verified, appended, subscribers
// run) or never entered the store; nothing is half-applied. Devices see a
// transport error and requeue their unacked segments. Close is a drain,
// not a shutdown latch: connections accepted afterwards are served
// normally.
func (s *Server) Close() {
	s.closeConns(func(uint64) bool { return true })
}

// CloseDevice terminates (and drains, like Close) only the sessions of one
// device — how the cluster evicts a device from a live server during
// rebalancing so it redials to its new owner.
func (s *Server) CloseDevice(deviceID uint64) {
	s.closeConns(func(dev uint64) bool { return dev == deviceID })
}

// closeConns closes every tracked session matching the predicate and
// blocks until those sessions deregister. Closing the conn errors any
// lane worker blocked writing an ack into it, so the per-session
// waitIdle barrier (which runs before deregistration) cannot wedge.
func (s *Server) closeConns(match func(deviceID uint64) bool) {
	s.mu.Lock()
	if s.closed == nil {
		s.closed = sync.NewCond(&s.mu)
	}
	targets := make([]net.Conn, 0, len(s.conns))
	for nc, dev := range s.conns {
		if match(dev) {
			targets = append(targets, nc)
		}
	}
	s.mu.Unlock()
	for _, nc := range targets {
		nc.Close()
	}
	s.mu.Lock()
	for {
		live := false
		for _, nc := range targets {
			if _, ok := s.conns[nc]; ok {
				live = true
				break
			}
		}
		if !live {
			break
		}
		s.closed.Wait()
	}
	s.mu.Unlock()
}

// track registers an authenticated session, returning its deregister.
func (s *Server) track(nc net.Conn, deviceID uint64) func() {
	s.mu.Lock()
	if s.conns == nil {
		s.conns = map[net.Conn]uint64{} // Server built as a literal
	}
	s.conns[nc] = deviceID
	s.sessionsTotal++
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.conns, nc)
		if s.closed != nil {
			s.closed.Broadcast() // a draining Close may be waiting on us
		}
		s.mu.Unlock()
	}
}

// noteQueue adjusts the server-wide decode backlog and, on growth, the
// peak ledgers.
func (s *Server) noteQueue(delta int64) {
	d := s.queueDepth.Add(delta)
	if delta <= 0 {
		return
	}
	for {
		p := s.queuePeak.Load()
		if d <= p || s.queuePeak.CompareAndSwap(p, d) {
			break
		}
	}
	for {
		p := s.windowPeak.Load()
		if d <= p || s.windowPeak.CompareAndSwap(p, d) {
			break
		}
	}
}

// QueuePeak returns the lifetime peak of the server-wide decode backlog.
func (s *Server) QueuePeak() int { return int(s.queuePeak.Load()) }

// TakeQueuePeak returns the decode-backlog peak since the previous call
// and resets the window to the current depth — the skew signal the
// cluster's rebalancer compares across servers each tick.
func (s *Server) TakeQueuePeak() int {
	p := s.windowPeak.Swap(s.queueDepth.Load())
	return int(p)
}

// TakeIngestWindow returns the segments and wire bytes this server accepted
// since the previous call and resets the window — the live ingest-skew
// signal RebalanceOnIngest samples per server.
func (s *Server) TakeIngestWindow() (segments, bytes uint64) {
	return s.winSegments.Swap(0), s.winBytes.Swap(0)
}

// HandleConn authenticates one device connection and serves its requests
// until it disconnects. Exported so tests and in-process wiring can drive
// a single net.Pipe end without a listener.
func (s *Server) HandleConn(nc net.Conn) {
	defer nc.Close()
	conn, deviceID, err := nvmeoe.ServerHandshake(nc, s.LookupPSK)
	if err != nil {
		return
	}
	defer s.track(nc, deviceID)()
	ss := newSession(s, nc, conn, deviceID)
	ss.lane = s.acquireLane()
	defer s.releaseLane(ss.lane)
	defer ss.waitIdle() // flush in-flight decode jobs before closing nc
	for {
		typ, body, err := conn.ReadMsg()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrClosedPipe) && !errors.Is(err, net.ErrClosed) {
				// Transport-integrity failures terminate the session;
				// the device will reconnect and resume from the acked
				// sequence.
				_ = err
			}
			return
		}
		if err := s.dispatch(ss, typ, body); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(ss *session, typ nvmeoe.MsgType, body []byte) error {
	switch typ {
	case nvmeoe.MsgSegment:
		// The payload is the codec-framed segment blob (or a bare marshal
		// from a pre-codec device). Hand it to the decode lane and return
		// to the wire: the worker decodes, verifies, appends, and acks.
		// body is private to this ReadMsg, so the handoff is safe.
		if ss.lane != nil {
			ss.begin()
			ss.lane.enqueue(ss, body)
			return nil
		}
		ss.ingestSegment(body) // inline baseline (DecodeWorkers < 0)
		return nil

	case nvmeoe.MsgCheckpoint:
		// Non-segment messages barrier on the lane so everything the wire
		// ordered before them is ingested first.
		ss.waitIdle()
		cp, err := nvmeoe.UnmarshalCheckpoint(body)
		if err != nil {
			return ss.sendErr(CodeBadData, err)
		}
		if err := s.Store.AppendCheckpoint(ss.deviceID, cp); err != nil {
			return ss.sendErr(CodeInternal, err)
		}
		return ss.writeMsg(nvmeoe.MsgCheckpointAck, (&nvmeoe.Ack{UpTo: cp.Seq}).Marshal())

	case nvmeoe.MsgFetch:
		ss.waitIdle()
		req, err := nvmeoe.UnmarshalFetchReq(body)
		if err != nil {
			return ss.sendErr(CodeBadData, err)
		}
		return s.serveFetch(ss, req)

	default:
		return ss.sendErr(CodeBadData, fmt.Errorf("unexpected message type %v", typ))
	}
}

// serveFetch answers one retrieval request. Every reply that carries a
// segment marshal (entries, versions, images, checkpoints, restore
// chunks) is wrapped in the segment codec — the ROADMAP gap where fetch
// responses shipped uncompressed while only the frame-level deflate
// helped them is closed here, and clients decode transparently. Head
// replies stay bare: 40 bytes gains nothing from a 9-byte codec header.
func (s *Server) serveFetch(ss *session, req nvmeoe.FetchReq) error {
	deviceID := ss.deviceID
	switch req.Kind {
	case nvmeoe.FetchEntries:
		seg := &oplog.Segment{DeviceID: deviceID, Entries: s.Store.Entries(deviceID, req.From, req.To)}
		return ss.writeMsg(nvmeoe.MsgFetchResp, nvmeoe.EncodeSegmentBlob(seg.Marshal()))
	case nvmeoe.FetchVersion:
		seg := &oplog.Segment{DeviceID: deviceID}
		if rec, ok := s.Store.Version(deviceID, req.LPN, req.Before); ok {
			seg.Pages = []oplog.PageRecord{rec}
		}
		return ss.writeMsg(nvmeoe.MsgFetchResp, nvmeoe.EncodeSegmentBlob(seg.Marshal()))
	case nvmeoe.FetchImage:
		// Compatibility shim: the monolithic image reply predates the
		// streamed restore path and survives for old tooling; new restores
		// go through FetchImageStream.
		seg := &oplog.Segment{DeviceID: deviceID, Pages: s.Store.Image(deviceID, req.Before)}
		return ss.writeMsg(nvmeoe.MsgFetchResp, nvmeoe.EncodeSegmentBlob(seg.Marshal()))
	case nvmeoe.FetchImageStream:
		return s.serveImageStream(ss, req)
	case nvmeoe.FetchRange:
		var pages []oplog.PageRecord
		for from := req.From; ; {
			chunk, next, more := s.Store.ImageRange(deviceID, from, req.To, req.Before, MaxRecoveryChunkPages, nil)
			pages = append(pages, chunk...)
			if !more || len(chunk) == 0 {
				break
			}
			from = next
		}
		seg := &oplog.Segment{DeviceID: deviceID, Pages: pages}
		blob := nvmeoe.EncodeSegmentBlob(seg.Marshal())
		s.addRecovery(deviceID, RecoveryStats{
			RangeFetches: 1,
			Pages:        uint64(len(pages)),
			BytesWire:    uint64(len(blob)),
			BytesLogical: uint64(nvmeoe.SegmentBlobLogicalSize(blob)),
		})
		return ss.writeMsg(nvmeoe.MsgFetchResp, blob)
	case nvmeoe.FetchCheckpoint:
		cp, ok := s.Store.Checkpoint(deviceID, req.Before)
		if !ok {
			return ss.sendErr(CodeNotFound, errors.New("no checkpoint"))
		}
		return ss.writeMsg(nvmeoe.MsgFetchResp, nvmeoe.EncodeSegmentBlob(cp.Marshal()))
	case nvmeoe.FetchHead:
		h := s.Store.Head(deviceID)
		return ss.writeMsg(nvmeoe.MsgFetchResp, h.Marshal())
	default:
		return ss.sendErr(CodeBadData, fmt.Errorf("unknown fetch kind %d", req.Kind))
	}
}

// serveImageStream streams the device's point-in-time image in LPN order:
// codec-framed chunks of at most ChunkPages pages each, terminated by a
// StreamEnd trailer. Each chunk is computed fresh from the store rather
// than from an up-front snapshot, so pages the device offloads while its
// own restore is running are served by later chunks instead of silently
// missed. A stream opened with From > 0 is a resume: the device already
// applied everything below From and the server just continues from there.
//
// Two orthogonal reductions apply on request. With FetchFlagDedup, chunks
// go out as hash-reference frames (MsgFetchChunkRef): the first occurrence
// of each content hash in the stream session carries the literal page,
// repeats carry only the hash — the per-session sent set guarantees every
// reference resolves from literals the device has already cached. With
// Anchor > 0, the stream is a checkpoint-anchored delta: only LPNs touched
// by a state-changing entry at or after the anchor are served, because
// everything else is bit-identical to what the device reconstructs from
// its own pre-anchor state.
func (s *Server) serveImageStream(ss *session, req nvmeoe.FetchReq) error {
	deviceID := ss.deviceID
	chunkPages := int(req.ChunkPages)
	if chunkPages <= 0 {
		chunkPages = DefaultRecoveryChunkPages
	}
	if chunkPages > MaxRecoveryChunkPages {
		chunkPages = MaxRecoveryChunkPages
	}
	delta := RecoveryStats{Streams: 1}
	if req.From > 0 {
		delta.Resumes = 1
	}
	dedup := req.Flags&nvmeoe.FetchFlagDedup != 0
	only := s.Store.TouchedSince(deviceID, req.Anchor)
	if only != nil {
		delta.DeltaStreams = 1
	}
	var sent map[[oplog.HashSize]byte]struct{}
	var refPages []nvmeoe.RefPage
	if dedup {
		sent = make(map[[oplog.HashSize]byte]struct{})
		refPages = make([]nvmeoe.RefPage, 0, chunkPages)
	}
	from := req.From
	end := nvmeoe.StreamEnd{NextLPN: from}
	for {
		pages, next, more := s.Store.ImageRange(deviceID, from, ^uint64(0), req.Before, chunkPages, only)
		if len(pages) > 0 {
			var blob []byte
			var msg nvmeoe.MsgType
			var raw *bufpool.Buf
			var blobBuf *bufpool.Buf
			if dedup {
				refPages = refPages[:0]
				for i := range pages {
					p := &pages[i]
					rp := nvmeoe.RefPage{
						LPN:      p.LPN,
						WriteSeq: p.WriteSeq,
						StaleSeq: p.StaleSeq,
						Cause:    p.Cause,
						Hash:     p.Hash,
					}
					if _, dup := sent[p.Hash]; dup {
						rp.Ref = true
						delta.PagesRef++
						delta.BytesDedupSaved += uint64(len(p.Data))
					} else {
						rp.Data = p.Data
						sent[p.Hash] = struct{}{}
						delta.PagesLiteral++
					}
					refPages = append(refPages, rp)
				}
				raw = bufpool.Get(nvmeoe.RefChunkWireSize(refPages))
				raw.B = nvmeoe.AppendRefChunk(raw.B, deviceID, refPages)
				blobBuf = bufpool.Get(nvmeoe.BlobOverhead + len(raw.B))
				blobBuf.B = nvmeoe.AppendSegmentBlob(blobBuf.B, raw.B)
				blob = blobBuf.B
				msg = nvmeoe.MsgFetchChunkRef
			} else {
				seg := &oplog.Segment{DeviceID: deviceID, Pages: pages}
				blob = nvmeoe.EncodeSegmentBlob(seg.Marshal())
				msg = nvmeoe.MsgFetchChunk
			}
			err := ss.writeMsg(msg, blob)
			// Account before releasing: SegmentBlobLogicalSize reads the
			// blob bytes, and a released buffer may already be another
			// stream's encode target.
			logical := nvmeoe.SegmentBlobLogicalSize(blob)
			wire := len(blob)
			if raw != nil {
				raw.Release()
			}
			if blobBuf != nil {
				blobBuf.Release()
			}
			if err != nil {
				s.addRecovery(deviceID, delta)
				return err
			}
			end.Chunks++
			end.Pages += uint64(len(pages))
			end.NextLPN = next
			delta.Chunks++
			delta.Pages += uint64(len(pages))
			delta.BytesWire += uint64(wire)
			delta.BytesLogical += uint64(logical)
		}
		if !more || len(pages) == 0 {
			break
		}
		from = next
	}
	s.addRecovery(deviceID, delta)
	return ss.writeMsg(nvmeoe.MsgFetchEnd, end.Marshal())
}

// Client is the device-side handle to a remote server session. Calls are
// synchronous request/response, matching the single-queue offload engine.
type Client struct {
	mu   sync.Mutex
	conn *nvmeoe.Conn
}

// Dial authenticates over nc and returns a client.
func Dial(nc net.Conn, psk []byte, deviceID uint64) (*Client, error) {
	conn, err := nvmeoe.DeviceHandshake(nc, psk, deviceID)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close tears down the session.
func (c *Client) Close() error { return c.conn.Close() }

// RemoteError is a server-reported failure.
type RemoteError struct {
	Code uint32
	Text string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote: server error %d: %s", e.Code, e.Text)
}

func (c *Client) roundTrip(t nvmeoe.MsgType, payload []byte, wantResp nvmeoe.MsgType) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.conn.WriteMsg(t, payload); err != nil {
		return nil, err
	}
	typ, body, err := c.conn.ReadMsg()
	if err != nil {
		return nil, err
	}
	if typ == nvmeoe.MsgError {
		em, err := nvmeoe.UnmarshalErrorMsg(body)
		if err != nil {
			return nil, err
		}
		return nil, &RemoteError{Code: em.Code, Text: em.Text}
	}
	if typ != wantResp {
		return nil, fmt.Errorf("remote: unexpected response %v, want %v", typ, wantResp)
	}
	return body, nil
}

// PushSegment ships one segment and waits for the durability ack. The
// segment is codec-encoded here; callers that already hold the encoded
// wire form (the offload engine encodes at seal time to size the link
// model) should use PushSegmentBlob.
func (c *Client) PushSegment(seg *oplog.Segment) error {
	return c.PushSegmentBlob(nvmeoe.EncodeSegmentBlob(seg.Marshal()), seg.LastSeq)
}

// PushSegmentBlob ships one codec-framed segment blob and waits for the
// durability ack covering lastSeq.
func (c *Client) PushSegmentBlob(blob []byte, lastSeq uint64) error {
	_, err := c.PushSegmentBlobTimed(blob, lastSeq)
	return err
}

// PushSegmentBlobTimed is PushSegmentBlob returning the storage tier's
// modeled Put service time carried in the ack (zero on free local tiers
// and on pre-tier-latency servers). The offload engine folds it into the
// simulated ack instant so device-side OffloadAckTime reflects the
// backend.
func (c *Client) PushSegmentBlobTimed(blob []byte, lastSeq uint64) (simclock.Duration, error) {
	body, err := c.roundTrip(nvmeoe.MsgSegment, blob, nvmeoe.MsgSegmentAck)
	if err != nil {
		return 0, err
	}
	ack, err := nvmeoe.UnmarshalAck(body)
	if err != nil {
		return 0, err
	}
	if ack.UpTo != lastSeq {
		return 0, fmt.Errorf("remote: ack up to %d, want %d", ack.UpTo, lastSeq)
	}
	return simclock.Duration(ack.SvcNs), nil
}

// PushCheckpoint ships one mapping snapshot and waits for the ack.
func (c *Client) PushCheckpoint(cp *nvmeoe.Checkpoint) error {
	_, err := c.roundTrip(nvmeoe.MsgCheckpoint, cp.Marshal(), nvmeoe.MsgCheckpointAck)
	return err
}

// fetchSegment round-trips one fetch request whose reply is a (possibly
// codec-framed) segment marshal. Pre-codec servers reply with bare
// marshals; DecodeSegmentBlob passes those through.
func (c *Client) fetchSegment(req nvmeoe.FetchReq) (*oplog.Segment, error) {
	body, err := c.roundTrip(nvmeoe.MsgFetch, req.Marshal(), nvmeoe.MsgFetchResp)
	if err != nil {
		return nil, err
	}
	raw, err := nvmeoe.DecodeSegmentBlob(body)
	if err != nil {
		return nil, err
	}
	return oplog.UnmarshalSegment(raw)
}

// FetchEntries retrieves log entries with from <= Seq < to.
func (c *Client) FetchEntries(from, to uint64) ([]oplog.Entry, error) {
	seg, err := c.fetchSegment(nvmeoe.FetchReq{Kind: nvmeoe.FetchEntries, From: from, To: to})
	if err != nil {
		return nil, err
	}
	return seg.Entries, nil
}

// FetchVersion retrieves the newest retained version of lpn written before
// the given sequence, reporting ok=false when none is stored.
func (c *Client) FetchVersion(lpn, before uint64) (oplog.PageRecord, bool, error) {
	seg, err := c.fetchSegment(nvmeoe.FetchReq{Kind: nvmeoe.FetchVersion, LPN: lpn, Before: before})
	if err != nil {
		return oplog.PageRecord{}, false, err
	}
	if len(seg.Pages) == 0 {
		return oplog.PageRecord{}, false, nil
	}
	return seg.Pages[0], true, nil
}

// FetchImage retrieves the newest retained version of every LPN before the
// given sequence in one monolithic reply. It survives as the
// compatibility shim for old tooling; restores use FetchImageStream,
// which resumes after a disconnect instead of starting over.
func (c *Client) FetchImage(before uint64) ([]oplog.PageRecord, error) {
	seg, err := c.fetchSegment(nvmeoe.FetchReq{Kind: nvmeoe.FetchImage, Before: before})
	if err != nil {
		return nil, err
	}
	return seg.Pages, nil
}

// FetchRange retrieves, for every LPN with from <= LPN < to, the newest
// retained version written before the given sequence — one targeted,
// codec-framed chunk of the image.
func (c *Client) FetchRange(from, to, before uint64) ([]oplog.PageRecord, error) {
	seg, err := c.fetchSegment(nvmeoe.FetchReq{Kind: nvmeoe.FetchRange, From: from, To: to, Before: before})
	if err != nil {
		return nil, err
	}
	return seg.Pages, nil
}

// FetchImageStream streams the point-in-time image before the given
// sequence as LPN-ordered chunks, invoking fn once per chunk with the
// decoded pages plus the chunk's wire (codec-framed) and logical
// (decoded) sizes. from > 0 resumes an interrupted stream: only LPNs at
// or past it are served. The session is busy for the whole stream; if fn
// returns an error the stream is abandoned mid-flight and the session
// must be closed, which is exactly what a resuming restorer does.
func (c *Client) FetchImageStream(from, before uint64, chunkPages int, fn func(pages []oplog.PageRecord, wire, logical int) error) (nvmeoe.StreamEnd, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	req := nvmeoe.FetchReq{
		Kind: nvmeoe.FetchImageStream, From: from, Before: before,
		ChunkPages: uint32(chunkPages),
	}
	if err := c.conn.WriteMsg(nvmeoe.MsgFetch, req.Marshal()); err != nil {
		return nvmeoe.StreamEnd{}, err
	}
	for {
		typ, body, err := c.conn.ReadMsg()
		if err != nil {
			return nvmeoe.StreamEnd{}, err
		}
		switch typ {
		case nvmeoe.MsgFetchChunk:
			raw, err := nvmeoe.DecodeSegmentBlob(body)
			if err != nil {
				return nvmeoe.StreamEnd{}, err
			}
			seg, err := oplog.UnmarshalSegment(raw)
			if err != nil {
				return nvmeoe.StreamEnd{}, err
			}
			if err := fn(seg.Pages, len(body), len(raw)); err != nil {
				return nvmeoe.StreamEnd{}, err
			}
		case nvmeoe.MsgFetchEnd:
			return nvmeoe.UnmarshalStreamEnd(body)
		case nvmeoe.MsgError:
			em, err := nvmeoe.UnmarshalErrorMsg(body)
			if err != nil {
				return nvmeoe.StreamEnd{}, err
			}
			return nvmeoe.StreamEnd{}, &RemoteError{Code: em.Code, Text: em.Text}
		default:
			return nvmeoe.StreamEnd{}, fmt.Errorf("remote: unexpected message %v in image stream", typ)
		}
	}
}

// ChunkStats describes one streamed restore chunk as the dedup-aware
// client saw it: wire and logical sizes plus how the pages arrived —
// full literal payloads or hash references resolved from the cache.
type ChunkStats struct {
	WireBytes    int
	LogicalBytes int
	Literals     int
	Refs         int
}

// FetchImageDelta is the dedup-aware image stream: it requests
// hash-reference chunks when cache is non-nil (literals verified against
// their content hash before entering the cache; references resolved from
// it) and a checkpoint-anchored delta when anchor > 0 (only LPNs touched
// at or after the anchor are streamed). Legacy full-page chunks from a
// pre-dedup server decode transparently — their pages count as literals
// and still feed the cache, so a mixed stream stays resolvable. The cache
// must outlive resumes of the same restore: references in a resumed
// session may point at literals delivered before the cut only if the
// server re-literals them (it does — the sent set is per session), so a
// fresh session is always self-contained, and the surviving cache merely
// dedups the copies.
func (c *Client) FetchImageDelta(from, before, anchor uint64, chunkPages int, cache *ResolveCache, fn func(pages []oplog.PageRecord, cs ChunkStats) error) (nvmeoe.StreamEnd, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	req := nvmeoe.FetchReq{
		Kind: nvmeoe.FetchImageStream, From: from, Before: before,
		ChunkPages: uint32(chunkPages), Anchor: anchor,
	}
	if cache != nil {
		req.Flags |= nvmeoe.FetchFlagDedup
	}
	if err := c.conn.WriteMsg(nvmeoe.MsgFetch, req.Marshal()); err != nil {
		return nvmeoe.StreamEnd{}, err
	}
	var pages []oplog.PageRecord // scratch, reused across chunks
	for {
		typ, body, err := c.conn.ReadMsg()
		if err != nil {
			return nvmeoe.StreamEnd{}, err
		}
		switch typ {
		case nvmeoe.MsgFetchChunkRef:
			raw, err := nvmeoe.DecodeSegmentBlob(body)
			if err != nil {
				return nvmeoe.StreamEnd{}, err
			}
			cs := ChunkStats{WireBytes: len(body), LogicalBytes: len(raw)}
			pages = pages[:0]
			if _, err := nvmeoe.WalkRefChunk(raw, func(p nvmeoe.RefPage) error {
				rec := oplog.PageRecord{
					LPN:      p.LPN,
					WriteSeq: p.WriteSeq,
					StaleSeq: p.StaleSeq,
					Cause:    p.Cause,
					Hash:     p.Hash,
				}
				if p.Ref {
					data, ok := cache.Lookup(p.Hash)
					if !ok {
						return fmt.Errorf("remote: unresolved hash reference for lpn %d", p.LPN)
					}
					rec.Data = data
					cs.Refs++
				} else {
					data, err := cache.Add(p.Hash, p.Data)
					if err != nil {
						return err
					}
					rec.Data = data
					cs.Literals++
				}
				pages = append(pages, rec)
				return nil
			}); err != nil {
				return nvmeoe.StreamEnd{}, err
			}
			if err := fn(pages, cs); err != nil {
				return nvmeoe.StreamEnd{}, err
			}
		case nvmeoe.MsgFetchChunk:
			// Legacy full-page chunk (pre-dedup server, or dedup not
			// requested): every page is a literal.
			raw, err := nvmeoe.DecodeSegmentBlob(body)
			if err != nil {
				return nvmeoe.StreamEnd{}, err
			}
			seg, err := oplog.UnmarshalSegment(raw)
			if err != nil {
				return nvmeoe.StreamEnd{}, err
			}
			cs := ChunkStats{WireBytes: len(body), LogicalBytes: len(raw), Literals: len(seg.Pages)}
			if cache != nil {
				for i := range seg.Pages {
					data, err := cache.Add(seg.Pages[i].Hash, seg.Pages[i].Data)
					if err != nil {
						return nvmeoe.StreamEnd{}, err
					}
					seg.Pages[i].Data = data
				}
			}
			if err := fn(seg.Pages, cs); err != nil {
				return nvmeoe.StreamEnd{}, err
			}
		case nvmeoe.MsgFetchEnd:
			return nvmeoe.UnmarshalStreamEnd(body)
		case nvmeoe.MsgError:
			em, err := nvmeoe.UnmarshalErrorMsg(body)
			if err != nil {
				return nvmeoe.StreamEnd{}, err
			}
			return nvmeoe.StreamEnd{}, &RemoteError{Code: em.Code, Text: em.Text}
		default:
			return nvmeoe.StreamEnd{}, fmt.Errorf("remote: unexpected message %v in image stream", typ)
		}
	}
}

// FetchCheckpoint retrieves the newest checkpoint at or before the given
// sequence.
func (c *Client) FetchCheckpoint(before uint64) (nvmeoe.Checkpoint, bool, error) {
	req := nvmeoe.FetchReq{Kind: nvmeoe.FetchCheckpoint, Before: before}
	body, err := c.roundTrip(nvmeoe.MsgFetch, req.Marshal(), nvmeoe.MsgFetchResp)
	var re *RemoteError
	if errors.As(err, &re) && re.Code == CodeNotFound {
		return nvmeoe.Checkpoint{}, false, nil
	}
	if err != nil {
		return nvmeoe.Checkpoint{}, false, err
	}
	raw, err := nvmeoe.DecodeSegmentBlob(body)
	if err != nil {
		return nvmeoe.Checkpoint{}, false, err
	}
	cp, err := nvmeoe.UnmarshalCheckpoint(raw)
	if err != nil {
		return nvmeoe.Checkpoint{}, false, err
	}
	return cp, true, nil
}

// Head retrieves the remote chain state.
func (c *Client) Head() (nvmeoe.Head, error) {
	req := nvmeoe.FetchReq{Kind: nvmeoe.FetchHead}
	body, err := c.roundTrip(nvmeoe.MsgFetch, req.Marshal(), nvmeoe.MsgFetchResp)
	if err != nil {
		return nvmeoe.Head{}, err
	}
	return nvmeoe.UnmarshalHead(body)
}

// Loopback wires a client to srv over an in-process pipe, starting a
// handler goroutine. It is the standard way simulations attach a device to
// its remote server without real networking.
func Loopback(srv *Server, psk []byte, deviceID uint64) (*Client, error) {
	dc, sc := net.Pipe()
	go srv.HandleConn(sc)
	return Dial(dc, psk, deviceID)
}
