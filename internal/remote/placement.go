package remote

import (
	"math"
	"sort"
	"sync"
)

// Consistent-hash placement for the fleet control plane: device IDs map to
// ingest servers through a ring of virtual nodes, so adding or losing a
// server remaps only the devices whose arc changed — the property that
// makes failover cheap at fleet scale. Two layers:
//
//   - Ring is the pure structure: weighted nodes, virtual-node arcs, a
//     deterministic 64-bit mix for both vnode positions and device keys.
//     Locate is stateless; removing a node provably remaps only the
//     devices that node owned.
//   - Placement adds what a pure ring cannot give: bounded load (a hash
//     alone spreads 512 devices over 8 servers with ~±20% multinomial
//     noise; the bounded walk caps every server near the mean) and
//     stickiness (a device moves only when its server leaves the ring or
//     a rebalance explicitly evicts it — never because an unrelated
//     membership change shifted arcs).

// DefaultVirtualNodes is the vnode count a weight-100 node contributes.
const DefaultVirtualNodes = 192

// DefaultLoadFactor bounds a node's device count at LoadFactor times the
// fleet mean during bounded-load placement.
const DefaultLoadFactor = 1.10

// mix64 is the splitmix64 finalizer: a cheap, well-dispersed 64-bit mix
// used for vnode positions and device keys alike.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// deviceKey hashes a device ID onto the ring.
func deviceKey(deviceID uint64) uint64 {
	return mix64(deviceID * 0x9e3779b97f4a7c15)
}

// vnodeKey hashes one virtual node of a server onto the ring.
func vnodeKey(node, replica int) uint64 {
	return mix64(uint64(node+1)<<32 | uint64(uint32(replica)))
}

type ringSlot struct {
	key  uint64
	node int
}

// Ring is a weighted consistent-hash ring. A node of weight w contributes
// vnodes*w/100 virtual nodes; halving a weight removes half the node's
// arcs, shrinking (never shuffling) its share. Safe for concurrent use.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	weights map[int]int
	slots   []ringSlot
}

// NewRing returns a ring with the given vnodes-per-weight-100 (0 selects
// DefaultVirtualNodes).
func NewRing(vnodesPer int) *Ring {
	if vnodesPer <= 0 {
		vnodesPer = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodesPer, weights: map[int]int{}}
}

// rebuild regenerates the sorted slot array from the weight table.
// Caller holds r.mu.
func (r *Ring) rebuild() {
	r.slots = r.slots[:0]
	for node, w := range r.weights {
		n := r.vnodes * w / 100
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			r.slots = append(r.slots, ringSlot{key: vnodeKey(node, i), node: node})
		}
	}
	sort.Slice(r.slots, func(i, j int) bool {
		if r.slots[i].key != r.slots[j].key {
			return r.slots[i].key < r.slots[j].key
		}
		return r.slots[i].node < r.slots[j].node // deterministic on collision
	})
}

// AddNode inserts (or re-weights) a node. weight <= 0 selects 100.
func (r *Ring) AddNode(node, weight int) {
	if weight <= 0 {
		weight = 100
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.weights[node] = weight
	r.rebuild()
}

// RemoveNode deletes a node; only devices it owned change owners.
func (r *Ring) RemoveNode(node int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.weights, node)
	r.rebuild()
}

// SetWeight adjusts a node's weight (clamped to >= 1); a lower weight
// shrinks the node's arc share, which is how the cluster sheds load from
// a persistently hot server.
func (r *Ring) SetWeight(node, weight int) {
	if weight < 1 {
		weight = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.weights[node]; !ok {
		return
	}
	r.weights[node] = weight
	r.rebuild()
}

// Weight returns a node's weight (0 when absent).
func (r *Ring) Weight(node int) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.weights[node]
}

// HasNode reports ring membership.
func (r *Ring) HasNode(node int) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.weights[node]
	return ok
}

// Nodes returns the member node IDs in ascending order.
func (r *Ring) Nodes() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]int, 0, len(r.weights))
	for n := range r.weights {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// NodeCount returns the number of member nodes.
func (r *Ring) NodeCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.weights)
}

// Locate returns the node owning deviceID: the first virtual node at or
// clockwise of the device's key. ok is false on an empty ring.
func (r *Ring) Locate(deviceID uint64) (node int, ok bool) {
	return r.LocateWhere(deviceID, nil)
}

// LocateWhere walks the ring clockwise from the device's key and returns
// the first node accepted by keep (nil accepts every node). Each distinct
// node is offered once, in arc order — this is the bounded-load walk: a
// full node declines and the device lands on the next arc's owner.
func (r *Ring) LocateWhere(deviceID uint64, keep func(node int) bool) (node int, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.slots) == 0 {
		return 0, false
	}
	k := deviceKey(deviceID)
	start := sort.Search(len(r.slots), func(i int) bool { return r.slots[i].key >= k })
	seen := 0
	var offered [64]bool // node IDs are small dense ints in practice
	var offeredBig map[int]bool
	for i := 0; seen < len(r.weights) && i < len(r.slots); i++ {
		s := r.slots[(start+i)%len(r.slots)]
		if s.node >= 0 && s.node < len(offered) {
			if offered[s.node] {
				continue
			}
			offered[s.node] = true
		} else {
			if offeredBig == nil {
				offeredBig = map[int]bool{}
			}
			if offeredBig[s.node] {
				continue
			}
			offeredBig[s.node] = true
		}
		seen++
		if keep == nil || keep(s.node) {
			return s.node, true
		}
	}
	return 0, false
}

// Move records one device changing owners.
type Move struct {
	Device   uint64
	From, To int
}

// Placement is the sticky bounded-load assignment of devices to ring
// nodes. Place pins a device to a node and keeps it there across
// unrelated membership changes; Evict re-places a dead node's devices
// (and only those); Rebalance sheds a hot node's devices whose arcs a
// weight cut moved away. Load is bounded at LoadFactor times the fleet
// mean, which is what holds the max/min device spread near 1 where a
// pure hash would wander ±20%. Safe for concurrent use.
type Placement struct {
	mu         sync.Mutex
	ring       *Ring
	loadFactor float64
	owner      map[uint64]int
	loads      map[int]int
}

// NewPlacement returns a placement over ring. loadFactor <= 1 selects
// DefaultLoadFactor.
func NewPlacement(ring *Ring, loadFactor float64) *Placement {
	if loadFactor <= 1 {
		loadFactor = DefaultLoadFactor
	}
	return &Placement{ring: ring, loadFactor: loadFactor, owner: map[uint64]int{}, loads: map[int]int{}}
}

// capLocked computes the per-node device cap for a fleet of n devices.
func (p *Placement) capLocked(n int) int {
	nodes := p.ring.NodeCount()
	if nodes == 0 {
		return 0
	}
	c := int(math.Ceil(p.loadFactor * float64(n) / float64(nodes)))
	if c < 1 {
		c = 1
	}
	return c
}

// placeLocked runs one bounded-load walk for dev and records the result.
func (p *Placement) placeLocked(dev uint64) (int, bool) {
	cap := p.capLocked(len(p.owner) + 1)
	node, ok := p.ring.LocateWhere(dev, func(n int) bool { return p.loads[n] < cap })
	if !ok {
		// Every node is at cap (rounding corner): take the arc owner.
		if node, ok = p.ring.Locate(dev); !ok {
			return 0, false
		}
	}
	p.owner[dev] = node
	p.loads[node]++
	return node, true
}

// Place returns dev's node, assigning one on first contact. The
// assignment is sticky: a placed device stays put unless its node has
// left the ring, in which case it is re-placed (and the move is visible
// through Owner/Spread).
func (p *Placement) Place(dev uint64) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if node, ok := p.owner[dev]; ok {
		if p.ring.HasNode(node) {
			return node, true
		}
		p.loads[node]--
		delete(p.owner, dev)
	}
	return p.placeLocked(dev)
}

// Owner returns dev's current node without placing it.
func (p *Placement) Owner(dev uint64) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	node, ok := p.owner[dev]
	return node, ok
}

// Evict re-places every device owned by node (typically after
// ring.RemoveNode(node)) and returns the moves. Devices on other nodes
// are untouched — failover moves exactly the dead server's devices.
func (p *Placement) Evict(node int) []Move {
	p.mu.Lock()
	defer p.mu.Unlock()
	var devs []uint64
	for dev, n := range p.owner {
		if n == node {
			devs = append(devs, dev)
		}
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	var moves []Move
	for _, dev := range devs {
		p.loads[node]--
		delete(p.owner, dev)
		if to, ok := p.placeLocked(dev); ok && to != node {
			moves = append(moves, Move{Device: dev, From: node, To: to})
		}
	}
	delete(p.loads, node)
	return moves
}

// Rebalance sheds load from node after a weight cut: every device of the
// node whose ring arc no longer maps to it is re-placed through the
// bounded walk. Devices the (shrunken) node still owns by hash stay — the
// minimal-movement property, applied to rebalancing.
func (p *Placement) Rebalance(node int) []Move {
	p.mu.Lock()
	defer p.mu.Unlock()
	var devs []uint64
	for dev, n := range p.owner {
		if n != node {
			continue
		}
		if natural, ok := p.ring.Locate(dev); ok && natural != node {
			devs = append(devs, dev)
		}
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	var moves []Move
	for _, dev := range devs {
		p.loads[node]--
		delete(p.owner, dev)
		to, ok := p.placeLocked(dev)
		if !ok {
			continue
		}
		if to != node {
			moves = append(moves, Move{Device: dev, From: node, To: to})
		}
	}
	return moves
}

// Spread returns the device count per node.
func (p *Placement) Spread() map[int]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[int]int, len(p.loads))
	for n, c := range p.loads {
		if c > 0 {
			out[n] = c
		}
	}
	return out
}

// Placed returns how many devices have assignments.
func (p *Placement) Placed() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.owner)
}
