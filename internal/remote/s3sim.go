package remote

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/simclock"
)

// S3Sim is an ObjectStore that behaves like Amazon S3 for the purposes the
// paper cares about: it is durable and elastic, but every operation has a
// modeled latency (first-byte time plus bytes over bandwidth), every
// request and stored GB-month has a dollar price, large blobs upload as
// multipart (per-part requests, parts in parallel lanes), and LIST is only
// eventually consistent — a freshly PUT key takes a while to appear in
// listings, which is exactly the hazard Store.Reload has to respect.
//
// Latency is accounted in simulated time, not slept: callers read the
// accrued model from TierStats and charge it where their own time base
// needs it. Get/Put are read-after-write consistent (as S3 is today); only
// LIST lags.
type S3Sim struct {
	cfg S3Config

	mu      sync.Mutex
	data    map[string][]byte
	visible map[string]uint64 // key -> opSeq at which LIST starts showing it
	opSeq   uint64            // mutating operations so far (visibility clock)
	stats   TierStats
}

// S3Config prices and paces the simulated cloud tier. The defaults follow
// S3 Standard's published us-east-1 numbers and a WAN path to it.
type S3Config struct {
	// FirstByte is the per-request latency floor (connection + service
	// time) charged to every request, and to every part of a multipart
	// upload.
	FirstByte simclock.Duration
	// MBps is the sustained transfer bandwidth to/from the bucket.
	MBps float64
	// PutUSD, GetUSD, ListUSD are per-request prices. DELETE is free on
	// S3 and stays free here.
	PutUSD  float64
	GetUSD  float64
	ListUSD float64
	// StorageUSDPerGBMonth prices data at rest.
	StorageUSDPerGBMonth float64
	// PartSize splits uploads larger than itself into a multipart upload:
	// one initiate and one complete request plus one PUT per part, parts
	// transferring in PartLanes parallel lanes.
	PartSize  int
	PartLanes int
	// ListLagOps is the eventual-consistency window: a PUT key appears in
	// LIST results only after this many further mutating operations (or a
	// Settle call). 0 makes LIST strongly consistent.
	ListLagOps uint64
}

// DefaultS3Config returns the S3 Standard model used by the retention
// experiments.
func DefaultS3Config() S3Config {
	return S3Config{
		FirstByte:            18 * simclock.Millisecond,
		MBps:                 100,
		PutUSD:               0.005 / 1000,
		GetUSD:               0.0004 / 1000,
		ListUSD:              0.005 / 1000,
		StorageUSDPerGBMonth: 0.023,
		PartSize:             8 << 20,
		PartLanes:            4,
		ListLagOps:           8,
	}
}

// TierStats is the running cost/latency ledger of a modeled storage tier.
type TierStats struct {
	Puts             uint64
	Gets             uint64
	Lists            uint64
	Deletes          uint64
	MultipartUploads uint64
	Parts            uint64 // parts shipped across multipart uploads
	BytesIn          int64
	BytesOut         int64
	BytesStored      int64 // current at-rest footprint
	// ModelLatency is the cumulative modeled service time across requests;
	// PutLatency the share spent in Put (what segment acks wait on).
	ModelLatency simclock.Duration
	PutLatency   simclock.Duration
	// RequestUSD is the accrued per-request cost (storage is priced
	// separately, per GB-month, via MonthlyStorageUSD).
	RequestUSD float64
}

// NewS3Sim returns an empty simulated bucket.
func NewS3Sim(cfg S3Config) *S3Sim {
	if cfg.FirstByte <= 0 {
		cfg.FirstByte = DefaultS3Config().FirstByte
	}
	if cfg.MBps <= 0 {
		cfg.MBps = DefaultS3Config().MBps
	}
	if cfg.PartSize <= 0 {
		cfg.PartSize = DefaultS3Config().PartSize
	}
	if cfg.PartLanes <= 0 {
		cfg.PartLanes = 1
	}
	return &S3Sim{cfg: cfg, data: map[string][]byte{}, visible: map[string]uint64{}}
}

// xfer models moving n bytes at the configured bandwidth.
func (s *S3Sim) xfer(n int) simclock.Duration {
	return simclock.Duration(float64(n) / (s.cfg.MBps * 1e6) * float64(simclock.Second))
}

// putLatency models persisting an n-byte blob: first-byte plus transfer,
// with multipart round trips above the part-size threshold. It is the
// service time Put accrues and the number PutServiceTime exposes to the
// segment-ack path.
func (s *S3Sim) putLatency(n int) simclock.Duration {
	if n > s.cfg.PartSize {
		parts := (n + s.cfg.PartSize - 1) / s.cfg.PartSize
		rounds := (parts + s.cfg.PartLanes - 1) / s.cfg.PartLanes
		// initiate + complete, then each lane-round pays a first-byte;
		// the body transfer is bandwidth-bound regardless of lanes.
		return s.cfg.FirstByte*simclock.Duration(2+rounds) + s.xfer(n)
	}
	return s.cfg.FirstByte + s.xfer(n)
}

// PutServiceTime implements ServiceTimeModeler: the modeled service time
// of persisting an n-byte blob, which the server threads into segment
// acks so device-side OffloadAckTime reflects the backend. It reads only
// the immutable config, so no lock is taken — the segment-ingest hot path
// calls it once per accepted blob.
func (s *S3Sim) PutServiceTime(n int) simclock.Duration {
	return s.putLatency(n)
}

// Put stores a copy of data, charging request cost and modeled latency.
// Blobs above PartSize upload as multipart: per-part PUT requests plus the
// initiate/complete round trips, parts riding PartLanes parallel lanes.
func (s *S3Sim) Put(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	lat := s.putLatency(len(data))
	if len(data) > s.cfg.PartSize {
		parts := (len(data) + s.cfg.PartSize - 1) / s.cfg.PartSize
		s.stats.MultipartUploads++
		s.stats.Parts += uint64(parts)
		s.stats.RequestUSD += float64(parts+2) * s.cfg.PutUSD
	} else {
		s.stats.RequestUSD += s.cfg.PutUSD
	}
	if old, ok := s.data[key]; ok {
		s.stats.BytesStored -= int64(len(old))
	}
	s.data[key] = append([]byte(nil), data...)
	s.opSeq++
	// The consistency lag applies to keys LIST has not yet shown; an
	// overwrite of an already-listed key never un-lists it (as on S3).
	if vis, ok := s.visible[key]; !ok || vis > s.opSeq {
		s.visible[key] = s.opSeq + s.cfg.ListLagOps
	}
	s.stats.Puts++
	s.stats.BytesIn += int64(len(data))
	s.stats.BytesStored += int64(len(data))
	s.stats.ModelLatency += lat
	s.stats.PutLatency += lat
	return nil
}

// Get returns a copy of the blob at key. Reads are strongly consistent:
// a PUT key is immediately readable even while LIST still omits it.
func (s *S3Sim) Get(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.data[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	s.stats.Gets++
	s.stats.BytesOut += int64(len(d))
	s.stats.RequestUSD += s.cfg.GetUSD
	s.stats.ModelLatency += s.cfg.FirstByte + s.xfer(len(d))
	return append([]byte(nil), d...), nil
}

// List returns the keys with the given prefix that have become
// list-visible, sorted. Keys PUT within the consistency window are
// silently absent — callers that need the full picture (Reload) must
// Settle first, exactly as a real S3 consumer must wait out the lag.
func (s *S3Sim) List(prefix string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) && s.visible[k] <= s.opSeq {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	s.stats.Lists++
	s.stats.RequestUSD += s.cfg.ListUSD
	s.stats.ModelLatency += s.cfg.FirstByte
	return keys, nil
}

// Delete removes key; deleting a missing key is idempotent (and free, as
// on S3).
func (s *S3Sim) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.data[key]; ok {
		s.stats.BytesStored -= int64(len(old))
	}
	delete(s.data, key)
	delete(s.visible, key)
	s.opSeq++
	s.stats.Deletes++
	s.stats.ModelLatency += s.cfg.FirstByte
	return nil
}

// Settle makes every stored key list-visible, modeling the consistency
// window having elapsed with no new writes.
func (s *S3Sim) Settle() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.visible {
		s.visible[k] = 0
	}
}

// PendingListKeys counts keys stored but not yet list-visible — the
// eventual-consistency backlog a Reload started now would miss.
func (s *S3Sim) PendingListKeys() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, vis := range s.visible {
		if vis > s.opSeq {
			n++
		}
	}
	return n
}

// Size returns the current at-rest footprint in bytes.
func (s *S3Sim) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.BytesStored
}

// TierStats returns a snapshot of the cost/latency ledger.
func (s *S3Sim) TierStats() TierStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// MonthlyStorageUSD prices the current at-rest footprint for one month.
func (s *S3Sim) MonthlyStorageUSD() float64 {
	return float64(s.Size()) / float64(1<<30) * s.cfg.StorageUSDPerGBMonth
}

// Config returns the model parameters the bucket was built with.
func (s *S3Sim) Config() S3Config { return s.cfg }
