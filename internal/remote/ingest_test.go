package remote

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bufpool"
	"repro/internal/nvmeoe"
	"repro/internal/oplog"
)

// blobsFor codec-frames a device's segments the way the wire carries them,
// returning the blobs alongside each segment's LastSeq for ack matching.
func blobsFor(segs []*oplog.Segment) (blobs [][]byte, lastSeqs []uint64) {
	for _, seg := range segs {
		blobs = append(blobs, nvmeoe.EncodeSegmentBlob(seg.Marshal()))
		lastSeqs = append(lastSeqs, seg.LastSeq)
	}
	return blobs, lastSeqs
}

// TestDecodeLaneOrderingUnderConcurrentIngest is the decode-lane contract
// test: a fleet of pipelined clients pushes over net.Pipe sessions into a
// server whose lane has fewer workers than there are devices, so queues are
// shared and genuinely concurrent. Per-device ordering must survive — every
// chain verifies from genesis, and the streaming subscriber sees each
// device's segments in ingest order — and a checkpoint sent after the burst
// must observe all of it (the waitIdle barrier).
func TestDecodeLaneOrderingUnderConcurrentIngest(t *testing.T) {
	const devices = 8
	const segsPerDevice = 16
	const window = 8

	st := NewStore(NewMemStore())
	srv := NewServer(st, psk)
	srv.Config = ServerConfig{DecodeWorkers: 3, DecodeQueueDepth: 64}

	var subMu sync.Mutex
	delivered := map[uint64][]uint64{}
	st.Subscribe(func(deviceID uint64, seg *oplog.Segment) {
		subMu.Lock()
		delivered[deviceID] = append(delivered[deviceID], seg.FirstSeq)
		subMu.Unlock()
	})

	errc := make(chan error, devices)
	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		deviceID := uint64(200 + d)
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Loopback(srv, psk, deviceID)
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			blobs, lastSeqs := blobsFor(buildSegments(deviceID, segsPerDevice, 8))
			if err := cl.PushSegmentBlobs(blobs, lastSeqs, window); err != nil {
				errc <- fmt.Errorf("device %d: %w", deviceID, err)
				return
			}
			// Ordered after the pipelined burst on the same wire: the
			// barrier must make every pushed segment visible first.
			if err := cl.PushCheckpoint(&nvmeoe.Checkpoint{Seq: 1, L2P: []uint64{deviceID}}); err != nil {
				errc <- fmt.Errorf("device %d checkpoint: %w", deviceID, err)
				return
			}
			h, err := cl.Head()
			if err != nil {
				errc <- fmt.Errorf("device %d head: %w", deviceID, err)
				return
			}
			if want := uint64(segsPerDevice * 8); h.NextSeq != want {
				errc <- fmt.Errorf("device %d head after burst = %d, want %d", deviceID, h.NextSeq, want)
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	want := uint64(segsPerDevice * 8)
	for d := 0; d < devices; d++ {
		deviceID := uint64(200 + d)
		if h := st.Head(deviceID); h.NextSeq != want {
			t.Fatalf("device %d head %d, want %d", deviceID, h.NextSeq, want)
		}
		if err := oplog.VerifyChain(st.Entries(deviceID, 0, want), [oplog.HashSize]byte{}); err != nil {
			t.Fatalf("device %d chain: %v", deviceID, err)
		}
		subMu.Lock()
		seqs := delivered[deviceID]
		subMu.Unlock()
		if len(seqs) != segsPerDevice {
			t.Fatalf("device %d: subscriber saw %d segments, want %d", deviceID, len(seqs), segsPerDevice)
		}
		for i := 1; i < len(seqs); i++ {
			if seqs[i] <= seqs[i-1] {
				t.Fatalf("device %d: out-of-order delivery %v", deviceID, seqs)
			}
		}
		ist := srv.IngestStats(deviceID)
		if ist.Segments != segsPerDevice || ist.Errors != 0 {
			t.Fatalf("device %d ingest stats %+v", deviceID, ist)
		}
		if ist.BytesWire == 0 || ist.BytesLogical == 0 {
			t.Fatalf("device %d wire/logical bytes %d/%d", deviceID, ist.BytesWire, ist.BytesLogical)
		}
		if ist.DecodeTime <= 0 {
			t.Fatalf("device %d decode time not ledgered", deviceID)
		}
	}
	// Every session released its lane reference: an idle server keeps no
	// lane (and therefore no worker goroutines). HandleConn releases in a
	// defer after the client's Close lands, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		lane := srv.lane
		srv.mu.Unlock()
		if lane == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lane still referenced after all sessions closed")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDecodeLaneInlineFallback pins DecodeWorkers<0: no lane, decode on the
// connection goroutine, same observable behaviour.
func TestDecodeLaneInlineFallback(t *testing.T) {
	st := NewStore(NewMemStore())
	srv := NewServer(st, psk)
	srv.Config = ServerConfig{DecodeWorkers: -1}
	cl, err := Loopback(srv, psk, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Window 1: without a lane the connection goroutine ingests inline and
	// blocks writing each ack, so over a synchronous net.Pipe a pipelining
	// client would deadlock against it — lock-step is the inline contract.
	blobs, lastSeqs := blobsFor(buildSegments(9, 4, 6))
	if err := cl.PushSegmentBlobs(blobs, lastSeqs, 1); err != nil {
		t.Fatal(err)
	}
	if h := st.Head(9); h.NextSeq != 24 {
		t.Fatalf("head %d, want 24", h.NextSeq)
	}
	srv.mu.Lock()
	lane := srv.lane
	srv.mu.Unlock()
	if lane != nil {
		t.Fatal("inline config started a lane")
	}
	if ist := srv.IngestStats(9); ist.Segments != 4 || ist.DecodeQueuePeak != 0 {
		t.Fatalf("inline ingest stats %+v", ist)
	}
}

// TestDecodeLaneErrorKeepsSession: a rejected segment (chain gap) ledgered
// as an error must not kill the session — the device resyncs and pushes the
// missing prefix on the same connection.
func TestDecodeLaneErrorKeepsSession(t *testing.T) {
	st := NewStore(NewMemStore())
	srv := NewServer(st, psk)
	srv.Config = ServerConfig{DecodeWorkers: 2}
	cl, err := Loopback(srv, psk, 13)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	blobs, lastSeqs := blobsFor(buildSegments(13, 3, 5))
	// Gap: segment 2 before segments 0 and 1.
	var re *RemoteError
	if err := cl.PushSegmentBlobs(blobs[2:], lastSeqs[2:], 1); !errors.As(err, &re) || re.Code != CodeBadData {
		t.Fatalf("gap push err = %v", err)
	}
	// Same session recovers with the full ordered chain.
	if err := cl.PushSegmentBlobs(blobs, lastSeqs, 2); err != nil {
		t.Fatalf("resync push: %v", err)
	}
	ist := srv.IngestStats(13)
	if ist.Errors != 1 || ist.Segments != 3 {
		t.Fatalf("ingest stats after resync %+v", ist)
	}
}

// TestServerDecodeSteadyStateAllocs pins the tentpole's server half: the
// lane's codec step — wire blob to logical segment bytes in a pooled buffer
// — runs at zero allocations per operation once warm, for both deflated and
// stored frames. The ingest mirror of the device lane's encodeStaged gate.
func TestServerDecodeSteadyStateAllocs(t *testing.T) {
	if bufpool.RaceEnabled {
		t.Skip("race instrumentation allocates; alloc assertions run in the non-race job")
	}
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"deflate", compressiblePage(16 << 10)},
		{"stored", incompressiblePage(16 << 10)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seg := buildSegments(1, 1, 1)[0]
			seg.Pages[0].Data = tc.data
			seg.Pages[0].Hash = oplog.HashData(tc.data)
			blob := nvmeoe.EncodeSegmentBlob(seg.Marshal())
			buf := bufpool.Get(nvmeoe.SegmentBlobLogicalSize(blob))
			defer buf.Release()
			if n := testing.AllocsPerRun(50, func() {
				if _, err := decodeBlob(buf, blob); err != nil {
					t.Fatal(err)
				}
			}); n != 0 {
				t.Errorf("decodeBlob(%s): %v allocs/op, want 0", tc.name, n)
			}
		})
	}
}

func compressiblePage(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + i%17)
	}
	return b
}

func incompressiblePage(n int) []byte {
	b := make([]byte, n)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range b {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b[i] = byte(x)
	}
	return b
}
