package remote

import (
	"testing"
)

// fleetIDs returns n device IDs shaped like the fleet experiments use
// (small dense integers starting at 1).
func fleetIDs(n int) []uint64 {
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	return ids
}

func eightNodeRing() *Ring {
	r := NewRing(0)
	for i := 0; i < 8; i++ {
		r.AddNode(i, 100)
	}
	return r
}

// spreadRatio places every device and returns max/min per-node counts.
func spreadRatio(t *testing.T, p *Placement, ids []uint64) float64 {
	t.Helper()
	for _, id := range ids {
		if _, ok := p.Place(id); !ok {
			t.Fatalf("device %d unplaceable", id)
		}
	}
	spread := p.Spread()
	min, max := 1 << 30, 0
	for _, c := range spread {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if len(spread) != 8 || min == 0 {
		t.Fatalf("placement left nodes empty: %v", spread)
	}
	return float64(max) / float64(min)
}

// TestPlacementSpread512Devices is the satellite spread gate: 512 devices
// over 8 servers must land within a 1.3 max/min ratio, and that must hold
// regardless of the order devices arrive in (the bounded-load walk, not
// arrival luck, is what enforces it).
func TestPlacementSpread512Devices(t *testing.T) {
	orders := map[string]func([]uint64) []uint64{
		"ascending": func(ids []uint64) []uint64 { return ids },
		"descending": func(ids []uint64) []uint64 {
			out := make([]uint64, len(ids))
			for i, id := range ids {
				out[len(ids)-1-i] = id
			}
			return out
		},
		"strided": func(ids []uint64) []uint64 {
			var out []uint64
			for ph := 0; ph < 7; ph++ {
				for i := ph; i < len(ids); i += 7 {
					out = append(out, ids[i])
				}
			}
			return out
		},
	}
	for name, reorder := range orders {
		t.Run(name, func(t *testing.T) {
			p := NewPlacement(eightNodeRing(), 0)
			if ratio := spreadRatio(t, p, reorder(fleetIDs(512))); ratio > 1.3 {
				t.Fatalf("spread max/min = %.3f, want <= 1.3 (%v)", ratio, p.Spread())
			}
		})
	}
}

// TestRingMinimalMovementOnNodeLoss pins the consistent-hash property at
// the pure-ring level: removing one node changes the owner of exactly the
// devices that node owned.
func TestRingMinimalMovementOnNodeLoss(t *testing.T) {
	r := eightNodeRing()
	ids := fleetIDs(512)
	before := map[uint64]int{}
	for _, id := range ids {
		n, ok := r.Locate(id)
		if !ok {
			t.Fatalf("device %d unlocatable", id)
		}
		before[id] = n
	}
	const dead = 3
	r.RemoveNode(dead)
	moved := 0
	for _, id := range ids {
		after, ok := r.Locate(id)
		if !ok {
			t.Fatalf("device %d unlocatable after loss", id)
		}
		if after == dead {
			t.Fatalf("device %d still on removed node", id)
		}
		if before[id] != dead {
			if after != before[id] {
				t.Fatalf("device %d moved %d -> %d though its node survived", id, before[id], after)
			}
		} else {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("removed node owned no devices; test is vacuous")
	}
}

// TestPlacementEvictMovesOnlyDeadNodesDevices is the same property one
// layer up, through the sticky bounded-load placement the cluster uses.
func TestPlacementEvictMovesOnlyDeadNodesDevices(t *testing.T) {
	r := eightNodeRing()
	p := NewPlacement(r, 0)
	ids := fleetIDs(512)
	before := map[uint64]int{}
	for _, id := range ids {
		n, _ := p.Place(id)
		before[id] = n
	}
	const dead = 5
	deadCount := p.Spread()[dead]
	if deadCount == 0 {
		t.Fatal("dead node owned no devices; test is vacuous")
	}
	r.RemoveNode(dead)
	moves := p.Evict(dead)
	if len(moves) != deadCount {
		t.Fatalf("evict moved %d devices, node owned %d", len(moves), deadCount)
	}
	for _, m := range moves {
		if m.From != dead {
			t.Fatalf("evict moved device %d off surviving node %d", m.Device, m.From)
		}
	}
	for _, id := range ids {
		after, ok := p.Owner(id)
		if !ok {
			t.Fatalf("device %d lost its placement", id)
		}
		if before[id] != dead && after != before[id] {
			t.Fatalf("device %d moved %d -> %d though its node survived", id, before[id], after)
		}
		if after == dead {
			t.Fatalf("device %d still placed on dead node", id)
		}
	}
	// The survivors absorb the dead node's devices without breaking the
	// spread bound (7 nodes now).
	spread := p.Spread()
	min, max := 1 << 30, 0
	for _, c := range spread {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if ratio := float64(max) / float64(min); ratio > 1.3 {
		t.Fatalf("post-failover spread max/min = %.3f, want <= 1.3 (%v)", ratio, spread)
	}
}

// TestRingWeightCutShedsOnlyFromCutNode: halving a node's weight may move
// only that node's devices (its arcs shrank; nobody else's changed).
func TestRingWeightCutShedsOnlyFromCutNode(t *testing.T) {
	r := eightNodeRing()
	ids := fleetIDs(512)
	before := map[uint64]int{}
	for _, id := range ids {
		before[id], _ = r.Locate(id)
	}
	const hot = 2
	r.SetWeight(hot, 50)
	moved := 0
	for _, id := range ids {
		after, _ := r.Locate(id)
		if after != before[id] {
			if before[id] != hot {
				t.Fatalf("device %d moved %d -> %d on an unrelated weight cut", id, before[id], after)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("weight cut moved nothing; test is vacuous")
	}
	if w := r.Weight(hot); w != 50 {
		t.Fatalf("weight = %d, want 50", w)
	}
}

// TestPlacementSticky: re-placing an already-placed device is a no-op, and
// adding a node moves nobody until an explicit evict/rebalance.
func TestPlacementSticky(t *testing.T) {
	r := eightNodeRing()
	p := NewPlacement(r, 0)
	ids := fleetIDs(64)
	before := map[uint64]int{}
	for _, id := range ids {
		before[id], _ = p.Place(id)
	}
	r.AddNode(8, 100)
	for _, id := range ids {
		n, _ := p.Place(id)
		if n != before[id] {
			t.Fatalf("device %d moved %d -> %d without eviction", id, before[id], n)
		}
	}
}
