package remote

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/oplog"
)

// TestClusterKillFailoverChainContinuity: devices stream segments through
// a 3-server cluster, one server is killed mid-fleet, and every device —
// including the dead server's — finishes its chain through a redial. The
// shared store must show every chain complete and verified, the kill must
// have remapped exactly the dead server's devices, and OnMove must have
// reported each of them before routing could observe the new owner.
func TestClusterKillFailoverChainContinuity(t *testing.T) {
	const devices = 12
	st := NewStore(NewMemStore())
	c := NewCluster(st, ClusterConfig{Servers: 3, PSK: psk, Server: ServerConfig{DecodeWorkers: 2}})
	defer c.Close()

	var moveMu sync.Mutex
	onMoves := map[uint64][2]int{}
	c.OnMove = func(dev uint64, from, to int) {
		moveMu.Lock()
		onMoves[dev] = [2]int{from, to}
		moveMu.Unlock()
	}

	type devState struct {
		cl    *Client
		blobs [][]byte
		seqs  []uint64
	}
	fleet := map[uint64]*devState{}
	for d := 1; d <= devices; d++ {
		dev := uint64(d)
		cl, err := c.Dial(dev)
		if err != nil {
			t.Fatalf("dial device %d: %v", dev, err)
		}
		blobs, seqs := blobsFor(buildSegments(dev, 6, 4))
		fleet[dev] = &devState{cl: cl, blobs: blobs, seqs: seqs}
		if err := cl.PushSegmentBlobs(blobs[:3], seqs[:3], 2); err != nil {
			t.Fatalf("device %d first half: %v", dev, err)
		}
	}

	victim, ok := c.Owner(1)
	if !ok {
		t.Fatal("device 1 unplaced after dialing")
	}
	victimLoad := c.Spread()[victim]
	moves, err := c.Kill(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != victimLoad {
		t.Fatalf("kill moved %d devices, victim owned %d", len(moves), victimLoad)
	}
	for _, m := range moves {
		if m.From != victim {
			t.Fatalf("kill moved device %d off surviving server %d", m.Device, m.From)
		}
		moveMu.Lock()
		got, reported := onMoves[m.Device]
		moveMu.Unlock()
		if !reported || got != [2]int{m.From, m.To} {
			t.Fatalf("OnMove for device %d = %v (reported=%v), want %v", m.Device, got, reported, m)
		}
	}

	// Finish every chain; a device whose session the kill cut redials
	// through the placement-aware factory and lands on the new owner.
	for dev, ds := range fleet {
		err := ds.cl.PushSegmentBlobs(ds.blobs[3:], ds.seqs[3:], 2)
		if err != nil {
			cl, derr := c.Dial(dev)
			if derr != nil {
				t.Fatalf("device %d redial: %v", dev, derr)
			}
			ds.cl = cl
			if err := cl.PushSegmentBlobs(ds.blobs[3:], ds.seqs[3:], 2); err != nil {
				t.Fatalf("device %d push after failover: %v", dev, err)
			}
		}
		ds.cl.Close()
	}

	for d := 1; d <= devices; d++ {
		dev := uint64(d)
		want := uint64(6 * 4)
		if h := st.Head(dev); h.NextSeq != want {
			t.Fatalf("device %d head %d, want %d", dev, h.NextSeq, want)
		}
		if err := oplog.VerifyChain(st.Entries(dev, 0, want), [oplog.HashSize]byte{}); err != nil {
			t.Fatalf("device %d chain after failover: %v", dev, err)
		}
		if owner, _ := c.Owner(dev); owner == victim {
			t.Fatalf("device %d still owned by dead server %d", dev, victim)
		}
	}
	cs := c.Stats()
	if cs.Kills != 1 || cs.DevicesFailedOver != len(moves) {
		t.Fatalf("cluster stats %+v, want 1 kill / %d failed over", cs, len(moves))
	}

	// Guardrails: a dead server cannot die twice, and the last live server
	// is unkillable.
	if _, err := c.Kill(victim); err == nil {
		t.Fatal("second kill of the same server succeeded")
	}
	survivors := 0
	last := -1
	for _, si := range c.Servers() {
		if si.Alive {
			survivors++
			last = si.ID
		}
	}
	if survivors != 2 {
		t.Fatalf("%d survivors, want 2", survivors)
	}
	if _, err := c.Kill(last); err != nil {
		t.Fatalf("killing one of two survivors: %v", err)
	}
	for _, si := range c.Servers() {
		if si.Alive {
			if _, err := c.Kill(si.ID); err == nil {
				t.Fatal("killed the last live server")
			}
		}
	}
}

// TestClusterRebalanceUnderSkew drives the skew detector with synthetic
// queue peaks: one server's decode backlog persistently above its peers
// must cost it ring weight, and the resulting moves must come only from
// the hot server, closing its moved sessions so devices redial.
func TestClusterRebalanceUnderSkew(t *testing.T) {
	const devices = 64
	st := NewStore(NewMemStore())
	c := NewCluster(st, ClusterConfig{Servers: 4, PSK: psk, Server: ServerConfig{DecodeWorkers: 1}})
	defer c.Close()

	var moveMu sync.Mutex
	var reported []Move
	c.OnMove = func(dev uint64, from, to int) {
		moveMu.Lock()
		reported = append(reported, Move{Device: dev, From: from, To: to})
		moveMu.Unlock()
	}

	var clients []*Client
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()
	for d := 1; d <= devices; d++ {
		cl, err := c.Dial(uint64(d))
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, cl)
	}

	hot, _ := c.Owner(1)
	hotBefore := c.Spread()[hot]
	spike := func() {
		srv := c.Server(hot)
		srv.noteQueue(32)
		srv.noteQueue(-32)
	}

	// Tick 1: hot, but below SkewTicks — no cut yet.
	spike()
	if moves := c.RebalanceTick(); moves != nil {
		t.Fatalf("rebalanced after one hot tick: %v", moves)
	}
	// Tick 2: persistently hot — weight cut and shed.
	spike()
	moves := c.RebalanceTick()
	if len(moves) == 0 {
		t.Fatal("no rebalance after two hot ticks")
	}
	for _, m := range moves {
		if m.From != hot {
			t.Fatalf("rebalance moved device %d off cool server %d", m.Device, m.From)
		}
		if owner, _ := c.Owner(m.Device); owner != m.To {
			t.Fatalf("device %d owner %d, move said %d", m.Device, owner, m.To)
		}
	}
	moveMu.Lock()
	nReported := len(reported)
	moveMu.Unlock()
	if nReported != len(moves) {
		t.Fatalf("OnMove reported %d moves, rebalance returned %d", nReported, len(moves))
	}
	if w := weightOf(t, c, hot); w >= 100 {
		t.Fatalf("hot server weight %d, want < 100", w)
	}
	if after := c.Spread()[hot]; after >= hotBefore {
		t.Fatalf("hot server still holds %d devices (was %d)", after, hotBefore)
	}
	cs := c.Stats()
	if cs.Rebalances != 1 || cs.DevicesRebalanced != len(moves) {
		t.Fatalf("cluster stats %+v", cs)
	}

	// A cool fleet never rebalances: idle ticks are quiet.
	for i := 0; i < 4; i++ {
		if moves := c.RebalanceTick(); moves != nil {
			t.Fatalf("idle tick rebalanced: %v", moves)
		}
	}
}

func weightOf(t *testing.T, c *Cluster, id int) int {
	t.Helper()
	for _, si := range c.Servers() {
		if si.ID == id {
			return si.Weight
		}
	}
	t.Fatalf("no server %d", id)
	return 0
}

// TestServerCloseDrainsDecodeLane is the satellite regression: closing a
// server under 8-device pipelined load must drain the decode lane before
// returning — every session deregistered, no segment half-applied (heads
// land on segment boundaries and chains verify), no ingest errors
// ledgered for a clean close, and the store frozen the moment Close
// returns.
func TestServerCloseDrainsDecodeLane(t *testing.T) {
	const devices = 8
	const segs = 64
	const perSeg = 4

	st := NewStore(NewMemStore())
	srv := NewServer(st, psk)
	srv.Config = ServerConfig{DecodeWorkers: 3, DecodeQueueDepth: 64}

	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		dev := uint64(300 + d)
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Loopback(srv, psk, dev)
			if err != nil {
				return // raced with Close before the handshake; nothing pushed
			}
			defer cl.Close()
			blobs, seqs := blobsFor(buildSegments(dev, segs, perSeg))
			// The push dies with a transport error when Close cuts the
			// session mid-stream — that is the scenario under test.
			_ = cl.PushSegmentBlobs(blobs, seqs, 8)
		}()
	}

	// Let the fleet get genuinely mid-flight before pulling the plug.
	deadline := time.Now().Add(10 * time.Second)
	for srv.IngestTotals().Segments < devices*4 {
		if time.Now().After(deadline) {
			t.Fatal("fleet never reached mid-flight")
		}
		time.Sleep(time.Millisecond)
	}
	srv.Close()

	// The drain contract: at return, no session is still tracked and the
	// store is frozen — nothing trickles in afterwards.
	if n := srv.ActiveSessions(); n != 0 {
		t.Fatalf("%d sessions still tracked after Close", n)
	}
	headsAt := func() map[uint64]uint64 {
		m := map[uint64]uint64{}
		for d := 0; d < devices; d++ {
			dev := uint64(300 + d)
			m[dev] = st.Head(dev).NextSeq
		}
		return m
	}
	frozen := headsAt()
	wg.Wait() // writers observe their errors and exit
	if after := headsAt(); fmt.Sprint(after) != fmt.Sprint(frozen) {
		t.Fatalf("store advanced after Close returned: %v -> %v", frozen, after)
	}

	for d := 0; d < devices; d++ {
		dev := uint64(300 + d)
		head := st.Head(dev).NextSeq
		if head%perSeg != 0 {
			t.Fatalf("device %d head %d is mid-segment: a segment was half-applied", dev, head)
		}
		if err := oplog.VerifyChain(st.Entries(dev, 0, head), [oplog.HashSize]byte{}); err != nil {
			t.Fatalf("device %d chain after close: %v", dev, err)
		}
		ist := srv.IngestStats(dev)
		if ist.Errors != 0 {
			t.Fatalf("device %d ledgered %d ingest errors on a clean close", dev, ist.Errors)
		}
		if ist.Segments != uint64(head)/perSeg {
			t.Fatalf("device %d: %d segments ledgered, head says %d applied", dev, ist.Segments, head/perSeg)
		}
	}

	// Close is a drain, not a latch: a fresh session is served normally.
	cl, err := Loopback(srv, psk, 999)
	if err != nil {
		t.Fatalf("post-close dial: %v", err)
	}
	defer cl.Close()
	blobs, seqs := blobsFor(buildSegments(999, 2, 3))
	if err := cl.PushSegmentBlobs(blobs, seqs, 1); err != nil {
		t.Fatalf("post-close push: %v", err)
	}
}

// TestClusterFailoverPreservesDeviceOrder is the failover-ordering
// satellite: a device's link is choked mid-stream (faultconn), its owner
// is killed, and the device resumes at the new owner from the server's
// durable head — the same reconcile core's redial path performs. The
// per-device chain must verify from genesis and the store's subscribers
// must have observed the device's segments in exact chain order, no gap
// and no duplicate, across the kill-over.
func TestClusterFailoverPreservesDeviceOrder(t *testing.T) {
	const dev = uint64(7)
	const segs, perSeg = 10, 4

	st := NewStore(NewMemStore())
	var subMu sync.Mutex
	var observed [][2]uint64 // device dev's (FirstSeq, LastSeq) in arrival order
	st.Subscribe(func(d uint64, seg *oplog.Segment) {
		if d != dev {
			return
		}
		subMu.Lock()
		observed = append(observed, [2]uint64{seg.FirstSeq, seg.LastSeq})
		subMu.Unlock()
	})

	var chokeOnce sync.Once
	cfg := ClusterConfig{Servers: 2, PSK: psk, Server: ServerConfig{DecodeWorkers: 2}}
	cfg.WrapConn = func(deviceID uint64, nc net.Conn) net.Conn {
		out := nc
		if deviceID == dev {
			// Only the first session is choked; the redial must be clean.
			chokeOnce.Do(func() { out = NewChokeConn(nc, 16) })
		}
		return out
	}
	c := NewCluster(st, cfg)
	defer c.Close()

	cl, err := c.Dial(dev)
	if err != nil {
		t.Fatal(err)
	}
	blobs, seqs := blobsFor(buildSegments(dev, segs, perSeg))
	pushed := 0
	for i := range blobs {
		if err := cl.PushSegmentBlob(blobs[i], seqs[i]); err != nil {
			break
		}
		pushed++
	}
	cl.Close()
	if pushed == 0 || pushed == segs {
		t.Fatalf("choke did not cut mid-stream: %d/%d segments acked", pushed, segs)
	}

	oldOwner, ok := c.Owner(dev)
	if !ok {
		t.Fatal("device unplaced")
	}
	if _, err := c.Kill(oldOwner); err != nil {
		t.Fatal(err)
	}

	cl2, err := c.Dial(dev)
	if err != nil {
		t.Fatalf("redial after kill: %v", err)
	}
	defer cl2.Close()
	if newOwner, _ := c.Owner(dev); newOwner == oldOwner {
		t.Fatalf("device still owned by dead server %d", oldOwner)
	}

	// Reconcile exactly as core's redial does: the new server's durable
	// head names the resume point — a mid-stream cut may have landed a
	// segment whose ack died, and re-shipping it would corrupt the order.
	head, err := cl2.Head()
	if err != nil {
		t.Fatal(err)
	}
	if head.NextSeq%perSeg != 0 {
		t.Fatalf("durable head %d is mid-segment", head.NextSeq)
	}
	resume := int(head.NextSeq / perSeg)
	if resume < pushed {
		t.Fatalf("durable head %d below acked frontier %d", resume, pushed)
	}
	if err := cl2.PushSegmentBlobs(blobs[resume:], seqs[resume:], 2); err != nil {
		t.Fatalf("resume push at new owner: %v", err)
	}

	want := uint64(segs * perSeg)
	if h := st.Head(dev); h.NextSeq != want {
		t.Fatalf("head %d, want %d", h.NextSeq, want)
	}
	if err := oplog.VerifyChain(st.Entries(dev, 0, want), [oplog.HashSize]byte{}); err != nil {
		t.Fatalf("chain after kill-over: %v", err)
	}
	subMu.Lock()
	defer subMu.Unlock()
	var next uint64
	for i, fr := range observed {
		if fr[0] != next {
			t.Fatalf("subscriber saw segment %d out of order: FirstSeq %d, want %d (history %v)",
				i, fr[0], next, observed)
		}
		next = fr[1]
	}
	if next != want {
		t.Fatalf("subscribers observed up to seq %d, want %d", next, want)
	}
}
