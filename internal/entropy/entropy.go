// Package entropy estimates the Shannon entropy of page contents.
//
// RSSD's firmware stamps an entropy estimate into every operation-log
// entry as it logs a host write. Encrypted data is indistinguishable from
// random (entropy close to 8 bits/byte) while typical user data sits far
// lower, so the remote detection pipeline (internal/detect) uses these
// estimates to spot encryption ransomware — including the timing attack,
// whose writes are slow but still high-entropy.
package entropy

import "math"

// Shannon returns the empirical Shannon entropy of data in bits per byte,
// in [0, 8]. An empty slice has zero entropy.
func Shannon(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	var counts [256]int
	for _, b := range data {
		counts[b]++
	}
	total := float64(len(data))
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / total
		h -= p * math.Log2(p)
	}
	return h
}

// Sampled returns the Shannon entropy of up to max bytes of data, sampled
// with a fixed stride across the whole buffer. The device-side logging path
// uses it to bound per-write CPU cost, as firmware would.
func Sampled(data []byte, max int) float64 {
	if max <= 0 || len(data) <= max {
		return Shannon(data)
	}
	stride := len(data) / max
	sample := make([]byte, 0, max)
	for i := 0; i < len(data) && len(sample) < max; i += stride {
		sample = append(sample, data[i])
	}
	return Shannon(sample)
}

// HighEntropy reports whether e (bits/byte) is in the range characteristic
// of encrypted or well-compressed content. 7.2 splits cleanly between
// ciphertext (> 7.9 for 4 KiB pages) and typical user data in our traces.
const HighEntropyThreshold = 7.2

// IsHigh reports whether an entropy estimate indicates ciphertext-like
// content.
func IsHigh(e float64) bool { return e >= HighEntropyThreshold }
