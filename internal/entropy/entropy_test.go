package entropy

import (
	"crypto/rand"
	"math"
	"testing"
	"testing/quick"
)

func TestShannonZeroes(t *testing.T) {
	if got := Shannon(make([]byte, 4096)); got != 0 {
		t.Fatalf("entropy of zeroes = %v, want 0", got)
	}
}

func TestShannonEmpty(t *testing.T) {
	if got := Shannon(nil); got != 0 {
		t.Fatalf("entropy of nil = %v", got)
	}
}

func TestShannonUniform(t *testing.T) {
	data := make([]byte, 256*16)
	for i := range data {
		data[i] = byte(i % 256)
	}
	if got := Shannon(data); math.Abs(got-8.0) > 1e-9 {
		t.Fatalf("entropy of uniform bytes = %v, want 8", got)
	}
}

func TestShannonRandomIsHigh(t *testing.T) {
	data := make([]byte, 4096)
	rand.Read(data)
	got := Shannon(data)
	if got < 7.9 {
		t.Fatalf("entropy of random 4KiB = %v, want > 7.9", got)
	}
	if !IsHigh(got) {
		t.Fatal("random data not classified high entropy")
	}
}

func TestTextLikeDataIsLow(t *testing.T) {
	text := []byte("the quick brown fox jumps over the lazy dog. ")
	data := make([]byte, 0, 4096)
	for len(data) < 4096 {
		data = append(data, text...)
	}
	got := Shannon(data[:4096])
	if got > 5 {
		t.Fatalf("entropy of text = %v, want < 5", got)
	}
	if IsHigh(got) {
		t.Fatal("text classified as high entropy")
	}
}

func TestSampledTracksFull(t *testing.T) {
	data := make([]byte, 4096)
	rand.Read(data)
	full := Shannon(data)
	sampled := Sampled(data, 512)
	if math.Abs(full-sampled) > 0.5 {
		t.Fatalf("sampled %v too far from full %v", sampled, full)
	}
}

func TestSampledSmallInput(t *testing.T) {
	data := []byte{1, 2, 3}
	if Sampled(data, 512) != Shannon(data) {
		t.Fatal("small input should use full entropy")
	}
}

// Property: entropy is always within [0, 8].
func TestEntropyBoundsProperty(t *testing.T) {
	f := func(data []byte) bool {
		e := Shannon(data)
		return e >= 0 && e <= 8+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: entropy is permutation-invariant (depends only on histogram).
func TestEntropyPermutationProperty(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) < 2 {
			return true
		}
		rev := make([]byte, len(data))
		for i, b := range data {
			rev[len(data)-1-i] = b
		}
		return math.Abs(Shannon(data)-Shannon(rev)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
