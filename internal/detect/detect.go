// Package detect implements the offloaded ransomware-detection pipeline.
//
// RSSD does not detect ransomware on the device: it conservatively retains
// everything and ships entropy-stamped operation logs to the remote
// server, where detection algorithms with real computing resources run —
// and can be upgraded without touching the firmware. This package is that
// server-side pipeline. It combines four signals:
//
//   - window entropy: the fraction of recent writes carrying
//     ciphertext-like entropy,
//   - read-then-overwrite: pages read shortly before being overwritten
//     with high-entropy data (the classic in-place encryptor),
//   - trim bursts: dense trims following reads (the trimming attack's
//     create-ciphertext-then-trim-plaintext pattern),
//   - a cumulative victim counter that is deliberately rate-independent:
//     however slowly a timing attack proceeds, each encrypted page
//     advances the counter and eventually crosses the threshold.
package detect

import (
	"fmt"
	"sync"

	"repro/internal/entropy"
	"repro/internal/ftl"
	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
)

// Alert reports suspected ransomware activity.
type Alert struct {
	DeviceID uint64
	AtSeq    uint64 // log sequence of the entry that crossed the threshold
	At       simclock.Time
	Score    float64
	Reasons  []string
}

func (a Alert) String() string {
	return fmt.Sprintf("device %d: ransomware suspected at seq %d (%v), score %.2f: %v",
		a.DeviceID, a.AtSeq, a.At, a.Score, a.Reasons)
}

// Config tunes the ensemble.
type Config struct {
	// Window is the number of recent operations scored together.
	Window int
	// Threshold is the window score that raises an alert (0..1).
	Threshold float64
	// MinEvents is the minimum count of suspicious events in the window
	// before a score can alert, suppressing small-sample noise.
	MinEvents int
	// ReadHorizon is how many operations back a read still "pairs" with
	// an overwrite of the same LPN.
	ReadHorizon uint64
	// CumulativeVictims alerts when this many distinct pages have ever
	// been read-then-encrypted or read-then-trimmed, however slowly.
	CumulativeVictims int
	// Weights for the window ensemble.
	WeightEntropy  float64
	WeightReadOW   float64
	WeightTrim     float64
	WeightZeroWipe float64
	// PageSize enables the zero-wipe signal: overwrites whose content is
	// exactly one zero page (wiper malware writes low-entropy data that
	// the entropy signal cannot see). Zero disables the signal.
	PageSize int
}

// DefaultConfig returns thresholds tuned against the benign cover-traffic
// corpus (no false positives) while catching all four attack models.
func DefaultConfig() Config {
	return Config{
		Window:            64,
		Threshold:         0.35,
		MinEvents:         8,
		ReadHorizon:       512,
		CumulativeVictims: 64,
		// Benign traffic scores ~0.01 on this ensemble (its writes are
		// low entropy, its trims isolated), so 0.35 keeps a wide margin
		// while catching the partial encryptor's thinner signal.
		// Zero-wipes get full weight: a page-exact zero overwrite of
		// live data essentially never occurs benignly.
		WeightEntropy:  0.4,
		WeightReadOW:   0.8,
		WeightTrim:     0.2,
		WeightZeroWipe: 1.0,
		PageSize:       4096,
	}
}

// event is the per-operation feature vector kept in the sliding window.
type event struct {
	highEntOverwrite bool
	readThenEncrypt  bool
	readThenTrim     bool
	zeroWipe         bool
}

type devState struct {
	mu          sync.Mutex
	recentReads map[uint64]uint64 // lpn -> last read seq
	window      []event
	wHead       int
	wCount      int
	// counts within the current window
	nHighEnt, nReadOW, nTrim, nZero int
	// cumulative, rate-independent victim set
	victims map[uint64]struct{}
	alerted bool
}

// dirShards splits the device directory so directory lookups from a fleet
// of ingest workers don't all contend on one lock. Power of two for cheap
// masking; 16 keeps contention negligible out to the 512-device target.
const dirShards = 16

// deviceShard is one slice of the device directory.
type deviceShard struct {
	mu      sync.RWMutex
	devices map[uint64]*devState
}

// Engine consumes operation-log entries (typically via a remote.Store
// subscription) and raises alerts. Like the remote store it is sharded
// per device: the directory itself is split across dirShards locks and
// each device's sliding window sits behind its own lock, so a fleet of
// sessions streams through detection concurrently — one device's analysis
// never stalls another's ingest, and a saturated ingest lane never
// serializes on a single directory mutex.
type Engine struct {
	cfg      Config
	zeroHash [oplog.HashSize]byte
	zeroOK   bool

	shards [dirShards]deviceShard

	alertMu sync.Mutex
	alerts  []Alert
	// OnAlert, when set, is invoked (outside the locks) for each alert.
	OnAlert func(Alert)
}

// NewEngine returns a detection engine.
func NewEngine(cfg Config) *Engine {
	if cfg.Window <= 0 {
		cfg = DefaultConfig()
	}
	e := &Engine{cfg: cfg}
	for i := range e.shards {
		e.shards[i].devices = map[uint64]*devState{}
	}
	if cfg.PageSize > 0 {
		e.zeroHash = oplog.HashData(make([]byte, cfg.PageSize))
		e.zeroOK = true
	}
	return e
}

// Attach subscribes the engine to a remote store so every ingested
// segment is analyzed as it streams in — the paper's "offload detection to
// remote servers", run at ingest time rather than as after-the-fact batch
// queries.
func (e *Engine) Attach(store *remote.Store) {
	store.Subscribe(func(deviceID uint64, seg *oplog.Segment) {
		e.Observe(deviceID, seg.Entries)
	})
}

// Alerts returns all alerts raised so far.
func (e *Engine) Alerts() []Alert {
	e.alertMu.Lock()
	defer e.alertMu.Unlock()
	return append([]Alert(nil), e.alerts...)
}

// AlertsFor returns the alerts raised against one device.
func (e *Engine) AlertsFor(deviceID uint64) []Alert {
	e.alertMu.Lock()
	defer e.alertMu.Unlock()
	var out []Alert
	for _, a := range e.alerts {
		if a.DeviceID == deviceID {
			out = append(out, a)
		}
	}
	return out
}

// Reset clears a device's alert latch (after an investigation concludes).
func (e *Engine) Reset(deviceID uint64) {
	sh := &e.shards[deviceID&(dirShards-1)]
	sh.mu.RLock()
	d, ok := sh.devices[deviceID]
	sh.mu.RUnlock()
	if ok {
		d.mu.Lock()
		d.alerted = false
		d.mu.Unlock()
	}
}

// Handoff moves one device's detection state — sliding window, recent-read
// horizon, cumulative victim set, alert latch — from this engine to dst.
// The fleet control plane calls it when failover or rebalancing moves a
// device to a server with its own engine: detection must continue
// mid-window at the new server, not restart from an empty state a slow
// attacker could reset by riding out a server kill. The state moves by
// pointer, so an in-flight Observe holding the device lock completes
// before the new engine's first Observe takes it. A device never observed
// here is a no-op; if dst somehow already has state for the device (a
// stale double-move), dst's live state wins and the carried copy is
// dropped.
func (e *Engine) Handoff(deviceID uint64, dst *Engine) {
	if dst == nil || dst == e {
		return
	}
	sh := &e.shards[deviceID&(dirShards-1)]
	sh.mu.Lock()
	d, ok := sh.devices[deviceID]
	delete(sh.devices, deviceID)
	sh.mu.Unlock()
	if !ok {
		return
	}
	dsh := &dst.shards[deviceID&(dirShards-1)]
	dsh.mu.Lock()
	if _, exists := dsh.devices[deviceID]; !exists {
		dsh.devices[deviceID] = d
	}
	dsh.mu.Unlock()
}

func (e *Engine) dev(id uint64) *devState {
	sh := &e.shards[id&(dirShards-1)]
	sh.mu.RLock()
	d, ok := sh.devices[id]
	sh.mu.RUnlock()
	if ok {
		return d
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if d, ok = sh.devices[id]; !ok {
		d = &devState{
			recentReads: map[uint64]uint64{},
			window:      make([]event, e.cfg.Window),
			victims:     map[uint64]struct{}{},
		}
		sh.devices[id] = d
	}
	return d
}

// Observe feeds entries (in log order) through the ensemble. Only the
// device's own shard is locked, so a fleet streams concurrently.
func (e *Engine) Observe(deviceID uint64, entries []oplog.Entry) {
	var fired []Alert
	d := e.dev(deviceID)
	d.mu.Lock()
	for i := range entries {
		if a, ok := e.observeOne(deviceID, d, &entries[i]); ok {
			fired = append(fired, a)
		}
	}
	d.mu.Unlock()
	if e.OnAlert != nil {
		for _, a := range fired {
			e.OnAlert(a)
		}
	}
}

func (e *Engine) observeOne(deviceID uint64, d *devState, en *oplog.Entry) (Alert, bool) {
	var ev event
	switch en.Kind {
	case oplog.KindRead:
		d.recentReads[en.LPN] = en.Seq
		// Bound the map: forget reads beyond the horizon lazily by size.
		if len(d.recentReads) > int(e.cfg.ReadHorizon)*4 {
			for lpn, seq := range d.recentReads {
				if en.Seq-seq > e.cfg.ReadHorizon {
					delete(d.recentReads, lpn)
				}
			}
		}
		// Reads enter the window as benign events so the window score is
		// a true *rate*: a slow attacker buried in read-heavy traffic
		// dilutes it (and must be caught by the cumulative counter).
		e.push(d, event{})
		return Alert{}, false
	case oplog.KindWrite:
		high := entropy.IsHigh(float64(en.Entropy))
		overwrite := en.OldPPN != ftl.NoPPN
		ev.highEntOverwrite = high && overwrite
		if e.zeroOK && overwrite && en.DataHash == e.zeroHash {
			// A wiper destroying data with zeroes: invisible to the
			// entropy signal, unmistakable by content hash.
			ev.zeroWipe = true
			d.victims[en.LPN] = struct{}{}
		}
		if seq, ok := d.recentReads[en.LPN]; ok && en.Seq-seq <= e.cfg.ReadHorizon && high {
			ev.readThenEncrypt = true
			d.victims[en.LPN] = struct{}{}
		}
	case oplog.KindTrim:
		if seq, ok := d.recentReads[en.LPN]; ok && en.Seq-seq <= e.cfg.ReadHorizon {
			ev.readThenTrim = true
			d.victims[en.LPN] = struct{}{}
		}
	default:
		return Alert{}, false
	}
	e.push(d, ev)

	if d.alerted {
		return Alert{}, false
	}
	score, reasons := e.score(d)
	events := d.nHighEnt + d.nReadOW + d.nTrim + d.nZero
	if score >= e.cfg.Threshold && events >= e.cfg.MinEvents {
		return e.fire(deviceID, d, en, score, reasons), true
	}
	if len(d.victims) >= e.cfg.CumulativeVictims {
		return e.fire(deviceID, d, en, 1.0,
			[]string{fmt.Sprintf("cumulative: %d pages read-then-encrypted/trimmed", len(d.victims))}), true
	}
	return Alert{}, false
}

func (e *Engine) fire(deviceID uint64, d *devState, en *oplog.Entry, score float64, reasons []string) Alert {
	d.alerted = true
	a := Alert{DeviceID: deviceID, AtSeq: en.Seq, At: en.At, Score: score, Reasons: reasons}
	e.alertMu.Lock()
	e.alerts = append(e.alerts, a)
	e.alertMu.Unlock()
	return a
}

// push adds an event to the ring window, updating counts.
func (e *Engine) push(d *devState, ev event) {
	if d.wCount == len(d.window) {
		old := d.window[d.wHead]
		if old.highEntOverwrite {
			d.nHighEnt--
		}
		if old.readThenEncrypt {
			d.nReadOW--
		}
		if old.readThenTrim {
			d.nTrim--
		}
		if old.zeroWipe {
			d.nZero--
		}
	} else {
		d.wCount++
	}
	d.window[d.wHead] = ev
	d.wHead = (d.wHead + 1) % len(d.window)
	if ev.highEntOverwrite {
		d.nHighEnt++
	}
	if ev.readThenEncrypt {
		d.nReadOW++
	}
	if ev.readThenTrim {
		d.nTrim++
	}
	if ev.zeroWipe {
		d.nZero++
	}
}

// Calibrate tunes the window threshold against a benign trace: it replays
// the entries through a scoring-only engine, finds the highest window
// score benign traffic ever reaches, and sets the threshold at
// max(3x that peak, floor). Operators run this once against a recorded
// clean workload — one of the "various detection algorithms" knobs the
// remote deployment model makes cheap to adjust.
func Calibrate(cfg Config, benign []oplog.Entry, floor float64) Config {
	if cfg.Window <= 0 {
		cfg = DefaultConfig()
	}
	probe := NewEngine(cfg)
	probe.cfg.Threshold = 2.0             // never fire
	probe.cfg.CumulativeVictims = 1 << 40 // never fire
	d := probe.dev(0)
	peak := 0.0
	for i := range benign {
		probe.observeOne(0, d, &benign[i])
		if s, _ := probe.score(d); s > peak {
			peak = s
		}
	}
	th := 3 * peak
	if th < floor {
		th = floor
	}
	if th > 0.95 {
		th = 0.95
	}
	cfg.Threshold = th
	return cfg
}

// score computes the weighted window score and its explanation.
func (e *Engine) score(d *devState) (float64, []string) {
	if d.wCount == 0 {
		return 0, nil
	}
	n := float64(d.wCount)
	fEnt := float64(d.nHighEnt) / n
	fROW := float64(d.nReadOW) / n
	fTrim := float64(d.nTrim) / n
	fZero := float64(d.nZero) / n
	score := e.cfg.WeightEntropy*fEnt + e.cfg.WeightReadOW*fROW +
		e.cfg.WeightTrim*fTrim + e.cfg.WeightZeroWipe*fZero
	var reasons []string
	if fEnt > 0.25 {
		reasons = append(reasons, fmt.Sprintf("high-entropy overwrites %.0f%% of window", fEnt*100))
	}
	if fROW > 0.25 {
		reasons = append(reasons, fmt.Sprintf("read-then-encrypt %.0f%% of window", fROW*100))
	}
	if fTrim > 0.25 {
		reasons = append(reasons, fmt.Sprintf("read-then-trim %.0f%% of window", fTrim*100))
	}
	if fZero > 0.25 {
		reasons = append(reasons, fmt.Sprintf("zero-wipe overwrites %.0f%% of window", fZero*100))
	}
	return score, reasons
}
