package detect

import (
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/simclock"
)

// TestCalibrateFromBenignTrace records a benign workload, calibrates the
// threshold from it, and verifies the calibrated detector still catches
// the encryptor with no benign false positives.
func TestCalibrateFromBenignTrace(t *testing.T) {
	// Record benign history on one rig.
	r := newRig(t, DefaultConfig())
	rng := rand.New(rand.NewSource(21))
	attack.Seed(r.fs, rng, 30, 4)
	attack.RunBenign(r.fs, rng, 400, simclock.Minute)
	r.flush(t)
	benign := r.store.Entries(1, 0, 1<<62)
	if len(benign) == 0 {
		t.Fatal("no benign entries recorded")
	}

	cfg := DefaultConfig()
	cfg.PageSize = 512
	calibrated := Calibrate(cfg, benign, 0.2)
	if calibrated.Threshold < 0.2 || calibrated.Threshold > 0.95 {
		t.Fatalf("calibrated threshold = %v", calibrated.Threshold)
	}

	// Fresh rig with the calibrated config: benign clean, attack caught.
	r2 := newRig(t, calibrated)
	rng2 := rand.New(rand.NewSource(22))
	attack.Seed(r2.fs, rng2, 30, 4)
	attack.RunBenign(r2.fs, rng2, 400, simclock.Minute)
	r2.flush(t)
	if n := len(r2.engine.Alerts()); n != 0 {
		t.Fatalf("calibrated detector raised %d false positives", n)
	}
	(&attack.Encryptor{Key: [32]byte{3}}).Run(r2.fs, rng2)
	r2.flush(t)
	if len(r2.engine.Alerts()) == 0 {
		t.Fatal("calibrated detector missed the encryptor")
	}
}

func TestCalibrateFloorAndCap(t *testing.T) {
	// Empty benign trace: threshold falls to the floor.
	cfg := Calibrate(DefaultConfig(), nil, 0.4)
	if cfg.Threshold != 0.4 {
		t.Fatalf("floor not applied: %v", cfg.Threshold)
	}
}
