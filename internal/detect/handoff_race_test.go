package detect

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/ftl"
	"repro/internal/nvmeoe"
	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
)

// These tests pin down the detection-handoff double-move contract under the
// control-plane concurrency that actually produces double moves: a server
// Kill and a RebalanceTick deciding about the same device window at the
// same time. Two properties must hold whatever the interleaving:
//
//   - the alert latch never regresses: a device that alerted stays
//     latched at whichever engine ends up owning it, and the continuing
//     attack never produces a duplicate alert;
//   - stale moves lose: when a carried state arrives at an engine that
//     already holds live state for the device, the live state wins.

func raceCfg() Config {
	return Config{
		Window: 16, Threshold: 0.99, MinEvents: 4, ReadHorizon: 256,
		CumulativeVictims: 12,
		WeightEntropy:     0.4, WeightReadOW: 0.4, WeightTrim: 0.2,
	}
}

// holders reports which engines hold in-memory state for a device, and
// whether any of it is latched — the white-box ground truth the
// double-move contract is stated in.
func holders(engines []*Engine, dev uint64) (ids []int, latched int) {
	for i, e := range engines {
		sh := &e.shards[dev&(dirShards-1)]
		sh.mu.RLock()
		d, ok := sh.devices[dev]
		sh.mu.RUnlock()
		if !ok {
			continue
		}
		ids = append(ids, i)
		d.mu.Lock()
		if d.alerted {
			latched++
		}
		d.mu.Unlock()
	}
	return ids, latched
}

// TestHandoffDoubleMove drives the two double-move shapes directly.
func TestHandoffDoubleMove(t *testing.T) {
	cfg := raceCfg()

	// Stale move loses: the destination already has live state (the racy
	// segment-routing cold copy), so the carried latched copy is dropped
	// rather than clobbering state an Observe may hold mid-window.
	a, b := NewEngine(cfg), NewEngine(cfg)
	trace := handoffTrace(16)
	a.Observe(3, trace)
	if len(a.Alerts()) != 1 {
		t.Fatalf("alerts = %v", a.Alerts())
	}
	b.Observe(3, trace[:4]) // live cold state at the destination
	a.Handoff(3, b)
	if ids, _ := holders([]*Engine{a, b}, 3); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("state held by engines %v, want only the destination", ids)
	}
	if _, latched := holders([]*Engine{a, b}, 3); latched != 0 {
		t.Fatal("carried copy clobbered the destination's live state")
	}

	// Concurrent double move: failover and rebalance race to move the same
	// latched device. Whatever interleaving wins, the state must end whole
	// at exactly one engine with the latch intact.
	for round := 0; round < 200; round++ {
		x, y, z := NewEngine(cfg), NewEngine(cfg), NewEngine(cfg)
		x.Observe(5, trace)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); x.Handoff(5, y) }()
		go func() { defer wg.Done(); y.Handoff(5, z) }()
		wg.Wait()
		ids, latched := holders([]*Engine{x, y, z}, 5)
		if len(ids) != 1 || latched != 1 {
			t.Fatalf("round %d: state at engines %v (%d latched), want one latched holder", round, ids, latched)
		}
	}
}

// raceChain is one attacked device's wire traffic: an encryptor burst that
// latches the alert, then a continuation burst that must NOT re-alert. The
// continuation alone has the full cumulative-encryptor shape, so a cold
// engine WOULD fire on it — losing the latch is observable, not silent.
type raceChain struct {
	attack, probe         []byte
	attackLast, probeLast uint64
}

func buildRaceChain(dev uint64) raceChain {
	l := oplog.New()
	burst := func() ([]byte, uint64) {
		first := l.NextSeq()
		var es []oplog.Entry
		for i := 0; i < 16; i++ {
			es = append(es, l.Append(oplog.KindRead, simclock.Time(l.NextSeq()), uint64(i), ftl.NoPPN, 1, 0, [32]byte{}))
		}
		for i := 0; i < 16; i++ {
			es = append(es, l.Append(oplog.KindWrite, simclock.Time(l.NextSeq()), uint64(i), 1, 2, 7.9, [32]byte{}))
		}
		s := &oplog.Segment{DeviceID: dev, FirstSeq: first, LastSeq: l.NextSeq(), Entries: es}
		return nvmeoe.EncodeSegmentBlob(s.Marshal()), s.LastSeq
	}
	var c raceChain
	c.attack, c.attackLast = burst()
	c.probe, c.probeLast = burst()
	return c
}

// benignChain is storm cover traffic: n segments of low-entropy fresh
// writes that can never alert, pushed concurrently with the control-plane
// churn to keep Observe racing Handoff on live devices.
func benignChain(dev uint64, n int) (blobs [][]byte, lastSeqs []uint64) {
	l := oplog.New()
	for s := 0; s < n; s++ {
		first := l.NextSeq()
		var es []oplog.Entry
		for i := 0; i < 8; i++ {
			es = append(es, l.Append(oplog.KindWrite, simclock.Time(l.NextSeq()), uint64(100+i), ftl.NoPPN, 2, 2.0, [32]byte{}))
		}
		seg := &oplog.Segment{DeviceID: dev, FirstSeq: first, LastSeq: l.NextSeq(), Entries: es}
		blobs = append(blobs, nvmeoe.EncodeSegmentBlob(seg.Marshal()))
		lastSeqs = append(lastSeqs, seg.LastSeq)
	}
	return blobs, lastSeqs
}

// TestClusterKillRebalanceHandoffRace is the satellite's storm: a
// three-server cluster wired exactly like the fleet experiment (per-server
// engines, OnMove handoffs, owner-routed segment subscription) with three
// things racing — benign wire traffic, a kill/revive loop, and a rebalance
// loop (both RebalanceTick and RebalanceOnIngest). Attacked devices latch
// before the storm; after it settles, the continuing attack must route to
// the surviving owner's engine and hit a still-latched state.
func TestClusterKillRebalanceHandoffRace(t *testing.T) {
	const (
		servers       = 3
		attackedDevs  = 6
		benignDevs    = 12
		benignSegs    = 6
		killRounds    = 8
		rebalanceOps  = 40
		retryBudget   = 20000
		firstBenignID = 101
	)
	st := remote.NewStore(remote.NewMemStore())
	cluster := remote.NewCluster(st, remote.ClusterConfig{
		Servers: servers, PSK: psk,
		// Hair-trigger skew thresholds so the storm's uneven ingest
		// actually produces rebalance moves, not just rebalance calls.
		SkewFactor: 1.01, SkewTicks: 1, SkewMinPeak: 1, SkewMinBytes: 1,
	})
	defer cluster.Close()

	engines := make([]*Engine, servers)
	for i := range engines {
		engines[i] = NewEngine(raceCfg())
	}
	var handoffs sync.Map
	var handoffCount int
	var handoffMu sync.Mutex
	cluster.OnMove = func(dev uint64, from, to int) {
		engines[from].Handoff(dev, engines[to])
		handoffs.Store(dev, to)
		handoffMu.Lock()
		handoffCount++
		handoffMu.Unlock()
	}
	st.Subscribe(func(dev uint64, seg *oplog.Segment) {
		if owner, ok := cluster.Owner(dev); ok {
			engines[owner].Observe(dev, seg.Entries)
		}
	})

	// push delivers one blob through the cluster, redialing around kills;
	// Head() resync first, exactly like a device after session loss.
	push := func(cl **remote.Client, dev uint64, blob []byte, lastSeq uint64) bool {
		for attempt := 0; attempt < retryBudget; attempt++ {
			if *cl == nil {
				c, err := cluster.Dial(dev)
				if err != nil {
					runtime.Gosched()
					continue
				}
				*cl = c
			}
			h, err := (*cl).Head()
			if err != nil {
				(*cl).Close()
				*cl = nil
				continue
			}
			if h.NextSeq >= lastSeq {
				return true // already durable before the session died
			}
			if err := (*cl).PushSegmentBlob(blob, lastSeq); err == nil {
				return true
			}
			(*cl).Close()
			*cl = nil
			runtime.Gosched()
		}
		return false
	}

	// Quiet phase: latch every attacked device at its current owner.
	chains := make([]raceChain, attackedDevs)
	for d := 0; d < attackedDevs; d++ {
		dev := uint64(d + 1)
		chains[d] = buildRaceChain(dev)
		var cl *remote.Client
		if !push(&cl, dev, chains[d].attack, chains[d].attackLast) {
			t.Fatalf("device %d: attack burst never landed", dev)
		}
		cl.Close()
		total := 0
		for _, e := range engines {
			total += len(e.AlertsFor(dev))
		}
		if total != 1 {
			t.Fatalf("device %d: %d alerts after attack burst, want 1", dev, total)
		}
	}

	// Storm: benign traffic, kills+revives, and both rebalancers, all
	// concurrent. The attacked devices stay quiet so their state moves
	// only by Handoff — any latch loss below is the control plane's fault.
	var wg sync.WaitGroup
	for d := 0; d < benignDevs; d++ {
		dev := uint64(firstBenignID + d)
		blobs, lastSeqs := benignChain(dev, benignSegs)
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cl *remote.Client
			defer func() {
				if cl != nil {
					cl.Close()
				}
			}()
			for i := range blobs {
				if !push(&cl, dev, blobs[i], lastSeqs[i]) {
					t.Errorf("device %d: benign segment %d never landed", dev, i)
					return
				}
			}
		}()
	}
	wg.Add(2)
	go func() { // failover loop
		defer wg.Done()
		for k := 0; k < killRounds; k++ {
			id := k % servers
			if _, err := cluster.Kill(id); err != nil {
				continue
			}
			runtime.Gosched()
			if err := cluster.Revive(id); err != nil {
				t.Errorf("revive %d: %v", id, err)
			}
		}
	}()
	go func() { // rebalance loop, racing the kills on the same windows
		defer wg.Done()
		for i := 0; i < rebalanceOps; i++ {
			if i%2 == 0 {
				cluster.RebalanceTick()
			} else {
				cluster.RebalanceOnIngest()
			}
			runtime.Gosched()
		}
	}()
	wg.Wait()

	stats := cluster.Stats()
	if stats.Kills == 0 || stats.Revives == 0 {
		t.Fatalf("storm was becalmed: %+v", stats)
	}
	handoffMu.Lock()
	hc := handoffCount
	handoffMu.Unlock()
	if hc == 0 {
		t.Fatal("no handoffs executed; the race never happened")
	}

	// Settle phase: the attack continues on every latched device. The
	// probe burst alone would fire a cold engine, so a lost or duplicated
	// latch shows up as a second alert.
	for d := 0; d < attackedDevs; d++ {
		dev := uint64(d + 1)
		var cl *remote.Client
		if !push(&cl, dev, chains[d].probe, chains[d].probeLast) {
			t.Fatalf("device %d: probe burst never landed", dev)
		}
		cl.Close()

		owner, ok := cluster.Owner(dev)
		if !ok {
			t.Fatalf("device %d lost its placement", dev)
		}
		ids, latched := holders(engines, dev)
		if len(ids) != 1 || ids[0] != owner {
			t.Errorf("device %d: state at engines %v, owner is %d — handoff chain broke", dev, ids, owner)
		}
		if latched != 1 {
			t.Errorf("device %d: alert latch regressed across %d handoffs", dev, hc)
		}
		total := 0
		for _, e := range engines {
			total += len(e.AlertsFor(dev))
		}
		if total != 1 {
			t.Errorf("device %d: %d alerts after the storm, want exactly 1", dev, total)
		}
	}
	t.Logf("storm: %d kills, %d revives, %d rebalances, %d handoffs",
		stats.Kills, stats.Revives, stats.Rebalances, hc)
}
