package detect

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/host"
	"repro/internal/nand"
	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
)

var psk = []byte("detect-test-psk-0123456789abcdef")

// rig is a full device + remote + detection setup.
type rig struct {
	fs     *host.FlatFS
	dev    *core.RSSD
	store  *remote.Store
	engine *Engine
}

func newRig(t *testing.T, detCfg Config) *rig {
	t.Helper()
	store := remote.NewStore(remote.NewMemStore())
	engine := NewEngine(detCfg)
	engine.Attach(store)
	srv := remote.NewServer(store, psk)
	client, err := remote.Loopback(srv, psk, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	cfg := core.DefaultConfig()
	cfg.FTL = ftl.Config{
		NAND: nand.Config{
			Geometry: nand.Geometry{
				Channels: 2, ChipsPerChannel: 2, DiesPerChip: 1, PlanesPerDie: 1,
				BlocksPerPlane: 64, PagesPerBlock: 8, PageSize: 512,
			},
			Timing: nand.DefaultTiming(),
		},
		OverProvision: 0.2,
	}
	cfg.CheckpointEvery = 0
	dev := core.New(cfg, client)
	return &rig{
		fs:     host.NewFlatFS(dev, simclock.NewClock()),
		dev:    dev,
		store:  store,
		engine: engine,
	}
}

func (r *rig) flush(t *testing.T) {
	t.Helper()
	if _, err := r.dev.OffloadNow(r.fs.Clock().Now()); err != nil {
		t.Fatal(err)
	}
}

func TestBenignTrafficRaisesNoAlert(t *testing.T) {
	r := newRig(t, DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	if _, _, err := attack.Seed(r.fs, rng, 30, 4); err != nil {
		t.Fatal(err)
	}
	if err := attack.RunBenign(r.fs, rng, 500, simclock.Minute); err != nil {
		t.Fatal(err)
	}
	r.flush(t)
	if alerts := r.engine.Alerts(); len(alerts) != 0 {
		t.Fatalf("false positives on benign traffic: %v", alerts)
	}
}

func TestEncryptorDetected(t *testing.T) {
	r := newRig(t, DefaultConfig())
	rng := rand.New(rand.NewSource(2))
	attack.Seed(r.fs, rng, 30, 4)
	attack.RunBenign(r.fs, rng, 100, simclock.Minute)
	r.flush(t)
	if len(r.engine.Alerts()) != 0 {
		t.Fatal("alert before attack")
	}
	attackStartSeq := r.dev.Log().NextSeq()
	if _, err := (&attack.Encryptor{Key: [32]byte{1}}).Run(r.fs, rng); err != nil {
		t.Fatal(err)
	}
	r.flush(t)
	alerts := r.engine.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %v", alerts)
	}
	if alerts[0].AtSeq < attackStartSeq {
		t.Fatalf("alert at seq %d, attack started at %d", alerts[0].AtSeq, attackStartSeq)
	}
}

func TestGCAttackDetected(t *testing.T) {
	r := newRig(t, DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	attack.Seed(r.fs, rng, 30, 4)
	if _, err := (&attack.GCAttack{Key: [32]byte{2}, Rounds: 1}).Run(r.fs, rng); err != nil {
		t.Fatal(err)
	}
	r.flush(t)
	if len(r.engine.Alerts()) == 0 {
		t.Fatal("GC attack not detected")
	}
}

func TestTrimmingAttackDetected(t *testing.T) {
	r := newRig(t, DefaultConfig())
	rng := rand.New(rand.NewSource(4))
	attack.Seed(r.fs, rng, 30, 4)
	attack.RunBenign(r.fs, rng, 50, simclock.Minute)
	if _, err := (&attack.TrimmingAttack{Key: [32]byte{3}}).Run(r.fs, rng); err != nil {
		t.Fatal(err)
	}
	r.flush(t)
	alerts := r.engine.Alerts()
	if len(alerts) == 0 {
		t.Fatal("trimming attack not detected")
	}
}

// TestTimingAttackDetectedCumulatively: the window score never spikes, but
// the rate-independent victim counter catches the attack anyway.
func TestTimingAttackDetectedCumulatively(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threshold = 0.99 // effectively disable the window detector
	cfg.CumulativeVictims = 40
	r := newRig(t, cfg)
	rng := rand.New(rand.NewSource(5))
	attack.Seed(r.fs, rng, 30, 4)
	atk := &attack.TimingAttack{
		Key: [32]byte{4}, FilesPerBurst: 1,
		BurstInterval: 8 * simclock.Hour, CoverOpsPerOp: 8,
	}
	if _, err := atk.Run(r.fs, rng); err != nil {
		t.Fatal(err)
	}
	r.flush(t)
	alerts := r.engine.Alerts()
	if len(alerts) == 0 {
		t.Fatal("timing attack evaded cumulative detection")
	}
	if !strings.Contains(alerts[0].Reasons[0], "cumulative") {
		t.Fatalf("expected cumulative reason, got %v", alerts[0].Reasons)
	}
}

func TestAlertLatchAndReset(t *testing.T) {
	r := newRig(t, DefaultConfig())
	rng := rand.New(rand.NewSource(6))
	attack.Seed(r.fs, rng, 30, 4)
	(&attack.Encryptor{Key: [32]byte{1}}).Run(r.fs, rng)
	r.flush(t)
	if got := len(r.engine.Alerts()); got != 1 {
		t.Fatalf("alerts = %d, want exactly 1 (latched)", got)
	}
	r.engine.Reset(1)
	// More malicious traffic after reset can alert again.
	(&attack.Encryptor{Key: [32]byte{9}}).Run(r.fs, rng)
	r.flush(t)
	if got := len(r.engine.Alerts()); got != 2 {
		t.Fatalf("alerts after reset = %d, want 2", got)
	}
}

func TestOnAlertCallback(t *testing.T) {
	r := newRig(t, DefaultConfig())
	var got []Alert
	r.engine.OnAlert = func(a Alert) { got = append(got, a) }
	rng := rand.New(rand.NewSource(7))
	attack.Seed(r.fs, rng, 30, 4)
	(&attack.Encryptor{Key: [32]byte{1}}).Run(r.fs, rng)
	r.flush(t)
	if len(got) != 1 {
		t.Fatalf("callback fired %d times", len(got))
	}
}

// --- unit tests on synthetic entry streams -------------------------------

// synth builds a log with the given per-entry spec string:
// 'r' read of lpn i%8, 'w' low-entropy write, 'W' high-entropy overwrite of
// a recently read page, 'T' trim of a recently read page.
func synth(spec string) []oplog.Entry {
	l := oplog.New()
	for i, c := range spec {
		lpn := uint64(i % 8)
		switch c {
		case 'r':
			l.Append(oplog.KindRead, simclock.Time(i), lpn, 1, ftl.NoPPN, 0, [32]byte{})
		case 'w':
			l.Append(oplog.KindWrite, simclock.Time(i), lpn, 1, ftl.NoPPN, 3.0, [32]byte{})
		case 'W':
			l.Append(oplog.KindWrite, simclock.Time(i), lpn, 1, ftl.NoPPN, 7.9, [32]byte{})
		case 'T':
			l.Append(oplog.KindTrim, simclock.Time(i), lpn, 1, ftl.NoPPN, 0, [32]byte{})
		}
	}
	return l.All()
}

func TestWindowScoringUnit(t *testing.T) {
	cfg := Config{
		Window: 16, Threshold: 0.5, MinEvents: 4, ReadHorizon: 64,
		CumulativeVictims: 1000,
		WeightEntropy:     0.4, WeightReadOW: 0.4, WeightTrim: 0.2,
	}
	e := NewEngine(cfg)
	// Pure benign: low-entropy writes only.
	e.Observe(1, synth("rwrwrwrwrwrwrwrwrwrw"))
	if len(e.Alerts()) != 0 {
		t.Fatal("benign synthetic stream alerted")
	}
	// Ransomware pattern: read every page then encrypt it.
	e2 := NewEngine(cfg)
	e2.Observe(2, synth("rrrrrrrrWWWWWWWWWWWWWWWW"))
	alerts := e2.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %v", alerts)
	}
	if alerts[0].Score < 0.5 {
		t.Fatalf("score = %v", alerts[0].Score)
	}
}

func TestTrimSignalUnit(t *testing.T) {
	cfg := Config{
		Window: 16, Threshold: 0.15, MinEvents: 4, ReadHorizon: 64,
		CumulativeVictims: 1000,
		WeightEntropy:     0.4, WeightReadOW: 0.4, WeightTrim: 0.2,
	}
	e := NewEngine(cfg)
	e.Observe(1, synth("rrrrrrrrTTTTTTTTTTTT"))
	if len(e.Alerts()) != 1 {
		t.Fatal("trim burst not detected")
	}
}

func TestMinEventsSuppressesSmallSamples(t *testing.T) {
	cfg := Config{
		Window: 16, Threshold: 0.1, MinEvents: 8, ReadHorizon: 64,
		CumulativeVictims: 1000,
		WeightEntropy:     1, WeightReadOW: 1, WeightTrim: 1,
	}
	e := NewEngine(cfg)
	// Only 2 suspicious events: high score fraction but too few events.
	e.Observe(1, synth("rrWW"))
	if len(e.Alerts()) != 0 {
		t.Fatal("alerted on a 2-event sample")
	}
}

func TestReadHorizonExpiry(t *testing.T) {
	cfg := Config{
		Window: 8, Threshold: 0.9, MinEvents: 2, ReadHorizon: 4,
		CumulativeVictims: 2,
		WeightEntropy:     0, WeightReadOW: 1, WeightTrim: 0,
	}
	e := NewEngine(cfg)
	// Read lpn 0, then many unrelated low-entropy ops, then encrypt lpn 0:
	// the read is stale, so no read-then-encrypt pairing, no victims.
	l := oplog.New()
	l.Append(oplog.KindRead, 0, 0, 1, ftl.NoPPN, 0, [32]byte{})
	for i := 0; i < 10; i++ {
		l.Append(oplog.KindWrite, 0, 5, 1, ftl.NoPPN, 3.0, [32]byte{})
	}
	l.Append(oplog.KindWrite, 0, 0, 1, ftl.NoPPN, 7.9, [32]byte{})
	e.Observe(1, l.All())
	if len(e.Alerts()) != 0 {
		t.Fatal("stale read paired with overwrite")
	}
}

// --- failover handoff ----------------------------------------------------

// handoffTrace builds the cumulative-encryptor shape across n distinct
// pages: read them all, then overwrite each with high-entropy data. Only
// an engine that saw the reads counts the overwrites as victims.
func handoffTrace(n int) []oplog.Entry {
	l := oplog.New()
	for i := 0; i < n; i++ {
		l.Append(oplog.KindRead, simclock.Time(i), uint64(i), ftl.NoPPN, 1, 0, [32]byte{})
	}
	for i := 0; i < n; i++ {
		l.Append(oplog.KindWrite, simclock.Time(n+i), uint64(i), 1, 2, 7.9, [32]byte{})
	}
	return l.All()
}

// TestHandoffPreservesDetectionContinuity is the failover-continuity
// contract: a device moved between per-server engines mid-stream must keep
// its recent-read horizon and cumulative victim set, so an attack split
// across the move still alerts — and an engine that starts cold on the
// same tail provably would not.
func TestHandoffPreservesDetectionContinuity(t *testing.T) {
	cfg := Config{
		Window: 16, Threshold: 0.99, MinEvents: 4, ReadHorizon: 256,
		CumulativeVictims: 12,
		WeightEntropy:     0.4, WeightReadOW: 0.4, WeightTrim: 0.2,
	}
	trace := handoffTrace(16)
	reads, cut := 16, 16+6 // move after 6 of 16 encrypting overwrites

	// Control: an engine that only ever sees the post-move tail has no
	// read horizon, pairs nothing, and stays silent.
	cold := NewEngine(cfg)
	cold.Observe(7, trace[cut:])
	if got := cold.Alerts(); len(got) != 0 {
		t.Fatalf("cold engine alerted on the tail alone: %v", got)
	}

	src, dst := NewEngine(cfg), NewEngine(cfg)
	src.Observe(7, trace[:cut])
	if len(src.Alerts()) != 0 {
		t.Fatalf("alert before the victim threshold (%d victims)", cut-reads)
	}
	src.Handoff(7, dst)
	dst.Observe(7, trace[cut:])
	alerts := dst.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("handed-off device did not alert at the new engine: %v", alerts)
	}
	if !strings.Contains(alerts[0].Reasons[0], "cumulative") {
		t.Fatalf("expected the carried victim set to fire, got %v", alerts[0].Reasons)
	}
	if len(src.Alerts()) != 0 {
		t.Fatal("source engine alerted after handing the device away")
	}
}

// TestHandoffCarriesAlertLatch: an already-alerted device stays latched at
// its new engine — failover must not duplicate alerts.
func TestHandoffCarriesAlertLatch(t *testing.T) {
	cfg := Config{
		Window: 16, Threshold: 0.99, MinEvents: 4, ReadHorizon: 256,
		CumulativeVictims: 8,
		WeightEntropy:     0.4, WeightReadOW: 0.4, WeightTrim: 0.2,
	}
	trace := handoffTrace(16)
	src, dst := NewEngine(cfg), NewEngine(cfg)
	src.Observe(9, trace)
	if len(src.Alerts()) != 1 {
		t.Fatalf("alerts = %v", src.Alerts())
	}
	src.Handoff(9, dst)
	dst.Observe(9, handoffTrace(16)) // the attack continues after the move
	if got := dst.Alerts(); len(got) != 0 {
		t.Fatalf("latched device re-alerted after handoff: %v", got)
	}
	// A device the source never saw is a no-op handoff.
	src.Handoff(424242, dst)
}
