package bufpool

import (
	"bytes"
	"strings"
	"testing"
)

// The gauge must balance across every Release edge case the pool
// documents: exact-class returns, grown buffers dropped instead of pooled,
// oversize rentals that never pool, and double releases.
func TestOutstandingGaugeBalances(t *testing.T) {
	base := Outstanding()

	var held []*Buf
	for _, n := range []int{1, 512, 513, 4096, 100_000, 1 << maxClassShift} {
		held = append(held, Get(n))
	}
	if d := Outstanding().Sub(base); d.Total() != int64(len(held)) {
		t.Fatalf("outstanding delta %d after %d gets: %+v", d.Total(), len(held), d)
	}
	if err := CheckBalanced(base); err == nil {
		t.Fatal("CheckBalanced passed with buffers outstanding")
	} else if !strings.Contains(err.Error(), "class") {
		t.Fatalf("leak report names no class: %v", err)
	}
	for _, b := range held {
		b.Release()
	}
	if err := CheckBalanced(base); err != nil {
		t.Fatalf("balanced after releases: %v", err)
	}
}

func TestOutstandingGaugeGrownAndOversize(t *testing.T) {
	base := Outstanding()

	// A buffer that grows onto a non-class capacity is dropped by Release
	// (not re-pooled) but must still settle the gauge at its birth class.
	b := Get(1024)
	b.B = append(b.B, make([]byte, 5000)...)
	b.Release()
	if err := CheckBalanced(base); err != nil {
		t.Fatalf("grown buffer leaked in gauge: %v", err)
	}

	// Oversize rentals bypass the pools entirely yet balance through the
	// dedicated bucket.
	big := Get((1 << maxClassShift) + 1)
	if d := Outstanding().Sub(base); d.Oversize != 1 {
		t.Fatalf("oversize delta %d, want 1", d.Oversize)
	}
	big.Release()
	if err := CheckBalanced(base); err != nil {
		t.Fatalf("oversize rental leaked in gauge: %v", err)
	}

	// Double release must not decrement twice; nil release is a no-op.
	b2 := Get(2048)
	b2.Release()
	b2.Release()
	(*Buf)(nil).Release()
	// A directly constructed Buf was never rented: releasing it must not
	// move the gauge.
	(&Buf{B: make([]byte, 0, 4096)}).Release()
	if err := CheckBalanced(base); err != nil {
		t.Fatalf("double/foreign release moved gauge: %v", err)
	}
}

// AppendLimited rejects streams whose decoded size exceeds the declared
// bound — the guard that keeps a corrupted codec header from inflating
// without bound on the server ingest path.
func TestInflaterAppendLimited(t *testing.T) {
	raw := bytes.Repeat([]byte("retention window "), 4096) // compresses well
	d := GetDeflater()
	comp, err := d.Append(nil, raw)
	d.Release()
	if err != nil {
		t.Fatal(err)
	}

	inf := GetInflater()
	defer inf.Release()
	out, err := inf.AppendLimited(nil, comp, len(raw))
	if err != nil || !bytes.Equal(out, raw) {
		t.Fatalf("limited inflate at exact bound: err=%v, equal=%v", err, bytes.Equal(out, raw))
	}
	if _, err := inf.AppendLimited(nil, comp, len(raw)-1); err == nil {
		t.Fatal("stream over the bound decoded without error")
	}
	// The plain Append path stays unlimited after a limited call.
	out, err = inf.Append(nil, comp)
	if err != nil || !bytes.Equal(out, raw) {
		t.Fatalf("unlimited inflate after limited call: err=%v", err)
	}
}
