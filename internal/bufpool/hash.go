package bufpool

import (
	"crypto/sha256"
	"hash"
	"sync"
)

// Hasher is a pooled SHA-256 scratch for per-page content hashing. The
// dedup datapath hashes every sealed page (device side at seal time, and
// again device-side when verifying streamed literals before they enter the
// restore resolve cache), so the hash state must be rented, not allocated:
// crypto/sha256's one-shot Sum256 is allocation-free, but code that needs
// an incremental writer or wants to amortize the digest across pages goes
// through here. The pool follows the Deflater contract: Get, use, Release;
// the hasher retains no caller memory across rentals.
type Hasher struct {
	h   hash.Hash
	sum [sha256.Size]byte
}

var hasherPool = sync.Pool{
	New: func() any { return &Hasher{h: sha256.New()} },
}

// GetHasher rents a pooled SHA-256 hasher.
func GetHasher() *Hasher {
	return hasherPool.Get().(*Hasher)
}

// Release returns the hasher to the pool. The hasher must not be used
// after Release.
func (h *Hasher) Release() {
	if h == nil {
		return
	}
	hasherPool.Put(h)
}

// Sum256 returns the SHA-256 of p. Steady state this is 0 allocs/op: the
// digest writes into the hasher's own scratch array and the array is
// returned by value.
func (h *Hasher) Sum256(p []byte) [sha256.Size]byte {
	h.h.Reset()
	h.h.Write(p)
	h.h.Sum(h.sum[:0])
	return h.sum
}
