//go:build !race

package bufpool

// RaceEnabled reports whether the binary was built with the race detector.
// Allocation-regression tests consult it: race instrumentation allocates on
// its own, so allocs/op assertions only hold in non-race builds, while the
// race builds still exercise the pools for reuse-after-release bugs.
const RaceEnabled = false
