// Package bufpool is the shared buffer economy of the hot datapath: a
// size-classed pool of byte buffers plus pooled DEFLATE codec state, so
// the steady-state seal→compress→ship→ingest path allocates nothing per
// operation.
//
// Two costs motivate it. A flate.Writer is a multi-kilobyte struct that
// compress/flate rebuilds from scratch on every NewWriter call — the single
// largest per-segment allocation the offload engine used to make. And every
// NAND page copy, segment marshal, and codec frame used to be a fresh
// make([]byte, ...) that lived for microseconds. Both are rental, not
// ownership, problems: Get a buffer, fill it, Release it when the bytes
// have moved on.
//
// Contract: Release returns the buffer to the pool for immediate reuse, so
// a released buffer must not be read or written again — reuse-after-release
// is the classic pooling bug, and the CI race job runs the fleet, retention,
// and recovery smokes precisely to shake it out. Releasing is optional
// (a dropped buffer is garbage-collected like any other slice) and nil-safe,
// so error paths can release unconditionally.
package bufpool

import (
	"compress/flate"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Size classes are powers of two from minClassBytes to maxClassBytes.
// Requests above the largest class are served by plain allocation and
// dropped on Release — pooling pathological one-off giants would pin their
// memory forever.
const (
	minClassShift = 9  // 512 B: the smallest simulated page size
	maxClassShift = 24 // 16 MiB: comfortably above the largest segment blob
	numClasses    = maxClassShift - minClassShift + 1
)

// Buf is a pooled byte buffer. B has length zero and at least the requested
// capacity at Get; callers append into it (or reslice it up). Size your Get
// so the buffer does not grow: append growth lands on a non-class capacity,
// which Release silently drops (the garbage collector reclaims it) rather
// than re-pooling — correct, but one allocation instead of zero for that
// op. The hot paths avoid this by sizing exactly (MarshaledSize,
// BlobOverhead+len, SegmentBlobLogicalSize).
type Buf struct {
	B []byte
	// cls records the rental's size class for the outstanding gauge:
	// class+1 for pooled classes, oversizeClass for above-max rentals,
	// 0 for a buffer not currently rented (or never Get-issued). Keeping
	// it on the Buf makes the gauge exact even when append growth moves
	// B onto a capacity Release would otherwise misclassify.
	cls int8
}

const oversizeClass = -1

var (
	pools [numClasses]sync.Pool
	// outstanding is the Get/Release balance per size class (plus the
	// above-max rentals that never pool); see Outstanding.
	outstanding [numClasses]atomic.Int64
	oversizeOut atomic.Int64
)

// classFor returns the smallest class index holding n bytes, or -1 when n
// exceeds the largest class.
func classFor(n int) int {
	if n <= 1<<minClassShift {
		return 0
	}
	c := bits.Len(uint(n-1)) - minClassShift
	if c >= numClasses {
		return -1
	}
	return c
}

// Get returns a buffer with len(b.B) == 0 and cap(b.B) >= n. In steady
// state (matched Release calls) it allocates nothing.
func Get(n int) *Buf {
	c := classFor(n)
	if c < 0 {
		oversizeOut.Add(1)
		return &Buf{B: make([]byte, 0, n), cls: oversizeClass}
	}
	outstanding[c].Add(1)
	if b, _ := pools[c].Get().(*Buf); b != nil {
		b.B = b.B[:0]
		b.cls = int8(c + 1)
		return b
	}
	return &Buf{B: make([]byte, 0, 1<<(minClassShift+c)), cls: int8(c + 1)}
}

// Release returns the buffer to its pool (classified by current capacity)
// for reuse. The caller must not touch b.B afterwards. Release is nil-safe
// and idempotent only in the sense that releasing nil is a no-op — a double
// release of a live buffer is a bug the race smokes exist to catch.
func (b *Buf) Release() {
	if b == nil || cap(b.B) == 0 {
		return
	}
	// Settle the gauge by the class the rental was issued at (not the
	// current capacity): a grown-then-dropped buffer still balances, and a
	// double release cannot decrement twice.
	switch {
	case b.cls > 0:
		outstanding[b.cls-1].Add(-1)
		b.cls = 0
	case b.cls == oversizeClass:
		oversizeOut.Add(-1)
		b.cls = 0
	}
	// Only exact class-sized capacities go back: append growth lands on
	// arbitrary capacities, and re-classifying a 6000-byte array as the
	// 8192 class would hand out buffers shorter than their class promises.
	// A grown buffer is therefore dropped here, not migrated.
	n := cap(b.B)
	if n&(n-1) != 0 || n < 1<<minClassShift || n > 1<<maxClassShift {
		return
	}
	c := classFor(n)
	b.B = b.B[:0]
	pools[c].Put(b)
}

// appendSink is the io.Writer a pooled Deflater compresses into: an append
// target that lives inside the pooled wrapper, so taking its address never
// escapes a fresh allocation.
type appendSink struct {
	b []byte
}

func (s *appendSink) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

// Deflater is a pooled flate.Writer (BestSpeed, the codec's one level)
// bundled with its output sink. Rent with GetDeflater, compress with
// Append, and Release when done.
type Deflater struct {
	w    *flate.Writer
	sink appendSink
}

var deflaters = sync.Pool{New: func() any {
	d := &Deflater{}
	// NewWriter only fails on an invalid level; BestSpeed is valid.
	d.w, _ = flate.NewWriter(&d.sink, flate.BestSpeed)
	return d
}}

// GetDeflater rents a pooled DEFLATE compressor.
func GetDeflater() *Deflater { return deflaters.Get().(*Deflater) }

// Release returns the compressor to the pool.
func (d *Deflater) Release() {
	if d == nil {
		return
	}
	d.sink.b = nil // never retain caller memory across rentals
	deflaters.Put(d)
}

// Append appends the complete DEFLATE stream of p to dst and returns the
// extended slice. With sufficient dst capacity it performs zero
// allocations.
func (d *Deflater) Append(dst, p []byte) ([]byte, error) {
	d.sink.b = dst
	d.w.Reset(&d.sink)
	if _, err := d.w.Write(p); err != nil {
		d.sink.b = nil
		return dst, err
	}
	err := d.w.Close()
	out := d.sink.b
	d.sink.b = nil
	if err != nil {
		return dst, err
	}
	return out, nil
}

// Inflater is a pooled DEFLATE decompressor. Unlike the Deflater it does
// not wrap compress/flate: stdlib inflate re-allocates its dynamic-Huffman
// link tables on every block, so a pooled stdlib reader still costs ~16
// allocs per realistic segment. The decoder in inflate.go keeps its bit
// reader, Huffman tables, and code-length scratch in fixed arrays inside
// this struct, rebuilt in place per block — steady-state decode is 0
// allocs/op, matching the encode lane.
type Inflater struct {
	br   bitReader
	lit  huffTable
	dist huffTable
	clen huffTable
	lens [286 + 30]uint8 // dynamic-header code lengths (hlit + hdist max)
	// limit, when positive, bounds the decoded output size (AppendLimited):
	// a stream that tries to produce more is corrupt by the caller's
	// framing, and aborting early keeps a flipped-bit blob from inflating
	// without bound on the ingest path.
	limit int
}

var inflaters = sync.Pool{New: func() any { return &Inflater{} }}

// GetInflater rents a pooled DEFLATE decompressor.
func GetInflater() *Inflater { return inflaters.Get().(*Inflater) }

// Release returns the decompressor to the pool.
func (i *Inflater) Release() {
	if i == nil {
		return
	}
	i.br.in = nil // never retain caller memory across rentals
	inflaters.Put(i)
}

// Append appends the decompression of the DEFLATE stream p to dst and
// returns the extended slice. With sufficient dst capacity it performs zero
// allocations. Decode failures return ErrCorrupt or ErrTruncated (possibly
// with dst partially extended); the caller's pooled buffer discipline makes
// partial output harmless.
func (i *Inflater) Append(dst, p []byte) ([]byte, error) {
	i.limit = 0
	return i.inflate(dst, p)
}

// AppendLimited is Append with an output bound: decoding fails with
// ErrCorrupt as soon as the stream would exceed max decoded bytes. Callers
// whose framing records the expected decoded size (the segment codec
// header) pass it here so corrupted streams cannot balloon memory.
func (i *Inflater) AppendLimited(dst, p []byte, max int) ([]byte, error) {
	i.limit = max
	out, err := i.inflate(dst, p)
	i.limit = 0
	return out, err
}
