package bufpool

import (
	"bytes"
	"compress/flate"
	"io"
	"math/rand"
	"testing"
)

// The in-house inflate is cross-checked against compress/flate: everything
// any stdlib compression level emits must decode byte-identically, every
// truncation must error, and random corruption must never panic or diverge
// from stdlib's accept/reject verdict.

func deflateWith(t *testing.T, level int, payload []byte) []byte {
	t.Helper()
	var sink bytes.Buffer
	w, err := flate.NewWriter(&sink, level)
	if err != nil {
		t.Fatalf("NewWriter(%d): %v", level, err)
	}
	if _, err := w.Write(payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return sink.Bytes()
}

func inflateAll(comp []byte) ([]byte, error) {
	i := GetInflater()
	defer i.Release()
	return i.Append(nil, comp)
}

// testPayloads covers the block shapes the codec meets in practice: empty
// and tiny streams, pure RLE (single-symbol distance tables), fixed- and
// dynamic-Huffman text, incompressible noise, and multi-block sizes.
func testPayloads(t *testing.T) map[string][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	noise := make([]byte, 192<<10)
	rng.Read(noise)
	mixed := make([]byte, 256<<10)
	for i := range mixed {
		if i%3 == 0 {
			mixed[i] = byte(rng.Intn(256))
		} else {
			mixed[i] = byte('a' + i%23)
		}
	}
	text := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog 0123456789 "), 2000)
	pagelike := make([]byte, 64<<10)
	for i := range pagelike {
		pagelike[i] = byte((i * 2654435761) >> 13)
	}
	return map[string][]byte{
		"empty":    nil,
		"one":      []byte{0x42},
		"short":    []byte("hello"),
		"rle":      bytes.Repeat([]byte{'a'}, 100_000),
		"period3":  bytes.Repeat([]byte("abc"), 40_000),
		"text":     text,
		"noise":    noise,
		"mixed":    mixed,
		"pagelike": pagelike,
		"allbytes": func() []byte {
			b := make([]byte, 4096)
			for i := range b {
				b[i] = byte(i)
			}
			return bytes.Repeat(b, 8)
		}(),
	}
}

func TestInflateMatchesStdlibAcrossLevels(t *testing.T) {
	levels := []int{flate.HuffmanOnly, flate.NoCompression, 1, 2, 5, 6, 9}
	for name, payload := range testPayloads(t) {
		for _, level := range levels {
			comp := deflateWith(t, level, payload)
			got, err := inflateAll(comp)
			if err != nil {
				t.Fatalf("%s/level %d: inflate: %v", name, level, err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("%s/level %d: roundtrip mismatch (%d vs %d bytes)", name, level, len(got), len(payload))
			}
		}
	}
}

// TestInflateAppendsAfterPrefix checks the stream-start fence: output lands
// after existing dst content, and back-references may not reach into it.
func TestInflateAppendsAfterPrefix(t *testing.T) {
	payload := bytes.Repeat([]byte("prefix fence "), 1000)
	comp := deflateWith(t, flate.BestSpeed, payload)
	prefix := []byte("unrelated header bytes")
	i := GetInflater()
	defer i.Release()
	dst := append([]byte(nil), prefix...)
	out, err := i.Append(dst, comp)
	if err != nil {
		t.Fatalf("inflate: %v", err)
	}
	if !bytes.Equal(out[:len(prefix)], prefix) {
		t.Fatal("prefix clobbered")
	}
	if !bytes.Equal(out[len(prefix):], payload) {
		t.Fatal("payload mismatch after prefix")
	}
}

// TestInflateSyncFlush covers the empty stored blocks a Flush injects
// mid-stream.
func TestInflateSyncFlush(t *testing.T) {
	var sink bytes.Buffer
	w, _ := flate.NewWriter(&sink, flate.BestSpeed)
	w.Write([]byte("first half "))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("second half"))
	w.Close()
	got, err := inflateAll(sink.Bytes())
	if err != nil {
		t.Fatalf("inflate: %v", err)
	}
	if string(got) != "first half second half" {
		t.Fatalf("got %q", got)
	}
}

func TestInflateTruncationAlwaysErrors(t *testing.T) {
	payloads := testPayloads(t)
	for _, name := range []string{"short", "rle", "text", "noise"} {
		for _, level := range []int{flate.NoCompression, flate.BestSpeed, 9} {
			comp := deflateWith(t, level, payloads[name])
			step := 1
			if len(comp) > 512 {
				step = len(comp) / 256
			}
			for cut := 0; cut < len(comp); cut += step {
				if _, err := inflateAll(comp[:cut]); err == nil {
					t.Fatalf("%s/level %d: prefix of %d/%d bytes decoded without error", name, level, cut, len(comp))
				}
			}
		}
	}
}

// TestInflateMutationDifferential flips random bits and demands verdict
// agreement with stdlib: both reject, or both accept with identical output.
func TestInflateMutationDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	payload := bytes.Repeat([]byte("mutation corpus: pages, chains, hashes. "), 400)
	for _, level := range []int{flate.NoCompression, flate.BestSpeed, 9} {
		comp := deflateWith(t, level, payload)
		for trial := 0; trial < 300; trial++ {
			mut := append([]byte(nil), comp...)
			mut[rng.Intn(len(mut))] ^= 1 << uint(rng.Intn(8))

			ref, refErr := io.ReadAll(flate.NewReader(bytes.NewReader(mut)))
			got, gotErr := inflateAll(mut)
			if (refErr == nil) != (gotErr == nil) {
				t.Fatalf("level %d trial %d: verdict divergence: stdlib err=%v, ours err=%v", level, trial, refErr, gotErr)
			}
			if refErr == nil && !bytes.Equal(ref, got) {
				t.Fatalf("level %d trial %d: both accepted but outputs differ (%d vs %d bytes)", level, trial, len(ref), len(got))
			}
		}
	}
}

func TestInflateRejectsReservedBlockType(t *testing.T) {
	// final=1, type=3 (reserved).
	if _, err := inflateAll([]byte{0x07}); err != ErrCorrupt {
		t.Fatalf("reserved block type: err=%v, want ErrCorrupt", err)
	}
}

func TestInflateStoredLenMismatch(t *testing.T) {
	// final=1, type=0, then LEN=5 with a bad NLEN.
	bad := []byte{0x01, 0x05, 0x00, 0x00, 0x00, 'a', 'b', 'c', 'd', 'e'}
	if _, err := inflateAll(bad); err != ErrCorrupt {
		t.Fatalf("stored LEN/~NLEN mismatch: err=%v, want ErrCorrupt", err)
	}
}

// TestInflateDynamicSteadyStateAllocs is the reason this decoder exists:
// realistic multi-kilobyte payloads compress to dynamic-Huffman blocks,
// which stdlib flate pays ~16 allocs/op to re-table. The in-house decoder
// must decode them for free.
func TestInflateDynamicSteadyStateAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("race instrumentation allocates; alloc assertions run in the non-race job")
	}
	payloads := testPayloads(t)
	for _, name := range []string{"mixed", "pagelike", "text"} {
		payload := payloads[name]
		comp := deflateWith(t, flate.BestSpeed, payload)
		out := Get(len(payload) + 1024)
		if n := testing.AllocsPerRun(30, func() {
			i := GetInflater()
			var err error
			out.B, err = i.Append(out.B[:0], comp)
			i.Release()
			if err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: Inflater.Append: %v allocs/op, want 0", name, n)
		}
		if !bytes.Equal(out.B, payload) {
			t.Fatalf("%s: roundtrip mismatch", name)
		}
		out.Release()
	}
}
