package bufpool

import (
	"crypto/rand"
	"crypto/sha256"
	"testing"
)

func TestHasherMatchesSum256(t *testing.T) {
	h := GetHasher()
	defer h.Release()
	for _, n := range []int{0, 1, 31, 512, 4096} {
		p := make([]byte, n)
		if _, err := rand.Read(p); err != nil {
			t.Fatal(err)
		}
		if got, want := h.Sum256(p), sha256.Sum256(p); got != want {
			t.Fatalf("Sum256 mismatch at len %d: %x != %x", n, got, want)
		}
	}
}

// TestHasherSteadyStateAllocs is the dedup-path half of the zero-alloc
// gate: page hashing through the pooled scratch must not allocate once the
// pool is warm.
func TestHasherSteadyStateAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("race instrumentation allocates; alloc assertions run in the non-race job")
	}
	page := make([]byte, 4096)
	if _, err := rand.Read(page); err != nil {
		t.Fatal(err)
	}
	h := GetHasher()
	defer h.Release()
	h.Sum256(page) // warm
	var sink [sha256.Size]byte
	allocs := testing.AllocsPerRun(50, func() {
		sink = h.Sum256(page)
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("pooled page hashing allocates %.1f/op; want 0", allocs)
	}

	// The rent/hash/release cycle must also be allocation-free steady
	// state — the restore path rents per verification burst.
	allocs = testing.AllocsPerRun(50, func() {
		hh := GetHasher()
		sink = hh.Sum256(page)
		hh.Release()
	})
	if allocs != 0 {
		t.Fatalf("hasher rent cycle allocates %.1f/op; want 0", allocs)
	}
}

func BenchmarkHasherSum256(b *testing.B) {
	page := make([]byte, 4096)
	if _, err := rand.Read(page); err != nil {
		b.Fatal(err)
	}
	h := GetHasher()
	defer h.Release()
	b.SetBytes(int64(len(page)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Sum256(page)
	}
}
