// A DEFLATE (RFC 1951) decoder whose entire working state — bit reader,
// Huffman tables, code-length scratch — lives in fixed-size arrays inside
// the pooled Inflater. This is what makes steady-state decode 0 allocs/op:
// compress/flate re-allocates its dynamic-Huffman link tables on every
// block (huffmanDecoder.init does `*h = huffmanDecoder{}` plus fresh makes),
// so even a pooled, Reset flate.Reader pays ~16 allocations per realistic
// segment. The decoder below rebuilds tables in place instead.
//
// It is a whole-buffer decoder: the complete stream is in memory (codec
// blobs always are) and output is appended to a caller buffer, so there is
// no streaming window to manage — back-references copy straight from the
// produced output. Correctness is cross-checked against compress/flate in
// inflate_test.go over every stdlib compression level.
package bufpool

import (
	"errors"
	"math/bits"
)

// ErrCorrupt and ErrTruncated classify decode failures: a stream that
// violates DEFLATE (bad block type, over-subscribed code, reference before
// stream start, stored-block length mismatch) versus one that simply ends
// early. Callers treat both as fatal; tests distinguish them.
var (
	ErrCorrupt   = errors.New("bufpool: corrupt deflate stream")
	ErrTruncated = errors.New("bufpool: truncated deflate stream")
)

const (
	maxCodeBits = 15  // DEFLATE's longest Huffman code
	maxNumLit   = 288 // literal/length alphabet (286 valid + 2 reserved)
	maxNumDist  = 32  // distance alphabet (30 valid + 2 reserved)
	numCodeLens = 19  // the code-length alphabet of the dynamic header

	// fastBits sizes the single-level lookup table. 9 bits covers every
	// code BestSpeed emits in practice; longer codes take the canonical
	// bit-at-a-time path.
	fastBits = 9
	fastSize = 1 << fastBits
)

// bitReader drains a byte slice LSB-first through a 64-bit accumulator.
// Errors are sticky: after the first failure every read returns zero and
// the caller's final error check reports the original cause.
type bitReader struct {
	in  []byte
	pos int
	b   uint64 // bits [0,n) are valid; higher bits are always zero
	n   uint
	err error
}

func (r *bitReader) fill() {
	for r.n <= 56 && r.pos < len(r.in) {
		r.b |= uint64(r.in[r.pos]) << r.n
		r.pos++
		r.n += 8
	}
}

// take consumes k ≤ 16 bits. On underrun it flags ErrTruncated and returns
// zero without consuming, so decode loops terminate at the sticky check.
func (r *bitReader) take(k uint) uint32 {
	if r.n < k {
		r.fill()
		if r.n < k {
			if r.err == nil {
				r.err = ErrTruncated
			}
			return 0
		}
	}
	v := uint32(r.b) & (1<<k - 1)
	r.b >>= k
	r.n -= k
	return v
}

// alignByte drops the partial byte before a stored block.
func (r *bitReader) alignByte() {
	drop := r.n & 7
	r.b >>= drop
	r.n -= drop
}

// huffTable is a canonical Huffman decoder with all storage inline: a
// 9-bit single-level fast table plus per-length first-code/offset arrays
// for the slow path. build reuses the arrays across streams — nothing here
// ever allocates.
type huffTable struct {
	count  [maxCodeBits + 1]uint16 // codes per bit length
	first  [maxCodeBits + 1]uint32 // first canonical code of each length
	offset [maxCodeBits + 1]uint16 // syms index of each length's first code
	syms   [maxNumLit]uint16       // symbols ordered by (length, symbol)
	fast   [fastSize]uint16        // sym<<4 | len for codes ≤ fastBits; 0 = miss
	min    uint                    // shortest code length (0 = empty table)
	max    uint                    // longest code length (0 = empty table)
}

// build constructs the decoder for the given code lengths (0 = unused
// symbol). Over-subscribed codes are corrupt; incomplete codes are accepted
// only in the degenerate single-symbol case, matching compress/flate. An
// all-zero length set builds an empty table that errors on first use —
// legal for the distance alphabet of a literal-only block.
func (t *huffTable) build(lens []uint8) error {
	for i := range t.count {
		t.count[i] = 0
	}
	total := 0
	for _, l := range lens {
		if l != 0 {
			t.count[l]++
			total++
		}
	}
	if total == 0 {
		t.min, t.max = 0, 0
		for i := range t.fast {
			t.fast[i] = 0
		}
		return nil
	}
	left := 1
	min, max := uint(0), uint(0)
	for l := uint(1); l <= maxCodeBits; l++ {
		left <<= 1
		left -= int(t.count[l])
		if left < 0 {
			return ErrCorrupt
		}
		if t.count[l] != 0 {
			if min == 0 {
				min = l
			}
			max = l
		}
	}
	if left > 0 && !(total == 1 && max == 1) {
		return ErrCorrupt
	}
	t.min, t.max = min, max

	code := uint32(0)
	off := uint16(0)
	var next [maxCodeBits + 1]uint16
	for l := uint(1); l <= maxCodeBits; l++ {
		code = (code + uint32(t.count[l-1])) << 1
		t.first[l] = code
		t.offset[l] = off
		next[l] = off
		off += t.count[l]
	}
	for i := range t.fast {
		t.fast[i] = 0
	}
	for sym, l8 := range lens {
		if l8 == 0 {
			continue
		}
		l := uint(l8)
		idx := next[l]
		next[l]++
		t.syms[idx] = uint16(sym)
		if l <= fastBits {
			// The stream presents code bits in reverse; fill every fast
			// slot whose low l bits spell this code.
			c := t.first[l] + uint32(idx-t.offset[l])
			rev := uint32(bits.Reverse16(uint16(c)) >> (16 - l))
			entry := uint16(sym)<<4 | uint16(l)
			for j := rev; j < fastSize; j += 1 << l {
				t.fast[j] = entry
			}
		}
	}
	return nil
}

// readSym decodes one symbol, or returns -1 with the error recorded on r.
func (t *huffTable) readSym(r *bitReader) int {
	if r.n < t.max {
		r.fill()
	}
	if v := t.fast[uint32(r.b)&(fastSize-1)]; v != 0 {
		// Bits above r.n in the accumulator are zero, so a fast hit is
		// only trusted when its full length is actually buffered.
		l := uint(v & 15)
		if l <= r.n {
			r.b >>= l
			r.n -= l
			return int(v >> 4)
		}
	}
	code := uint32(0)
	for l := uint(1); l <= t.max; l++ {
		if r.n == 0 {
			r.fill()
			if r.n == 0 {
				if r.err == nil {
					r.err = ErrTruncated
				}
				return -1
			}
		}
		code = code<<1 | uint32(r.b&1)
		r.b >>= 1
		r.n--
		if l < t.min {
			continue
		}
		if d := code - t.first[l]; d < uint32(t.count[l]) {
			return int(t.syms[uint32(t.offset[l])+d])
		}
	}
	if r.err == nil {
		r.err = ErrCorrupt
	}
	return -1
}

// The length and distance expansion tables of RFC 1951 §3.2.5.
var (
	lenBase   = [29]uint16{3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258}
	lenExtra  = [29]uint8{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0}
	distBase  = [30]uint32{1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577}
	distExtra = [30]uint8{0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13}

	// codeOrder is the dynamic header's permuted code-length ordering.
	codeOrder = [numCodeLens]byte{16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15}

	// The fixed-Huffman tables of §3.2.6, built once at package init; block
	// decode reads them concurrently but never writes.
	fixedLit  huffTable
	fixedDist huffTable
)

func init() {
	var lit [maxNumLit]uint8
	for j := 0; j < 144; j++ {
		lit[j] = 8
	}
	for j := 144; j < 256; j++ {
		lit[j] = 9
	}
	for j := 256; j < 280; j++ {
		lit[j] = 7
	}
	for j := 280; j < maxNumLit; j++ {
		lit[j] = 8
	}
	if err := fixedLit.build(lit[:]); err != nil {
		panic(err)
	}
	// All 32 distance codes are 5 bits; 30 and 31 decode but are rejected
	// as corrupt when they appear, per the RFC.
	var dist [maxNumDist]uint8
	for j := range dist {
		dist[j] = 5
	}
	if err := fixedDist.build(dist[:]); err != nil {
		panic(err)
	}
}

// inflate appends the decoded stream p to dst. start marks where this
// stream's output began — back-references may not reach before it into
// unrelated caller bytes.
func (i *Inflater) inflate(dst, p []byte) ([]byte, error) {
	i.br = bitReader{in: p}
	r := &i.br
	start := len(dst)
	for {
		final := r.take(1)
		typ := r.take(2)
		if r.err != nil {
			return dst, r.err
		}
		var err error
		switch typ {
		case 0:
			dst, err = i.stored(dst, start)
		case 1:
			dst, err = i.block(dst, start, &fixedLit, &fixedDist)
		case 2:
			if err = i.readDynamicHeader(); err == nil {
				dst, err = i.block(dst, start, &i.lit, &i.dist)
			}
		default:
			err = ErrCorrupt
		}
		if err != nil {
			return dst, err
		}
		if final == 1 {
			// Trailing bytes after the final block are the container's
			// business, not ours — same stance as compress/flate.
			return dst, nil
		}
	}
}

// stored copies a §3.2.4 uncompressed block.
func (i *Inflater) stored(dst []byte, start int) ([]byte, error) {
	r := &i.br
	r.alignByte()
	ln := r.take(16)
	nln := r.take(16)
	if r.err != nil {
		return dst, r.err
	}
	if ln != ^nln&0xffff {
		return dst, ErrCorrupt
	}
	length := int(ln)
	if i.limit > 0 && len(dst)-start+length > i.limit {
		return dst, ErrCorrupt
	}
	// Drain whole bytes already buffered in the accumulator, then bulk-copy
	// the rest straight from the input.
	for length > 0 && r.n >= 8 {
		dst = append(dst, byte(r.b))
		r.b >>= 8
		r.n -= 8
		length--
	}
	if length > len(r.in)-r.pos {
		r.err = ErrTruncated
		return dst, r.err
	}
	dst = append(dst, r.in[r.pos:r.pos+length]...)
	r.pos += length
	return dst, nil
}

// block decodes one Huffman-coded block body with the given tables.
func (i *Inflater) block(dst []byte, start int, lit, dist *huffTable) ([]byte, error) {
	r := &i.br
	for {
		if i.limit > 0 && len(dst)-start > i.limit {
			return dst, ErrCorrupt
		}
		sym := lit.readSym(r)
		if sym < 0 {
			return dst, r.err
		}
		if sym < 256 {
			dst = append(dst, byte(sym))
			continue
		}
		if sym == 256 {
			return dst, r.err
		}
		if sym > 285 {
			return dst, ErrCorrupt
		}
		li := sym - 257
		length := int(lenBase[li]) + int(r.take(uint(lenExtra[li])))
		dsym := dist.readSym(r)
		if dsym < 0 {
			return dst, r.err
		}
		if dsym > 29 {
			return dst, ErrCorrupt
		}
		distance := int(distBase[dsym]) + int(r.take(uint(distExtra[dsym])))
		if r.err != nil {
			return dst, r.err
		}
		if distance > len(dst)-start {
			return dst, ErrCorrupt
		}
		// Copy with pos fixed at the match start: each append extends the
		// periodic sequence, so the copyable span doubles per iteration
		// and overlapping (RLE-style) matches cost O(log length) appends.
		pos := len(dst) - distance
		for length > 0 {
			n := len(dst) - pos
			if n > length {
				n = length
			}
			dst = append(dst, dst[pos:pos+n]...)
			length -= n
		}
	}
}

// readDynamicHeader parses a §3.2.7 dynamic-Huffman header into i.lit and
// i.dist, rebuilding the tables in place.
func (i *Inflater) readDynamicHeader() error {
	r := &i.br
	hlit := int(r.take(5)) + 257
	hdist := int(r.take(5)) + 1
	hclen := int(r.take(4)) + 4
	if r.err != nil {
		return r.err
	}
	if hlit > 286 || hdist > 30 {
		return ErrCorrupt
	}
	var clens [numCodeLens]uint8
	for j := 0; j < hclen; j++ {
		clens[codeOrder[j]] = uint8(r.take(3))
	}
	if r.err != nil {
		return r.err
	}
	if err := i.clen.build(clens[:]); err != nil {
		return err
	}
	n := hlit + hdist
	j := 0
	for j < n {
		sym := i.clen.readSym(r)
		if sym < 0 {
			return r.err
		}
		switch {
		case sym < 16:
			i.lens[j] = uint8(sym)
			j++
		case sym == 16:
			if j == 0 {
				return ErrCorrupt
			}
			rep := int(r.take(2)) + 3
			if r.err != nil {
				return r.err
			}
			if j+rep > n {
				return ErrCorrupt
			}
			v := i.lens[j-1]
			for k := 0; k < rep; k++ {
				i.lens[j] = v
				j++
			}
		case sym == 17:
			rep := int(r.take(3)) + 3
			if r.err != nil {
				return r.err
			}
			if j+rep > n {
				return ErrCorrupt
			}
			for k := 0; k < rep; k++ {
				i.lens[j] = 0
				j++
			}
		default: // 18
			rep := int(r.take(7)) + 11
			if r.err != nil {
				return r.err
			}
			if j+rep > n {
				return ErrCorrupt
			}
			for k := 0; k < rep; k++ {
				i.lens[j] = 0
				j++
			}
		}
	}
	if err := i.lit.build(i.lens[:hlit]); err != nil {
		return err
	}
	if i.lit.max == 0 {
		// A block with no literal/length codes cannot even terminate.
		return ErrCorrupt
	}
	return i.dist.build(i.lens[hlit:n])
}
