package bufpool

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func TestGetCapacityAndClassing(t *testing.T) {
	for _, n := range []int{1, 512, 513, 4096, 4097, 1 << 20, (1 << 24) + 1} {
		b := Get(n)
		if len(b.B) != 0 {
			t.Fatalf("Get(%d): len %d, want 0", n, len(b.B))
		}
		if cap(b.B) < n {
			t.Fatalf("Get(%d): cap %d < requested", n, cap(b.B))
		}
		b.Release()
	}
}

func TestReleaseRoundtrip(t *testing.T) {
	b := Get(4096)
	b.B = append(b.B, bytes.Repeat([]byte{0xAB}, 4096)...)
	b.Release()
	// The next same-class Get must come back empty regardless of whether it
	// is the same object.
	b2 := Get(4096)
	if len(b2.B) != 0 {
		t.Fatalf("reused buffer has len %d, want 0", len(b2.B))
	}
	b2.Release()
}

func TestReleaseNilAndOddCap(t *testing.T) {
	var b *Buf
	b.Release() // must not panic
	odd := &Buf{B: make([]byte, 0, 6000)}
	odd.Release() // non-power-of-two capacity: dropped, not pooled
}

func TestDeflateInflateRoundtrip(t *testing.T) {
	payload := bytes.Repeat([]byte("retained page content "), 500)
	d := GetDeflater()
	comp, err := d.Append(nil, payload)
	if err != nil {
		t.Fatalf("deflate: %v", err)
	}
	d.Release()
	if len(comp) >= len(payload) {
		t.Fatalf("compressible payload did not shrink: %d -> %d", len(payload), len(comp))
	}
	i := GetInflater()
	got, err := i.Append(nil, comp)
	if err != nil {
		t.Fatalf("inflate: %v", err)
	}
	i.Release()
	if !bytes.Equal(got, payload) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestInflaterRejectsGarbage(t *testing.T) {
	i := GetInflater()
	defer i.Release()
	if _, err := i.Append(nil, []byte{0xff, 0x00, 0x12, 0x34}); err == nil {
		t.Fatal("garbage stream inflated without error")
	}
}

// TestSteadyStateAllocs is the package's own zero-allocation contract: a
// rented buffer and codec pair, used within capacity, costs nothing per
// operation once warm.
func TestSteadyStateAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("race instrumentation allocates; alloc assertions run in the non-race job")
	}
	payload := bytes.Repeat([]byte("steady state segment data "), 200)
	buf := Get(64 << 10)
	out := Get(64 << 10)
	defer buf.Release()
	defer out.Release()

	if n := testing.AllocsPerRun(50, func() {
		b := Get(4096)
		b.B = append(b.B, payload[:1024]...)
		b.Release()
	}); n != 0 {
		t.Errorf("Get/Release: %v allocs/op, want 0", n)
	}

	if n := testing.AllocsPerRun(50, func() {
		d := GetDeflater()
		var err error
		buf.B, err = d.Append(buf.B[:0], payload)
		d.Release()
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Deflater.Append: %v allocs/op, want 0", n)
	}

	d := GetDeflater()
	comp, err := d.Append(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	d.Release()
	if n := testing.AllocsPerRun(50, func() {
		i := GetInflater()
		var err error
		out.B, err = i.Append(out.B[:0], comp)
		i.Release()
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Inflater.Append: %v allocs/op, want 0", n)
	}
}

// TestConcurrentRental drives the pools from many goroutines so the race
// detector can see any sharing bug in the rental lifecycle.
func TestConcurrentRental(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			payload := make([]byte, 2048)
			rng.Read(payload)
			for i := 0; i < 200; i++ {
				b := Get(rng.Intn(16 << 10))
				b.B = append(b.B, payload...)
				d := GetDeflater()
				comp, err := d.Append(nil, b.B)
				d.Release()
				if err != nil {
					t.Error(err)
					return
				}
				inf := GetInflater()
				got, err := inf.Append(nil, comp)
				inf.Release()
				if err != nil || !bytes.Equal(got, payload) {
					t.Errorf("roundtrip mismatch: %v", err)
					return
				}
				b.Release()
			}
		}(int64(g))
	}
	wg.Wait()
}
