package bufpool

import (
	"fmt"
	"strings"
)

// The outstanding-buffer gauge: every Get increments its size class, every
// Release decrements the class the rental was issued at. In a quiesced
// process (no codec or ingest work in flight) the gauge equals whatever
// buffers the program is still holding — so a soak or experiment that
// snapshots it at startup and re-checks after draining its pipelines gets a
// leak detector: a non-zero delta is a Get whose Release never ran.

// Gauge is a point-in-time snapshot of outstanding (rented, unreleased)
// buffers per size class.
type Gauge struct {
	// PerClass[i] counts outstanding rentals of class i (capacity
	// 1<<(minClassShift+i)); Oversize counts above-max rentals that never
	// pool but still balance through Release.
	PerClass [numClasses]int64
	Oversize int64
}

// Outstanding snapshots the Get/Release balance per size class. The
// snapshot is not atomic across classes; callers wanting an exact reading
// must quiesce first (drain pipelines, close sessions).
func Outstanding() Gauge {
	var g Gauge
	for i := range g.PerClass {
		g.PerClass[i] = outstanding[i].Load()
	}
	g.Oversize = oversizeOut.Load()
	return g
}

// Total sums the gauge across classes.
func (g Gauge) Total() int64 {
	t := g.Oversize
	for _, v := range g.PerClass {
		t += v
	}
	return t
}

// Sub returns the per-class delta g - base.
func (g Gauge) Sub(base Gauge) Gauge {
	d := Gauge{Oversize: g.Oversize - base.Oversize}
	for i := range d.PerClass {
		d.PerClass[i] = g.PerClass[i] - base.PerClass[i]
	}
	return d
}

// CheckBalanced compares the current gauge against a baseline and reports
// any class whose rental balance moved — the leak-check helper experiments
// and the chaos soak call after draining. A negative delta (more releases
// than rentals since the baseline) is reported too: it means a buffer
// rented before the baseline was released after it, so the caller's quiesce
// points are wrong.
func CheckBalanced(base Gauge) error {
	d := Outstanding().Sub(base)
	var leaks []string
	for i, v := range d.PerClass {
		if v != 0 {
			leaks = append(leaks, fmt.Sprintf("class %dB: %+d", 1<<(minClassShift+i), v))
		}
	}
	if d.Oversize != 0 {
		leaks = append(leaks, fmt.Sprintf("oversize: %+d", d.Oversize))
	}
	if leaks == nil {
		return nil
	}
	return fmt.Errorf("bufpool: outstanding-buffer gauge off baseline (%s)", strings.Join(leaks, ", "))
}
