package oplog

import (
	"bytes"
	"testing"

	"repro/internal/bufpool"
	"repro/internal/simclock"
)

func allocTestSegment() *Segment {
	seg := &Segment{DeviceID: 3, FirstSeq: 10, LastSeq: 14,
		FirstTime: simclock.Time(100), LastTime: simclock.Time(400)}
	var prev [HashSize]byte
	for i := uint64(10); i < 14; i++ {
		e := Entry{Seq: i, Kind: KindWrite, At: simclock.Time(100 * i), LPN: i,
			DataHash: HashData([]byte{byte(i)}), PrevHash: prev}
		seg.Entries = append(seg.Entries, e)
		prev = e.Hash
	}
	data := bytes.Repeat([]byte("retained page "), 300)
	seg.Pages = []PageRecord{
		{LPN: 9, WriteSeq: 8, StaleSeq: 11, Cause: 1, Hash: HashData(data), Data: data},
	}
	return seg
}

func TestAppendMarshalMatchesMarshal(t *testing.T) {
	seg := allocTestSegment()
	want := seg.Marshal()
	if got := seg.MarshaledSize(); got != len(want) {
		t.Fatalf("MarshaledSize = %d, marshal produced %d bytes", got, len(want))
	}
	got := seg.AppendMarshal([]byte("prefix"))
	if string(got[:6]) != "prefix" || !bytes.Equal(got[6:], want) {
		t.Fatal("AppendMarshal differs from Marshal")
	}
	back, err := UnmarshalSegment(got[6:])
	if err != nil {
		t.Fatal(err)
	}
	if back.LastSeq != seg.LastSeq || len(back.Entries) != len(seg.Entries) || len(back.Pages) != 1 {
		t.Fatal("roundtrip mismatch")
	}
}

// TestMarshalSteadyStateAllocs: sealing a segment into a pooled buffer is
// allocation-free once the buffer is warm — the seal side of the
// zero-allocation datapath contract.
func TestMarshalSteadyStateAllocs(t *testing.T) {
	if bufpool.RaceEnabled {
		t.Skip("race instrumentation allocates; alloc assertions run in the non-race job")
	}
	seg := allocTestSegment()
	buf := bufpool.Get(seg.MarshaledSize())
	defer buf.Release()
	if n := testing.AllocsPerRun(50, func() {
		buf.B = seg.AppendMarshal(buf.B[:0])[:0]
	}); n != 0 {
		t.Errorf("AppendMarshal: %v allocs/op, want 0", n)
	}
}

func BenchmarkSegmentAppendMarshal(b *testing.B) {
	seg := allocTestSegment()
	buf := bufpool.Get(seg.MarshaledSize())
	defer buf.Release()
	b.ReportAllocs()
	b.SetBytes(int64(seg.MarshaledSize()))
	for i := 0; i < b.N; i++ {
		buf.B = seg.AppendMarshal(buf.B[:0])[:0]
	}
}
