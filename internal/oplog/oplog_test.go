package oplog

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/simclock"
)

func TestAppendAssignsSequentialSeqs(t *testing.T) {
	l := New()
	for i := uint64(0); i < 5; i++ {
		e := l.Append(KindWrite, simclock.Time(i), i, 0, i+100, 1.5, [32]byte{})
		if e.Seq != i {
			t.Fatalf("seq = %d, want %d", e.Seq, i)
		}
	}
	if l.NextSeq() != 5 {
		t.Fatalf("NextSeq = %d", l.NextSeq())
	}
}

func TestChainVerifies(t *testing.T) {
	l := New()
	for i := 0; i < 50; i++ {
		l.Append(KindWrite, simclock.Time(i), uint64(i), 0, uint64(i+1), 0, HashData([]byte{byte(i)}))
	}
	if err := VerifyChain(l.All(), [32]byte{}); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
}

func TestChainDetectsTampering(t *testing.T) {
	l := New()
	for i := 0; i < 20; i++ {
		l.Append(KindWrite, simclock.Time(i), uint64(i), 0, 0, 0, [32]byte{})
	}
	entries := l.All()

	// Mutating any field of any entry must be detected.
	mutated := append([]Entry(nil), entries...)
	mutated[7].LPN = 9999
	err := VerifyChain(mutated, [32]byte{})
	var ce *ChainError
	if !errors.As(err, &ce) || ce.Index != 7 {
		t.Fatalf("tampered entry not located: %v", err)
	}

	// Deleting an entry must be detected at the splice point.
	deleted := append(append([]Entry(nil), entries[:5]...), entries[6:]...)
	if err := VerifyChain(deleted, [32]byte{}); err == nil {
		t.Fatal("deletion not detected")
	}

	// Reordering must be detected.
	swapped := append([]Entry(nil), entries...)
	swapped[3], swapped[4] = swapped[4], swapped[3]
	if err := VerifyChain(swapped, [32]byte{}); err == nil {
		t.Fatal("reorder not detected")
	}
}

func TestChainMidStartVerification(t *testing.T) {
	l := New()
	for i := 0; i < 10; i++ {
		l.Append(KindTrim, simclock.Time(i), uint64(i), uint64(i), 0, 0, [32]byte{})
	}
	all := l.All()
	// Verifying a suffix requires the hash of the entry just before it.
	if err := VerifyChain(all[4:], all[3].Hash); err != nil {
		t.Fatalf("suffix verification failed: %v", err)
	}
	// With the wrong starting hash it must fail.
	if err := VerifyChain(all[4:], all[2].Hash); err == nil {
		t.Fatal("wrong prev hash accepted")
	}
}

func TestEntryMarshalRoundTrip(t *testing.T) {
	e := Entry{
		Seq: 42, At: simclock.Time(1234567), Kind: KindTrim,
		LPN: 7, OldPPN: 99, NewPPN: 100, Entropy: 7.91,
		DataHash: HashData([]byte("abc")),
	}
	e.Seal(HashData([]byte("prev")))
	buf := e.Marshal(nil)
	if len(buf) != EntrySize {
		t.Fatalf("marshal size = %d, want %d", len(buf), EntrySize)
	}
	got, rest, err := UnmarshalEntry(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatal("trailing bytes")
	}
	if got != e {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
	if !got.Verify() {
		t.Fatal("round-tripped entry fails verification")
	}
}

func TestUnmarshalShort(t *testing.T) {
	if _, _, err := UnmarshalEntry(make([]byte, EntrySize-1)); !errors.Is(err, ErrShortEntry) {
		t.Fatalf("err = %v", err)
	}
}

func TestEntriesRangeAndPrune(t *testing.T) {
	l := New()
	for i := 0; i < 10; i++ {
		l.Append(KindWrite, simclock.Time(i), uint64(i), 0, 0, 0, [32]byte{})
	}
	got := l.Entries(3, 6)
	if len(got) != 3 || got[0].Seq != 3 || got[2].Seq != 5 {
		t.Fatalf("Entries(3,6) = %+v", got)
	}
	l.Prune(4)
	if l.BaseSeq() != 4 || l.Len() != 6 {
		t.Fatalf("after prune: base=%d len=%d", l.BaseSeq(), l.Len())
	}
	// Range clamps to what's held locally.
	got = l.Entries(0, 100)
	if len(got) != 6 || got[0].Seq != 4 {
		t.Fatalf("clamped range = %d entries starting %d", len(got), got[0].Seq)
	}
	// Chain still verifies from the pruned point given the right prev hash.
	if err := VerifyChain(got, got[0].PrevHash); err != nil {
		t.Fatalf("pruned suffix chain: %v", err)
	}
	// Pruning backwards is a no-op.
	l.Prune(2)
	if l.BaseSeq() != 4 {
		t.Fatal("prune moved backwards")
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	l := New()
	var entries []Entry
	for i := 0; i < 8; i++ {
		entries = append(entries, l.Append(KindWrite, simclock.Time(i*10), uint64(i), uint64(i+50), uint64(i+100), 3.3, HashData([]byte{byte(i)})))
	}
	seg := &Segment{
		DeviceID: 9, FirstSeq: 0, LastSeq: 8,
		FirstTime: 0, LastTime: 70,
		Entries: entries,
		Pages: []PageRecord{
			{LPN: 1, WriteSeq: 1, StaleSeq: 5, Cause: 1, Hash: HashData([]byte("page1")), Data: []byte("page1")},
			{LPN: 2, WriteSeq: 2, StaleSeq: 6, Cause: 2, Hash: HashData([]byte("page2")), Data: []byte("page2")},
		},
	}
	buf := seg.Marshal()
	got, err := UnmarshalSegment(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.DeviceID != 9 || got.LastSeq != 8 || len(got.Entries) != 8 || len(got.Pages) != 2 {
		t.Fatalf("decoded header mismatch: %+v", got)
	}
	for i := range got.Entries {
		if got.Entries[i] != entries[i] {
			t.Fatalf("entry %d mismatch", i)
		}
	}
	if !bytes.Equal(got.Pages[1].Data, []byte("page2")) || got.Pages[1].Cause != 2 {
		t.Fatalf("page record mismatch: %+v", got.Pages[1])
	}
	if err := got.VerifyPages(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentVerifyPagesDetectsCorruption(t *testing.T) {
	seg := &Segment{
		Pages: []PageRecord{{LPN: 1, Hash: HashData([]byte("good")), Data: []byte("evil")}},
	}
	if err := seg.VerifyPages(); err == nil {
		t.Fatal("corrupted page accepted")
	}
}

func TestSegmentRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalSegment(nil); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("nil: %v", err)
	}
	buf := make([]byte, 100)
	if _, err := UnmarshalSegment(buf); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("zero magic: %v", err)
	}
	// Valid segment with trailing junk must be rejected.
	seg := &Segment{DeviceID: 1}
	b := append(seg.Marshal(), 0xFF)
	if _, err := UnmarshalSegment(b); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("trailing junk: %v", err)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindWrite, KindTrim, KindMigrate, KindOffload, KindCheckpoint, KindRecovery, KindRead, Kind(99)}
	want := []string{"write", "trim", "migrate", "offload", "checkpoint", "recovery", "read", "Kind(99)"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("Kind %d String = %q, want %q", i, k.String(), want[i])
		}
	}
}

// Property: marshal/unmarshal round-trips arbitrary entries.
func TestEntryRoundTripProperty(t *testing.T) {
	f := func(seq, lpn, old, new uint64, at int64, kind uint8, ent float32, dh [32]byte, ph [32]byte) bool {
		e := Entry{
			Seq: seq, At: simclock.Time(at), Kind: Kind(kind),
			LPN: lpn, OldPPN: old, NewPPN: new, Entropy: ent, DataHash: dh,
		}
		e.Seal(ph)
		got, rest, err := UnmarshalEntry(e.Marshal(nil))
		return err == nil && len(rest) == 0 && got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: any single-bit corruption of a marshaled entry breaks Verify
// or changes the hash linkage (i.e., the chain detects it).
func TestEntryTamperDetectionProperty(t *testing.T) {
	base := Entry{Seq: 1, At: 2, Kind: KindWrite, LPN: 3, OldPPN: 4, NewPPN: 5, Entropy: 6}
	base.Seal([32]byte{1, 2, 3})
	buf := base.Marshal(nil)
	f := func(bitIdx uint16) bool {
		idx := int(bitIdx) % (len(buf) * 8)
		mutated := append([]byte(nil), buf...)
		mutated[idx/8] ^= 1 << (idx % 8)
		got, _, err := UnmarshalEntry(mutated)
		if err != nil {
			return true
		}
		// Either the entry fails self-verification, or its PrevHash
		// changed (which the chain check against the predecessor
		// catches), or its Hash changed (which the successor's PrevHash
		// catches).
		return !got.Verify() || got.PrevHash != base.PrevHash || got.Hash != base.Hash
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: segments round-trip arbitrary page payloads.
func TestSegmentRoundTripProperty(t *testing.T) {
	f := func(dev uint64, datas [][]byte) bool {
		seg := &Segment{DeviceID: dev}
		for i, d := range datas {
			seg.Pages = append(seg.Pages, PageRecord{
				LPN: uint64(i), WriteSeq: uint64(i), StaleSeq: uint64(i + 1),
				Hash: HashData(d), Data: append([]byte(nil), d...),
			})
		}
		got, err := UnmarshalSegment(seg.Marshal())
		if err != nil || len(got.Pages) != len(datas) {
			return false
		}
		for i := range got.Pages {
			if !bytes.Equal(got.Pages[i].Data, datas[i]) {
				return false
			}
		}
		return got.VerifyPages() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
