package oplog

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/simclock"
)

// PageRecord carries one retained page's contents out of the device during
// offload. WriteSeq is the log sequence of the write that produced this
// version (stamped in the flash page's OOB area), StaleSeq the sequence of
// the overwrite/trim that made it stale. Together they let the remote
// store index versions by (LPN, lifetime interval), which is what recovery
// queries.
type PageRecord struct {
	LPN      uint64
	WriteSeq uint64
	StaleSeq uint64
	Cause    uint8 // ftl.StaleCause value; kept as raw byte to avoid a dependency cycle
	Hash     [HashSize]byte
	Data     []byte
}

// Segment is the unit of offload: a contiguous run of log entries plus the
// retained pages whose local copies the device wants to reclaim. Segments
// are produced in time order, preserving the paper's "transfer in time
// order" property that post-attack analysis relies on.
type Segment struct {
	DeviceID  uint64
	FirstSeq  uint64 // first entry sequence (== Entries[0].Seq when present)
	LastSeq   uint64 // one past the last entry sequence
	FirstTime simclock.Time
	LastTime  simclock.Time
	Entries   []Entry
	Pages     []PageRecord
}

const segmentMagic = 0x52535347 // "RSSG"

// Errors returned by segment decoding.
var (
	ErrBadSegment = errors.New("oplog: malformed segment")
	ErrBadMagic   = errors.New("oplog: bad segment magic")
)

// MarshaledSize returns exactly len(Marshal()) without marshaling; the
// offload engine uses it to size pooled encode buffers and to model the
// encode stage's simulated duration before the real encode runs.
func (s *Segment) MarshaledSize() int {
	size := 4 + 8 + 8 + 8 + 8 + 8 + 4 + 4 + len(s.Entries)*EntrySize
	for i := range s.Pages {
		size += 8 + 8 + 8 + 1 + HashSize + 4 + len(s.Pages[i].Data)
	}
	return size
}

// Marshal serializes the segment.
func (s *Segment) Marshal() []byte {
	return s.AppendMarshal(make([]byte, 0, s.MarshaledSize()))
}

// AppendMarshal is Marshal into a caller-provided buffer: the serialized
// segment is appended to b and the extended slice returned. With a pooled
// buffer of capacity MarshaledSize it allocates nothing — the encode hot
// loop's contract.
func (s *Segment) AppendMarshal(b []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, segmentMagic)
	b = binary.LittleEndian.AppendUint64(b, s.DeviceID)
	b = binary.LittleEndian.AppendUint64(b, s.FirstSeq)
	b = binary.LittleEndian.AppendUint64(b, s.LastSeq)
	b = binary.LittleEndian.AppendUint64(b, uint64(s.FirstTime))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.LastTime))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Entries)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Pages)))
	for i := range s.Entries {
		b = s.Entries[i].Marshal(b)
	}
	for i := range s.Pages {
		p := &s.Pages[i]
		b = binary.LittleEndian.AppendUint64(b, p.LPN)
		b = binary.LittleEndian.AppendUint64(b, p.WriteSeq)
		b = binary.LittleEndian.AppendUint64(b, p.StaleSeq)
		b = append(b, p.Cause)
		b = append(b, p.Hash[:]...)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(p.Data)))
		b = append(b, p.Data...)
	}
	return b
}

// UnmarshalSegment decodes a segment produced by Marshal.
func UnmarshalSegment(b []byte) (*Segment, error) {
	const headerSize = 4 + 8 + 8 + 8 + 8 + 8 + 4 + 4 // magic + 5×uint64 + 2 counts
	if len(b) < headerSize {
		return nil, ErrBadSegment
	}
	if binary.LittleEndian.Uint32(b[0:]) != segmentMagic {
		return nil, ErrBadMagic
	}
	s := &Segment{
		DeviceID:  binary.LittleEndian.Uint64(b[4:]),
		FirstSeq:  binary.LittleEndian.Uint64(b[12:]),
		LastSeq:   binary.LittleEndian.Uint64(b[20:]),
		FirstTime: simclock.Time(binary.LittleEndian.Uint64(b[28:])),
		LastTime:  simclock.Time(binary.LittleEndian.Uint64(b[36:])),
	}
	nEntries := binary.LittleEndian.Uint32(b[44:])
	nPages := binary.LittleEndian.Uint32(b[48:])
	b = b[52:]
	s.Entries = make([]Entry, 0, nEntries)
	for i := uint32(0); i < nEntries; i++ {
		e, rest, err := UnmarshalEntry(b)
		if err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrBadSegment, i, err)
		}
		s.Entries = append(s.Entries, e)
		b = rest
	}
	s.Pages = make([]PageRecord, 0, nPages)
	for i := uint32(0); i < nPages; i++ {
		if len(b) < 8+8+8+1+HashSize+4 {
			return nil, fmt.Errorf("%w: page %d header", ErrBadSegment, i)
		}
		var p PageRecord
		p.LPN = binary.LittleEndian.Uint64(b[0:])
		p.WriteSeq = binary.LittleEndian.Uint64(b[8:])
		p.StaleSeq = binary.LittleEndian.Uint64(b[16:])
		p.Cause = b[24]
		copy(p.Hash[:], b[25:25+HashSize])
		n := binary.LittleEndian.Uint32(b[25+HashSize:])
		b = b[29+HashSize:]
		if uint32(len(b)) < n {
			return nil, fmt.Errorf("%w: page %d data", ErrBadSegment, i)
		}
		p.Data = append([]byte(nil), b[:n]...)
		b = b[n:]
		s.Pages = append(s.Pages, p)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSegment, len(b))
	}
	return s, nil
}

// VerifyPages checks each page record's content hash. Recovery refuses to
// restore from a page whose hash does not match the log.
func (s *Segment) VerifyPages() error {
	for i := range s.Pages {
		p := &s.Pages[i]
		if sha256.Sum256(p.Data) != p.Hash {
			return fmt.Errorf("oplog: page record %d (lpn %d, writeSeq %d): content hash mismatch",
				i, p.LPN, p.WriteSeq)
		}
	}
	return nil
}

// HashData returns the SHA-256 content hash used throughout the log.
func HashData(data []byte) [HashSize]byte { return sha256.Sum256(data) }
