package oplog

import (
	"testing"

	"repro/internal/simclock"
)

// TestAppendBatchChainsLikeAppend: a batched append must produce the
// byte-identical chain a sequence of per-op appends produces — same
// sequence numbers, same hashes, same head.
func TestAppendBatchChainsLikeAppend(t *testing.T) {
	perOp := New()
	batched := New()
	var recs []Rec
	for i := 0; i < 64; i++ {
		rec := Rec{
			Kind: KindWrite, At: simclock.Time(i), LPN: uint64(i),
			OldPPN: uint64(i * 2), NewPPN: uint64(i * 3),
			Entropy: float32(i) / 8, DataHash: HashData([]byte{byte(i)}),
		}
		recs = append(recs, rec)
		perOp.Append(rec.Kind, rec.At, rec.LPN, rec.OldPPN, rec.NewPPN, rec.Entropy, rec.DataHash)
	}
	entries := batched.AppendBatch(recs)
	if len(entries) != 64 {
		t.Fatalf("AppendBatch returned %d entries, want 64", len(entries))
	}
	if perOp.Head() != batched.Head() {
		t.Fatal("batched chain head diverges from per-op chain")
	}
	if perOp.NextSeq() != batched.NextSeq() {
		t.Fatalf("NextSeq %d vs %d", perOp.NextSeq(), batched.NextSeq())
	}
	pe, be := perOp.All(), batched.All()
	for i := range pe {
		if pe[i] != be[i] {
			t.Fatalf("entry %d diverges:\nper-op:  %+v\nbatched: %+v", i, pe[i], be[i])
		}
	}
	if err := VerifyChain(be, [HashSize]byte{}); err != nil {
		t.Fatal(err)
	}
}

// TestAppendBatchInterleavedWithAppend: mixing batched and per-op appends
// keeps one unbroken chain.
func TestAppendBatchInterleavedWithAppend(t *testing.T) {
	l := New()
	l.Append(KindWrite, 1, 1, 0, 0, 0, [HashSize]byte{})
	l.AppendBatch([]Rec{
		{Kind: KindWrite, At: 2, LPN: 2},
		{Kind: KindTrim, At: 3, LPN: 3},
	})
	l.Append(KindRead, 4, 4, 0, 0, 0, [HashSize]byte{})
	if err := VerifyChain(l.All(), [HashSize]byte{}); err != nil {
		t.Fatal(err)
	}
	if l.NextSeq() != 4 {
		t.Fatalf("NextSeq = %d, want 4", l.NextSeq())
	}
}

// TestAppendBatchEmpty: an empty batch is a no-op.
func TestAppendBatchEmpty(t *testing.T) {
	l := New()
	if out := l.AppendBatch(nil); out != nil {
		t.Fatalf("AppendBatch(nil) = %v", out)
	}
	if l.NextSeq() != 0 {
		t.Fatal("empty batch advanced the sequence counter")
	}
}
