// Package oplog implements RSSD's hardware-assisted operation log: a
// time-ordered, hash-chained record of every storage operation the device
// performs.
//
// Each entry's hash covers the previous entry's hash, so the log forms a
// tamper-evident chain — the "trusted evidence chain" the paper's
// post-attack analysis is built on. Because the log is produced below the
// block interface by the firmware (simulated here by internal/core), a
// host-resident attacker cannot rewrite history without breaking the
// chain: any insertion, deletion, or mutation is detected by VerifyChain.
package oplog

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/simclock"
)

// Kind enumerates logged operation types.
type Kind uint8

const (
	// KindWrite records a host write: LPN received new content at NewPPN;
	// the previous version (if any) was at OldPPN and became stale.
	KindWrite Kind = iota + 1
	// KindTrim records a host trim of LPN whose data was at OldPPN.
	// Under RSSD's enhanced trim the data is retained, not destroyed.
	KindTrim
	// KindMigrate records GC relocating a retained page OldPPN -> NewPPN.
	KindMigrate
	// KindOffload records that retained data and log entries up to
	// OldPPN (reused as "last sequence") were durably shipped remotely.
	KindOffload
	// KindCheckpoint records a mapping-snapshot checkpoint; DataHash
	// holds the snapshot digest.
	KindCheckpoint
	// KindRecovery records a recovery action that rewrote LPN from a
	// retained version.
	KindRecovery
	// KindRecoveryTrim records a recovery action that restored LPN to
	// the unmapped (zero) state.
	KindRecoveryTrim
	// KindRead records a host read. Reads are sampled rather than fully
	// logged (matching the paper: read logging informs detection of
	// read-then-overwrite ransomware behaviour at low overhead).
	KindRead
)

func (k Kind) String() string {
	switch k {
	case KindWrite:
		return "write"
	case KindTrim:
		return "trim"
	case KindMigrate:
		return "migrate"
	case KindOffload:
		return "offload"
	case KindCheckpoint:
		return "checkpoint"
	case KindRecovery:
		return "recovery"
	case KindRecoveryTrim:
		return "recovery-trim"
	case KindRead:
		return "read"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// HashSize is the size of the chain and content hashes.
const HashSize = sha256.Size

// Entry is one operation-log record. The byte layout produced by Marshal
// is fixed-size so firmware can append without allocation.
type Entry struct {
	Seq     uint64
	At      simclock.Time
	Kind    Kind
	LPN     uint64
	OldPPN  uint64
	NewPPN  uint64
	Entropy float32          // Shannon estimate of written content (writes)
	DataHash [HashSize]byte  // content hash of written data / snapshot digest
	PrevHash [HashSize]byte  // chain: hash of the previous entry
	Hash     [HashSize]byte  // chain: SHA-256(PrevHash || body)
}

// EntrySize is the marshaled entry size in bytes.
const EntrySize = 8 + 8 + 1 + 8 + 8 + 8 + 4 + HashSize + HashSize + HashSize

// bodySize is the hashed portion (everything but PrevHash and Hash).
const bodySize = 8 + 8 + 1 + 8 + 8 + 8 + 4 + HashSize

// appendBody serializes the hashed portion of e into b.
func (e *Entry) appendBody(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, e.Seq)
	b = binary.LittleEndian.AppendUint64(b, uint64(e.At))
	b = append(b, byte(e.Kind))
	b = binary.LittleEndian.AppendUint64(b, e.LPN)
	b = binary.LittleEndian.AppendUint64(b, e.OldPPN)
	b = binary.LittleEndian.AppendUint64(b, e.NewPPN)
	b = binary.LittleEndian.AppendUint32(b, math.Float32bits(e.Entropy))
	b = append(b, e.DataHash[:]...)
	return b
}

// ComputeHash returns the chain hash of e given the previous entry's hash.
func (e *Entry) ComputeHash(prev [HashSize]byte) [HashSize]byte {
	buf := make([]byte, 0, bodySize+HashSize)
	buf = append(buf, prev[:]...)
	buf = e.appendBody(buf)
	return sha256.Sum256(buf)
}

// Seal sets PrevHash and Hash from the previous hash in the chain.
func (e *Entry) Seal(prev [HashSize]byte) {
	e.sealWith(prev, nil)
}

// sealWith is Seal with an optional scratch buffer, so batched appends can
// hash every entry of a batch through one reused allocation. It returns the
// (possibly grown) buffer for the next entry.
func (e *Entry) sealWith(prev [HashSize]byte, buf []byte) []byte {
	buf = buf[:0]
	buf = append(buf, prev[:]...)
	buf = e.appendBody(buf)
	e.PrevHash = prev
	e.Hash = sha256.Sum256(buf)
	return buf
}

// Verify reports whether e's Hash is consistent with its contents and
// PrevHash.
func (e *Entry) Verify() bool { return e.Hash == e.ComputeHash(e.PrevHash) }

// Marshal appends the wire encoding of e to b.
func (e *Entry) Marshal(b []byte) []byte {
	b = e.appendBody(b)
	b = append(b, e.PrevHash[:]...)
	b = append(b, e.Hash[:]...)
	return b
}

// ErrShortEntry is returned when unmarshaling truncated data.
var ErrShortEntry = errors.New("oplog: short entry")

// UnmarshalEntry decodes one entry from b, returning the remaining bytes.
func UnmarshalEntry(b []byte) (Entry, []byte, error) {
	if len(b) < EntrySize {
		return Entry{}, b, ErrShortEntry
	}
	var e Entry
	e.Seq = binary.LittleEndian.Uint64(b[0:])
	e.At = simclock.Time(binary.LittleEndian.Uint64(b[8:]))
	e.Kind = Kind(b[16])
	e.LPN = binary.LittleEndian.Uint64(b[17:])
	e.OldPPN = binary.LittleEndian.Uint64(b[25:])
	e.NewPPN = binary.LittleEndian.Uint64(b[33:])
	e.Entropy = math.Float32frombits(binary.LittleEndian.Uint32(b[41:]))
	copy(e.DataHash[:], b[45:45+HashSize])
	copy(e.PrevHash[:], b[45+HashSize:])
	copy(e.Hash[:], b[45+2*HashSize:])
	return e, b[EntrySize:], nil
}

// Log is the in-device operation log. Appends are serialized; reads take a
// snapshot. The log may be pruned after offload — remote storage then holds
// the authoritative prefix.
type Log struct {
	mu      sync.Mutex
	entries []Entry
	head    [HashSize]byte // hash of the newest entry (genesis: zero)
	nextSeq uint64
	baseSeq uint64 // seq of entries[0]; earlier entries have been pruned
	scratch []byte // seal buffer, reused under mu across appends
}

// New returns an empty log whose first entry will have sequence 0 and a
// zero genesis PrevHash.
func New() *Log { return &Log{} }

// ResumeFrom returns a log that continues an existing chain: the next
// appended entry gets sequence nextSeq and chains onto head (the hash of
// entry nextSeq-1). Device reopen uses it to splice the post-reboot log
// onto the remotely stored prefix without a chain break.
func ResumeFrom(nextSeq uint64, head [HashSize]byte) *Log {
	return &Log{nextSeq: nextSeq, baseSeq: nextSeq, head: head}
}

// Append creates, seals, and stores a new entry, returning a copy.
func (l *Log) Append(kind Kind, at simclock.Time, lpn, oldPPN, newPPN uint64, ent float32, dataHash [HashSize]byte) Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := Entry{
		Seq: l.nextSeq, At: at, Kind: kind,
		LPN: lpn, OldPPN: oldPPN, NewPPN: newPPN,
		Entropy: ent, DataHash: dataHash,
	}
	l.scratch = e.sealWith(l.head, l.scratch)
	l.entries = append(l.entries, e)
	l.head = e.Hash
	l.nextSeq++
	return e
}

// Rec describes one entry to append in a batch. It is an Entry minus the
// fields the log assigns (Seq and the chain hashes).
type Rec struct {
	Kind     Kind
	At       simclock.Time
	LPN      uint64
	OldPPN   uint64
	NewPPN   uint64
	Entropy  float32
	DataHash [HashSize]byte
}

// AppendBatch creates, seals, and stores one entry per record under a
// single lock acquisition, returning copies in order. Every entry is still
// individually hash-chained onto its predecessor — VerifyChain sees no
// difference from per-op appends — but the sequence counter, head update,
// and seal buffer are touched once per batch instead of once per entry,
// which is what makes the batched datapath's logging cheap.
func (l *Log) AppendBatch(recs []Rec) []Entry {
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(recs))
	for i, rec := range recs {
		e := Entry{
			Seq: l.nextSeq, At: rec.At, Kind: rec.Kind,
			LPN: rec.LPN, OldPPN: rec.OldPPN, NewPPN: rec.NewPPN,
			Entropy: rec.Entropy, DataHash: rec.DataHash,
		}
		l.scratch = e.sealWith(l.head, l.scratch)
		l.entries = append(l.entries, e)
		l.head = e.Hash
		l.nextSeq++
		out[i] = e
	}
	return out
}

// NextSeq returns the sequence number the next appended entry will get.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Head returns the hash of the newest entry.
func (l *Log) Head() [HashSize]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

// BaseSeq returns the oldest sequence still held locally.
func (l *Log) BaseSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.baseSeq
}

// Len returns the number of locally held entries.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Entries returns a copy of entries with from <= Seq < to that are still
// held locally.
func (l *Log) Entries(from, to uint64) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if to > l.nextSeq {
		to = l.nextSeq
	}
	if from < l.baseSeq {
		from = l.baseSeq
	}
	if from >= to {
		return nil
	}
	out := make([]Entry, to-from)
	copy(out, l.entries[from-l.baseSeq:to-l.baseSeq])
	return out
}

// All returns a copy of every locally held entry.
func (l *Log) All() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Prune discards local entries with Seq < upto. The device does this after
// those entries are durably offloaded; forensics then merges the remote
// prefix with the local suffix.
func (l *Log) Prune(upto uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if upto <= l.baseSeq {
		return
	}
	if upto > l.nextSeq {
		upto = l.nextSeq
	}
	n := upto - l.baseSeq
	l.entries = append([]Entry(nil), l.entries[n:]...)
	l.baseSeq = upto
}

// ChainError describes where and how chain verification failed.
type ChainError struct {
	Index  int // index into the verified slice
	Seq    uint64
	Reason string
}

func (e *ChainError) Error() string {
	return fmt.Sprintf("oplog: chain broken at index %d (seq %d): %s", e.Index, e.Seq, e.Reason)
}

// VerifyChain checks that entries form an unbroken, untampered hash chain
// starting from prev (the hash of the entry immediately before entries[0],
// or zero for a genesis chain). It returns nil if the chain is intact.
func VerifyChain(entries []Entry, prev [HashSize]byte) error {
	for i := range entries {
		e := &entries[i]
		if e.PrevHash != prev {
			return &ChainError{Index: i, Seq: e.Seq, Reason: "previous-hash mismatch"}
		}
		if !e.Verify() {
			return &ChainError{Index: i, Seq: e.Seq, Reason: "entry hash mismatch"}
		}
		if i > 0 && e.Seq != entries[i-1].Seq+1 {
			return &ChainError{Index: i, Seq: e.Seq, Reason: "sequence gap"}
		}
		prev = e.Hash
	}
	return nil
}
