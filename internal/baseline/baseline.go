// Package baseline implements the retention policies RSSD is evaluated
// against, as ftl.Retainer plug-ins over the same FTL:
//
//   - ProbeRetainer — an unmodified "LocalSSD": nothing is pinned; the
//     probe just measures how long stale data naturally survives until GC
//     destroys it.
//   - CapacityRetainer — retain-all-until-capacity: stale pages are kept
//     until a fixed local budget overflows, then the oldest are destroyed.
//     With the budget set to the over-provisioned space it models the
//     "LocalSSD" retention bar of Figure 2; multiplied by a compression
//     ratio it models "LocalSSD+Compression".
//   - FlashGuardRetainer — FlashGuard (CCS'17)-style selective retention:
//     only pages that were read shortly before being overwritten are kept
//     (trimmed pages are not), within a bounded budget.
//   - TimeWindowRetainer — TimeSSD-style bounded-time retention: stale
//     pages are kept for a fixed window, then released.
//
// Each keeps an index of its retained versions so the Table 1 experiments
// can ask "could this system restore page X?" after each attack.
package baseline

import (
	"bytes"

	"repro/internal/ftl"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// Version is one retained stale version of a logical page.
type Version struct {
	ppn     uint64
	lpn     uint64
	staleAt simclock.Time
	cause   ftl.StaleCause
	dead    bool
}

// store is the bookkeeping shared by all baseline retainers.
type store struct {
	f         *ftl.FTL
	pins      map[uint64]*Version
	byLPN     map[uint64][]*Version
	queue     []*Version
	head      int
	dropped   uint64
	destroyed uint64
	lifetimes *metrics.Histogram
}

func newStore() store {
	return store{
		pins:      map[uint64]*Version{},
		byLPN:     map[uint64][]*Version{},
		lifetimes: metrics.NewHistogram(0),
	}
}

// Attach must be called once after the FTL is constructed with this
// retainer (the two reference each other).
func (s *store) Attach(f *ftl.FTL) { s.f = f }

// Dropped returns how many retained pages the policy destroyed.
func (s *store) Dropped() uint64 { return s.dropped }

// RetainedNow returns the current number of pinned versions.
func (s *store) RetainedNow() int { return len(s.pins) }

// Lifetimes returns the histogram of stale-to-destruction durations — the
// empirical retention time of Figure 2.
func (s *store) Lifetimes() *metrics.Histogram { return s.lifetimes }

func (s *store) pin(lpn, ppn uint64, cause ftl.StaleCause, at simclock.Time) {
	v := &Version{ppn: ppn, lpn: lpn, staleAt: at, cause: cause}
	s.pins[ppn] = v
	s.byLPN[lpn] = append(s.byLPN[lpn], v)
	s.queue = append(s.queue, v)
}

func (s *store) onMigrate(oldPPN, newPPN uint64) {
	v, ok := s.pins[oldPPN]
	if !ok {
		return
	}
	delete(s.pins, oldPPN)
	v.ppn = newPPN
	s.pins[newPPN] = v
}

// dropOldest releases the n oldest pins, recording their lifetimes.
func (s *store) dropOldest(n int, at simclock.Time) {
	for n > 0 {
		v := s.popOldest()
		if v == nil {
			return
		}
		s.kill(v, at)
		n--
	}
}

func (s *store) popOldest() *Version {
	for s.head < len(s.queue) {
		v := s.queue[s.head]
		s.head++
		if !v.dead {
			return v
		}
	}
	return nil
}

func (s *store) kill(v *Version, at simclock.Time) {
	v.dead = true
	delete(s.pins, v.ppn)
	vs := s.byLPN[v.lpn]
	for i := range vs {
		if vs[i] == v {
			s.byLPN[v.lpn] = append(vs[:i], vs[i+1:]...)
			break
		}
	}
	if len(s.byLPN[v.lpn]) == 0 {
		delete(s.byLPN, v.lpn)
	}
	if s.f != nil {
		s.f.Release(v.ppn)
	}
	s.dropped++
	s.lifetimes.Observe(at.Sub(v.staleAt))
}

// VersionData returns the retained versions of lpn, oldest first, reading
// their contents from flash. This is the baseline's whole recovery story:
// whatever is still pinned locally is restorable, nothing else.
func (s *store) VersionData(lpn uint64, at simclock.Time) [][]byte {
	var out [][]byte
	for _, v := range s.byLPN[lpn] {
		if v.dead {
			continue
		}
		data, _, _, err := s.f.ReadPhysical(v.ppn, at)
		if err != nil {
			continue
		}
		out = append(out, data)
	}
	return out
}

// CanRestore reports whether any retained version of lpn matches want.
func (s *store) CanRestore(lpn uint64, want []byte, at simclock.Time) bool {
	for _, data := range s.VersionData(lpn, at) {
		if bytes.Equal(data, want) {
			return true
		}
	}
	return false
}

// --- ProbeRetainer ----------------------------------------------------------

// ProbeRetainer pins nothing; it measures how long stale data survives on
// an unmodified SSD before garbage collection destroys it.
type ProbeRetainer struct {
	store
	staleAt map[uint64]simclock.Time // ppn -> when it went stale
}

// NewProbe returns a measurement-only retainer.
func NewProbe() *ProbeRetainer {
	return &ProbeRetainer{store: newStore(), staleAt: map[uint64]simclock.Time{}}
}

// OnStale implements ftl.Retainer; it never pins.
func (p *ProbeRetainer) OnStale(lpn, ppn uint64, cause ftl.StaleCause, at simclock.Time) bool {
	p.staleAt[ppn] = at
	return false
}

// OnMigrate implements ftl.Retainer (unreachable: nothing is pinned).
func (p *ProbeRetainer) OnMigrate(lpn, oldPPN, newPPN uint64, at simclock.Time) {}

// OnErased implements ftl.Retainer, recording the natural lifetime.
func (p *ProbeRetainer) OnErased(lpn, ppn uint64, at simclock.Time) {
	if t0, ok := p.staleAt[ppn]; ok {
		p.lifetimes.Observe(at.Sub(t0))
		delete(p.staleAt, ppn)
		p.destroyed++
	}
}

// Pressure implements ftl.Retainer (nothing to release).
func (p *ProbeRetainer) Pressure(needPages int, at simclock.Time) {}

// --- CapacityRetainer ---------------------------------------------------------

// CapacityRetainer retains every stale page until a fixed budget of local
// pages overflows, then destroys the oldest. Budget ~ OP space models
// LocalSSD; budget ~ OP x compression ratio models LocalSSD+Compression.
type CapacityRetainer struct {
	store
	Budget int
}

// NewCapacity returns a retain-until-budget policy.
func NewCapacity(budgetPages int) *CapacityRetainer {
	return &CapacityRetainer{store: newStore(), Budget: budgetPages}
}

// OnStale implements ftl.Retainer.
func (c *CapacityRetainer) OnStale(lpn, ppn uint64, cause ftl.StaleCause, at simclock.Time) bool {
	c.pin(lpn, ppn, cause, at)
	if c.Budget > 0 && len(c.pins) > c.Budget {
		c.dropOldest(len(c.pins)-c.Budget, at)
	}
	return true
}

// OnMigrate implements ftl.Retainer.
func (c *CapacityRetainer) OnMigrate(lpn, oldPPN, newPPN uint64, at simclock.Time) {
	c.onMigrate(oldPPN, newPPN)
}

// OnErased implements ftl.Retainer.
func (c *CapacityRetainer) OnErased(lpn, ppn uint64, at simclock.Time) {}

// Pressure implements ftl.Retainer: shed the oldest pins so GC can make
// progress.
func (c *CapacityRetainer) Pressure(needPages int, at simclock.Time) {
	c.dropOldest(needPages, at)
}

// --- FlashGuardRetainer -----------------------------------------------------

// FlashGuardRetainer retains only pages exhibiting the read-then-overwrite
// pattern FlashGuard treats as suspicious, within a bounded budget and for
// a bounded duration. Trimmed pages are never retained — the gap the
// trimming attack drives through — and the bounded retention duration is
// what the timing attack waits out. Its pins are deliberately NOT shed
// under GC pressure: like the real FlashGuard, retained pages are held out
// of garbage collection's reach, so the GC attack stalls the device rather
// than destroying evidence (Table 1 credits FlashGuard with defending the
// GC attack).
type FlashGuardRetainer struct {
	store
	Budget      int
	ReadHorizon simclock.Duration
	// RetainFor bounds how long a suspicious page stays retained.
	RetainFor simclock.Duration
	lastRead  map[uint64]simclock.Time
}

// NewFlashGuard returns a FlashGuard-style policy.
func NewFlashGuard(budgetPages int, readHorizon simclock.Duration) *FlashGuardRetainer {
	if readHorizon <= 0 {
		readHorizon = simclock.Hour
	}
	return &FlashGuardRetainer{
		store: newStore(), Budget: budgetPages, ReadHorizon: readHorizon,
		RetainFor: 3 * simclock.Day,
		lastRead:  map[uint64]simclock.Time{},
	}
}

// OnHostRead implements ftl.ReadObserver.
func (g *FlashGuardRetainer) OnHostRead(lpn uint64, at simclock.Time) {
	g.lastRead[lpn] = at
	g.expire(at)
}

// expire releases pins older than the retention duration.
func (g *FlashGuardRetainer) expire(at simclock.Time) {
	for {
		v := g.peekOldest()
		if v == nil || at.Sub(v.staleAt) <= g.RetainFor {
			return
		}
		g.popOldest()
		g.kill(v, at)
	}
}

func (g *FlashGuardRetainer) peekOldest() *Version {
	for g.head < len(g.queue) {
		if v := g.queue[g.head]; !v.dead {
			return v
		}
		g.head++
	}
	return nil
}

// OnStale implements ftl.Retainer: pin only read-then-overwritten pages.
func (g *FlashGuardRetainer) OnStale(lpn, ppn uint64, cause ftl.StaleCause, at simclock.Time) bool {
	g.expire(at)
	if cause != ftl.CauseOverwrite {
		return false // trim bypasses FlashGuard entirely
	}
	t, ok := g.lastRead[lpn]
	if !ok || at.Sub(t) > g.ReadHorizon {
		return false
	}
	g.pin(lpn, ppn, cause, at)
	if g.Budget > 0 && len(g.pins) > g.Budget {
		g.dropOldest(len(g.pins)-g.Budget, at)
	}
	return true
}

// OnMigrate implements ftl.Retainer.
func (g *FlashGuardRetainer) OnMigrate(lpn, oldPPN, newPPN uint64, at simclock.Time) {
	g.onMigrate(oldPPN, newPPN)
}

// OnErased implements ftl.Retainer.
func (g *FlashGuardRetainer) OnErased(lpn, ppn uint64, at simclock.Time) {}

// Pressure implements ftl.Retainer: expire aged pins, but never shed live
// ones — retained data stays out of GC's reach even if writes must stall.
func (g *FlashGuardRetainer) Pressure(needPages int, at simclock.Time) {
	g.expire(at)
}

// --- TimeWindowRetainer -------------------------------------------------------

// TimeWindowRetainer retains overwritten pages for a fixed simulated
// duration, then releases them — the TimeSSD model. The timing attack
// simply waits out the window, and trim bypasses it entirely: pre-RSSD
// designs treat trim as a legitimate erase command and retain nothing
// (Table 1's ✗ in the trimming column).
type TimeWindowRetainer struct {
	store
	Window simclock.Duration
}

// NewTimeWindow returns a bounded-time retention policy.
func NewTimeWindow(window simclock.Duration) *TimeWindowRetainer {
	if window <= 0 {
		window = 3 * simclock.Day
	}
	return &TimeWindowRetainer{store: newStore(), Window: window}
}

// expire releases pins older than the window.
func (w *TimeWindowRetainer) expire(at simclock.Time) {
	for {
		v := w.peekOldest()
		if v == nil || at.Sub(v.staleAt) <= w.Window {
			return
		}
		w.popOldest()
		w.kill(v, at)
	}
}

func (w *TimeWindowRetainer) peekOldest() *Version {
	for w.head < len(w.queue) {
		if v := w.queue[w.head]; !v.dead {
			return v
		}
		w.head++
	}
	return nil
}

// OnStale implements ftl.Retainer: overwrites are retained for the
// window; trimmed pages are not retained at all.
func (w *TimeWindowRetainer) OnStale(lpn, ppn uint64, cause ftl.StaleCause, at simclock.Time) bool {
	w.expire(at)
	if cause != ftl.CauseOverwrite {
		return false
	}
	w.pin(lpn, ppn, cause, at)
	return true
}

// OnMigrate implements ftl.Retainer.
func (w *TimeWindowRetainer) OnMigrate(lpn, oldPPN, newPPN uint64, at simclock.Time) {
	w.onMigrate(oldPPN, newPPN)
}

// OnErased implements ftl.Retainer.
func (w *TimeWindowRetainer) OnErased(lpn, ppn uint64, at simclock.Time) {}

// Pressure implements ftl.Retainer: expire aged pins only. Within-window
// pins are held out of GC's reach (writes stall instead), which is how
// TimeSSD-class designs defend the GC attack — at the price of the
// device filling up.
func (w *TimeWindowRetainer) Pressure(needPages int, at simclock.Time) {
	w.expire(at)
}
