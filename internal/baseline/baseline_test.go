package baseline

import (
	"testing"

	"repro/internal/ftl"
	"repro/internal/nand"
	"repro/internal/simclock"
)

func smallFTL(ret ftl.Retainer) *ftl.FTL {
	cfg := ftl.Config{
		NAND: nand.Config{
			Geometry: nand.Geometry{
				Channels: 2, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
				BlocksPerPlane: 16, PagesPerBlock: 4, PageSize: 512,
			},
			Timing: nand.DefaultTiming(),
		},
		OverProvision: 0.25,
		GCLowWater:    2,
		GCHighWater:   3,
	}
	return ftl.New(cfg, ret)
}

func fill(b byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestCapacityRetainerKeepsUpToBudget(t *testing.T) {
	c := NewCapacity(4)
	f := smallFTL(c)
	c.Attach(f)
	at := simclock.Time(0)
	// 6 overwrites of lpn 0 -> 6 stale versions, budget 4.
	for i := 0; i < 7; i++ {
		at, _ = f.Write(0, fill(byte(i), 512), at)
		at = at.Add(simclock.Minute)
	}
	if got := c.RetainedNow(); got != 4 {
		t.Fatalf("retained = %d, want 4", got)
	}
	if c.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", c.Dropped())
	}
	// Versions 0 and 1 destroyed; 2..5 restorable.
	if c.CanRestore(0, fill(0, 512), at) || c.CanRestore(0, fill(1, 512), at) {
		t.Fatal("dropped versions still restorable")
	}
	for i := 2; i <= 5; i++ {
		if !c.CanRestore(0, fill(byte(i), 512), at) {
			t.Fatalf("version %d not restorable", i)
		}
	}
	// Lifetimes were recorded for the drops.
	if c.Lifetimes().Count() != 2 {
		t.Fatalf("lifetime samples = %d", c.Lifetimes().Count())
	}
}

func TestCapacityRetainerSurvivesGC(t *testing.T) {
	c := NewCapacity(10)
	f := smallFTL(c)
	c.Attach(f)
	at := simclock.Time(0)
	// Reach GC steady state first.
	for i := 0; i < 300; i++ {
		at, _ = f.Write(uint64(i%5), fill(byte(i), 512), at)
	}
	if f.Stats().GCRuns == 0 {
		t.Fatal("no GC during warmup")
	}
	// Pin the victim version, then keep churning gently: the version
	// stays within budget (10 newest) while GC keeps running.
	at, _ = f.Write(9, fill(0xAA, 512), at)
	at, _ = f.Write(9, fill(0xBB, 512), at)
	gcBefore := f.Stats().GCRuns
	for i := 0; i < 8; i++ {
		at, _ = f.Write(uint64(i%4), fill(byte(100+i), 512), at)
	}
	if f.Stats().GCRuns == gcBefore {
		t.Fatal("no GC while the pin was live")
	}
	if !c.CanRestore(9, fill(0xAA, 512), at) {
		t.Fatal("pinned version lost across GC")
	}
}

func TestFlashGuardRetainsReadThenOverwrite(t *testing.T) {
	g := NewFlashGuard(64, simclock.Hour)
	f := smallFTL(g)
	g.Attach(f)
	at := simclock.Time(0)
	at, _ = f.Write(1, fill(1, 512), at)
	f.Read(1, at) // ransomware reads before encrypting
	at, _ = f.Write(1, fill(2, 512), at)
	if !g.CanRestore(1, fill(1, 512), at) {
		t.Fatal("read-then-overwritten page not retained")
	}
}

func TestFlashGuardIgnoresUnreadOverwrite(t *testing.T) {
	g := NewFlashGuard(64, simclock.Hour)
	f := smallFTL(g)
	g.Attach(f)
	at := simclock.Time(0)
	at, _ = f.Write(1, fill(1, 512), at)
	at, _ = f.Write(1, fill(2, 512), at) // no read in between
	if g.RetainedNow() != 0 {
		t.Fatal("unread overwrite retained")
	}
}

func TestFlashGuardIgnoresStaleRead(t *testing.T) {
	g := NewFlashGuard(64, simclock.Hour)
	f := smallFTL(g)
	g.Attach(f)
	at := simclock.Time(0)
	at, _ = f.Write(1, fill(1, 512), at)
	f.Read(1, at)
	at = at.Add(3 * simclock.Hour) // read ages out
	at, _ = f.Write(1, fill(2, 512), at)
	if g.RetainedNow() != 0 {
		t.Fatal("stale read still paired")
	}
}

// TestFlashGuardBypassedByTrim is the trimming attack in miniature: the
// plaintext is read (to build ciphertext elsewhere) and then trimmed, and
// FlashGuard retains nothing.
func TestFlashGuardBypassedByTrim(t *testing.T) {
	g := NewFlashGuard(64, simclock.Hour)
	f := smallFTL(g)
	g.Attach(f)
	at := simclock.Time(0)
	at, _ = f.Write(1, fill(1, 512), at)
	f.Read(1, at)
	at, _ = f.Trim(1, at)
	if g.RetainedNow() != 0 {
		t.Fatal("FlashGuard should not retain trimmed pages")
	}
	if g.CanRestore(1, fill(1, 512), at) {
		t.Fatal("trimmed data should be unrecoverable under FlashGuard")
	}
}

func TestTimeWindowRetainsWithinWindow(t *testing.T) {
	w := NewTimeWindow(2 * simclock.Day)
	f := smallFTL(w)
	w.Attach(f)
	at := simclock.Time(0)
	at, _ = f.Write(3, fill(7, 512), at)
	at, _ = f.Write(3, fill(8, 512), at)
	if !w.CanRestore(3, fill(7, 512), at) {
		t.Fatal("fresh version not retained")
	}
}

// TestTimeWindowExpiry is the timing attack in miniature: wait out the
// retention window and the old version is gone.
func TestTimeWindowExpiry(t *testing.T) {
	w := NewTimeWindow(2 * simclock.Day)
	f := smallFTL(w)
	w.Attach(f)
	at := simclock.Time(0)
	at, _ = f.Write(3, fill(7, 512), at)
	at, _ = f.Write(3, fill(8, 512), at) // version 7 retained
	at = at.Add(3 * simclock.Day)        // attacker waits
	at, _ = f.Write(4, fill(9, 512), at) // any activity triggers expiry
	at, _ = f.Write(4, fill(10, 512), at)
	if w.CanRestore(3, fill(7, 512), at) {
		t.Fatal("version survived beyond the window")
	}
	if w.Dropped() == 0 {
		t.Fatal("no expiry recorded")
	}
}

// TestTimeWindowIgnoresTrim: pre-RSSD designs treat trim as a legitimate
// erase; TimeSSD retains nothing for trimmed pages.
func TestTimeWindowIgnoresTrim(t *testing.T) {
	w := NewTimeWindow(2 * simclock.Day)
	f := smallFTL(w)
	w.Attach(f)
	at := simclock.Time(0)
	at, _ = f.Write(3, fill(7, 512), at)
	at, _ = f.Trim(3, at)
	if w.RetainedNow() != 0 {
		t.Fatal("TimeSSD model retained trimmed data")
	}
	if w.CanRestore(3, fill(7, 512), at) {
		t.Fatal("trimmed data restorable under TimeSSD model")
	}
}

// TestFlashGuardTimeExpiry: the timing attack's core insight — bounded
// retention durations can be waited out.
func TestFlashGuardTimeExpiry(t *testing.T) {
	g := NewFlashGuard(64, simclock.Hour)
	f := smallFTL(g)
	g.Attach(f)
	at := simclock.Time(0)
	at, _ = f.Write(1, fill(1, 512), at)
	f.Read(1, at)
	at, _ = f.Write(1, fill(2, 512), at) // retained
	if g.RetainedNow() != 1 {
		t.Fatal("not retained")
	}
	at = at.Add(4 * simclock.Day) // attacker waits out RetainFor (3 days)
	f.Read(5, at)                 // any activity triggers expiry
	if g.RetainedNow() != 0 {
		t.Fatal("FlashGuard pin survived beyond its retention duration")
	}
}

func TestProbeMeasuresNaturalLifetime(t *testing.T) {
	p := NewProbe()
	f := smallFTL(p)
	p.Attach(f)
	at := simclock.Time(0)
	for i := 0; i < 400; i++ {
		at, _ = f.Write(uint64(i%4), fill(byte(i), 512), at)
		at = at.Add(simclock.Second)
	}
	if p.Lifetimes().Count() == 0 {
		t.Fatal("no lifetimes measured despite churn and GC")
	}
	if p.RetainedNow() != 0 {
		t.Fatal("probe must not pin")
	}
}

// TestCapacityPressureShedsPins: when pins exhaust the device, Pressure
// releases the oldest so writes keep flowing (with data loss — which is
// the point of the comparison with RSSD).
func TestCapacityPressureShedsPins(t *testing.T) {
	c := NewCapacity(0) // unlimited budget: only Pressure sheds
	f := smallFTL(c)
	c.Attach(f)
	at := simclock.Time(0)
	for i := 0; i < 300; i++ {
		var err error
		at, err = f.Write(uint64(i%8), fill(byte(i), 512), at)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if c.Dropped() == 0 {
		t.Fatal("pressure never shed pins")
	}
}

func TestVersionDataOrdering(t *testing.T) {
	c := NewCapacity(8)
	f := smallFTL(c)
	c.Attach(f)
	at := simclock.Time(0)
	for i := 0; i < 4; i++ {
		at, _ = f.Write(2, fill(byte(10+i), 512), at)
	}
	vs := c.VersionData(2, at)
	if len(vs) != 3 {
		t.Fatalf("versions = %d, want 3", len(vs))
	}
	for i, v := range vs {
		if v[0] != byte(10+i) {
			t.Fatalf("version %d = %d, want oldest-first order", i, v[0])
		}
	}
}
