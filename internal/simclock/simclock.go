// Package simclock provides the discrete simulated time base used by every
// device-level component in this repository.
//
// The RSSD paper reports device latencies (flash program/read/erase times,
// NVMe-oE round trips) and long-horizon quantities (data retention time in
// days). Neither can be tied to wall-clock time in a reproducible test
// suite, so all device components account time in virtual nanoseconds. A
// Clock is advanced explicitly by the simulation driver; hardware resources
// (flash chips, transport links) track their own next-free timestamps
// against it.
package simclock

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation. The zero Time is the simulation epoch.
type Time int64

// Duration is a span of simulated time in nanoseconds. It deliberately
// mirrors time.Duration so the familiar unit constants below read the same.
type Duration int64

// Common durations, in simulated nanoseconds.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
	Day                  = 24 * Hour
)

// Add returns the time t+d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// After reports whether t is strictly after u.
func (t Time) After(u Time) bool { return t > u }

// Before reports whether t is strictly before u.
func (t Time) Before(u Time) bool { return t < u }

// Max returns the later of t and u.
func Max(t, u Time) Time {
	if t > u {
		return t
	}
	return u
}

// Min returns the earlier of t and u.
func Min(t, u Time) Time {
	if t < u {
		return t
	}
	return u
}

// Std converts a simulated duration to a time.Duration for reporting.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Days returns the duration as a floating-point number of days. Figure 2 of
// the paper reports retention time in days; this is the unit used there.
func (d Duration) Days() float64 { return float64(d) / float64(Day) }

// String formats the duration using time.Duration notation for durations
// under a day and a "XdYh" form above it, which keeps multi-month retention
// times readable.
func (d Duration) String() string {
	if d < Day && d > -Day {
		return time.Duration(d).String()
	}
	days := d / Day
	rem := time.Duration(d % Day)
	return fmt.Sprintf("%dd%s", days, rem.Truncate(time.Minute))
}

// String formats the time as an offset from the simulation epoch.
func (t Time) String() string { return "T+" + Duration(t).String() }

// Clock is a monotonic simulated clock. It is safe for concurrent use: the
// offload path (NVMe-oE client) reads the clock from a different goroutine
// than the I/O path that advances it.
type Clock struct {
	now atomic.Int64
}

// NewClock returns a clock positioned at the simulation epoch.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time.
func (c *Clock) Now() Time { return Time(c.now.Load()) }

// Advance moves the clock forward by d and returns the new time. Negative
// durations are ignored: simulated time is monotonic by construction.
func (c *Clock) Advance(d Duration) Time {
	if d <= 0 {
		return c.Now()
	}
	return Time(c.now.Add(int64(d)))
}

// AdvanceTo moves the clock forward to t if t is in the future; it never
// moves the clock backwards. It returns the resulting current time.
func (c *Clock) AdvanceTo(t Time) Time {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return Time(cur)
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return t
		}
	}
}
