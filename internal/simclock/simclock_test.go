package simclock

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestClockStartsAtEpoch(t *testing.T) {
	c := NewClock()
	if got := c.Now(); got != 0 {
		t.Fatalf("new clock at %v, want epoch", got)
	}
}

func TestAdvance(t *testing.T) {
	c := NewClock()
	if got := c.Advance(5 * Microsecond); got != Time(5000) {
		t.Fatalf("Advance = %v, want 5000ns", got)
	}
	if got := c.Advance(Millisecond); got != Time(1005000) {
		t.Fatalf("Advance = %v, want 1005000ns", got)
	}
}

func TestAdvanceIgnoresNegative(t *testing.T) {
	c := NewClock()
	c.Advance(Second)
	if got := c.Advance(-Minute); got != Time(Second) {
		t.Fatalf("negative Advance moved clock to %v", got)
	}
	if got := c.Advance(0); got != Time(Second) {
		t.Fatalf("zero Advance moved clock to %v", got)
	}
}

func TestAdvanceToIsMonotonic(t *testing.T) {
	c := NewClock()
	c.AdvanceTo(Time(100))
	if got := c.AdvanceTo(Time(50)); got != Time(100) {
		t.Fatalf("AdvanceTo went backwards: %v", got)
	}
	if got := c.AdvanceTo(Time(200)); got != Time(200) {
		t.Fatalf("AdvanceTo = %v, want 200", got)
	}
}

func TestAdvanceToConcurrent(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.AdvanceTo(Time(i*1000 + j))
			}
		}(i)
	}
	wg.Wait()
	if got := c.Now(); got != Time(15999) {
		t.Fatalf("concurrent AdvanceTo ended at %v, want 15999", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0).Add(3 * Day)
	if !t0.After(Time(0)) || t0.Before(Time(0)) {
		t.Fatal("ordering broken")
	}
	if got := t0.Sub(Time(Day)); got != 2*Day {
		t.Fatalf("Sub = %v, want 2 days", got)
	}
	if got := Max(t0, Time(5)); got != t0 {
		t.Fatalf("Max = %v", got)
	}
	if got := Min(t0, Time(5)); got != Time(5) {
		t.Fatalf("Min = %v", got)
	}
}

func TestDurationDays(t *testing.T) {
	if got := (36 * Hour).Days(); got != 1.5 {
		t.Fatalf("Days = %v, want 1.5", got)
	}
	if got := (210 * Day).Days(); got != 210 {
		t.Fatalf("Days = %v, want 210", got)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{50 * Microsecond, "50µs"},
		{3 * Millisecond, "3ms"},
		{90 * Minute, "1h30m0s"},
		{2*Day + 3*Hour, "2d3h0m0s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

// Property: Advance by any sequence of non-negative durations equals the sum.
func TestAdvanceSumProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		c := NewClock()
		var sum int64
		for _, s := range steps {
			c.Advance(Duration(s))
			sum += int64(s)
		}
		return c.Now() == Time(sum)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Max/Min ordering laws.
func TestMaxMinProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Time(a), Time(b)
		return Max(x, y) == Max(y, x) &&
			Min(x, y) == Min(y, x) &&
			Max(x, y) >= Min(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
