// Package metrics provides the counters, histograms, and latency
// percentile tracking the benchmark harness reports. Everything works on
// simulated durations, so percentiles describe device behaviour rather
// than Go runtime behaviour.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/simclock"
)

// Histogram collects simulated latency samples and reports percentiles.
// It keeps exact samples up to a cap, then switches to reservoir sampling
// with a deterministic stride so long runs stay bounded in memory.
type Histogram struct {
	samples []simclock.Duration
	count   uint64
	sum     simclock.Duration
	min     simclock.Duration
	max     simclock.Duration
	cap     int
	stride  uint64
	sorted  bool
}

// NewHistogram returns a histogram retaining at most capSamples exact
// samples (default 1<<16 when zero).
func NewHistogram(capSamples int) *Histogram {
	if capSamples <= 0 {
		capSamples = 1 << 16
	}
	return &Histogram{cap: capSamples, stride: 1, min: math.MaxInt64}
}

// Observe records one sample.
func (h *Histogram) Observe(d simclock.Duration) {
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	if h.count%h.stride != 0 {
		return
	}
	if len(h.samples) >= h.cap {
		// Thin the reservoir: keep every other sample, double the stride.
		kept := h.samples[:0]
		for i := 0; i < len(h.samples); i += 2 {
			kept = append(kept, h.samples[i])
		}
		h.samples = kept
		h.stride *= 2
	}
	h.samples = append(h.samples, d)
	h.sorted = false
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean of all observed samples.
func (h *Histogram) Mean() simclock.Duration {
	if h.count == 0 {
		return 0
	}
	return simclock.Duration(int64(h.sum) / int64(h.count))
}

// Min returns the smallest observed sample (0 when empty).
func (h *Histogram) Min() simclock.Duration {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observed sample.
func (h *Histogram) Max() simclock.Duration { return h.max }

// Percentile returns the p-th percentile (0 < p <= 100) of the retained
// samples.
func (h *Histogram) Percentile(p float64) simclock.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(math.Ceil(p/100*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// String renders a one-line summary.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}

// Table formats aligned text tables for the benchmark harness output —
// the rows the paper's tables and figures are compared against.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, hd := range t.header {
		widths[i] = len(hd)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
