package metrics

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/simclock"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(simclock.Duration(i) * simclock.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); got != simclock.Duration(50500) {
		t.Fatalf("mean = %v", got)
	}
	if got := h.Min(); got != simclock.Microsecond {
		t.Fatalf("min = %v", got)
	}
	if got := h.Max(); got != 100*simclock.Microsecond {
		t.Fatalf("max = %v", got)
	}
	if got := h.Percentile(50); got != 50*simclock.Microsecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Percentile(99); got != 99*simclock.Microsecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := h.Percentile(100); got != 100*simclock.Microsecond {
		t.Fatalf("p100 = %v", got)
	}
	if got := h.Percentile(0); got != simclock.Microsecond {
		t.Fatalf("p0 = %v", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(10)
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	if h.String() != "no samples" {
		t.Fatalf("String = %q", h.String())
	}
}

func TestHistogramThinning(t *testing.T) {
	h := NewHistogram(64)
	for i := 0; i < 10000; i++ {
		h.Observe(simclock.Duration(i))
	}
	if h.Count() != 10000 {
		t.Fatalf("count = %d", h.Count())
	}
	if len(h.samples) > 128 {
		t.Fatalf("reservoir grew to %d", len(h.samples))
	}
	// Percentiles remain approximately correct after thinning.
	p50 := float64(h.Percentile(50))
	if p50 < 3000 || p50 > 7000 {
		t.Fatalf("thinned p50 = %v, want ~5000", p50)
	}
}

func TestHistogramStringFormat(t *testing.T) {
	h := NewHistogram(0)
	h.Observe(simclock.Millisecond)
	s := h.String()
	if !strings.Contains(s, "n=1") || !strings.Contains(s, "mean=1ms") {
		t.Fatalf("String = %q", s)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("workload", "days", "winner")
	tb.AddRow("hm_0", 3.14159, "RSSD")
	tb.AddRow("websrv", 200, "RSSD")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "workload  days") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "3.14") {
		t.Fatalf("float not formatted: %q", lines[2])
	}
}

// Property: percentiles are monotonically non-decreasing in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(0)
		for _, v := range raw {
			h.Observe(simclock.Duration(v))
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return h.Percentile(pa) <= h.Percentile(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: min <= mean <= max always.
func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(0)
		for _, v := range raw {
			h.Observe(simclock.Duration(v))
		}
		return h.Min() <= h.Mean() && h.Mean() <= h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
