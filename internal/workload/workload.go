// Package workload supplies the I/O workloads the evaluation replays:
// parsers for the MSR-Cambridge and FIU block-trace formats the paper
// uses, and parameterised synthetic generators for the twelve workloads
// named in Figure 2 (hm, src, ts, wdev, rsrch, stg, usr from MSR;
// fiu-res, email, online, web, webusers from FIU).
//
// The real traces are not redistributable here, so each named workload is
// approximated by a generator matched on the characteristics that drive
// RSSD's retention behaviour: write fraction, daily write volume, working
// set size, access skew, request size, trim rate, and content
// compressibility. DESIGN.md documents this substitution.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/simclock"
)

// OpType is a trace operation type.
type OpType uint8

const (
	OpRead OpType = iota + 1
	OpWrite
	OpTrim
)

func (o OpType) String() string {
	switch o {
	case OpRead:
		return "R"
	case OpWrite:
		return "W"
	case OpTrim:
		return "T"
	default:
		return "?"
	}
}

// Record is one trace operation, normalized to page granularity.
type Record struct {
	At    simclock.Time
	Op    OpType
	LPN   uint64
	Pages int
}

// --- MSR-Cambridge CSV ----------------------------------------------------

// windowsEpochDelta is the offset between the Windows FILETIME epoch
// (1601-01-01) and Unix epoch, in 100 ns ticks.
const windowsEpochDelta = 116444736000000000

// ParseMSR reads the MSR-Cambridge CSV trace format:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// where Timestamp is a Windows FILETIME, Offset and Size are bytes. The
// first record is rebased to simulated time zero.
func ParseMSR(r io.Reader, pageSize int) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Record
	var base int64 = -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Split(text, ",")
		if len(f) < 6 {
			return nil, fmt.Errorf("workload: msr line %d: %d fields", line, len(f))
		}
		ts, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: msr line %d timestamp: %w", line, err)
		}
		offset, err := strconv.ParseUint(f[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: msr line %d offset: %w", line, err)
		}
		size, err := strconv.ParseUint(f[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: msr line %d size: %w", line, err)
		}
		var op OpType
		switch strings.ToLower(f[3]) {
		case "read":
			op = OpRead
		case "write":
			op = OpWrite
		default:
			return nil, fmt.Errorf("workload: msr line %d: unknown op %q", line, f[3])
		}
		if ts > windowsEpochDelta {
			ts -= windowsEpochDelta // FILETIME -> Unix-based ticks
		}
		if base < 0 {
			base = ts
		}
		pages := int((size + uint64(pageSize) - 1) / uint64(pageSize))
		if pages == 0 {
			pages = 1
		}
		out = append(out, Record{
			At:    simclock.Time((ts - base) * 100), // 100ns ticks -> ns
			Op:    op,
			LPN:   offset / uint64(pageSize),
			Pages: pages,
		})
	}
	return out, sc.Err()
}

// --- FIU trace format -----------------------------------------------------

// ParseFIU reads the FIU (SRCMap/IODedup) trace format:
//
//	timestamp pid process lba size_512 op major minor [md5]
//
// with timestamp in seconds (float), lba and size in 512-byte sectors, op
// "W" or "R". The first record is rebased to simulated time zero.
func ParseFIU(r io.Reader, pageSize int) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sectorsPerPage := uint64(pageSize / 512)
	var out []Record
	base := -1.0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		if len(f) < 6 {
			return nil, fmt.Errorf("workload: fiu line %d: %d fields", line, len(f))
		}
		ts, err := strconv.ParseFloat(f[0], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: fiu line %d timestamp: %w", line, err)
		}
		lba, err := strconv.ParseUint(f[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: fiu line %d lba: %w", line, err)
		}
		sectors, err := strconv.ParseUint(f[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: fiu line %d size: %w", line, err)
		}
		var op OpType
		switch strings.ToUpper(f[5]) {
		case "W":
			op = OpWrite
		case "R":
			op = OpRead
		default:
			return nil, fmt.Errorf("workload: fiu line %d: unknown op %q", line, f[5])
		}
		if base < 0 {
			base = ts
		}
		pages := int((sectors + sectorsPerPage - 1) / sectorsPerPage)
		if pages == 0 {
			pages = 1
		}
		out = append(out, Record{
			At:    simclock.Time((ts - base) * float64(simclock.Second)),
			Op:    op,
			LPN:   lba / sectorsPerPage,
			Pages: pages,
		})
	}
	return out, sc.Err()
}

// --- Synthetic named workloads ---------------------------------------------

// Profile parameterises a synthetic workload generator.
type Profile struct {
	Name string
	// Source is the trace family the profile approximates (msr or fiu).
	Source string
	// WriteFrac is the fraction of operations that are writes.
	WriteFrac float64
	// TrimFrac is the fraction of operations that are trims (file
	// deletions passed down by the filesystem).
	TrimFrac float64
	// DailyWriteGiB is the average volume written per simulated day;
	// with WorkingSetGiB it sets the stale-data production rate that
	// determines Figure 2's retention times.
	DailyWriteGiB float64
	// WorkingSetGiB bounds the LPN range the workload touches.
	WorkingSetGiB float64
	// ZipfS is the skew of the access distribution (higher = hotter).
	ZipfS float64
	// AvgReqPages is the mean request size in pages.
	AvgReqPages int
	// RandomFrac controls content compressibility: the fraction of each
	// written page filled with incompressible bytes.
	RandomFrac float64
}

// Profiles enumerates the twelve workloads of Figure 2. Parameters are
// synthetic approximations of the published MSR-Cambridge / FIU workload
// characteristics (write-dominated enterprise traces with heavy skew; the
// FIU end-user traces write less data with more compressible content).
var Profiles = []Profile{
	{Name: "hm", Source: "msr", WriteFrac: 0.64, TrimFrac: 0.010, DailyWriteGiB: 8.5, WorkingSetGiB: 2.5, ZipfS: 1.10, AvgReqPages: 2, RandomFrac: 0.35},
	{Name: "src", Source: "msr", WriteFrac: 0.75, TrimFrac: 0.008, DailyWriteGiB: 12.0, WorkingSetGiB: 4.0, ZipfS: 1.05, AvgReqPages: 4, RandomFrac: 0.40},
	{Name: "ts", Source: "msr", WriteFrac: 0.82, TrimFrac: 0.005, DailyWriteGiB: 5.0, WorkingSetGiB: 1.5, ZipfS: 1.20, AvgReqPages: 2, RandomFrac: 0.30},
	{Name: "wdev", Source: "msr", WriteFrac: 0.80, TrimFrac: 0.005, DailyWriteGiB: 3.2, WorkingSetGiB: 1.0, ZipfS: 1.15, AvgReqPages: 2, RandomFrac: 0.25},
	{Name: "rsrch", Source: "msr", WriteFrac: 0.91, TrimFrac: 0.004, DailyWriteGiB: 2.6, WorkingSetGiB: 0.8, ZipfS: 1.25, AvgReqPages: 2, RandomFrac: 0.20},
	{Name: "stg", Source: "msr", WriteFrac: 0.85, TrimFrac: 0.006, DailyWriteGiB: 6.5, WorkingSetGiB: 2.0, ZipfS: 1.12, AvgReqPages: 4, RandomFrac: 0.45},
	{Name: "usr", Source: "msr", WriteFrac: 0.60, TrimFrac: 0.012, DailyWriteGiB: 10.5, WorkingSetGiB: 3.0, ZipfS: 1.02, AvgReqPages: 3, RandomFrac: 0.35},
	{Name: "fiu-res", Source: "fiu", WriteFrac: 0.78, TrimFrac: 0.015, DailyWriteGiB: 4.2, WorkingSetGiB: 1.2, ZipfS: 1.10, AvgReqPages: 2, RandomFrac: 0.22},
	{Name: "email", Source: "fiu", WriteFrac: 0.70, TrimFrac: 0.020, DailyWriteGiB: 14.8, WorkingSetGiB: 5.0, ZipfS: 0.95, AvgReqPages: 3, RandomFrac: 0.30},
	{Name: "online", Source: "fiu", WriteFrac: 0.74, TrimFrac: 0.010, DailyWriteGiB: 7.4, WorkingSetGiB: 2.2, ZipfS: 1.08, AvgReqPages: 2, RandomFrac: 0.28},
	{Name: "web", Source: "fiu", WriteFrac: 0.55, TrimFrac: 0.010, DailyWriteGiB: 9.0, WorkingSetGiB: 3.0, ZipfS: 1.00, AvgReqPages: 4, RandomFrac: 0.50},
	{Name: "webusers", Source: "fiu", WriteFrac: 0.65, TrimFrac: 0.014, DailyWriteGiB: 11.2, WorkingSetGiB: 3.5, ZipfS: 1.04, AvgReqPages: 3, RandomFrac: 0.32},
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// ProfileNames returns all profile names in Figure 2 order.
func ProfileNames() []string {
	names := make([]string, len(Profiles))
	for i, p := range Profiles {
		names[i] = p.Name
	}
	return names
}

// Generator produces an endless, deterministic stream of Records matching
// a profile, scaled to a device of logicalPages pages.
type Generator struct {
	prof         Profile
	pageSize     int
	logicalPages uint64
	wsPages      uint64
	rng          *rand.Rand
	zipf         *rand.Zipf
	now          simclock.Time
	interOpGap   simclock.Duration
	// content buffers reused across calls
	phrase []byte
}

// NewGenerator returns a generator over a device with the given page size
// and logical capacity.
func NewGenerator(prof Profile, pageSize int, logicalPages uint64, seed int64) *Generator {
	rng := rand.New(rand.NewSource(seed))
	ws := uint64(prof.WorkingSetGiB * float64(1<<30) / float64(pageSize))
	if ws > logicalPages || ws == 0 {
		ws = logicalPages
	}
	s := prof.ZipfS
	if s <= 1.0 {
		s = 1.001 // rand.Zipf requires s > 1
	}
	// Ops per day = daily bytes / (avg req pages * page size); spread ops
	// evenly across the simulated day.
	opsPerDay := prof.DailyWriteGiB * float64(1<<30) /
		(prof.WriteFrac * float64(prof.AvgReqPages) * float64(pageSize))
	gap := simclock.Duration(float64(simclock.Day) / opsPerDay)
	return &Generator{
		prof:         prof,
		pageSize:     pageSize,
		logicalPages: logicalPages,
		wsPages:      ws,
		rng:          rng,
		zipf:         rand.NewZipf(rng, s, 1, ws-1),
		interOpGap:   gap,
		phrase:       []byte("status: nominal; next maintenance window pending approval. "),
	}
}

// Next produces the next trace record.
func (g *Generator) Next() Record {
	g.now = g.now.Add(g.interOpGap)
	pages := 1 + g.rng.Intn(2*g.prof.AvgReqPages-1) // mean ≈ AvgReqPages
	lpn := g.zipf.Uint64()
	if lpn+uint64(pages) > g.wsPages {
		lpn = g.wsPages - uint64(pages)
	}
	r := g.rng.Float64()
	var op OpType
	switch {
	case r < g.prof.TrimFrac:
		op = OpTrim
	case r < g.prof.TrimFrac+g.prof.WriteFrac:
		op = OpWrite
	default:
		op = OpRead
	}
	return Record{At: g.now, Op: op, LPN: lpn, Pages: pages}
}

// Generate produces n records.
func (g *Generator) Generate(n int) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Content synthesizes one page of write payload with the profile's
// compressibility.
func (g *Generator) Content() []byte {
	page := make([]byte, g.pageSize)
	cut := int(g.prof.RandomFrac * float64(g.pageSize))
	g.rng.Read(page[:cut])
	for i := cut; i < g.pageSize; i++ {
		page[i] = g.phrase[(i-cut)%len(g.phrase)]
	}
	return page
}

// Stats summarizes a record stream (used by tests and the harness).
type Stats struct {
	Ops         int
	Reads       int
	Writes      int
	Trims       int
	PagesWritten int
	Span        simclock.Duration
	UniqueLPNs  int
}

// Summarize computes stream statistics.
func Summarize(recs []Record) Stats {
	s := Stats{Ops: len(recs)}
	seen := map[uint64]struct{}{}
	for _, r := range recs {
		switch r.Op {
		case OpRead:
			s.Reads++
		case OpWrite:
			s.Writes++
			s.PagesWritten += r.Pages
		case OpTrim:
			s.Trims++
		}
		for p := 0; p < r.Pages; p++ {
			seen[r.LPN+uint64(p)] = struct{}{}
		}
	}
	s.UniqueLPNs = len(seen)
	if len(recs) > 1 {
		s.Span = recs[len(recs)-1].At.Sub(recs[0].At)
	}
	return s
}

// SortByTime orders records by timestamp (parsers of merged traces use it).
func SortByTime(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].At < recs[j].At })
}
