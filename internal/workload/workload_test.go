package workload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/entropy"
	"repro/internal/simclock"
)

func TestParseMSR(t *testing.T) {
	trace := strings.Join([]string{
		"128166372003061629,hm,0,Read,8192,4096,151",
		"128166372013061629,hm,0,Write,16384,8192,243",
		"128166372023061629,hm,0,Write,0,512,100",
	}, "\n")
	recs, err := ParseMSR(strings.NewReader(trace), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Op != OpRead || recs[0].LPN != 2 || recs[0].Pages != 1 {
		t.Fatalf("rec0 = %+v", recs[0])
	}
	if recs[1].Op != OpWrite || recs[1].LPN != 4 || recs[1].Pages != 2 {
		t.Fatalf("rec1 = %+v", recs[1])
	}
	// Sub-page requests round up to one page.
	if recs[2].Pages != 1 {
		t.Fatalf("rec2 = %+v", recs[2])
	}
	// Timestamps rebased: first record at 0, second 1s later (1e7 ticks).
	if recs[0].At != 0 || recs[1].At != simclock.Time(simclock.Second) {
		t.Fatalf("times = %v, %v", recs[0].At, recs[1].At)
	}
}

func TestParseMSRErrors(t *testing.T) {
	cases := []string{
		"not,enough,fields",
		"xyz,hm,0,Read,0,4096,1",
		"1,hm,0,Frobnicate,0,4096,1",
		"1,hm,0,Read,abc,4096,1",
		"1,hm,0,Read,0,abc,1",
	}
	for _, c := range cases {
		if _, err := ParseMSR(strings.NewReader(c), 4096); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestParseMSRSkipsBlanksAndComments(t *testing.T) {
	trace := "# comment\n\n128166372003061629,hm,0,Read,8192,4096,151\n"
	recs, err := ParseMSR(strings.NewReader(trace), 4096)
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
}

func TestParseFIU(t *testing.T) {
	trace := strings.Join([]string{
		"0.000000 1234 httpd 64 8 W 8 1 abcdef",
		"1.500000 1234 httpd 128 16 R 8 1 abcdef",
	}, "\n")
	recs, err := ParseFIU(strings.NewReader(trace), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	// 64 sectors / 8 sectors-per-page = LPN 8; 8 sectors = 1 page.
	if recs[0].Op != OpWrite || recs[0].LPN != 8 || recs[0].Pages != 1 {
		t.Fatalf("rec0 = %+v", recs[0])
	}
	if recs[1].At != simclock.Time(1500*simclock.Millisecond) {
		t.Fatalf("rec1 time = %v", recs[1].At)
	}
	if recs[1].Pages != 2 {
		t.Fatalf("rec1 pages = %d", recs[1].Pages)
	}
}

func TestParseFIUErrors(t *testing.T) {
	for _, c := range []string{"1 2 3", "x 1 p 64 8 W 8 1", "0 1 p x 8 W 8 1", "0 1 p 64 x W 8 1", "0 1 p 64 8 Q 8 1"} {
		if _, err := ParseFIU(strings.NewReader(c), 4096); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestAllTwelveProfilesPresent(t *testing.T) {
	names := ProfileNames()
	want := []string{"hm", "src", "ts", "wdev", "rsrch", "stg", "usr", "fiu-res", "email", "online", "web", "webusers"}
	if len(names) != len(want) {
		t.Fatalf("profiles = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("profile %d = %s, want %s", i, names[i], want[i])
		}
	}
	if _, ok := ProfileByName("email"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Fatal("bogus lookup succeeded")
	}
}

func TestGeneratorMatchesProfileMix(t *testing.T) {
	prof, _ := ProfileByName("hm")
	g := NewGenerator(prof, 4096, 1<<20, 1)
	recs := g.Generate(20000)
	s := Summarize(recs)
	gotWrite := float64(s.Writes) / float64(s.Ops)
	if math.Abs(gotWrite-prof.WriteFrac) > 0.02 {
		t.Fatalf("write frac = %v, want ~%v", gotWrite, prof.WriteFrac)
	}
	gotTrim := float64(s.Trims) / float64(s.Ops)
	if math.Abs(gotTrim-prof.TrimFrac) > 0.01 {
		t.Fatalf("trim frac = %v, want ~%v", gotTrim, prof.TrimFrac)
	}
}

func TestGeneratorTimestampsMatchDailyVolume(t *testing.T) {
	prof, _ := ProfileByName("src") // 12 GiB/day
	g := NewGenerator(prof, 4096, 1<<20, 2)
	recs := g.Generate(50000)
	s := Summarize(recs)
	days := s.Span.Days()
	if days <= 0 {
		t.Fatal("no time span")
	}
	gibPerDay := float64(s.PagesWritten) * 4096 / float64(1<<30) / days
	if gibPerDay < prof.DailyWriteGiB*0.6 || gibPerDay > prof.DailyWriteGiB*1.6 {
		t.Fatalf("daily volume = %.1f GiB/day, want ~%.1f", gibPerDay, prof.DailyWriteGiB)
	}
}

func TestGeneratorSkew(t *testing.T) {
	prof, _ := ProfileByName("rsrch") // heavily skewed
	g := NewGenerator(prof, 4096, 1<<20, 3)
	counts := map[uint64]int{}
	for i := 0; i < 20000; i++ {
		counts[g.Next().LPN]++
	}
	// The hottest page should be far hotter than the mean.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := 20000 / len(counts)
	if max < 10*mean {
		t.Fatalf("skew too flat: max=%d mean=%d", max, mean)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	prof, _ := ProfileByName("web")
	a := NewGenerator(prof, 4096, 1<<20, 42).Generate(1000)
	b := NewGenerator(prof, 4096, 1<<20, 42).Generate(1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("records diverge at %d", i)
		}
	}
}

func TestGeneratorContentCompressibility(t *testing.T) {
	low, _ := ProfileByName("rsrch") // RandomFrac 0.20
	high, _ := ProfileByName("web")  // RandomFrac 0.50
	gl := NewGenerator(low, 4096, 1<<20, 4)
	gh := NewGenerator(high, 4096, 1<<20, 4)
	el := entropy.Shannon(gl.Content())
	eh := entropy.Shannon(gh.Content())
	if el >= eh {
		t.Fatalf("entropy ordering: %v >= %v", el, eh)
	}
	if eh > 7.2 {
		t.Fatalf("web content classified as ciphertext: %v", eh)
	}
}

func TestGeneratorRespectsWorkingSet(t *testing.T) {
	prof, _ := ProfileByName("wdev") // 1 GiB working set
	wsPages := uint64(1 << 30 / 4096)
	g := NewGenerator(prof, 4096, 1<<30, 5)
	for i := 0; i < 10000; i++ {
		r := g.Next()
		if r.LPN+uint64(r.Pages) > wsPages {
			t.Fatalf("record outside working set: %+v", r)
		}
	}
}

func TestSortByTime(t *testing.T) {
	recs := []Record{{At: 5}, {At: 1}, {At: 3}}
	SortByTime(recs)
	if recs[0].At != 1 || recs[2].At != 5 {
		t.Fatalf("sorted = %+v", recs)
	}
}

// Property: generated records are always within bounds and time-ordered.
func TestGeneratorInvariantProperty(t *testing.T) {
	f := func(seed int64, profIdx uint8) bool {
		prof := Profiles[int(profIdx)%len(Profiles)]
		g := NewGenerator(prof, 4096, 1<<20, seed)
		prev := simclock.Time(-1)
		for i := 0; i < 200; i++ {
			r := g.Next()
			if r.Pages <= 0 || r.LPN+uint64(r.Pages) > 1<<20 {
				return false
			}
			if r.At <= prev {
				return false
			}
			prev = r.At
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
