package experiment

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/attack"
	"repro/internal/batch"
	"repro/internal/bufpool"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/host"
	"repro/internal/metrics"
	"repro/internal/nand"
	"repro/internal/netsim"
	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// The fleet recovery experiment is the paper's trusted post-attack
// recovery claim at fleet scale: N devices run their workloads, half are
// hit by ransomware variants, streaming detection catches the attacks —
// and then every device power-cycles and restores its pre-attack image
// CONCURRENTLY from the one storage server. Restores ride the chunked,
// codec-framed image stream through a shared-bandwidth recovery link
// model (the server NIC split per-session fair share), one device's
// recovery session is deliberately cut mid-stream to prove resume-not-
// restart, and after the restore an offload outage exercises the redial
// path while the retention backlog drains. Every restored image is
// verified page-identical against the pre-attack snapshot.

// RecoveryDeviceRow reports one device of the recovery fleet.
type RecoveryDeviceRow struct {
	Device      uint64
	Role        string // workload profile, "+<attack>" when attacked
	Attacked    bool
	Detected    bool
	FalseAlerts int

	SnapshotPages int  // pages verified against the pre-attack snapshot
	Verified      bool // every snapshot page read back identical

	RTOms             float64 // simulated restore span (power-on to restored)
	RestoredPages     int
	ZeroedPages       int
	KeptPages         int
	Chunks            int
	Resumes           int // mid-restore disconnects survived (resumed, not restarted)
	RestoreWireMiB    float64
	RestoreLogicalMiB float64
	LiteralPages      int    // streamed pages that carried a full payload
	RefPages          int    // streamed pages that arrived as hash references
	AnchorSeq         uint64 // checkpoint sequence the delta diffed against (0: full)

	BacklogPages int     // retention backlog right after restore
	Redials      uint64  // offload sessions re-established after the outage
	ResumeGap    uint64  // entries adopted from FetchHead instead of re-shipped
	DrainMs      float64 // simulated time to drain the backlog across the outage
}

// RecoverySummary aggregates the recovery fleet run.
type RecoverySummary struct {
	Devices        int
	Attacked       int
	Caught         int
	FalseAlerts    int
	AllVerified    bool
	ChainsVerified bool // every device's remote evidence chain verified end to end
	Dedup          bool // restores ran the hash-ref + checkpoint-delta path

	MeanRTOms    float64
	MaxRTOms     float64
	RestoreGBps  float64 // aggregate logical restore bytes / max RTO (concurrent restores)
	WireMiB      float64
	LogicalMiB   float64
	WireRatio    float64 // logical / wire: the codec working for recovery traffic
	Resumes      int
	PeakSessions int // most devices restoring at once (recovery link)
	TotalRedials uint64
	MaxDrainMs   float64

	// Shared-NIC QoS ledger: restores, the post-restore offload drain, and
	// any lifecycle traffic all rode one arbiter. QoS false means the run
	// used the FIFO (classless) baseline.
	QoS      bool
	NICStats [netsim.NumClasses]netsim.QoSStats

	// Dedup ledger (zero on non-dedup runs): pages by wire form across the
	// fleet, the derived hit rate, and the store-side content dedup.
	LiteralPages     int
	RefPages         int
	DedupHitRate     float64 // refs / (refs + literals) on the restore wire
	StoreUniquePages int     // distinct page contents the store holds
	StoreTotalRefs   int64   // logical page versions referencing them
	StoreHitRate     float64 // fraction of versions served by an existing copy
}

// RecoveryFleetResult is the full recovery fleet report.
type RecoveryFleetResult struct {
	Rows    []RecoveryDeviceRow
	Summary RecoverySummary
}

// recoveredDevice carries one device's state across the power cycle.
type recoveredDevice struct {
	cfg   core.Config
	nand  *nand.Device
	cut   uint64            // rollback point: log seq at the pre-attack snapshot
	want  map[uint64][]byte // expected page contents at the cut
	endAt simclock.Time     // device sim clock at power-off
	row   RecoveryDeviceRow
}

// FleetRecovery runs the fleet power-cycle recovery scenario. With dedup
// set, restores ride the content-addressed path: hash-reference chunks
// resolved from a device-side cache plus a checkpoint-anchored delta that
// streams only pages touched since the pre-attack checkpoint. nicCfg
// sizes the server's shared-NIC QoS arbiter, which both the restore
// streams and the post-restore offload drain are charged to (zero value:
// netsim defaults — strict priority, standard floors; FIFO true runs the
// classless baseline).
func FleetRecovery(s Scale, devices int, dedup bool, nicCfg netsim.Config) (*RecoveryFleetResult, error) {
	if devices <= 0 {
		devices = 8
	}
	s = fleetScale(s)
	store := remote.NewStore(remote.NewMemStore())
	srv := remote.NewServer(store, PSK)
	engine := detect.NewEngine(detectConfig(s))
	engine.Attach(store)
	nic := netsim.New(nicCfg)
	srv.NIC = nic
	link := remote.NewRecoveryLinkOn(nic) // restore class on the shared NIC

	// The mid-restore disconnect victim: an attacked device when there is
	// one (odd indexes attack), else the only device.
	chokeIdx := 0
	if devices > 1 {
		chokeIdx = 1
	}

	// Phase A — workloads + attacks + streaming detection, concurrently.
	devs := make([]*recoveredDevice, devices)
	errs := make([]error, devices)
	var wg sync.WaitGroup
	attackIdx := 0
	for i := 0; i < devices; i++ {
		var atk attack.Attack
		if i%2 == 1 {
			atk = makeAttack(fleetAttacks[attackIdx%len(fleetAttacks)])
			attackIdx++
		}
		wg.Add(1)
		go func(i int, atk attack.Attack) {
			defer wg.Done()
			devs[i], errs[i] = runRecoverySetup(s, srv, engine, uint64(i+1), i, atk)
		}(i, atk)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			return nil, fmt.Errorf("device %d setup: %w", i+1, errs[i])
		}
	}

	// Phase B/C — power-cycle all N, then reopen + concurrent streamed
	// restore + verify + outage drain. The barrier above means every
	// device starts recovering at once: this is the fleet-wide incident.
	// The outstanding-buffer gauge brackets the whole incident: it may
	// move only by the pooled pages the surviving NAND arrays hold.
	poolBase := bufpool.Outstanding()
	var residencyBase int64
	for _, d := range devs {
		residencyBase += d.nand.HeldPageBufs()
	}
	// Restore-start barrier: no device streams until every device's first
	// restore session is dialed, so the link's peak-sessions gauge reads
	// the fleet size structurally — not by scheduling luck on a loaded
	// host. The deferred once keeps a pre-dial failure from wedging the
	// survivors at the barrier.
	var restoreGate sync.WaitGroup
	restoreGate.Add(devices)
	gateOnce := make([]sync.Once, devices)
	for i := 0; i < devices; i++ {
		// The reopened device's offload drain rides the same shared NIC the
		// restore streams do — that cross-class traffic is what the QoS
		// arbiter exists to schedule.
		devs[i].cfg.NIC = nic
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer gateOnce[i].Do(restoreGate.Done)
			errs[i] = runRecoveryRestore(srv, link, devs[i], uint64(i+1), i == chokeIdx, dedup, func() {
				gateOnce[i].Do(restoreGate.Done)
				restoreGate.Wait()
			})
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			return nil, fmt.Errorf("device %d recovery: %w", i+1, errs[i])
		}
	}
	var residencyNow int64
	for _, d := range devs {
		residencyNow += d.nand.HeldPageBufs()
	}
	if drift := bufpool.Outstanding().Sub(poolBase).Total() - (residencyNow - residencyBase); drift != 0 {
		return nil, fmt.Errorf(
			"bufpool outstanding-buffer gauge drifted %+d beyond NAND residency across the fleet recovery", drift)
	}

	// Every device's remote evidence chain must still verify end to end
	// after the restore churn — dedup interning must never disturb the
	// chain the rollback is trusted on.
	chainsOK := true
	for i := 0; i < devices; i++ {
		id := uint64(i + 1)
		entries := store.Entries(id, 0, store.Head(id).NextSeq)
		if err := oplog.VerifyChain(entries, [oplog.HashSize]byte{}); err != nil {
			chainsOK = false
		}
	}

	rows := make([]RecoveryDeviceRow, devices)
	sum := RecoverySummary{
		Devices: devices, AllVerified: true, PeakSessions: link.PeakSessions(),
		ChainsVerified: chainsOK, Dedup: dedup,
		QoS: !nic.FIFO(), NICStats: nic.Stats(),
	}
	var totalRTO, maxRTO simclock.Duration
	var logicalBytes uint64
	for i, d := range devs {
		rows[i] = d.row
		r := &rows[i]
		if r.Attacked {
			sum.Attacked++
			if r.Detected {
				sum.Caught++
			}
		}
		sum.FalseAlerts += r.FalseAlerts
		if !r.Verified {
			sum.AllVerified = false
		}
		rto := simclock.Duration(r.RTOms * float64(simclock.Millisecond))
		totalRTO += rto
		if rto > maxRTO {
			maxRTO = rto
		}
		sum.WireMiB += r.RestoreWireMiB
		sum.LogicalMiB += r.RestoreLogicalMiB
		logicalBytes += uint64(r.RestoreLogicalMiB * float64(1<<20))
		sum.Resumes += r.Resumes
		sum.TotalRedials += r.Redials
		if r.DrainMs > sum.MaxDrainMs {
			sum.MaxDrainMs = r.DrainMs
		}
		sum.LiteralPages += r.LiteralPages
		sum.RefPages += r.RefPages
	}
	if total := sum.LiteralPages + sum.RefPages; total > 0 {
		sum.DedupHitRate = float64(sum.RefPages) / float64(total)
	}
	ds := store.Dedup()
	sum.StoreUniquePages = ds.UniquePages
	sum.StoreTotalRefs = ds.TotalRefs
	sum.StoreHitRate = ds.HitRate()
	sum.MeanRTOms = float64(totalRTO) / float64(devices) / 1e6
	sum.MaxRTOms = float64(maxRTO) / 1e6
	if maxRTO > 0 {
		sum.RestoreGBps = float64(logicalBytes) / maxRTO.Seconds() / 1e9
	}
	if sum.WireMiB > 0 {
		sum.WireRatio = sum.LogicalMiB / sum.WireMiB
	}
	return &RecoveryFleetResult{Rows: rows, Summary: sum}, nil
}

// runRecoverySetup drives one device up to the power cycle: benign
// replay, pre-attack snapshot + flush, then the assigned attack (or more
// benign churn, so benign devices also have real rollback work), a final
// flush, and the detection verdict.
func runRecoverySetup(s Scale, srv *remote.Server, engine *detect.Engine, deviceID uint64, idx int, atk attack.Attack) (*recoveredDevice, error) {
	client, err := remote.Loopback(srv, PSK, deviceID)
	if err != nil {
		return nil, err
	}
	defer client.Close()

	cfg := core.DefaultConfig()
	cfg.FTL = s.ftlConfig()
	cfg.DeviceID = deviceID
	cfg.OffloadHighWater = 0.50
	cfg.OffloadLowWater = 0.25
	dev := core.New(cfg, client)
	defer dev.Close()
	fs := host.NewFlatFS(dev, simclock.NewClock())
	d := &recoveredDevice{cfg: cfg}

	profName := fleetProfiles[idx%len(fleetProfiles)]
	d.row = RecoveryDeviceRow{Device: deviceID, Role: profName}
	prof, ok := workload.ProfileByName(profName)
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", profName)
	}
	replayOps := s.TraceOps / 16
	if replayOps < 250 {
		replayOps = 250
	}
	g := workload.NewGenerator(prof, s.PageSize, dev.LogicalPages(), int64(4000+idx))
	var ops []batch.Op
	var end simclock.Time
	for j := 0; j < replayOps; j++ {
		rec := g.Next()
		ops = recordBatch(g, rec, dev.LogicalPages(), ops[:0])
		if len(ops) == 0 {
			continue
		}
		done, err := submitRecord(dev, ops, rec.At)
		if err != nil {
			return nil, err
		}
		end = simclock.Max(end, done)
	}
	fs.Clock().AdvanceTo(end)

	// Pre-attack snapshot: seed the corpus, flush everything remote, and
	// remember the rollback point plus the exact page contents.
	rng := rand.New(rand.NewSource(int64(177 + idx)))
	snap, extents, err := seedAndSnapshot(fs, rng, s)
	if err != nil {
		return nil, err
	}
	if _, err := dev.OffloadNow(fs.Clock().Now()); err != nil {
		return nil, err
	}
	// Checkpoint at the snapshot: the delta restore anchors here and
	// streams only pages the attack (or churn) touched afterwards.
	if _, err := dev.CheckpointNow(fs.Clock().Now()); err != nil {
		return nil, err
	}
	d.cut = dev.Log().NextSeq()
	d.want = expectedPages(snap, extents, s.PageSize)
	d.row.SnapshotPages = len(d.want)

	if atk != nil {
		d.row.Attacked = true
		d.row.Role = profName + "+" + atk.Name()
		if _, err := atk.Run(fs, rng); err != nil {
			return nil, err
		}
	} else {
		// Benign post-snapshot churn: legitimate overwrites the drill's
		// fleet-wide rollback will discard, so benign devices restore real
		// work too (and must stay false-alert free doing it).
		at := fs.Clock().Now()
		for j := 0; j < replayOps/2; j++ {
			rec := g.Next()
			ops = recordBatch(g, rec, dev.LogicalPages(), ops[:0])
			if len(ops) == 0 {
				continue
			}
			if at, err = submitRecord(dev, ops, at); err != nil {
				return nil, err
			}
		}
		fs.Clock().AdvanceTo(at)
	}

	// Final flush so streaming detection has the full history before the
	// power cycle.
	if _, err := dev.OffloadNow(fs.Clock().Now()); err != nil {
		return nil, err
	}
	for _, a := range engine.AlertsFor(deviceID) {
		if a.AtSeq >= d.cut {
			d.row.Detected = true
		} else {
			d.row.FalseAlerts++
		}
	}
	d.nand = dev.FTL().Device() // the flash array survives the power cycle
	d.endAt = fs.Clock().Now()
	return d, nil
}

// runRecoveryRestore is one device's recovery: reopen over the surviving
// flash, stream-restore the pre-attack image (resuming through a cut link
// when choked), verify page-identical, then drain the restore backlog
// across a simulated offload outage via the redial path.
func runRecoveryRestore(srv *remote.Server, link *remote.RecoveryLink, d *recoveredDevice, deviceID uint64, choke, dedup bool, gate func()) error {
	rd, err := restoreRun{
		Server: srv, Link: link, ChunkPages: 16,
		Dedup: dedup, Delta: dedup, Choke: choke, Gate: gate,
	}.run(d.cfg, d.nand, deviceID, d.cut, d.want, d.endAt)
	if err != nil {
		return err
	}
	dev, at, rep := rd.dev, rd.at, rd.rep
	defer dev.Close()

	d.row.RTOms = float64(rep.RTO) / 1e6
	d.row.RestoredPages = rep.PagesRestored
	d.row.ZeroedPages = rep.PagesZeroed
	d.row.KeptPages = rep.PagesKept
	d.row.Chunks = rep.Chunks
	d.row.Resumes = rep.Resumes
	d.row.RestoreWireMiB = float64(rep.BytesWire) / float64(1<<20)
	d.row.RestoreLogicalMiB = float64(rep.BytesLogical) / float64(1<<20)
	d.row.LiteralPages = rep.PagesLiteral
	d.row.RefPages = rep.PagesRef
	d.row.AnchorSeq = rep.Anchor
	if dedup && rep.Anchor == 0 {
		return fmt.Errorf("dedup restore found no checkpoint anchor")
	}
	d.row.Verified = rd.verified
	d.row.BacklogPages = dev.Stats().RetainedNow

	// Simulated outage: the offload session dies with restore backlog
	// still retained; the engine must redial and drain it.
	rd.client.Close()
	drainStart := at
	at, err = dev.OffloadNow(at)
	if err != nil {
		return fmt.Errorf("backlog drain: %w", err)
	}
	d.row.DrainMs = float64(at.Sub(drainStart)) / 1e6
	st := dev.Stats()
	d.row.Redials = st.Redials
	d.row.ResumeGap = st.ResumeGap
	if st.LastOffloadError != "" {
		return fmt.Errorf("sticky offload error after drain: %s", st.LastOffloadError)
	}
	return nil
}

// RenderFleetRecovery renders the per-device table and the summary.
func RenderFleetRecovery(res *RecoveryFleetResult) string {
	tb := metrics.NewTable("device", "role", "detected", "RTO ms", "restored/zero/kept",
		"chunks", "resumes", "wire MiB", "logical MiB", "verified", "backlog", "redials", "gap", "drain ms")
	for _, r := range res.Rows {
		det := "-"
		if r.Detected {
			det = "caught"
		} else if r.Attacked {
			det = "MISSED"
		}
		ver := "OK"
		if !r.Verified {
			ver = "MISMATCH"
		}
		tb.AddRow(r.Device, r.Role, det, r.RTOms,
			fmt.Sprintf("%d/%d/%d", r.RestoredPages, r.ZeroedPages, r.KeptPages),
			r.Chunks, r.Resumes, r.RestoreWireMiB, r.RestoreLogicalMiB,
			ver, r.BacklogPages, r.Redials, r.ResumeGap, r.DrainMs)
	}
	s := res.Summary
	verified := "all verified page-identical"
	if !s.AllVerified {
		verified = "VERIFICATION FAILED"
	}
	chains := "chains verified"
	if !s.ChainsVerified {
		chains = "CHAIN VERIFICATION FAILED"
	}
	out := tb.String() + fmt.Sprintf(
		"recovery: %d devices (%d attacked, %d caught, %d false alerts), %s, %s\n"+
			"          RTO mean %.2f ms / max %.2f ms, aggregate restore %.3f GB/s over %d concurrent sessions\n"+
			"          restore wire %.2f MiB vs logical %.2f MiB (%.2fx codec), %d mid-stream resumes\n"+
			"          outage drain: %d redials, max %.2f ms backlog-drain\n",
		s.Devices, s.Attacked, s.Caught, s.FalseAlerts, verified, chains,
		s.MeanRTOms, s.MaxRTOms, s.RestoreGBps, s.PeakSessions,
		s.WireMiB, s.LogicalMiB, s.WireRatio, s.Resumes,
		s.TotalRedials, s.MaxDrainMs)
	if s.Dedup {
		out += fmt.Sprintf(
			"          dedup: %d literal + %d ref pages (%.0f%% wire hit rate), store %d unique / %d refs (%.0f%% content dedup)\n",
			s.LiteralPages, s.RefPages, s.DedupHitRate*100,
			s.StoreUniquePages, s.StoreTotalRefs, s.StoreHitRate*100)
	}
	mode := "strict-priority qos"
	if !s.QoS {
		mode = "fifo baseline"
	}
	out += "shared NIC (" + mode + "):\n" + qosStatsTable(s.NICStats).String()
	return out
}
