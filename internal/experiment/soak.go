package experiment

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/bufpool"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/host"
	"repro/internal/metrics"
	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// The soak experiment: a simulated multi-day horizon of continuous
// operation under deterministic fault injection, proving the paper's
// durability and recovery claims hold not just across one staged failure
// but across an arbitrary interleaving of them.
//
// Each wave of the soak runs concurrently on a device fleet dialed
// through a remote.Cluster:
//
//   - benign replay on most devices (the fleet workload profiles);
//   - an attack wave (the seed trio, rotating) landing on one device
//     mid-wave, with streaming detection following ownership;
//   - one device power-cycled and stream-restored THROUGH the cluster —
//     so the chaos injector's conn faults land mid-restore and the
//     restorer must resume, not restart;
//   - a retention tick expiring fully-superseded segment pages
//     (Store.DropSegmentPages) while all of the above is in flight;
//   - a seed-drawn server kill at wave start, revived at wave end, with
//     Cluster rebalancing driven by the live per-server ingest-skew
//     window (RebalanceOnIngest), not a synthetic tick.
//
// The chaos.Invariants checker runs DURING the soak, at every wave
// boundary: hash-chain contiguity per device, dedup refcount balance,
// bufpool outstanding-buffer gauge at baseline, NIC QoS conservation and
// floor guarantees, and a durability probe (no acked entry missing)
// after every injected kill. Every fault draws from chaos.Schedule, so
// any failure reproduces from the seed printed in the error.

// SoakOptions parameterizes one soak run.
type SoakOptions struct {
	Devices int
	Servers int
	Waves   int
	Seed    int64
	// Short compresses the horizon for CI: fewer opportunities at
	// higher fault rates, so the run still injects a meaningful storm.
	Short bool
}

// soakRates picks the fault-rate preset. Both horizons run hot — the
// point of the soak is fault density, and every fault class is transient
// by construction (first-touch tier faults, budgeted conn cuts), so high
// rates stress recovery without creating unreachable state.
func soakRates(short bool) chaos.Rates {
	if short {
		return chaos.Rates{ConnCut: 0.45, WireMutate: 0.30, TierErr: 0.30, TierSlow: 0.40}
	}
	return chaos.Rates{ConnCut: 0.30, WireMutate: 0.20, TierErr: 0.25, TierSlow: 0.35}
}

// SoakWave is one wave's row in the soak report.
type SoakWave struct {
	Wave          int
	KilledServer  int // -1: no kill drawn this wave
	AttackDevice  int // fleet index
	AttackName    string
	RestoreDevice int // fleet index; -1 on the first wave
	Resumes       int // mid-restore session deaths the restorer resumed over
	Moves         int // rebalance moves driven by the live ingest-skew window
	Drops         int // retention-tick segment-page drops
	Faults        int // cumulative injected faults at wave end
}

// SoakResult is the committed soak report.
type SoakResult struct {
	Seed    int64
	Devices int
	Servers int
	Waves   int
	Short   bool
	SimDays float64
	WallMs  float64
	Records int
	PageOps int

	Faults         []chaos.ClassLedger
	FaultsInjected int
	FaultClasses   int
	WedgedFaults   int
	HealP99MsMax   float64

	Kills           int
	Revives         int
	RebalanceMoves  int
	Handoffs        int
	Redials         uint64
	RedialExhausted uint64
	ResumeGap       uint64

	Restores         int
	RestoreResumes   int
	RestoresVerified int
	AttacksLaunched  int
	AttackedDevices  int
	AttacksCaught    int
	FalseAlerts      int
	RetentionDrops   int

	EntriesLost     uint64
	SegmentsLost    int
	ChainsVerified  int
	InvariantChecks int
	Violations      []string

	BufpoolDelta  int64
	HeapDeltaMB   float64
	StoreGrowthMB float64

	WaveRows     []SoakWave
	GateFailures []string
}

// soakDevice is one device's soak state across waves.
type soakDevice struct {
	id     uint64
	idx    int
	dev    *core.RSSD
	client *remote.Client
	fs     *host.FlatFS
	gen    *workload.Generator

	end simclock.Time     // device sim time high-water mark
	off simclock.Duration // wave-gap offset added to generator timestamps

	records    int
	attackedAt uint64 // first attack's start seq; ^0 when never attacked
	restores   int
	resumes    int
	nextDrop   int // retention cursor: next segment index to consider
	err        error
}

const (
	soakOutage      = simclock.Hour     // downtime before a mid-soak restore
	soakWaveGap     = 6 * simclock.Hour // sim-time between waves (full horizon)
	soakShortGap    = 2 * simclock.Hour
	soakFlushTries  = 400
	soakFlushStep   = 25 * simclock.Millisecond
	soakMinFaults   = 200
	soakShortFaults = 12
)

// Soak runs the chaos soak and evaluates its hard gates. On gate failure
// the result is still returned (for the committed report) along with an
// error naming every failed gate and the reproducing seed.
func Soak(s Scale, o SoakOptions) (*SoakResult, error) {
	s = fleetScale(s)
	if o.Devices < 2 {
		o.Devices = 2
	}
	if o.Servers < 2 {
		o.Servers = 2
	}
	if o.Waves < 3 {
		o.Waves = 3
	}
	waveGap := soakWaveGap
	minFaults := soakMinFaults
	if o.Short {
		waveGap = soakShortGap
		minFaults = soakShortFaults
	}
	sched := chaos.Schedule{Seed: o.Seed, Rates: soakRates(o.Short), MTBF: 3}
	inj := chaos.NewInjector(sched)
	iv := &chaos.Invariants{}

	// The whole stack assembles around the injector: the object store is
	// wrapped (tier faults), every dialed conn is wrapped (conn/wire
	// faults), and the wave loop draws kills.
	store := remote.NewStore(inj.WrapStore(remote.NewMemStore()))
	cluster := remote.NewCluster(store, remote.ClusterConfig{
		Servers:  o.Servers,
		PSK:      PSK,
		Server:   remote.ServerConfig{DecodeWorkers: 2},
		WrapConn: inj.WrapConn,
		// Live ingest-skew rebalancing thresholds: sensitive enough that
		// the soak's uneven per-wave ingest actually drives moves.
		SkewFactor: 1.25, SkewTicks: 1, SkewMinPeak: 2, SkewMinBytes: 4 << 10,
	})
	defer cluster.Close()

	engines := make([]*detect.Engine, o.Servers)
	for i := range engines {
		engines[i] = detect.NewEngine(detectConfig(s))
	}
	var handoffs int
	var handoffMu sync.Mutex
	cluster.OnMove = func(dev uint64, from, to int) {
		if from >= 0 && from < o.Servers && to >= 0 && to < o.Servers {
			engines[from].Handoff(dev, engines[to])
			handoffMu.Lock()
			handoffs++
			handoffMu.Unlock()
		}
	}
	store.Subscribe(func(dev uint64, seg *oplog.Segment) {
		owner, ok := cluster.Owner(dev)
		if !ok || owner < 0 || owner >= o.Servers {
			owner = 0
		}
		engines[owner].Observe(dev, seg.Entries)
	})

	devs := make([]*soakDevice, o.Devices)
	for i := range devs {
		sd, err := newSoakDevice(s, cluster, i)
		if err != nil {
			return nil, fmt.Errorf("soak setup device %d: %w", i+1, err)
		}
		devs[i] = sd
	}
	defer func() {
		for _, sd := range devs {
			if sd != nil && sd.dev != nil {
				sd.dev.Close()
			}
			if sd != nil && sd.client != nil {
				sd.client.Close()
			}
		}
	}()
	ids := make([]uint64, o.Devices)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}

	opsPerWave := s.TraceOps / (o.Devices * o.Waves)
	if opsPerWave < 60 {
		opsPerWave = 60
	}

	res := &SoakResult{Seed: o.Seed, Devices: o.Devices, Servers: o.Servers,
		Waves: o.Waves, Short: o.Short, Violations: []string{}, GateFailures: []string{}}
	var poolBase bufpool.Gauge
	var poolBaseHeld int64
	var heapBase uint64
	var storeBase int64
	start := time.Now()

	for w := 0; w < o.Waves; w++ {
		wave := SoakWave{Wave: w, KilledServer: -1, RestoreDevice: -1}

		// Restamp every device's chaos clock past the inter-wave gap, so
		// heal latencies measure recovery work, not idle horizon.
		for _, sd := range devs {
			inj.Observe(sd.id, sd.end, sd.dev.LastOffloadError() == nil)
		}

		// Seed-drawn rolling server kill: crash at wave start, revive at
		// wave end. The victim's devices heal through the placement-aware
		// redial path while the wave's full load is running.
		if victim, ok := inj.DrawKill(uint64(w), o.Servers); ok {
			if _, err := cluster.Kill(victim); err == nil {
				inj.KillStarted(victim, fleetNow(devs))
				wave.KilledServer = victim
				res.Kills++
			}
		}

		attackIdx := w % o.Devices
		restoreIdx := (w + o.Devices/2) % o.Devices
		if restoreIdx == attackIdx {
			restoreIdx = (restoreIdx + 1) % o.Devices
		}
		atkName := fleetAttacks[w%len(fleetAttacks)]
		wave.AttackDevice = attackIdx
		wave.AttackName = string(atkName)
		doRestore := w > 0 // wave 0 has no content or checkpoint to restore yet
		if doRestore {
			wave.RestoreDevice = restoreIdx
		}

		// The wave itself: replay, attack, restore, and the retention
		// tick all genuinely concurrent — attacks land mid-restore and
		// mid-expiry because nothing serializes them.
		var wg sync.WaitGroup
		for i, sd := range devs {
			wg.Add(1)
			go func(i int, sd *soakDevice) {
				defer wg.Done()
				switch {
				case doRestore && i == restoreIdx:
					sd.err = sd.powerCycleRestore(s, cluster, inj)
				case i == attackIdx:
					sd.err = sd.attackWave(s, inj, atkName, opsPerWave, w)
				default:
					sd.err = sd.replay(inj, opsPerWave)
				}
			}(i, sd)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			wave.Drops = soakRetentionTick(store, devs)
		}()
		wg.Wait()
		for _, sd := range devs {
			if sd.err != nil {
				return res, fmt.Errorf("soak wave %d device %d (reproduce with -exp soak -seed %d): %w",
					w, sd.id, o.Seed, sd.err)
			}
		}
		if doRestore {
			wave.Resumes = devs[restoreIdx].resumes
		}

		// Quiesce: every device drains its offload pipeline healthy —
		// this is where most pending faults heal (and the proof none
		// wedged the pipeline).
		var qg sync.WaitGroup
		for _, sd := range devs {
			qg.Add(1)
			go func(sd *soakDevice) {
				defer qg.Done()
				sd.err = sd.flushHealthy(inj)
			}(sd)
		}
		qg.Wait()
		for _, sd := range devs {
			if sd.err != nil {
				return res, fmt.Errorf("soak wave %d quiesce device %d (reproduce with -exp soak -seed %d): %w",
					w, sd.id, o.Seed, sd.err)
			}
		}

		if wave.KilledServer >= 0 {
			if err := cluster.Revive(wave.KilledServer); err != nil {
				return res, fmt.Errorf("revive server %d: %w", wave.KilledServer, err)
			}
			inj.KillHealed(wave.KilledServer, fleetNow(devs))
			res.Revives++
			// Durability probe right after the kill window closes: no
			// device may have lost an acked entry to the crash.
			for _, sd := range devs {
				iv.Durability(store, sd.id, sd.dev.OffloadedUpTo())
			}
		}
		wave.Moves = len(cluster.RebalanceOnIngest())
		res.RebalanceMoves += wave.Moves

		// Wave-boundary invariant sweep, while faults keep arming next
		// wave: the properties must hold at every quiesce point, not
		// just at the end.
		for _, sd := range devs {
			if iv.Chain(store, sd.id) {
				res.ChainsVerified++
			}
			iv.Durability(store, sd.id, sd.dev.OffloadedUpTo())
		}
		iv.DedupBalance(store, ids)
		for i := 0; i < o.Servers; i++ {
			name := fmt.Sprintf("server %d NIC", i)
			iv.Conservation(name, cluster.Server(i).NIC)
			iv.Floors(name, cluster.Server(i).NIC)
		}
		if w == 0 {
			// Steady-state baselines land after the first wave: sessions
			// at rest legitimately hold staged buffers, so wave 0's
			// quiesce — not process start — is the honest anchor.
			poolBase = bufpool.Outstanding()
			poolBaseHeld = nandResidency(devs)
			runtime.GC()
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			heapBase = m.HeapAlloc
			storeBase = storeFootprint(store, ids)
		} else {
			iv.PoolSteady(poolBase, nandResidency(devs)-poolBaseHeld)
		}

		wave.Faults = inj.TotalInjected()
		res.WaveRows = append(res.WaveRows, wave)

		// Advance the horizon: the gap is what makes twelve waves a
		// multi-day run in simulated time.
		for _, sd := range devs {
			sd.off += waveGap
			sd.end += simclock.Time(waveGap)
			sd.fs.Clock().AdvanceTo(sd.end)
		}
	}

	res.WallMs = float64(time.Since(start).Microseconds()) / 1000
	res.SimDays = simclock.Duration(fleetNow(devs)).Days()

	// Final audit: the zero-loss ledger, per device, exactly as the fleet
	// failover pass states it.
	for _, sd := range devs {
		st := sd.dev.Stats()
		res.Records += sd.records
		res.PageOps += int(st.HostWrites + st.HostReads + st.HostTrims)
		res.Redials += st.Redials
		res.RedialExhausted += st.RedialExhausted
		res.ResumeGap += st.ResumeGap
		res.Restores += sd.restores
		res.RestoreResumes += sd.resumes
		want := sd.dev.Log().NextSeq()
		head := store.Head(sd.id).NextSeq
		if head < want {
			res.EntriesLost += want - head
		}
		if acked, stored := st.OffloadSegments, uint64(store.DeviceStats(sd.id).Segments); acked > stored {
			res.SegmentsLost += int(acked - stored)
		}
		if sd.attackedAt != ^uint64(0) {
			res.AttackedDevices++
			hit := false
			for _, e := range engines {
				for _, a := range e.AlertsFor(sd.id) {
					if a.AtSeq >= sd.attackedAt {
						hit = true
					} else {
						res.FalseAlerts++
					}
				}
			}
			if hit {
				res.AttacksCaught++
			}
		} else {
			for _, e := range engines {
				res.FalseAlerts += len(e.AlertsFor(sd.id))
			}
		}
	}
	res.RestoresVerified = res.Restores // a failed verify errors the wave
	res.AttacksLaunched = o.Waves
	for _, sd := range devs {
		res.RetentionDrops += sd.nextDrop
	}
	handoffMu.Lock()
	res.Handoffs = handoffs
	handoffMu.Unlock()

	inj.Finish()
	led := inj.Ledger()
	res.Faults = led[:]
	res.FaultsInjected = inj.TotalInjected()
	res.FaultClasses = inj.ActiveClasses()
	for _, l := range led {
		res.WedgedFaults += l.Wedged
		if l.Healed > 0 && l.HealP99Ms > res.HealP99MsMax {
			res.HealP99MsMax = l.HealP99Ms
		}
	}

	res.BufpoolDelta = bufpool.Outstanding().Sub(poolBase).Total() - (nandResidency(devs) - poolBaseHeld)
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	res.HeapDeltaMB = (float64(m.HeapAlloc) - float64(heapBase)) / 1e6
	res.StoreGrowthMB = float64(storeFootprint(store, ids)-storeBase) / 1e6
	res.InvariantChecks, res.Violations = iv.Snapshot()

	// The hard gates. Heal latency is bounded by the simulated horizon:
	// restore-session faults heal only when the hour-long outage ends,
	// and faults armed across a low-and-slow attack wave heal on that
	// attack's own multi-day timeline — so the bound scales with the
	// horizon, and the wedge gate is what proves every fault healed.
	horizonMs := res.SimDays * 24 * 3600 * 1000
	gate := func(ok bool, format string, args ...any) {
		if !ok {
			res.GateFailures = append(res.GateFailures, fmt.Sprintf(format, args...))
		}
	}
	gate(res.FaultsInjected >= minFaults, "only %d faults injected, want >= %d", res.FaultsInjected, minFaults)
	gate(res.FaultClasses >= 3, "only %d fault classes fired, want >= 3", res.FaultClasses)
	gate(res.EntriesLost == 0, "%d acked entries lost", res.EntriesLost)
	gate(res.SegmentsLost == 0, "%d acked segments lost", res.SegmentsLost)
	gate(res.WedgedFaults == 0, "%d faults wedged (never healed)", res.WedgedFaults)
	gate(len(res.Violations) == 0, "%d invariant violations: %s", len(res.Violations), strings.Join(res.Violations, "; "))
	gate(res.HealP99MsMax <= horizonMs, "heal-latency p99 %.1f ms exceeds the %.0f ms simulated horizon", res.HealP99MsMax, horizonMs)
	gate(res.BufpoolDelta == 0, "bufpool outstanding-buffer gauge drifted %+d off baseline", res.BufpoolDelta)
	gate(res.HeapDeltaMB <= 3*res.StoreGrowthMB+64,
		"heap grew %.1f MB against %.1f MB of store growth", res.HeapDeltaMB, res.StoreGrowthMB)
	gate(res.ChainsVerified > 0, "no chains verified")
	if len(res.GateFailures) > 0 {
		return res, fmt.Errorf("soak gates failed (reproduce with -exp soak -seed %d):\n  %s",
			o.Seed, strings.Join(res.GateFailures, "\n  "))
	}
	return res, nil
}

// newSoakDevice builds one fleet device dialed through the cluster, its
// offload NIC charged to its initial owner's arbiter.
func newSoakDevice(s Scale, cluster *remote.Cluster, idx int) (*soakDevice, error) {
	id := uint64(idx + 1)
	client, err := cluster.Dial(id)
	if err != nil {
		return nil, err
	}
	cfg := soakDeviceConfig(s, cluster, id)
	dev := core.New(cfg, client)
	fs := host.NewFlatFS(dev, simclock.NewClock())
	profName := fleetProfiles[idx%len(fleetProfiles)]
	prof, ok := workload.ProfileByName(profName)
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", profName)
	}
	return &soakDevice{
		id: id, idx: idx, dev: dev, fs: fs,
		gen:        workload.NewGenerator(prof, s.PageSize, dev.LogicalPages(), int64(4000+idx)),
		attackedAt: ^uint64(0),
	}, nil
}

func soakDeviceConfig(s Scale, cluster *remote.Cluster, id uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.FTL = s.ftlConfig()
	cfg.DeviceID = id
	cfg.Dial = cluster.DialFunc(id)
	tune := remote.Profile("mem")
	cfg.OffloadHighWater = tune.OffloadHighWater
	cfg.OffloadLowWater = tune.OffloadLowWater
	cfg.OffloadQueueDepth = tune.OffloadQueueDepth
	if owner, ok := cluster.Owner(id); ok {
		if srv := cluster.Server(owner); srv != nil {
			cfg.NIC = srv.NIC
		}
	}
	return cfg
}

// fleetNow is the fleet's sim-time high-water mark — the clock kill/revive
// heal latencies are stamped in.
func fleetNow(devs []*soakDevice) simclock.Time {
	var now simclock.Time
	for _, sd := range devs {
		now = simclock.Max(now, sd.end)
	}
	return now
}

// replay drives ops benign records through the device, observing health
// at record boundaries so the injector can stamp heals in sim time.
func (sd *soakDevice) replay(inj *chaos.Injector, ops int) error {
	var batchOps []batch.Op
	for j := 0; j < ops; j++ {
		rec := sd.gen.Next()
		batchOps = recordBatch(sd.gen, rec, sd.dev.LogicalPages(), batchOps[:0])
		if len(batchOps) == 0 {
			continue
		}
		done, err := submitRecord(sd.dev, batchOps, rec.At+simclock.Time(sd.off))
		if err != nil {
			return err
		}
		sd.end = simclock.Max(sd.end, done)
		sd.records++
		if sd.records%8 == 0 {
			inj.Observe(sd.id, sd.end, sd.dev.LastOffloadError() == nil)
		}
	}
	return nil
}

// attackWave is replay with an attack landing mid-wave: half the cover
// traffic, then a fresh victim corpus and one of the seed-trio attacks,
// then the rest of the cover.
func (sd *soakDevice) attackWave(s Scale, inj *chaos.Injector, name AttackName, ops, wave int) error {
	if err := sd.replay(inj, ops/2); err != nil {
		return err
	}
	sd.fs.Clock().AdvanceTo(sd.end)
	rng := rand.New(rand.NewSource(int64(7700+wave)))
	if _, _, err := seedAndSnapshot(sd.fs, rng, s); err != nil {
		return err
	}
	if err := sd.flushHealthy(inj); err != nil {
		return err
	}
	start := sd.dev.Log().NextSeq()
	if sd.attackedAt == ^uint64(0) {
		sd.attackedAt = start
	}
	if _, err := makeAttack(name).Run(sd.fs, rng); err != nil {
		return err
	}
	sd.end = simclock.Max(sd.end, sd.fs.Clock().Now())
	return sd.replay(inj, ops-ops/2)
}

// flushHealthy drains the offload pipeline until the device reports no
// pending error and everything logged is acked durable — retrying through
// whatever faults the schedule armed, advancing sim time so redial
// backoff can expire. A device that cannot get healthy is wedged, which
// is a soak failure by definition.
func (sd *soakDevice) flushHealthy(inj *chaos.Injector) error {
	at := sd.end
	for attempt := 0; attempt < soakFlushTries; attempt++ {
		at += simclock.Time(soakFlushStep)
		done, err := sd.dev.OffloadNow(at)
		at = simclock.Max(at, done)
		// A nil OffloadNow means fully drained: zero retained pages and the
		// durable frontier at the log head. LastOffloadError is deliberately
		// NOT consulted — it is SMART-style sticky until the next durable
		// ack, and a link cut landing after the final ack would otherwise
		// wedge a perfectly healthy, fully-drained device here forever.
		if err == nil && sd.dev.OffloadedUpTo() == sd.dev.Log().NextSeq() {
			sd.end = simclock.Max(sd.end, at)
			inj.Observe(sd.id, sd.end, true)
			return nil
		}
		inj.Observe(sd.id, at, false)
	}
	return fmt.Errorf("offload pipeline never drained healthy in %d attempts (wedged): lastErr=%v acked=%d logged=%d",
		soakFlushTries, sd.dev.LastOffloadError(), sd.dev.OffloadedUpTo(), sd.dev.Log().NextSeq())
}

// powerCycleRestore quiesces the device, cuts its power, and stream-
// restores the image at the head THROUGH the cluster — so the restore
// session is subject to the same conn faults as everything else and must
// resume across injected mid-restore disconnects. Content is verified
// against pages sampled before the cycle.
func (sd *soakDevice) powerCycleRestore(s Scale, cluster *remote.Cluster, inj *chaos.Injector) error {
	if err := sd.flushHealthy(inj); err != nil {
		return err
	}
	// Checkpoint anchor for the delta stream. Transient tier faults on
	// the upload are first-touch-per-key, so a retry of the same anchor
	// always lands; the flush between attempts re-heals the session.
	cpErr := fmt.Errorf("checkpoint never attempted")
	for attempt := 0; attempt < 5 && cpErr != nil; attempt++ {
		if _, cpErr = sd.dev.CheckpointNow(sd.end); cpErr != nil {
			if err := sd.flushHealthy(inj); err != nil {
				return err
			}
		}
	}
	if cpErr != nil {
		return fmt.Errorf("checkpoint before cycle: %w", cpErr)
	}
	if err := sd.flushHealthy(inj); err != nil {
		return err
	}
	cut := sd.dev.Log().NextSeq()

	// Sample the live image: the restored device must reproduce it.
	want := map[uint64][]byte{}
	rng := rand.New(rand.NewSource(int64(sd.id)*7919 + int64(cut)))
	logical := sd.dev.LogicalPages()
	at := sd.end
	for k := 0; k < 24; k++ {
		lpn := rng.Uint64() % logical
		b, done, err := sd.dev.Read(lpn, at)
		if err != nil {
			continue // never-written page; nothing to verify
		}
		at = simclock.Max(at, done)
		want[lpn] = append([]byte(nil), b...)
	}
	sd.end = simclock.Max(sd.end, at)

	// Power cycle: flash survives, device state does not.
	nand := sd.dev.FTL().Device()
	sd.dev.Close()
	if sd.client != nil {
		sd.client.Close()
		sd.client = nil
	}

	// The restore stream resumes over injected cuts by itself, but the
	// reopen's log fetch is a single session with no resume cursor — when
	// chaos cuts THAT session, power-on retries on a fresh dial, exactly
	// like firmware would.
	var rd *restoredDevice
	var err error
	for attempt := 0; attempt < 6; attempt++ {
		rd, err = restoreRun{
			Dial:  cluster.DialFunc(sd.id),
			Link:  soakRestoreLink(cluster, sd.id),
			Dedup: true,
			Delta: true,
		}.run(soakDeviceConfig(s, cluster, sd.id), nand, sd.id, cut, want, sd.end+simclock.Time(soakOutage))
		if err == nil {
			break
		}
	}
	if err != nil {
		return fmt.Errorf("mid-soak restore: %w", err)
	}
	sd.dev, sd.client = rd.dev, rd.client
	sd.end = simclock.Max(sd.end, rd.at)
	sd.restores++
	sd.resumes += rd.rep.Resumes
	if !rd.verified {
		return fmt.Errorf("restored image diverged from the pre-cycle content")
	}
	// Fresh host view over the restored device; the clock resumes where
	// the device's timeline is.
	clk := simclock.NewClock()
	clk.AdvanceTo(sd.end)
	sd.fs = host.NewFlatFS(sd.dev, clk)
	inj.Observe(sd.id, sd.end, sd.dev.LastOffloadError() == nil)
	return nil
}

// soakRestoreLink charges the restore stream to the current owner's NIC,
// where it contends with offload and lifecycle classes under QoS.
func soakRestoreLink(cluster *remote.Cluster, id uint64) *remote.RecoveryLink {
	if owner, ok := cluster.Owner(id); ok {
		if srv := cluster.Server(owner); srv != nil && srv.NIC != nil {
			return remote.NewRecoveryLinkOn(srv.NIC)
		}
	}
	return remote.NewRecoveryLink(0, 0)
}

// soakRetentionTick is the minimal retention pass: for each device,
// consider the oldest undropped segment; when every retained page in it
// has a newer version in the store (fully superseded), expire its pages
// via DropSegmentPages. The evidence chain is never touched, and the
// newest version of every page always survives — which is why expiry is
// safe to run concurrently with a restore at the head.
func soakRetentionTick(store *remote.Store, devs []*soakDevice) int {
	drops := 0
	for _, sd := range devs {
		i := sd.nextDrop
		if i >= store.DeviceStats(sd.id).Segments {
			continue
		}
		seg, err := store.FetchSegment(sd.id, i)
		if err != nil {
			// A chaos tier fault on the segment read: retry once — the
			// first-touch fault has been consumed, the retry heals.
			if seg, err = store.FetchSegment(sd.id, i); err != nil {
				continue
			}
		}
		if len(seg.Pages) == 0 {
			sd.nextDrop++ // nothing retained; nothing to expire
			continue
		}
		superseded := true
		for p := range seg.Pages {
			v, ok := store.Version(sd.id, seg.Pages[p].LPN, ^uint64(0))
			if !ok || v.WriteSeq <= seg.Pages[p].WriteSeq {
				superseded = false
				break
			}
		}
		if !superseded {
			continue // not expired yet; reconsider next wave
		}
		if err := store.DropSegmentPages(sd.id, i); err != nil {
			continue
		}
		sd.nextDrop++
		drops++
	}
	return drops
}

// nandResidency sums the pooled page buffers the fleet's NAND arrays hold
// for live flash content — the one legitimate long-lived pool consumer the
// leak gate must net out.
func nandResidency(devs []*soakDevice) int64 {
	var n int64
	for _, sd := range devs {
		n += sd.dev.FTL().Device().HeldPageBufs()
	}
	return n
}

// storeFootprint approximates the durable store's in-memory weight for
// the heap-stability gate: the heap may grow as fast as the store's
// legitimate accumulation, and no faster.
func storeFootprint(store *remote.Store, ids []uint64) int64 {
	var n int64
	for _, id := range ids {
		st := store.DeviceStats(id)
		n += st.PageBytes + st.BytesStored + int64(st.Entries)*128
	}
	return n
}

// RenderSoak renders the soak report for the console.
func RenderSoak(r *SoakResult) string {
	ft := metrics.NewTable("class", "injected", "healed", "wedged",
		"heal_p50_ms", "heal_p99_ms", "heal_max_ms")
	for _, l := range r.Faults {
		ft.AddRow(l.Class, l.Injected, l.Healed, l.Wedged,
			fmt.Sprintf("%.1f", l.HealP50Ms), fmt.Sprintf("%.1f", l.HealP99Ms),
			fmt.Sprintf("%.1f", l.HealMaxMs))
	}
	wt := metrics.NewTable("wave", "kill", "attack", "restore", "resumes",
		"moves", "drops", "faults")
	for _, w := range r.WaveRows {
		kill, restore := "-", "-"
		if w.KilledServer >= 0 {
			kill = fmt.Sprintf("s%d", w.KilledServer)
		}
		if w.RestoreDevice >= 0 {
			restore = fmt.Sprintf("d%d", w.RestoreDevice+1)
		}
		wt.AddRow(w.Wave, kill, fmt.Sprintf("d%d:%s", w.AttackDevice+1, w.AttackName),
			restore, w.Resumes, w.Moves, w.Drops, w.Faults)
	}
	out := fmt.Sprintf("chaos soak: seed %d, %d devices / %d servers / %d waves, %.2f simulated days (%.0f ms wall)\n",
		r.Seed, r.Devices, r.Servers, r.Waves, r.SimDays, r.WallMs)
	out += ft.String()
	out += wt.String()
	out += fmt.Sprintf(
		"faults: %d injected across %d classes, %d wedged (gate: 0); heal p99 max %.1f ms\n"+
			"control plane: %d kills / %d revives, %d rebalance moves, %d detection handoffs, %d redials (%d exhausted)\n"+
			"restores: %d mid-soak, %d resumed over injected disconnects, all verified; %d retention drops\n"+
			"attacks: %d waves on %d devices, %d caught, %d false alerts\n"+
			"durability: %d entries / %d segments lost (gate: 0/0); %d chains verified; %d invariant checks, %d violations\n"+
			"memory: bufpool gauge delta %+d (gate: 0); heap %+.1f MB vs %.1f MB store growth\n",
		r.FaultsInjected, r.FaultClasses, r.WedgedFaults, r.HealP99MsMax,
		r.Kills, r.Revives, r.RebalanceMoves, r.Handoffs, r.Redials, r.RedialExhausted,
		r.Restores, r.RestoreResumes, r.RetentionDrops,
		r.AttacksLaunched, r.AttackedDevices, r.AttacksCaught, r.FalseAlerts,
		r.EntriesLost, r.SegmentsLost, r.ChainsVerified, r.InvariantChecks, len(r.Violations),
		r.BufpoolDelta, r.HeapDeltaMB, r.StoreGrowthMB)
	for _, v := range r.Violations {
		out += "  VIOLATION: " + v + "\n"
	}
	for _, g := range r.GateFailures {
		out += "  GATE FAILED: " + g + "\n"
	}
	return out
}
