package experiment

import (
	"testing"

	"repro/internal/netsim"
)

// TestFleetRecoveryScenario is the CI-sized fleet power-cycle recovery
// run: 2 devices (one attacked), concurrent restore, one deliberately cut
// recovery link, verified rollback, and an outage-drain with redial.
func TestFleetRecoveryScenario(t *testing.T) {
	res, err := FleetRecovery(SmallScale(), 2, false, netsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.Devices != 2 || s.Attacked != 1 {
		t.Fatalf("fleet shape: %+v", s)
	}
	if s.Caught != s.Attacked {
		t.Fatalf("attacks caught %d/%d", s.Caught, s.Attacked)
	}
	if s.FalseAlerts != 0 {
		t.Fatalf("false alerts: %d", s.FalseAlerts)
	}
	if !s.AllVerified {
		t.Fatal("restored images not page-identical to the pre-attack state")
	}
	if s.Resumes == 0 {
		t.Fatal("the choked device never resumed a cut stream")
	}
	if s.MaxRTOms <= 0 || s.RestoreGBps <= 0 {
		t.Fatalf("implausible restore timing: %+v", s)
	}
	if s.WireRatio <= 1 {
		t.Fatalf("restore traffic not compressed: ratio %.2f", s.WireRatio)
	}
	if s.PeakSessions != 2 {
		t.Fatalf("restores were not concurrent: peak sessions %d", s.PeakSessions)
	}
	if s.TotalRedials < uint64(s.Devices) {
		t.Fatalf("outage did not exercise redial on every device: %d", s.TotalRedials)
	}
	if !s.QoS {
		t.Fatal("default run did not use strict-priority QoS on the shared NIC")
	}
	if s.NICStats[netsim.ClassRestore].Grants == 0 || s.NICStats[netsim.ClassOffload].Grants == 0 {
		t.Fatalf("shared NIC ledger missing a traffic class: %+v", s.NICStats)
	}
	for _, r := range res.Rows {
		if r.SnapshotPages == 0 || !r.Verified {
			t.Fatalf("device %d: %+v", r.Device, r)
		}
		if r.RestoredPages == 0 {
			t.Fatalf("device %d restored nothing (no rollback work): %+v", r.Device, r)
		}
	}
}

// TestFleetRecoveryDedup runs the same scenario over the content-addressed
// restore path: hash-reference chunks, resolve cache, checkpoint-anchored
// delta — through the same choked-link resume and outage drain, with the
// same page-identical verification.
func TestFleetRecoveryDedup(t *testing.T) {
	res, err := FleetRecovery(SmallScale(), 2, true, netsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if !s.Dedup {
		t.Fatal("summary does not record dedup mode")
	}
	if !s.AllVerified {
		t.Fatal("dedup-restored images not page-identical to the pre-attack state")
	}
	if !s.ChainsVerified {
		t.Fatal("evidence chains failed verification after dedup restore")
	}
	if s.Resumes == 0 {
		t.Fatal("the choked device never resumed a cut dedup stream")
	}
	if s.LiteralPages == 0 {
		t.Fatal("dedup stream carried no literal pages")
	}
	for _, r := range res.Rows {
		if r.AnchorSeq == 0 {
			t.Fatalf("device %d restored without a checkpoint anchor: %+v", r.Device, r)
		}
		if !r.Verified {
			t.Fatalf("device %d not verified: %+v", r.Device, r)
		}
	}
}
