package experiment

import "testing"

// TestFleetRecoveryScenario is the CI-sized fleet power-cycle recovery
// run: 2 devices (one attacked), concurrent restore, one deliberately cut
// recovery link, verified rollback, and an outage-drain with redial.
func TestFleetRecoveryScenario(t *testing.T) {
	res, err := FleetRecovery(SmallScale(), 2)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.Devices != 2 || s.Attacked != 1 {
		t.Fatalf("fleet shape: %+v", s)
	}
	if s.Caught != s.Attacked {
		t.Fatalf("attacks caught %d/%d", s.Caught, s.Attacked)
	}
	if s.FalseAlerts != 0 {
		t.Fatalf("false alerts: %d", s.FalseAlerts)
	}
	if !s.AllVerified {
		t.Fatal("restored images not page-identical to the pre-attack state")
	}
	if s.Resumes == 0 {
		t.Fatal("the choked device never resumed a cut stream")
	}
	if s.MaxRTOms <= 0 || s.RestoreGBps <= 0 {
		t.Fatalf("implausible restore timing: %+v", s)
	}
	if s.WireRatio <= 1 {
		t.Fatalf("restore traffic not compressed: ratio %.2f", s.WireRatio)
	}
	if s.PeakSessions != 2 {
		t.Fatalf("restores were not concurrent: peak sessions %d", s.PeakSessions)
	}
	if s.TotalRedials < uint64(s.Devices) {
		t.Fatalf("outage did not exercise redial on every device: %d", s.TotalRedials)
	}
	for _, r := range res.Rows {
		if r.SnapshotPages == 0 || !r.Verified {
			t.Fatalf("device %d: %+v", r.Device, r)
		}
		if r.RestoredPages == 0 {
			t.Fatalf("device %d restored nothing (no rollback work): %+v", r.Device, r)
		}
	}
}
