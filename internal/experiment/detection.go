package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// DetectionRow measures how quickly the offloaded detection pipeline
// catches one attack variant.
type DetectionRow struct {
	Attack       string
	Detected     bool
	AlertSeq     uint64
	OpsToAlert   uint64            // log entries between attack start and alert
	TimeToAlert  simclock.Duration // simulated time between attack start and alert
	Reason       string
	FalsePositives int // alerts raised before the attack started
}

// detectionAttacks extends the paper's four attacks with two harder
// variants: a zero-writing wiper (entropy-blind) and a first-page-only
// partial encryptor (volume-blind).
func detectionAttacks() []attack.Attack {
	key := [32]byte{0xD7}
	return []attack.Attack{
		&attack.Encryptor{Key: key},
		&attack.GCAttack{Key: key, Rounds: 1},
		// Maximum stealth: one file at a time, a day apart, buried in
		// ten benign operations per malicious one. Rate/window detectors
		// cannot see this; only the cumulative victim counter can.
		&attack.TimingAttack{Key: key, FilesPerBurst: 1, BurstInterval: 24 * simclock.Hour, CoverOpsPerOp: 10},
		&attack.TrimmingAttack{Key: key},
		&attack.Wiper{},
		&attack.PartialEncryptor{Key: key},
	}
}

// detectConfig adapts the default detector to the experiment corpus: the
// cumulative victim threshold scales with corpus size (it is a fraction of
// the protected data, not an absolute count).
func detectConfig(s Scale) detect.Config {
	cfg := detect.DefaultConfig()
	cfg.PageSize = s.PageSize
	cfg.CumulativeVictims = s.SeedFiles
	return cfg
}

// DetectionLatency runs each attack variant against an RSSD with the
// detection pipeline attached, measuring coverage and latency.
func DetectionLatency(s Scale) ([]DetectionRow, error) {
	cfg := detectConfig(s)
	var rows []DetectionRow
	for _, atk := range detectionAttacks() {
		row, err := detectOne(s, atk, cfg)
		if err != nil {
			return nil, fmt.Errorf("detection %s: %w", atk.Name(), err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationVariant names a detection configuration with parts disabled.
type AblationVariant struct {
	Name string
	Cfg  detect.Config
}

// DetectionAblations builds the detector-ablation variants: each disables
// one mechanism DESIGN.md calls out, to show it is load-bearing.
func DetectionAblations(s Scale) []AblationVariant {
	base := detectConfig(s)

	windowOnly := base
	windowOnly.CumulativeVictims = 1 << 40 // cumulative detector off

	cumulativeOnly := base
	cumulativeOnly.Threshold = 1.1 // window detector can never fire

	noZero := base
	noZero.PageSize = 0 // zero-wipe signal off
	noZero.WeightZeroWipe = 0

	return []AblationVariant{
		{"full", base},
		{"window-only", windowOnly},
		{"cumulative-only", cumulativeOnly},
		{"no-zero-signal", noZero},
	}
}

// AblationCell records one (variant, attack) detection outcome.
type AblationCell struct {
	Variant  string
	Attack   string
	Detected bool
}

// DetectionAblation runs every attack against every detector variant.
func DetectionAblation(s Scale) ([]AblationCell, error) {
	var out []AblationCell
	for _, v := range DetectionAblations(s) {
		for _, atk := range detectionAttacks() {
			row, err := detectOne(s, atk, v.Cfg)
			if err != nil {
				return nil, fmt.Errorf("ablation %s/%s: %w", v.Name, atk.Name(), err)
			}
			out = append(out, AblationCell{Variant: v.Name, Attack: atk.Name(), Detected: row.Detected})
		}
	}
	return out, nil
}

// RenderDetectionAblation renders the ablation matrix: variants as rows,
// attacks as columns.
func RenderDetectionAblation(cells []AblationCell) string {
	attacks := []string{}
	seen := map[string]bool{}
	for _, c := range cells {
		if !seen[c.Attack] {
			seen[c.Attack] = true
			attacks = append(attacks, c.Attack)
		}
	}
	header := append([]string{"detector variant"}, attacks...)
	tb := metrics.NewTable(header...)
	byVariant := map[string]map[string]bool{}
	order := []string{}
	for _, c := range cells {
		if byVariant[c.Variant] == nil {
			byVariant[c.Variant] = map[string]bool{}
			order = append(order, c.Variant)
		}
		byVariant[c.Variant][c.Attack] = c.Detected
	}
	for _, v := range order {
		row := []any{v}
		for _, a := range attacks {
			if byVariant[v][a] {
				row = append(row, "caught")
			} else {
				row = append(row, "MISSED")
			}
		}
		tb.AddRow(row...)
	}
	return tb.String()
}

func detectOne(s Scale, atk attack.Attack, detCfg detect.Config) (DetectionRow, error) {
	row := DetectionRow{Attack: atk.Name()}
	rig, err := NewRSSDRig(s)
	if err != nil {
		return row, err
	}
	defer rig.Client.Close()

	engine := detect.NewEngine(detCfg)
	engine.Attach(rig.Store)

	rng := rand.New(rand.NewSource(41))
	if _, _, err := seedAndSnapshot(rig.FS, rng, s); err != nil {
		return row, err
	}
	if err := attack.RunBenign(rig.FS, rng, 150, simclock.Minute); err != nil {
		return row, err
	}
	// Flush pre-attack history so any alert on it counts as a false
	// positive, not as attack detection.
	if _, err := rig.Dev.OffloadNow(rig.FS.Clock().Now()); err != nil {
		return row, err
	}
	row.FalsePositives = len(engine.Alerts())

	startSeq := rig.Dev.Log().NextSeq()
	startTime := rig.FS.Clock().Now()
	if _, err := atk.Run(rig.FS, rng); err != nil {
		return row, err
	}
	if _, err := rig.Dev.OffloadNow(rig.FS.Clock().Now()); err != nil {
		return row, err
	}
	alerts := engine.Alerts()
	if len(alerts) <= row.FalsePositives {
		return row, nil // undetected
	}
	a := alerts[row.FalsePositives]
	row.Detected = true
	row.AlertSeq = a.AtSeq
	if a.AtSeq > startSeq {
		row.OpsToAlert = a.AtSeq - startSeq
	}
	row.TimeToAlert = a.At.Sub(startTime)
	if len(a.Reasons) > 0 {
		row.Reason = a.Reasons[0]
	}
	return row, nil
}

// RenderDetection renders the detection-latency table.
func RenderDetection(rows []DetectionRow) string {
	tb := metrics.NewTable("attack", "detected", "ops to alert", "sim time to alert", "false pos", "reason")
	for _, r := range rows {
		tta := "-"
		if r.Detected {
			tta = r.TimeToAlert.String()
		}
		tb.AddRow(r.Attack, r.Detected, r.OpsToAlert, tta, r.FalsePositives, r.Reason)
	}
	return tb.String()
}
