package experiment

import (
	"testing"

	"repro/internal/bufpool"
	"repro/internal/nvmeoe"
)

// TestDatapathExperiment runs the CI-sized datapath benchmark end to end:
// both pipeline variants must ship segments, and the codec hot loops must
// be allocation-free in steady state — the acceptance bar for the pooled
// datapath.
func TestDatapathExperiment(t *testing.T) {
	res, err := Datapath(SmallScale(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 2 {
		t.Fatalf("want 2 variants, got %d", len(res.Variants))
	}
	for _, v := range res.Variants {
		if v.Segments == 0 || v.SegsPerSec <= 0 {
			t.Fatalf("variant %q shipped nothing: %+v", v.Variant, v)
		}
		if v.WireMB <= 0 {
			t.Fatalf("variant %q recorded no wire bytes", v.Variant)
		}
	}
	if w := res.Variants[0]; w.Variant != "workers" || w.EncodeMs == 0 {
		t.Fatalf("worker variant missing encode accounting: %+v", w)
	}
	byLoop := map[string]DatapathAllocRow{}
	for _, a := range res.Allocs {
		byLoop[a.Loop] = a
	}
	for _, name := range []string{"encode", "decode", "ingest"} {
		if _, ok := byLoop[name]; !ok {
			t.Fatalf("missing alloc row %q", name)
		}
	}
	if bufpool.RaceEnabled {
		t.Log("race build: skipping zero-alloc assertions (instrumentation allocates)")
		return
	}
	if a := byLoop["encode"]; a.AllocsPerOp != 0 {
		t.Errorf("encode hot loop: %v allocs/op, want 0", a.AllocsPerOp)
	}
	// The decode loop's only tolerated residue is compress/flate's
	// per-block dynamic-Huffman table rebuild; our pooling must not add
	// to it. A regression in the pooled reader/buffer path would blow
	// well past this bound (it used to be hundreds of allocs).
	if a := byLoop["decode"]; a.AllocsPerOp > 20 {
		t.Errorf("decode hot loop: %v allocs/op, want <= 20 (flate table residue only)", a.AllocsPerOp)
	}
}

func BenchmarkDatapathEncodeLoop(b *testing.B) {
	s := SmallScale()
	seg := datapathSegment(s, 16)
	logical := seg.MarshaledSize()
	mbuf := bufpool.Get(logical)
	defer mbuf.Release()
	bbuf := bufpool.Get(logical + 16)
	defer bbuf.Release()
	b.ReportAllocs()
	b.SetBytes(int64(logical))
	for i := 0; i < b.N; i++ {
		raw := seg.AppendMarshal(mbuf.B[:0])
		bbuf.B = nvmeoe.AppendSegmentBlob(bbuf.B[:0], raw)
	}
}
