package experiment

import (
	"testing"

	"repro/internal/bufpool"
	"repro/internal/nvmeoe"
)

// TestDatapathExperiment runs the CI-sized datapath benchmark end to end:
// both pipeline variants must ship segments, and the codec hot loops must
// be allocation-free in steady state — the acceptance bar for the pooled
// datapath.
func TestDatapathExperiment(t *testing.T) {
	res, err := Datapath(SmallScale(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 2 {
		t.Fatalf("want 2 variants, got %d", len(res.Variants))
	}
	for _, v := range res.Variants {
		if v.Segments == 0 || v.SegsPerSec <= 0 {
			t.Fatalf("variant %q shipped nothing: %+v", v.Variant, v)
		}
		if v.WireMB <= 0 {
			t.Fatalf("variant %q recorded no wire bytes", v.Variant)
		}
	}
	if w := res.Variants[0]; w.Variant != "workers" || w.EncodeMs == 0 {
		t.Fatalf("worker variant missing encode accounting: %+v", w)
	}
	byLoop := map[string]DatapathAllocRow{}
	for _, a := range res.Allocs {
		byLoop[a.Loop] = a
	}
	for _, name := range []string{"encode", "decode", "ingest"} {
		if _, ok := byLoop[name]; !ok {
			t.Fatalf("missing alloc row %q", name)
		}
	}
	if bufpool.RaceEnabled {
		t.Log("race build: skipping zero-alloc assertions (instrumentation allocates)")
		return
	}
	if a := byLoop["encode"]; a.AllocsPerOp != 0 {
		t.Errorf("encode hot loop: %v allocs/op, want 0", a.AllocsPerOp)
	}
	// Since the in-house inflater replaced compress/flate on the decode
	// side, there is no per-block table residue left to tolerate: steady
	// state decode is allocation-free, same as encode.
	if a := byLoop["decode"]; a.AllocsPerOp != 0 {
		t.Errorf("decode hot loop: %v allocs/op, want 0", a.AllocsPerOp)
	}
	if res.Ingest == nil || res.Ingest.DecodeAllocsPerOp != 0 {
		t.Errorf("ingest decode loop: %+v, want 0 allocs/op", res.Ingest)
	}
}

// TestIngestExperiment runs the CI-sized server-ingest benchmark at the
// acceptance shape — 64 devices, so the device-to-lane affinity can fill
// the 32-lane pool: every pushed segment must land error-free, the
// per-stage ledger must have real time in it, and the deterministic
// NIC-vs-decode-lane model must show the lane holding >= 0.9 of NIC line
// rate — the wire-speed gate. (Fewer devices than lanes honestly reports
// lower saturation: affinity caps a device at one lane.)
func TestIngestExperiment(t *testing.T) {
	res, err := Ingest(SmallScale(), 64)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Measured
	if want := uint64(m.Devices * m.SegsPerDevice); m.Segments != want || m.Errors != 0 {
		t.Fatalf("ingested %d segments (%d errors), want %d clean", m.Segments, m.Errors, want)
	}
	if m.WireMB <= 0 || m.LogicalMB <= m.WireMB {
		t.Fatalf("wire/logical MB %.3f/%.3f: blobs should be deflate-framed", m.WireMB, m.LogicalMB)
	}
	if m.DecodeMs <= 0 {
		t.Fatal("decode stage ledgered no time")
	}
	if m.DetectMs <= 0 {
		t.Fatal("detection stage ledgered no time")
	}
	if m.Alerts != 0 {
		t.Fatalf("benign ingest raised %d detection alerts", m.Alerts)
	}
	md := res.Model
	if md.Saturation < 0.9 {
		t.Fatalf("model saturation %.3f, want >= 0.9 (decode lane is the bottleneck)", md.Saturation)
	}
	if md.Saturation > 1.0001 {
		t.Fatalf("model saturation %.3f > 1: wire throughput cannot beat the NIC", md.Saturation)
	}
	if md.QueuePeak < 1 {
		t.Fatal("model recorded no lane occupancy")
	}
	if bufpool.RaceEnabled {
		return
	}
	if res.DecodeAllocsPerOp != 0 {
		t.Errorf("ingest decode loop: %v allocs/op, want 0", res.DecodeAllocsPerOp)
	}
}

func BenchmarkDatapathEncodeLoop(b *testing.B) {
	s := SmallScale()
	seg := datapathSegment(s, 16)
	logical := seg.MarshaledSize()
	mbuf := bufpool.Get(logical)
	defer mbuf.Release()
	bbuf := bufpool.Get(logical + 16)
	defer bbuf.Release()
	b.ReportAllocs()
	b.SetBytes(int64(logical))
	for i := 0; i < b.N; i++ {
		raw := seg.AppendMarshal(mbuf.B[:0])
		bbuf.B = nvmeoe.AppendSegmentBlob(bbuf.B[:0], raw)
	}
}
