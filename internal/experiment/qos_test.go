package experiment

import (
	"testing"

	"repro/internal/netsim"
)

// TestQoSScenario is the CI-sized shared-NIC QoS run: a restore storm
// contending with steady-state offload and lifecycle lanes, measured
// uncontended, under strict-priority QoS, and under the FIFO baseline.
// QoSRun enforces its own gates (restore P99 bound, floors honored,
// line-rate conservation, FIFO no better than QoS) and returns an error
// when any fails, so the test mostly asserts shape.
func TestQoSScenario(t *testing.T) {
	res, err := QoSRun(SmallScale(), 4, netsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Devices != 4 {
		t.Fatalf("device count: %+v", res)
	}
	if res.QoS.Restorers == 0 || res.QoS.Workers == 0 || res.QoS.Lifecycle == 0 {
		t.Fatalf("qos cohort missing a traffic source: %+v", res.QoS)
	}
	if !res.Uncontended.Verified || !res.QoS.Verified || !res.FIFO.Verified {
		t.Fatal("a cohort restored images that were not page-identical")
	}
	if res.P99Ratio > 2.0 {
		t.Fatalf("contended restore P99 %.2fx uncontended exceeds the 2x gate", res.P99Ratio)
	}
	if res.QoS.Classes[netsim.ClassRestore].Throttled == 0 {
		t.Fatal("qos cohort restores were never priced under cross-class contention")
	}
	if res.OffloadMinMBps < res.OffloadFloorMBps*0.999 {
		t.Fatalf("offload dipped below its floor: min %.1f < floor %.1f MBps",
			res.OffloadMinMBps, res.OffloadFloorMBps)
	}
}
