package experiment

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/ftl"
	"repro/internal/host"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// PerfRow compares plain-SSD and RSSD latency for one workload — the
// paper's "<1% storage performance overhead" claim (P1).
type PerfRow struct {
	Workload      string
	PlainMeanW    simclock.Duration
	RSSDMeanW     simclock.Duration
	PlainP99W     simclock.Duration
	RSSDP99W      simclock.Duration
	WriteOverheadPct float64
	PlainMeanR    simclock.Duration
	RSSDMeanR     simclock.Duration
	ReadOverheadPct float64
}

// PerfOverhead replays identical arrival-timed traces against a plain FTL
// and an RSSD (with live offload) and compares request latencies.
func PerfOverhead(s Scale, workloads []string) ([]PerfRow, error) {
	var rows []PerfRow
	for _, name := range workloads {
		prof, ok := workload.ProfileByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
		row, err := perfOne(s, prof)
		if err != nil {
			return nil, fmt.Errorf("perf %s: %w", name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// perfDevice abstracts the two systems for identical replay: any
// batch-capable block device (plain FTL or RSSD).
type perfDevice interface {
	host.BatchDevice
}

func perfOne(s Scale, prof workload.Profile) (PerfRow, error) {
	run := func(dev perfDevice) (*metrics.Histogram, *metrics.Histogram, error) {
		// An identical generator seed gives both systems the same ops
		// and the same content bytes.
		g := workload.NewGenerator(prof, s.PageSize, dev.LogicalPages(), 23)
		hw := metrics.NewHistogram(0)
		hr := metrics.NewHistogram(0)
		var ops []batch.Op
		for i := 0; i < s.TraceOps; i++ {
			rec := g.Next()
			// Each record is one submission batch, dispatched at its trace
			// arrival time: a deep multi-queue datapath accepts requests as
			// they arrive, so queueing shows up as chip-level contention
			// inside the device model rather than head-of-line blocking at
			// the record level.
			ops = recordBatch(g, rec, dev.LogicalPages(), ops[:0])
			done, err := submitRecord(dev, ops, rec.At)
			if err != nil {
				return nil, nil, err
			}
			lat := done.Sub(rec.At) // latency from arrival to completion
			switch rec.Op {
			case workload.OpWrite:
				hw.Observe(lat)
			case workload.OpRead:
				hr.Observe(lat)
			}
		}
		return hw, hr, nil
	}

	plain := ftl.New(s.ftlConfig(), nil)
	pw, pr, err := run(plain)
	if err != nil {
		return PerfRow{}, fmt.Errorf("plain: %w", err)
	}

	rig, err := NewRSSDRig(s)
	if err != nil {
		return PerfRow{}, err
	}
	defer rig.Client.Close()
	rw, rr, err := run(rig.Dev)
	if err != nil {
		return PerfRow{}, fmt.Errorf("rssd: %w", err)
	}

	row := PerfRow{
		Workload:   prof.Name,
		PlainMeanW: pw.Mean(), RSSDMeanW: rw.Mean(),
		PlainP99W: pw.Percentile(99), RSSDP99W: rw.Percentile(99),
		PlainMeanR: pr.Mean(), RSSDMeanR: rr.Mean(),
	}
	if pw.Mean() > 0 {
		row.WriteOverheadPct = 100 * (float64(rw.Mean()) - float64(pw.Mean())) / float64(pw.Mean())
	}
	if pr.Mean() > 0 {
		row.ReadOverheadPct = 100 * (float64(rr.Mean()) - float64(pr.Mean())) / float64(pr.Mean())
	}
	return row, nil
}

// RenderPerf renders the performance-overhead comparison.
func RenderPerf(rows []PerfRow) string {
	tb := metrics.NewTable("workload", "write mean (plain)", "write mean (RSSD)", "write p99 (plain)", "write p99 (RSSD)", "write ovh %", "read ovh %")
	for _, r := range rows {
		tb.AddRow(r.Workload,
			r.PlainMeanW.String(), r.RSSDMeanW.String(),
			r.PlainP99W.String(), r.RSSDP99W.String(),
			r.WriteOverheadPct, r.ReadOverheadPct)
	}
	return tb.String()
}

// LifetimeRow compares write amplification — the device-lifetime claim (P2).
type LifetimeRow struct {
	Workload   string
	PlainWAF   float64
	RSSDWAF    float64
	PlainErases uint64
	RSSDErases  uint64
	WAFIncreasePct float64
}

// LifetimeWAF replays identical traces and compares write amplification
// and erase counts between plain SSD and RSSD.
func LifetimeWAF(s Scale, workloads []string) ([]LifetimeRow, error) {
	var rows []LifetimeRow
	for _, name := range workloads {
		prof, ok := workload.ProfileByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
		plain := ftl.New(s.ftlConfig(), nil)
		if err := replayAll(plain, prof, s, 31); err != nil {
			return nil, fmt.Errorf("lifetime plain %s: %w", name, err)
		}
		rig, err := NewRSSDRig(s)
		if err != nil {
			return nil, err
		}
		if err := replayAll(rig.Dev, prof, s, 31); err != nil {
			rig.Client.Close()
			return nil, fmt.Errorf("lifetime rssd %s: %w", name, err)
		}
		row := LifetimeRow{
			Workload:    name,
			PlainWAF:    plain.WAF(),
			RSSDWAF:     rig.Dev.FTL().WAF(),
			PlainErases: plain.Device().Stats().Erases,
			RSSDErases:  rig.Dev.FTL().Device().Stats().Erases,
		}
		if row.PlainWAF > 0 {
			row.WAFIncreasePct = 100 * (row.RSSDWAF - row.PlainWAF) / row.PlainWAF
		}
		rig.Client.Close()
		rows = append(rows, row)
	}
	return rows, nil
}

// replayAll pushes a full generated trace through any perfDevice, one
// submission batch per trace record, dispatched at trace arrival time.
func replayAll(dev perfDevice, prof workload.Profile, s Scale, seed int64) error {
	g := workload.NewGenerator(prof, s.PageSize, dev.LogicalPages(), seed)
	var ops []batch.Op
	for i := 0; i < s.TraceOps; i++ {
		rec := g.Next()
		ops = recordBatch(g, rec, dev.LogicalPages(), ops[:0])
		if _, err := submitRecord(dev, ops, rec.At); err != nil {
			return err
		}
	}
	return nil
}

// RenderLifetime renders the WAF comparison.
func RenderLifetime(rows []LifetimeRow) string {
	tb := metrics.NewTable("workload", "WAF (plain)", "WAF (RSSD)", "erases (plain)", "erases (RSSD)", "WAF increase %")
	for _, r := range rows {
		tb.AddRow(r.Workload, r.PlainWAF, r.RSSDWAF, r.PlainErases, r.RSSDErases, r.WAFIncreasePct)
	}
	return tb.String()
}
