package experiment

import (
	"fmt"
	"os"

	"repro/internal/metrics"
	"repro/internal/remote"
)

// The retention experiment is the paper's local-server vs cloud
// comparison: the same fleet workload (benign replay plus the attack mix,
// so detection coverage is re-proved on every tier) runs against each
// storage-tier backend, and the tiers are compared on what they differ in —
// retention capacity against a fixed budget, segment ack latency including
// the tier's own service time, and modeled dollar cost. Segment blobs
// travel and land codec-compressed, so every tier's at-rest footprint is
// the wire footprint; the capacity numbers below are sized with the
// measured, not estimated, compression.

// RetentionBackends are the tiers the experiment compares by default:
// free local tiers (in-memory, storage-server filesystem) and the modeled
// S3 cloud tier.
var RetentionBackends = []string{"mem", "dir", "s3sim"}

// RetentionTierRow reports one storage tier's run of the fleet workload.
type RetentionTierRow struct {
	Backend     string
	Devices     int
	Attacked    int
	Caught      int
	FalseAlerts int

	Segments     uint64
	BytesLogical int64   // uncompressed segment bytes produced by the fleet
	BytesStored  int64   // what the tier actually holds (codec-compressed)
	WireRatio    float64 // logical / stored

	// MeanAckUs is device-side seal-to-ack latency. Since the server began
	// threading the tier's modeled Put service time into segment acks, it
	// reflects the full durability cost on this tier — encode stage, link
	// transfer, AND backend service — as the device itself observes it.
	MeanAckUs  float64
	TierPutMs  float64 // tier-modeled mean Put service per segment (component of MeanAckUs)
	TotalAckMs float64 // MeanAckUs in ms: what durability costs on this tier
	// QueueDepth and the watermarks record the tier profile the fleet ran
	// with: high-latency tiers stage deeper and drain earlier.
	QueueDepth int
	HighWater  float64
	LowWater   float64

	// StoredGiBPerDay is the fleet's at-rest production rate; BudgetDays
	// how long the nominal 1 TiB local-server budget lasts at that rate.
	// The cloud tier is elastic — BudgetDays is capped at the plot horizon
	// and the cost fields below are the real constraint.
	StoredGiBPerDay float64
	BudgetDays      float64

	RequestUSD      float64 // accrued per-request cost of the run
	StorageUSDMonth float64 // holding the run's footprint at rest for a month
	MultipartParts  uint64  // parts shipped by multipart uploads (s3sim)

	// PendingListKeys is the eventual-consistency backlog right after the
	// run (keys stored but absent from LIST); ReloadOK reports that a
	// settled reload still rebuilt every device's full chain head.
	PendingListKeys int
	ReloadOK        bool
}

// Retention replays the fleet workload against each backend tier.
func Retention(s Scale, devices int, backends []string) ([]RetentionTierRow, error) {
	if len(backends) == 0 {
		backends = RetentionBackends
	}
	s = fleetScale(s)
	var rows []RetentionTierRow
	for _, name := range backends {
		row, err := retentionTier(s, devices, name)
		if err != nil {
			return nil, fmt.Errorf("retention %s: %w", name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func retentionTier(s Scale, devices int, backend string) (RetentionTierRow, error) {
	row := RetentionTierRow{Backend: backend, Devices: devices}
	opts := remote.BackendOptions{}
	if backend == "dir" {
		dir, err := os.MkdirTemp("", "rssd-retention-dir-")
		if err != nil {
			return row, err
		}
		defer os.RemoveAll(dir)
		opts.Dir = dir
	}
	// Scale the cloud model's part-size threshold to the experiment's
	// segment sizes (as fleetScale scales the device): S3's real 8 MiB
	// floor would never split a simulated segment, and the multipart cost
	// path is part of what this experiment exercises.
	s3cfg := remote.DefaultS3Config()
	s3cfg.PartSize = 64 << 10
	opts.S3 = &s3cfg
	blobs, err := remote.OpenBackend(backend, opts)
	if err != nil {
		return row, err
	}
	store := remote.NewStore(blobs)
	tune := remote.Profile(backend)
	row.QueueDepth = tune.OffloadQueueDepth
	row.HighWater = tune.OffloadHighWater
	row.LowWater = tune.OffloadLowWater
	pass, err := runFleetOn(s, devices, fleetOpts{withAttacks: true, tune: tune}, store)
	if err != nil {
		return row, err
	}

	var ackSum float64
	for _, r := range pass.rows {
		if r.Attacked {
			row.Attacked++
			if r.Detected {
				row.Caught++
			}
		}
		row.FalseAlerts += r.FalseAlerts
		ackSum += r.AckLatUs * float64(r.Segments)
		ds := store.DeviceStats(r.Device)
		row.Segments += uint64(ds.Segments)
		row.BytesLogical += ds.BytesLogical
		row.BytesStored += ds.BytesStored
		if days := r.SimMs / 1000 / 86400; days > 0 {
			row.StoredGiBPerDay += float64(ds.BytesStored) / float64(1<<30) / days
		}
	}
	if row.Segments > 0 {
		row.MeanAckUs = ackSum / float64(row.Segments)
	}
	if row.BytesStored > 0 {
		row.WireRatio = float64(row.BytesLogical) / float64(row.BytesStored)
	}
	if row.StoredGiBPerDay > 0 {
		row.BudgetDays = float64(nominalRemoteBytes) / float64(1<<30) / row.StoredGiBPerDay
	}
	if row.BudgetDays > retentionHorizonDay {
		row.BudgetDays = retentionHorizonDay
	}

	// Tier-modeled service time and cost (free local tiers stay zero).
	ts := store.TierStats()
	if ts.Puts > 0 {
		row.TierPutMs = float64(ts.PutLatency) / float64(ts.Puts) / 1e6
	}
	row.RequestUSD = ts.RequestUSD
	row.MultipartParts = ts.Parts
	// The tier's Put service now rides inside each segment ack, so the
	// device-observed MeanAckUs already contains TierPutMs — no second
	// addition, or the tier would be double-charged.
	row.TotalAckMs = row.MeanAckUs / 1000
	s3, elastic := blobs.(*remote.S3Sim)
	if elastic {
		// Elastic capacity: the budget never fills; cost is the limit.
		row.BudgetDays = retentionHorizonDay
		row.StorageUSDMonth = s3.MonthlyStorageUSD()
		row.PendingListKeys = s3.PendingListKeys()
	}

	// Restart recovery on this tier: a settled reload must rebuild every
	// device's chain head even where LIST was lagging moments before.
	heads := map[uint64]uint64{}
	for _, id := range store.Devices() {
		heads[id] = store.Head(id).NextSeq
	}
	if err := store.ReloadSettled(); err != nil {
		return row, fmt.Errorf("reload: %w", err)
	}
	row.ReloadOK = true
	for id, want := range heads {
		if got := store.Head(id).NextSeq; got != want {
			row.ReloadOK = false
			return row, fmt.Errorf("reload head of device %d = %d, want %d", id, got, want)
		}
	}
	return row, nil
}

// RenderRetention renders the tier comparison table.
func RenderRetention(rows []RetentionTierRow) string {
	tb := metrics.NewTable("backend", "segs", "logical MiB", "stored MiB", "wire ratio",
		"ack µs", "tier put ms", "q depth", "budget days", "req $", "$/month", "list lag", "caught", "false")
	for _, r := range rows {
		// Dollar columns pre-formatted: modeled costs live in the fourth
		// decimal, which the table's default %.2f would round to zero.
		tb.AddRow(r.Backend, r.Segments,
			float64(r.BytesLogical)/float64(1<<20), float64(r.BytesStored)/float64(1<<20),
			r.WireRatio, r.MeanAckUs, r.TierPutMs, r.QueueDepth, r.BudgetDays,
			fmt.Sprintf("%.4f", r.RequestUSD), fmt.Sprintf("%.4f", r.StorageUSDMonth),
			r.PendingListKeys,
			fmt.Sprintf("%d/%d", r.Caught, r.Attacked), r.FalseAlerts)
	}
	out := tb.String()
	for _, r := range rows {
		if r.Backend == "s3sim" {
			out += fmt.Sprintf(
				"s3sim: %d segments (%d multipart parts), durability %.2f ms/segment as the device observes it\n"+
					"       (tier Put %.2f ms rides inside the ack; staged %d deep at %.0f%%/%.0f%% watermarks)\n"+
					"       cost: $%.6f in requests + $%.6f/month at rest; %d keys were list-lagged at run end (settled reload OK: %v)\n",
				r.Segments, r.MultipartParts, r.TotalAckMs,
				r.TierPutMs, r.QueueDepth, r.HighWater*100, r.LowWater*100,
				r.RequestUSD, r.StorageUSDMonth, r.PendingListKeys, r.ReloadOK)
		}
	}
	return out
}
