package experiment

import (
	"bytes"
	"fmt"
	"net"

	"repro/internal/core"
	"repro/internal/nand"
	"repro/internal/nvmeoe"
	"repro/internal/remote"
	"repro/internal/simclock"
)

// restoreRun is the one power-on restore harness every fleet experiment
// drives its restores through (recovery, dedup, qos). It owns the pieces
// the experiments used to copy-paste: the dial factory, the reopen over
// the surviving flash, the mid-stream choke injection, the streamed
// RestoreImage call charged to the recovery link's QoS arbiter, and the
// page-identical verification — so the link/NIC setup lives in exactly
// one place.
type restoreRun struct {
	Server *remote.Server
	// Dial overrides the session factory. Nil dials the Server loopback;
	// the chaos soak dials through its cluster instead, so restore
	// sessions pass the fault injector's WrapConn like any other.
	Dial func() (*remote.Client, error)
	// Link is the restore-class charge point on the NIC arbiter (private
	// or shared — the caller decides by how it builds the link).
	Link *remote.RecoveryLink
	// ChunkPages bounds pages per streamed chunk; 0 sizes chunks to the
	// NIC grant quantum for the device's page size.
	ChunkPages int
	Dedup      bool // hash-reference chunks
	Delta      bool // checkpoint-anchored delta stream
	// Choke kills the first recovery session mid-stream so the restorer
	// must resume (not restart) on a fresh session.
	Choke bool
	// Gate, when set, is called once after this device's first restore
	// session dials — inside the RestoreImage link-session bracket. A
	// fleet experiment passes a barrier here so every device is provably
	// mid-restore at once (the link's peak-sessions gauge reads the fleet
	// size by construction, not by scheduling luck).
	Gate func()
}

// restoredDevice is what a run hands back. The caller owns dev and client
// and closes both (the fleet experiment keeps them open for its
// post-restore outage drain).
type restoredDevice struct {
	dev      *core.RSSD
	client   *remote.Client
	at       simclock.Time
	rep      core.RestoreReport
	verified bool // every `want` page read back identical
}

// run reopens one device over its surviving flash, stream-restores the
// image at `cut`, and verifies it page-identical against `want`.
func (rr restoreRun) run(cfg core.Config, nd *nand.Device, deviceID, cut uint64,
	want map[uint64][]byte, endAt simclock.Time) (*restoredDevice, error) {
	srv := rr.Server
	dial := rr.Dial
	if dial == nil {
		dial = func() (*remote.Client, error) { return remote.Loopback(srv, PSK, deviceID) }
	}
	cfg.Dial = dial // the reopened device redials dead offload sessions itself

	client, err := dial()
	if err != nil {
		return nil, err
	}
	dev, err := core.Reopen(cfg, nd, client)
	if err != nil {
		client.Close()
		return nil, fmt.Errorf("reopen: %w", err)
	}
	fail := func(err error) (*restoredDevice, error) {
		dev.Close()
		client.Close()
		return nil, err
	}

	// The choked device's first recovery session dies mid-stream: the
	// restorer must resume from its cursor on a fresh session.
	restoreDial := dial
	if rr.Choke {
		dials := 0
		restoreDial = func() (*remote.Client, error) {
			dials++
			if dials == 1 {
				dc, sc := net.Pipe()
				go srv.HandleConn(sc)
				// Handshake (2 reads) + one 3-read chunk frame: the link
				// dies with the first chunk applied and the rest unsent.
				return remote.Dial(remote.NewChokeConn(dc, 5), PSK, deviceID)
			}
			return dial()
		}
	}

	if gate := rr.Gate; gate != nil {
		inner := restoreDial
		fired := false
		restoreDial = func() (*remote.Client, error) {
			c, err := inner()
			if err == nil && !fired {
				fired = true
				gate()
			}
			return c, err
		}
	}

	chunkPages := rr.ChunkPages
	if chunkPages == 0 {
		chunkPages = int(nvmeoe.ChunkPagesForQuantum(dev.FTL().PageSize()))
	}
	at, rep, err := dev.RestoreImage(cut, core.RestoreOptions{
		Dial:       restoreDial,
		Link:       rr.Link,
		ChunkPages: chunkPages,
		Dedup:      rr.Dedup,
		Delta:      rr.Delta,
	}, endAt)
	if err != nil {
		return fail(fmt.Errorf("restore: %w", err))
	}
	if rr.Choke && rep.Resumes == 0 {
		return fail(fmt.Errorf("choked device restored without a resume (disconnect not exercised)"))
	}

	rd := &restoredDevice{dev: dev, client: client, at: at, rep: rep, verified: true}
	for lpn, w := range want {
		got, _, err := dev.Read(lpn, at)
		if err != nil {
			return fail(fmt.Errorf("verify read lpn %d: %w", lpn, err))
		}
		if !bytes.Equal(got, w) {
			rd.verified = false
			break
		}
	}
	return rd, nil
}
