package experiment

import (
	"bytes"
	"fmt"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/forensic"
	"repro/internal/ftl"
	"repro/internal/metrics"
	"repro/internal/recovery"
	"repro/internal/simclock"
)

// DefenseCell is one (system, attack) outcome of Table 1.
type DefenseCell struct {
	System      SystemName
	Attack      AttackName
	VictimPages int
	Recovered   int
	// Frac is the fraction of victim pages whose pre-attack content is
	// restorable from the system's retained data.
	Frac float64
	// Grade is the paper's ❍/◗/● scale as none/partial/full.
	Grade string
	// Forensics reports whether a trusted evidence chain identifying the
	// attack window could be produced (RSSD only).
	Forensics bool
}

// DefenseMatrix replays every attack against every system and grades data
// recovery, reproducing Table 1 of the paper.
func DefenseMatrix(s Scale) ([]DefenseCell, error) {
	var out []DefenseCell
	for _, sys := range AllSystems {
		for _, atk := range AllAttacks {
			cell, err := runDefenseCell(s, sys, atk)
			if err != nil {
				return nil, fmt.Errorf("defense cell %s/%s: %w", sys, atk, err)
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// timeSSDWindow is the TimeSSD-like bounded retention window; the timing
// attack spans ~10 simulated days, deliberately exceeding it.
const timeSSDWindow = 3 * simclock.Day

func runDefenseCell(s Scale, sys SystemName, atkName AttackName) (DefenseCell, error) {
	cell := DefenseCell{System: sys, Attack: atkName}
	rng := rand.New(rand.NewSource(7))

	if sys == SysRSSD {
		rig, err := NewRSSDRig(s)
		if err != nil {
			return cell, err
		}
		defer rig.Client.Close()
		snap, extents, err := seedAndSnapshot(rig.FS, rng, s)
		if err != nil {
			return cell, err
		}
		want := expectedPages(snap, extents, s.PageSize)
		if _, err := makeAttack(atkName).Run(rig.FS, rng); err != nil {
			return cell, err
		}
		// Forensics: trusted timeline + attack window.
		an := forensic.NewAnalyzer(rig.Dev, rig.Client)
		ev, err := an.Timeline()
		if err != nil {
			return cell, err
		}
		win, err := an.AttackWindow(ev, rig.Dev.Log().NextSeq())
		if err != nil {
			return cell, err
		}
		cell.Forensics = ev.ChainIntact
		// Recovery: restore and compare against the snapshot layout.
		eng := recovery.NewEngine(rig.Dev, rig.Client, recovery.Options{Verify: true})
		at, _, err := eng.RestoreWindow(win, rig.FS.Clock().Now())
		if err != nil {
			return cell, err
		}
		for lpn, exp := range want {
			cell.VictimPages++
			got, _, err := rig.Dev.Read(lpn, at)
			if err == nil && bytes.Equal(got, exp) {
				cell.Recovered++
			}
		}
		cell.Frac = float64(cell.Recovered) / float64(cell.VictimPages)
		cell.Grade = grade(cell.Frac)
		return cell, nil
	}

	// Baseline systems: conventional FTL + retention policy.
	var rig *BaselineRig
	var canRestore func(lpn uint64, want []byte, at simclock.Time) bool
	switch sys {
	case SysLocalSSD:
		// An unmodified SSD retains nothing on purpose; stale data
		// survives only until GC. Recovery tooling does not exist, so
		// restorable = current content already matches (i.e. untouched).
		rig = NewBaselineRig(s, nil, nil)
		canRestore = func(lpn uint64, want []byte, at simclock.Time) bool {
			got, _, err := rig.FTL.Read(lpn, at)
			return err == nil && bytes.Equal(got, want)
		}
	case SysFlashGuard:
		g := baseline.NewFlashGuard(s.retentionBudgetPages(), 24*simclock.Hour)
		rig = NewBaselineRig(s, g, func(f *ftl.FTL) { g.Attach(f) })
		canRestore = func(lpn uint64, want []byte, at simclock.Time) bool {
			got, _, err := rig.FTL.Read(lpn, at)
			if err == nil && bytes.Equal(got, want) {
				return true
			}
			return g.CanRestore(lpn, want, at)
		}
	case SysTimeSSD:
		w := baseline.NewTimeWindow(timeSSDWindow)
		rig = NewBaselineRig(s, w, func(f *ftl.FTL) { w.Attach(f) })
		canRestore = func(lpn uint64, want []byte, at simclock.Time) bool {
			got, _, err := rig.FTL.Read(lpn, at)
			if err == nil && bytes.Equal(got, want) {
				return true
			}
			return w.CanRestore(lpn, want, at)
		}
	default:
		return cell, fmt.Errorf("unknown system %q", sys)
	}
	snap, extents, err := seedAndSnapshot(rig.FS, rng, s)
	if err != nil {
		return cell, err
	}
	want := expectedPages(snap, extents, s.PageSize)
	if _, err := makeAttack(atkName).Run(rig.FS, rng); err != nil {
		return cell, err
	}
	at := rig.FS.Clock().Now()
	for lpn, exp := range want {
		cell.VictimPages++
		if canRestore(lpn, exp, at) {
			cell.Recovered++
		}
	}
	cell.Frac = float64(cell.Recovered) / float64(cell.VictimPages)
	cell.Grade = grade(cell.Frac)
	return cell, nil
}

// retentionBudgetPages sizes baseline retention buffers to the same
// over-provisioned space RSSD has locally.
func (s Scale) retentionBudgetPages() int {
	cfg := s.ftlConfig()
	total := cfg.NAND.Geometry.TotalPages()
	logical := int(float64(cfg.NAND.Geometry.TotalBlocks())*(1-cfg.OverProvision)) * cfg.NAND.Geometry.PagesPerBlock
	return total - logical
}

// RenderDefenseMatrix formats the matrix the way Table 1 lays it out: one
// row per system, defense columns per attack, then recovery and
// forensics.
func RenderDefenseMatrix(cells []DefenseCell) string {
	bySys := map[SystemName]map[AttackName]DefenseCell{}
	for _, c := range cells {
		if bySys[c.System] == nil {
			bySys[c.System] = map[AttackName]DefenseCell{}
		}
		bySys[c.System][c.Attack] = c
	}
	tb := metrics.NewTable("system", "gc", "timing", "trimming", "recovery(encryptor)", "forensics")
	defended := func(c DefenseCell) string {
		if c.Grade == "full" {
			return "yes"
		}
		return "NO"
	}
	for _, sys := range AllSystems {
		row := bySys[sys]
		fx := "no"
		if row[AtkEncryptor].Forensics {
			fx = "yes"
		}
		tb.AddRow(string(sys),
			defended(row[AtkGC]),
			defended(row[AtkTiming]),
			defended(row[AtkTrimming]),
			fmt.Sprintf("%s (%.0f%%)", row[AtkEncryptor].Grade, 100*row[AtkEncryptor].Frac),
			fx,
		)
	}
	return tb.String()
}
