package experiment

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/remote"
	"repro/internal/simclock"
)

// The QoS experiment quantifies what the shared-NIC scheduler buys when a
// restore storm collides with steady-state offload: a fleet where half the
// devices power-cycle and stream their images back CONCURRENTLY with the
// other half's offload pipelines and a set of synthetic lifecycle
// transfers, all charged to one arbiter. Three cohorts isolate the policy:
//
//   - uncontended: restorers only — the baseline restore latency on an
//     idle NIC.
//   - qos: the full collision under strict priority + guaranteed floors —
//     restore preempts, offload and lifecycle keep their floors.
//   - fifo: the same collision with classing disabled (proportional
//     sharing) — the no-QoS trampling the scheduler exists to prevent.
//
// The gates bind the tentpole claims: restore P99 grant-wait under
// contention stays within 2x the uncontended baseline, offload is never
// priced below its guaranteed floor, lifecycle is never starved, granted
// bytes conserve the line rate, and the FIFO baseline is measurably worse
// for restore than QoS.

// qosLifecycleBytes is one synthetic lifecycle transfer (tier migration /
// GC shipment) — deliberately large grants, the worst head-of-line case.
const qosLifecycleBytes = 1 << 20

// qosConservationSlack tolerates the cross-device simulated-clock skew in
// the aggregate-rate conservation check: devices advance independent
// clocks, so merged grant spans can overlap slightly even though every
// grant was priced within its class allocation.
const qosConservationSlack = 1.05

// QoSCohort is one measured cohort of the experiment.
type QoSCohort struct {
	Mode      string // "uncontended", "qos", "fifo"
	Restorers int
	Workers   int
	Lifecycle int

	MeanRTOms float64
	MaxRTOms  float64
	Verified  bool

	Classes   [netsim.NumClasses]netsim.QoSStats
	GrantedMB float64 // total bytes granted across classes
	SpanMs    float64 // first grant start -> last grant completion
	AggMBps   float64 // implied aggregate rate (conservation gate)
	LineMBps  float64
}

// QoSResult is the full QoS experiment report.
type QoSResult struct {
	Devices int
	Floors  [netsim.NumClasses]float64

	Uncontended QoSCohort
	QoS         QoSCohort
	FIFO        QoSCohort

	// P99Ratio is contended-QoS restore P99 grant-wait over uncontended;
	// FIFOP99Ratio the same for the FIFO baseline. The gate binds the
	// former at 2x; the latter shows what no-QoS costs.
	P99Ratio     float64
	FIFOP99Ratio float64
	// OffloadFloorMBps is the configured guarantee; OffloadMinMBps the
	// lowest allocation any offload grant actually saw under QoS.
	OffloadFloorMBps float64
	OffloadMinMBps   float64
}

// runQoSCohort runs one cohort on its own store, server, and arbiter.
func runQoSCohort(s Scale, restorers, workers, lifecycle, imagePages, uniquePages int,
	nicCfg netsim.Config, mode string) (QoSCohort, error) {
	co := QoSCohort{Mode: mode, Restorers: restorers, Workers: workers, Lifecycle: lifecycle}
	store := remote.NewStore(remote.NewMemStore())
	srv := remote.NewServer(store, PSK)
	nic := netsim.New(nicCfg)
	srv.NIC = nic
	link := remote.NewRecoveryLinkOn(nic)

	// Phase A — every device (future restorers and workers alike) writes
	// its image, checkpoints, diverges, and powers off. Setup offload runs
	// on private per-device links (cfg.NIC unset), so the shared-NIC
	// ledger measures only the contention window.
	total := restorers + workers
	devs := make([]*dedupDevice, total)
	errs := make([]error, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			devs[i], errs[i] = runDedupSetup(s, srv, uint64(i+1), imagePages, uniquePages)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return co, fmt.Errorf("device %d setup: %w", i+1, err)
		}
	}
	var wallStart simclock.Time // latest power-off: the lifecycle lanes' clock origin
	for _, d := range devs {
		if d.endAt > wallStart {
			wallStart = d.endAt
		}
	}

	// Phase B — contention sources come up first, so every restore grant
	// is priced with the cross-class flows already open. Workers reopen
	// on the shared NIC and loop writes + offload until the restore wave
	// completes; lifecycle lanes issue back-to-back large grants.
	var stop atomic.Bool
	var ready, bg sync.WaitGroup
	for i := 0; i < lifecycle; i++ {
		ready.Add(1)
		bg.Add(1)
		go func(i int) {
			defer bg.Done()
			f := nic.Open(netsim.ClassLifecycle, 1)
			defer f.Close()
			now := wallStart
			now = f.Grant(qosLifecycleBytes, now)
			ready.Done()
			for !stop.Load() {
				now = f.Grant(qosLifecycleBytes, now)
				time.Sleep(100 * time.Microsecond) // pace wall-clock load generation
			}
		}(i)
	}
	for i := restorers; i < total; i++ {
		ready.Add(1)
		bg.Add(1)
		go func(i int) {
			defer bg.Done()
			d := devs[i]
			d.cfg.NIC = nic
			deviceID := uint64(i + 1)
			dial := func() (*remote.Client, error) { return remote.Loopback(srv, PSK, deviceID) }
			d.cfg.Dial = dial
			client, err := dial()
			if err != nil {
				errs[i] = err
				ready.Done()
				return
			}
			defer client.Close()
			dev, err := core.Reopen(d.cfg, d.nand, client)
			if err != nil {
				errs[i] = err
				ready.Done()
				return
			}
			defer dev.Close()
			rng := rand.New(rand.NewSource(int64(7000 + i)))
			page := make([]byte, s.PageSize)
			at := d.endAt
			flush := func() bool {
				if at, err = dev.OffloadNow(at); err != nil {
					errs[i] = err
					return false
				}
				return true
			}
			write := func() bool {
				rng.Read(page)
				if at, err = dev.Write(uint64(rng.Intn(imagePages)), page, at); err != nil {
					errs[i] = err
					return false
				}
				return true
			}
			// First burst + flush opens this device's offload flow on the
			// shared NIC before any restore starts.
			for j := 0; j < 64; j++ {
				if !write() {
					ready.Done()
					return
				}
			}
			if ok := flush(); !ok {
				ready.Done()
				return
			}
			ready.Done()
			for j := 0; !stop.Load(); j++ {
				if !write() {
					return
				}
				if j%64 == 63 && !flush() {
					return
				}
			}
			flush()
		}(i)
	}
	ready.Wait()
	for i := restorers; i < total; i++ {
		if errs[i] != nil {
			stop.Store(true)
			bg.Wait()
			return co, fmt.Errorf("worker %d: %w", i+1, errs[i])
		}
	}

	// Phase C — the restore wave: every restorer streams its image back
	// concurrently, chunks sized to the NIC grant quantum. On contended
	// cohorts the restorer's own post-restore offload churn rides the
	// shared NIC too.
	contended := workers > 0 || lifecycle > 0
	for i := 0; i < restorers; i++ {
		if contended {
			devs[i].cfg.NIC = nic
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := devs[i]
			rd, err := restoreRun{Server: srv, Link: link}.
				run(d.cfg, d.nand, uint64(i+1), d.cut, d.want, d.endAt)
			if err != nil {
				errs[i] = err
				return
			}
			d.rep = rd.rep
			d.verified = rd.verified
			rd.dev.Close()
			rd.client.Close()
		}(i)
	}
	wg.Wait()
	stop.Store(true)
	bg.Wait()
	for i, err := range errs {
		if err != nil {
			return co, fmt.Errorf("device %d: %w", i+1, err)
		}
	}

	co.Verified = true
	var totalRTO, maxRTO simclock.Duration
	for _, d := range devs[:restorers] {
		totalRTO += d.rep.RTO
		if d.rep.RTO > maxRTO {
			maxRTO = d.rep.RTO
		}
		if !d.verified {
			co.Verified = false
		}
	}
	co.MeanRTOms = float64(totalRTO) / float64(restorers) / 1e6
	co.MaxRTOms = float64(maxRTO) / 1e6
	co.Classes = nic.Stats()
	granted, span, mbps := nic.Conservation()
	co.GrantedMB = float64(granted) / 1e6
	co.SpanMs = float64(span) / 1e6
	co.AggMBps = mbps
	co.LineMBps = nic.LineMBps()
	return co, nil
}

// QoSRun runs the shared-NIC QoS experiment: a restore storm against
// steady-state offload and lifecycle traffic, under strict-priority QoS
// and under the FIFO baseline, gated against an uncontended control.
func QoSRun(s Scale, devices int, nicCfg netsim.Config) (*QoSResult, error) {
	if devices <= 0 {
		devices = 64
	}
	s = fleetScale(s)

	// Image sizing: bounded well under the dedup experiment's — three
	// cohorts re-run setup, and the contention window is what's measured,
	// not the image haul.
	probe := core.DefaultConfig()
	probe.FTL = s.ftlConfig()
	logical := int(core.New(probe, nil).LogicalPages())
	imagePages := logical / 4
	if cap := s.TraceOps / 16; imagePages > cap {
		imagePages = cap
	}
	if imagePages < 64 {
		imagePages = 64
	}
	uniquePages := imagePages / dedupDupFactor
	if uniquePages < 1 {
		uniquePages = 1
	}

	restorers := devices / 2
	if restorers < 1 {
		restorers = 1
	}
	workers := devices - restorers
	lifecycle := devices / 8
	if lifecycle < 2 {
		lifecycle = 2
	}

	strictCfg := nicCfg
	strictCfg.FIFO = false
	fifoCfg := nicCfg
	fifoCfg.FIFO = true

	unc, err := runQoSCohort(s, restorers, 0, 0, imagePages, uniquePages, strictCfg, "uncontended")
	if err != nil {
		return nil, fmt.Errorf("uncontended cohort: %w", err)
	}
	qos, err := runQoSCohort(s, restorers, workers, lifecycle, imagePages, uniquePages, strictCfg, "qos")
	if err != nil {
		return nil, fmt.Errorf("qos cohort: %w", err)
	}
	fifo, err := runQoSCohort(s, restorers, workers, lifecycle, imagePages, uniquePages, fifoCfg, "fifo")
	if err != nil {
		return nil, fmt.Errorf("fifo cohort: %w", err)
	}

	floors := netsim.New(strictCfg).Floors()
	line := qos.LineMBps
	res := &QoSResult{
		Devices: devices, Floors: floors,
		Uncontended: unc, QoS: qos, FIFO: fifo,
		OffloadFloorMBps: floors[netsim.ClassOffload] * line,
		OffloadMinMBps:   qos.Classes[netsim.ClassOffload].MinAllocMBps,
	}
	uncP99 := unc.Classes[netsim.ClassRestore].WaitP99Ms
	if uncP99 > 0 {
		res.P99Ratio = qos.Classes[netsim.ClassRestore].WaitP99Ms / uncP99
		res.FIFOP99Ratio = fifo.Classes[netsim.ClassRestore].WaitP99Ms / uncP99
	}

	// Hard gates — the tentpole claims, enforced on every run.
	if !unc.Verified || !qos.Verified || !fifo.Verified {
		return res, fmt.Errorf("qos gate: a restored image was not page-identical")
	}
	if qos.Classes[netsim.ClassRestore].Throttled == 0 {
		return res, fmt.Errorf("qos gate: no restore grant was priced under cross-class contention (collision not exercised)")
	}
	if qos.Classes[netsim.ClassOffload].Grants == 0 || qos.Classes[netsim.ClassLifecycle].Grants == 0 {
		return res, fmt.Errorf("qos gate: a contending class issued no grants (offload %d, lifecycle %d)",
			qos.Classes[netsim.ClassOffload].Grants, qos.Classes[netsim.ClassLifecycle].Grants)
	}
	if res.P99Ratio > 2.0 {
		return res, fmt.Errorf("qos gate: contended restore P99 is %.2fx uncontended (limit 2x)", res.P99Ratio)
	}
	if min := res.OffloadMinMBps; min < res.OffloadFloorMBps*0.999 {
		return res, fmt.Errorf("qos gate: offload fell below its guaranteed floor (%.1f < %.1f MBps)",
			min, res.OffloadFloorMBps)
	}
	if fl, min := floors[netsim.ClassLifecycle]*line, qos.Classes[netsim.ClassLifecycle].MinAllocMBps; min < fl*0.999 {
		return res, fmt.Errorf("qos gate: lifecycle fell below its guaranteed floor (%.1f < %.1f MBps)", min, fl)
	}
	for _, co := range []QoSCohort{unc, qos, fifo} {
		if co.AggMBps > co.LineMBps*qosConservationSlack {
			return res, fmt.Errorf("qos gate: %s cohort granted %.1f MBps aggregate on a %.0f MBps line",
				co.Mode, co.AggMBps, co.LineMBps)
		}
	}
	if fifo.Classes[netsim.ClassRestore].WaitP99Ms < qos.Classes[netsim.ClassRestore].WaitP99Ms {
		return res, fmt.Errorf("qos gate: FIFO restore P99 (%.3f ms) beat QoS (%.3f ms) — priority classing lost to the baseline",
			fifo.Classes[netsim.ClassRestore].WaitP99Ms, qos.Classes[netsim.ClassRestore].WaitP99Ms)
	}
	return res, nil
}

// qosStatsTable renders a per-class ledger snapshot.
func qosStatsTable(stats [netsim.NumClasses]netsim.QoSStats) *metrics.Table {
	t := metrics.NewTable("class", "grants", "MB", "flows_peak",
		"wait_p50_ms", "wait_p99_ms", "throttled", "min_alloc_MBps")
	for _, st := range stats {
		t.AddRow(st.Class, st.Grants,
			fmt.Sprintf("%.1f", float64(st.BytesGranted)/1e6), st.QueuePeak,
			fmt.Sprintf("%.3f", st.WaitP50Ms), fmt.Sprintf("%.3f", st.WaitP99Ms),
			st.Throttled, fmt.Sprintf("%.1f", st.MinAllocMBps))
	}
	return t
}

// RenderQoS renders the QoS experiment report.
func RenderQoS(res *QoSResult) string {
	out := fmt.Sprintf("qos: %d devices (%d restorers, %d workers, %d lifecycle lanes), floors offload %.0f%% / lifecycle %.0f%%\n",
		res.Devices, res.QoS.Restorers, res.QoS.Workers, res.QoS.Lifecycle,
		res.Floors[netsim.ClassOffload]*100, res.Floors[netsim.ClassLifecycle]*100)
	for _, co := range []QoSCohort{res.Uncontended, res.QoS, res.FIFO} {
		out += fmt.Sprintf("%s: restore RTO mean %.2f / max %.2f ms; %.1f MB granted over %.2f ms (%.1f of %.0f MBps line)\n",
			co.Mode, co.MeanRTOms, co.MaxRTOms, co.GrantedMB, co.SpanMs, co.AggMBps, co.LineMBps)
		out += qosStatsTable(co.Classes).String()
	}
	out += fmt.Sprintf("restore P99 grant-wait: qos %.2fx uncontended (gate 2x), fifo %.2fx\n",
		res.P99Ratio, res.FIFOP99Ratio)
	out += fmt.Sprintf("offload floor: guaranteed %.1f MBps, lowest granted allocation %.1f MBps\n",
		res.OffloadFloorMBps, res.OffloadMinMBps)
	return out
}
