package experiment

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/attack"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/host"
	"repro/internal/metrics"
	"repro/internal/remote"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// The fleet experiment is the end-to-end exercise of the asynchronous
// offload pipeline: N devices — each a full RSSD with its own staging
// engine — stream segments concurrently into one server over net.Pipe
// NVMe-oE sessions, the store ingests them on sharded per-device indexes,
// and the detection pipeline scores every device's window as segments
// arrive. Half the devices additionally run a ransomware variant
// (encryptor, timing attack, trimming attack, cycled); streaming detection
// must catch each of them with no false alerts on the benign traffic.
//
// The same fleet is then rerun with SyncOffload devices — the inline
// baseline that charges seal + transfer time to host I/O — to measure what
// overlapping the transfer buys in host batch latency.

// fleetProfiles are the benign replay workloads cycled across the fleet.
// They are low-entropy members of the corpus: live-traffic detection must
// stay false-positive free, so their page content sits clearly below the
// ciphertext entropy threshold.
var fleetProfiles = []string{"hm", "src", "usr"}

// fleetAttacks cycles over the attacked devices.
var fleetAttacks = []AttackName{AtkEncryptor, AtkTiming, AtkTrimming}

// fleetScale shrinks the per-device geometry: a fleet multiplies the
// footprint by N, and a tighter device keeps the offload watermarks in
// play during the replay itself rather than only at the final flush.
func fleetScale(s Scale) Scale {
	s.BlocksPerPlane /= 4
	if s.BlocksPerPlane < 16 {
		s.BlocksPerPlane = 16
	}
	return s
}

// FleetDeviceRow reports one device of the fleet.
type FleetDeviceRow struct {
	Device         uint64
	Role           string // workload profile, "+<attack>" when attacked
	Attacked       bool
	Records        int     // replay records (the measured phase)
	PageOps        int     // host page operations across all phases
	SimMs          float64 // simulated span of the device's run (all phases)
	MeanLatUs      float64 // host batch latency during replay
	P99LatUs       float64
	ReplaySegments uint64  // segments shipped while host I/O was running
	Segments       uint64  // total segments shipped (incl. final flush)
	AckLatUs       float64 // mean seal-to-ack latency (incl. tier service time)
	QueuePeak      int     // deepest staging-pipeline occupancy
	Stalls         uint64  // host stalls from staging backpressure
	WireBytes      uint64  // compressed bytes that crossed the offload link
	EncodeMs       float64 // simulated codec-stage time (overlapped unless inline)
	EncodeQPeak    int     // deepest encode-stage occupancy
	Detected       bool
	OpsToAlert     uint64
	FalseAlerts    int
}

// FleetSummary aggregates the fleet run and its synchronous baseline.
type FleetSummary struct {
	Devices        int
	Attacked       int
	Caught         int
	FalseAlerts    int
	PageOps        int
	Segments       uint64
	WallMs         float64
	PageOpsPerSec  float64 // fleet host throughput (wall clock)
	SegmentsPerSec float64 // fleet ingest rate (wall clock)
	MeanLatUs      float64 // mean host batch latency, async engine
	SyncMeanLatUs  float64 // same fleet, SyncOffload baseline
	OverlapSpeedup float64 // SyncMeanLatUs / MeanLatUs
}

// FleetResult is the full fleet report. Cluster is set only on
// multi-server runs (fleetcluster.go); per-device Rows are dropped past 64
// devices to keep the committed report compact.
type FleetResult struct {
	Rows    []FleetDeviceRow `json:",omitempty"`
	Summary FleetSummary
	Cluster *FleetClusterResult `json:",omitempty"`
}

// fleetPass is one fleet execution (async or baseline).
type fleetPass struct {
	rows     []FleetDeviceRow
	wall     time.Duration
	totalLat simclock.Duration
	records  int
	pageOps  int
	segments uint64
}

// fleetOpts tunes one fleet pass.
type fleetOpts struct {
	syncOffload   bool
	withAttacks   bool
	encodeWorkers int // 0 = engine default, negative = inline-encode baseline
	// saturate submits each replay record the instant the previous one
	// completes instead of at its trace timestamp: the device-limited
	// pace the datapath benchmark measures throughput at. Trace-paced
	// runs (the default) measure latency under realistic arrival gaps.
	saturate bool
	tune     remote.BackendProfile
}

// Fleet runs the fleet scenario. With servers <= 1 it is the classic
// single-server run plus its synchronous baseline; with more it becomes
// the control-plane exercise — consistent-hash placement, an injected
// server kill healed through the redial path, and the server-count
// scaling curve (fleetcluster.go).
func Fleet(s Scale, devices, servers int) (*FleetResult, error) {
	if servers > 1 {
		if devices <= 0 {
			devices = 8
		}
		return fleetCluster(s, devices, servers)
	}
	s = fleetScale(s)
	async, err := runFleet(s, devices, false, true)
	if err != nil {
		return nil, fmt.Errorf("fleet async: %w", err)
	}
	base, err := runFleet(s, devices, true, false)
	if err != nil {
		return nil, fmt.Errorf("fleet sync baseline: %w", err)
	}
	sum := FleetSummary{
		Devices:  devices,
		PageOps:  async.pageOps,
		Segments: async.segments,
		WallMs:   float64(async.wall.Microseconds()) / 1000,
	}
	for _, row := range async.rows {
		if row.Attacked {
			sum.Attacked++
			if row.Detected {
				sum.Caught++
			}
		}
		sum.FalseAlerts += row.FalseAlerts
	}
	if async.records > 0 {
		sum.MeanLatUs = float64(async.totalLat) / float64(async.records) / 1000
	}
	if base.records > 0 {
		sum.SyncMeanLatUs = float64(base.totalLat) / float64(base.records) / 1000
	}
	if sum.MeanLatUs > 0 {
		sum.OverlapSpeedup = sum.SyncMeanLatUs / sum.MeanLatUs
	}
	if secs := async.wall.Seconds(); secs > 0 {
		sum.PageOpsPerSec = float64(async.pageOps) / secs
		sum.SegmentsPerSec = float64(async.segments) / secs
	}
	return &FleetResult{Rows: async.rows, Summary: sum}, nil
}

// runFleet executes one pass over the default in-memory tier.
func runFleet(s Scale, devices int, syncOffload, withAttacks bool) (*fleetPass, error) {
	opts := fleetOpts{syncOffload: syncOffload, withAttacks: withAttacks, tune: remote.Profile("mem")}
	return runFleetOn(s, devices, opts, remote.NewStore(remote.NewMemStore()))
}

// runFleetOn executes one pass against the given store (any storage tier):
// every device runs concurrently against one shared server, replaying its
// benign trace and (when opts.withAttacks) its assigned ransomware
// variant. The retention experiment reuses the same pass per backend tier
// with that tier's watermark/queue profile; the datapath experiment reuses
// it to compare encode-worker against inline-encode devices.
func runFleetOn(s Scale, devices int, opts fleetOpts, store *remote.Store) (*fleetPass, error) {
	if devices <= 0 {
		devices = 8
	}
	srv := remote.NewServer(store, PSK)
	engine := detect.NewEngine(detectConfig(s))
	engine.Attach(store)

	rows := make([]FleetDeviceRow, devices)
	errs := make([]error, devices)
	var wg sync.WaitGroup
	start := time.Now()
	attackIdx := 0
	for i := 0; i < devices; i++ {
		var atk attack.Attack
		if opts.withAttacks && i%2 == 1 {
			atk = makeAttack(fleetAttacks[attackIdx%len(fleetAttacks)])
			attackIdx++
		}
		wg.Add(1)
		go func(i int, atk attack.Attack) {
			defer wg.Done()
			rows[i], errs[i] = runFleetDevice(s, srv, engine, uint64(i+1), i, atk, opts)
		}(i, atk)
	}
	wg.Wait()
	pass := &fleetPass{rows: rows, wall: time.Since(start)}
	for i := range errs {
		if errs[i] != nil {
			return nil, fmt.Errorf("device %d: %w", i+1, errs[i])
		}
	}
	for _, row := range rows {
		pass.records += row.Records
		pass.pageOps += row.PageOps
		pass.segments += row.Segments
		pass.totalLat += simclock.Duration(row.MeanLatUs * 1000 * float64(row.Records))
	}
	return pass, nil
}

// runFleetDevice drives one device of the fleet: benign replay (measured),
// then the assigned attack (streamed to detection), then a final flush.
func runFleetDevice(s Scale, srv *remote.Server, engine *detect.Engine, deviceID uint64, idx int, atk attack.Attack, opts fleetOpts) (FleetDeviceRow, error) {
	row := FleetDeviceRow{Device: deviceID}
	client, err := remote.Loopback(srv, PSK, deviceID)
	if err != nil {
		return row, err
	}
	defer client.Close()

	cfg := core.DefaultConfig()
	cfg.FTL = s.ftlConfig()
	cfg.DeviceID = deviceID
	cfg.SyncOffload = opts.syncOffload
	cfg.EncodeWorkers = opts.encodeWorkers
	// Fleet devices drain eagerly (the tier profile's watermarks sit well
	// below the solo-device defaults): a device backing a shared server
	// keeps its retention backlog small, which also keeps the offload
	// pipeline — the thing this experiment measures — continuously busy.
	// High-latency tiers get a deeper staging queue from their profile so
	// the long acks stay hidden behind host I/O.
	cfg.OffloadHighWater = opts.tune.OffloadHighWater
	cfg.OffloadLowWater = opts.tune.OffloadLowWater
	cfg.OffloadQueueDepth = opts.tune.OffloadQueueDepth
	dev := core.New(cfg, client)
	defer dev.Close()
	fs := host.NewFlatFS(dev, simclock.NewClock())

	profName := fleetProfiles[idx%len(fleetProfiles)]
	row.Role = profName
	prof, ok := workload.ProfileByName(profName)
	if !ok {
		return row, fmt.Errorf("unknown workload %q", profName)
	}

	// Phase 1 — benign replay through the batched datapath, measured.
	replayOps := s.TraceOps / 8
	if replayOps < 400 {
		replayOps = 400
	}
	g := workload.NewGenerator(prof, s.PageSize, dev.LogicalPages(), int64(1000+idx))
	h := metrics.NewHistogram(0)
	var ops []batch.Op
	var end simclock.Time
	for j := 0; j < replayOps; j++ {
		rec := g.Next()
		ops = recordBatch(g, rec, dev.LogicalPages(), ops[:0])
		if len(ops) == 0 {
			continue
		}
		submitAt := rec.At
		if opts.saturate {
			submitAt = end // back-to-back: the device, not the trace, sets the pace
		}
		done, err := submitRecord(dev, ops, submitAt)
		if err != nil {
			return row, err
		}
		h.Observe(done.Sub(submitAt))
		end = simclock.Max(end, done)
		row.Records++
	}
	row.MeanLatUs = float64(h.Mean()) / 1000
	row.P99LatUs = float64(h.Percentile(99)) / 1000
	row.ReplaySegments = dev.Stats().OffloadSegments

	// Phase 2 — the assigned ransomware variant, on a filesystem whose
	// clock continues from the replay.
	attackStart := ^uint64(0)
	if atk != nil {
		row.Attacked = true
		row.Role = profName + "+" + atk.Name()
		fs.Clock().AdvanceTo(end)
		rng := rand.New(rand.NewSource(int64(77 + idx)))
		if _, _, err := seedAndSnapshot(fs, rng, s); err != nil {
			return row, err
		}
		// Flush the pre-attack history: anything detection flags in it is
		// a false alert, not attack coverage.
		if _, err := dev.OffloadNow(fs.Clock().Now()); err != nil {
			return row, err
		}
		attackStart = dev.Log().NextSeq()
		if _, err := atk.Run(fs, rng); err != nil {
			return row, err
		}
	}

	// Phase 3 — final flush so detection has seen the full history.
	if _, err := dev.OffloadNow(fs.Clock().Now()); err != nil {
		return row, err
	}

	st := dev.Stats()
	// PageOps covers every phase (replay, corpus seeding, attack): the
	// wall-clock throughput below divides by a wall that spans them all.
	row.PageOps = int(st.HostWrites + st.HostReads + st.HostTrims)
	row.SimMs = float64(simclock.Max(fs.Clock().Now(), end)) / float64(simclock.Millisecond)
	row.Segments = st.OffloadSegments
	row.QueuePeak = st.OffloadQueuePeak
	row.Stalls = st.OffloadStalls
	row.WireBytes = st.OffloadBytesWire
	row.EncodeMs = float64(st.EncodeTime) / float64(simclock.Millisecond)
	row.EncodeQPeak = st.EncodeQueuePeak
	if st.OffloadSegments > 0 {
		row.AckLatUs = float64(st.OffloadAckTime) / float64(st.OffloadSegments) / 1000
	}
	for _, a := range engine.AlertsFor(deviceID) {
		if a.AtSeq >= attackStart {
			if !row.Detected {
				row.Detected = true
				row.OpsToAlert = a.AtSeq - attackStart
			}
		} else {
			row.FalseAlerts++
		}
	}
	return row, nil
}

// RenderFleet renders the per-device table and the fleet summary.
func RenderFleet(res *FleetResult) string {
	tb := metrics.NewTable("device", "role", "records", "page ops",
		"mean lat µs", "p99 lat µs", "segs (replay/total)", "ack µs",
		"q peak", "stalls", "detected", "ops to alert", "false alerts")
	for _, r := range res.Rows {
		det := "-"
		if r.Detected {
			det = "caught"
		} else if r.Attacked {
			det = "MISSED"
		}
		tb.AddRow(r.Device, r.Role, r.Records, r.PageOps,
			r.MeanLatUs, r.P99LatUs,
			fmt.Sprintf("%d/%d", r.ReplaySegments, r.Segments),
			r.AckLatUs, r.QueuePeak, r.Stalls, det, r.OpsToAlert, r.FalseAlerts)
	}
	s := res.Summary
	out := ""
	if len(res.Rows) > 0 {
		out = tb.String()
	}
	out += fmt.Sprintf(
		"fleet: %d devices (%d attacked, %d caught, %d false alerts), %d page ops in %.1f ms wall\n"+
			"       %.0f page ops/s, %.0f segments/s ingested (%d segments)\n",
		s.Devices, s.Attacked, s.Caught, s.FalseAlerts, s.PageOps, s.WallMs,
		s.PageOpsPerSec, s.SegmentsPerSec, s.Segments)
	if res.Cluster == nil {
		out += fmt.Sprintf(
			"       host batch latency: async %.2f µs vs sync-offload baseline %.2f µs (%.2fx)\n",
			s.MeanLatUs, s.SyncMeanLatUs, s.OverlapSpeedup)
	} else {
		out += RenderFleetCluster(res.Cluster)
	}
	return out
}
