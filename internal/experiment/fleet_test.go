package experiment

import "testing"

// TestFleetScenario runs the full fleet — 8 devices, concurrent sessions,
// streaming detection, sync baseline — at test scale and checks the
// acceptance properties: every attacked device caught, no false alerts on
// benign traffic, and the async engine's host latency beating the
// synchronous-offload baseline.
func TestFleetScenario(t *testing.T) {
	res, err := Fleet(SmallScale(), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.Devices != 8 || len(res.Rows) != 8 {
		t.Fatalf("fleet size %d/%d, want 8", s.Devices, len(res.Rows))
	}
	if s.Attacked == 0 || s.Caught != s.Attacked {
		t.Fatalf("detection coverage %d/%d attacked devices", s.Caught, s.Attacked)
	}
	if s.FalseAlerts != 0 {
		t.Fatalf("%d false alerts on benign fleet traffic", s.FalseAlerts)
	}
	if s.Segments == 0 {
		t.Fatal("fleet shipped no segments")
	}
	if s.MeanLatUs <= 0 || s.SyncMeanLatUs <= 0 {
		t.Fatalf("latency not measured: %+v", s)
	}
	if s.MeanLatUs >= s.SyncMeanLatUs {
		t.Fatalf("async host latency %.2fµs not below sync baseline %.2fµs",
			s.MeanLatUs, s.SyncMeanLatUs)
	}
	for _, r := range res.Rows {
		if r.Records == 0 || r.PageOps == 0 {
			t.Fatalf("device %d did no work: %+v", r.Device, r)
		}
		if r.Segments == 0 {
			t.Fatalf("device %d shipped nothing: %+v", r.Device, r)
		}
	}
}
