package experiment

import (
	"fmt"

	"repro/internal/ftl"
	"repro/internal/metrics"
	"repro/internal/nvmeoe"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// Figure 2 nominal deployment: a 512 GiB SSD with 7% over-provisioning,
// and a 1 TiB remote retention budget per device (S3 bucket / storage
// server quota). Retention time is capped at the paper's plot horizon.
const (
	nominalDeviceBytes  = 512 << 30
	nominalOPFraction   = 0.07
	nominalRemoteBytes  = 1 << 40
	retentionHorizonDay = 240.0
)

// RetentionRow is one workload's bar group in Figure 2.
type RetentionRow struct {
	Workload       string
	StaleGiBPerDay float64 // measured stale-data production rate
	CompressRatio  float64 // measured DEFLATE ratio of the workload's content
	LocalSSDDays     float64
	CompressionDays  float64
	RSSDDays         float64
}

// countingRetainer counts stale events without pinning (measurement only).
type countingRetainer struct {
	stale uint64
	trims uint64
}

func (c *countingRetainer) OnStale(lpn, ppn uint64, cause ftl.StaleCause, at simclock.Time) bool {
	c.stale++
	if cause == ftl.CauseTrim {
		c.trims++
	}
	return false
}
func (c *countingRetainer) OnMigrate(lpn, oldPPN, newPPN uint64, at simclock.Time) {}
func (c *countingRetainer) OnErased(lpn, ppn uint64, at simclock.Time)            {}
func (c *countingRetainer) Pressure(needPages int, at simclock.Time)              {}

// Fig2Retention measures, for each of the twelve workloads, the stale-data
// production rate and content compressibility by replaying the workload on
// the simulated FTL, then scales to the nominal deployment to produce the
// retention times of Figure 2.
func Fig2Retention(s Scale) ([]RetentionRow, error) {
	var rows []RetentionRow
	for _, prof := range workload.Profiles {
		row, err := fig2One(s, prof)
		if err != nil {
			return nil, fmt.Errorf("fig2 %s: %w", prof.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func fig2One(s Scale, prof workload.Profile) (RetentionRow, error) {
	ctr := &countingRetainer{}
	cfg := s.ftlConfig()
	f := ftl.New(cfg, ctr)
	g := workload.NewGenerator(prof, s.PageSize, f.LogicalPages(), 11)

	// Warm up so overwrites dominate (steady state), then measure.
	warm := s.TraceOps / 4
	var start, end simclock.Time
	measuring := false
	var staleStart uint64
	at := simclock.Time(0)
	for i := 0; i < s.TraceOps; i++ {
		rec := g.Next()
		if i == warm {
			measuring = true
			start = rec.At
			staleStart = ctr.stale
		}
		if err := replayRecord(f, g, rec, &at); err != nil {
			return RetentionRow{}, err
		}
		end = rec.At
	}
	if !measuring || end <= start {
		return RetentionRow{}, fmt.Errorf("trace too short to measure")
	}
	staleEvents := ctr.stale - staleStart
	days := end.Sub(start).Days()
	staleGiBPerDay := float64(staleEvents) * float64(s.PageSize) / float64(1<<30) / days

	// Content compressibility, measured through the same exported codec
	// the offload wire ships segments with: a segment's worth of workload
	// pages in one buffer, so cross-page redundancy counts exactly as it
	// does on the wire.
	const samplePages = 64
	sample := make([]byte, 0, samplePages*s.PageSize)
	for i := 0; i < samplePages; i++ {
		sample = append(sample, g.Content()...)
	}
	ratio := nvmeoe.CompressionRatio(sample)

	opBytes := nominalOPFraction * nominalDeviceBytes
	staleBytesPerDay := staleGiBPerDay * float64(1<<30)
	row := RetentionRow{
		Workload:       prof.Name,
		StaleGiBPerDay: staleGiBPerDay,
		CompressRatio:  ratio,
		LocalSSDDays:   opBytes / staleBytesPerDay,
		// Compressing retained data stretches the same local space.
		CompressionDays: opBytes * ratio / staleBytesPerDay,
		// RSSD ships compressed stale data to the remote budget; local OP
		// space adds on top.
		RSSDDays: (opBytes + float64(nominalRemoteBytes)*ratio) / staleBytesPerDay,
	}
	if row.LocalSSDDays > retentionHorizonDay {
		row.LocalSSDDays = retentionHorizonDay
	}
	if row.CompressionDays > retentionHorizonDay {
		row.CompressionDays = retentionHorizonDay
	}
	if row.RSSDDays > retentionHorizonDay {
		row.RSSDDays = retentionHorizonDay
	}
	return row, nil
}

// replayRecord applies one trace record to an FTL as one submission
// batch dispatched at trace arrival time, generating content for writes
// from the workload's compressibility profile.
func replayRecord(f *ftl.FTL, g *workload.Generator, rec workload.Record, at *simclock.Time) error {
	done, err := submitRecord(f, recordBatch(g, rec, f.LogicalPages(), nil), rec.At)
	if err != nil {
		return err
	}
	*at = simclock.Max(*at, done)
	return nil
}

// RenderFig2 renders the retention table (Figure 2's data as rows).
func RenderFig2(rows []RetentionRow) string {
	tb := metrics.NewTable("workload", "stale GiB/day", "deflate ratio", "LocalSSD (days)", "+Compression (days)", "RSSD (days)")
	for _, r := range rows {
		tb.AddRow(r.Workload, r.StaleGiBPerDay, r.CompressRatio, r.LocalSSDDays, r.CompressionDays, r.RSSDDays)
	}
	return tb.String()
}
