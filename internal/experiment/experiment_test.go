package experiment

import (
	"strings"
	"testing"
)

// The experiment tests assert the *shape* of the paper's results at small
// scale: who wins, by roughly what factor, and which defenses hold. The
// full-scale numbers live in EXPERIMENTS.md via cmd/rssdbench.

func TestFig2RetentionShape(t *testing.T) {
	rows, err := Fig2Retention(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12 workloads", len(rows))
	}
	for _, r := range rows {
		if r.StaleGiBPerDay <= 0 {
			t.Fatalf("%s: no stale production measured", r.Workload)
		}
		if r.CompressRatio <= 1 {
			t.Fatalf("%s: compression ratio %v", r.Workload, r.CompressRatio)
		}
		// Figure 2's ordering: LocalSSD < +Compression < RSSD.
		if !(r.LocalSSDDays < r.CompressionDays && r.CompressionDays < r.RSSDDays) {
			t.Fatalf("%s: ordering broken: %v / %v / %v",
				r.Workload, r.LocalSSDDays, r.CompressionDays, r.RSSDDays)
		}
		// RSSD retains for months (paper: >200 days for most workloads);
		// local-only retention lasts days.
		if r.RSSDDays < 100 {
			t.Fatalf("%s: RSSD retention only %.1f days", r.Workload, r.RSSDDays)
		}
		if r.LocalSSDDays > 40 {
			t.Fatalf("%s: LocalSSD retention suspiciously long: %.1f days", r.Workload, r.LocalSSDDays)
		}
		if r.RSSDDays/r.LocalSSDDays < 10 {
			t.Fatalf("%s: RSSD advantage only %.1fx", r.Workload, r.RSSDDays/r.LocalSSDDays)
		}
	}
	out := RenderFig2(rows)
	if !strings.Contains(out, "webusers") {
		t.Fatalf("render missing workloads:\n%s", out)
	}
}

func TestDefenseMatrixMatchesTable1(t *testing.T) {
	cells, err := DefenseMatrix(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	get := func(sys SystemName, atk AttackName) DefenseCell {
		for _, c := range cells {
			if c.System == sys && c.Attack == atk {
				return c
			}
		}
		t.Fatalf("missing cell %s/%s", sys, atk)
		return DefenseCell{}
	}

	// RSSD: full recovery under every attack, with forensics.
	for _, atk := range AllAttacks {
		c := get(SysRSSD, atk)
		if c.Grade != "full" {
			t.Errorf("RSSD/%s: grade %s (%.0f%%), want full", atk, c.Grade, 100*c.Frac)
		}
		if !c.Forensics {
			t.Errorf("RSSD/%s: no trusted evidence chain", atk)
		}
	}
	// LocalSSD: unrecoverable under every attack.
	for _, atk := range AllAttacks {
		if c := get(SysLocalSSD, atk); c.Grade == "full" {
			t.Errorf("LocalSSD/%s: unexpectedly recovered (%.0f%%)", atk, 100*c.Frac)
		}
	}
	// FlashGuard-like: recovers the classic encryptor and survives the GC
	// attack, but the timing and trimming attacks defeat it (Table 1 row).
	if c := get(SysFlashGuard, AtkEncryptor); c.Grade != "full" {
		t.Errorf("FlashGuard/encryptor: grade %s, want full", c.Grade)
	}
	if c := get(SysFlashGuard, AtkGC); c.Grade != "full" {
		t.Errorf("FlashGuard/gc: grade %s, want full (pins are GC-proof)", c.Grade)
	}
	if c := get(SysFlashGuard, AtkTiming); c.Grade == "full" {
		t.Errorf("FlashGuard/timing: unexpectedly defended (%.0f%%)", 100*c.Frac)
	}
	if c := get(SysFlashGuard, AtkTrimming); c.Grade == "full" {
		t.Errorf("FlashGuard/trimming: unexpectedly defended (%.0f%%)", 100*c.Frac)
	}
	// TimeSSD-like: survives GC, loses to timing (window expiry) and to
	// trimming (trim is not retained at all).
	if c := get(SysTimeSSD, AtkGC); c.Grade != "full" {
		t.Errorf("TimeSSD/gc: grade %s, want full", c.Grade)
	}
	if c := get(SysTimeSSD, AtkTiming); c.Grade == "full" {
		t.Errorf("TimeSSD/timing: unexpectedly defended (%.0f%%)", 100*c.Frac)
	}
	if c := get(SysTimeSSD, AtkTrimming); c.Grade == "full" {
		t.Errorf("TimeSSD/trimming: unexpectedly defended (%.0f%%)", 100*c.Frac)
	}

	out := RenderDefenseMatrix(cells)
	for _, want := range []string{"RSSD", "LocalSSD", "forensics"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPerfOverheadUnderOnePercentShape(t *testing.T) {
	rows, err := PerfOverhead(SmallScale(), []string{"hm", "web"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PlainMeanW <= 0 || r.RSSDMeanW <= 0 {
			t.Fatalf("%s: empty latency data", r.Workload)
		}
		// Claim P1: negligible overhead. At test scale we allow a little
		// slack over the paper's <1%, but it must stay small.
		if r.WriteOverheadPct > 5 {
			t.Errorf("%s: write overhead %.2f%%", r.Workload, r.WriteOverheadPct)
		}
		if r.ReadOverheadPct > 5 {
			t.Errorf("%s: read overhead %.2f%%", r.Workload, r.ReadOverheadPct)
		}
	}
	if out := RenderPerf(rows); !strings.Contains(out, "write ovh %") {
		t.Fatal("render broken")
	}
}

func TestLifetimeWAFShape(t *testing.T) {
	rows, err := LifetimeWAF(SmallScale(), []string{"hm"})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.PlainWAF < 1 || r.RSSDWAF < 1 {
		t.Fatalf("WAF < 1: %+v", r)
	}
	// Claim P2: minimal lifetime impact. Retention adds some migration,
	// but write amplification must stay in the same ballpark.
	if r.RSSDWAF > r.PlainWAF*1.5 {
		t.Errorf("WAF blowup: plain %.2f vs RSSD %.2f", r.PlainWAF, r.RSSDWAF)
	}
	if out := RenderLifetime(rows); !strings.Contains(out, "WAF") {
		t.Fatal("render broken")
	}
}

func TestRecoverySpeedCompletes(t *testing.T) {
	rows, err := RecoverySpeed(SmallScale(), []int{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Complete {
			t.Errorf("recovery incomplete at %d files", r.Files)
		}
		if r.VictimPages == 0 || r.SimTime <= 0 {
			t.Errorf("degenerate row: %+v", r)
		}
	}
	// More files -> more victim pages.
	if rows[1].VictimPages <= rows[0].VictimPages {
		t.Errorf("victim pages did not grow: %d then %d", rows[0].VictimPages, rows[1].VictimPages)
	}
	if out := RenderRecovery(rows); !strings.Contains(out, "complete") {
		t.Fatal("render broken")
	}
}

func TestForensicsSpeedScales(t *testing.T) {
	rows, err := ForensicsSpeed(SmallScale(), []int{1000, 4000})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.ChainIntact || !r.WindowFound {
			t.Errorf("forensics failed: %+v", r)
		}
		if r.EntriesPerSec < 1000 {
			t.Errorf("verification too slow: %.0f entries/s", r.EntriesPerSec)
		}
	}
	if rows[1].Entries <= rows[0].Entries {
		t.Errorf("log sizes did not grow: %d then %d", rows[0].Entries, rows[1].Entries)
	}
	if out := RenderForensics(rows); !strings.Contains(out, "entries/s") {
		t.Fatal("render broken")
	}
}

func TestOffloadCostZeroLoss(t *testing.T) {
	rows, err := OffloadCost(SmallScale(), []string{"src"})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Segments == 0 || r.PagesShipped == 0 {
		t.Fatalf("no offload happened: %+v", r)
	}
	if r.DroppedPages != 0 {
		t.Fatalf("RSSD dropped %d pages with a live remote", r.DroppedPages)
	}
	budget := SmallScale().retentionBudgetPages()
	if r.MaxBacklogPages > budget {
		t.Fatalf("backlog %d exceeded retention budget %d", r.MaxBacklogPages, budget)
	}
	if out := RenderOffload(rows); !strings.Contains(out, "backlog") {
		t.Fatal("render broken")
	}
}

func TestDetectionLatencyCoversAllVariants(t *testing.T) {
	rows, err := DetectionLatency(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 attack variants", len(rows))
	}
	for _, r := range rows {
		if !r.Detected {
			t.Errorf("%s: undetected", r.Attack)
		}
		if r.FalsePositives != 0 {
			t.Errorf("%s: %d false positives on benign traffic", r.Attack, r.FalsePositives)
		}
	}
	if out := RenderDetection(rows); !strings.Contains(out, "wiper") {
		t.Fatal("render broken")
	}
}

// TestDetectionAblation shows each detector mechanism is load-bearing:
// the full ensemble catches everything, while each ablated variant misses
// at least one attack.
func TestDetectionAblation(t *testing.T) {
	cells, err := DetectionAblation(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	missed := map[string]map[string]bool{}
	for _, c := range cells {
		if c.Variant == "full" && !c.Detected {
			t.Errorf("full ensemble missed %s", c.Attack)
		}
		if !c.Detected {
			if missed[c.Variant] == nil {
				missed[c.Variant] = map[string]bool{}
			}
			missed[c.Variant][c.Attack] = true
		}
	}
	// Without the cumulative counter, the stealthy timing attack slips
	// under the rate window.
	if !missed["window-only"]["timing-attack"] {
		t.Error("window-only caught the stealthy timing attack; cumulative counter looks redundant")
	}
	// Without the zero-wipe signal, the wiper is invisible (low entropy,
	// and its victims are only attributed through that signal).
	if !missed["no-zero-signal"]["wiper"] {
		t.Error("no-zero-signal caught the wiper; zero-wipe signal looks redundant")
	}
	// The cumulative-only variant keeps full coverage — its cost is
	// latency, which the detection-latency experiment reports.
	if len(missed["cumulative-only"]) > 1 {
		t.Errorf("cumulative-only missed too much: %v", missed["cumulative-only"])
	}
	if out := RenderDetectionAblation(cells); !strings.Contains(out, "MISSED") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestAttackValidationDestroysDataOnLocalSSD(t *testing.T) {
	rows, err := AttackValidation(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[AttackName]ValidationRow{}
	for _, r := range rows {
		byName[r.Attack] = r
	}
	for _, atk := range AllAttacks {
		r := byName[atk]
		if r.SurvivingPct > 5 {
			t.Errorf("%s: %.0f%% of victim data survived on LocalSSD", atk, r.SurvivingPct)
		}
	}
	if byName[AtkGC].GCRunsForced == 0 {
		t.Error("GC attack forced no garbage collection")
	}
	if byName[AtkTrimming].TrimsIssued == 0 {
		t.Error("trimming attack issued no trims")
	}
	if out := RenderValidation(rows); !strings.Contains(out, "surviving %") {
		t.Fatal("render broken")
	}
}
