// Package experiment implements the evaluation harness: one experiment
// per table, figure, and performance claim of the paper, runnable both
// from cmd/rssdbench and from the root-level Go benchmarks.
//
// DESIGN.md carries the experiment index (what each experiment reproduces
// and which modules it exercises); EXPERIMENTS.md records paper-reported
// versus measured results.
package experiment

import (
	"math/rand"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/host"
	"repro/internal/nand"
	"repro/internal/remote"
	"repro/internal/simclock"
)

// PSK is the enrollment key used by every experiment device.
var PSK = []byte("rssd-experiment-psk-0123456789ab")

// Scale selects how much work experiments do. Small keeps unit tests
// quick; Full is what cmd/rssdbench and the benchmarks use.
type Scale struct {
	// Blocks scales the simulated device (blocks per plane).
	BlocksPerPlane int
	// PagesPerBlock and PageSize fix block geometry.
	PagesPerBlock int
	PageSize      int
	// TraceOps is the number of trace operations replayed per workload.
	TraceOps int
	// SeedFiles is the user corpus size for attack experiments.
	SeedFiles    int
	MaxFilePages int
}

// SmallScale returns the configuration used by `go test`.
func SmallScale() Scale {
	return Scale{
		BlocksPerPlane: 64, PagesPerBlock: 8, PageSize: 512,
		TraceOps: 4000, SeedFiles: 20, MaxFilePages: 3,
	}
}

// FullScale returns the configuration used by cmd/rssdbench.
func FullScale() Scale {
	return Scale{
		BlocksPerPlane: 256, PagesPerBlock: 32, PageSize: 4096,
		TraceOps: 30000, SeedFiles: 60, MaxFilePages: 6,
	}
}

// ftlConfig builds the standard experiment FTL geometry.
func (s Scale) ftlConfig() ftl.Config {
	return ftl.Config{
		NAND: nand.Config{
			Geometry: nand.Geometry{
				Channels: 4, ChipsPerChannel: 2, DiesPerChip: 1, PlanesPerDie: 1,
				BlocksPerPlane: s.BlocksPerPlane, PagesPerBlock: s.PagesPerBlock,
				PageSize: s.PageSize,
			},
			Timing: nand.DefaultTiming(),
		},
		OverProvision: 0.125,
		GCLowWater:    3,
		GCHighWater:   6,
	}
}

// Rig is a fully wired RSSD device with host filesystem and remote server.
type Rig struct {
	FS     *host.FlatFS
	Dev    *core.RSSD
	Store  *remote.Store
	Client *remote.Client
}

// NewRSSDRig wires an RSSD to an in-process remote server and filesystem.
func NewRSSDRig(s Scale) (*Rig, error) {
	store := remote.NewStore(remote.NewMemStore())
	srv := remote.NewServer(store, PSK)
	client, err := remote.Loopback(srv, PSK, 1)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.FTL = s.ftlConfig()
	cfg.CheckpointEvery = 4096
	dev := core.New(cfg, client)
	return &Rig{
		FS:     host.NewFlatFS(dev, simclock.NewClock()),
		Dev:    dev,
		Store:  store,
		Client: client,
	}, nil
}

// BaselineRig is a conventional FTL with a baseline retention policy.
type BaselineRig struct {
	FS  *host.FlatFS
	FTL *ftl.FTL
}

// NewBaselineRig wires an FTL + retainer + filesystem. attach is called
// with the constructed FTL so the retainer can reference it.
func NewBaselineRig(s Scale, ret ftl.Retainer, attach func(*ftl.FTL)) *BaselineRig {
	f := ftl.New(s.ftlConfig(), ret)
	if attach != nil {
		attach(f)
	}
	return &BaselineRig{FS: host.NewFlatFS(f, simclock.NewClock()), FTL: f}
}

// SystemName identifies a system under test in the defense matrix.
type SystemName string

// Systems under comparison in Table 1.
const (
	SysLocalSSD   SystemName = "LocalSSD"
	SysFlashGuard SystemName = "FlashGuard~"
	SysTimeSSD    SystemName = "TimeSSD~"
	SysRSSD       SystemName = "RSSD"
)

// AttackName identifies an attack scenario.
type AttackName string

// Attack scenarios.
const (
	AtkEncryptor AttackName = "encryptor"
	AtkGC        AttackName = "gc-attack"
	AtkTiming    AttackName = "timing-attack"
	AtkTrimming  AttackName = "trimming-attack"
)

// AllAttacks lists the matrix's attack scenarios.
var AllAttacks = []AttackName{AtkEncryptor, AtkGC, AtkTiming, AtkTrimming}

// AllSystems lists the matrix's systems.
var AllSystems = []SystemName{SysLocalSSD, SysFlashGuard, SysTimeSSD, SysRSSD}

// makeAttack constructs an attack instance for the matrix. Timing spans
// ~10 simulated days so it outlasts TimeSSD's 3-day window, as the paper's
// timing attack outlasts bounded retention.
func makeAttack(name AttackName) attack.Attack {
	key := [32]byte{0xA7, 1}
	switch name {
	case AtkGC:
		return &attack.GCAttack{Key: key, Rounds: 2}
	case AtkTiming:
		return &attack.TimingAttack{
			Key: key, FilesPerBurst: 2,
			BurstInterval: 24 * simclock.Hour, CoverOpsPerOp: 2,
		}
	case AtkTrimming:
		return &attack.TrimmingAttack{Key: key}
	default:
		return &attack.Encryptor{Key: key}
	}
}

// expectedPages flattens a file snapshot into per-LPN expected contents.
func expectedPages(snapshot map[string][]byte, extents map[string][]uint64, pageSize int) map[uint64][]byte {
	want := map[uint64][]byte{}
	for name, data := range snapshot {
		for i, lpn := range extents[name] {
			page := make([]byte, pageSize)
			if off := i * pageSize; off < len(data) {
				copy(page, data[off:])
			}
			want[lpn] = page
		}
	}
	return want
}

// seedAndSnapshot seeds the corpus and captures content + layout.
func seedAndSnapshot(fs *host.FlatFS, rng *rand.Rand, s Scale) (map[string][]byte, map[string][]uint64, error) {
	_, snap, err := attack.Seed(fs, rng, s.SeedFiles, s.MaxFilePages)
	if err != nil {
		return nil, nil, err
	}
	extents := map[string][]uint64{}
	for name := range snap {
		pages, err := fs.Extents(name)
		if err != nil {
			return nil, nil, err
		}
		extents[name] = pages
	}
	return snap, extents, nil
}

// grade maps a recoverable fraction to the paper's Table 1 symbols.
func grade(frac float64) string {
	switch {
	case frac >= 0.99:
		return "full"
	case frac > 0.10:
		return "partial"
	default:
		return "none"
	}
}

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

