package experiment

import (
	"repro/internal/batch"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// Trace replay drives devices through the batched datapath: one trace
// record (a multi-page host request) becomes one submission batch, the
// way an NVMe driver turns one I/O into one queue submission. Every
// figure/table experiment that replays traces goes through these helpers,
// so the published numbers exercise the same path production I/O would.

// recordBatch converts one trace record into a submission batch, appending
// onto ops (pass ops[:0] to reuse a buffer). Content for writes is drawn
// from the generator in page order, matching what a per-op replay writes.
func recordBatch(g *workload.Generator, rec workload.Record, logical uint64, ops []batch.Op) []batch.Op {
	for p := 0; p < rec.Pages; p++ {
		lpn := rec.LPN + uint64(p)
		if lpn >= logical {
			break
		}
		switch rec.Op {
		case workload.OpWrite:
			ops = append(ops, batch.Op{Kind: batch.OpWrite, LPN: lpn, Data: g.Content()})
		case workload.OpRead:
			ops = append(ops, batch.Op{Kind: batch.OpRead, LPN: lpn})
		case workload.OpTrim:
			ops = append(ops, batch.Op{Kind: batch.OpTrim, LPN: lpn})
		}
	}
	return ops
}

// submitRecord submits one record's batch at issue time and returns when
// the device finished it (never before issue). Per-op and batch-level
// failures both surface as errors.
func submitRecord(dev batch.Device, ops []batch.Op, issue simclock.Time) (simclock.Time, error) {
	if len(ops) == 0 {
		return issue, nil
	}
	res, done, err := dev.SubmitBatch(ops, issue)
	if err != nil {
		return issue, err
	}
	for i := range res {
		if res[i].Err != nil {
			return issue, res[i].Err
		}
	}
	return simclock.Max(issue, done), nil
}
