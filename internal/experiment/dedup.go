package experiment

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/core"
	"repro/internal/nand"
	"repro/internal/nvmeoe"
	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
)

// The dedup experiment quantifies what content addressing buys fleet
// restore. Each device writes an OS-image-shaped corpus twice:
// incompressible page contents drawn from a shared base (the same ~N/4
// unique pages on every device, each appearing ~4 times per image —
// package caches, shared libraries), where the second pass is an update
// wave that retires every page's first version into the remote store.
// Then a pre-attack checkpoint, then a divergence phase that scrambles
// ~30% of the image with device-private junk. Every device power-cycles
// and restores the checkpointed image twice — once over the legacy
// full-image stream, which hauls the newest-before-cut version of every
// LPN with remote history (the whole churned image), and once over the
// content-addressed path, where the checkpoint anchor drops every LPN
// untouched since the checkpoint and hash references collapse repeated
// contents among the rest. Both restores are verified page-identical with
// the evidence chain intact. The measured per-device wire/RTO feed a
// fleet scaling model over the shared recovery NIC, which is where the
// gates bind: dedup wire at 512 devices must be <= 0.35x the full-image
// model and dedup RTO growth 8 -> 512 must stay sub-linear.

// dedupDupFactor is how many times each unique content appears in one
// image; dedupDivergePct is the fraction of the image the post-checkpoint
// phase touches.
const (
	dedupDupFactor   = 4
	dedupDivergePct  = 30
	dedupWireGate    = 0.35 // dedup wire at 512 devices vs full model
	dedupScaleFrom   = 8
	dedupScaleTo     = 512
)

// DedupCohort is one measured restore cohort (dedup on or off).
type DedupCohort struct {
	Dedup        bool
	MeanRTOms    float64
	MaxRTOms     float64
	WireMiB      float64 // fleet total restore wire
	MeanChunks   float64
	LiteralPages int
	RefPages     int
	HitRate      float64 // refs / (refs + literals)
	Resumes      int
}

// DedupMeasured is the measured (simulated-fleet) half of the result.
type DedupMeasured struct {
	Devices       int
	ImagePages    int // pages per device image
	UniquePages   int // distinct contents in the shared base corpus
	DivergedPages int // mean pages scrambled after the checkpoint per device
	Full          DedupCohort
	Dedup         DedupCohort
	WireRatio     float64 // dedup wire / full wire, per device
	AllVerified   bool
	ChainsOK      bool
	// Store-side content dedup on the dedup cohort's store: unique
	// physical pages vs logical page versions across the fleet.
	StoreUniquePages int
	StoreTotalRefs   int64
	StoreHitRate     float64
	// Server-side ledger cross-check (summed RecoveryStats).
	ServerPagesLiteral uint64
	ServerPagesRef     uint64
}

// DedupScalePoint is one row of the modeled fleet scaling curve: the
// measured per-device stream replayed over the shared recovery NIC at N
// devices, for both restore models.
type DedupScalePoint struct {
	Devices      int
	WireFullMiB  float64 // fleet restore wire, full-image model
	WireDedupMiB float64 // fleet restore wire, dedup + delta model
	WireRatio    float64 // dedup / full
	RTOFullMs    float64 // modeled per-device RTO, full-image
	RTODedupMs   float64 // modeled per-device RTO, dedup + delta
	SpeedupX     float64
}

// DedupAllocs is the steady-state alloc audit of the dedup hot path.
type DedupAllocs struct {
	HashAllocsPerOp   float64
	EncodeAllocsPerOp float64
	Skipped           bool // race build: instrumentation allocates
}

// DedupResult is the full dedup experiment report.
type DedupResult struct {
	Measured DedupMeasured
	Scaling  []DedupScalePoint
	Allocs   DedupAllocs
}

// dedupPage fills p with the incompressible content of one corpus page.
// Contents are deterministic in contentID alone, so every device that
// writes contentID c writes the same bytes — the cross-device dedup the
// fleet model rests on.
func dedupPage(p []byte, contentID int) {
	rng := rand.New(rand.NewSource(int64(0x5EED0000 + contentID)))
	rng.Read(p)
}

// dedupDevice carries one device of a cohort across its power cycle.
type dedupDevice struct {
	cfg      core.Config
	nand     *nand.Device
	cut      uint64
	want     map[uint64][]byte
	endAt    simclock.Time
	diverged int
	rep      core.RestoreReport
	verified bool
}

// runDedupSetup writes the image corpus, checkpoints, diverges, and powers
// off one device.
func runDedupSetup(s Scale, srv *remote.Server, deviceID uint64, imagePages, uniquePages int) (*dedupDevice, error) {
	client, err := remote.Loopback(srv, PSK, deviceID)
	if err != nil {
		return nil, err
	}
	defer client.Close()

	cfg := core.DefaultConfig()
	cfg.FTL = s.ftlConfig()
	cfg.DeviceID = deviceID
	cfg.OffloadHighWater = 0.50
	cfg.OffloadLowWater = 0.25
	dev := core.New(cfg, client)
	defer dev.Close()
	d := &dedupDevice{cfg: cfg, want: make(map[uint64][]byte, imagePages)}

	// Two write passes: v1 (the as-installed image) then v2 (an update
	// wave, the pre-attack state). The overwrite retires every v1 page
	// into the remote store, so the legacy full-image stream has a stale
	// version to haul for every LPN — the history a real device accretes
	// and exactly what the checkpoint anchor exists to skip. Both passes
	// draw from shared content spaces so dedup works across devices.
	at := simclock.Time(0)
	page := make([]byte, s.PageSize)
	for pass := 0; pass < 2; pass++ {
		for lpn := 0; lpn < imagePages; lpn++ {
			dedupPage(page, pass*uniquePages+lpn%uniquePages)
			if at, err = dev.Write(uint64(lpn), page, at); err != nil {
				return nil, err
			}
			if pass == 1 {
				d.want[uint64(lpn)] = append([]byte(nil), page...)
			}
		}
	}
	if at, err = dev.OffloadNow(at); err != nil {
		return nil, err
	}
	// The pre-attack checkpoint: the delta restore anchors here.
	if at, err = dev.CheckpointNow(at); err != nil {
		return nil, err
	}
	d.cut = dev.Log().NextSeq()

	// Divergence: scramble a random slice of the image with
	// device-private junk (an encryptor's write pattern — incompressible
	// and unique, so neither codec nor dedup can help these pages; only
	// the delta can, by being the only thing that needs streaming).
	rng := rand.New(rand.NewSource(int64(900 + deviceID)))
	junk := make([]byte, s.PageSize)
	for _, lpn := range rng.Perm(imagePages)[:imagePages*dedupDivergePct/100] {
		rng.Read(junk)
		if at, err = dev.Write(uint64(lpn), junk, at); err != nil {
			return nil, err
		}
		d.diverged++
	}
	if at, err = dev.OffloadNow(at); err != nil {
		return nil, err
	}
	d.nand = dev.FTL().Device()
	d.endAt = at
	return d, nil
}

// runDedupRestore powers the device back on and restores the checkpointed
// image through the shared restore harness, verifying page-identical.
func runDedupRestore(srv *remote.Server, link *remote.RecoveryLink, d *dedupDevice, deviceID uint64, dedup bool) error {
	rd, err := restoreRun{
		Server: srv, Link: link, ChunkPages: 64,
		Dedup: dedup, Delta: dedup,
	}.run(d.cfg, d.nand, deviceID, d.cut, d.want, d.endAt)
	if err != nil {
		return err
	}
	d.rep = rd.rep
	d.verified = rd.verified
	rd.dev.Close()
	rd.client.Close()
	return nil
}

// runDedupCohort runs one full cohort (setup + concurrent restore) on its
// own store and server, returning the cohort stats plus the store handle.
func runDedupCohort(s Scale, devices, imagePages, uniquePages int, dedup bool) (DedupCohort, *remote.Store, *remote.Server, []*dedupDevice, error) {
	co := DedupCohort{Dedup: dedup}
	store := remote.NewStore(remote.NewMemStore())
	srv := remote.NewServer(store, PSK)
	link := remote.NewRecoveryLink(0, 0)

	devs := make([]*dedupDevice, devices)
	errs := make([]error, devices)
	var wg sync.WaitGroup
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			devs[i], errs[i] = runDedupSetup(s, srv, uint64(i+1), imagePages, uniquePages)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return co, nil, nil, nil, fmt.Errorf("device %d setup: %w", i+1, err)
		}
	}
	// Leak check around the restore storm: the outstanding-buffer gauge
	// may move only by the pooled pages the surviving NAND arrays hold
	// for restored flash content.
	poolBase := bufpool.Outstanding()
	var resBase int64
	for _, d := range devs {
		resBase += d.nand.HeldPageBufs()
	}
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runDedupRestore(srv, link, devs[i], uint64(i+1), dedup)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return co, nil, nil, nil, fmt.Errorf("device %d restore: %w", i+1, err)
		}
	}
	var resNow int64
	for _, d := range devs {
		resNow += d.nand.HeldPageBufs()
	}
	if drift := bufpool.Outstanding().Sub(poolBase).Total() - (resNow - resBase); drift != 0 {
		return co, nil, nil, nil, fmt.Errorf(
			"bufpool outstanding-buffer gauge drifted %+d beyond NAND residency across the restore cohort", drift)
	}

	var totalRTO, maxRTO simclock.Duration
	var wire uint64
	var chunks int
	for _, d := range devs {
		totalRTO += d.rep.RTO
		if d.rep.RTO > maxRTO {
			maxRTO = d.rep.RTO
		}
		wire += d.rep.BytesWire
		chunks += d.rep.Chunks
		co.LiteralPages += d.rep.PagesLiteral
		co.RefPages += d.rep.PagesRef
		co.Resumes += d.rep.Resumes
	}
	co.MeanRTOms = float64(totalRTO) / float64(devices) / 1e6
	co.MaxRTOms = float64(maxRTO) / 1e6
	co.WireMiB = float64(wire) / float64(1<<20)
	co.MeanChunks = float64(chunks) / float64(devices)
	if t := co.LiteralPages + co.RefPages; t > 0 {
		co.HitRate = float64(co.RefPages) / float64(t)
	}
	return co, store, srv, devs, nil
}

// dedupRTOModel projects the measured per-device restore onto an N-device
// fleet sharing the recovery NIC: the local (flash + apply) component is
// what measured RTO exceeds the measured link charge by, and the link
// charge rescales with the fair-share N/BW.
func dedupRTOModel(meanRTOms, meanChunks, wireBytes float64, measuredDevices, n int) float64 {
	rttMs := float64(remote.DefaultRecoveryRTT) / 1e6
	bytesPerMs := float64(remote.DefaultRecoveryMBps) * 1e6 / 1e3
	linkAt := func(n int) float64 {
		return meanChunks*rttMs + wireBytes*float64(n)/bytesPerMs
	}
	local := meanRTOms - linkAt(measuredDevices)
	if local < 0 {
		local = 0
	}
	return local + linkAt(n)
}

// DedupRestore runs the content-addressed restore experiment.
func DedupRestore(s Scale, devices int) (*DedupResult, error) {
	if devices <= 0 {
		devices = 8
	}
	s = fleetScale(s)

	// Size the image from the device geometry, bounded by the scale's
	// replay budget so -short stays CI-sized.
	probe := core.DefaultConfig()
	probe.FTL = s.ftlConfig()
	logical := int(core.New(probe, nil).LogicalPages())
	imagePages := logical / 2
	if cap := s.TraceOps / 2; imagePages > cap {
		imagePages = cap
	}
	uniquePages := imagePages / dedupDupFactor
	if uniquePages < 1 {
		uniquePages = 1
	}

	full, _, _, fullDevs, err := runDedupCohort(s, devices, imagePages, uniquePages, false)
	if err != nil {
		return nil, fmt.Errorf("full cohort: %w", err)
	}
	dedup, store, srv, dedupDevs, err := runDedupCohort(s, devices, imagePages, uniquePages, true)
	if err != nil {
		return nil, fmt.Errorf("dedup cohort: %w", err)
	}

	m := DedupMeasured{
		Devices:     devices,
		ImagePages:  imagePages,
		UniquePages: uniquePages,
		Full:        full,
		Dedup:       dedup,
		AllVerified: true,
		ChainsOK:    true,
	}
	var diverged int
	for _, d := range append(fullDevs, dedupDevs...) {
		if !d.verified {
			m.AllVerified = false
		}
	}
	for _, d := range dedupDevs {
		diverged += d.diverged
	}
	m.DivergedPages = diverged / devices
	if full.WireMiB > 0 {
		m.WireRatio = dedup.WireMiB / full.WireMiB
	}
	for i := 0; i < devices; i++ {
		id := uint64(i + 1)
		entries := store.Entries(id, 0, store.Head(id).NextSeq)
		if err := oplog.VerifyChain(entries, [oplog.HashSize]byte{}); err != nil {
			m.ChainsOK = false
		}
		rs := srv.RecoveryStats(id)
		m.ServerPagesLiteral += rs.PagesLiteral
		m.ServerPagesRef += rs.PagesRef
	}
	ds := store.Dedup()
	m.StoreUniquePages = ds.UniquePages
	m.StoreTotalRefs = ds.TotalRefs
	m.StoreHitRate = ds.HitRate()

	// The scaling curve: per-device wire is N-independent, the shared NIC
	// is not. Gates bind at the 512-device point.
	wireFullDev := full.WireMiB / float64(devices) * float64(1<<20)
	wireDedupDev := dedup.WireMiB / float64(devices) * float64(1<<20)
	var scaling []DedupScalePoint
	for _, n := range []int{8, 64, 512} {
		p := DedupScalePoint{
			Devices:      n,
			WireFullMiB:  wireFullDev * float64(n) / float64(1<<20),
			WireDedupMiB: wireDedupDev * float64(n) / float64(1<<20),
			RTOFullMs:    dedupRTOModel(full.MeanRTOms, full.MeanChunks, wireFullDev, devices, n),
			RTODedupMs:   dedupRTOModel(dedup.MeanRTOms, dedup.MeanChunks, wireDedupDev, devices, n),
		}
		if p.WireFullMiB > 0 {
			p.WireRatio = p.WireDedupMiB / p.WireFullMiB
		}
		if p.RTODedupMs > 0 {
			p.SpeedupX = p.RTOFullMs / p.RTODedupMs
		}
		scaling = append(scaling, p)
	}

	// Steady-state alloc audit of the dedup hot path: page hashing and
	// hash-ref chunk encode through pooled scratch.
	var allocs DedupAllocs
	if bufpool.RaceEnabled {
		allocs.Skipped = true
	} else {
		page := make([]byte, s.PageSize)
		dedupPage(page, 1)
		h := bufpool.GetHasher()
		allocs.HashAllocsPerOp, _ = measureAllocs(2000, func() { h.Sum256(page) })
		h.Release()
		refPages := make([]nvmeoe.RefPage, 64)
		for i := range refPages {
			refPages[i].LPN = uint64(i)
			refPages[i].Hash = bufpool.GetHasher().Sum256(page)
			if i%2 == 0 {
				refPages[i].Data = page
			} else {
				refPages[i].Ref = true
			}
		}
		encode := func() {
			raw := bufpool.Get(nvmeoe.RefChunkWireSize(refPages))
			raw.B = nvmeoe.AppendRefChunk(raw.B, 1, refPages)
			blob := bufpool.Get(nvmeoe.BlobOverhead + len(raw.B))
			blob.B = nvmeoe.AppendSegmentBlob(blob.B, raw.B)
			blob.Release()
			raw.Release()
		}
		encode() // warm
		allocs.EncodeAllocsPerOp, _ = measureAllocs(500, encode)
	}

	res := &DedupResult{Measured: m, Scaling: scaling, Allocs: allocs}

	// Hard gates: a regression here must fail the run, not prettify a
	// table.
	if !m.AllVerified {
		return res, fmt.Errorf("dedup gate: a restored image was not page-identical")
	}
	if !m.ChainsOK {
		return res, fmt.Errorf("dedup gate: an evidence chain failed verification")
	}
	p512 := scaling[len(scaling)-1]
	if p512.WireRatio > dedupWireGate {
		return res, fmt.Errorf("dedup gate: wire ratio %.3f at %d devices exceeds %.2f",
			p512.WireRatio, p512.Devices, dedupWireGate)
	}
	p8 := scaling[0]
	linear := float64(p512.Devices) / float64(p8.Devices)
	if growth := p512.RTODedupMs / p8.RTODedupMs; growth >= linear {
		return res, fmt.Errorf("dedup gate: RTO growth %d->%d is %.1fx (>= linear %.0fx)",
			p8.Devices, p512.Devices, growth, linear)
	}
	if !allocs.Skipped && (allocs.HashAllocsPerOp != 0 || allocs.EncodeAllocsPerOp != 0) {
		return res, fmt.Errorf("dedup gate: hot path allocates (hash %.2f/op, encode %.2f/op)",
			allocs.HashAllocsPerOp, allocs.EncodeAllocsPerOp)
	}
	return res, nil
}

// RenderDedup renders the dedup experiment report.
func RenderDedup(res *DedupResult) string {
	m := res.Measured
	out := fmt.Sprintf(
		"measured: %d devices, image %d pages (%d unique x%d), %d diverged/device after checkpoint\n"+
			"          full:  RTO mean %.2f ms, fleet wire %.2f MiB\n"+
			"          dedup: RTO mean %.2f ms, fleet wire %.2f MiB (%.2fx of full), hit rate %.0f%%, anchor delta\n"+
			"          store: %d unique pages / %d refs (%.0f%% content dedup); server ledger %d literal + %d ref\n",
		m.Devices, m.ImagePages, m.UniquePages, dedupDupFactor, m.DivergedPages,
		m.Full.MeanRTOms, m.Full.WireMiB,
		m.Dedup.MeanRTOms, m.Dedup.WireMiB, m.WireRatio, m.Dedup.HitRate*100,
		m.StoreUniquePages, m.StoreTotalRefs, m.StoreHitRate*100,
		m.ServerPagesLiteral, m.ServerPagesRef)
	if m.AllVerified && m.ChainsOK {
		out += "          all images page-identical, all chains verified\n"
	} else {
		out += "          VERIFICATION FAILED\n"
	}
	out += "scaling (modeled on the shared recovery NIC):\n"
	for _, p := range res.Scaling {
		out += fmt.Sprintf("          %4d devices: wire %9.2f -> %8.2f MiB (%.2fx), RTO %8.2f -> %8.2f ms (%.1fx faster)\n",
			p.Devices, p.WireFullMiB, p.WireDedupMiB, p.WireRatio, p.RTOFullMs, p.RTODedupMs, p.SpeedupX)
	}
	if res.Allocs.Skipped {
		out += "allocs:   skipped (race build)\n"
	} else {
		out += fmt.Sprintf("allocs:   hash %.2f/op, ref-chunk encode %.2f/op (steady state, gate 0)\n",
			res.Allocs.HashAllocsPerOp, res.Allocs.EncodeAllocsPerOp)
	}
	return out
}
