package experiment

import "testing"

// TestFleetClusterScenario runs the multi-server fleet at test scale: 12
// devices over 3 servers, one server killed at the one-third mark of
// every device's replay. It checks the control plane's acceptance
// properties end to end — zero entries or segments lost across the kill,
// every chain verified, detection still catching every attacked device
// with state handed off across engines, and a monotone modeled scaling
// curve.
func TestFleetClusterScenario(t *testing.T) {
	const devices, servers = 12, 3
	res, err := Fleet(SmallScale(), devices, servers)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary
	if sum.Attacked == 0 || sum.Caught != sum.Attacked {
		t.Fatalf("detection coverage %d/%d attacked devices across failover", sum.Caught, sum.Attacked)
	}
	if sum.FalseAlerts != 0 {
		t.Fatalf("%d false alerts on benign fleet traffic", sum.FalseAlerts)
	}
	if sum.Segments == 0 {
		t.Fatal("fleet shipped no segments")
	}

	c := res.Cluster
	if c == nil {
		t.Fatal("multi-server run produced no cluster report")
	}
	f := c.Failover
	if f.KilledServer < 0 || f.KilledServer >= servers {
		t.Fatalf("no server was killed: %+v", f)
	}
	if f.DevicesRemapped == 0 || f.Handoffs != f.DevicesRemapped {
		t.Fatalf("failover moved %d devices but handed off %d detection states", f.DevicesRemapped, f.Handoffs)
	}
	if f.SegmentsLost != 0 || f.EntriesLost != 0 {
		t.Fatalf("durability broken across the kill: %d segments / %d entries lost", f.SegmentsLost, f.EntriesLost)
	}
	if f.ChainsVerified != devices {
		t.Fatalf("%d chains verified, want %d", f.ChainsVerified, devices)
	}
	if f.Redials == 0 {
		t.Fatal("the dead server's devices never redialed")
	}

	deadRows := 0
	for _, sr := range c.ServerRows {
		if !sr.Alive {
			deadRows++
			if sr.Server != f.KilledServer {
				t.Fatalf("server %d dead but %d was killed", sr.Server, f.KilledServer)
			}
			if sr.Devices != 0 {
				t.Fatalf("dead server %d still holds %d devices", sr.Server, sr.Devices)
			}
		}
		if sr.Errors != 0 {
			t.Fatalf("server %d ledgered %d ingest errors", sr.Server, sr.Errors)
		}
	}
	if deadRows != 1 {
		t.Fatalf("%d dead servers, want exactly 1", deadRows)
	}

	if len(c.Curve) != 3 { // servers=3 -> curve at 1, 2, 3
		t.Fatalf("curve has %d points: %+v", len(c.Curve), c.Curve)
	}
	for i, p := range c.Curve {
		if p.Segments == 0 || p.ModelSegsPerSec <= 0 {
			t.Fatalf("curve point %+v did no work", p)
		}
		// The tight 1.3 spread gate lives in the placement tests at
		// 512 devices / 8 servers; a 12-device fleet rounds too hard
		// (cap ceil(1.1*12/3) = 5 over 3 servers allows 5/3).
		if p.SpreadMaxMin > 3 {
			t.Fatalf("curve point %d servers: spread %.3f", p.Servers, p.SpreadMaxMin)
		}
		// Near-monotone, not strictly monotone: devices dial concurrently
		// and sticky bounded-load placement is arrival-ordered, so a
		// 12-device curve can draw a 7/5 two-server split whose modeled
		// makespan ties an unlucky 5/4/3 three-server split. Placement
		// granularity may plateau the curve at this scale; it must never
		// materially regress it, and the >= 1.5x end gate still binds.
		if i > 0 && p.ModelScaleUp < c.Curve[i-1].ModelScaleUp*0.95 {
			t.Fatalf("modeled scaling regressed at %d servers: %+v", p.Servers, c.Curve)
		}
	}
	if c.ModelScaleUp < 1.5 {
		t.Fatalf("modeled scale-up %.2fx at %d servers, want >= 1.5x", c.ModelScaleUp, servers)
	}
}
