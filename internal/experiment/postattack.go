package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/attack"
	"repro/internal/batch"
	"repro/internal/forensic"
	"repro/internal/metrics"
	"repro/internal/recovery"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// RecoveryRow measures post-attack recovery speed (claim P3) for one
// corpus size.
type RecoveryRow struct {
	Files         int
	VictimPages   int
	MiB           float64
	SimTime       simclock.Duration
	WallTime      time.Duration
	MiBPerSecWall float64
	Complete      bool
}

// RecoverySpeed encrypts corpora of increasing size and measures full
// restoration time.
func RecoverySpeed(s Scale, fileCounts []int) ([]RecoveryRow, error) {
	var rows []RecoveryRow
	for _, n := range fileCounts {
		sc := s
		sc.SeedFiles = n
		rig, err := NewRSSDRig(sc)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(13))
		if _, _, err := seedAndSnapshot(rig.FS, rng, sc); err != nil {
			rig.Client.Close()
			return nil, fmt.Errorf("recovery seed %d: %w", n, err)
		}
		if _, err := (&attack.Encryptor{Key: [32]byte{5}}).Run(rig.FS, rng); err != nil {
			rig.Client.Close()
			return nil, err
		}
		an := forensic.NewAnalyzer(rig.Dev, rig.Client)
		ev, err := an.Timeline()
		if err != nil {
			rig.Client.Close()
			return nil, err
		}
		win, err := an.AttackWindow(ev, rig.Dev.Log().NextSeq())
		if err != nil {
			rig.Client.Close()
			return nil, err
		}
		eng := recovery.NewEngine(rig.Dev, rig.Client, recovery.Options{Verify: true})
		_, rep, err := eng.RestoreWindow(win, rig.FS.Clock().Now())
		rig.Client.Close()
		if err != nil {
			return nil, err
		}
		mib := float64(rep.BytesRestored) / float64(1<<20)
		row := RecoveryRow{
			Files:       n,
			VictimPages: rep.VictimPages,
			MiB:         mib,
			SimTime:     rep.SimTime,
			WallTime:    rep.WallTime,
			Complete:    rep.Complete(),
		}
		if rep.WallTime > 0 {
			row.MiBPerSecWall = mib / rep.WallTime.Seconds()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderRecovery renders the recovery-speed table.
func RenderRecovery(rows []RecoveryRow) string {
	tb := metrics.NewTable("files", "victim pages", "MiB", "sim time", "wall time", "MiB/s (wall)", "complete")
	for _, r := range rows {
		tb.AddRow(r.Files, r.VictimPages, r.MiB, r.SimTime.String(), r.WallTime.Round(time.Microsecond).String(), r.MiBPerSecWall, r.Complete)
	}
	return tb.String()
}

// ForensicsRow measures evidence-chain construction speed (claim P4).
type ForensicsRow struct {
	Entries       int
	VerifyWall    time.Duration
	WindowWall    time.Duration
	EntriesPerSec float64
	ChainIntact   bool
	WindowFound   bool
}

// ForensicsSpeed builds logs of increasing length (trace replay followed
// by an attack), then measures timeline verification and attack-window
// reconstruction time.
func ForensicsSpeed(s Scale, opCounts []int) ([]ForensicsRow, error) {
	var rows []ForensicsRow
	prof, _ := workload.ProfileByName("hm")
	for _, ops := range opCounts {
		sc := s
		sc.TraceOps = ops
		rig, err := NewRSSDRig(sc)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(17))
		if _, _, err := seedAndSnapshot(rig.FS, rng, sc); err != nil {
			rig.Client.Close()
			return nil, err
		}
		// Background history before the attack.
		if err := replayAll(rig.Dev, prof, sc, 19); err != nil {
			rig.Client.Close()
			return nil, fmt.Errorf("forensics replay: %w", err)
		}
		if _, err := (&attack.Encryptor{Key: [32]byte{6}}).Run(rig.FS, rng); err != nil {
			rig.Client.Close()
			return nil, err
		}
		an := forensic.NewAnalyzer(rig.Dev, rig.Client)
		t0 := time.Now()
		ev, err := an.Timeline()
		verifyWall := time.Since(t0)
		if err != nil {
			rig.Client.Close()
			return nil, err
		}
		t1 := time.Now()
		win, werr := an.AttackWindow(ev, rig.Dev.Log().NextSeq())
		windowWall := time.Since(t1)
		rig.Client.Close()
		row := ForensicsRow{
			Entries:     len(ev.Entries),
			VerifyWall:  verifyWall,
			WindowWall:  windowWall,
			ChainIntact: ev.ChainIntact,
			WindowFound: werr == nil && len(win.Victims) > 0,
		}
		if verifyWall > 0 {
			row.EntriesPerSec = float64(len(ev.Entries)) / verifyWall.Seconds()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderForensics renders the evidence-chain speed table.
func RenderForensics(rows []ForensicsRow) string {
	tb := metrics.NewTable("log entries", "verify (wall)", "backtrack (wall)", "entries/s", "chain intact", "window found")
	for _, r := range rows {
		tb.AddRow(r.Entries, r.VerifyWall.Round(time.Microsecond).String(), r.WindowWall.Round(time.Microsecond).String(), r.EntriesPerSec, r.ChainIntact, r.WindowFound)
	}
	return tb.String()
}

// OffloadRow characterizes the NVMe-oE offload path under write pressure.
type OffloadRow struct {
	Workload        string
	Segments        uint64
	PagesShipped    uint64
	RawMiB          float64
	StoredMiB       float64 // remote footprint of page data
	MaxBacklogPages int
	PressureEvents  uint64
	DroppedPages    uint64
}

// OffloadCost replays a churn-heavy trace on RSSD and reports what the
// offload engine did.
func OffloadCost(s Scale, names []string) ([]OffloadRow, error) {
	var rows []OffloadRow
	for _, name := range names {
		prof, ok := workload.ProfileByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
		rig, err := NewRSSDRig(s)
		if err != nil {
			return nil, err
		}
		g := workload.NewGenerator(prof, s.PageSize, rig.Dev.LogicalPages(), 29)
		var ops []batch.Op
		maxBacklog := 0
		for i := 0; i < s.TraceOps; i++ {
			rec := g.Next()
			ops = recordBatch(g, rec, rig.Dev.LogicalPages(), ops[:0])
			if _, err := submitRecord(rig.Dev, ops, rec.At); err != nil {
				rig.Client.Close()
				return nil, err
			}
			if b := rig.Dev.Stats().RetainedNow; b > maxBacklog {
				maxBacklog = b
			}
		}
		st := rig.Dev.Stats()
		remoteStats := rig.Store.DeviceStats(1)
		rows = append(rows, OffloadRow{
			Workload:        name,
			Segments:        st.OffloadSegments,
			PagesShipped:    st.OffloadPages,
			RawMiB:          float64(st.OffloadBytes) / float64(1<<20),
			StoredMiB:       float64(remoteStats.PageBytes) / float64(1<<20),
			MaxBacklogPages: maxBacklog,
			PressureEvents:  st.PressureEvents,
			DroppedPages:    st.DroppedPages,
		})
		rig.Client.Close()
	}
	return rows, nil
}

// RenderOffload renders the offload-cost table.
func RenderOffload(rows []OffloadRow) string {
	tb := metrics.NewTable("workload", "segments", "pages", "raw MiB", "remote MiB", "max backlog", "pressure", "dropped")
	for _, r := range rows {
		tb.AddRow(r.Workload, r.Segments, r.PagesShipped, r.RawMiB, r.StoredMiB, r.MaxBacklogPages, r.PressureEvents, r.DroppedPages)
	}
	return tb.String()
}

// ValidationRow shows Ransomware 2.0 succeeding against an unprotected
// SSD — the paper's §3 attack-validation claims.
type ValidationRow struct {
	Attack        AttackName
	VictimPages   int
	SurvivingPct  float64 // victim pages still readable as original
	GCRunsForced  uint64
	TrimsIssued   int
	StaleErased   uint64
}

// AttackValidation replays each attack against an unprotected LocalSSD and
// measures destruction.
func AttackValidation(s Scale) ([]ValidationRow, error) {
	var rows []ValidationRow
	for _, atkName := range AllAttacks {
		rig := NewBaselineRig(s, nil, nil)
		rng := rand.New(rand.NewSource(37))
		snap, extents, err := seedAndSnapshot(rig.FS, rng, s)
		if err != nil {
			return nil, err
		}
		want := expectedPages(snap, extents, s.PageSize)
		rep, err := makeAttack(atkName).Run(rig.FS, rng)
		if err != nil {
			return nil, err
		}
		at := rig.FS.Clock().Now()
		surviving := 0
		for lpn, exp := range want {
			got, _, err := rig.FTL.Read(lpn, at)
			if err == nil && string(got) == string(exp) {
				surviving++
			}
		}
		rows = append(rows, ValidationRow{
			Attack:       atkName,
			VictimPages:  len(want),
			SurvivingPct: pct(surviving, len(want)),
			GCRunsForced: rig.FTL.Stats().GCRuns,
			TrimsIssued:  rep.TrimsIssued,
			StaleErased:  rig.FTL.Stats().StaleErased,
		})
	}
	return rows, nil
}

// RenderValidation renders the attack-validation table.
func RenderValidation(rows []ValidationRow) string {
	tb := metrics.NewTable("attack", "victim pages", "surviving %", "GC runs", "trims", "stale pages erased")
	for _, r := range rows {
		tb.AddRow(string(r.Attack), r.VictimPages, r.SurvivingPct, r.GCRunsForced, r.TrimsIssued, r.StaleErased)
	}
	return tb.String()
}
