package experiment

import (
	"fmt"
	"time"

	"repro/internal/batch"
	"repro/internal/metrics"
	"repro/internal/nvme"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// BatchReplayRow compares three datapaths on the same RSSD trace:
//
//   - per-op: one synchronous call per page, each waiting for the
//     previous completion (the pre-batching architecture);
//   - batched: one SubmitBatch per trace record, dispatched at arrival;
//   - nvme: the same records as NVMe commands spread over an
//     N-queue-pair controller; bursts that arrive together are
//     multiplexed by round-robin arbitration (see ReplayNVMe).
//
// Wall time covers only the replay loop (rig construction excluded) and
// measures host-side overhead amortization (locking, hash sealing,
// retention checks). Mean record latency — completion minus trace
// arrival — measures what the device parallelism buys: per-op replay
// serializes whole records behind each other, while the batched paths
// only pay real chip contention.
type BatchReplayRow struct {
	Workload       string
	PageOps        int
	PerOpWallMs    float64
	BatchWallMs    float64
	NVMeWallMs     float64
	PerOpMeanLatUs float64
	BatchMeanLatUs float64
	NVMeMeanLatUs  float64
	WallSpeedup    float64 // per-op wall / batched wall
	LatSpeedup     float64 // per-op mean latency / batched mean latency
}

// ReplayStats summarizes one replay run.
type ReplayStats struct {
	PageOps  int
	Records  int
	TotalLat simclock.Duration // sum over records of completion - arrival
	Wall     time.Duration     // wall time of the replay loop (rig setup excluded)
}

// MeanLat returns the mean record latency.
func (s ReplayStats) MeanLat() simclock.Duration {
	if s.Records == 0 {
		return 0
	}
	return s.TotalLat / simclock.Duration(s.Records)
}

// ReplayPerOp replays a trace through the per-op path (one call per page,
// each waiting for the previous completion) on a fresh RSSD rig.
func ReplayPerOp(s Scale, name string, seed int64) (st ReplayStats, err error) {
	prof, ok := workload.ProfileByName(name)
	if !ok {
		return st, fmt.Errorf("unknown workload %q", name)
	}
	rig, err := NewRSSDRig(s)
	if err != nil {
		return st, err
	}
	defer rig.Client.Close()
	dev := rig.Dev
	g := workload.NewGenerator(prof, s.PageSize, dev.LogicalPages(), seed)
	wallStart := time.Now()
	defer func() { st.Wall = time.Since(wallStart) }()
	var busy simclock.Time
	for i := 0; i < s.TraceOps; i++ {
		rec := g.Next()
		issue := simclock.Max(rec.At, busy)
		pages := 0
		for p := 0; p < rec.Pages; p++ {
			lpn := rec.LPN + uint64(p)
			if lpn >= dev.LogicalPages() {
				break
			}
			var done simclock.Time
			var err error
			switch rec.Op {
			case workload.OpWrite:
				done, err = dev.Write(lpn, g.Content(), issue)
			case workload.OpRead:
				_, done, err = dev.Read(lpn, issue)
			case workload.OpTrim:
				done, err = dev.Trim(lpn, issue)
			}
			if err != nil {
				return st, err
			}
			issue = done
			pages++
		}
		busy = issue
		if pages > 0 {
			st.PageOps += pages
			st.Records++
			st.TotalLat += busy.Sub(rec.At)
		}
	}
	return st, nil
}

// ReplayBatched replays the same trace through the submission-batch path:
// one SubmitBatch per trace record, dispatched at arrival time.
func ReplayBatched(s Scale, name string, seed int64) (st ReplayStats, err error) {
	prof, ok := workload.ProfileByName(name)
	if !ok {
		return st, fmt.Errorf("unknown workload %q", name)
	}
	rig, err := NewRSSDRig(s)
	if err != nil {
		return st, err
	}
	defer rig.Client.Close()
	dev := rig.Dev
	g := workload.NewGenerator(prof, s.PageSize, dev.LogicalPages(), seed)
	wallStart := time.Now()
	defer func() { st.Wall = time.Since(wallStart) }()
	var ops []batch.Op
	for i := 0; i < s.TraceOps; i++ {
		rec := g.Next()
		ops = recordBatch(g, rec, dev.LogicalPages(), ops[:0])
		if len(ops) == 0 {
			continue
		}
		done, err := submitRecord(dev, ops, rec.At)
		if err != nil {
			return st, err
		}
		st.PageOps += len(ops)
		st.Records++
		st.TotalLat += done.Sub(rec.At)
	}
	return st, nil
}

// ReplayNVMe replays the same trace as NVMe commands: records are
// submitted round-robin across an N-queue-pair MultiQueue, and the
// doorbell is rung whenever simulated time moves past the pending
// submissions' arrival instant. Commands that arrive together (a burst)
// therefore sit on several queues when the doorbell rings and are
// multiplexed by round-robin arbitration; under a strictly paced trace
// each doorbell finds a single command, so the column then measures NVMe
// command framing over the batched datapath at the trace's own queue
// depth — no artificial doorbell delay is added either way. Arbitration
// under saturation is exercised separately by the nvme unit tests.
// Latency is measured per command from its record's trace arrival.
func ReplayNVMe(s Scale, name string, seed int64, queues int) (st ReplayStats, err error) {
	prof, ok := workload.ProfileByName(name)
	if !ok {
		return st, fmt.Errorf("unknown workload %q", name)
	}
	rig, err := NewRSSDRig(s)
	if err != nil {
		return st, err
	}
	defer rig.Client.Close()
	ctrl := nvme.NewController(rig.Dev)
	m := ctrl.MultiQueue(queues, 256)
	lbasPerPage := uint64(s.PageSize / nvme.LBASize)
	g := workload.NewGenerator(prof, s.PageSize, rig.Dev.LogicalPages(), seed)
	wallStart := time.Now()
	defer func() { st.Wall = time.Since(wallStart) }()

	arrival := map[uint16]simclock.Time{} // CID -> record arrival
	pending := 0
	pendingAt := simclock.Time(0) // arrival instant of the pending burst
	// drain rings the doorbell and reaps every completion, charging each
	// command's latency against its own record's arrival.
	drain := func(at simclock.Time) error {
		m.Process(0, at)
		for qi := 0; qi < queues; qi++ {
			for {
				comp, err := m.Queue(qi).Reap()
				if err != nil {
					break
				}
				if comp.Status != nvme.StatusSuccess {
					return fmt.Errorf("nvme replay: status %#x on cid %d", uint16(comp.Status), comp.CID)
				}
				st.Records++
				st.TotalLat += comp.At.Sub(arrival[comp.CID])
				delete(arrival, comp.CID)
				pending--
			}
		}
		return nil
	}

	for i := 0; i < s.TraceOps; i++ {
		rec := g.Next()
		pages := 0
		var data []byte
		for p := 0; p < rec.Pages; p++ {
			lpn := rec.LPN + uint64(p)
			if lpn >= rig.Dev.LogicalPages() {
				break
			}
			pages++
			if rec.Op == workload.OpWrite {
				data = append(data, g.Content()...)
			}
		}
		if pages == 0 {
			continue
		}
		cmd := nvme.Command{
			CID:  uint16(i),
			SLBA: rec.LPN * lbasPerPage,
			NLB:  uint32(pages) * uint32(lbasPerPage),
		}
		switch rec.Op {
		case workload.OpWrite:
			cmd.Opcode, cmd.Data = nvme.OpWrite, data
		case workload.OpRead:
			cmd.Opcode = nvme.OpRead
		case workload.OpTrim:
			cmd.Opcode = nvme.OpDSM
		}
		// Time has moved past the pending burst: ring the doorbell for it
		// before admitting the new arrival. Holding only same-instant
		// arrivals keeps the measured latency free of host-side delay.
		if pending > 0 && rec.At.After(pendingAt) {
			if err := drain(pendingAt); err != nil {
				return st, err
			}
		}
		if err := m.Queue(i % queues).Submit(cmd); err != nil {
			return st, err
		}
		arrival[cmd.CID] = rec.At
		pendingAt = rec.At
		st.PageOps += pages
		pending++
	}
	// Final doorbell for the tail of the trace.
	if pending > 0 {
		if err := drain(pendingAt); err != nil {
			return st, err
		}
	}
	return st, nil
}

// BatchReplay runs all three replays per workload and reports wall-clock
// and mean-latency speedups of the batched datapath over per-op.
func BatchReplay(s Scale, names []string) ([]BatchReplayRow, error) {
	var rows []BatchReplayRow
	for _, name := range names {
		perOp, err := ReplayPerOp(s, name, 23)
		if err != nil {
			return nil, fmt.Errorf("batch replay per-op %s: %w", name, err)
		}
		batched, err := ReplayBatched(s, name, 23)
		if err != nil {
			return nil, fmt.Errorf("batch replay batched %s: %w", name, err)
		}
		nv, err := ReplayNVMe(s, name, 23, 4)
		if err != nil {
			return nil, fmt.Errorf("batch replay nvme %s: %w", name, err)
		}
		if perOp.PageOps != batched.PageOps || perOp.PageOps != nv.PageOps {
			return nil, fmt.Errorf("batch replay %s: op counts diverge (%d / %d / %d)",
				name, perOp.PageOps, batched.PageOps, nv.PageOps)
		}
		row := BatchReplayRow{
			Workload:       name,
			PageOps:        perOp.PageOps,
			PerOpWallMs:    float64(perOp.Wall.Microseconds()) / 1000,
			BatchWallMs:    float64(batched.Wall.Microseconds()) / 1000,
			NVMeWallMs:     float64(nv.Wall.Microseconds()) / 1000,
			PerOpMeanLatUs: float64(perOp.MeanLat()) / 1000,
			BatchMeanLatUs: float64(batched.MeanLat()) / 1000,
			NVMeMeanLatUs:  float64(nv.MeanLat()) / 1000,
		}
		if batched.Wall > 0 {
			row.WallSpeedup = float64(perOp.Wall) / float64(batched.Wall)
		}
		if batched.MeanLat() > 0 {
			row.LatSpeedup = float64(perOp.MeanLat()) / float64(batched.MeanLat())
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderBatchReplay renders the per-op vs batched vs nvme comparison.
func RenderBatchReplay(rows []BatchReplayRow) string {
	tb := metrics.NewTable("workload", "page ops",
		"per-op wall ms", "batch wall ms", "nvme wall ms", "wall speedup",
		"per-op lat µs", "batch lat µs", "nvme lat µs", "lat speedup")
	for _, r := range rows {
		tb.AddRow(r.Workload, r.PageOps,
			r.PerOpWallMs, r.BatchWallMs, r.NVMeWallMs, r.WallSpeedup,
			r.PerOpMeanLatUs, r.BatchMeanLatUs, r.NVMeMeanLatUs, r.LatSpeedup)
	}
	return tb.String()
}
