package experiment

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bufpool"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/nvmeoe"
	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
)

// The ingest experiment is the server half of the wire-speed story: the
// datapath experiment grades the device's encode lane, this one grades the
// server's decode lane. A fleet of pipelined sessions saturates one server
// — decode-worker lane on, detection subscribers attached — and the run
// reports three things:
//
//  1. Measured: wall-clock server-side segs/s and wire MB/s, plus the
//     per-stage ledger (decode time, detection time, queue peaks) the
//     IngestStats API exposes.
//  2. Modeled: the same blob trace pushed through a deterministic event
//     model — a NIC serializing arrivals at NICMBps, feeding DecodeLanes
//     modeled inflate lanes at LaneMBps of logical output each, with the
//     implementation's device-to-lane affinity. The model's delivered wire
//     throughput against the NIC's is the saturation figure the wire-speed
//     claim is graded on: >= 0.9 means the decode lane is not the
//     bottleneck and the NIC is.
//  3. The decode hot loop's allocs/op, the number the pooled inflater is
//     graded on (0 in steady state).
//
// Measured wall numbers depend on host cores; the model is deterministic,
// which is what makes the saturation gate CI-stable.

// Modeled hardware for the saturation gate. The NIC is a 25 GbE offload
// port (~3000 MB/s of payload); a decode lane sustains 400 MB/s of logical
// (decompressed) output, a conservative single-core inflate figure.
const (
	IngestNICMBps  = 3000.0
	IngestLaneMBps = 400.0
)

// IngestMeasuredRow is the wall-clock side of the ingest run.
type IngestMeasuredRow struct {
	Devices       int
	SegsPerDevice int
	DecodeWorkers int
	Window        int // client pipeline depth
	Segments      uint64
	Errors        uint64
	WireMB        float64
	LogicalMB     float64
	WallMs        float64
	SegsPerSec    float64
	WireMBps      float64
	DecodeMs      float64 // summed per-device lane decode wall time
	DetectMs      float64 // summed per-device detection subscriber wall time
	QueuePeak     int     // deepest per-session decode backlog observed
	Alerts        int     // detection alerts raised by the benign trace (want 0)
}

// IngestModelRow is the deterministic NIC-vs-decode-lane event model over
// the same blob trace the measured run pushed.
type IngestModelRow struct {
	NICMBps       float64
	DecodeLanes   int
	LaneMBps      float64
	WireMB        float64
	LogicalMB     float64
	MakespanMs    float64
	ModelWireMBps float64 // wire bytes over model makespan
	Saturation    float64 // ModelWireMBps / NICMBps; >= 0.9 is the gate
	QueuePeak     int     // deepest modeled per-lane backlog
}

// IngestResult is the full ingest report.
type IngestResult struct {
	Measured          IngestMeasuredRow
	Model             IngestModelRow
	DecodeAllocsPerOp float64
	DecodeBytesPerOp  float64
}

// ingestPage builds page content with the fleet profile's mixed
// compressibility: mostly text-like bytes with a pseudo-random byte every
// fourth position. It deflates (~1.5x), so the wire carries CodecDeflate
// frames and the decode lane does real inflate work, but it does not
// compress so well that the modeled NIC's logical-side demand outruns any
// plausible lane pool.
func ingestPage(n int, salt uint64) []byte {
	b := make([]byte, n)
	for i := range b {
		if i%4 == 0 {
			b[i] = byte((uint64(i) + salt) * 2654435761 >> 16)
		} else {
			b[i] = byte('a' + (i+int(salt))%29)
		}
	}
	return b
}

// ingestBlobMeta is one wire blob's footprint, in push order, for the model.
type ingestBlobMeta struct {
	device  int
	wire    int
	logical int
}

// ingestSegments builds one device's chained segment trace and its
// codec-framed wire blobs.
func ingestSegments(s Scale, deviceID uint64, segs, pagesPerSeg int) (blobs [][]byte, lastSeqs []uint64, logical []int) {
	l := oplog.New()
	for sg := 0; sg < segs; sg++ {
		seg := &oplog.Segment{DeviceID: deviceID, FirstSeq: l.NextSeq()}
		for i := 0; i < pagesPerSeg; i++ {
			data := ingestPage(s.PageSize, uint64(sg*pagesPerSeg+i))
			lpn := uint64(sg*pagesPerSeg+i) % 64
			e := l.Append(oplog.KindWrite, simclock.Time(sg*pagesPerSeg+i), lpn, 0,
				uint64(sg*pagesPerSeg+i), 1, oplog.HashData(data))
			seg.Entries = append(seg.Entries, e)
			seg.Pages = append(seg.Pages, oplog.PageRecord{
				LPN: lpn, WriteSeq: e.Seq, StaleSeq: e.Seq + 64,
				Hash: oplog.HashData(data), Data: data,
			})
		}
		seg.LastSeq = l.NextSeq()
		raw := seg.Marshal()
		blobs = append(blobs, nvmeoe.EncodeSegmentBlob(raw))
		lastSeqs = append(lastSeqs, seg.LastSeq)
		logical = append(logical, len(raw))
	}
	return blobs, lastSeqs, logical
}

// ingestModel replays the blob trace through the deterministic event
// model: the NIC serializes arrivals in wire order; each blob then queues
// on its device's decode lane (the implementation's device%lanes affinity)
// and decodes at LaneMBps of logical output. FIFO per lane, so a two-index
// sweep per lane finds the backlog peak.
func ingestModel(metas []ingestBlobMeta, lanes int, nicMBps, laneMBps float64) IngestModelRow {
	row := IngestModelRow{NICMBps: nicMBps, DecodeLanes: lanes, LaneMBps: laneMBps}
	type ev struct{ arr, fin float64 }
	laneFree := make([]float64, lanes)
	perLane := make([][]ev, lanes)
	var wire, logical float64
	t, makespan := 0.0, 0.0
	for _, m := range metas {
		wire += float64(m.wire)
		logical += float64(m.logical)
		t += float64(m.wire) / (nicMBps * 1e6) // NIC delivery completes
		lane := m.device % lanes
		start := t
		if laneFree[lane] > start {
			start = laneFree[lane]
		}
		fin := start + float64(m.logical)/(laneMBps*1e6)
		laneFree[lane] = fin
		perLane[lane] = append(perLane[lane], ev{arr: t, fin: fin})
		if fin > makespan {
			makespan = fin
		}
	}
	for _, evs := range perLane {
		done := 0
		for j, e := range evs {
			for done < j && evs[done].fin <= e.arr {
				done++
			}
			if d := j - done + 1; d > row.QueuePeak {
				row.QueuePeak = d
			}
		}
	}
	row.WireMB = wire / 1e6
	row.LogicalMB = logical / 1e6
	row.MakespanMs = makespan * 1000
	if makespan > 0 {
		row.ModelWireMBps = row.WireMB / makespan
		row.Saturation = row.ModelWireMBps / nicMBps
	}
	return row
}

// Ingest runs the saturated-ingest benchmark: `devices` pipelined sessions
// into one lane-enabled server with detection attached, then the
// deterministic model over the same trace, then the decode-loop alloc
// measurement.
func Ingest(s Scale, devices int) (*IngestResult, error) {
	if devices <= 0 {
		devices = 64
	}
	segsPerDevice, pagesPerSeg := 24, 16
	if s.PageSize < 4096 { // small scale: CI smoke size
		segsPerDevice = 8
	}
	const workers = 32
	const window = 8

	st := remote.NewStore(remote.NewMemStore())
	srv := remote.NewServer(st, PSK)
	srv.Config = remote.ServerConfig{DecodeWorkers: workers}
	engine := detect.NewEngine(detectConfig(s))
	engine.Attach(st)

	// Build every device's trace up front so the measured window is pure
	// ingest, and collect blob metadata in round-robin wire order for the
	// model (sessions interleave; round-robin is the fair approximation).
	type deviceTrace struct {
		blobs    [][]byte
		lastSeqs []uint64
		logical  []int
	}
	traces := make([]deviceTrace, devices)
	for d := range traces {
		blobs, lastSeqs, logical := ingestSegments(s, uint64(d+1), segsPerDevice, pagesPerSeg)
		traces[d] = deviceTrace{blobs: blobs, lastSeqs: lastSeqs, logical: logical}
	}
	var metas []ingestBlobMeta
	for i := 0; i < segsPerDevice; i++ {
		for d := range traces {
			metas = append(metas, ingestBlobMeta{
				device: d + 1, wire: len(traces[d].blobs[i]), logical: traces[d].logical[i]})
		}
	}

	errs := make([]error, devices)
	var wg sync.WaitGroup
	start := time.Now()
	for d := range traces {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			cl, err := remote.Loopback(srv, PSK, uint64(d+1))
			if err != nil {
				errs[d] = err
				return
			}
			defer cl.Close()
			errs[d] = cl.PushSegmentBlobs(traces[d].blobs, traces[d].lastSeqs, window)
		}(d)
	}
	wg.Wait()
	wall := time.Since(start)
	for d, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("ingest device %d: %w", d+1, err)
		}
	}

	res := &IngestResult{}
	m := &res.Measured
	m.Devices, m.SegsPerDevice = devices, segsPerDevice
	m.DecodeWorkers, m.Window = workers, window
	m.WallMs = float64(wall.Microseconds()) / 1000
	for d := 0; d < devices; d++ {
		ist := srv.IngestStats(uint64(d + 1))
		m.Segments += ist.Segments
		m.Errors += ist.Errors
		m.WireMB += float64(ist.BytesWire) / 1e6
		m.LogicalMB += float64(ist.BytesLogical) / 1e6
		m.DecodeMs += float64(ist.DecodeTime.Microseconds()) / 1000
		m.DetectMs += float64(ist.DetectTime.Microseconds()) / 1000
		if ist.DecodeQueuePeak > m.QueuePeak {
			m.QueuePeak = ist.DecodeQueuePeak
		}
	}
	m.Alerts = len(engine.Alerts())
	if secs := wall.Seconds(); secs > 0 {
		m.SegsPerSec = float64(m.Segments) / secs
		m.WireMBps = m.WireMB / secs
	}

	res.Model = ingestModel(metas, workers, IngestNICMBps, IngestLaneMBps)

	// Decode hot loop: the lane's codec step on a representative blob.
	blob := traces[0].blobs[0]
	dbuf := bufpool.Get(nvmeoe.SegmentBlobLogicalSize(blob))
	defer dbuf.Release()
	res.DecodeAllocsPerOp, res.DecodeBytesPerOp = measureAllocs(100, func() {
		out, err := nvmeoe.AppendDecodeSegmentBlob(dbuf.B[:0], blob)
		if err != nil {
			panic(err)
		}
		dbuf.B = out[:0]
	})
	return res, nil
}

// RenderIngest renders the measured run, the model, and the alloc gate.
func RenderIngest(res *IngestResult) string {
	mt := metrics.NewTable("measured", "devices", "segs", "errors", "wall ms",
		"segs/s", "wire MB/s", "decode ms", "detect ms", "q peak", "alerts")
	m := res.Measured
	mt.AddRow("lane x"+fmt.Sprint(m.DecodeWorkers), m.Devices, m.Segments, m.Errors,
		m.WallMs, m.SegsPerSec, m.WireMBps, m.DecodeMs, m.DetectMs, m.QueuePeak, m.Alerts)
	md := res.Model
	vt := metrics.NewTable("model", "NIC MB/s", "lanes", "lane MB/s", "wire MB",
		"logical MB", "makespan ms", "wire MB/s", "saturation", "q peak")
	vt.AddRow("nic vs lanes", md.NICMBps, md.DecodeLanes, md.LaneMBps, md.WireMB,
		md.LogicalMB, md.MakespanMs, md.ModelWireMBps, md.Saturation, md.QueuePeak)
	out := mt.String() + vt.String()
	out += fmt.Sprintf("decode hot loop: %.0f allocs/op, %.0f B/op (want 0 steady-state)\n",
		res.DecodeAllocsPerOp, res.DecodeBytesPerOp)
	out += fmt.Sprintf("model saturation %.3f of NIC line rate (gate: >= 0.9 — decode lane must not be the bottleneck)\n",
		md.Saturation)
	return out
}
