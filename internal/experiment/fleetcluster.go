package experiment

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attack"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/host"
	"repro/internal/metrics"
	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// The cluster half of the fleet experiment: the same per-device RSSD
// pipeline, but the fleet dials through a remote.Cluster — consistent-hash
// placement over N ingest servers sharing one durable store — instead of
// one server. Two passes:
//
//  1. Failover pass: the full fleet (half attacked) streams through the
//     cluster while one server is killed at the one-third mark of every
//     device's replay. The dead server's devices heal through the
//     placement-aware dial factory (core's redial/backoff/reconcile path),
//     detection state follows them across engines via Handoff, and the
//     pass verifies the durability contract: zero entries lost, every
//     chain verified, every attack still caught, no false alerts.
//  2. Scaling curve: a prebuilt segment trace is pushed through clusters
//     of 1, 2, 4, ... servers (same devices, fresh store per point).
//     Wall-clock numbers are reported honestly but depend on host cores;
//     the scaling claim is graded on the deterministic per-server
//     NIC/decode-lane event model (ingest.go), whose aggregate makespan
//     is the slowest server's — so the modeled speed-up is the placement
//     spread times the per-server pipeline, not a lucky thread schedule.

// fleetClusterScale tightens per-device geometry further for big fleets:
// past 64 devices the corpus and attack phases shrink so a 512-device run
// stays within one machine's memory and minutes.
func fleetClusterScale(s Scale, devices int) Scale {
	s = fleetScale(s)
	if devices > 64 {
		s.SeedFiles /= 2
		if s.SeedFiles < 10 {
			s.SeedFiles = 10
		}
		if s.MaxFilePages > 3 {
			s.MaxFilePages = 3
		}
	}
	return s
}

// clusterReplayOps scales the measured replay down with fleet size: the
// fleet-wide record count stays roughly constant, with a floor so every
// device still crosses its offload watermarks.
func clusterReplayOps(s Scale, devices int) int {
	ops := s.TraceOps // fleet-wide budget, split across devices
	if devices > 0 {
		ops /= devices
	}
	if ops < 120 {
		ops = 120
	}
	return ops
}

// FleetServerRow is one ingest server's row in the cluster report.
type FleetServerRow struct {
	Server    int
	Alive     bool
	Weight    int
	Devices   int
	Sessions  uint64
	Segments  uint64
	WireMB    float64
	QueuePeak int
	Errors    uint64
}

// FleetFailover reports the injected server kill and its cost.
type FleetFailover struct {
	KilledServer    int
	DevicesRemapped int
	Handoffs        int     // detection-state handoffs executed by OnMove
	Redials         uint64  // sessions the fleet re-established itself
	RedialAttempts  uint64  // including attempts that failed and backed off
	RedialWaitMs    float64 // simulated backoff the fleet waited out
	ResumeGap       uint64  // entries found durable-but-unacked on redial
	SegmentsLost    int     // device-acked segments missing from the store
	EntriesLost     uint64  // device-log entries missing from the store
	ChainsVerified  int
}

// FleetScalePoint is one point of the server-count scaling curve.
type FleetScalePoint struct {
	Servers     int
	Devices     int
	DecodeLanes int // per-server decode lanes (measured and modeled)
	Segments     uint64
	WireMB       float64
	SpreadMaxMin float64 // placement spread max/min across live servers
	QueuePeak    int     // deepest per-server decode backlog
	WallMs       float64 // measured (host-core dependent)
	SegsPerSec   float64
	WireMBps     float64
	// Deterministic per-server NIC/decode-lane model over the same trace;
	// aggregate makespan is the slowest server's.
	ModelMakespanMs float64
	ModelSegsPerSec float64
	ModelWireMBps   float64
	ModelScaleUp    float64 // vs the 1-server model point
}

// FleetClusterResult is the control-plane side of a multi-server fleet run.
type FleetClusterResult struct {
	Servers      int
	Devices      int
	SpreadMaxMin float64
	ServerRows   []FleetServerRow
	Failover     FleetFailover
	Curve        []FleetScalePoint
	ScaleUp      float64 // measured segs/s, last curve point vs first
	ModelScaleUp float64 // modeled segs/s, last curve point vs first
}

// fleetCluster runs the failover pass and the scaling curve.
func fleetCluster(s Scale, devices, servers int) (*FleetResult, error) {
	s = fleetClusterScale(s, devices)
	pass, cres, err := runFleetClusterPass(s, devices, servers)
	if err != nil {
		return nil, fmt.Errorf("fleet cluster: %w", err)
	}
	curve, err := fleetScaleCurve(s, devices, servers)
	if err != nil {
		return nil, fmt.Errorf("fleet scale curve: %w", err)
	}
	cres.Curve = curve
	if len(curve) > 1 {
		first, last := curve[0], curve[len(curve)-1]
		if first.SegsPerSec > 0 {
			cres.ScaleUp = last.SegsPerSec / first.SegsPerSec
		}
		if first.ModelSegsPerSec > 0 {
			cres.ModelScaleUp = last.ModelSegsPerSec / first.ModelSegsPerSec
		}
	}

	sum := FleetSummary{
		Devices:  devices,
		PageOps:  pass.pageOps,
		Segments: pass.segments,
		WallMs:   float64(pass.wall.Microseconds()) / 1000,
	}
	for _, row := range pass.rows {
		if row.Attacked {
			sum.Attacked++
			if row.Detected {
				sum.Caught++
			}
		}
		sum.FalseAlerts += row.FalseAlerts
	}
	if pass.records > 0 {
		sum.MeanLatUs = float64(pass.totalLat) / float64(pass.records) / 1000
	}
	if secs := pass.wall.Seconds(); secs > 0 {
		sum.PageOpsPerSec = float64(pass.pageOps) / secs
		sum.SegmentsPerSec = float64(pass.segments) / secs
	}
	rows := pass.rows
	if devices > 64 {
		rows = nil // keep the committed report compact at fleet scale
	}
	return &FleetResult{Rows: rows, Summary: sum, Cluster: cres}, nil
}

// runFleetClusterPass drives the full fleet through the cluster with one
// injected server kill and verifies the durability contract afterwards.
func runFleetClusterPass(s Scale, devices, servers int) (*fleetPass, *FleetClusterResult, error) {
	store := remote.NewStore(remote.NewMemStore())
	cluster := remote.NewCluster(store, remote.ClusterConfig{
		Servers: servers,
		PSK:     PSK,
		Server:  remote.ServerConfig{DecodeWorkers: 4},
	})
	defer cluster.Close()

	// One detection engine per server; segments route to the current
	// owner's engine and OnMove hands the device's window state over
	// before routing can observe the new owner (cluster lock ordering).
	engines := make([]*detect.Engine, servers)
	for i := range engines {
		engines[i] = detect.NewEngine(detectConfig(s))
	}
	var handoffs atomic.Int64
	cluster.OnMove = func(dev uint64, from, to int) {
		if from >= 0 && from < servers && to >= 0 && to < servers {
			engines[from].Handoff(dev, engines[to])
			handoffs.Add(1)
		}
	}
	store.Subscribe(func(dev uint64, seg *oplog.Segment) {
		owner, ok := cluster.Owner(dev)
		if !ok || owner < 0 || owner >= servers {
			owner = 0
		}
		engines[owner].Observe(dev, seg.Entries)
	})

	// The kill fires once every device has passed the one-third mark of
	// its replay — genuinely mid-stream for the whole fleet — and every
	// device holds at the barrier until the victim is drained, so the
	// dead server's devices must heal through the redial path to finish.
	var third sync.WaitGroup
	third.Add(devices)
	killDone := make(chan struct{})
	fail := &FleetFailover{KilledServer: -1}
	go func() {
		defer close(killDone)
		third.Wait()
		victim, ok := cluster.Owner(firstAttackedDevice(devices))
		if !ok {
			return
		}
		moves, err := cluster.Kill(victim)
		if err != nil {
			return
		}
		fail.KilledServer = victim
		fail.DevicesRemapped = len(moves)
	}()

	rows := make([]FleetDeviceRow, devices)
	devs := make([]*core.RSSD, devices)
	errs := make([]error, devices)
	var wg sync.WaitGroup
	start := time.Now()
	attackIdx := 0
	for i := 0; i < devices; i++ {
		var atk attack.Attack
		if i%2 == 1 {
			atk = makeAttack(fleetAttacks[attackIdx%len(fleetAttacks)])
			attackIdx++
		}
		wg.Add(1)
		go func(i int, atk attack.Attack) {
			defer wg.Done()
			released := false
			hold := func() {
				if !released {
					released = true
					third.Done()
					<-killDone
				}
			}
			// A device that errors out before its barrier must still
			// release it, or the killer — and with it the whole fleet —
			// waits forever.
			defer func() {
				if !released {
					released = true
					third.Done()
				}
			}()
			rows[i], devs[i], errs[i] = runFleetClusterDevice(s, cluster, engines, uint64(i+1), i, atk, hold, devices)
		}(i, atk)
	}
	wg.Wait()
	pass := &fleetPass{rows: rows, wall: time.Since(start)}
	for i := range errs {
		if errs[i] != nil {
			return nil, nil, fmt.Errorf("device %d: %w", i+1, errs[i])
		}
	}

	// The durability contract, checked device by device: everything the
	// device logged is in the store, everything the device believes was
	// acked is present as full segments, and the hash chain verifies from
	// genesis — across a server kill and every resulting redial.
	for i, dev := range devs {
		deviceID := uint64(i + 1)
		st := dev.Stats()
		fail.Redials += st.Redials
		fail.RedialAttempts += st.RedialAttempts
		fail.RedialWaitMs += float64(st.RedialWaitTime) / float64(simclock.Millisecond)
		fail.ResumeGap += st.ResumeGap
		want := dev.Log().NextSeq()
		head := store.Head(deviceID).NextSeq
		if head < want {
			fail.EntriesLost += want - head
		}
		if acked, stored := st.OffloadSegments, uint64(store.DeviceStats(deviceID).Segments); acked > stored {
			fail.SegmentsLost += int(acked - stored)
		}
		if err := oplog.VerifyChain(store.Entries(deviceID, 0, head), [oplog.HashSize]byte{}); err != nil {
			return nil, nil, fmt.Errorf("device %d chain after failover: %w", deviceID, err)
		}
		fail.ChainsVerified++
		dev.Close()
	}
	fail.Handoffs = int(handoffs.Load())
	if fail.EntriesLost > 0 || fail.SegmentsLost > 0 {
		// The zero-loss contract is the point of the failover design; a
		// violation fails the run (and CI) rather than hiding in a report.
		return nil, nil, fmt.Errorf("durability violated across server kill: %d segments / %d entries lost",
			fail.SegmentsLost, fail.EntriesLost)
	}

	for i := range rows {
		pass.records += rows[i].Records
		pass.pageOps += rows[i].PageOps
		pass.segments += rows[i].Segments
		pass.totalLat += simclock.Duration(rows[i].MeanLatUs * 1000 * float64(rows[i].Records))
	}

	cres := &FleetClusterResult{Servers: servers, Devices: devices, Failover: *fail}
	cres.SpreadMaxMin = spreadMaxMin(cluster.Spread())
	for _, si := range cluster.Servers() {
		cres.ServerRows = append(cres.ServerRows, FleetServerRow{
			Server:    si.ID,
			Alive:     si.Alive,
			Weight:    si.Weight,
			Devices:   si.Devices,
			Sessions:  si.Sessions,
			Segments:  si.Ingest.Segments,
			WireMB:    float64(si.Ingest.BytesWire) / 1e6,
			QueuePeak: si.QueuePeak,
			Errors:    si.Ingest.Errors,
		})
	}
	return pass, cres, nil
}

// firstAttackedDevice returns the lowest attacked device ID (devices at
// odd fleet index carry an attack, so device 2 in any fleet of >= 2).
func firstAttackedDevice(devices int) uint64 {
	if devices >= 2 {
		return 2
	}
	return 1
}

// runFleetClusterDevice is runFleetDevice's cluster twin: the device dials
// through the placement-aware factory, holds at the kill barrier one third
// of the way through its replay, and relies on core's redial path — not
// the test harness — to heal the session a kill cut.
func runFleetClusterDevice(s Scale, cluster *remote.Cluster, engines []*detect.Engine, deviceID uint64, idx int, atk attack.Attack, hold func(), devices int) (FleetDeviceRow, *core.RSSD, error) {
	row := FleetDeviceRow{Device: deviceID}
	client, err := cluster.Dial(deviceID)
	if err != nil {
		return row, nil, err
	}

	cfg := core.DefaultConfig()
	cfg.FTL = s.ftlConfig()
	cfg.DeviceID = deviceID
	cfg.Dial = cluster.DialFunc(deviceID)
	tune := remote.Profile("mem")
	cfg.OffloadHighWater = tune.OffloadHighWater
	cfg.OffloadLowWater = tune.OffloadLowWater
	cfg.OffloadQueueDepth = tune.OffloadQueueDepth
	dev := core.New(cfg, client)
	fs := host.NewFlatFS(dev, simclock.NewClock())

	profName := fleetProfiles[idx%len(fleetProfiles)]
	row.Role = profName
	prof, ok := workload.ProfileByName(profName)
	if !ok {
		return row, dev, fmt.Errorf("unknown workload %q", profName)
	}

	replayOps := clusterReplayOps(s, devices)
	g := workload.NewGenerator(prof, s.PageSize, dev.LogicalPages(), int64(1000+idx))
	h := metrics.NewHistogram(0)
	var ops []batch.Op
	var end simclock.Time
	held := false
	for j := 0; j < replayOps; j++ {
		if !held && j >= replayOps/3 {
			held = true
			hold()
		}
		rec := g.Next()
		ops = recordBatch(g, rec, dev.LogicalPages(), ops[:0])
		if len(ops) == 0 {
			continue
		}
		done, err := submitRecord(dev, ops, rec.At)
		if err != nil {
			return row, dev, err
		}
		h.Observe(done.Sub(rec.At))
		end = simclock.Max(end, done)
		row.Records++
	}
	if !held {
		hold() // replay too short to hit the mark mid-loop
	}
	row.MeanLatUs = float64(h.Mean()) / 1000
	row.P99LatUs = float64(h.Percentile(99)) / 1000
	row.ReplaySegments = dev.Stats().OffloadSegments

	attackStart := ^uint64(0)
	if atk != nil {
		row.Attacked = true
		row.Role = profName + "+" + atk.Name()
		fs.Clock().AdvanceTo(end)
		rng := rand.New(rand.NewSource(int64(77 + idx)))
		if _, _, err := seedAndSnapshot(fs, rng, s); err != nil {
			return row, dev, err
		}
		if _, err := dev.OffloadNow(fs.Clock().Now()); err != nil {
			return row, dev, err
		}
		attackStart = dev.Log().NextSeq()
		if _, err := atk.Run(fs, rng); err != nil {
			return row, dev, err
		}
	}

	if _, err := dev.OffloadNow(fs.Clock().Now()); err != nil {
		return row, dev, err
	}

	st := dev.Stats()
	row.PageOps = int(st.HostWrites + st.HostReads + st.HostTrims)
	row.SimMs = float64(simclock.Max(fs.Clock().Now(), end)) / float64(simclock.Millisecond)
	row.Segments = st.OffloadSegments
	row.QueuePeak = st.OffloadQueuePeak
	row.Stalls = st.OffloadStalls
	row.WireBytes = st.OffloadBytesWire
	row.EncodeMs = float64(st.EncodeTime) / float64(simclock.Millisecond)
	row.EncodeQPeak = st.EncodeQueuePeak
	if st.OffloadSegments > 0 {
		row.AckLatUs = float64(st.OffloadAckTime) / float64(st.OffloadSegments) / 1000
	}
	// A device's alerts may be split across engines when failover or
	// rebalancing moved it mid-history.
	for _, e := range engines {
		for _, a := range e.AlertsFor(deviceID) {
			if a.AtSeq >= attackStart {
				if !row.Detected || a.AtSeq-attackStart < row.OpsToAlert {
					row.Detected = true
					row.OpsToAlert = a.AtSeq - attackStart
				}
			} else {
				row.FalseAlerts++
			}
		}
	}
	return row, dev, nil
}

// spreadMaxMin reduces a device-count spread to its max/min ratio.
func spreadMaxMin(spread map[int]int) float64 {
	min, max := -1, 0
	for _, n := range spread {
		if n > max {
			max = n
		}
		if min < 0 || n < min {
			min = n
		}
	}
	if min <= 0 {
		return 0
	}
	return float64(max) / float64(min)
}

// curveServerCounts returns the curve's x axis: powers of two up to (and
// always including) the requested server count.
func curveServerCounts(servers int) []int {
	var out []int
	for k := 1; k < servers; k *= 2 {
		out = append(out, k)
	}
	return append(out, servers)
}

// fleetScaleCurve pushes one prebuilt segment trace through clusters of
// growing server count — fresh store per point, same blobs — measuring
// wall-clock aggregate throughput and running the deterministic per-server
// NIC/decode-lane model over each point's actual placement.
func fleetScaleCurve(s Scale, devices, servers int) ([]FleetScalePoint, error) {
	segsPerDevice, pagesPerSeg := 8, 8
	if s.PageSize >= 4096 && devices <= 64 {
		segsPerDevice = 16
	}
	// Per-server decode lanes (measured and modeled alike). A small fleet
	// cannot load 8 lanes per server — one server would already be idle
	// and the curve flat by construction — so the pool shrinks until the
	// single-server point is genuinely lane-bound and server count is
	// what relieves it, the same regime a 512-device fleet puts 8 lanes in.
	curveWorkers := 8
	if devices < 16*servers {
		curveWorkers = 2
	}
	const window = 4

	type deviceTrace struct {
		blobs    [][]byte
		lastSeqs []uint64
		logical  []int
	}
	traces := make([]deviceTrace, devices)
	for d := range traces {
		blobs, lastSeqs, logical := ingestSegments(s, uint64(d+1), segsPerDevice, pagesPerSeg)
		traces[d] = deviceTrace{blobs: blobs, lastSeqs: lastSeqs, logical: logical}
	}

	var curve []FleetScalePoint
	for _, k := range curveServerCounts(servers) {
		store := remote.NewStore(remote.NewMemStore())
		cluster := remote.NewCluster(store, remote.ClusterConfig{
			Servers: k,
			PSK:     PSK,
			Server:  remote.ServerConfig{DecodeWorkers: curveWorkers},
		})

		errs := make([]error, devices)
		var wg sync.WaitGroup
		start := time.Now()
		for d := range traces {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				cl, err := cluster.Dial(uint64(d + 1))
				if err != nil {
					errs[d] = err
					return
				}
				defer cl.Close()
				errs[d] = cl.PushSegmentBlobs(traces[d].blobs, traces[d].lastSeqs, window)
			}(d)
		}
		wg.Wait()
		wall := time.Since(start)
		for d, err := range errs {
			if err != nil {
				cluster.Close()
				return nil, fmt.Errorf("curve %d servers, device %d: %w", k, d+1, err)
			}
		}

		pt := FleetScalePoint{Servers: k, Devices: devices, DecodeLanes: curveWorkers}
		pt.WallMs = float64(wall.Microseconds()) / 1000
		for _, si := range cluster.Servers() {
			pt.Segments += si.Ingest.Segments
			pt.WireMB += float64(si.Ingest.BytesWire) / 1e6
			if si.QueuePeak > pt.QueuePeak {
				pt.QueuePeak = si.QueuePeak
			}
		}
		pt.SpreadMaxMin = spreadMaxMin(cluster.Spread())
		if secs := wall.Seconds(); secs > 0 {
			pt.SegsPerSec = float64(pt.Segments) / secs
			pt.WireMBps = pt.WireMB / secs
		}

		// Model: each server's NIC serializes its own devices' blobs
		// (round-robin, the fair approximation of interleaved sessions)
		// into its own decode-lane pool; the aggregate finishes when the
		// slowest server does.
		owners := make([]int, devices)
		for d := range traces {
			if owner, ok := cluster.Owner(uint64(d + 1)); ok {
				owners[d] = owner
			}
		}
		perServer := map[int][]ingestBlobMeta{}
		for i := 0; i < segsPerDevice; i++ {
			for d := range traces {
				perServer[owners[d]] = append(perServer[owners[d]], ingestBlobMeta{
					device: d + 1, wire: len(traces[d].blobs[i]), logical: traces[d].logical[i]})
			}
		}
		makespan := 0.0
		for _, metas := range perServer {
			m := ingestModel(metas, curveWorkers, IngestNICMBps, IngestLaneMBps)
			if ms := m.MakespanMs; ms > makespan {
				makespan = ms
			}
		}
		pt.ModelMakespanMs = makespan
		if makespan > 0 {
			pt.ModelSegsPerSec = float64(pt.Segments) / (makespan / 1000)
			pt.ModelWireMBps = pt.WireMB / (makespan / 1000)
		}
		cluster.Close()
		curve = append(curve, pt)
	}
	if len(curve) > 0 && curve[0].ModelSegsPerSec > 0 {
		for i := range curve {
			curve[i].ModelScaleUp = curve[i].ModelSegsPerSec / curve[0].ModelSegsPerSec
		}
	}
	return curve, nil
}

// RenderFleetCluster renders the control-plane report: per-server rows,
// the failover ledger, and the scaling curve.
func RenderFleetCluster(c *FleetClusterResult) string {
	st := metrics.NewTable("server", "alive", "weight", "devices", "sessions",
		"segments", "wire MB", "q peak", "errors")
	for _, r := range c.ServerRows {
		alive := "up"
		if !r.Alive {
			alive = "KILLED"
		}
		st.AddRow(r.Server, alive, r.Weight, r.Devices, r.Sessions,
			r.Segments, r.WireMB, r.QueuePeak, r.Errors)
	}
	f := c.Failover
	out := st.String()
	out += fmt.Sprintf(
		"failover: server %d killed mid-replay; %d devices remapped, %d detection handoffs\n"+
			"          %d redials (%d attempts, %.2f ms simulated backoff), resume gap %d entries\n"+
			"          lost: %d segments, %d entries (gate: 0/0); %d chains verified from genesis\n"+
			"placement spread max/min %.3f over %d devices on %d servers\n",
		f.KilledServer, f.DevicesRemapped, f.Handoffs,
		f.Redials, f.RedialAttempts, f.RedialWaitMs, f.ResumeGap,
		f.SegmentsLost, f.EntriesLost, f.ChainsVerified,
		c.SpreadMaxMin, c.Devices, c.Servers)
	ct := metrics.NewTable("servers", "segments", "wire MB", "spread", "q peak",
		"wall ms", "segs/s", "wire MB/s", "model ms", "model segs/s", "model x")
	for _, p := range c.Curve {
		ct.AddRow(p.Servers, p.Segments, p.WireMB, p.SpreadMaxMin, p.QueuePeak,
			p.WallMs, p.SegsPerSec, p.WireMBps,
			p.ModelMakespanMs, p.ModelSegsPerSec, p.ModelScaleUp)
	}
	out += ct.String()
	lanes := 0
	if len(c.Curve) > 0 {
		lanes = c.Curve[0].DecodeLanes
	}
	out += fmt.Sprintf(
		"scale-up at %d servers: modeled %.2fx (gate: >= 3x; per-server NIC %.0f MB/s, %d lanes x %.0f MB/s), measured %.2fx on this host's cores\n",
		c.Servers, c.ModelScaleUp, IngestNICMBps, lanes, IngestLaneMBps, c.ScaleUp)
	return out
}
