package experiment

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"repro/internal/bufpool"
	"repro/internal/metrics"
	"repro/internal/nvmeoe"
	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
)

// The datapath experiment is the allocation-tracked hot-loop benchmark the
// zero-allocation work is graded against. It does two things in one run:
//
//  1. Micro loops, single-goroutine: the encode hot loop (segment marshal
//     into a pooled buffer + codec framing into a pooled buffer) and the
//     ingest-side decode loop are measured with the runtime allocator
//     counters. Both must be zero allocs/op in steady state — encode
//     through the pooled deflater, decode through the in-house pooled
//     inflater (which rebuilds Huffman tables in place instead of
//     allocating them per block the way compress/flate does). The full
//     store ingest, which retains pages and grows indexes by design, is
//     reported honestly alongside.
//
//  2. Fleet replays, both pipeline variants in the same run: the
//     encode-worker pipeline against the inline-encode baseline (the
//     pre-pipeline behaviour, selected with Config.EncodeWorkers < 0).
//     Wall-clock segs/sec and wire MB/s are what the worker pool must not
//     regress; the simulated encode stage and ack latencies show where the
//     overlap went.

// DatapathVariantRow reports one fleet pass of the datapath replay.
//
// SimSegsPerSec — segments per simulated second of device time — is the
// number the variants are graded on: it is what the device's modeled
// hardware sustains, the claim the paper makes. Wall-clock throughput is
// reported alongside but depends on how many host cores the simulation
// happens to get (on a single-core runner the worker pipeline degenerates
// to time-slicing and wall comparisons measure scheduler overhead, not the
// datapath).
type DatapathVariantRow struct {
	Variant       string // "workers" or "inline"
	Devices       int
	PageOps       int
	Segments      uint64
	SimMs         float64 // mean simulated span of one device's run
	SimSegsPerSec float64 // fleet seal→ship throughput in simulated time (the tracked number)
	WallMs        float64
	SegsPerSec    float64 // wall-clock throughput (core-count dependent)
	WireMB        float64 // compressed MB that crossed the offload links
	WireMBps      float64 // wire throughput (wall clock)
	MeanLatUs     float64 // host batch latency during replay
	AckUs         float64 // mean seal-to-ack (simulated)
	EncodeMs      float64 // simulated codec-stage time, summed over devices
	EncodeQPk     int     // deepest encode-stage occupancy across devices
	Stalls        uint64  // backpressure stalls across devices
}

// DatapathAllocRow reports one measured hot loop.
type DatapathAllocRow struct {
	Loop        string
	AllocsPerOp float64
	BytesPerOp  float64
	Ops         int
	Note        string
}

// DatapathResult is the full datapath report. Ingest is the server half of
// the wire-speed datapath — the saturated decode-lane run — committed to
// the same BENCH_datapath.json so both lanes' trajectories live together.
type DatapathResult struct {
	Allocs   []DatapathAllocRow
	Variants []DatapathVariantRow
	Ingest   *IngestResult
}

// measureAllocs runs f ops times on one OS thread and returns the
// allocator's per-op averages. Like testing.AllocsPerRun it warms once,
// pins GOMAXPROCS to 1, and divides the raw counter delta by the run
// count (integer division on mallocs, exactly as AllocsPerRun reports).
func measureAllocs(ops int, f func()) (allocsPerOp, bytesPerOp float64) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm the pools and any lazy state
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < ops; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64((after.Mallocs - before.Mallocs) / uint64(ops)),
		float64((after.TotalAlloc - before.TotalAlloc) / uint64(ops))
}

// datapathSegment builds a representative sealed segment: a run of chained
// log entries plus page records of compressible (fleet-profile-like)
// content, the shape the offload engine encodes all day.
func datapathSegment(s Scale, pages int) *oplog.Segment {
	seg := &oplog.Segment{DeviceID: 1, FirstSeq: 0, LastSeq: uint64(pages)}
	var prev [oplog.HashSize]byte
	for i := 0; i < pages; i++ {
		e := oplog.Entry{Seq: uint64(i), Kind: oplog.KindWrite, LPN: uint64(i),
			At: simclock.Time(0).Add(simclock.Duration(i) * simclock.Microsecond)}
		e.Seal(prev)
		prev = e.Hash
		seg.Entries = append(seg.Entries, e)
	}
	snippet := []byte("fleet workload page content; compresses like hm/src. ")
	content := bytes.Repeat(snippet, 1+s.PageSize/len(snippet))
	for i := 0; i < pages; i++ {
		data := append([]byte(nil), content[:s.PageSize]...)
		data[0] = byte(i) // not all identical
		seg.Pages = append(seg.Pages, oplog.PageRecord{
			LPN: uint64(i), WriteSeq: uint64(i), StaleSeq: uint64(i + 1),
			Hash: oplog.HashData(data), Data: data,
		})
	}
	return seg
}

// datapathAllocs measures the hot loops. The encode and decode loops must
// be zero-alloc in steady state; the store ingest loop retains data by
// design and is reported, not asserted.
func datapathAllocs(s Scale) []DatapathAllocRow {
	const ops = 100
	seg := datapathSegment(s, 16)
	logical := seg.MarshaledSize()

	mbuf := bufpool.Get(logical)
	bbuf := bufpool.Get(nvmeoe.BlobOverhead + logical)
	defer mbuf.Release()
	defer bbuf.Release()
	encA, encB := measureAllocs(ops, func() {
		raw := seg.AppendMarshal(mbuf.B[:0])
		bbuf.B = nvmeoe.AppendSegmentBlob(bbuf.B[:0], raw)
	})

	blob := nvmeoe.EncodeSegmentBlob(seg.Marshal())
	dbuf := bufpool.Get(nvmeoe.SegmentBlobLogicalSize(blob))
	defer dbuf.Release()
	decA, decB := measureAllocs(ops, func() {
		out, err := nvmeoe.AppendDecodeSegmentBlob(dbuf.B[:0], blob)
		if err != nil {
			panic(err)
		}
		dbuf.B = out[:0]
	})

	// Full ingest: codec decode + unmarshal + chain verify + index insert.
	// Pages-only segments skip the chain check, as offload retries do.
	ingestStore := remote.NewStore(remote.NewMemStore())
	ingestSeg := datapathSegment(s, 16)
	ingestSeg.Entries = nil
	ingestBlob := nvmeoe.EncodeSegmentBlob(ingestSeg.Marshal())
	ingA, ingB := measureAllocs(ops, func() {
		if err := ingestStore.AppendSegmentBlob(ingestSeg, ingestBlob); err != nil {
			panic(err)
		}
	})

	return []DatapathAllocRow{
		{Loop: "encode", AllocsPerOp: encA, BytesPerOp: encB, Ops: ops,
			Note: "segment marshal + codec frame through pooled buffers (must be 0)"},
		{Loop: "decode", AllocsPerOp: decA, BytesPerOp: decB, Ops: ops,
			Note: "codec inflate into pooled buffer via the in-house inflater; tables rebuilt in place (must be 0)"},
		{Loop: "ingest", AllocsPerOp: ingA, BytesPerOp: ingB, Ops: ops,
			Note: "full store ingest; retains pages and grows indexes by design"},
	}
}

// datapathVariant runs one fleet pass (no attacks: pure datapath
// throughput) and aggregates it.
func datapathVariant(s Scale, devices int, name string, encodeWorkers int) (DatapathVariantRow, error) {
	row := DatapathVariantRow{Variant: name, Devices: devices}
	opts := fleetOpts{encodeWorkers: encodeWorkers, saturate: true, tune: remote.Profile("mem")}
	start := time.Now()
	pass, err := runFleetOn(s, devices, opts, remote.NewStore(remote.NewMemStore()))
	if err != nil {
		return row, err
	}
	wall := time.Since(start)
	row.WallMs = float64(wall.Microseconds()) / 1000
	row.PageOps = pass.pageOps
	row.Segments = pass.segments
	var ackSum, simSum float64
	var wireBytes uint64
	for _, r := range pass.rows {
		wireBytes += r.WireBytes
		ackSum += r.AckLatUs * float64(r.Segments)
		simSum += r.SimMs
		row.EncodeMs += r.EncodeMs
		row.Stalls += r.Stalls
		if r.EncodeQPeak > row.EncodeQPk {
			row.EncodeQPk = r.EncodeQPeak
		}
	}
	row.WireMB = float64(wireBytes) / float64(1<<20)
	if pass.records > 0 {
		row.MeanLatUs = float64(pass.totalLat) / float64(pass.records) / 1000
	}
	if row.Segments > 0 {
		row.AckUs = ackSum / float64(row.Segments)
	}
	if devices > 0 {
		row.SimMs = simSum / float64(devices)
	}
	if row.SimMs > 0 {
		// Devices run concurrently in simulated time: the fleet ships its
		// segments within one mean device span.
		row.SimSegsPerSec = float64(row.Segments) / (row.SimMs / 1000)
	}
	if secs := wall.Seconds(); secs > 0 {
		row.SegsPerSec = float64(row.Segments) / secs
		row.WireMBps = row.WireMB / secs
	}
	return row, nil
}

// Datapath runs the allocation loops, both pipeline variants, and the
// server-side saturated ingest run over ingestDevices sessions.
func Datapath(s Scale, devices, ingestDevices int) (*DatapathResult, error) {
	s = fleetScale(s)
	res := &DatapathResult{}
	// Alloc loops first: nothing else is running, so the allocator
	// counters see only the measured loop.
	res.Allocs = datapathAllocs(s)
	workers, err := datapathVariant(s, devices, "workers", 0)
	if err != nil {
		return nil, fmt.Errorf("datapath workers: %w", err)
	}
	inline, err := datapathVariant(s, devices, "inline", -1)
	if err != nil {
		return nil, fmt.Errorf("datapath inline baseline: %w", err)
	}
	res.Variants = []DatapathVariantRow{workers, inline}
	res.Ingest, err = Ingest(s, ingestDevices)
	if err != nil {
		return nil, fmt.Errorf("datapath ingest: %w", err)
	}
	return res, nil
}

// RenderDatapath renders the alloc table and the variant comparison.
func RenderDatapath(res *DatapathResult) string {
	at := metrics.NewTable("hot loop", "allocs/op", "bytes/op", "ops", "note")
	for _, a := range res.Allocs {
		at.AddRow(a.Loop, a.AllocsPerOp, a.BytesPerOp, a.Ops, a.Note)
	}
	vt := metrics.NewTable("variant", "devices", "page ops", "segs", "sim ms",
		"segs/s (sim)", "segs/s (wall)", "wire MB/s", "host µs", "ack µs",
		"enc ms (sim)", "enc q peak", "stalls")
	for _, v := range res.Variants {
		vt.AddRow(v.Variant, v.Devices, v.PageOps, v.Segments, v.SimMs,
			v.SimSegsPerSec, v.SegsPerSec, v.WireMBps, v.MeanLatUs, v.AckUs,
			v.EncodeMs, v.EncodeQPk, v.Stalls)
	}
	out := at.String() + vt.String()
	if len(res.Variants) == 2 {
		w, i := res.Variants[0], res.Variants[1]
		if i.SimSegsPerSec > 0 && i.MeanLatUs > 0 {
			out += fmt.Sprintf(
				"encode workers vs inline baseline (same run): %.3fx segs/s simulated, %.3fx host batch latency\n",
				w.SimSegsPerSec/i.SimSegsPerSec, w.MeanLatUs/i.MeanLatUs)
		}
	}
	if res.Ingest != nil {
		out += RenderIngest(res.Ingest)
	}
	return out
}
