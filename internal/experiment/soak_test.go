package experiment

import (
	"strings"
	"testing"
)

// TestSoakShort runs the CI-shaped soak: a compressed horizon at hot
// fault rates, asserting every hard gate the full run commits to.
func TestSoakShort(t *testing.T) {
	res, err := Soak(SmallScale(), SoakOptions{Devices: 3, Servers: 2, Waves: 3, Seed: 1, Short: true})
	if err != nil {
		t.Fatalf("soak failed: %v", err)
	}
	if res.FaultsInjected < soakShortFaults {
		t.Fatalf("only %d faults injected, want >= %d", res.FaultsInjected, soakShortFaults)
	}
	if res.FaultClasses < 3 {
		t.Fatalf("only %d fault classes fired, want >= 3", res.FaultClasses)
	}
	if res.WedgedFaults != 0 {
		t.Fatalf("%d faults wedged", res.WedgedFaults)
	}
	if res.EntriesLost != 0 || res.SegmentsLost != 0 {
		t.Fatalf("durability: %d entries / %d segments lost", res.EntriesLost, res.SegmentsLost)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("invariant violations: %v", res.Violations)
	}
	if res.Restores < 1 || res.RestoresVerified != res.Restores {
		t.Fatalf("restores = %d, verified = %d", res.Restores, res.RestoresVerified)
	}
	if res.BufpoolDelta != 0 {
		t.Fatalf("bufpool gauge drifted %+d", res.BufpoolDelta)
	}
	if res.ChainsVerified == 0 {
		t.Fatal("no chains verified")
	}
	if res.SimDays <= 0 {
		t.Fatal("soak reported a zero-length horizon")
	}
	if out := RenderSoak(res); !strings.Contains(out, "chaos soak: seed 1") {
		t.Fatalf("render missing header:\n%s", out)
	}
}

// TestSoakDeterministicReplay re-runs the same seed and requires the
// fault ledger to replay exactly — the reproduce-from-seed contract the
// gate-failure message promises.
func TestSoakDeterministicReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("replay pass doubles the soak; skipped in -short")
	}
	opt := SoakOptions{Devices: 2, Servers: 2, Waves: 3, Seed: 17, Short: true}
	a, err := Soak(SmallScale(), opt)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := Soak(SmallScale(), opt)
	if err != nil {
		t.Fatalf("replay run: %v", err)
	}
	if a.FaultsInjected != b.FaultsInjected {
		t.Fatalf("fault schedule diverged across runs of seed %d: %d vs %d injected",
			opt.Seed, a.FaultsInjected, b.FaultsInjected)
	}
	for c := range a.Faults {
		if a.Faults[c].Injected != b.Faults[c].Injected {
			t.Fatalf("class %s diverged: %d vs %d injected",
				a.Faults[c].Class, a.Faults[c].Injected, b.Faults[c].Injected)
		}
	}
	if a.Kills != b.Kills {
		t.Fatalf("kill schedule diverged: %d vs %d", a.Kills, b.Kills)
	}
}
