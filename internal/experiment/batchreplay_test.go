package experiment

import (
	"strings"
	"testing"
)

// TestBatchReplayAtLeastMatchesPerOp is the acceptance gate of the
// batched datapath: replaying the same trace, the submission-batch path's
// mean record latency (simulated, deterministic) must be no worse than
// the per-op path's — and the NVMe multi-queue path must agree with the
// direct batch path on the work done. Wall-clock speedup is reported by
// the benchmark/rssdbench rather than asserted here, where scheduler
// noise would make it flaky.
func TestBatchReplayAtLeastMatchesPerOp(t *testing.T) {
	rows, err := BatchReplay(SmallScale(), []string{"hm", "src"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PageOps == 0 {
			t.Fatalf("%s: empty replay", r.Workload)
		}
		if r.LatSpeedup < 1 {
			t.Errorf("%s: batched path has worse mean latency: %.3fx (per-op %.1fµs vs batch %.1fµs)",
				r.Workload, r.LatSpeedup, r.PerOpMeanLatUs, r.BatchMeanLatUs)
		}
		if r.NVMeMeanLatUs <= 0 {
			t.Errorf("%s: NVMe multi-queue replay measured no latency", r.Workload)
		}
	}
	if out := RenderBatchReplay(rows); !strings.Contains(out, "lat speedup") {
		t.Fatal("render broken")
	}
}
