package experiment

import "testing"

// TestRetentionTiers runs the tier comparison at test scale: every backend
// must carry the fleet workload with detection intact, ship compressed
// wire bytes, and survive a settled reload; the cloud tier must addition-
// ally price the run.
func TestRetentionTiers(t *testing.T) {
	rows, err := Retention(SmallScale(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(RetentionBackends) {
		t.Fatalf("rows = %d, want %d", len(rows), len(RetentionBackends))
	}
	for _, r := range rows {
		if r.Segments == 0 {
			t.Fatalf("%s: no segments ingested", r.Backend)
		}
		if r.BytesStored >= r.BytesLogical {
			t.Fatalf("%s: stored %d >= logical %d — compressed wire missing", r.Backend, r.BytesStored, r.BytesLogical)
		}
		if r.Caught != r.Attacked {
			t.Fatalf("%s: caught %d of %d attacks", r.Backend, r.Caught, r.Attacked)
		}
		if r.FalseAlerts != 0 {
			t.Fatalf("%s: %d false alerts", r.Backend, r.FalseAlerts)
		}
		if !r.ReloadOK {
			t.Fatalf("%s: settled reload failed to rebuild chain heads", r.Backend)
		}
		if r.BudgetDays <= 0 {
			t.Fatalf("%s: budget days = %v", r.Backend, r.BudgetDays)
		}
		switch r.Backend {
		case "s3sim":
			if r.TierPutMs <= 0 || r.RequestUSD <= 0 || r.StorageUSDMonth <= 0 {
				t.Fatalf("s3sim cost/latency model silent: %+v", r)
			}
		default:
			if r.TierPutMs != 0 || r.RequestUSD != 0 || r.StorageUSDMonth != 0 {
				t.Fatalf("%s: free local tier accrued cloud cost: %+v", r.Backend, r)
			}
		}
	}
}
