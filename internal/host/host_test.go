package host

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/ftl"
	"repro/internal/nand"
	"repro/internal/simclock"
)

func newFS() *FlatFS {
	cfg := ftl.Config{
		NAND: nand.Config{
			Geometry: nand.Geometry{
				Channels: 2, ChipsPerChannel: 2, DiesPerChip: 1, PlanesPerDie: 1,
				BlocksPerPlane: 16, PagesPerBlock: 8, PageSize: 512,
			},
			Timing: nand.DefaultTiming(),
		},
		OverProvision: 0.2,
	}
	return NewFlatFS(ftl.New(cfg, nil), simclock.NewClock())
}

func TestCreateReadRoundTrip(t *testing.T) {
	fs := newFS()
	data := bytes.Repeat([]byte("hello world "), 100) // 1200 bytes, 3 pages
	if err := fs.Create("doc.txt", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("doc.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	info, err := fs.Stat("doc.txt")
	if err != nil || info.Size != len(data) || info.Pages != 3 {
		t.Fatalf("stat = %+v, %v", info, err)
	}
}

func TestCreateDuplicate(t *testing.T) {
	fs := newFS()
	fs.Create("a", []byte("1"))
	if err := fs.Create("a", []byte("2")); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadMissing(t *testing.T) {
	fs := newFS()
	if _, err := fs.ReadFile("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := fs.Stat("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := fs.Extents("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestOverwriteSameSize(t *testing.T) {
	fs := newFS()
	fs.Create("f", bytes.Repeat([]byte{1}, 1024))
	before, _ := fs.Extents("f")
	if err := fs.Overwrite("f", bytes.Repeat([]byte{2}, 1024)); err != nil {
		t.Fatal(err)
	}
	after, _ := fs.Extents("f")
	if len(before) != len(after) || before[0] != after[0] {
		t.Fatal("same-size overwrite moved the file")
	}
	got, _ := fs.ReadFile("f")
	if got[0] != 2 {
		t.Fatal("overwrite not visible")
	}
}

func TestOverwriteGrow(t *testing.T) {
	fs := newFS()
	fs.Create("f", []byte("small"))
	big := bytes.Repeat([]byte{9}, 5000)
	if err := fs.Overwrite("f", big); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("f")
	if !bytes.Equal(got, big) {
		t.Fatal("grown file mismatch")
	}
}

func TestDeleteFreesSpace(t *testing.T) {
	fs := newFS()
	free0 := fs.FreePages()
	fs.Create("f", bytes.Repeat([]byte{1}, 2048)) // 4 pages
	if fs.FreePages() != free0-4 {
		t.Fatalf("free = %d, want %d", fs.FreePages(), free0-4)
	}
	if err := fs.Delete("f", false); err != nil {
		t.Fatal(err)
	}
	if fs.FreePages() != free0 {
		t.Fatal("delete did not free pages")
	}
	if err := fs.Delete("f", false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestDeleteWithTrimIssuesTrims(t *testing.T) {
	dev := ftl.New(ftl.Config{
		NAND: nand.Config{
			Geometry: nand.Geometry{
				Channels: 1, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
				BlocksPerPlane: 16, PagesPerBlock: 8, PageSize: 512,
			},
			Timing: nand.DefaultTiming(),
		},
		OverProvision: 0.2,
	}, nil)
	fs := NewFlatFS(dev, simclock.NewClock())
	fs.Create("f", bytes.Repeat([]byte{1}, 1536)) // 3 pages
	if err := fs.Delete("f", true); err != nil {
		t.Fatal(err)
	}
	if got := dev.Stats().Trims; got != 3 {
		t.Fatalf("trims = %d, want 3", got)
	}
}

func TestRename(t *testing.T) {
	fs := newFS()
	fs.Create("a", []byte("data"))
	if err := fs.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("old name still readable")
	}
	got, err := fs.ReadFile("b")
	if err != nil || !bytes.Equal(got, []byte("data")) {
		t.Fatalf("renamed read = %q, %v", got, err)
	}
	fs.Create("c", []byte("x"))
	if err := fs.Rename("b", "c"); !errors.Is(err, ErrExists) {
		t.Fatalf("rename onto existing err = %v", err)
	}
	if err := fs.Rename("ghost", "d"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rename missing err = %v", err)
	}
}

func TestListSorted(t *testing.T) {
	fs := newFS()
	fs.Create("zeta", []byte("1"))
	fs.Create("alpha", []byte("2"))
	got := fs.List()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("List = %v", got)
	}
}

func TestFillToCapacity(t *testing.T) {
	fs := newFS()
	page := int(fs.Device().PageSize())
	var created int
	for i := 0; ; i++ {
		err := fs.Create(string(rune('A'+i%26))+string(rune('0'+i/26)), bytes.Repeat([]byte{byte(i)}, page*8))
		if errors.Is(err, ErrNoSpace) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		created++
		if i > 10000 {
			t.Fatal("never filled up")
		}
	}
	if created == 0 {
		t.Fatal("no files created")
	}
	// Free one file and confirm allocation works again.
	if err := fs.Delete(fs.List()[0], false); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("again", bytes.Repeat([]byte{1}, page)); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyFileOwnsOnePage(t *testing.T) {
	fs := newFS()
	free0 := fs.FreePages()
	fs.Create("empty", nil)
	if fs.FreePages() != free0-1 {
		t.Fatal("empty file should own one page")
	}
	got, err := fs.ReadFile("empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("empty read = %v, %v", got, err)
	}
}

func TestClockAdvancesWithIO(t *testing.T) {
	fs := newFS()
	t0 := fs.Clock().Now()
	fs.Create("f", bytes.Repeat([]byte{1}, 4096))
	if !fs.Clock().Now().After(t0) {
		t.Fatal("I/O did not advance simulated time")
	}
}

// Property: any sequence of create/overwrite/delete keeps file contents
// faithful to a shadow map.
func TestFSConsistencyProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		fs := newFS()
		shadow := map[string][]byte{}
		names := []string{"a", "b", "c", "d"}
		for i, op := range ops {
			name := names[int(op>>2)%len(names)]
			content := bytes.Repeat([]byte{byte(i + 1)}, int(op%2048)+1)
			switch op % 3 {
			case 0:
				err := fs.Create(name, content)
				if _, exists := shadow[name]; exists {
					if !errors.Is(err, ErrExists) {
						return false
					}
				} else if err == nil {
					shadow[name] = content
				} else if !errors.Is(err, ErrNoSpace) {
					return false
				}
			case 1:
				err := fs.Overwrite(name, content)
				if _, exists := shadow[name]; !exists {
					if !errors.Is(err, ErrNotFound) {
						return false
					}
				} else if err == nil {
					shadow[name] = content
				} else if !errors.Is(err, ErrNoSpace) {
					return false
				}
			case 2:
				err := fs.Delete(name, op%2 == 0)
				if _, exists := shadow[name]; !exists {
					if !errors.Is(err, ErrNotFound) {
						return false
					}
				} else if err != nil {
					return false
				} else {
					delete(shadow, name)
				}
			}
		}
		for name, want := range shadow {
			got, err := fs.ReadFile(name)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
