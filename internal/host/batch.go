package host

import "repro/internal/batch"

// BatchDevice is a BlockDevice that also accepts submission batches (see
// internal/batch for the semantics). The host side type-asserts its
// BlockDevice to this interface and, when the device is batch-capable,
// drives whole files / whole trace records through one submission instead
// of one call per page.
type BatchDevice interface {
	BlockDevice
	batch.Device
}
