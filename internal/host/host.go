// Package host models the (untrusted) host side of the system: a block
// device interface and a minimal flat filesystem on top of it.
//
// RSSD's threat model trusts nothing above the block interface — the OS,
// filesystem, and backup daemons may all be attacker-controlled. The
// filesystem here therefore exists only to give ransomware models and
// benign workloads realistic file-granular behaviour (allocation locality,
// metadata-free data paths); its correctness is not a security premise.
package host

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/batch"
	"repro/internal/simclock"
)

// BlockDevice is the host's view of a storage device. Both the plain FTL
// (LocalSSD baseline) and RSSD satisfy it.
type BlockDevice interface {
	Write(lpn uint64, data []byte, at simclock.Time) (simclock.Time, error)
	Read(lpn uint64, at simclock.Time) ([]byte, simclock.Time, error)
	Trim(lpn uint64, at simclock.Time) (simclock.Time, error)
	PageSize() int
	LogicalPages() uint64
}

// Filesystem errors.
var (
	ErrExists   = errors.New("host: file exists")
	ErrNotFound = errors.New("host: file not found")
	ErrNoSpace  = errors.New("host: filesystem full")
)

type extent struct {
	start uint64
	count uint64
}

// FileInfo describes a stored file.
type FileInfo struct {
	Name  string
	Size  int // bytes
	Pages int
}

type file struct {
	name    string
	size    int
	extents []extent
}

// FlatFS is a minimal flat (no directories) filesystem. Metadata lives in
// host memory; file contents live on the device, page-aligned. A
// first-fit page allocator gives files contiguous extents when possible,
// mimicking filesystem locality.
type FlatFS struct {
	dev   BlockDevice
	clock *simclock.Clock
	files map[string]*file
	used  []bool // page allocation bitmap
	free  uint64
}

// NewFlatFS formats an empty filesystem over dev, driven by clock.
func NewFlatFS(dev BlockDevice, clock *simclock.Clock) *FlatFS {
	n := dev.LogicalPages()
	return &FlatFS{
		dev:   dev,
		clock: clock,
		files: map[string]*file{},
		used:  make([]bool, n),
		free:  n,
	}
}

// Device returns the underlying block device.
func (fs *FlatFS) Device() BlockDevice { return fs.dev }

// Clock returns the simulation clock driving this filesystem.
func (fs *FlatFS) Clock() *simclock.Clock { return fs.clock }

// FreePages returns the number of unallocated pages.
func (fs *FlatFS) FreePages() uint64 { return fs.free }

// pagesFor returns how many pages size bytes occupy.
func (fs *FlatFS) pagesFor(size int) uint64 {
	ps := fs.dev.PageSize()
	return uint64((size + ps - 1) / ps)
}

// allocate finds extents covering n pages, first-fit.
func (fs *FlatFS) allocate(n uint64) ([]extent, error) {
	if n > fs.free {
		return nil, ErrNoSpace
	}
	var exts []extent
	var need = n
	i := uint64(0)
	total := uint64(len(fs.used))
	for need > 0 && i < total {
		for i < total && fs.used[i] {
			i++
		}
		if i >= total {
			break
		}
		start := i
		for i < total && !fs.used[i] && (i-start) < need {
			i++
		}
		exts = append(exts, extent{start: start, count: i - start})
		need -= i - start
	}
	if need > 0 {
		return nil, ErrNoSpace
	}
	for _, e := range exts {
		for p := e.start; p < e.start+e.count; p++ {
			fs.used[p] = true
		}
	}
	fs.free -= n
	return exts, nil
}

// submit pushes a group of operations to the device — as one submission
// batch when the device is batch-capable (a whole file becomes one NVMe
// doorbell ring), per-op otherwise — and advances the clock to the batch
// completion. Results align with ops.
func (fs *FlatFS) submit(ops []batch.Op) ([]batch.Result, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	if bd, ok := fs.dev.(BatchDevice); ok {
		res, done, err := bd.SubmitBatch(ops, fs.clock.Now())
		if err != nil {
			return nil, err
		}
		for i := range res {
			if res[i].Err != nil {
				return nil, res[i].Err
			}
		}
		fs.clock.AdvanceTo(done)
		return res, nil
	}
	res := make([]batch.Result, len(ops))
	for i, op := range ops {
		var done simclock.Time
		var err error
		switch op.Kind {
		case batch.OpWrite:
			done, err = fs.dev.Write(op.LPN, op.Data, fs.clock.Now())
		case batch.OpRead:
			res[i].Data, done, err = fs.dev.Read(op.LPN, fs.clock.Now())
		case batch.OpTrim:
			done, err = fs.dev.Trim(op.LPN, fs.clock.Now())
		}
		if err != nil {
			return nil, err
		}
		res[i].Done = done
		fs.clock.AdvanceTo(done)
	}
	return res, nil
}

// release returns extents to the free pool, optionally trimming them.
func (fs *FlatFS) release(exts []extent, trim bool) error {
	var ops []batch.Op
	for _, e := range exts {
		for p := e.start; p < e.start+e.count; p++ {
			fs.used[p] = false
			fs.free++
			if trim {
				ops = append(ops, batch.Op{Kind: batch.OpTrim, LPN: p})
			}
		}
	}
	_, err := fs.submit(ops)
	return err
}

// writeExtents writes data across the file's extents, zero-padding the
// final page.
func (fs *FlatFS) writeExtents(exts []extent, data []byte) error {
	ps := fs.dev.PageSize()
	var ops []batch.Op
	off := 0
	for _, e := range exts {
		for p := e.start; p < e.start+e.count; p++ {
			page := make([]byte, ps)
			if off < len(data) {
				off += copy(page, data[off:])
			}
			ops = append(ops, batch.Op{Kind: batch.OpWrite, LPN: p, Data: page})
		}
	}
	_, err := fs.submit(ops)
	return err
}

// Create stores a new file.
func (fs *FlatFS) Create(name string, data []byte) error {
	if _, ok := fs.files[name]; ok {
		return fmt.Errorf("%w: %s", ErrExists, name)
	}
	n := fs.pagesFor(len(data))
	if n == 0 {
		n = 1 // empty files still own a page, keeping Delete/trim uniform
	}
	exts, err := fs.allocate(n)
	if err != nil {
		return err
	}
	f := &file{name: name, size: len(data), extents: exts}
	if err := fs.writeExtents(exts, data); err != nil {
		return err
	}
	fs.files[name] = f
	return nil
}

// ReadFile returns the file's contents.
func (fs *FlatFS) ReadFile(name string) ([]byte, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	var ops []batch.Op
	for _, e := range f.extents {
		for p := e.start; p < e.start+e.count; p++ {
			ops = append(ops, batch.Op{Kind: batch.OpRead, LPN: p})
		}
	}
	res, err := fs.submit(ops)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, f.size)
	for i := range res {
		out = append(out, res[i].Data...)
	}
	return out[:f.size], nil
}

// Overwrite replaces a file's contents in place when the page count
// matches (the common ransomware pattern: same-size ciphertext), or
// reallocates otherwise.
func (fs *FlatFS) Overwrite(name string, data []byte) error {
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	n := fs.pagesFor(len(data))
	if n == 0 {
		n = 1
	}
	if n != fs.totalPages(f) {
		if err := fs.release(f.extents, false); err != nil {
			return err
		}
		exts, err := fs.allocate(n)
		if err != nil {
			return err
		}
		f.extents = exts
	}
	f.size = len(data)
	return fs.writeExtents(f.extents, data)
}

// Delete removes a file. With trim=true the freed pages are trimmed — the
// pattern the trimming attack uses to physically destroy plaintext.
func (fs *FlatFS) Delete(name string, trim bool) error {
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err := fs.release(f.extents, trim); err != nil {
		return err
	}
	delete(fs.files, name)
	return nil
}

// Rename changes a file's name (metadata-only).
func (fs *FlatFS) Rename(oldName, newName string) error {
	f, ok := fs.files[oldName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, oldName)
	}
	if _, ok := fs.files[newName]; ok {
		return fmt.Errorf("%w: %s", ErrExists, newName)
	}
	delete(fs.files, oldName)
	f.name = newName
	fs.files[newName] = f
	return nil
}

// Stat returns a file's metadata.
func (fs *FlatFS) Stat(name string) (FileInfo, error) {
	f, ok := fs.files[name]
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return FileInfo{Name: f.name, Size: f.size, Pages: int(fs.totalPages(f))}, nil
}

// List returns all file names, sorted.
func (fs *FlatFS) List() []string {
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Extents returns the page numbers a file occupies, in order. Attacks use
// it to trim precisely the victim's pages.
func (fs *FlatFS) Extents(name string) ([]uint64, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	var pages []uint64
	for _, e := range f.extents {
		for p := e.start; p < e.start+e.count; p++ {
			pages = append(pages, p)
		}
	}
	return pages, nil
}

func (fs *FlatFS) totalPages(f *file) uint64 {
	var n uint64
	for _, e := range f.extents {
		n += e.count
	}
	return n
}
