package nvmeoe

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/bufpool"
)

// This file is the one compression implementation in the tree: the frame
// layer, the segment-blob wire format, and the retention-capacity models
// all compress through it.
//
// Segment blobs — the unit the offload engine ships and the remote store
// persists — carry their own codec header, so the same encoded bytes travel
// the NVMe-oE wire and land in the object store unchanged: compressed on
// the wire IS compressed at rest, and the server never re-compresses. The
// header also versions the encoding: blobs written before this format (a
// bare oplog segment marshal) carry no header and decode as CodecNone.

// Codec identifies how a segment blob's payload is encoded.
type Codec uint8

// Segment-blob codecs.
const (
	// CodecNone stores the segment marshal verbatim. Written by encoders
	// that predate CodecStored; still decoded, no longer produced.
	CodecNone Codec = 0
	// CodecDeflate stores the segment marshal DEFLATE-compressed.
	CodecDeflate Codec = 1
	// CodecStored stores the segment marshal verbatim: the stored-block
	// fast path for barely-compressible pages. The encoder picks it when
	// deflate saves less than 1/16th of the raw size — at that ratio the
	// wire win cannot pay for inflating on every ingest, restore, and
	// recovery read, so decode becomes a pure copy instead.
	CodecStored Codec = 2
)

func (c Codec) String() string {
	switch c {
	case CodecNone:
		return "none"
	case CodecDeflate:
		return "deflate"
	case CodecStored:
		return "stored"
	default:
		return fmt.Sprintf("Codec(%d)", uint8(c))
	}
}

// storedSavingShift sets the deflate-versus-stored break-even: compression
// must save at least raw>>storedSavingShift (1/16th) or the blob is stored.
const storedSavingShift = 4

// blob header layout: magic(4) codec(1) rawLen(4) = 9 bytes.
const (
	blobMagic      = 0x43535352 // "RSSC": RSSD Segment Codec
	blobHeaderSize = 9
)

// ErrBadBlob reports a segment blob whose codec framing does not decode.
var ErrBadBlob = errors.New("nvmeoe: malformed segment blob")

// BlobOverhead is the codec frame's fixed cost; AppendSegmentBlob never
// appends more than BlobOverhead+len(raw) bytes, so callers can size a
// pooled destination exactly.
const BlobOverhead = blobHeaderSize

// EncodeSegmentBlob wraps a marshaled segment in the codec frame,
// compressing when that shrinks it. The result is what goes on the wire
// and into the object store.
func EncodeSegmentBlob(raw []byte) []byte {
	return AppendSegmentBlob(make([]byte, 0, blobHeaderSize+len(raw)), raw)
}

// AppendSegmentBlob is EncodeSegmentBlob into a caller-provided buffer: it
// appends the codec-framed blob to dst and returns the extended slice. This
// is the encode hot loop's entry point — with a pooled dst of capacity
// BlobOverhead+len(raw) it allocates nothing.
func AppendSegmentBlob(dst, raw []byte) []byte {
	base := len(dst)
	var hdr [blobHeaderSize]byte
	dst = append(dst, hdr[:]...)
	codec := CodecDeflate
	out, ok := AppendDeflate(dst, raw)
	if !ok || len(raw)-(len(out)-len(dst)) < len(raw)>>storedSavingShift {
		// Deflate failed to shrink, or shrank by less than 1/16th: take the
		// stored fast path so every downstream decode is a straight copy.
		codec = CodecStored
		out = append(dst, raw...)
	}
	binary.LittleEndian.PutUint32(out[base:], blobMagic)
	out[base+4] = byte(codec)
	binary.LittleEndian.PutUint32(out[base+5:], uint32(len(raw)))
	return out
}

// DecodeSegmentBlob returns the marshaled segment inside blob, inflating
// when the codec header says so. Blobs without a codec header — segments
// persisted before the compressed wire format — are returned verbatim, so
// old stores keep reloading. The CodecNone and legacy paths alias blob
// rather than copying; use AppendDecodeSegmentBlob when the result must
// land in a caller-owned (pooled) buffer.
func DecodeSegmentBlob(blob []byte) ([]byte, error) {
	if !IsSegmentBlob(blob) {
		return blob, nil
	}
	if c := Codec(blob[4]); c == CodecNone || c == CodecStored {
		body := blob[blobHeaderSize:]
		if rawLen := binary.LittleEndian.Uint32(blob[5:]); uint32(len(body)) != rawLen {
			return nil, fmt.Errorf("%w: raw length %d, header says %d", ErrBadBlob, len(body), rawLen)
		}
		return body, nil
	}
	return AppendDecodeSegmentBlob(nil, blob)
}

// AppendDecodeSegmentBlob is DecodeSegmentBlob into a caller-provided
// buffer: the decoded marshal is appended to dst (always copied, even on
// the passthrough paths, so the result never aliases blob). The ingest hot
// loop decodes through it with a pooled dst sized by
// SegmentBlobLogicalSize; with sufficient capacity it allocates nothing.
func AppendDecodeSegmentBlob(dst, blob []byte) ([]byte, error) {
	if !IsSegmentBlob(blob) {
		return append(dst, blob...), nil
	}
	codec := Codec(blob[4])
	rawLen := binary.LittleEndian.Uint32(blob[5:])
	body := blob[blobHeaderSize:]
	switch codec {
	case CodecNone, CodecStored:
		if uint32(len(body)) != rawLen {
			return nil, fmt.Errorf("%w: raw length %d, header says %d", ErrBadBlob, len(body), rawLen)
		}
		return append(dst, body...), nil
	case CodecDeflate:
		// A flipped bit in the header can claim any 32-bit logical size; no
		// honest encoder exceeds the frame bound, so reject before decoding
		// and cap the inflate at the claimed size — corruption can neither
		// trigger a giant allocation nor balloon output past its own claim.
		if rawLen > MaxPayload {
			return nil, fmt.Errorf("%w: claimed logical size %d exceeds %d", ErrBadBlob, rawLen, MaxPayload)
		}
		base := len(dst)
		out, err := AppendInflateLimited(dst, body, int(rawLen))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadBlob, err)
		}
		if uint32(len(out)-base) != rawLen {
			return nil, fmt.Errorf("%w: inflated to %d, header says %d", ErrBadBlob, len(out)-base, rawLen)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown codec %d", ErrBadBlob, codec)
	}
}

// SegmentBlobLogicalSize returns the decoded (logical) size of a segment
// blob without inflating it: the codec header records it, and a legacy
// blob is its own decoding.
func SegmentBlobLogicalSize(blob []byte) int {
	if !IsSegmentBlob(blob) {
		return len(blob)
	}
	n := int(binary.LittleEndian.Uint32(blob[5:]))
	if n > MaxPayload {
		// No honest encoder claims past the frame bound; decode is going to
		// reject this blob, so don't let a flipped header bit size a giant
		// buffer for it.
		return 0
	}
	return n
}

// IsSegmentBlob reports whether b carries the codec frame header. The
// check is unambiguous against legacy blobs: a bare segment marshal starts
// with the oplog segment magic, not blobMagic.
func IsSegmentBlob(b []byte) bool {
	return len(b) >= blobHeaderSize && binary.LittleEndian.Uint32(b) == blobMagic
}

// Deflate compresses p, reporting false when compression does not shrink it.
func Deflate(p []byte) ([]byte, bool) {
	out, ok := AppendDeflate(nil, p)
	if !ok {
		return nil, false
	}
	return out, true
}

// AppendDeflate appends the DEFLATE compression of p to dst, reporting
// false — with dst returned unchanged — when compression does not shrink p.
// The compressor itself is pooled (a flate.Writer is a multi-KB struct);
// with sufficient dst capacity the call allocates nothing.
func AppendDeflate(dst, p []byte) ([]byte, bool) {
	d := bufpool.GetDeflater()
	out, err := d.Append(dst, p)
	d.Release()
	if err != nil || len(out)-len(dst) >= len(p) {
		return dst, false
	}
	return out, true
}

// Inflate decompresses a Deflate result.
func Inflate(p []byte) ([]byte, error) {
	return AppendInflate(nil, p)
}

// AppendInflate appends the decompression of the DEFLATE stream p to dst.
// The decompressor is pooled; with sufficient dst capacity the call
// allocates nothing.
func AppendInflate(dst, p []byte) ([]byte, error) {
	i := bufpool.GetInflater()
	out, err := i.Append(dst, p)
	i.Release()
	return out, err
}

// AppendInflateLimited is AppendInflate bounded to max decoded bytes: a
// stream that would produce more fails instead of ballooning memory — the
// decode guard for wire blobs whose header declares their logical size.
func AppendInflateLimited(dst, p []byte, max int) ([]byte, error) {
	i := bufpool.GetInflater()
	out, err := i.AppendLimited(dst, p, max)
	i.Release()
	return out, err
}

// CompressionRatio reports how much the codec shrinks p (original/encoded);
// the retention-capacity models use it to size the LocalSSD+Compression
// baseline and the offload bandwidth estimates.
func CompressionRatio(p []byte) float64 {
	c, ok := Deflate(p)
	if !ok || len(c) == 0 {
		return 1
	}
	return float64(len(p)) / float64(len(c))
}
