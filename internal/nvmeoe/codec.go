package nvmeoe

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file is the one compression implementation in the tree: the frame
// layer, the segment-blob wire format, and the retention-capacity models
// all compress through it.
//
// Segment blobs — the unit the offload engine ships and the remote store
// persists — carry their own codec header, so the same encoded bytes travel
// the NVMe-oE wire and land in the object store unchanged: compressed on
// the wire IS compressed at rest, and the server never re-compresses. The
// header also versions the encoding: blobs written before this format (a
// bare oplog segment marshal) carry no header and decode as CodecNone.

// Codec identifies how a segment blob's payload is encoded.
type Codec uint8

// Segment-blob codecs.
const (
	// CodecNone stores the segment marshal verbatim (incompressible data).
	CodecNone Codec = 0
	// CodecDeflate stores the segment marshal DEFLATE-compressed.
	CodecDeflate Codec = 1
)

func (c Codec) String() string {
	switch c {
	case CodecNone:
		return "none"
	case CodecDeflate:
		return "deflate"
	default:
		return fmt.Sprintf("Codec(%d)", uint8(c))
	}
}

// blob header layout: magic(4) codec(1) rawLen(4) = 9 bytes.
const (
	blobMagic      = 0x43535352 // "RSSC": RSSD Segment Codec
	blobHeaderSize = 9
)

// ErrBadBlob reports a segment blob whose codec framing does not decode.
var ErrBadBlob = errors.New("nvmeoe: malformed segment blob")

// EncodeSegmentBlob wraps a marshaled segment in the codec frame,
// compressing when that shrinks it. The result is what goes on the wire
// and into the object store.
func EncodeSegmentBlob(raw []byte) []byte {
	codec, body := CodecNone, raw
	if c, ok := Deflate(raw); ok {
		codec, body = CodecDeflate, c
	}
	b := make([]byte, 0, blobHeaderSize+len(body))
	b = binary.LittleEndian.AppendUint32(b, blobMagic)
	b = append(b, byte(codec))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(raw)))
	return append(b, body...)
}

// DecodeSegmentBlob returns the marshaled segment inside blob, inflating
// when the codec header says so. Blobs without a codec header — segments
// persisted before the compressed wire format — are returned verbatim, so
// old stores keep reloading.
func DecodeSegmentBlob(blob []byte) ([]byte, error) {
	if !IsSegmentBlob(blob) {
		return blob, nil
	}
	codec := Codec(blob[4])
	rawLen := binary.LittleEndian.Uint32(blob[5:])
	body := blob[blobHeaderSize:]
	switch codec {
	case CodecNone:
		if uint32(len(body)) != rawLen {
			return nil, fmt.Errorf("%w: raw length %d, header says %d", ErrBadBlob, len(body), rawLen)
		}
		return body, nil
	case CodecDeflate:
		raw, err := Inflate(body)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadBlob, err)
		}
		if uint32(len(raw)) != rawLen {
			return nil, fmt.Errorf("%w: inflated to %d, header says %d", ErrBadBlob, len(raw), rawLen)
		}
		return raw, nil
	default:
		return nil, fmt.Errorf("%w: unknown codec %d", ErrBadBlob, codec)
	}
}

// SegmentBlobLogicalSize returns the decoded (logical) size of a segment
// blob without inflating it: the codec header records it, and a legacy
// blob is its own decoding.
func SegmentBlobLogicalSize(blob []byte) int {
	if !IsSegmentBlob(blob) {
		return len(blob)
	}
	return int(binary.LittleEndian.Uint32(blob[5:]))
}

// IsSegmentBlob reports whether b carries the codec frame header. The
// check is unambiguous against legacy blobs: a bare segment marshal starts
// with the oplog segment magic, not blobMagic.
func IsSegmentBlob(b []byte) bool {
	return len(b) >= blobHeaderSize && binary.LittleEndian.Uint32(b) == blobMagic
}

// Deflate compresses p, reporting false when compression does not shrink it.
func Deflate(p []byte) ([]byte, bool) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, false
	}
	if _, err := w.Write(p); err != nil {
		return nil, false
	}
	if err := w.Close(); err != nil {
		return nil, false
	}
	if buf.Len() >= len(p) {
		return nil, false
	}
	return buf.Bytes(), true
}

// Inflate decompresses a Deflate result.
func Inflate(p []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(p))
	defer r.Close()
	return io.ReadAll(r)
}

// CompressionRatio reports how much the codec shrinks p (original/encoded);
// the retention-capacity models use it to size the LocalSSD+Compression
// baseline and the offload bandwidth estimates.
func CompressionRatio(p []byte) float64 {
	c, ok := Deflate(p)
	if !ok || len(c) == 0 {
		return 1
	}
	return float64(len(p)) / float64(len(c))
}
