package nvmeoe

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"

	"repro/internal/oplog"
)

func testSegment(t testing.TB, data []byte) *oplog.Segment {
	t.Helper()
	return &oplog.Segment{
		DeviceID: 7,
		Pages: []oplog.PageRecord{
			{LPN: 1, WriteSeq: 2, StaleSeq: 3, Hash: oplog.HashData(data), Data: data},
		},
	}
}

func TestSegmentBlobRoundTripCompressible(t *testing.T) {
	seg := testSegment(t, make([]byte, 8192)) // zero pages deflate hard
	raw := seg.Marshal()
	blob := EncodeSegmentBlob(raw)
	if !IsSegmentBlob(blob) {
		t.Fatal("encoded blob not recognized")
	}
	if len(blob) >= len(raw) {
		t.Fatalf("compressible blob grew: wire %d >= logical %d", len(blob), len(raw))
	}
	got, err := DecodeSegmentBlob(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, raw) {
		t.Fatal("round trip mismatch")
	}
	if _, err := oplog.UnmarshalSegment(got); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentBlobRoundTripIncompressible(t *testing.T) {
	data := make([]byte, 4096)
	rand.Read(data)
	raw := testSegment(t, data).Marshal()
	blob := EncodeSegmentBlob(raw)
	if Codec(blob[4]) != CodecStored {
		t.Fatalf("random data picked codec %v, want stored", Codec(blob[4]))
	}
	got, err := DecodeSegmentBlob(blob)
	if err != nil || !bytes.Equal(got, raw) {
		t.Fatalf("round trip: %v", err)
	}
	// The append-style decode must copy, not alias, the stored body.
	dec, err := AppendDecodeSegmentBlob(nil, blob)
	if err != nil || !bytes.Equal(dec, raw) {
		t.Fatalf("append decode: %v", err)
	}
	if &dec[0] == &blob[blobHeaderSize] {
		t.Fatal("AppendDecodeSegmentBlob aliased the stored body")
	}
}

// TestSegmentBlobStoredThreshold pins the deflate-versus-stored policy:
// compression that saves less than 1/16th of the raw size is not worth a
// per-ingest inflate, so such blobs take the stored fast path; anything
// saving more stays deflated.
func TestSegmentBlobStoredThreshold(t *testing.T) {
	// Random pages barely compress (the marshal framing shaves a little,
	// far under 1/16th) — must be stored.
	data := make([]byte, 16384)
	rand.Read(data)
	barely := testSegment(t, data).Marshal()
	if comp, ok := Deflate(barely); ok {
		if saving := len(barely) - len(comp); saving >= len(barely)>>storedSavingShift {
			t.Skipf("random payload compressed too well to exercise the threshold (saved %d)", saving)
		}
	}
	blob := EncodeSegmentBlob(barely)
	if Codec(blob[4]) != CodecStored {
		t.Fatalf("barely-compressible blob picked %v, want stored", Codec(blob[4]))
	}
	if len(blob) != BlobOverhead+len(barely) {
		t.Fatalf("stored blob is %d bytes, want raw+overhead %d", len(blob), BlobOverhead+len(barely))
	}

	// Repetitive pages compress far past the threshold — must stay deflate.
	wellBlob := EncodeSegmentBlob(testSegment(t, bytes.Repeat([]byte("page "), 1600)).Marshal())
	if Codec(wellBlob[4]) != CodecDeflate {
		t.Fatalf("compressible blob picked %v, want deflate", Codec(wellBlob[4]))
	}
}

// TestDecodeSegmentBlobCodecNoneCompat: stores written before CodecStored
// carry CodecNone frames; both decode entry points must keep reading them.
func TestDecodeSegmentBlobCodecNoneCompat(t *testing.T) {
	raw := testSegment(t, []byte("pre-stored era page")).Marshal()
	blob := make([]byte, 0, BlobOverhead+len(raw))
	blob = append(blob, 0x52, 0x53, 0x53, 0x43) // blobMagic, little-endian
	blob = append(blob, byte(CodecNone))
	blob = append(blob, byte(len(raw)), byte(len(raw)>>8), byte(len(raw)>>16), byte(len(raw)>>24))
	blob = append(blob, raw...)
	if !IsSegmentBlob(blob) {
		t.Fatal("hand-built CodecNone blob not recognized")
	}
	got, err := DecodeSegmentBlob(blob)
	if err != nil || !bytes.Equal(got, raw) {
		t.Fatalf("CodecNone decode: %v", err)
	}
	app, err := AppendDecodeSegmentBlob(nil, blob)
	if err != nil || !bytes.Equal(app, raw) {
		t.Fatalf("CodecNone append decode: %v", err)
	}
	if SegmentBlobLogicalSize(blob) != len(raw) {
		t.Fatalf("logical size %d, want %d", SegmentBlobLogicalSize(blob), len(raw))
	}
}

func TestDecodeSegmentBlobLegacyPassthrough(t *testing.T) {
	// A pre-codec store holds bare segment marshals; they must decode as-is.
	raw := testSegment(t, []byte("legacy page")).Marshal()
	got, err := DecodeSegmentBlob(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, raw) {
		t.Fatal("legacy blob modified by decode")
	}
}

func TestDecodeSegmentBlobCorrupt(t *testing.T) {
	blob := EncodeSegmentBlob(testSegment(t, make([]byte, 4096)).Marshal())
	// Unknown codec.
	bad := append([]byte(nil), blob...)
	bad[4] = 0x7F
	if _, err := DecodeSegmentBlob(bad); !errors.Is(err, ErrBadBlob) {
		t.Fatalf("unknown codec err = %v", err)
	}
	// Truncated compressed body.
	if _, err := DecodeSegmentBlob(blob[:len(blob)-4]); !errors.Is(err, ErrBadBlob) {
		t.Fatalf("truncated body err = %v", err)
	}
	// Length header lies.
	bad = append([]byte(nil), blob...)
	bad[5] ^= 0xFF
	if _, err := DecodeSegmentBlob(bad); !errors.Is(err, ErrBadBlob) {
		t.Fatalf("bad length err = %v", err)
	}
}

func TestWriteMsgSkipsRecompressingBlobs(t *testing.T) {
	// An encoded blob round-trips the frame layer unchanged: the frame
	// flags must not mark it compressed a second time.
	blob := EncodeSegmentBlob(testSegment(t, make([]byte, 8192)).Marshal())
	dev, srv := pipePair(t)
	go dev.WriteMsg(MsgSegment, blob)
	typ, body, err := srv.ReadMsg()
	if err != nil || typ != MsgSegment {
		t.Fatalf("read: %v %v", typ, err)
	}
	if !bytes.Equal(body, blob) {
		t.Fatal("blob changed in transit")
	}
}
