package nvmeoe

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"

	"repro/internal/oplog"
)

func testSegment(t testing.TB, data []byte) *oplog.Segment {
	t.Helper()
	return &oplog.Segment{
		DeviceID: 7,
		Pages: []oplog.PageRecord{
			{LPN: 1, WriteSeq: 2, StaleSeq: 3, Hash: oplog.HashData(data), Data: data},
		},
	}
}

func TestSegmentBlobRoundTripCompressible(t *testing.T) {
	seg := testSegment(t, make([]byte, 8192)) // zero pages deflate hard
	raw := seg.Marshal()
	blob := EncodeSegmentBlob(raw)
	if !IsSegmentBlob(blob) {
		t.Fatal("encoded blob not recognized")
	}
	if len(blob) >= len(raw) {
		t.Fatalf("compressible blob grew: wire %d >= logical %d", len(blob), len(raw))
	}
	got, err := DecodeSegmentBlob(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, raw) {
		t.Fatal("round trip mismatch")
	}
	if _, err := oplog.UnmarshalSegment(got); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentBlobRoundTripIncompressible(t *testing.T) {
	data := make([]byte, 4096)
	rand.Read(data)
	raw := testSegment(t, data).Marshal()
	blob := EncodeSegmentBlob(raw)
	if Codec(blob[4]) != CodecNone {
		t.Fatalf("random data picked codec %v, want none", Codec(blob[4]))
	}
	got, err := DecodeSegmentBlob(blob)
	if err != nil || !bytes.Equal(got, raw) {
		t.Fatalf("round trip: %v", err)
	}
}

func TestDecodeSegmentBlobLegacyPassthrough(t *testing.T) {
	// A pre-codec store holds bare segment marshals; they must decode as-is.
	raw := testSegment(t, []byte("legacy page")).Marshal()
	got, err := DecodeSegmentBlob(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, raw) {
		t.Fatal("legacy blob modified by decode")
	}
}

func TestDecodeSegmentBlobCorrupt(t *testing.T) {
	blob := EncodeSegmentBlob(testSegment(t, make([]byte, 4096)).Marshal())
	// Unknown codec.
	bad := append([]byte(nil), blob...)
	bad[4] = 0x7F
	if _, err := DecodeSegmentBlob(bad); !errors.Is(err, ErrBadBlob) {
		t.Fatalf("unknown codec err = %v", err)
	}
	// Truncated compressed body.
	if _, err := DecodeSegmentBlob(blob[:len(blob)-4]); !errors.Is(err, ErrBadBlob) {
		t.Fatalf("truncated body err = %v", err)
	}
	// Length header lies.
	bad = append([]byte(nil), blob...)
	bad[5] ^= 0xFF
	if _, err := DecodeSegmentBlob(bad); !errors.Is(err, ErrBadBlob) {
		t.Fatalf("bad length err = %v", err)
	}
}

func TestWriteMsgSkipsRecompressingBlobs(t *testing.T) {
	// An encoded blob round-trips the frame layer unchanged: the frame
	// flags must not mark it compressed a second time.
	blob := EncodeSegmentBlob(testSegment(t, make([]byte, 8192)).Marshal())
	dev, srv := pipePair(t)
	go dev.WriteMsg(MsgSegment, blob)
	typ, body, err := srv.ReadMsg()
	if err != nil || typ != MsgSegment {
		t.Fatalf("read: %v %v", typ, err)
	}
	if !bytes.Equal(body, blob) {
		t.Fatal("blob changed in transit")
	}
}
