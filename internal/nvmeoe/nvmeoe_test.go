package nvmeoe

import (
	"bytes"
	"crypto/rand"
	"errors"
	"net"
	"testing"
	"testing/quick"

	"repro/internal/oplog"
)

var testPSK = []byte("device-0001-enrollment-key-32byt")

// pipePair establishes an authenticated session over net.Pipe, returning
// (device, server) conns.
func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	dc, sc := net.Pipe()
	type srvResult struct {
		conn *Conn
		id   uint64
		err  error
	}
	ch := make(chan srvResult, 1)
	go func() {
		conn, id, err := ServerHandshake(sc, func(uint64) ([]byte, bool) { return testPSK, true })
		ch <- srvResult{conn, id, err}
	}()
	dev, err := DeviceHandshake(dc, testPSK, 42)
	if err != nil {
		t.Fatalf("device handshake: %v", err)
	}
	res := <-ch
	if res.err != nil {
		t.Fatalf("server handshake: %v", res.err)
	}
	if res.id != 42 {
		t.Fatalf("server saw device %d, want 42", res.id)
	}
	t.Cleanup(func() { dev.Close(); res.conn.Close() })
	return dev, res.conn
}

func TestHandshakeAndEcho(t *testing.T) {
	dev, srv := pipePair(t)
	payload := []byte("retained pages in time order")
	errCh := make(chan error, 1)
	go func() { errCh <- dev.WriteMsg(MsgSegment, payload) }()
	typ, got, err := srv.ReadMsg()
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgSegment || !bytes.Equal(got, payload) {
		t.Fatalf("got %v %q", typ, got)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	// And the reverse direction.
	go func() { errCh <- srv.WriteMsg(MsgSegmentAck, (&Ack{UpTo: 9}).Marshal()) }()
	typ, got, err = dev.ReadMsg()
	if err != nil {
		t.Fatal(err)
	}
	ack, err := UnmarshalAck(got)
	if err != nil || typ != MsgSegmentAck || ack.UpTo != 9 {
		t.Fatalf("ack round trip: %v %v %+v", typ, err, ack)
	}
}

func TestHandshakeRejectsWrongPSK(t *testing.T) {
	dc, sc := net.Pipe()
	defer dc.Close()
	defer sc.Close()
	done := make(chan error, 1)
	go func() {
		_, _, err := ServerHandshake(sc, func(uint64) ([]byte, bool) {
			return []byte("a-completely-different-psk-32byt"), true
		})
		done <- err
	}()
	_, devErr := DeviceHandshake(dc, testPSK, 1)
	if devErr != nil {
		// The device bailed without sending its confirm record; close so
		// the server unblocks (net.Pipe is unbuffered).
		dc.Close()
	}
	srvErr := <-done
	if devErr == nil && srvErr == nil {
		t.Fatal("mismatched PSKs completed handshake")
	}
}

func TestHandshakeRejectsUnknownDevice(t *testing.T) {
	dc, sc := net.Pipe()
	defer dc.Close()
	defer sc.Close()
	done := make(chan error, 1)
	go func() {
		_, _, err := ServerHandshake(sc, func(uint64) ([]byte, bool) { return nil, false })
		done <- err
	}()
	go DeviceHandshake(dc, testPSK, 7)
	if err := <-done; !errors.Is(err, ErrHandshake) {
		t.Fatalf("unknown device err = %v", err)
	}
}

func TestLargeCompressiblePayload(t *testing.T) {
	dev, srv := pipePair(t)
	payload := bytes.Repeat([]byte("RSSD retains all stale data. "), 10000)
	go dev.WriteMsg(MsgSegment, payload)
	_, got, err := srv.ReadMsg()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("compressible payload corrupted")
	}
}

func TestIncompressiblePayload(t *testing.T) {
	dev, srv := pipePair(t)
	payload := make([]byte, 32<<10)
	rand.Read(payload)
	go dev.WriteMsg(MsgSegment, payload)
	_, got, err := srv.ReadMsg()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("incompressible payload corrupted")
	}
}

func TestConfidentialityOnWire(t *testing.T) {
	// Capture the raw bytes the device emits and check the plaintext is
	// not visible: a host-resident attacker sniffing the wire learns
	// nothing about retained data.
	dc, sc := net.Pipe()
	defer sc.Close()
	go func() {
		srv, _, err := ServerHandshake(sc, func(uint64) ([]byte, bool) { return testPSK, true })
		if err != nil {
			return
		}
		srv.ReadMsg()
	}()
	// Intercept by wrapping: do the handshake, then write one frame and
	// inspect it via a recording wrapper.
	rec := &recordingConn{Conn: dc}
	dev, err := DeviceHandshake(rec, testPSK, 42)
	if err != nil {
		t.Fatal(err)
	}
	secret := bytes.Repeat([]byte("TOP-SECRET-USER-DATA"), 10)
	if err := dev.WriteMsg(MsgSegment, secret); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(rec.sent.Bytes(), []byte("TOP-SECRET")) {
		t.Fatal("plaintext visible on the wire")
	}
}

type recordingConn struct {
	net.Conn
	sent bytes.Buffer
}

func (r *recordingConn) Write(p []byte) (int, error) {
	r.sent.Write(p)
	return r.Conn.Write(p)
}

func TestTamperDetected(t *testing.T) {
	// A man-in-the-middle flipping any ciphertext bit must be caught by
	// the MAC before decryption output is used.
	dc, sc := net.Pipe()
	srvCh := make(chan *Conn, 1)
	go func() {
		srv, _, err := ServerHandshake(sc, func(uint64) ([]byte, bool) { return testPSK, true })
		if err != nil {
			srvCh <- nil
			return
		}
		srvCh <- srv
	}()
	tamper := &tamperConn{Conn: dc, corruptAfterHandshake: true}
	dev, err := DeviceHandshake(tamper, testPSK, 42)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-srvCh
	if srv == nil {
		t.Fatal("server handshake failed")
	}
	tamper.armed = true
	go dev.WriteMsg(MsgSegment, []byte("payload-to-corrupt-in-flight-xx"))
	if _, _, err := srv.ReadMsg(); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("tampered frame err = %v, want ErrBadMAC", err)
	}
}

type tamperConn struct {
	net.Conn
	corruptAfterHandshake bool
	armed                 bool
}

func (c *tamperConn) Write(p []byte) (int, error) {
	if c.armed && len(p) > headerSize {
		q := append([]byte(nil), p...)
		q[headerSize] ^= 0x80 // flip a ciphertext bit
		return c.Conn.Write(q)
	}
	return c.Conn.Write(p)
}

func TestReplayRejected(t *testing.T) {
	// Replaying a recorded frame must fail the sequence check even
	// though its MAC is valid.
	dc, sc := net.Pipe()
	srvCh := make(chan *Conn, 1)
	go func() {
		srv, _, _ := ServerHandshake(sc, func(uint64) ([]byte, bool) { return testPSK, true })
		srvCh <- srv
	}()
	rec := &replayConn{Conn: dc}
	dev, err := DeviceHandshake(rec, testPSK, 42)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-srvCh
	rec.record = true
	done := make(chan struct{})
	go func() {
		dev.WriteMsg(MsgSegment, []byte("frame-one"))
		rec.record = false
		rec.replay() // resend the recorded bytes
		close(done)
	}()
	if _, _, err := srv.ReadMsg(); err != nil {
		t.Fatalf("first read: %v", err)
	}
	if _, _, err := srv.ReadMsg(); !errors.Is(err, ErrReplay) {
		t.Fatalf("replayed frame err = %v, want ErrReplay", err)
	}
	<-done
}

type replayConn struct {
	net.Conn
	record   bool
	recorded bytes.Buffer
}

func (c *replayConn) Write(p []byte) (int, error) {
	if c.record {
		c.recorded.Write(p)
	}
	return c.Conn.Write(p)
}

func (c *replayConn) replay() { c.Conn.Write(c.recorded.Bytes()) }

func TestSegmentOverWire(t *testing.T) {
	dev, srv := pipePair(t)
	l := oplog.New()
	for i := 0; i < 100; i++ {
		l.Append(oplog.KindWrite, 0, uint64(i), 0, uint64(i), 2.5, oplog.HashData([]byte{byte(i)}))
	}
	seg := &oplog.Segment{DeviceID: 42, LastSeq: 100, Entries: l.All()}
	go dev.WriteMsg(MsgSegment, seg.Marshal())
	typ, body, err := srv.ReadMsg()
	if err != nil || typ != MsgSegment {
		t.Fatalf("read: %v %v", typ, err)
	}
	got, err := oplog.UnmarshalSegment(body)
	if err != nil {
		t.Fatal(err)
	}
	if err := oplog.VerifyChain(got.Entries, [32]byte{}); err != nil {
		t.Fatalf("chain broken after transport: %v", err)
	}
}

func TestFetchReqRoundTrip(t *testing.T) {
	r := FetchReq{Kind: FetchVersion, LPN: 5, From: 1, To: 2, Before: 99, ChunkPages: 64}
	got, err := UnmarshalFetchReq(r.Marshal())
	if err != nil || got != r {
		t.Fatalf("round trip: %+v %v", got, err)
	}
	if _, err := UnmarshalFetchReq([]byte{1, 2}); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("short req err = %v", err)
	}
}

// TestFetchReqLegacyDecodes: requests from pre-streaming devices lack the
// ChunkPages field and must still decode (with ChunkPages zero).
func TestFetchReqLegacyDecodes(t *testing.T) {
	r := FetchReq{Kind: FetchImage, Before: 7}
	legacy := r.Marshal()[:fetchReqSizeLegacy]
	got, err := UnmarshalFetchReq(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != FetchImage || got.Before != 7 || got.ChunkPages != 0 {
		t.Fatalf("legacy decode: %+v", got)
	}
}

func TestStreamEndRoundTrip(t *testing.T) {
	e := StreamEnd{Chunks: 3, Pages: 129, NextLPN: 4096}
	got, err := UnmarshalStreamEnd(e.Marshal())
	if err != nil || got != e {
		t.Fatalf("round trip: %+v %v", got, err)
	}
	if _, err := UnmarshalStreamEnd([]byte{1}); !errors.Is(err, ErrBadMessage) {
		t.Fatal("short stream end accepted")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := Checkpoint{Seq: 7, L2P: []uint64{1, 2, 3, ^uint64(0)}}
	got, err := UnmarshalCheckpoint(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 || len(got.L2P) != 4 || got.L2P[3] != ^uint64(0) {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := UnmarshalCheckpoint([]byte{1}); !errors.Is(err, ErrBadMessage) {
		t.Fatal("short checkpoint accepted")
	}
	if _, err := UnmarshalCheckpoint(make([]byte, 17)); !errors.Is(err, ErrBadMessage) {
		t.Fatal("ragged checkpoint accepted")
	}
}

func TestHeadRoundTrip(t *testing.T) {
	h := Head{NextSeq: 1234}
	h.Hash[0] = 0xAB
	got, err := UnmarshalHead(h.Marshal())
	if err != nil || got != h {
		t.Fatalf("round trip: %+v %v", got, err)
	}
}

func TestErrorMsgRoundTrip(t *testing.T) {
	e := ErrorMsg{Code: 3, Text: "chain gap"}
	got, err := UnmarshalErrorMsg(e.Marshal())
	if err != nil || got != e {
		t.Fatalf("round trip: %+v %v", got, err)
	}
}

func TestCompressionRatio(t *testing.T) {
	zeros := make([]byte, 4096)
	if r := CompressionRatio(zeros); r < 10 {
		t.Fatalf("zero page ratio = %v, want large", r)
	}
	rnd := make([]byte, 4096)
	rand.Read(rnd)
	if r := CompressionRatio(rnd); r != 1 {
		t.Fatalf("random page ratio = %v, want 1", r)
	}
}

func TestWriteMsgTooLarge(t *testing.T) {
	c := &Conn{}
	if err := c.WriteMsg(MsgSegment, make([]byte, MaxPayload+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

// Property: arbitrary payloads of any size survive the full encrypt/
// compress/frame round trip.
func TestTransportRoundTripProperty(t *testing.T) {
	dev, srv := pipePair(t)
	f := func(payload []byte, typ uint8) bool {
		mt := MsgType(typ%8 + 1)
		errCh := make(chan error, 1)
		go func() { errCh <- dev.WriteMsg(mt, payload) }()
		gotType, got, err := srv.ReadMsg()
		if err != nil || <-errCh != nil {
			return false
		}
		return gotType == mt && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAckServiceTimeRoundTripAndLegacy(t *testing.T) {
	// New acks carry the tier's modeled Put service time.
	a := Ack{UpTo: 42, SvcNs: 18_000_000}
	got, err := UnmarshalAck(a.Marshal())
	if err != nil || got != a {
		t.Fatalf("ack roundtrip = %+v, %v", got, err)
	}
	// Acks from pre-tier-latency servers are 8 bytes and decode with a
	// zero service time — devices keep working against old servers.
	legacy := a.Marshal()[:8]
	got, err = UnmarshalAck(legacy)
	if err != nil || got.UpTo != 42 || got.SvcNs != 0 {
		t.Fatalf("legacy ack = %+v, %v", got, err)
	}
	if _, err := UnmarshalAck(a.Marshal()[:5]); err == nil {
		t.Fatal("truncated ack decoded")
	}
}
