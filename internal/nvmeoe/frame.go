// Package nvmeoe implements RSSD's hardware-isolated NVMe over Ethernet
// transport.
//
// On the real device this is a dedicated engine (MAC, DMA, Tx/Rx buffers in
// Figure 1 of the paper) that moves retained pages and operation logs from
// the SSD controller to remote storage without host involvement: the host
// cannot observe, block, or forge the traffic because it never touches host
// memory. Here the engine is modeled as a message layer over any net.Conn
// (net.Pipe in tests, TCP in the examples) with the properties that matter
// for the threat model implemented cryptographically:
//
//   - confidentiality: payloads are AES-256-CTR encrypted with per-session
//     keys derived from a pre-shared device key,
//   - integrity and authenticity: every frame carries an HMAC-SHA-256 tag
//     (encrypt-then-MAC) covering the header and ciphertext,
//   - replay and reorder protection: frame sequence numbers are bound into
//     the MAC and enforced strictly in order,
//   - efficiency: payloads are DEFLATE-compressed when that helps, which is
//     also how the paper stretches retention capacity in Figure 2.
package nvmeoe

import (
	"bufio"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"
	"net"

	"repro/internal/bufpool"
)

// MsgType identifies the meaning of a frame's payload.
type MsgType uint8

const (
	MsgHello MsgType = iota + 1
	MsgHelloAck
	MsgSegment    // device -> server: oplog.Segment (push of logs + retained pages)
	MsgSegmentAck // server -> device: durable up to sequence N
	MsgCheckpoint // device -> server: mapping snapshot
	MsgCheckpointAck
	MsgFetch     // device -> server: retrieval request (recovery/forensics)
	MsgFetchResp // server -> device
	MsgError
	MsgFetchChunk    // server -> device: one codec-framed chunk of a streamed fetch
	MsgFetchEnd      // server -> device: stream trailer (StreamEnd)
	MsgFetchChunkRef // server -> device: codec-framed hash-reference chunk (RefChunk)
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgHelloAck:
		return "hello-ack"
	case MsgSegment:
		return "segment"
	case MsgSegmentAck:
		return "segment-ack"
	case MsgCheckpoint:
		return "checkpoint"
	case MsgCheckpointAck:
		return "checkpoint-ack"
	case MsgFetch:
		return "fetch"
	case MsgFetchResp:
		return "fetch-resp"
	case MsgError:
		return "error"
	case MsgFetchChunk:
		return "fetch-chunk"
	case MsgFetchEnd:
		return "fetch-end"
	case MsgFetchChunkRef:
		return "fetch-chunk-ref"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

const (
	frameMagic   = 0x4E4F4553 // "NOES": NVMe-oE Secure
	protoVersion = 1
	macSize      = sha256.Size
	// MaxPayload bounds a single frame; segments above this are split by
	// the offload policy before they reach the transport.
	MaxPayload = 64 << 20

	flagCompressed = 1 << 0
)

// Transport-level errors.
var (
	ErrBadFrame   = errors.New("nvmeoe: malformed frame")
	ErrBadMAC     = errors.New("nvmeoe: MAC verification failed")
	ErrReplay     = errors.New("nvmeoe: frame sequence violation (replay or drop)")
	ErrTooLarge   = errors.New("nvmeoe: payload exceeds MaxPayload")
	ErrBadVersion = errors.New("nvmeoe: protocol version mismatch")
)

// header layout: magic(4) ver(1) type(1) flags(2) seq(8) clen(4) = 20 bytes
const headerSize = 20

// direction labels for key derivation.
const (
	dirDeviceToServer = "rssd-c2s"
	dirServerToDevice = "rssd-s2c"
)

// deriveKey produces a 32-byte key from the pre-shared key, the session
// nonces, and a label, using HMAC-SHA-256 as the PRF (an HKDF-expand with
// a single block, which suffices for fixed-size session keys).
func deriveKey(psk, nonceC, nonceS []byte, label string) []byte {
	mac := hmac.New(sha256.New, psk)
	mac.Write(nonceC)
	mac.Write(nonceS)
	mac.Write([]byte(label))
	return mac.Sum(nil)
}

// halfConn holds one direction's cipher state. The AES block and HMAC
// instances are built once per session and reused per frame (Reset between
// frames); rebuilding them per message was a measurable slice of the old
// datapath's allocation rate.
type halfConn struct {
	encKey []byte
	macKey []byte
	seq    uint64

	blk cipher.Block // cached AES block cipher (lazy)
	mac hash.Hash    // cached HMAC-SHA-256 (lazy)
	tag []byte       // reusable MAC output buffer
}

// init lazily builds the per-session cipher state.
func (h *halfConn) init() error {
	if h.blk == nil {
		blk, err := aes.NewCipher(h.encKey)
		if err != nil {
			return err
		}
		h.blk = blk
		h.mac = hmac.New(sha256.New, h.macKey)
		h.tag = make([]byte, 0, macSize)
	}
	return nil
}

// seal XORs data in place with the keystream for seq.
func (h *halfConn) seal(seq uint64, data []byte) {
	var iv [aes.BlockSize]byte
	binary.LittleEndian.PutUint64(iv[:], seq)
	iv[15] = 0x5D // domain separation from any other CTR use of the key
	cipher.NewCTR(h.blk, iv[:]).XORKeyStream(data, data)
}

// sum computes the frame MAC over hdr and ct into the reusable tag buffer.
func (h *halfConn) sum(hdr, ct []byte) []byte {
	h.mac.Reset()
	h.mac.Write(hdr)
	h.mac.Write(ct)
	h.tag = h.mac.Sum(h.tag[:0])
	return h.tag
}

// Conn is an established, authenticated NVMe-oE session over an underlying
// net.Conn. It is not safe for concurrent writers; the offload engine
// serializes its traffic, as the hardware's single Tx queue does.
type Conn struct {
	nc  net.Conn
	br  *bufio.Reader
	out halfConn
	in  halfConn
}

// WriteMsg compresses (when profitable), encrypts, MACs, and sends one
// message. Compression scratch and the ciphertext copy ride pooled
// buffers; nothing written here outlives the call.
func (c *Conn) WriteMsg(t MsgType, payload []byte) error {
	if len(payload) > MaxPayload {
		return ErrTooLarge
	}
	if err := c.out.init(); err != nil {
		return err
	}
	flags := uint16(0)
	body := payload
	var comp *bufpool.Buf
	// Codec-framed segment blobs arrive already compressed (the offload
	// engine encodes them at seal time); re-deflating them only burns CPU.
	if len(payload) > 128 && !IsSegmentBlob(payload) {
		comp = bufpool.Get(len(payload))
		if compressed, ok := AppendDeflate(comp.B, payload); ok {
			body = compressed
			flags |= flagCompressed
		} else {
			comp.Release()
			comp = nil
		}
	}
	ct := bufpool.Get(len(body))
	ct.B = append(ct.B, body...)
	comp.Release() // body copied into ct; the scratch can go back
	c.out.seal(c.out.seq, ct.B)
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], frameMagic)
	hdr[4] = protoVersion
	hdr[5] = byte(t)
	binary.LittleEndian.PutUint16(hdr[6:], flags)
	binary.LittleEndian.PutUint64(hdr[8:], c.out.seq)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(ct.B)))

	tag := c.out.sum(hdr[:], ct.B)

	c.out.seq++
	if _, err := c.nc.Write(hdr[:]); err != nil {
		ct.Release()
		return err
	}
	_, err := c.nc.Write(ct.B)
	ct.Release()
	if err != nil {
		return err
	}
	_, err = c.nc.Write(tag)
	return err
}

// ReadMsg receives, authenticates, decrypts, and decompresses one message.
// The returned payload is freshly owned by the caller; compressed frames
// decrypt through a pooled intermediate that never escapes.
func (c *Conn) ReadMsg() (MsgType, []byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != frameMagic {
		return 0, nil, ErrBadFrame
	}
	if hdr[4] != protoVersion {
		return 0, nil, ErrBadVersion
	}
	if err := c.in.init(); err != nil {
		return 0, nil, err
	}
	t := MsgType(hdr[5])
	flags := binary.LittleEndian.Uint16(hdr[6:])
	seq := binary.LittleEndian.Uint64(hdr[8:])
	clen := binary.LittleEndian.Uint32(hdr[16:])
	if clen > MaxPayload {
		return 0, nil, ErrTooLarge
	}
	// A compressed frame's ciphertext is scratch (the inflated payload is
	// what escapes); an uncompressed frame's ciphertext becomes the payload
	// and must be a plain allocation.
	var ct []byte
	var ctBuf *bufpool.Buf
	if flags&flagCompressed != 0 {
		ctBuf = bufpool.Get(int(clen))
		ct = ctBuf.B[:clen]
	} else {
		ct = make([]byte, clen)
	}
	if _, err := io.ReadFull(c.br, ct); err != nil {
		ctBuf.Release()
		return 0, nil, err
	}
	var tag [macSize]byte
	if _, err := io.ReadFull(c.br, tag[:]); err != nil {
		ctBuf.Release()
		return 0, nil, err
	}
	if !hmac.Equal(tag[:], c.in.sum(hdr[:], ct)) {
		ctBuf.Release()
		return 0, nil, ErrBadMAC
	}
	// The MAC binds seq; strict in-order delivery rejects replays and
	// drops (the underlying transport is reliable, so any deviation is
	// an attack or a bug, not loss).
	if seq != c.in.seq {
		ctBuf.Release()
		return 0, nil, fmt.Errorf("%w: got seq %d, want %d", ErrReplay, seq, c.in.seq)
	}
	c.in.seq++
	c.in.seal(seq, ct)
	if flags&flagCompressed != 0 {
		pt, err := Inflate(ct)
		ctBuf.Release()
		if err != nil {
			return 0, nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
		return t, pt, nil
	}
	return t, ct, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }
